module github.com/spilly-db/spilly

go 1.22
