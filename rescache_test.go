package spilly

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	rescache "github.com/spilly-db/spilly/internal/cache"
	"github.com/spilly-db/spilly/internal/chaos"
	"github.com/spilly-db/spilly/internal/tpch"
)

// rescacheConfig is a governed engine with the result cache on: the budget
// is roomy enough that most queries run without spilling (keeping the
// 22x3-run sweep fast) while the governor still arbitrates cache tenancy.
func rescacheConfig() Config {
	return Config{
		Workers:          2,
		MemoryBudget:     4 << 20,
		Compression:      true,
		ResultCacheBytes: 32 << 20,
	}
}

// TestResultCacheEquivalenceAllQueries runs every TPC-H query three times —
// cold (caches cleared), warm from the memory tier, and warm from the NVMe
// tier (hot entries demoted to the spill array in between) — and requires
// bit-identical result fingerprints across all three. Afterwards the cache
// must drain completely: no spill leases, no live extents, no governor
// cache reservation.
func TestResultCacheEquivalenceAllQueries(t *testing.T) {
	eng := loadEngine(t, rescacheConfig())

	memHits, nvmeHits := 0, 0
	for q := 1; q <= tpch.NumQueries; q++ {
		eng.ClearCaches()
		cold, err := eng.RunTPCH(q)
		if err != nil {
			t.Fatalf("cold Q%d: %v", q, err)
		}
		want := chaos.Fingerprint(cold.Batch)

		warm, err := eng.RunTPCH(q)
		if err != nil {
			t.Fatalf("warm Q%d: %v", q, err)
		}
		if got := chaos.Fingerprint(warm.Batch); got != want {
			t.Errorf("Q%d warm-memory result differs from cold run", q)
		}
		if warm.Stats.ResultCacheHit {
			if warm.Stats.ResultCacheTier != "memory" {
				t.Errorf("Q%d warm hit served from %q, want memory", q, warm.Stats.ResultCacheTier)
			}
			memHits++
		}

		eng.DemoteResultCache()
		nvme, err := eng.RunTPCH(q)
		if err != nil {
			t.Fatalf("warm-nvme Q%d: %v", q, err)
		}
		if got := chaos.Fingerprint(nvme.Batch); got != want {
			t.Errorf("Q%d warm-nvme result differs from cold run", q)
		}
		if nvme.Stats.ResultCacheHit {
			if nvme.Stats.ResultCacheTier != "nvme" {
				t.Errorf("Q%d post-demotion hit served from %q, want nvme", q, nvme.Stats.ResultCacheTier)
			}
			nvmeHits++
		}
	}
	// Caching is cost-gated, so the cheapest queries may legitimately skip
	// it — but the bulk of TPC-H must be served from each tier, or the
	// cache (or the demotion path) is silently broken.
	if memHits < 16 || nvmeHits < 16 {
		t.Errorf("only %d/22 memory hits and %d/22 nvme hits; cache barely engaged", memHits, nvmeHits)
	}

	// Drain: clearing the cache must free every demoted entry's lease and
	// return the full governor reservation.
	eng.ClearCaches()
	if n := eng.SpillArray().Leases(); n != 0 {
		t.Errorf("%d spill leases live after ClearCaches", n)
	}
	if n := eng.SpillArray().LiveExtents(); n != 0 {
		t.Errorf("%d spill extents live after ClearCaches", n)
	}
	if r := eng.GovernorStats().CacheReserved; r != 0 {
		t.Errorf("governor still holds %d bytes of cache reservation after ClearCaches", r)
	}
}

// bigResultPlan builds a plan whose result is large enough that its cached
// copy holds a visible governor reservation: per-order sums over lineitem
// (~15k groups at sf 0.01, a few hundred KB cached).
func bigResultPlan(t *testing.T, eng *Engine) *Result {
	t.Helper()
	tbl, err := eng.Table("lineitem")
	if err != nil {
		t.Fatal(err)
	}
	sc := NewScan(tbl, "l_orderkey", "l_extendedprice")
	plan := NewAgg(sc, []string{"l_orderkey"}, []AggSpec{{Func: Sum, Col: "l_extendedprice", As: "revenue"}})
	res, err := eng.Run(plan)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestConcurrentQueriesShrinkResultCache: the cache is a lower-priority
// governor tenant than live queries. A cached result holding a reservation
// must be demoted — not evicted wholesale, and never at the price of an
// admission timeout — when concurrent queries need the memory; afterwards
// it must still be servable from the NVMe tier, bit-identical.
func TestConcurrentQueriesShrinkResultCache(t *testing.T) {
	cfg := rescacheConfig()
	cfg.MemoryBudget = 1 << 20
	cfg.MemoryFloor = 256 << 10
	cfg.PageSize = 8 << 10
	cfg.Partitions = 16
	eng := loadEngine(t, cfg)

	res := bigResultPlan(t, eng)
	want := chaos.Fingerprint(res.Batch)
	if s := eng.ResultCacheStats(); s.HotEntries != 1 || s.Reserved == 0 {
		t.Fatalf("big result not resident with a reservation: %+v", s)
	}

	// Three spill-heavy queries admitted at once: the first grant consumes
	// the headroom left beside the cache reservation, so a later admission
	// falls short and must squeeze the cache via the pressure callback.
	var wg sync.WaitGroup
	errs := make(chan error, 3)
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := eng.RunTPCH(9); err != nil {
				errs <- err
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Errorf("concurrent query under cache residency: %v", err)
	}

	if g := eng.GovernorStats(); g.Timeouts != 0 {
		t.Errorf("%d admission timeouts caused by cache residency", g.Timeouts)
	}
	s := eng.ResultCacheStats()
	if s.Shrinks == 0 {
		t.Error("admission pressure never shrank the result cache")
	}
	if s.Reserved != 0 {
		t.Errorf("cache still holds %d bytes of reservation after pressure", s.Reserved)
	}
	if s.DiskEntries == 0 {
		t.Fatalf("squeezed entry not on NVMe: %+v", s)
	}

	// The squeezed entry moved to NVMe, not oblivion: re-running the plan
	// must hit the nvme tier and return identical bits.
	again := bigResultPlan(t, eng)
	if !again.Stats.ResultCacheHit || again.Stats.ResultCacheTier != "nvme" {
		t.Errorf("post-shrink rerun: hit=%v tier=%q, want nvme hit (stats %+v)",
			again.Stats.ResultCacheHit, again.Stats.ResultCacheTier, eng.ResultCacheStats())
	}
	if got := chaos.Fingerprint(again.Batch); got != want {
		t.Error("post-shrink cached result differs from original")
	}

	eng.ClearCaches()
	assertArrayDrained(t, eng)
	if r := eng.GovernorStats().CacheReserved; r != 0 {
		t.Errorf("cache reservation %d after drain", r)
	}
}

// verTableRows is sized so the versioned sum takes comfortably longer than
// the cache's restore estimate — otherwise cost-based admission would skip
// caching and the race below would never exercise the cached path.
const verTableRows = 256 << 10

// registerVerTable swaps in version ver of the "ver" table: verTableRows
// rows, every value float64(ver).
func registerVerTable(eng *Engine, ver int64) {
	sch := NewSchema(ColumnDef{Name: "v", Type: Float64})
	mt := NewMemTable("ver", sch, 0)
	b := NewBatch(sch, verTableRows)
	for i := 0; i < verTableRows; i++ {
		b.Cols[0].F = append(b.Cols[0].F, float64(ver))
	}
	b.SetLen(verTableRows)
	mt.Append(b)
	eng.RegisterTable(mt)
}

// TestCatalogInvalidationRace hammers RegisterTable against cached runs
// under the race detector. Every row of table version v holds the value v,
// so any served result — computed or cached — reveals exactly which
// snapshot produced it; a querier that observed version lo registered
// before it planned must never be handed a sum from an older version.
func TestCatalogInvalidationRace(t *testing.T) {
	eng, err := Open(Config{Workers: 2, ResultCacheBytes: 16 << 20})
	if err != nil {
		t.Fatal(err)
	}
	registerVerTable(eng, 1)
	var cur atomic.Int64
	cur.Store(1)

	const versions = 20
	loaderDone := make(chan struct{})
	go func() {
		defer close(loaderDone)
		for v := int64(2); v <= versions; v++ {
			registerVerTable(eng, v)
			cur.Store(v)
		}
	}()

	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for done := false; !done; {
				select {
				case <-loaderDone:
					done = true // one final pass after the last registration
				default:
				}
				lo := cur.Load()
				tbl, err := eng.Table("ver")
				if err != nil {
					errs <- err
					return
				}
				sc := NewScan(tbl, "v")
				plan := NewAgg(sc, nil, []AggSpec{{Func: Sum, Col: "v", As: "s"}})
				// Twice per snapshot: the second run of an unchanged plan
				// is the cache-hit path under invalidation fire.
				for rep := 0; rep < 2; rep++ {
					res, err := eng.Run(plan)
					if err != nil {
						errs <- err
						return
					}
					sum := res.Batch.Cols[0].F[0]
					ver := int64(sum / verTableRows)
					if float64(ver)*verTableRows != sum {
						errs <- fmt.Errorf("sum %v is not a whole version multiple: torn snapshot?", sum)
						return
					}
					if ver < lo {
						errs <- fmt.Errorf("stale result: saw version %d after version %d was registered", ver, lo)
						return
					}
					if hi := cur.Load(); ver > hi+1 {
						errs <- fmt.Errorf("impossible version %d (current %d)", ver, hi)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if s := eng.ResultCacheStats(); s.Hits == 0 {
		t.Error("no cache hits occurred; the race window was never exercised")
	}
	eng.ClearCaches()
	if n := eng.SpillArray().Leases(); n != 0 {
		t.Errorf("%d leases live after drain", n)
	}
}

// TestCatalogRaceWindowInvalidated deterministically pins the fix
// for a TOCTOU window on the TPC-H fingerprint path (keyed by (q, sf)
// only, with no per-snapshot scan IDs): a query can load the catalog
// generation after RegisterTable's bump yet read the table map before the
// swap, computing over the old catalog under the new generation — and
// Put's generation re-check cannot catch it, because the generation never
// changes again. RegisterTable therefore brackets the swap with a second
// bump, making the post-swap generation the RemoveStale cutoff. This test
// emulates the racing query's cache write at the in-window generation and
// asserts a completed registration makes it unreachable.
func TestCatalogRaceWindowInvalidated(t *testing.T) {
	eng, err := Open(Config{Workers: 2, ResultCacheBytes: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	registerVerTable(eng, 1)
	g0 := eng.catalogGen.Load()

	// The racing query observes g0+1 (RegisterTable's pre-swap bump) but
	// computes over the version-1 catalog, and its Put lands while the
	// generation still reads g0+1 — the re-check passes.
	sch := NewSchema(ColumnDef{Name: "s", Type: Float64})
	stale := NewBatch(sch, 1)
	stale.Cols[0].F = append(stale.Cols[0].F, 1.0)
	stale.SetLen(1)
	raceKey := rescache.Key{Plan: 42, Gen: g0 + 1}
	if !eng.results.Put(raceKey, stale, time.Minute) {
		t.Fatal("emulated racing put refused")
	}

	registerVerTable(eng, 2)
	if cur := eng.catalogGen.Load(); cur < g0+2 {
		t.Fatalf("generation %d after registration, want >= %d: the table swap must be bracketed by a second bump", cur, g0+2)
	}
	// The in-window entry is below the post-swap cutoff: RemoveStale must
	// have dropped it, so no later query — at any generation — can be
	// served the pre-registration result.
	if _, tier, _ := eng.results.Get(raceKey); tier != rescache.TierNone {
		t.Fatalf("result cached inside the registration window survived invalidation (tier %v)", tier)
	}
}
