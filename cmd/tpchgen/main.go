// Command tpchgen generates TPC-H tables and reports their shape; with
// -out it writes .tbl files in dbgen's pipe-separated format.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"github.com/spilly-db/spilly/internal/colstore"
	"github.com/spilly-db/spilly/internal/data"
	"github.com/spilly-db/spilly/internal/tpch"
)

func main() {
	var (
		sf    = flag.Float64("sf", 0.01, "scale factor")
		out   = flag.String("out", "", "directory to write .tbl files (empty: just report)")
		table = flag.String("table", "", "generate only this table")
	)
	flag.Parse()

	g := &tpch.Gen{SF: *sf}
	names := tpch.TableNames
	if *table != "" {
		names = []string{*table}
	}
	for _, name := range names {
		t := g.Table(name)
		fmt.Printf("%-10s %10d rows  %2d columns\n", name, t.Rows(), t.Schema().Len())
		if *out != "" {
			if err := writeTbl(*out, t); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
		}
	}
}

func writeTbl(dir string, t *colstore.MemTable) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	f, err := os.Create(filepath.Join(dir, t.Name()+".tbl"))
	if err != nil {
		return err
	}
	defer f.Close()
	w := bufio.NewWriterSize(f, 1<<20)
	schema := t.Schema()
	var sb strings.Builder
	for r := 0; r < int(t.Rows()); r++ {
		sb.Reset()
		for c := 0; c < schema.Len(); c++ {
			col := t.Column(c)
			switch col.Type {
			case data.Float64:
				fmt.Fprintf(&sb, "%.2f|", col.F[r])
			case data.String:
				sb.WriteString(col.S[r])
				sb.WriteByte('|')
			case data.Date:
				sb.WriteString(data.FormatDate(col.I[r]))
				sb.WriteByte('|')
			default:
				fmt.Fprintf(&sb, "%d|", col.I[r])
			}
		}
		sb.WriteByte('\n')
		if _, err := w.WriteString(sb.String()); err != nil {
			return err
		}
	}
	return w.Flush()
}
