// Command spillybench regenerates the paper's evaluation tables and
// figures on the simulated NVMe hardware.
//
// Usage:
//
//	spillybench -list
//	spillybench -exp fig6
//	spillybench -exp all -quick
//	spillybench -exp fig11 -sf 0.05 -budget 4194304
package main

import (
	"flag"
	"fmt"
	"net/http"
	_ "net/http/pprof"
	"os"
	"strconv"
	"strings"
	"time"

	"github.com/spilly-db/spilly/internal/bench"
)

func main() {
	var (
		exp      = flag.String("exp", "", "experiment id to run, or \"all\"")
		list     = flag.Bool("list", false, "list experiments")
		quick    = flag.Bool("quick", false, "shrink scale factors and sweeps")
		workers  = flag.Int("workers", 2, "worker goroutines per query")
		sfsFlag  = flag.String("sf", "", "comma-separated scale factors overriding the default sweep")
		budget   = flag.Int64("budget", 0, "memory budget in bytes (0 = experiment default)")
		pprofSrv = flag.String("pprof", "", "serve net/http/pprof on this address while experiments run")
	)
	flag.Parse()

	if *pprofSrv != "" {
		go func() {
			if err := http.ListenAndServe(*pprofSrv, nil); err != nil {
				fmt.Fprintf(os.Stderr, "pprof server: %v\n", err)
			}
		}()
	}

	if *list || *exp == "" {
		fmt.Println("Experiments (run with -exp <id>):")
		for _, e := range bench.All() {
			fmt.Printf("  %-18s %s\n", e.ID, e.Paper)
		}
		return
	}

	opts := bench.Options{Quick: *quick, Workers: *workers, Budget: *budget}
	if *sfsFlag != "" {
		for _, s := range strings.Split(*sfsFlag, ",") {
			v, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
			if err != nil {
				fmt.Fprintf(os.Stderr, "bad -sf value %q: %v\n", s, err)
				os.Exit(1)
			}
			opts.SFs = append(opts.SFs, v)
		}
	}

	run := func(e bench.Experiment) {
		fmt.Printf("=== %s — %s ===\n\n", e.ID, e.Paper)
		start := time.Now()
		if err := e.Run(os.Stdout, opts); err != nil {
			fmt.Fprintf(os.Stderr, "%s failed: %v\n", e.ID, err)
			os.Exit(1)
		}
		fmt.Printf("\n(%s took %.1fs)\n\n", e.ID, time.Since(start).Seconds())
	}

	if *exp == "all" {
		for _, e := range bench.All() {
			run(e)
		}
		return
	}
	e := bench.ByID(*exp)
	if e == nil {
		fmt.Fprintf(os.Stderr, "unknown experiment %q; use -list\n", *exp)
		os.Exit(1)
	}
	run(*e)
}
