// Command alloccmp guards the allocation-free hot path: it re-measures
// per-query heap allocations (the bench package's "alloc" matrix) and
// compares them against the committed baseline in BENCH_alloc.json,
// failing when any (query, mode) cell regresses by more than the
// threshold. Wall-clock time is reported but never gates: it is too noisy
// on a shared single-core box, while allocs/op is deterministic enough to
// gate on.
//
// Usage:
//
//	alloccmp -baseline BENCH_alloc.json          # compare, exit 1 on regression
//	alloccmp -baseline BENCH_alloc.json -quick   # smaller scale factor
//	alloccmp -print                              # print fresh measurements as JSON
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"github.com/spilly-db/spilly/internal/bench"
)

// baselineFile mirrors the BENCH_alloc.json layout; only "after" gates.
type baselineFile struct {
	After map[string]baselineCell `json:"after"`
}

type baselineCell struct {
	AllocsPerOp float64 `json:"allocs_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
	NsPerOp     float64 `json:"ns_per_op"`
}

func main() {
	var (
		baseline  = flag.String("baseline", "", "baseline JSON file (BENCH_alloc.json)")
		quick     = flag.Bool("quick", false, "measure at the smaller scale factor")
		threshold = flag.Float64("threshold", 1.20, "fail when allocs/op exceeds baseline by this factor")
		printJSON = flag.Bool("print", false, "print fresh measurements as JSON and exit")
	)
	flag.Parse()

	ms, err := bench.MeasureAlloc(bench.Options{Quick: *quick, Workers: 2})
	if err != nil {
		fmt.Fprintf(os.Stderr, "alloccmp: measurement failed: %v\n", err)
		os.Exit(1)
	}

	if *printJSON || *baseline == "" {
		cells := map[string]baselineCell{}
		for _, m := range ms {
			cells[m.Key()] = baselineCell{
				AllocsPerOp: m.AllocsPerOp,
				BytesPerOp:  m.BytesPerOp,
				NsPerOp:     m.NsPerOp,
			}
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		enc.Encode(map[string]any{"after": cells})
		return
	}

	raw, err := os.ReadFile(*baseline)
	if err != nil {
		fmt.Fprintf(os.Stderr, "alloccmp: %v\n", err)
		os.Exit(1)
	}
	var base baselineFile
	if err := json.Unmarshal(raw, &base); err != nil {
		fmt.Fprintf(os.Stderr, "alloccmp: parsing %s: %v\n", *baseline, err)
		os.Exit(1)
	}

	failed := false
	for _, m := range ms {
		b, ok := base.After[m.Key()]
		if !ok || b.AllocsPerOp <= 0 {
			fmt.Printf("%-12s allocs/op=%-10.0f (no baseline)\n", m.Key(), m.AllocsPerOp)
			continue
		}
		if m.Approx {
			// Concurrent queries overlapped the measurement, so the
			// process-wide MemStats delta is not attributable to this
			// cell; gating on it would flag phantom regressions.
			fmt.Printf("%-12s allocs/op=%-10.0f (approx: concurrent queries; gate skipped)\n",
				m.Key(), m.AllocsPerOp)
			continue
		}
		ratio := m.AllocsPerOp / b.AllocsPerOp
		status := "ok"
		if ratio > *threshold {
			status = "REGRESSION"
			failed = true
		}
		fmt.Printf("%-12s allocs/op=%-10.0f baseline=%-10.0f ratio=%.2f  %s\n",
			m.Key(), m.AllocsPerOp, b.AllocsPerOp, ratio, status)
	}
	if failed {
		fmt.Fprintf(os.Stderr, "alloccmp: allocs/op regressed beyond %.0f%% of baseline\n", (*threshold-1)*100)
		os.Exit(1)
	}
}
