// Command overlapcmp guards the phase-2 overlap win: it re-measures the
// bench package's blocking-vs-pipelined readback matrix and compares the
// pipelined stall time against the committed baseline in BENCH_overlap.json,
// failing when any query's stall ns/op regresses by more than the threshold.
// Wall-clock time is reported but never gates (too noisy on a shared box);
// stall time is accumulated inside cursor waits and is much more stable. It
// also fails if the two readback modes disagree on a result checksum.
//
// Usage:
//
//	overlapcmp -baseline BENCH_overlap.json          # compare, exit 1 on regression
//	overlapcmp -baseline BENCH_overlap.json -quick   # smaller scale factor
//	overlapcmp -print                                # print fresh measurements as JSON
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"github.com/spilly-db/spilly/internal/bench"
)

// baselineFile mirrors the BENCH_overlap.json layout; only "after" gates.
type baselineFile struct {
	After map[string]baselineCell `json:"after"`
}

type baselineCell struct {
	NsPerOp      float64 `json:"ns_per_op"`
	StallNsPerOp float64 `json:"stall_ns_per_op"`
	Prefetched   int64   `json:"prefetched_partitions"`
}

func main() {
	var (
		baseline  = flag.String("baseline", "", "baseline JSON file (BENCH_overlap.json)")
		quick     = flag.Bool("quick", false, "measure at the smaller scale factor")
		threshold = flag.Float64("threshold", 1.20, "fail when pipelined stall ns/op exceeds baseline by this factor")
		printJSON = flag.Bool("print", false, "print fresh measurements as JSON and exit")
	)
	flag.Parse()

	ms, err := bench.MeasureOverlap(bench.Options{Quick: *quick, Workers: 2})
	if err != nil {
		fmt.Fprintf(os.Stderr, "overlapcmp: measurement failed: %v\n", err)
		os.Exit(1)
	}

	// Both readback modes must compute the same result, baseline or not.
	sums := map[string]string{}
	for _, m := range ms {
		key := m.Query
		if prev, ok := sums[key]; ok && prev != m.Checksum {
			fmt.Fprintf(os.Stderr, "overlapcmp: %s checksum mismatch across readback modes\n", key)
			os.Exit(1)
		}
		sums[key] = m.Checksum
	}

	if *printJSON || *baseline == "" {
		cells := map[string]baselineCell{}
		for _, m := range ms {
			cells[m.Key()] = baselineCell{
				NsPerOp:      m.NsPerOp,
				StallNsPerOp: m.StallNsPerOp,
				Prefetched:   m.Prefetched,
			}
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		enc.Encode(map[string]any{"after": cells})
		return
	}

	raw, err := os.ReadFile(*baseline)
	if err != nil {
		fmt.Fprintf(os.Stderr, "overlapcmp: %v\n", err)
		os.Exit(1)
	}
	var base baselineFile
	if err := json.Unmarshal(raw, &base); err != nil {
		fmt.Fprintf(os.Stderr, "overlapcmp: parsing %s: %v\n", *baseline, err)
		os.Exit(1)
	}

	failed := false
	for _, m := range ms {
		// Only pipelined stall gates: blocking stall IS the readback time
		// and tracks device speed, not scheduler quality.
		if !strings.HasSuffix(m.Key(), "/pipelined") {
			continue
		}
		b, ok := base.After[m.Key()]
		if !ok || b.StallNsPerOp <= 0 {
			fmt.Printf("%-14s stall=%-10.0f (no baseline)\n", m.Key(), m.StallNsPerOp)
			continue
		}
		ratio := m.StallNsPerOp / b.StallNsPerOp
		status := "ok"
		if ratio > *threshold {
			status = "REGRESSION"
			failed = true
		}
		fmt.Printf("%-14s stall/op=%-12.0f baseline=%-12.0f ratio=%.2f  %s\n",
			m.Key(), m.StallNsPerOp, b.StallNsPerOp, ratio, status)
	}
	if failed {
		fmt.Fprintf(os.Stderr, "overlapcmp: stall ns/op regressed beyond %.0f%% of baseline\n", (*threshold-1)*100)
		os.Exit(1)
	}
}
