// Command spillyquery runs a TPC-H query against the engine with
// configurable memory budget, storage placement, and materialization mode,
// printing the result and execution statistics. It is the interactive way
// to watch Umami switch between in-memory and out-of-memory processing.
//
// Examples:
//
//	spillyquery -q 1 -sf 0.01
//	spillyquery -q 9 -sf 0.05 -budget 2097152 -array
//	spillyquery -q 9 -sf 0.05 -budget 2097152 -mode never -nospill   # fails like an in-memory engine
//	spillyquery -q 9 -sf 0.05 -budget 2097152 -profile               # per-operator profile tree
//	spillyquery -q 9 -sf 0.5 -serve :8080                            # live /metrics, /queries, pprof
//	spillyquery -q 9 -sf 0.05 -budget 2097152 -concurrent 8          # 8 admitted copies sharing the budget
//	spillyquery -q 1 -sf 0.05 -cachebytes 8388608                    # 8 MB table buffer cache
//	spillyquery -q 1 -sf 0.05 -rescache 16777216 -repeat 2           # second run hits the result cache
package main

import (
	"flag"
	"fmt"
	"os"
	"sync"
	"time"

	spilly "github.com/spilly-db/spilly"
)

func main() {
	var (
		q        = flag.Int("q", 1, "TPC-H query number (1-22)")
		sf       = flag.Float64("sf", 0.01, "scale factor")
		budget   = flag.Int64("budget", 0, "memory budget in bytes (0 = unlimited)")
		onArray  = flag.Bool("array", false, "store tables on the simulated NVMe array")
		workers  = flag.Int("workers", 2, "worker goroutines")
		compress = flag.Bool("compress", true, "self-regulating compression for spilled data")
		nospill  = flag.Bool("nospill", false, "disable spilling (fail on OOM)")
		mode     = flag.String("mode", "adaptive", "materialization mode: adaptive|never|always|spillall")
		rows     = flag.Int("rows", 20, "result rows to print")
		tblDir   = flag.String("tbl", "", "load dbgen-format .tbl files from this directory instead of generating")
		profile  = flag.Bool("profile", false, "print a per-operator execution profile (EXPLAIN ANALYZE)")
		serve    = flag.String("serve", "", "serve /metrics, /queries and pprof on this address while running")
		depth    = flag.Int("readdepth", 0, "spill readback queue depth per partition scheduler (0 = default)")
		scanD    = flag.Int("scandepth", 0, "row groups each scan worker keeps in flight (0 = default)")
		ioDepth  = flag.Int("iodepth", 0, "shared I/O scheduler per-device depth target (0 = default)")
		noSched  = flag.Bool("noiosched", false, "bypass the shared I/O scheduler (private rings per operator)")
		blocking = flag.Bool("blockread", false, "disable pipelined spill readback (materialize partitions before processing)")
		parity   = flag.Int("parity", 0, "spill parity stripe width K: checksummed pages + one XOR parity block per K spill blocks (0 = off)")
		conc     = flag.Int("concurrent", 1, "run this many copies of the query concurrently through the admission governor")
		cacheB   = flag.Int64("cachebytes", 0, "table buffer cache size in bytes (0 = no buffer cache)")
		rescache = flag.Int64("rescache", 0, "query-result reuse cache hot-tier size in bytes (0 = no result cache)")
		repeat   = flag.Int("repeat", 1, "run the query this many times in sequence (later runs can hit the result cache)")
	)
	flag.Parse()

	modes := map[string]spilly.Mode{
		"adaptive": spilly.Adaptive,
		"never":    spilly.NeverPartition,
		"always":   spilly.AlwaysPartition,
		"spillall": spilly.SpillAll,
	}
	m, ok := modes[*mode]
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown mode %q\n", *mode)
		os.Exit(1)
	}

	eng, err := spilly.Open(spilly.Config{
		Workers:           *workers,
		MemoryBudget:      *budget,
		Mode:              m,
		DisableSpill:      *nospill,
		Compression:       *compress,
		Profile:           *profile,
		ReadDepth:         *depth,
		ScanDepth:         *scanD,
		IODepthTarget:     *ioDepth,
		NoIOSched:         *noSched,
		BlockingSpillRead: *blocking,
		SpillParity:       *parity,
		CacheBytes:        *cacheB,
		ResultCacheBytes:  *rescache,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if *serve != "" {
		addr, shutdown, err := eng.Serve(*serve)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer shutdown()
		fmt.Fprintf(os.Stderr, "metrics on http://%s/metrics (queries: /queries, pprof: /debug/pprof/)\n", addr)
	}
	if *tblDir != "" {
		err = eng.LoadTPCHTbl(*tblDir, *sf, *onArray)
	} else {
		err = eng.LoadTPCH(*sf, *onArray)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	if *conc > 1 {
		runConcurrent(eng, *q, *conc)
		return
	}

	var res *spilly.Result
	for i := 0; i < *repeat; i++ {
		res, err = eng.RunTPCH(*q)
		if err != nil {
			fmt.Fprintf(os.Stderr, "Q%d failed: %v\n", *q, err)
			os.Exit(1)
		}
		if *repeat > 1 {
			note := ""
			if res.Stats.ResultCacheHit {
				note = fmt.Sprintf("  (result cache hit, %s tier)", res.Stats.ResultCacheTier)
			}
			fmt.Printf("run %d: %v%s\n", i+1, res.Stats.Duration, note)
		}
	}
	fmt.Print(spilly.FormatBatch(res.Batch, *rows))
	s := res.Stats
	fmt.Printf("\nQ%d: %v, %d rows out\n", *q, s.Duration, res.Batch.Len())
	if s.ResultCacheHit {
		fmt.Printf("result cache: hit (%s tier); plan not executed\n", s.ResultCacheTier)
	}
	fmt.Printf("scanned: %d tuples (%.1f MB), %.0f tuples/s, %.1f cycles/byte\n",
		s.ScannedRows, float64(s.ScannedBytes)/(1<<20), s.TuplesPerSec, s.CyclesPerByte)
	if s.ScanStallTime > 0 {
		fmt.Printf("scan stall: %v blocked on table reads\n", s.ScanStallTime)
	}
	if s.SpilledBytes > 0 {
		fmt.Printf("spilled: %.1f MB raw, %.1f MB written (compressed), %.1f MB read back\n",
			float64(s.SpilledBytes)/(1<<20), float64(s.WrittenBytes)/(1<<20), float64(s.SpillReadBytes)/(1<<20))
		if len(s.Schemes) > 0 {
			fmt.Printf("compression schemes: %v\n", s.Schemes)
		}
		fmt.Printf("readback: %v stalled, %d partitions prefetched\n",
			s.SpillStallTime, s.PrefetchedPartitions)
		if s.SpillPagesVerified > 0 || s.SpillParityBytes > 0 {
			fmt.Printf("integrity: %d pages verified, %d checksum errors, %d blocks reconstructed, %.1f MB parity overhead\n",
				s.SpillPagesVerified, s.SpillChecksumErrors, s.SpillReconstructions,
				float64(s.SpillParityBytes)/(1<<20))
		}
	} else {
		fmt.Println("spilled: nothing (stayed in memory)")
	}
	if *cacheB > 0 {
		bc := eng.BufferCacheStats()
		fmt.Printf("buffer cache: %d hits, %d misses, %.1f MB in %d blocks",
			bc.Hits, bc.Misses, float64(bc.Used)/(1<<20), bc.Blocks)
		if bc.Oversized > 0 {
			// Blocks larger than cachebytes/16 cannot live in any shard.
			fmt.Printf(" (%d blocks too large to cache)", bc.Oversized)
		}
		fmt.Println()
	}
	if *rescache > 0 {
		rc := eng.ResultCacheStats()
		fmt.Printf("result cache: %d memory hits, %d nvme hits, %d misses; %d hot (%.1f MB), %d demoted (%.1f MB raw)\n",
			rc.HitsMemory, rc.HitsNVMe, rc.Misses,
			rc.HotEntries, float64(rc.HotBytes)/(1<<20),
			rc.DiskEntries, float64(rc.DiskBytes)/(1<<20))
	}
	printIOSched(eng)
	if *profile {
		fmt.Printf("\n%s", spilly.FormatProfile(res.Profile()))
	}
}

// printIOSched summarizes the shared I/O schedulers: how much work each
// class pushed through, how often lower classes yielded, and the
// promotion/aging traffic. Silent when -noiosched bypasses the scheduler.
func printIOSched(eng *spilly.Engine) {
	for _, sn := range eng.IOSchedSnapshots() {
		var total, deferred int64
		for _, c := range sn.Stats.Classes {
			total += c.Dispatched
			deferred += c.Deferred
		}
		if total == 0 {
			continue
		}
		fmt.Printf("iosched[%s]: %d dispatched (%d demand, %d spill-write, %d prefetch, %d background), %d deferred, %d promoted, %d aged\n",
			sn.Name, total,
			sn.Stats.Classes[0].Dispatched, sn.Stats.Classes[1].Dispatched,
			sn.Stats.Classes[2].Dispatched, sn.Stats.Classes[3].Dispatched,
			deferred, sn.Stats.Promoted, sn.Stats.Aged)
	}
}

// runConcurrent fires n copies of the query at once; the governor admits
// them against the shared budget and each copy runs under its own spill
// lease. Per-copy admission wait and grant sizes show the sharing policy.
func runConcurrent(eng *spilly.Engine, q, n int) {
	type run struct {
		res *spilly.Result
		err error
		dur time.Duration
	}
	runs := make([]run, n)
	start := time.Now()
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			t0 := time.Now()
			res, err := eng.RunTPCH(q)
			runs[i] = run{res: res, err: err, dur: time.Since(t0)}
		}(i)
	}
	wg.Wait()
	wall := time.Since(start)

	failed := 0
	for i, r := range runs {
		if r.err != nil {
			failed++
			fmt.Printf("run %2d: FAILED after %v: %v\n", i, r.dur, r.err)
			continue
		}
		s := r.res.Stats
		fmt.Printf("run %2d: %v (admission wait %v, grant %.1f MB, spilled %.1f MB)\n",
			i, s.Duration, s.AdmissionWait, float64(s.MemoryGrant)/(1<<20),
			float64(s.SpilledBytes)/(1<<20))
	}
	g := eng.GovernorStats()
	fmt.Printf("\n%d×Q%d in %v wall (%d failed)\n", n, q, wall, failed)
	fmt.Printf("admission: %d admitted, %d timeouts, %v total queue wait\n",
		g.Admitted, g.Timeouts, g.WaitTotal)
	fmt.Printf("spill array: %d live extents, %d live leases (both should be 0 when idle)\n",
		eng.SpillArray().LiveExtents(), eng.SpillArray().Leases())
	printIOSched(eng)
	if failed > 0 {
		os.Exit(1)
	}
}
