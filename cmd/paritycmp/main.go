// Command paritycmp guards the spill-integrity tax: it re-measures the
// bench package's parity-off-vs-on matrix (Q9/Q12/Q13, the spill-heavy
// workloads) and fails when checksummed+parity spilling costs more than the
// threshold in wall time on any query, or when the two modes disagree on a
// result fingerprint. Unlike overlapcmp it needs no committed baseline:
// the parity-off run measured in the same process is the baseline, so the
// comparison is self-relative and immune to machine speed.
//
// Usage:
//
//	paritycmp                 # measure, exit 1 if parity costs >10% wall time
//	paritycmp -quick          # smaller scale factor
//	paritycmp -threshold 1.2  # custom wall-time ceiling
//	paritycmp -print          # print fresh measurements as JSON
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"

	"github.com/spilly-db/spilly/internal/bench"
)

// geoMean returns the geometric mean of positive values.
func geoMean(vals []float64) float64 {
	var s float64
	for _, v := range vals {
		s += math.Log(v)
	}
	return math.Exp(s / float64(len(vals)))
}

func main() {
	var (
		quick     = flag.Bool("quick", false, "measure at the smaller scale factor")
		threshold = flag.Float64("threshold", 1.10, "fail when parity wall time exceeds parity-off by this factor")
		printJSON = flag.Bool("print", false, "print fresh measurements as JSON and exit")
	)
	flag.Parse()

	ms, err := bench.MeasureParity(bench.Options{Quick: *quick, Workers: 2})
	if err != nil {
		fmt.Fprintf(os.Stderr, "paritycmp: measurement failed: %v\n", err)
		os.Exit(1)
	}

	if *printJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		enc.Encode(ms)
		return
	}

	byKey := map[string]bench.ParityMeasurement{}
	for _, m := range ms {
		byKey[m.Key()] = m
	}
	failed := false
	exercised := false
	var ratios []float64
	for _, m := range ms {
		if m.Mode != "parity" {
			continue
		}
		off, ok := byKey[m.Query+"/off"]
		if !ok || off.NsPerOp <= 0 {
			fmt.Fprintf(os.Stderr, "paritycmp: no parity-off measurement for %s\n", m.Query)
			os.Exit(1)
		}
		// Integrity must never change the answer: a fingerprint mismatch is
		// a correctness bug, not a tax, and fails regardless of threshold.
		if m.Checksum != off.Checksum {
			fmt.Fprintf(os.Stderr, "paritycmp: %s result fingerprint changed under parity (%s vs %s)\n",
				m.Query, off.Checksum, m.Checksum)
			failed = true
			continue
		}
		// A query that spilled must have verified every page it read back;
		// one that stayed in memory at this scale legitimately verifies
		// nothing (the -quick scale factor keeps Q12/Q13 under budget).
		if m.WrittenBytes > 0 && m.PagesVerified == 0 {
			fmt.Fprintf(os.Stderr, "paritycmp: %s spilled but verified zero pages — integrity path not exercised\n",
				m.Query)
			failed = true
			continue
		}
		if m.PagesVerified > 0 {
			exercised = true
		}
		ratio := m.NsPerOp / off.NsPerOp
		ratios = append(ratios, ratio)
		fmt.Printf("%-6s off=%-10.1fms parity=%-10.1fms ratio=%.3f verified=%-8d parity-bytes=%d\n",
			m.Query, off.NsPerOp/1e6, m.NsPerOp/1e6, ratio, m.PagesVerified, m.ParityBytes)
	}
	// The wall-time ceiling gates the geo-mean across queries, not each
	// query alone: per-query best-of-N wall clock on a shared box still
	// jitters more than the integrity tax itself, and averaging across the
	// three workloads cancels most of it while a real across-the-board
	// regression still trips.
	if len(ratios) > 0 {
		gm := geoMean(ratios)
		status := "ok"
		if gm > *threshold {
			status = "REGRESSION"
			failed = true
		}
		fmt.Printf("geo-mean wall ratio %.3f (ceiling %.2f)  %s\n", gm, *threshold, status)
	}
	if !exercised {
		fmt.Fprintln(os.Stderr, "paritycmp: no query verified any pages — the gate measured nothing")
		failed = true
	}
	if failed {
		fmt.Fprintf(os.Stderr, "paritycmp: spill integrity costs more than %.0f%% wall time or changed a result\n",
			(*threshold-1)*100)
		os.Exit(1)
	}
}
