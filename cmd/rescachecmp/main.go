// Command rescachecmp guards the result-reuse win: it re-measures the bench
// package's cold/warm-memory/warm-nvme/post-invalidation matrix and compares
// the warm-hit latencies against the committed baseline in
// BENCH_rescache.json, failing when a warm phase's ns/op regresses by more
// than the threshold. It also fails when any phase of a query disagrees on
// the result checksum — a cache hit must be bit-identical to recomputing.
//
// Warm hits complete in microseconds, where scheduler jitter dwarfs a 20%
// ratio, so the gate only fires when the regression also exceeds an absolute
// slack: it catches a broken fast path (an order-of-magnitude slowdown), not
// micro-noise. Cold and post-invalidation wall times are reported but never
// gate. MeasureRescache itself fails if a warm phase misses the cache or an
// NVMe-phase hit serves from the wrong tier, so a silently disabled cache
// cannot pass.
//
// Usage:
//
//	rescachecmp -baseline BENCH_rescache.json          # compare, exit 1 on regression
//	rescachecmp -baseline BENCH_rescache.json -quick   # smaller scale factor
//	rescachecmp -print                                 # print fresh measurements as JSON
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"github.com/spilly-db/spilly/internal/bench"
)

// baselineFile mirrors the BENCH_rescache.json layout; only "after" gates.
type baselineFile struct {
	After map[string]baselineCell `json:"after"`
}

type baselineCell struct {
	NsPerOp float64 `json:"ns_per_op"`
	Tier    string  `json:"tier"`
}

func main() {
	var (
		baseline  = flag.String("baseline", "", "baseline JSON file (BENCH_rescache.json)")
		quick     = flag.Bool("quick", false, "measure at the smaller scale factor")
		threshold = flag.Float64("threshold", 1.20, "fail when a warm hit's ns/op exceeds baseline by this factor")
		slackNs   = flag.Float64("slack", 200e3, "ignore regressions smaller than this many ns (scheduler jitter floor)")
		printJSON = flag.Bool("print", false, "print fresh measurements as JSON and exit")
	)
	flag.Parse()

	ms, err := bench.MeasureRescache(bench.Options{Quick: *quick, Workers: 2})
	if err != nil {
		fmt.Fprintf(os.Stderr, "rescachecmp: measurement failed: %v\n", err)
		os.Exit(1)
	}

	// Every phase of a query must compute the same result, baseline or not:
	// serving a cached entry — from either tier — may never change bits.
	sums := map[string]string{}
	for _, m := range ms {
		if prev, ok := sums[m.Query]; ok && prev != m.Checksum {
			fmt.Fprintf(os.Stderr, "rescachecmp: %s checksum mismatch across cache phases\n", m.Query)
			os.Exit(1)
		}
		sums[m.Query] = m.Checksum
	}

	if *printJSON || *baseline == "" {
		cells := map[string]baselineCell{}
		for _, m := range ms {
			cells[m.Key()] = baselineCell{NsPerOp: m.NsPerOp, Tier: m.Tier}
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		enc.Encode(map[string]any{"after": cells})
		return
	}

	raw, err := os.ReadFile(*baseline)
	if err != nil {
		fmt.Fprintf(os.Stderr, "rescachecmp: %v\n", err)
		os.Exit(1)
	}
	var base baselineFile
	if err := json.Unmarshal(raw, &base); err != nil {
		fmt.Fprintf(os.Stderr, "rescachecmp: parsing %s: %v\n", *baseline, err)
		os.Exit(1)
	}

	failed := false
	for _, m := range ms {
		// Only warm hits gate: cold and post-invalidation times are plan
		// execution and track machine speed, not cache quality.
		if !strings.Contains(m.Key(), "/warm-") {
			continue
		}
		b, ok := base.After[m.Key()]
		if !ok || b.NsPerOp <= 0 {
			fmt.Printf("%-22s ns/op=%-12.0f (no baseline)\n", m.Key(), m.NsPerOp)
			continue
		}
		ratio := m.NsPerOp / b.NsPerOp
		status := "ok"
		if ratio > *threshold && m.NsPerOp-b.NsPerOp > *slackNs {
			status = "REGRESSION"
			failed = true
		}
		fmt.Printf("%-22s ns/op=%-12.0f baseline=%-12.0f ratio=%.2f  %s\n",
			m.Key(), m.NsPerOp, b.NsPerOp, ratio, status)
	}
	if failed {
		fmt.Fprintf(os.Stderr, "rescachecmp: warm-hit ns/op regressed beyond %.0f%% of baseline\n", (*threshold-1)*100)
		os.Exit(1)
	}
}
