// Command ioschedcmp guards the shared I/O scheduler's concurrency win: it
// re-runs the bench package's 8-way mixed workload in both scheduler modes
// and compares the shared mode's demand-read latency and p99 query latency
// against the committed baseline in BENCH_iosched.json, failing when either
// regresses by more than the threshold. It also fails when the committed
// baseline itself no longer shows the scheduler ahead of private rings on
// both gated metrics — regenerating the baseline cannot hide a lost win —
// and when the two modes disagree on a result checksum. Wall-clock time and
// the worker-side stall sums are reported but never gate (in a saturated
// closed loop scheduling order mostly relocates blocked time; the per-event
// demand-read latency is the stable signal).
//
// Usage:
//
//	ioschedcmp -baseline BENCH_iosched.json          # compare, exit 1 on regression
//	ioschedcmp -baseline BENCH_iosched.json -quick   # smaller scale factor
//	ioschedcmp -print                                # print fresh measurements as JSON
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"github.com/spilly-db/spilly/internal/bench"
)

// baselineFile mirrors the BENCH_iosched.json layout: one cell per
// scheduler mode, keyed "private" and "shared".
type baselineFile struct {
	After map[string]baselineCell `json:"after"`
}

type baselineCell struct {
	WallNs          float64 `json:"wall_ns"`
	DemandReadLatNs float64 `json:"demand_read_lat_ns"`
	SpillStallNs    float64 `json:"spill_stall_ns"`
	ScanStallNs     float64 `json:"scan_stall_ns"`
	P99QueryNs      float64 `json:"p99_query_ns"`
	MeanQueryNs     float64 `json:"mean_query_ns"`
	Checksum        string  `json:"checksum"`
}

func main() {
	var (
		baseline  = flag.String("baseline", "", "baseline JSON file (BENCH_iosched.json)")
		quick     = flag.Bool("quick", false, "measure at the smaller scale factor")
		threshold = flag.Float64("threshold", 1.25, "fail when a gated shared-mode metric exceeds baseline by this factor")
		printJSON = flag.Bool("print", false, "print fresh measurements as JSON and exit")
	)
	flag.Parse()

	ms, err := bench.MeasureIOSched(bench.Options{Quick: *quick, Workers: 2})
	if err != nil {
		fmt.Fprintf(os.Stderr, "ioschedcmp: measurement failed: %v\n", err)
		os.Exit(1)
	}

	// Both scheduler modes must compute identical results, baseline or not:
	// the scheduler reorders I/O, never rows.
	byMode := map[string]bench.IOSchedMeasurement{}
	for _, m := range ms {
		byMode[m.Mode] = m
	}
	pr, sh := byMode["private"], byMode["shared"]
	if pr.Checksum != sh.Checksum {
		fmt.Fprintf(os.Stderr, "ioschedcmp: result checksum mismatch across scheduler modes: private %s vs shared %s\n",
			pr.Checksum, sh.Checksum)
		os.Exit(1)
	}

	if *printJSON || *baseline == "" {
		cells := map[string]baselineCell{}
		for _, m := range ms {
			cells[m.Key()] = baselineCell{
				WallNs:          m.WallNs,
				DemandReadLatNs: m.DemandReadLatNs,
				SpillStallNs:    m.SpillStallNs,
				ScanStallNs:     m.ScanStallNs,
				P99QueryNs:      m.P99QueryNs,
				MeanQueryNs:     m.MeanQueryNs,
				Checksum:        m.Checksum,
			}
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		enc.Encode(map[string]any{"after": cells})
		return
	}

	raw, err := os.ReadFile(*baseline)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ioschedcmp: %v\n", err)
		os.Exit(1)
	}
	var base baselineFile
	if err := json.Unmarshal(raw, &base); err != nil {
		fmt.Fprintf(os.Stderr, "ioschedcmp: parsing %s: %v\n", *baseline, err)
		os.Exit(1)
	}
	bpr, ok1 := base.After["private"]
	bsh, ok2 := base.After["shared"]
	if !ok1 || !ok2 {
		fmt.Fprintf(os.Stderr, "ioschedcmp: %s lacks private/shared cells\n", *baseline)
		os.Exit(1)
	}

	// The committed baseline is itself part of the contract: it must show
	// the shared scheduler ahead of private rings on both gated metrics.
	failed := false
	if bsh.DemandReadLatNs >= bpr.DemandReadLatNs {
		fmt.Fprintf(os.Stderr, "ioschedcmp: baseline shows no demand-read latency win (shared %.0fns >= private %.0fns)\n",
			bsh.DemandReadLatNs, bpr.DemandReadLatNs)
		failed = true
	}
	if bsh.P99QueryNs >= bpr.P99QueryNs {
		fmt.Fprintf(os.Stderr, "ioschedcmp: baseline shows no p99 query latency win (shared %.0fns >= private %.0fns)\n",
			bsh.P99QueryNs, bpr.P99QueryNs)
		failed = true
	}

	// Only the shared mode's cells gate against the baseline: private rings
	// are the frozen comparison point, not a maintained configuration.
	gates := []struct {
		name     string
		got, ref float64
	}{
		{"demand-read lat", sh.DemandReadLatNs, bsh.DemandReadLatNs},
		{"p99 query", sh.P99QueryNs, bsh.P99QueryNs},
	}
	for _, g := range gates {
		if g.ref <= 0 {
			fmt.Printf("%-16s got=%-12.0f (no baseline)\n", g.name, g.got)
			continue
		}
		ratio := g.got / g.ref
		status := "ok"
		if ratio > *threshold {
			status = "REGRESSION"
			failed = true
		}
		fmt.Printf("%-16s got=%-12.0f baseline=%-12.0f ratio=%.2f  %s\n",
			g.name, g.got, g.ref, ratio, status)
	}
	fmt.Printf("%-16s shared=%-12.0f private=%-12.0f (reported, not gated)\n", "wall", sh.WallNs, pr.WallNs)
	if failed {
		fmt.Fprintf(os.Stderr, "ioschedcmp: shared-mode regression beyond %.0f%% of baseline (or baseline lost the win)\n",
			(*threshold-1)*100)
		os.Exit(1)
	}
}
