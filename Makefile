GO ?= go

.PHONY: all tier1 tier2 race stress chaos bench-vectorize bench-alloc bench-overlap bench-parity bench-rescache bench-iosched profile-smoke clean

all: tier1

# Tier-1 gate: everything must build, vet clean, and pass tests.
tier1:
	$(GO) build ./...
	$(GO) vet ./...
	$(GO) test ./...

# Tier-2 gate: the slow suites tier1 deliberately leaves out — the chaos
# harness (seeded fault schedules under the race detector, including the
# silent-corruption and device-loss scenarios) and the committed performance
# gates (allocation, phase-2 overlap, spill-integrity tax, result reuse,
# shared I/O scheduler).
tier2: chaos bench-alloc bench-overlap bench-parity bench-rescache bench-iosched

# Race-detector pass over the concurrency-heavy packages (morsel workers,
# partition spilling, per-worker stats accumulators, span buffers, fault
# recovery, utilization tracer).
race:
	$(GO) test -race -short ./internal/exec/ ./internal/core/ ./internal/chaos/ ./internal/trace/ ./internal/metrics/

# Multi-query stress gate: concurrent TPC-H mixes through the admission
# governor and per-query spill leases, under the race detector — overlap
# regression, 8-query stress, admission cancel/timeout, catalog races,
# governor unit races, concurrent queries under injected faults, and the
# mixed-class I/O-scheduler chaos scenario (spill device death plus latency
# spikes on both arrays under an 8-way scan/spill query mix). Each
# run re-verifies that concurrent results stay bit-identical to serial
# runs and that the spill array and governor drain to zero.
stress:
	$(GO) test -race -count=1 -timeout 300s \
		-run 'TestOverlapping|TestConcurrent|TestAdmission|TestCatalog' .
	$(GO) test -race -count=1 -timeout 300s -run 'TestGovernor' ./internal/pages/
	$(GO) test -race -count=1 -timeout 300s -run 'TestConcurrentQueriesUnderTransientFaults|TestMixedClassLoadUnderDeviceChaos|TestLease' \
		./internal/chaos/ ./internal/nvmesim/

# Observability smoke test: a spilling TPC-H Q9 with the per-operator
# profile tree, plus the profile/endpoint regression tests.
profile-smoke:
	$(GO) test -run 'TestProfile|TestServeDuringQuery' -count=1 -v .
	$(GO) run ./cmd/spillyquery -q 9 -sf 0.01 -budget 524288 -profile

# Chaos suite: TPC-H under seeded fault schedules (transient I/O errors,
# latency spikes, device death, spill-capacity exhaustion, cancellation),
# under the race detector. Fault schedules derive from fixed seeds, so a
# failure replays deterministically.
chaos:
	$(GO) test -race -count=1 -v ./internal/chaos/

# Vectorization microbenchmarks (expression kernels, batch hash/encode).
bench-vectorize:
	$(GO) test -run=^$$ -bench 'Vectorized|Scalar|HashColumns|HashRow|EncodeAll|EncodeRow' -benchmem ./internal/exec/ ./internal/data/

# GC-pressure gate: allocation-count regression tests (also in tier1),
# -benchmem microbenchmarks over the recycling hot path, and the
# end-to-end allocs/op comparison against the committed baseline
# (BENCH_alloc.json; fails on >20% allocs/op regression).
bench-alloc:
	$(GO) test -run 'TestAllocs' -count=1 ./internal/data/ ./internal/exec/
	$(GO) test -run=^$$ -bench 'Alloc' -benchmem ./internal/data/ ./internal/exec/
	$(GO) run ./cmd/alloccmp -baseline BENCH_alloc.json

# Phase-2 overlap gate: the blocking-vs-pipelined readback report, then the
# stall-time comparison against the committed baseline (BENCH_overlap.json;
# fails on >20% pipelined stall ns/op regression or a cross-mode result
# checksum mismatch).
bench-overlap:
	$(GO) run ./cmd/spillybench -exp overlap
	$(GO) run ./cmd/overlapcmp -baseline BENCH_overlap.json

# Result-reuse gate: the cold/warm-memory/warm-nvme/post-invalidation
# report, then the warm-hit latency comparison against the committed
# baseline (BENCH_rescache.json; fails on a warm-hit regression beyond 20%
# plus an absolute jitter slack, any cross-phase result checksum mismatch,
# or a warm phase that fails to hit the cache at all).
bench-rescache:
	$(GO) run ./cmd/spillybench -exp rescache
	$(GO) run ./cmd/rescachecmp -baseline BENCH_rescache.json

# Shared I/O scheduler gate: the 8-way mixed-class concurrency report
# (private rings vs the engine-wide prioritized scheduler), then the
# demand-read latency and p99 query latency comparison against the
# committed baseline (BENCH_iosched.json; fails on >25% shared-mode
# regression, a cross-mode result checksum mismatch, or a baseline that no
# longer shows the scheduler ahead of private rings).
bench-iosched:
	$(GO) run ./cmd/spillybench -exp iosched
	$(GO) run ./cmd/ioschedcmp -baseline BENCH_iosched.json

# Spill-integrity gate: the parity-off-vs-on report on the spill-heavy
# queries, then the self-relative wall-time comparison (no committed
# baseline needed; fails when checksummed+parity spilling costs >10% wall
# time geo-mean or changes any result fingerprint).
bench-parity:
	$(GO) run ./cmd/spillybench -exp parity
	$(GO) run ./cmd/paritycmp

clean:
	$(GO) clean ./...
