GO ?= go

.PHONY: all tier1 race chaos bench-vectorize clean

all: tier1

# Tier-1 gate: everything must build, vet clean, and pass tests.
tier1:
	$(GO) build ./...
	$(GO) vet ./...
	$(GO) test ./...

# Race-detector pass over the concurrency-heavy packages (morsel workers,
# partition spilling, per-worker stats accumulators, fault recovery).
race:
	$(GO) test -race -short ./internal/exec/ ./internal/core/ ./internal/chaos/

# Chaos suite: TPC-H under seeded fault schedules (transient I/O errors,
# latency spikes, device death, spill-capacity exhaustion, cancellation),
# under the race detector. Fault schedules derive from fixed seeds, so a
# failure replays deterministically.
chaos:
	$(GO) test -race -count=1 -v ./internal/chaos/

# Vectorization microbenchmarks (expression kernels, batch hash/encode).
bench-vectorize:
	$(GO) test -run=^$$ -bench 'Vectorized|Scalar|HashColumns|HashRow|EncodeAll|EncodeRow' -benchmem ./internal/exec/ ./internal/data/

clean:
	$(GO) clean ./...
