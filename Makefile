GO ?= go

.PHONY: all tier1 race bench-vectorize clean

all: tier1

# Tier-1 gate: everything must build, vet clean, and pass tests.
tier1:
	$(GO) build ./...
	$(GO) vet ./...
	$(GO) test ./...

# Race-detector pass over the concurrency-heavy packages (morsel workers,
# partition spilling, per-worker stats accumulators).
race:
	$(GO) test -race -short ./internal/exec/ ./internal/core/

# Vectorization microbenchmarks (expression kernels, batch hash/encode).
bench-vectorize:
	$(GO) test -run=^$$ -bench 'Vectorized|Scalar|HashColumns|HashRow|EncodeAll|EncodeRow' -benchmem ./internal/exec/ ./internal/data/

clean:
	$(GO) clean ./...
