// Package spilly is a Go reproduction of the query engine Spilly from
// "High-Performance Query Processing with NVMe Arrays: Spilling without
// Killing Performance" (SIGMOD 2024).
//
// The engine executes analytical queries over columnar tables with
// operators built on Umami — the paper's unified materialization interface —
// so the same hash join and hash aggregation run at in-memory speed on
// small inputs and transparently partition, compress, and spill to a
// (simulated) NVMe array when memory runs out. See DESIGN.md for the
// architecture and the hardware-simulation substitutions.
//
// Basic use:
//
//	eng, _ := spilly.Open(spilly.Config{MemoryBudget: 1 << 30})
//	eng.LoadTPCH(0.01, false)
//	res, _ := eng.RunTPCH(1)
//	fmt.Println(res.Table())
package spilly

import (
	"context"
	"errors"
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	rescache "github.com/spilly-db/spilly/internal/cache"
	"github.com/spilly-db/spilly/internal/codec"
	"github.com/spilly-db/spilly/internal/colstore"
	"github.com/spilly-db/spilly/internal/core"
	"github.com/spilly-db/spilly/internal/data"
	"github.com/spilly-db/spilly/internal/exec"
	"github.com/spilly-db/spilly/internal/iosched"
	"github.com/spilly-db/spilly/internal/metrics"
	"github.com/spilly-db/spilly/internal/nvmesim"
	"github.com/spilly-db/spilly/internal/pages"
	"github.com/spilly-db/spilly/internal/tpch"
	"github.com/spilly-db/spilly/internal/trace"
	"github.com/spilly-db/spilly/internal/xhash"
)

// Mode selects the materialization strategy (see the paper's §4.1/§4.2).
type Mode = core.Mode

// Materialization modes: Adaptive is Umami's default; the others are the
// paper's experimental baselines.
const (
	Adaptive        = core.ModeAdaptive
	NeverPartition  = core.ModeNeverPartition
	AlwaysPartition = core.ModeAlwaysPartition
	SpillAll        = core.ModeSpillAll
)

// DeviceSpec describes one simulated NVMe SSD.
type DeviceSpec = nvmesim.DeviceSpec

// QueryError is the structured failure a query returns: the failing
// operator, the partition and NVMe device involved (when known), a
// remediation hint for configuration-class failures (e.g. a full spill
// area), and the underlying cause. Every fatal I/O error and every escaped
// worker panic surfaces as a *QueryError from Run — never a hang, a crash,
// or an opaque internal error. ErrOutOfMemory is the one exception: it is
// returned by identity so callers can compare it directly.
type QueryError = core.QueryError

// ErrOutOfMemory is returned (by identity, never wrapped) when a query
// exceeds its memory budget and spilling is disabled or unavailable.
var ErrOutOfMemory = core.ErrOutOfMemory

// Config configures an Engine. The zero value gives a laptop-scaled replica
// of the paper's testbed: 8 simulated SSDs whose bandwidths follow the
// Kioxia CM7-R (11 GB/s read / 6.2 GB/s write) scaled down 100× to match
// this environment's single-core CPU budget, keeping the paper's
// CPU-to-I/O cycles-per-byte ratio (§4.4).
type Config struct {
	// Workers is the number of worker goroutines per query (default:
	// GOMAXPROCS).
	Workers int
	// MemoryBudget bounds operator materialization memory in bytes
	// (0 = unlimited; nothing ever partitions or spills). The budget is
	// engine-wide: a shared governor admits queries and hands each one a
	// grant carved from it — the full budget when the engine is idle, a
	// shrinking share under concurrency — so N concurrent queries never
	// overcommit memory N×.
	MemoryBudget int64
	// MemoryFloor is the smallest memory grant the governor admits a query
	// with (default MemoryBudget/8). Queries that cannot get a floor-sized
	// grant wait in a FIFO admission queue.
	MemoryFloor int64
	// AdmitTimeout bounds how long a query waits in the admission queue
	// before failing with a structured "admission queue timeout"
	// *QueryError (default 30s; negative = wait indefinitely). Context
	// cancellation is honored while queued regardless.
	AdmitTimeout time.Duration
	// Mode is the materialization strategy (default Adaptive).
	Mode Mode
	// DisableSpill makes out-of-memory queries fail instead of spilling
	// (the pure in-memory engine of the evaluation).
	DisableSpill bool
	// Compression enables self-regulating compression for spilled data.
	Compression bool
	// TableDevices and SpillDevices size the two simulated NVMe arrays
	// (defaults: 8 and 8). The paper's §6.8 experiment varies the spill
	// array size.
	TableDevices int
	SpillDevices int
	// Device is the per-SSD performance profile (default: scaled CM7-R).
	Device DeviceSpec
	// CacheBytes sizes the table buffer cache (0 = no cache; scans are
	// always cold).
	CacheBytes int64
	// ResultCacheBytes sizes the hot tier of the query-result reuse cache
	// (0 = no result caching). Cached results are keyed by plan
	// fingerprint and catalog generation; hits bypass execution and the
	// admission queue entirely. Hot-tier memory is rented from the
	// admission governor's idle headroom and surrendered under pressure;
	// evicted entries demote to the spill array instead of dropping. See
	// internal/cache and DESIGN.md §14.
	ResultCacheBytes int64
	// PageSize, Partitions, PartitionAt tune Umami (defaults 64 KiB, 64,
	// 0.5).
	PageSize    int
	Partitions  int
	PartitionAt float64
	// ReadDepth bounds in-flight spill readback block reads per operator
	// (0 = 8); BlockingSpillRead disables phase-2 readback prefetch so
	// every spilled partition is read synchronously — the blocking baseline
	// the overlap benchmark measures against.
	ReadDepth         int
	BlockingSpillRead bool
	// IODepthTarget is the per-device, per-direction queue-depth target of
	// the shared I/O scheduler (0 = 8): each device channel dispatches up
	// to this many requests at once, and everything beyond it queues in
	// priority order (demand read > spill write > prefetch read >
	// background) with round-robin fairness across queries.
	IODepthTarget int
	// IOPrefetchShare bounds the fraction of the depth target that
	// prefetch- and background-class requests may occupy while demand
	// traffic exists (0 = 0.5, clamped to leave at least one slot each way).
	IOPrefetchShare float64
	// ScanDepth bounds the row groups each external-scan reader keeps in
	// flight (0 = 4). With one reader per worker, scan lookahead times the
	// worker count is the scan pressure on the table array.
	ScanDepth int
	// NoIOSched disables the shared I/O scheduler entirely: every ring
	// submits straight to its array, as before the scheduler existed — the
	// private-rings baseline the iosched benchmark measures against.
	NoIOSched bool
	// SpillParity is the parity stripe width K: every K spill block writes
	// are joined by one XOR parity block on a distinct device, so spilled
	// data survives silent corruption and the loss of one device per stripe
	// (reconstruct-on-read). 0 disables spill integrity entirely — no
	// checksummed frames, no parity, the pre-integrity write path.
	SpillParity int
	// ForceGrace runs every join as a classical grace hash join and
	// NoPreAgg disables local pre-aggregation — together they make the
	// engine behave like the always-partitioning systems of Figure 2.
	ForceGrace bool
	NoPreAgg   bool
	// Profile records per-operator execution spans for every query so
	// Result.Profile returns an EXPLAIN ANALYZE-style tree. Off by default;
	// the untraced hot path pays only one nil check per operator.
	Profile bool
}

// DefaultDevice is the default simulated SSD: the paper's Kioxia CM7-R
// scaled down 100×.
var DefaultDevice = nvmesim.KioxiaCM7.Scaled(0.01)

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.TableDevices <= 0 {
		c.TableDevices = 8
	}
	if c.SpillDevices <= 0 {
		c.SpillDevices = 8
	}
	if c.Device == (DeviceSpec{}) {
		c.Device = DefaultDevice
	}
	if c.MemoryFloor <= 0 {
		c.MemoryFloor = c.MemoryBudget / 8
	}
	if c.AdmitTimeout == 0 {
		c.AdmitTimeout = 30 * time.Second
	}
	return c
}

// Engine is a Spilly instance: a catalog of tables plus the simulated NVMe
// arrays for table storage and spilling.
type Engine struct {
	cfg      Config
	tableArr *nvmesim.Array
	spillArr *nvmesim.Array
	cache    *colstore.Cache
	store    *colstore.Store
	faults   *metrics.FaultTracker

	// spillSched and tableSched are the shared prioritized I/O schedulers
	// for the two arrays (nil with Config.NoIOSched). Every ring the
	// engine's queries create binds to one of them; ioKeys hands each query
	// a unique fairness key.
	spillSched *iosched.Scheduler
	tableSched *iosched.Scheduler
	ioKeys     atomic.Uint64

	// results is the query-result reuse cache (nil unless
	// Config.ResultCacheBytes > 0); catalogGen is the catalog generation
	// its keys embed. RegisterTable brackets the table swap with two
	// generation bumps (see its comment), so a lookup can never pair a
	// cached result with a catalog view from the other side of a
	// registration.
	results    *rescache.Cache
	catalogGen atomic.Uint64

	// Catalog. tmu guards tables and sf: registration and queries may run
	// concurrently (readers take the read lock, loaders the write lock).
	tmu    sync.RWMutex
	tables map[string]colstore.Table
	sf     float64

	// gov admits queries against the engine-wide memory budget; nil when
	// the engine runs without a budget.
	gov *pages.Governor

	// In-flight query registry for the observability endpoint.
	queryID atomic.Int64
	qmu     sync.Mutex
	active  map[int64]*activeQuery

	// Engine-wide GC-pressure totals, accumulated per query for /metrics.
	gcAllocObjects atomic.Int64
	gcAllocBytes   atomic.Int64
	gcPauseNs      atomic.Int64
	gcNumGC        atomic.Int64

	// Engine-wide phase-2 overlap totals, accumulated per query for /metrics.
	spillStallNs    atomic.Int64
	prefetchedParts atomic.Int64

	// Engine-wide table-scan stall total, accumulated per query for /metrics.
	scanStallNs atomic.Int64

	// Engine-wide spill integrity totals, accumulated per query for /metrics.
	spillVerified     atomic.Int64
	spillChecksumErrs atomic.Int64
	spillReconstructs atomic.Int64
}

// SpillStallTotals returns the cumulative spill-readback stall time and
// prefetched-partition count across all queries this engine has run.
func (e *Engine) SpillStallTotals() (time.Duration, int64) {
	return time.Duration(e.spillStallNs.Load()), e.prefetchedParts.Load()
}

// ScanStallTotal returns the cumulative table-scan stall time (worker wall
// time blocked waiting for group reads) across all queries this engine has
// run.
func (e *Engine) ScanStallTotal() time.Duration {
	return time.Duration(e.scanStallNs.Load())
}

// IOSchedSnapshot is one shared I/O scheduler's state for observability:
// per-class dispatch counters plus per-device queue depths and backlogs.
type IOSchedSnapshot struct {
	Name    string // "spill" or "table"
	Stats   iosched.Stats
	Devices []iosched.DeviceStats
}

// IOSchedSnapshots returns the state of the engine's shared I/O schedulers
// (nil with Config.NoIOSched).
func (e *Engine) IOSchedSnapshots() []IOSchedSnapshot {
	var out []IOSchedSnapshot
	if e.spillSched != nil {
		out = append(out, IOSchedSnapshot{Name: "spill", Stats: e.spillSched.Stats(), Devices: e.spillSched.PerDevice()})
	}
	if e.tableSched != nil {
		out = append(out, IOSchedSnapshot{Name: "table", Stats: e.tableSched.Stats(), Devices: e.tableSched.PerDevice()})
	}
	return out
}

// SpillIntegrityTotals returns the cumulative spill integrity counters —
// frames verified, checksum failures, parity reconstructions — across all
// queries this engine has run.
func (e *Engine) SpillIntegrityTotals() (verified, checksumErrors, reconstructions int64) {
	return e.spillVerified.Load(), e.spillChecksumErrs.Load(), e.spillReconstructs.Load()
}

// GCStats are the engine's cumulative GC-pressure totals: heap allocation
// and collector activity attributed to completed queries.
type GCStats struct {
	AllocObjects int64
	AllocBytes   int64
	GCPause      time.Duration
	NumGC        int64
}

// GCTotals returns the cumulative GC-pressure counters across all queries
// this engine has run.
func (e *Engine) GCTotals() GCStats {
	return GCStats{
		AllocObjects: e.gcAllocObjects.Load(),
		AllocBytes:   e.gcAllocBytes.Load(),
		GCPause:      time.Duration(e.gcPauseNs.Load()),
		NumGC:        e.gcNumGC.Load(),
	}
}

// activeQuery is one registry entry: enough to render live progress without
// touching the query's hot path (all reads go through atomics).
type activeQuery struct {
	id    int64
	label string
	start time.Time
	stats *exec.Stats
	trace *trace.Tracer
	// concurrentAtStart records that another query was already in flight
	// when this one registered (approximate GC attribution, see
	// Stats.AllocApprox).
	concurrentAtStart bool
}

// Open creates an engine.
func Open(cfg Config) (*Engine, error) {
	c := cfg.withDefaults()
	e := &Engine{
		cfg:      c,
		tableArr: nvmesim.New(c.TableDevices, c.Device, nvmesim.RealClock{}),
		spillArr: nvmesim.New(c.SpillDevices, c.Device, nvmesim.RealClock{}),
		tables:   map[string]colstore.Table{},
		faults:   metrics.NewFaultTracker(),
		active:   map[int64]*activeQuery{},
	}
	if c.CacheBytes > 0 {
		e.cache = colstore.NewCache(c.CacheBytes)
	}
	e.store = colstore.NewStore(e.tableArr, e.cache)
	if !c.NoIOSched {
		icfg := iosched.Config{
			DepthTarget:   c.IODepthTarget,
			PrefetchShare: c.IOPrefetchShare,
		}
		e.spillSched = iosched.New(e.spillArr, icfg)
		e.tableSched = iosched.New(e.tableArr, icfg)
		e.store.SetIOSched(e.tableSched)
	}
	e.store.SetScanDepth(c.ScanDepth)
	if c.MemoryBudget > 0 {
		e.gov = pages.NewGovernor(c.MemoryBudget, c.MemoryFloor)
	}
	if c.ResultCacheBytes > 0 {
		rcfg := rescache.Config{
			Capacity: c.ResultCacheBytes,
			Array:    e.spillArr,
			Gov:      e.gov,
		}
		if e.spillSched != nil {
			rcfg.IO = e.spillSched
		}
		e.results = rescache.New(rcfg)
	}
	return e, nil
}

// RegisterTable adds an in-memory table to the catalog. Registration
// bumps the catalog generation twice — once before and once after the
// table swap — invalidating every cached query result. The bracket makes
// the race-free invariant hold in both directions for a concurrent
// cached Run, whose generation load and catalog read are separate
// atomic/lock sections:
//
//   - A query that loads the pre-swap generation but reads the new
//     catalog fails Put's generation re-check (the post-swap bump
//     changed it), so a new table is never paired with an old key.
//   - A query that loads the post-first-bump generation but reads the
//     old catalog either Puts before the post-swap bump — and is then
//     dropped by RemoveStale, whose cutoff is the post-swap generation —
//     or Puts after it and fails the re-check. Either way a
//     pre-registration result can never be served under the
//     post-registration generation. (Observing the post-swap generation
//     implies the swap itself is visible: the second Add is sequenced
//     after tmu.Unlock.)
func (e *Engine) RegisterTable(t *colstore.MemTable) {
	e.catalogGen.Add(1)
	e.tmu.Lock()
	e.tables[t.Name()] = t
	e.tmu.Unlock()
	gen := e.catalogGen.Add(1)
	if e.results != nil {
		e.results.RemoveStale(gen)
	}
}

// StoreOnArray moves a registered in-memory table onto the simulated NVMe
// array (compressed column chunks striped across devices, §5.2).
func (e *Engine) StoreOnArray(name string) error {
	e.tmu.RLock()
	mt, ok := e.tables[name].(*colstore.MemTable)
	e.tmu.RUnlock()
	if !ok {
		return fmt.Errorf("spilly: table %q is not in memory", name)
	}
	dt, err := e.store.WriteTable(mt)
	if err != nil {
		return err
	}
	e.tmu.Lock()
	e.tables[name] = dt
	e.tmu.Unlock()
	return nil
}

// Table returns a catalog table.
func (e *Engine) Table(name string) (colstore.Table, error) {
	e.tmu.RLock()
	t, ok := e.tables[name]
	e.tmu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("spilly: unknown table %q", name)
	}
	return t, nil
}

// LoadTPCH generates and registers the TPC-H tables at the given scale
// factor; onArray stores them on the simulated NVMe array (external scans)
// instead of keeping them in memory.
func (e *Engine) LoadTPCH(sf float64, onArray bool) error {
	g := &tpch.Gen{SF: sf}
	for name, t := range g.All() {
		e.RegisterTable(t)
		if onArray {
			if err := e.StoreOnArray(name); err != nil {
				return err
			}
		}
	}
	e.tmu.Lock()
	e.sf = sf
	e.tmu.Unlock()
	return nil
}

// LoadTPCHTbl loads TPC-H tables from dbgen-format .tbl files (official
// dbgen output or cmd/tpchgen -out) instead of generating them. sf is the
// data's scale factor (some query parameters depend on it).
func (e *Engine) LoadTPCHTbl(dir string, sf float64, onArray bool) error {
	db, err := tpch.LoadTblDir(dir, sf)
	if err != nil {
		return err
	}
	for name, t := range db.Tables {
		mt, ok := t.(*colstore.MemTable)
		if !ok {
			return fmt.Errorf("spilly: loaded table %q has unexpected type", name)
		}
		e.RegisterTable(mt)
		if onArray {
			if err := e.StoreOnArray(name); err != nil {
				return err
			}
		}
	}
	e.tmu.Lock()
	e.sf = sf
	e.tmu.Unlock()
	return nil
}

// TPCH returns the TPC-H catalog view used to build the 22 queries. The
// view holds a snapshot copy of the catalog so concurrent registration
// cannot race a running query's plan construction.
func (e *Engine) TPCH() *tpch.DB {
	e.tmu.RLock()
	tables := make(map[string]colstore.Table, len(e.tables))
	for name, t := range e.tables {
		tables[name] = t
	}
	db := &tpch.DB{SF: e.sf, Tables: tables}
	e.tmu.RUnlock()
	return db
}

// ClearCaches empties the table buffer cache and the query-result reuse
// cache — both tiers of the latter, including demoted entries on the
// spill array (their leases are freed and any governor reservation
// returned). After ClearCaches the next run of any query is a true cold
// run: scans hit the table array and the plan executes end to end (§6.1).
func (e *Engine) ClearCaches() {
	if e.cache != nil {
		e.cache.Clear()
	}
	if e.results != nil {
		e.results.Clear()
	}
}

// ResultCacheStats returns a snapshot of the query-result reuse cache
// (zero when Config.ResultCacheBytes is 0).
func (e *Engine) ResultCacheStats() rescache.Stats {
	if e.results == nil {
		return rescache.Stats{}
	}
	return e.results.Stats()
}

// BufferCacheStats returns a snapshot of the table buffer cache (zero
// when Config.CacheBytes is 0).
func (e *Engine) BufferCacheStats() colstore.CacheStats {
	if e.cache == nil {
		return colstore.CacheStats{}
	}
	return e.cache.Stats()
}

// DemoteResultCache forces every hot result-cache entry onto the spill
// array and returns how many entries were demoted (bench/test hook for
// measuring warm-NVMe hits).
func (e *Engine) DemoteResultCache() int {
	if e.results == nil {
		return 0
	}
	return e.results.DemoteAll()
}

// SpillArray exposes the spill target array (harness instrumentation).
func (e *Engine) SpillArray() *nvmesim.Array { return e.spillArr }

// Faults exposes the engine's cumulative fault-path counters: retries,
// failovers, canceled queries, and per-device error counts.
func (e *Engine) Faults() *metrics.FaultTracker { return e.faults }

// TableArray exposes the table storage array.
func (e *Engine) TableArray() *nvmesim.Array { return e.tableArr }

// NewCtx builds a fresh per-query execution context, including the query's
// spill lease. When the budget is tight, partition count and page size are
// reduced so the active page working set (workers × partitions × page size)
// stays within the budget — the knob a real engine would derive from its
// memory grant. Engine run paths re-derive both from the admission grant
// (applyGrant) when the governor hands out less than the full budget.
func (e *Engine) NewCtx() *exec.Ctx {
	ctx := &exec.Ctx{
		Workers:           e.cfg.Workers,
		Mode:              e.cfg.Mode,
		PageSize:          e.cfg.PageSize,
		Partitions:        e.cfg.Partitions,
		PartitionAt:       e.cfg.PartitionAt,
		ReadDepth:         e.cfg.ReadDepth,
		BlockingSpillRead: e.cfg.BlockingSpillRead,
		ForceGrace:        e.cfg.ForceGrace,
		NoPreAgg:          e.cfg.NoPreAgg,
		QueryID:           e.ioKeys.Add(1),
		ScanDepth:         e.cfg.ScanDepth,
		Stats:             &exec.Stats{},
	}
	if e.cfg.MemoryBudget > 0 {
		ctx.Budget = pages.NewBudget(e.cfg.MemoryBudget)
		if ctx.Partitions == 0 && ctx.PageSize == 0 {
			parts, pageSize := tuneForBudget(e.cfg.MemoryBudget, e.cfg.Workers)
			ctx.Partitions = parts
			ctx.PageSize = pageSize
		}
	}
	if !e.cfg.DisableSpill {
		ctx.Spill = &core.SpillConfig{
			Array:    e.spillArr,
			Lease:    e.spillArr.NewLease(),
			Compress: e.cfg.Compression,
			Parity:   e.cfg.SpillParity,
			Query:    ctx.QueryID,
		}
		if e.spillSched != nil {
			ctx.Spill.Sched = e.spillSched
		}
	}
	if e.cfg.Profile {
		ctx.Trace = trace.New(ctx.Workers)
	}
	return ctx
}

// tuneForBudget picks a partition count and page size whose active working
// set (workers × partitions × page size) stays around 1/16 of the budget.
// A query pipelines several materializing operators at once (e.g. Q9 holds
// five join builds), so each operator's working-set floor must be a small
// fraction of the whole budget or memory pressure turns into thrash.
func tuneForBudget(budget int64, workers int) (parts, pageSize int) {
	parts, pageSize = 64, 64<<10
	target := budget / 16
	for parts > 8 && int64(workers*parts*pageSize) > target {
		parts /= 2
	}
	for pageSize > 4<<10 && int64(workers*parts*pageSize) > target {
		pageSize /= 2
	}
	return parts, pageSize
}

// applyGrant resizes a context's memory budget to the admission grant and
// re-derives the partition/page-size tuning from it (unless the caller
// pinned those explicitly in Config). The idle-engine grant equals the full
// budget, so single-query execution is tuned exactly as before.
func (e *Engine) applyGrant(ctx *exec.Ctx, grant *pages.Grant) {
	if grant == nil || grant.Bytes() == e.cfg.MemoryBudget {
		return
	}
	ctx.Budget = pages.NewBudget(grant.Bytes())
	if e.cfg.Partitions == 0 && e.cfg.PageSize == 0 {
		ctx.Partitions, ctx.PageSize = tuneForBudget(grant.Bytes(), e.cfg.Workers)
	}
}

// Stats summarizes one query execution.
type Stats struct {
	Duration       time.Duration
	ScannedRows    int64
	ScannedBytes   int64
	SpilledBytes   int64 // raw page bytes spilled
	WrittenBytes   int64 // post-compression bytes written to the array
	SpillReadBytes int64
	SpilledOps     int64
	// SpillRetries counts transient I/O errors recovered by retry;
	// SpillFailovers counts spill writes re-striped away from a dead
	// device. Both zero on a healthy array.
	SpillRetries   int64
	SpillFailovers int64
	// SpillStallTime is worker wall time spent stalled inside spill
	// readback (waiting for pages the scheduler had not yet prefetched);
	// PrefetchedPartitions counts spilled partitions whose readback was
	// already in flight when phase 2 reached them.
	SpillStallTime       time.Duration
	PrefetchedPartitions int64
	// ScanStallTime is worker wall time spent blocked inside table-scan
	// Next calls waiting on group reads the scan lookahead had not
	// finished — the scan-side analog of SpillStallTime.
	ScanStallTime time.Duration
	// ScanStalls counts how many times scan workers blocked waiting for a
	// group read (each block promotes the group's reads to demand class);
	// ScanStallTime/ScanStalls is the mean demand wait per scan block.
	ScanStalls int64
	// DemandReads counts spill-readback reads issued demand-class (their
	// partition's consumer had already opened it); DemandReadTime is the
	// sum of their per-request completion latencies. Where the stall
	// counters measure worker-side blocked wall time, these measure how
	// long each latency-critical read itself spent queued behind other
	// I/O — the quantity the shared I/O scheduler's demand-first dispatch
	// bounds (mean latency = DemandReadTime / DemandReads).
	DemandReads    int64
	DemandReadTime time.Duration
	// Spill integrity counters (Config.SpillParity > 0): frames whose
	// checksums verified on readback, blocks that failed verification,
	// blocks rebuilt from their parity stripe, and the parity bytes written
	// alongside the spilled data (the redundancy overhead).
	SpillPagesVerified   int64
	SpillChecksumErrors  int64
	SpillReconstructions int64
	SpillParityBytes     int64
	// TuplesPerSec is scanned tuples divided by execution time — the
	// paper's headline throughput metric (§6.1).
	TuplesPerSec float64
	// CyclesPerByte is the §4.4 cost metric over scanned bytes.
	CyclesPerByte float64
	// AdmissionWait is the time the query spent queued for a memory grant
	// before execution began (zero on an ungoverned or idle engine);
	// MemoryGrant is the memory grant it was admitted with (the full
	// budget when idle, a share under concurrency; 0 = unlimited).
	AdmissionWait time.Duration
	MemoryGrant   int64
	// AllocObjects and AllocBytes are the process-wide heap-allocation
	// deltas (runtime.MemStats Mallocs / TotalAlloc) across the query's
	// execution phase (plan construction excluded) — the GC-pressure cost
	// of running it. Approximate under
	// concurrency: the process-wide counters mix in every other query
	// running at the same time. AllocApprox reports whether any other
	// query overlapped this one's measurement window; engine-level totals
	// (Engine.GCTotals) remain exact sums of these deltas.
	AllocObjects int64
	AllocBytes   int64
	// GCPause is the total stop-the-world pause time incurred during the
	// query; NumGC counts the garbage collections that ran. Like
	// AllocObjects, both are process-wide and approximate under
	// concurrency (see AllocApprox).
	GCPause time.Duration
	NumGC   int64
	// AllocApprox is true when another query was in flight during any part
	// of this query's execution, making the per-query AllocObjects /
	// AllocBytes / GCPause / NumGC attributions approximate.
	AllocApprox bool
	// ResultCacheHit is true when the result was served from the reuse
	// cache without executing the plan (Duration is then the lookup +
	// restore time); ResultCacheTier names the serving tier ("memory" or
	// "nvme").
	ResultCacheHit  bool
	ResultCacheTier string
	// Schemes counts spilled pages per compression scheme name (§6.8).
	Schemes map[string]int64
}

// Result is a query result with its statistics.
type Result struct {
	Batch   *data.Batch
	Stats   Stats
	profile *Profile
}

// Table renders the result as an ASCII table (for examples and tools).
func (r *Result) Table() string { return FormatBatch(r.Batch, 50) }

// Profile is the per-operator execution profile of a query: a span tree
// with self/inclusive worker time and materialization counters per node.
type Profile = trace.Profile

// Profile returns the query's per-operator execution profile, or nil when
// the engine ran without Config.Profile (or the Ctx had no tracer).
func (r *Result) Profile() *Profile { return r.profile }

// FormatProfile renders a profile as an EXPLAIN ANALYZE-style tree.
func FormatProfile(p *Profile) string { return trace.FormatProfile(p) }

// Run executes a plan and collects its result.
func (e *Engine) Run(node exec.Node) (*Result, error) {
	ctx := e.NewCtx()
	return e.RunCtx(ctx, node)
}

// RunContext executes a plan under a context: cancellation or deadline
// expiry aborts the query promptly (blocking spill I/O observes the context
// within one poll interval) with all buffers returned to their pools, and
// the query returns a *QueryError wrapping context.Canceled or
// context.DeadlineExceeded.
func (e *Engine) RunContext(goCtx context.Context, node exec.Node) (*Result, error) {
	ctx := e.NewCtx()
	ctx.Context = goCtx
	return e.RunCtx(ctx, node)
}

// RunTPCHContext builds and runs TPC-H query q (1–22) under a context.
func (e *Engine) RunTPCHContext(goCtx context.Context, q int) (*Result, error) {
	ctx := e.NewCtx()
	ctx.Context = goCtx
	return e.runAdmitted(ctx, fmt.Sprintf("tpch-q%d", q), e.tpchFingerprint(q), func() (exec.Node, error) {
		return tpch.BuildQuery(ctx, e.TPCH(), q)
	})
}

// registerQuery adds a query to the in-flight registry and returns the
// entry plus its deregistration func. The entry records whether another
// query was already in flight at registration — one half of the
// approximate-allocation-attribution check.
func (e *Engine) registerQuery(label string, ctx *exec.Ctx) (*activeQuery, func()) {
	q := &activeQuery{
		id:    e.queryID.Add(1),
		label: label,
		start: time.Now(),
		stats: ctx.Stats,
		trace: ctx.Trace,
	}
	e.qmu.Lock()
	e.active[q.id] = q
	q.concurrentAtStart = len(e.active) > 1
	e.qmu.Unlock()
	return q, func() {
		e.qmu.Lock()
		delete(e.active, q.id)
		e.qmu.Unlock()
	}
}

// ActiveQueries returns the number of queries currently executing.
func (e *Engine) ActiveQueries() int {
	e.qmu.Lock()
	n := len(e.active)
	e.qmu.Unlock()
	return n
}

// GovernorStats returns a snapshot of the admission governor: granted
// bytes, active and queued queries, and cumulative admission totals. Zero
// when the engine runs without a memory budget.
func (e *Engine) GovernorStats() pages.GovernorStats {
	if e.gov == nil {
		return pages.GovernorStats{}
	}
	return e.gov.Stats()
}

// RunCtx executes a plan under a caller-provided context.
func (e *Engine) RunCtx(ctx *exec.Ctx, node exec.Node) (*Result, error) {
	return e.runLabeled(ctx, node, "query")
}

// runLabeled runs an already-built plan through the admission path. The
// plan's structural fingerprint keys the result cache; plans containing
// hand-built expressions (or node types the fingerprinter doesn't know)
// fingerprint to 0 and are never cached. Scans hash the table snapshot's
// process-unique ID, so a plan built over an old snapshot of a
// re-registered table can never share a cache entry with plans over the
// new one — mutating a MemTable in place after caching a plan over it is
// the one way to serve stale bits, and registered tables are append-only
// by convention.
func (e *Engine) runLabeled(ctx *exec.Ctx, node exec.Node, label string) (*Result, error) {
	planFP, _ := exec.PlanFingerprint(node)
	return e.runAdmitted(ctx, label, planFP, func() (exec.Node, error) { return node, nil })
}

// tpchFingerprint is the result-cache key for a TPC-H query. TPC-H plans
// are built *after* admission (Q11/Q15/Q22 run scalar subqueries at
// build time), so the pre-admission cache lookup can't hash the plan
// tree; (query number, scale factor) determines the plan because
// BuildQuery is deterministic given the catalog, and the catalog
// generation in the key covers the catalog itself.
func (e *Engine) tpchFingerprint(q int) uint64 {
	e.tmu.RLock()
	sf := e.sf
	e.tmu.RUnlock()
	const seed = 0x5ca1ab1e
	h := xhash.String("tpch", seed)
	h = xhash.Combine(h, xhash.U64(uint64(int64(q)), seed))
	h = xhash.Combine(h, xhash.U64(math.Float64bits(sf), seed))
	if h == 0 {
		h = 1
	}
	return h
}

// admitCtx waits for a memory grant when the engine is governed, resizing
// the context's budget and tuning to the grant. A nil grant with nil error
// means the engine is ungoverned.
func (e *Engine) admitCtx(ctx *exec.Ctx) (*pages.Grant, time.Duration, error) {
	if e.gov == nil {
		return nil, 0, nil
	}
	timeout := e.cfg.AdmitTimeout
	if timeout < 0 {
		timeout = 0 // negative config = wait indefinitely
	}
	grant, wait, err := e.gov.Admit(ctx.Context, timeout)
	if err != nil {
		qe := &QueryError{Op: "admit", Part: -1, Device: -1, Err: err}
		if errors.Is(err, pages.ErrAdmissionTimeout) {
			qe.Hint = "raise Config.AdmitTimeout or MemoryBudget, or lower concurrency"
		}
		return nil, wait, qe
	}
	e.applyGrant(ctx, grant)
	return grant, wait, nil
}

// serveCached answers a query from the result cache when possible,
// bypassing admission entirely — a warm hit neither queues for a memory
// grant nor touches the spill lease the context pre-created (the lease is
// freed by ctx.Close). Returns nil on a miss (or unreadable demoted
// entry, which the cache drops so the recompute can re-populate it).
func (e *Engine) serveCached(ctx *exec.Ctx, key rescache.Key) *Result {
	start := time.Now()
	b, tier, _ := e.results.Get(key)
	if b == nil {
		return nil
	}
	ctx.Close() // frees the query's unused spill lease
	st := Stats{
		Duration:        time.Since(start),
		ResultCacheHit:  true,
		ResultCacheTier: tier.String(),
	}
	res := &Result{Batch: b, Stats: st}
	if ctx.Trace != nil {
		res.profile = ctx.Trace.Profile(st.Duration)
		res.profile.CacheHit = true
		res.profile.CacheTier = st.ResultCacheTier
	}
	e.faults.QueryCompleted()
	return res
}

// runAdmitted is the shared execution path: it consults the result cache,
// then waits for a memory grant, registers the query with the
// observability endpoint under label, builds and runs the plan, and folds
// the execution counters into engine-wide totals. Plan construction
// happens after admission because some TPC-H plans (Q11/Q15/Q22) execute
// scalar subqueries at build time — that work must run under the query's
// grant and spill lease too. planFP is the plan's canonical fingerprint
// (0 = uncacheable).
func (e *Engine) runAdmitted(ctx *exec.Ctx, label string, planFP uint64, build func() (exec.Node, error)) (*Result, error) {
	e.faults.QueryStarted()
	var key rescache.Key
	cacheable := e.results != nil && planFP != 0
	if cacheable {
		// The generation is captured before the lookup and re-checked at
		// Put: a RegisterTable racing this query bumps it first, so a
		// result computed against a mid-flight catalog can't be stored.
		key = rescache.Key{Plan: planFP, Gen: e.catalogGen.Load()}
		if res := e.serveCached(ctx, key); res != nil {
			return res, nil
		}
	}
	grant, admitWait, err := e.admitCtx(ctx)
	if err != nil {
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			e.faults.QueryCanceled()
		} else {
			e.faults.QueryFailed()
		}
		ctx.Close() // frees the query's (unused) spill lease
		return nil, err
	}
	defer grant.Release() // after ctx.Close: memory really is back by then
	q, deregister := e.registerQuery(label, ctx)
	defer deregister()
	defer ctx.Close() // return pooled batches, release budget, free the spill lease
	start := time.Now()
	node, err := build()
	// Snapshot after plan construction: AllocObjects tracks the execution
	// hot path the recycling work targets, not per-plan operator setup
	// (BENCH_alloc.json baselines were captured with that bracket).
	var msBefore runtime.MemStats
	runtime.ReadMemStats(&msBefore)
	var out *data.Batch
	if err == nil {
		out, err = exec.Collect(ctx, node)
	}
	if s := ctx.Stats; s != nil {
		e.faults.AddRetries(s.SpillRetries.Load())
		e.faults.AddFailovers(s.SpillFailovers.Load())
	}
	if err != nil {
		err = core.WrapQueryError("query", err)
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			e.faults.QueryCanceled()
		} else {
			e.faults.QueryFailed()
		}
		var qe *QueryError
		if errors.As(err, &qe) && qe.Device >= 0 {
			e.faults.DeviceError(qe.Device, 1)
		}
		return nil, err
	}
	dur := time.Since(start)
	var msAfter runtime.MemStats
	runtime.ReadMemStats(&msAfter)
	s := ctx.Stats
	st := Stats{
		Duration:             dur,
		ScannedRows:          s.ScannedRows.Load(),
		ScannedBytes:         s.ScannedBytes.Load(),
		SpilledBytes:         s.SpilledBytes.Load(),
		WrittenBytes:         s.WrittenBytes.Load(),
		SpillReadBytes:       s.SpillReadBytes.Load(),
		SpilledOps:           s.SpilledOps.Load(),
		SpillRetries:         s.SpillRetries.Load(),
		SpillFailovers:       s.SpillFailovers.Load(),
		SpillStallTime:       time.Duration(s.SpillStallNanos.Load()),
		PrefetchedPartitions: s.PrefetchedPartitions.Load(),
		ScanStallTime:        time.Duration(s.ScanStallNanos.Load()),
		ScanStalls:           s.ScanStalls.Load(),
		DemandReads:          s.DemandReads.Load(),
		DemandReadTime:       time.Duration(s.DemandReadNanos.Load()),
		SpillPagesVerified:   s.SpillPagesVerified.Load(),
		SpillChecksumErrors:  s.SpillChecksumErrors.Load(),
		SpillReconstructions: s.SpillReconstructions.Load(),
		SpillParityBytes:     s.SpillParityBytes.Load(),
		AdmissionWait:        admitWait,
		MemoryGrant:          grant.Bytes(),
	}
	if grant == nil {
		st.MemoryGrant = e.cfg.MemoryBudget
	}
	e.spillStallNs.Add(int64(st.SpillStallTime))
	e.prefetchedParts.Add(st.PrefetchedPartitions)
	e.scanStallNs.Add(int64(st.ScanStallTime))
	e.spillVerified.Add(st.SpillPagesVerified)
	e.spillChecksumErrs.Add(st.SpillChecksumErrors)
	e.spillReconstructs.Add(st.SpillReconstructions)
	if dur > 0 {
		st.TuplesPerSec = float64(st.ScannedRows) / dur.Seconds()
	}
	st.CyclesPerByte = metrics.CyclesPerByte(dur, st.ScannedBytes)
	st.AllocObjects = int64(msAfter.Mallocs - msBefore.Mallocs)
	st.AllocBytes = int64(msAfter.TotalAlloc - msBefore.TotalAlloc)
	st.GCPause = time.Duration(msAfter.PauseTotalNs - msBefore.PauseTotalNs)
	st.NumGC = int64(msAfter.NumGC - msBefore.NumGC)
	// Approximate attribution if any other query overlapped us: one was
	// already running when we registered, or one registered after us (its
	// id is past ours) while we ran.
	st.AllocApprox = q.concurrentAtStart || e.queryID.Load() > q.id
	e.gcAllocObjects.Add(st.AllocObjects)
	e.gcAllocBytes.Add(st.AllocBytes)
	e.gcPauseNs.Add(int64(st.GCPause))
	e.gcNumGC.Add(st.NumGC)
	if hist := s.SchemeHistogram(); len(hist) > 0 {
		st.Schemes = map[string]int64{}
		for id, n := range hist {
			name := "raw"
			if c := codec.ByID(id); c != nil {
				name = c.Name()
			}
			st.Schemes[name] += n
		}
	}
	if cacheable && e.catalogGen.Load() == key.Gen {
		// Return the query's memory before offering the result: the cache
		// rents governor headroom, and a lone query's grant is the whole
		// budget — renting against it would always fail and demote every
		// entry straight to NVMe. Close and Release are idempotent, so the
		// deferred teardown above stays a no-op backstop.
		ctx.Close()
		grant.Release()
		// Cost-based admission inside Put decides whether this result is
		// worth keeping; the generation re-check above keeps results that
		// straddled a catalog change out of the cache entirely.
		e.results.Put(key, out, dur)
	}
	e.faults.QueryCompleted()
	res := &Result{Batch: out, Stats: st}
	if ctx.Trace != nil {
		res.profile = ctx.Trace.Profile(dur)
		res.profile.AllocObjects = st.AllocObjects
		res.profile.AllocBytes = st.AllocBytes
		res.profile.GCPause = st.GCPause
		res.profile.NumGC = st.NumGC
		res.profile.AllocApprox = st.AllocApprox
		res.profile.AdmissionWait = st.AdmissionWait
		res.profile.MemoryGrant = st.MemoryGrant
	}
	return res, nil
}

// AggMicroPlan builds the paper's §6.3 spilling-aggregation
// microbenchmark over the loaded TPC-H data.
func (e *Engine) AggMicroPlan() exec.Node { return tpch.AggMicro(e.TPCH()) }

// JoinMicroPlan builds the paper's §6.7 spilling-join microbenchmark.
func (e *Engine) JoinMicroPlan() exec.Node { return tpch.JoinMicro(e.TPCH()) }

// RunTPCH builds and runs TPC-H query q (1–22).
func (e *Engine) RunTPCH(q int) (*Result, error) {
	ctx := e.NewCtx()
	return e.runAdmitted(ctx, fmt.Sprintf("tpch-q%d", q), e.tpchFingerprint(q), func() (exec.Node, error) {
		return tpch.BuildQuery(ctx, e.TPCH(), q)
	})
}

// TraceQuery runs a plan while sampling engine utilization at the given
// interval (Figure 8). The returned samples carry rates for keys
// "tuples" (scanned rows/s), "spill_write" and "spill_read" (bytes/s on
// the spill array), "table_read" (bytes/s on the table array), and
// "mem_bytes" (a memory-bandwidth proxy: all bytes touched/s).
func (e *Engine) TraceQuery(node exec.Node, interval time.Duration) (*Result, []metrics.Sample, error) {
	ctx := e.NewCtx()
	tracer := metrics.NewTracer(interval, func() map[string]float64 {
		sp := e.spillArr.Stats()
		tb := e.tableArr.Stats()
		rows := float64(ctx.Stats.ScannedRows.Load())
		scanned := float64(ctx.Stats.ScannedBytes.Load())
		return map[string]float64{
			"tuples":      rows,
			"spill_write": float64(sp.BytesWritten),
			"spill_read":  float64(sp.BytesRead),
			"table_read":  float64(tb.BytesRead),
			"mem_bytes":   scanned + float64(sp.BytesWritten) + float64(sp.BytesRead),
		}
	})
	tracer.Start()
	defer ctx.Close()
	start := time.Now()
	out, err := exec.Collect(ctx, node)
	samples := tracer.Stop()
	if err != nil {
		return nil, nil, err
	}
	dur := time.Since(start)
	st := Stats{
		Duration:     dur,
		ScannedRows:  ctx.Stats.ScannedRows.Load(),
		ScannedBytes: ctx.Stats.ScannedBytes.Load(),
		SpilledBytes: ctx.Stats.SpilledBytes.Load(),
	}
	if dur > 0 {
		st.TuplesPerSec = float64(st.ScannedRows) / dur.Seconds()
	}
	return &Result{Batch: out, Stats: st}, samples, nil
}
