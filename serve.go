package spilly

import (
	"net"
	"net/http"
	"sort"
	"time"

	"github.com/spilly-db/spilly/internal/obsrv"
	"github.com/spilly-db/spilly/internal/uring"
)

// Handler returns the engine's observability HTTP handler:
//
//   - /metrics — Prometheus text-format counters: query totals,
//     spill retry/failover totals, buffer-cache (spilly_bufcache_*),
//     result-cache (spilly_cache_*) and shared-I/O-scheduler
//     (spilly_iosched_*) counters, and per-device NVMe-array counters
//     (bytes, request counts, spill area, simulated queue backlog).
//   - /queries — JSON snapshot of in-flight queries with live progress
//     counters and, under Config.Profile, their operator spans so far.
//   - /debug/pprof/ — the standard Go profiling endpoints.
//
// The handler reads only atomic counters and short-lived snapshots, so it is
// safe to scrape while queries run.
func (e *Engine) Handler() http.Handler {
	srv := &obsrv.Server{
		Faults:     e.faults,
		SpillArray: e.spillArr,
		TableArray: e.tableArr,
		Queries:    e.queriesSnapshot,
		GC: func() obsrv.GCStats {
			g := e.GCTotals()
			return obsrv.GCStats{
				AllocObjects: g.AllocObjects,
				AllocBytes:   g.AllocBytes,
				GCPauseSecs:  g.GCPause.Seconds(),
				NumGC:        g.NumGC,
			}
		},
		Spill: func() obsrv.SpillStats {
			stall, prefetched := e.SpillStallTotals()
			verified, csumErrs, recons := e.SpillIntegrityTotals()
			return obsrv.SpillStats{
				StallSecs:            stall.Seconds(),
				PrefetchedPartitions: prefetched,
				PagesVerified:        verified,
				ChecksumErrors:       csumErrs,
				Reconstructions:      recons,
			}
		},
		Admission: func() obsrv.AdmissionStats {
			g := e.GovernorStats()
			return obsrv.AdmissionStats{
				ActiveQueries: e.ActiveQueries(),
				Queued:        g.Queued,
				GrantedBytes:  g.Granted,
				TotalBytes:    g.Total,
				Admitted:      g.Admitted,
				Timeouts:      g.Timeouts,
				WaitSecs:      g.WaitTotal.Seconds(),
			}
		},
		Leases: func() obsrv.LeaseStats {
			return obsrv.LeaseStats{
				Leases:      e.spillArr.Leases(),
				LiveExtents: e.spillArr.LiveExtents(),
				LiveBytes:   e.spillArr.LeaseLiveBytes(),
			}
		},
		BufCache: func() obsrv.BufCacheStats {
			bc := e.BufferCacheStats()
			return obsrv.BufCacheStats{
				Hits:      bc.Hits,
				Misses:    bc.Misses,
				Used:      bc.Used,
				Blocks:    bc.Blocks,
				Oversized: bc.Oversized,
			}
		},
		ResultCache: func() obsrv.ResultCacheStats {
			rc := e.ResultCacheStats()
			return obsrv.ResultCacheStats{
				HotEntries:    int64(rc.HotEntries),
				HotBytes:      rc.HotBytes,
				DiskEntries:   int64(rc.DiskEntries),
				DiskBytes:     rc.DiskBytes,
				ReservedBytes: rc.Reserved,
				Hits:          rc.Hits,
				HitsMemory:    rc.HitsMemory,
				HitsNVMe:      rc.HitsNVMe,
				Misses:        rc.Misses,
				Puts:          rc.Puts,
				Rejects:       rc.Rejects,
				Demotions:     rc.Demotions,
				Restores:      rc.Restores,
				RestoreBytes:  rc.RestoreBytes,
				Drops:         rc.Drops,
				Invalidated:   rc.Invalidated,
				Shrinks:       rc.Shrinks,
			}
		},
		IOSched: func() []obsrv.IOSchedStats {
			snaps := e.IOSchedSnapshots()
			out := make([]obsrv.IOSchedStats, len(snaps))
			for i, sn := range snaps {
				st := obsrv.IOSchedStats{
					Array:    sn.Name,
					Promoted: sn.Stats.Promoted,
					Aged:     sn.Stats.Aged,
					Queued:   sn.Stats.Queued,
					Inflight: sn.Stats.Inflight,
				}
				for cls, c := range sn.Stats.Classes {
					st.Classes = append(st.Classes, obsrv.IOSchedClassStats{
						Class:      uring.Class(cls).String(),
						Dispatched: c.Dispatched,
						Deferred:   c.Deferred,
					})
				}
				for _, d := range sn.Devices {
					st.Devices = append(st.Devices, obsrv.IOSchedDeviceStats{
						ReadDepth:        d.ReadDepth,
						WriteDepth:       d.WriteDepth,
						ReadQueued:       d.ReadQueued,
						WriteQueued:      d.WriteQueued,
						ReadBacklogSecs:  d.ReadBacklog.Seconds(),
						WriteBacklogSecs: d.WriteBacklog.Seconds(),
					})
				}
				out[i] = st
			}
			return out
		},
	}
	return srv.Handler()
}

// Serve starts the observability endpoint on addr (e.g. ":8080", or ":0"
// for an ephemeral port) in a background goroutine. It returns the bound
// address and a shutdown func that closes the listener and any open
// connections.
func (e *Engine) Serve(addr string) (string, func() error, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, err
	}
	srv := &http.Server{Handler: e.Handler()}
	go srv.Serve(ln)
	return ln.Addr().String(), srv.Close, nil
}

// queriesSnapshot renders the in-flight query registry for /queries.
func (e *Engine) queriesSnapshot() []obsrv.QueryStatus {
	e.qmu.Lock()
	qs := make([]*activeQuery, 0, len(e.active))
	for _, q := range e.active {
		qs = append(qs, q)
	}
	e.qmu.Unlock()
	sort.Slice(qs, func(i, j int) bool { return qs[i].id < qs[j].id })
	out := make([]obsrv.QueryStatus, 0, len(qs))
	for _, q := range qs {
		st := obsrv.QueryStatus{
			ID:             q.id,
			Label:          q.label,
			ElapsedSeconds: time.Since(q.start).Seconds(),
		}
		if s := q.stats; s != nil {
			st.ScannedRows = s.ScannedRows.Load()
			st.ScannedBytes = s.ScannedBytes.Load()
			st.SpilledBytes = s.SpilledBytes.Load()
			st.WrittenBytes = s.WrittenBytes.Load()
			st.SpillReadBytes = s.SpillReadBytes.Load()
		}
		if q.trace != nil {
			st.Spans = q.trace.Snapshots()
		}
		out = append(out, st)
	}
	return out
}
