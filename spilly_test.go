package spilly

import (
	"strings"
	"testing"

	"github.com/spilly-db/spilly/internal/core"
)

func TestOpenAndRunTPCHInMemory(t *testing.T) {
	eng, err := Open(Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.LoadTPCH(0.005, false); err != nil {
		t.Fatal(err)
	}
	res, err := eng.RunTPCH(1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Batch.Len() == 0 || res.Stats.ScannedRows == 0 || res.Stats.TuplesPerSec <= 0 {
		t.Fatalf("bad result: %+v", res.Stats)
	}
	if res.Stats.SpilledBytes != 0 {
		t.Fatal("unlimited budget spilled")
	}
}

func TestRunTPCHFromArrayWithSpilling(t *testing.T) {
	eng, err := Open(Config{
		Workers:      2,
		MemoryBudget: 256 << 10,
		Compression:  true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.LoadTPCH(0.005, true); err != nil {
		t.Fatal(err)
	}
	// Q9 materializes partsupp and orders; with a 256 KB budget it must
	// spill and still produce the same rows as the in-memory run.
	res, err := eng.RunTPCH(9)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.SpilledBytes == 0 {
		t.Fatal("Q9 under 256KB budget did not spill")
	}

	ref, err := Open(Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	ref.LoadTPCH(0.005, false)
	want, err := ref.RunTPCH(9)
	if err != nil {
		t.Fatal(err)
	}
	if got, exp := res.Table(), want.Table(); got != exp {
		t.Fatalf("spilling external run differs from in-memory run:\n%s\nvs\n%s", got, exp)
	}
}

func TestInMemoryOnlyEngineFails(t *testing.T) {
	eng, err := Open(Config{Workers: 2, MemoryBudget: 64 << 10, DisableSpill: true, Mode: NeverPartition})
	if err != nil {
		t.Fatal(err)
	}
	eng.LoadTPCH(0.005, false)
	if _, err := eng.RunTPCH(9); err != core.ErrOutOfMemory {
		t.Fatalf("err = %v, want ErrOutOfMemory", err)
	}
}

func TestPublicPlanBuilding(t *testing.T) {
	eng, _ := Open(Config{Workers: 2})
	schema := NewSchema(ColumnDef{Name: "k", Type: Int64}, ColumnDef{Name: "v", Type: Float64})
	mt := NewMemTable("points", schema, 0)
	b := NewBatch(schema, 100)
	for i := 0; i < 100; i++ {
		b.Cols[0].I = append(b.Cols[0].I, int64(i%10))
		b.Cols[1].F = append(b.Cols[1].F, float64(i))
	}
	b.SetLen(100)
	mt.Append(b)
	eng.RegisterTable(mt)

	tbl, err := eng.Table("points")
	if err != nil {
		t.Fatal(err)
	}
	sc := NewScan(tbl)
	sc.Filter = Cmp("<", Col(sc.Schema(), "k"), ConstInt(5))
	agg := NewAgg(sc, []string{"k"}, []AggSpec{{Func: Sum, Col: "v", As: "total"}})
	sorted := &SortNode{Child: agg, Keys: []SortKey{{Col: "k"}}}
	res, err := eng.Run(sorted)
	if err != nil {
		t.Fatal(err)
	}
	if res.Batch.Len() != 5 {
		t.Fatalf("groups = %d, want 5", res.Batch.Len())
	}
	// Group k: values k, k+10, ..., k+90 → sum = 10k + 450.
	for r := 0; r < 5; r++ {
		k := res.Batch.Cols[0].I[r]
		if res.Batch.Cols[1].F[r] != float64(10*k+450) {
			t.Fatalf("group %d sum = %v", k, res.Batch.Cols[1].F[r])
		}
	}
}

func TestFormatBatch(t *testing.T) {
	schema := NewSchema(ColumnDef{Name: "name", Type: String}, ColumnDef{Name: "d", Type: Date})
	b := NewBatch(schema, 2)
	b.Cols[0].S = []string{"a", "bb"}
	b.Cols[1].I = []int64{ParseDate("1995-01-01"), ParseDate("1996-02-02")}
	b.SetLen(2)
	out := FormatBatch(b, 1)
	if !strings.Contains(out, "1995-01-01") || !strings.Contains(out, "1 more rows") {
		t.Fatalf("format output:\n%s", out)
	}
}

func TestTraceQuery(t *testing.T) {
	eng, err := Open(Config{Workers: 2, MemoryBudget: 256 << 10})
	if err != nil {
		t.Fatal(err)
	}
	eng.LoadTPCH(0.01, false)
	res, samples, err := eng.TraceQuery(eng.AggMicroPlan(), 2e6) // 2ms sampling
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.SpilledBytes == 0 {
		t.Fatal("trace target did not spill")
	}
	if len(samples) == 0 {
		t.Fatal("no trace samples collected")
	}
	sawWrite := false
	for _, s := range samples {
		if s.Rates["spill_write"] > 0 {
			sawWrite = true
		}
	}
	if !sawWrite {
		t.Fatal("trace never observed spill writes")
	}
}
