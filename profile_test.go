package spilly

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestProfileTimesSumToDuration: with profiling on, the per-operator self
// times must account for the query's wall time — the tree renderer would be
// useless if time vanished between operators. Budget: within 10% of
// Stats.Duration (plan build and result collection sit outside the spans).
func TestProfileTimesSumToDuration(t *testing.T) {
	eng, err := Open(Config{Workers: 2, Profile: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.LoadTPCH(0.01, false); err != nil {
		t.Fatal(err)
	}
	res, err := eng.RunTPCH(1)
	if err != nil {
		t.Fatal(err)
	}
	p := res.Profile()
	if p == nil {
		t.Fatal("Profile() = nil with Config.Profile set")
	}
	if len(p.Roots) == 0 {
		t.Fatal("profile has no spans")
	}
	sum := p.SelfSum()
	total := res.Stats.Duration
	if sum > total {
		t.Fatalf("profile self-time sum %v exceeds query duration %v", sum, total)
	}
	if miss := total - sum; miss > total/10 {
		t.Fatalf("profile accounts for %v of %v (missing %v > 10%%)", sum, total, miss)
	}
	text := FormatProfile(p)
	for _, want := range []string{"query:", "scan", "agg", "sort"} {
		if !strings.Contains(text, want) {
			t.Fatalf("rendered profile missing %q:\n%s", want, text)
		}
	}
}

// TestProfileOffByDefault: without Config.Profile the result carries no
// profile and rendering nil stays harmless.
func TestProfileOffByDefault(t *testing.T) {
	eng, err := Open(Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.LoadTPCH(0.005, false); err != nil {
		t.Fatal(err)
	}
	res, err := eng.RunTPCH(1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Profile() != nil {
		t.Fatal("Profile() non-nil without Config.Profile")
	}
	if got := FormatProfile(nil); got != "(no profile)\n" {
		t.Fatalf("FormatProfile(nil) = %q", got)
	}
}

// TestServeDuringQuery: the observability endpoint must serve Prometheus
// counters, the pprof index, and the in-flight query snapshot while a query
// is actually executing.
func TestServeDuringQuery(t *testing.T) {
	eng, err := Open(Config{Workers: 2, MemoryBudget: 256 << 10, Profile: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.LoadTPCH(0.01, false); err != nil {
		t.Fatal(err)
	}
	addr, shutdown, err := eng.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer shutdown()
	base := "http://" + addr

	// Warm-up query so cumulative counters are non-zero.
	if _, err := eng.RunTPCH(1); err != nil {
		t.Fatal(err)
	}

	// Run a spilling query in the background and scrape while it's live.
	var wg sync.WaitGroup
	wg.Add(1)
	var qerr error
	go func() {
		defer wg.Done()
		_, qerr = eng.RunTPCH(9)
	}()

	sawInFlight := false
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		var snap struct {
			Queries []struct {
				Label string `json:"label"`
			} `json:"queries"`
		}
		body := httpGet(t, base+"/queries")
		if err := json.Unmarshal(body, &snap); err != nil {
			t.Fatalf("bad /queries JSON: %v\n%s", err, body)
		}
		for _, q := range snap.Queries {
			if q.Label == "tpch-q9" {
				sawInFlight = true
			}
		}
		if sawInFlight {
			break
		}
		time.Sleep(time.Millisecond)
	}
	wg.Wait()
	if qerr != nil {
		t.Fatal(qerr)
	}
	if !sawInFlight {
		t.Fatal("never observed tpch-q9 in the /queries snapshot")
	}

	metricsText := string(httpGet(t, base+"/metrics"))
	for _, want := range []string{
		"spilly_queries_started_total",
		"spilly_queries_completed_total",
		"spilly_spill_retries_total",
		"spilly_query_spill_stall_seconds",
		"spilly_query_prefetched_partitions_total",
		`spilly_device_written_bytes_total{array="spill",device="0"}`,
		"spilly_device_read_backlog_seconds",
	} {
		if !strings.Contains(metricsText, want) {
			t.Fatalf("/metrics missing %q:\n%s", want, metricsText[:min(len(metricsText), 2000)])
		}
	}
	// Completed counter must cover the warm-up and the background query.
	if !strings.Contains(metricsText, "spilly_queries_completed_total 2") {
		t.Fatalf("completed counter wrong:\n%s", metricsText[:min(len(metricsText), 600)])
	}

	if body := string(httpGet(t, base+"/debug/pprof/")); !strings.Contains(body, "goroutine") {
		t.Fatal("pprof index not served")
	}
}

func httpGet(t *testing.T, url string) []byte {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %s", url, resp.Status)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return body
}

// TestProfileShowsSpillStall: a profiled spilling query must attribute
// spill-readback stall time per operator and report scheduler prefetch, in
// the stats and in the rendered tree.
func TestProfileShowsSpillStall(t *testing.T) {
	eng, err := Open(Config{Workers: 2, MemoryBudget: 256 << 10, Profile: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.LoadTPCH(0.01, false); err != nil {
		t.Fatal(err)
	}
	res, err := eng.RunTPCH(9)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.SpillReadBytes == 0 {
		t.Fatal("Q9 under a 256KB budget did not read back spilled pages")
	}
	if res.Stats.SpillStallTime <= 0 {
		t.Fatal("no spill stall time recorded for a spilling query")
	}
	if res.Stats.PrefetchedPartitions == 0 {
		t.Fatal("no partitions prefetched; the readback scheduler never ran ahead")
	}
	text := FormatProfile(res.Profile())
	if !strings.Contains(text, "stall=") || !strings.Contains(text, "prefetched=") {
		t.Fatalf("rendered profile missing stall attribution:\n%s", text)
	}
	if stall, prefetched := eng.SpillStallTotals(); stall <= 0 || prefetched == 0 {
		t.Fatalf("engine totals stall=%v prefetched=%d, want both positive", stall, prefetched)
	}
}
