// Cloudtune demonstrates self-regulating compression (§4.4/§6.8): the same
// spilling query runs against NVMe arrays of different sizes, and the
// regulator picks deeper compression when I/O is scarce and phases it out
// as bandwidth grows — without any configuration.
package main

import (
	"fmt"
	"log"

	spilly "github.com/spilly-db/spilly"
)

func measure(devices int, compress bool) (tuplesPerSec float64, schemes map[string]int64) {
	eng, err := spilly.Open(spilly.Config{
		Workers:      2,
		MemoryBudget: 2 << 20,
		Compression:  compress,
		SpillDevices: devices,
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := eng.LoadTPCH(0.05, false); err != nil {
		log.Fatal(err)
	}
	res, err := eng.Run(eng.AggMicroPlan())
	if err != nil {
		log.Fatal(err)
	}
	return res.Stats.TuplesPerSec, res.Stats.Schemes
}

func main() {
	fmt.Println("Spilling aggregation with 1..8 simulated SSDs (§6.8 scenario):")
	fmt.Println()
	for _, devices := range []int{1, 2, 4, 8} {
		withC, schemes := measure(devices, true)
		without, _ := measure(devices, false)
		fmt.Printf("%d SSD(s): %8.0f tup/s self-regulating vs %8.0f tup/s uncompressed (%.2fx)  schemes=%v\n",
			devices, withC, without, withC/without, schemes)
	}
	fmt.Println("\nThe regulator compresses aggressively on a single SSD and converges to")
	fmt.Println("raw writes once the array outruns the CPU — and never hurts (Figure 11).")
}
