// Spillagg reproduces the paper's §6.3 scenario as a library example: a
// high-cardinality aggregation (~99% unique groups, wide tuples) that
// cannot fit in memory. The same unified aggregation operator runs once
// with enough memory and once with a budget ~20x smaller than the data,
// transparently partitioning and spilling to the simulated NVMe array —
// with identical results and, as in the paper, without a performance cliff.
package main

import (
	"fmt"
	"log"

	spilly "github.com/spilly-db/spilly"
)

func run(budget int64) {
	eng, err := spilly.Open(spilly.Config{
		Workers:      2,
		MemoryBudget: budget,
		Compression:  true, // self-regulating compression (§4.4)
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := eng.LoadTPCH(0.05, false); err != nil {
		log.Fatal(err)
	}

	// select l_orderkey, l_partkey, min(l_shipinstruct), min(l_comment)
	// from lineitem group by l_orderkey, l_partkey
	res, err := eng.Run(eng.AggMicroPlan())
	if err != nil {
		log.Fatal(err)
	}
	label := "in-memory"
	if budget > 0 {
		label = fmt.Sprintf("budget %dMB", budget>>20)
	}
	fmt.Printf("%-14s groups=%-7d %8.0f tuples/s  spilled=%6.1fMB written=%6.1fMB",
		label, res.Batch.Len(), res.Stats.TuplesPerSec,
		float64(res.Stats.SpilledBytes)/(1<<20), float64(res.Stats.WrittenBytes)/(1<<20))
	if len(res.Stats.Schemes) > 0 {
		fmt.Printf("  schemes=%v", res.Stats.Schemes)
	}
	fmt.Println()
}

func main() {
	fmt.Println("High-cardinality aggregation over lineitem (TPC-H SF 0.05):")
	run(0)       // unlimited: the plain in-memory fast path
	run(2 << 20) // 2 MB: adaptive partitioning + spilling kick in
}
