// Adaptivejoin demonstrates the unified hash join (§4.5) under shrinking
// memory: the same physical operator — no plan change, no restart — runs as
// a simple in-memory hash join, then starts partitioning, then hybrid-
// spills build and probe partitions to the NVMe array as the budget drops.
// It mirrors the paper's §6.7 join microbenchmark (lineitem ⋈ partsupp
// with wide output tuples).
package main

import (
	"fmt"
	"log"

	spilly "github.com/spilly-db/spilly"
)

func main() {
	fmt.Println("lineitem ⋈ partsupp (TPC-H SF 0.05) under shrinking memory budgets:")
	fmt.Println()

	var refRows int
	for _, budgetMB := range []int64{0, 16, 4, 1} {
		eng, err := spilly.Open(spilly.Config{
			Workers:      2,
			MemoryBudget: budgetMB << 20,
			Compression:  true,
		})
		if err != nil {
			log.Fatal(err)
		}
		if err := eng.LoadTPCH(0.05, false); err != nil {
			log.Fatal(err)
		}
		res, err := eng.Run(eng.JoinMicroPlan())
		if err != nil {
			log.Fatal(err)
		}
		label := "unlimited"
		if budgetMB > 0 {
			label = fmt.Sprintf("%d MB", budgetMB)
		}
		fmt.Printf("budget %-9s rows=%-7d %8.0f tuples/s  spilled=%5.1fMB read back=%5.1fMB\n",
			label, res.Batch.Len(), res.Stats.TuplesPerSec,
			float64(res.Stats.SpilledBytes)/(1<<20), float64(res.Stats.SpillReadBytes)/(1<<20))

		if refRows == 0 {
			refRows = res.Batch.Len()
		} else if res.Batch.Len() != refRows {
			log.Fatalf("result changed under memory pressure: %d vs %d rows", res.Batch.Len(), refRows)
		}
	}
	fmt.Println("\nEvery run returns the same join result; only the materialization")
	fmt.Println("strategy adapts — the paper's \"no physical operator choice\" claim.")
}
