// Quickstart: open an engine, register a table, and run a plan built with
// the public API. No TPC-H, no spilling — the minimal end-to-end flow.
package main

import (
	"fmt"
	"log"

	spilly "github.com/spilly-db/spilly"
)

func main() {
	eng, err := spilly.Open(spilly.Config{Workers: 2})
	if err != nil {
		log.Fatal(err)
	}

	// A small sales table.
	schema := spilly.NewSchema(
		spilly.ColumnDef{Name: "region", Type: spilly.String},
		spilly.ColumnDef{Name: "day", Type: spilly.Date},
		spilly.ColumnDef{Name: "amount", Type: spilly.Float64},
	)
	sales := spilly.NewMemTable("sales", schema, 0)
	batch := spilly.NewBatch(schema, 8)
	regions := []string{"EMEA", "APAC", "AMER", "EMEA", "APAC", "AMER", "EMEA", "AMER"}
	days := []string{"2024-01-02", "2024-01-02", "2024-01-03", "2024-01-04",
		"2024-01-05", "2024-01-05", "2024-01-08", "2024-01-09"}
	amounts := []float64{120.5, 80, 240, 60.25, 310, 95, 42, 150}
	for i := range regions {
		batch.Cols[0].S = append(batch.Cols[0].S, regions[i])
		batch.Cols[1].I = append(batch.Cols[1].I, spilly.ParseDate(days[i]))
		batch.Cols[2].F = append(batch.Cols[2].F, amounts[i])
	}
	batch.SetLen(len(regions))
	sales.Append(batch)
	eng.RegisterTable(sales)

	// SELECT region, sum(amount), count(*) FROM sales
	// WHERE day >= '2024-01-03' GROUP BY region ORDER BY sum DESC.
	tbl, err := eng.Table("sales")
	if err != nil {
		log.Fatal(err)
	}
	scan := spilly.NewScan(tbl)
	scan.Filter = spilly.Cmp(">=", spilly.Col(scan.Schema(), "day"), spilly.ConstDate("2024-01-03"))
	agg := spilly.NewAgg(scan, []string{"region"}, []spilly.AggSpec{
		{Func: spilly.Sum, Col: "amount", As: "total"},
		{Func: spilly.CountStar, As: "orders"},
	})
	plan := &spilly.SortNode{Child: agg, Keys: []spilly.SortKey{{Col: "total", Desc: true}}}

	res, err := eng.Run(plan)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(res.Table())
	fmt.Printf("scanned %d rows in %v\n", res.Stats.ScannedRows, res.Stats.Duration)
}
