package spilly_test

// One testing.B benchmark per paper table/figure, each dispatching into the
// experiment harness (internal/bench) in quick mode. Run with:
//
//	go test -bench=. -benchmem
//
// Each experiment takes seconds to minutes, so the default benchtime keeps
// N at 1. For the full-size sweeps use cmd/spillybench without -quick.

import (
	"io"
	"testing"

	"github.com/spilly-db/spilly/internal/bench"
)

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	e := bench.ByID(id)
	if e == nil {
		b.Fatalf("unknown experiment %q", id)
	}
	for i := 0; i < b.N; i++ {
		if err := e.Run(io.Discard, bench.Options{Quick: true}); err != nil {
			b.Fatalf("%s: %v", id, err)
		}
	}
}

// BenchmarkSec2HWCost regenerates the §2 hardware-cost table.
func BenchmarkSec2HWCost(b *testing.B) { benchExperiment(b, "sec2-hw-cost") }

// BenchmarkSec3IOModel regenerates the §3 hash-table-vs-partitioning table.
func BenchmarkSec3IOModel(b *testing.B) { benchExperiment(b, "sec3-io-model") }

// BenchmarkFig2OperatorChoice regenerates Figure 2.
func BenchmarkFig2OperatorChoice(b *testing.B) { benchExperiment(b, "fig2") }

// BenchmarkSec44CyclesPerByte regenerates the §4.4 cycles/byte table.
func BenchmarkSec44CyclesPerByte(b *testing.B) { benchExperiment(b, "sec44-cpb") }

// BenchmarkFig3Compression regenerates Figure 3.
func BenchmarkFig3Compression(b *testing.B) { benchExperiment(b, "fig3") }

// BenchmarkSec52TableCompression regenerates the §5.2 compression table.
func BenchmarkSec52TableCompression(b *testing.B) { benchExperiment(b, "sec52-tablecomp") }

// BenchmarkFig5HotRuns regenerates Figure 5.
func BenchmarkFig5HotRuns(b *testing.B) { benchExperiment(b, "fig5") }

// BenchmarkFig6ColdScaling regenerates Figure 6 and the §6.2 tables.
func BenchmarkFig6ColdScaling(b *testing.B) { benchExperiment(b, "fig6") }

// BenchmarkFig7SpillingAgg regenerates Figure 7.
func BenchmarkFig7SpillingAgg(b *testing.B) { benchExperiment(b, "fig7") }

// BenchmarkFig8Traces regenerates Figure 8.
func BenchmarkFig8Traces(b *testing.B) { benchExperiment(b, "fig8") }

// BenchmarkSec65Hybrid regenerates the §6.5 hybrid-vs-spill-all table.
func BenchmarkSec65Hybrid(b *testing.B) { benchExperiment(b, "sec65-hybrid") }

// BenchmarkFig9Adaptive regenerates Figure 9.
func BenchmarkFig9Adaptive(b *testing.B) { benchExperiment(b, "fig9") }

// BenchmarkSec66HashingCost regenerates the §6.6 hashing-cost table.
func BenchmarkSec66HashingCost(b *testing.B) { benchExperiment(b, "sec66-hashing") }

// BenchmarkFig10SpillingJoin regenerates Figure 10.
func BenchmarkFig10SpillingJoin(b *testing.B) { benchExperiment(b, "fig10") }

// BenchmarkFig11SelfReg regenerates Figure 11.
func BenchmarkFig11SelfReg(b *testing.B) { benchExperiment(b, "fig11") }

// BenchmarkFig12Cloud regenerates Figure 12.
func BenchmarkFig12Cloud(b *testing.B) { benchExperiment(b, "fig12") }
