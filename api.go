package spilly

import (
	"fmt"
	"strings"

	"github.com/spilly-db/spilly/internal/colstore"
	"github.com/spilly-db/spilly/internal/data"
	"github.com/spilly-db/spilly/internal/exec"
)

// This file re-exports the plan-building surface so that library users can
// compose queries without reaching into internal packages.

// Data model.
type (
	// Schema describes the columns of a table or batch.
	Schema = data.Schema
	// ColumnDef is one column definition.
	ColumnDef = data.ColumnDef
	// Type is a column type.
	Type = data.Type
	// Batch is a columnar chunk of rows.
	Batch = data.Batch
	// MemTable is an in-memory columnar table.
	MemTable = colstore.MemTable
)

// Column types.
const (
	Int64   = data.Int64
	Float64 = data.Float64
	String  = data.String
	Date    = data.Date
	Bool    = data.Bool
)

// NewSchema builds a schema.
var NewSchema = data.NewSchema

// NewMemTable creates an empty in-memory table (groupSize 0 = default).
var NewMemTable = colstore.NewMemTable

// NewBatch creates an empty batch.
var NewBatch = data.NewBatch

// ParseDate converts "YYYY-MM-DD" to the engine's day-number representation.
var ParseDate = data.ParseDate

// FormatDate renders a day number.
var FormatDate = data.FormatDate

// Plan nodes.
type (
	// Node is a physical plan node.
	Node = exec.Node
	// ScanNode scans a table with projection and pushed-down filter.
	ScanNode = exec.Scan
	// JoinNode is the unified hash join.
	JoinNode = exec.Join
	// AggNode is the unified hash aggregation.
	AggNode = exec.Agg
	// SortNode orders (and optionally limits) its input.
	SortNode = exec.Sort
	// FilterNode filters any stream.
	FilterNode = exec.FilterNode
	// AggSpec describes one aggregate.
	AggSpec = exec.AggSpec
	// SortKey orders by one column.
	SortKey = exec.SortKey
	// JoinKind selects join semantics.
	JoinKind = exec.JoinKind
	// Expr is a compiled scalar expression.
	Expr = exec.Expr
	// WindowNode is the hash-based window operator (§4.7).
	WindowNode = exec.Window
	// WindowSpec describes one window function.
	WindowSpec = exec.WindowSpec
	// ExtSortNode is the external (spilling) merge sort — the sorting
	// direction the paper names as future work (§4.7).
	ExtSortNode = exec.ExtSort
)

// Join kinds.
const (
	InnerJoin = exec.Inner
	SemiJoin  = exec.Semi
	AntiJoin  = exec.Anti
	OuterJoin = exec.Outer
)

// Aggregate functions.
const (
	Sum       = exec.Sum
	Count     = exec.Count
	CountStar = exec.CountStar
	Min       = exec.Min
	Max       = exec.Max
	Avg       = exec.Avg
)

// Window functions and frames.
const (
	WRowNumber   = exec.WRowNumber
	WRank        = exec.WRank
	WSum         = exec.WSum
	WCount       = exec.WCount
	WAvg         = exec.WAvg
	WMin         = exec.WMin
	WMax         = exec.WMax
	FrameAll     = exec.FrameAll
	FrameRunning = exec.FrameRunning
	FrameRows    = exec.FrameRows
)

// NewWindow builds a window node over partition keys, an intra-partition
// order, and a list of window functions.
var NewWindow = exec.NewWindow

// Plan constructors.
var (
	// NewScan scans the named columns of a table (all when none given).
	NewScan = exec.NewScan
	// NewJoin builds a unified hash join.
	NewJoin = exec.NewJoin
	// NewAgg builds a unified hash aggregation.
	NewAgg = exec.NewAgg
	// NewProject computes expressions over a child node.
	NewProject = exec.NewProject
)

// Expression constructors.
var (
	Col        = exec.Col
	ConstInt   = exec.ConstInt
	ConstFloat = exec.ConstFloat
	ConstStr   = exec.ConstStr
	ConstDate  = exec.ConstDate
	Add        = exec.Add
	Sub        = exec.Sub
	Mul        = exec.Mul
	Div        = exec.Div
	Cmp        = exec.Cmp
	And        = exec.And
	Or         = exec.Or
	Not        = exec.Not
	Like       = exec.Like
	NotLike    = exec.NotLike
	InStr      = exec.InStr
	InInt      = exec.InInt
	Case       = exec.Case
	YearOf     = exec.YearOf
	Substr     = exec.Substr
)

// FormatBatch renders up to maxRows rows of a batch as an aligned ASCII
// table.
func FormatBatch(b *Batch, maxRows int) string {
	if b == nil {
		return "(nil)"
	}
	n := b.Len()
	truncated := false
	if maxRows > 0 && n > maxRows {
		n = maxRows
		truncated = true
	}
	cols := len(b.Cols)
	cells := make([][]string, n+1)
	cells[0] = make([]string, cols)
	for c, cd := range b.Schema.Cols {
		cells[0][c] = cd.Name
	}
	for r := 0; r < n; r++ {
		row := make([]string, cols)
		for c := range b.Cols {
			col := &b.Cols[c]
			switch {
			case col.Null != nil && col.Null[r]:
				row[c] = "NULL"
			case col.Type == data.Float64:
				row[c] = fmt.Sprintf("%.2f", col.F[r])
			case col.Type == data.String:
				row[c] = col.S[r]
			case col.Type == data.Date:
				row[c] = data.FormatDate(col.I[r])
			default:
				row[c] = fmt.Sprintf("%d", col.I[r])
			}
		}
		cells[r+1] = row
	}
	widths := make([]int, cols)
	for _, row := range cells {
		for c, s := range row {
			if len(s) > widths[c] {
				widths[c] = len(s)
			}
		}
	}
	var sb strings.Builder
	for i, row := range cells {
		for c, s := range row {
			if c > 0 {
				sb.WriteString(" | ")
			}
			sb.WriteString(s)
			sb.WriteString(strings.Repeat(" ", widths[c]-len(s)))
		}
		sb.WriteByte('\n')
		if i == 0 {
			for c := range row {
				if c > 0 {
					sb.WriteString("-+-")
				}
				sb.WriteString(strings.Repeat("-", widths[c]))
			}
			sb.WriteByte('\n')
		}
	}
	if truncated {
		fmt.Fprintf(&sb, "... (%d more rows)\n", b.Len()-n)
	}
	return sb.String()
}
