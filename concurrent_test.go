package spilly

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/spilly-db/spilly/internal/chaos"
	"github.com/spilly-db/spilly/internal/core"
	"github.com/spilly-db/spilly/internal/exec"
	"github.com/spilly-db/spilly/internal/nvmesim"
	"github.com/spilly-db/spilly/internal/pages"
	"github.com/spilly-db/spilly/internal/tpch"
)

// loadEngine opens an engine over a small TPC-H load. Scale factor 0.01
// is the smallest load at which the big joins outgrow the tight budgets
// these tests use and actually spill.
func loadEngine(t *testing.T, cfg Config) *Engine {
	t.Helper()
	eng, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.LoadTPCH(0.01, false); err != nil {
		t.Fatal(err)
	}
	return eng
}

// waitUntil polls cond for up to 30s.
func waitUntil(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

// assertArrayDrained asserts the spill array holds no live extents or
// leases once the engine is idle — the no-unbounded-growth half of the
// lease design — and that the governor has no outstanding grants.
func assertArrayDrained(t *testing.T, eng *Engine) {
	t.Helper()
	if n := eng.SpillArray().LiveExtents(); n != 0 {
		t.Errorf("spill array holds %d live extents after all queries finished", n)
	}
	if n := eng.SpillArray().Leases(); n != 0 {
		t.Errorf("%d spill leases still live after all queries finished", n)
	}
	if g := eng.GovernorStats(); g.Granted != 0 || g.Active != 0 || g.Queued != 0 {
		t.Errorf("governor not drained: %+v", g)
	}
}

// spillCtx builds a spilling execution context over the shared array —
// the per-query state the engine would hand a spilling query, including
// its own lease on the common spill space.
func spillCtx(arr *nvmesim.Array) *exec.Ctx {
	return &exec.Ctx{
		Workers:     2,
		Budget:      pages.NewBudget(128 << 10),
		PageSize:    16 << 10,
		Partitions:  16,
		PartitionAt: 0.4,
		Spill:       &core.SpillConfig{Array: arr, Lease: arr.NewLease(), Compress: true},
		Stats:       &exec.Stats{},
	}
}

func spillArray() *nvmesim.Array {
	return nvmesim.New(2, nvmesim.DeviceSpec{
		ReadBandwidth:  4e9,
		WriteBandwidth: 2e9,
		Latency:        20 * time.Microsecond,
	}, nvmesim.RealClock{})
}

// TestOverlappingSpillQueriesKeepTheirSpill is the regression test for the
// e.spillArr.Reset() clobber bug: the engine used to begin every query by
// wiping the whole shared spill array, so a query starting while another
// was between its spill phase (1) and readback phase (2) destroyed the
// first query's partitions. The schedule here reproduces the exact window:
// query A spills, and only then — with A's spilled partitions live and
// unread — query B starts on the same array, spills, and runs to
// completion. Both must return bit-identical results to serial runs, and
// freeing each query's lease must leave the array empty.
func TestOverlappingSpillQueriesKeepTheirSpill(t *testing.T) {
	db := tpch.NewMemDB(0.01)

	// Serial reference runs, one private array each.
	serial := func(q int) (string, int64) {
		ctx := spillCtx(spillArray())
		defer ctx.Close()
		node, err := tpch.BuildQuery(ctx, db, q)
		if err != nil {
			t.Fatal(err)
		}
		out, err := exec.Collect(ctx, node)
		if err != nil {
			t.Fatalf("serial Q%d: %v", q, err)
		}
		return chaos.Fingerprint(out), ctx.Spill.Lease.LiveBytes()
	}
	wantQ9, spilled9 := serial(9)
	wantQ12, spilled12 := serial(12)
	if spilled9 == 0 || spilled12 == 0 {
		t.Fatalf("budget not tight enough: Q9 spilled %d bytes, Q12 %d; the overlap window needs live spill data",
			spilled9, spilled12)
	}

	arr := spillArray()
	ctxA := spillCtx(arr)
	type result struct {
		fp  string
		err error
	}
	aDone := make(chan result, 1)
	go func() {
		node, err := tpch.BuildQuery(ctxA, db, 9)
		if err != nil {
			aDone <- result{err: err}
			return
		}
		out, err := exec.Collect(ctxA, node)
		if err != nil {
			aDone <- result{err: err}
			return
		}
		aDone <- result{fp: chaos.Fingerprint(out)}
	}()
	// Barrier: wait until A holds live spilled partitions on the shared
	// array. An array wipe past this point (the old behavior) destroys
	// data A still needs for phase 2.
	waitUntil(t, "query A to spill", func() bool {
		return ctxA.Spill.Lease.LiveBytes() > 0
	})

	ctxB := spillCtx(arr)
	node, err := tpch.BuildQuery(ctxB, db, 12)
	if err != nil {
		t.Fatal(err)
	}
	outB, errB := exec.Collect(ctxB, node)
	if errB != nil {
		t.Fatalf("overlapped Q12: %v", errB)
	}
	if ctxB.Spill.Lease.LiveBytes() == 0 {
		t.Error("overlapped Q12 did not spill; the shared-array overlap was not exercised")
	}
	fpB := chaos.Fingerprint(outB)

	a := <-aDone
	if a.err != nil {
		t.Fatalf("overlapped Q9: %v", a.err)
	}
	if a.fp != wantQ9 {
		t.Error("overlapped Q9 result differs from serial run (spill clobbered?)")
	}
	if fpB != wantQ12 {
		t.Error("overlapped Q12 result differs from serial run")
	}
	ctxA.Close()
	ctxB.Close()
	if n := arr.LiveExtents(); n != 0 {
		t.Errorf("%d extents live after both queries closed", n)
	}
	if n := arr.Leases(); n != 0 {
		t.Errorf("%d leases live after both queries closed", n)
	}
}

// stressConfig pins the Umami tuning so serial and concurrent runs use
// identical partitioning regardless of grant size; only the per-query
// memory budget differs, which changes when operators spill but not what
// they compute.
func stressConfig() Config {
	return Config{
		Workers:      2,
		MemoryBudget: 128 << 10, // tight enough that the big queries spill
		MemoryFloor:  64 << 10,
		PageSize:     8 << 10,
		Partitions:   16,
		Compression:  true,
	}
}

// stressQueries is the mixed workload: aggregations, multi-join pipelines,
// string-heavy joins, and sorts — the spill-heavy spread of TPC-H.
var stressQueries = []int{1, 3, 5, 9, 12, 13, 18, 21}

// TestConcurrentQueriesStress runs 8 mixed TPC-H queries concurrently
// through the admission governor under a spill-forcing budget and requires
// every result to be bit-identical to its serial run, the governor to end
// with zero outstanding grants, and the spill array's live-extent count to
// return to zero.
func TestConcurrentQueriesStress(t *testing.T) {
	eng := loadEngine(t, stressConfig())

	// Serial baselines (also warms table state and pools).
	want := map[int]string{}
	spilled := false
	for _, q := range stressQueries {
		res, err := eng.RunTPCH(q)
		if err != nil {
			t.Fatalf("serial Q%d: %v", q, err)
		}
		want[q] = chaos.Fingerprint(res.Batch)
		spilled = spilled || res.Stats.SpilledBytes > 0
	}
	if !spilled {
		t.Fatal("no serial query spilled; budget not tight enough to exercise concurrency over spill state")
	}

	var wg sync.WaitGroup
	errs := make(chan error, len(stressQueries))
	for _, q := range stressQueries {
		wg.Add(1)
		go func(q int) {
			defer wg.Done()
			res, err := eng.RunTPCH(q)
			if err != nil {
				errs <- fmt.Errorf("concurrent Q%d: %w", q, err)
				return
			}
			if got := chaos.Fingerprint(res.Batch); got != want[q] {
				errs <- fmt.Errorf("concurrent Q%d result differs from serial run", q)
			}
		}(q)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	g := eng.GovernorStats()
	if g.Admitted < int64(2*len(stressQueries)) {
		t.Errorf("governor admitted %d queries, want %d", g.Admitted, 2*len(stressQueries))
	}
	assertArrayDrained(t, eng)
}

// TestConcurrentStatsApprox checks the approximate-attribution marking:
// overlapping queries get AllocApprox, a quiet engine does not.
func TestConcurrentStatsApprox(t *testing.T) {
	eng := loadEngine(t, stressConfig())
	res, err := eng.RunTPCH(1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.AllocApprox {
		t.Error("quiet-engine query marked AllocApprox")
	}
	if res.Stats.MemoryGrant != 128<<10 {
		t.Errorf("idle MemoryGrant = %d, want the full budget", res.Stats.MemoryGrant)
	}

	var wg sync.WaitGroup
	approx := make([]bool, 4)
	for i := range approx {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			res, err := eng.RunTPCH(1)
			if err == nil {
				approx[i] = res.Stats.AllocApprox
			}
		}(i)
	}
	wg.Wait()
	any := false
	for _, a := range approx {
		any = any || a
	}
	if !any {
		t.Error("no concurrent query marked AllocApprox")
	}
}

// slowAdmissionConfig builds an engine whose whole budget is pinned by a
// single query (floor == budget, so admission is strictly serial) and
// whose simulated SSDs are slow enough that a spilling holder query stays
// in flight for a long, schedulable window.
func slowAdmissionConfig() Config {
	return Config{
		Workers:      2,
		MemoryBudget: 128 << 10,
		MemoryFloor:  128 << 10,
		PageSize:     8 << 10,
		Partitions:   16,
		Compression:  true,
		Device: DeviceSpec{
			ReadBandwidth:  8e6,
			WriteBandwidth: 4e6,
			Latency:        200 * time.Microsecond,
		},
	}
}

// holdBudget starts a spill-heavy query that pins the engine's whole
// budget and returns once the governor shows it admitted; the returned
// channel yields its error when it finishes.
func holdBudget(t *testing.T, eng *Engine) <-chan error {
	t.Helper()
	done := make(chan error, 1)
	go func() {
		_, err := eng.RunTPCH(9)
		done <- err
	}()
	waitUntil(t, "holder admission", func() bool { return eng.GovernorStats().Active == 1 })
	return done
}

// TestAdmissionCancelWhileQueued: a query canceled during its admission
// wait must return a *QueryError wrapping context.Canceled, release its
// queue slot, and leave the governor balanced.
func TestAdmissionCancelWhileQueued(t *testing.T) {
	eng := loadEngine(t, slowAdmissionConfig())
	holdDone := holdBudget(t, eng)

	goCtx, cancel := context.WithCancel(context.Background())
	defer cancel()
	qErr := make(chan error, 1)
	go func() {
		_, err := eng.RunTPCHContext(goCtx, 12)
		qErr <- err
	}()
	waitUntil(t, "second query to queue", func() bool { return eng.GovernorStats().Queued == 1 })
	cancel()

	err := <-qErr
	var qe *QueryError
	if !errors.As(err, &qe) {
		t.Fatalf("canceled admission returned %v (%T), want *QueryError", err, err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("QueryError does not wrap context.Canceled: %v", err)
	}
	if qe.Op != "admit" {
		t.Errorf("QueryError.Op = %q, want \"admit\"", qe.Op)
	}
	waitUntil(t, "queue slot release", func() bool { return eng.GovernorStats().Queued == 0 })
	if err := <-holdDone; err != nil {
		t.Fatalf("holder query: %v", err)
	}
	assertArrayDrained(t, eng)
}

// TestAdmissionTimeout: a query that waits out Config.AdmitTimeout fails
// with the structured "admission queue timeout" QueryError instead of OOM.
func TestAdmissionTimeout(t *testing.T) {
	cfg := slowAdmissionConfig()
	cfg.AdmitTimeout = 50 * time.Millisecond
	eng := loadEngine(t, cfg)
	holdDone := holdBudget(t, eng)

	_, err := eng.RunTPCH(12)
	if waitErr := <-holdDone; waitErr != nil {
		t.Fatalf("holder query: %v", waitErr)
	}
	if err == nil {
		t.Fatal("second query admitted despite the holder pinning the whole budget")
	}
	var qe *QueryError
	if !errors.As(err, &qe) {
		t.Fatalf("timed-out admission returned %v (%T), want *QueryError", err, err)
	}
	if !errors.Is(err, pages.ErrAdmissionTimeout) {
		t.Fatalf("QueryError does not wrap ErrAdmissionTimeout: %v", err)
	}
	if !strings.Contains(err.Error(), "admission queue timeout") {
		t.Errorf("error message %q misses %q", err.Error(), "admission queue timeout")
	}
	if g := eng.GovernorStats(); g.Timeouts != 1 {
		t.Errorf("governor Timeouts = %d, want 1", g.Timeouts)
	}
	assertArrayDrained(t, eng)
}

// TestCatalogConcurrentRegistration exercises the catalog under -race:
// a loader re-registering tables while queries plan and run against the
// snapshot view. Before the RWMutex this was a data race on e.tables.
func TestCatalogConcurrentRegistration(t *testing.T) {
	eng := loadEngine(t, Config{Workers: 2})
	stop := make(chan struct{})
	loaderDone := make(chan error, 1)
	go func() {
		for {
			select {
			case <-stop:
				loaderDone <- nil
				return
			default:
			}
			// Same scale factor: identical data, so in-flight queries
			// keep producing correct results off their snapshots.
			if err := eng.LoadTPCH(0.005, false); err != nil {
				loaderDone <- err
				return
			}
		}
	}()

	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 3; j++ {
				if _, err := eng.RunTPCH(1); err != nil {
					errs <- fmt.Errorf("query during registration: %w", err)
					return
				}
				if _, err := eng.Table("lineitem"); err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	close(stop)
	if err := <-loaderDone; err != nil {
		t.Fatal(err)
	}
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}
