// Package metrics provides the measurement utilities behind the paper's
// evaluation: the cycles-per-byte cost currency (§4.4) and the utilization
// tracer that produces Figure 8's CPU / memory-bandwidth / I/O time series.
//
// The paper reads hardware performance counters; this reproduction has no
// PMU access, so "cycles" are nanoseconds converted at a nominal clock
// frequency (a monotone re-parameterization of the same metric) and
// utilization is derived from engine-internal progress counters sampled at
// a fixed interval.
package metrics

import (
	"sync"
	"time"
)

// NominalHz is the nominal clock frequency used to convert wall time into
// "cycles"; the paper's test machine runs at 3.5 GHz (§4.4 computes I/O
// cost as 86 GB/s ÷ 3.5 GHz).
const NominalHz = 3.5e9

// CyclesPerByte converts a duration spent processing n bytes into the
// paper's cycles/byte cost metric.
func CyclesPerByte(d time.Duration, n int64) float64 {
	if n == 0 {
		return 0
	}
	return d.Seconds() * NominalHz / float64(n)
}

// Cycles converts a duration to nominal cycles.
func Cycles(d time.Duration) float64 { return d.Seconds() * NominalHz }

// Sample is one point of a utilization trace: instantaneous rates derived
// from counter deltas.
type Sample struct {
	// T is the offset from trace start.
	T time.Duration
	// Rates holds per-counter rates in units/second, keyed like the
	// snapshot the tracer was given.
	Rates map[string]float64
}

// Tracer periodically samples a set of monotonic counters and records their
// rates. Snapshot functions must be safe to call concurrently with the
// workload (the engine's counters are atomics).
type Tracer struct {
	interval time.Duration
	snapshot func() map[string]float64

	mu      sync.Mutex
	samples []Sample
	stop    chan struct{}
	done    chan struct{}
	started bool
	stopped bool

	// Last-tick state, for the final sample taken in Stop: without it the
	// interval between the last tick and Stop is lost, and a trace shorter
	// than one interval would be empty entirely.
	stateMu sync.Mutex
	start   time.Time
	prev    map[string]float64
	prevT   time.Time
}

// NewTracer creates a tracer sampling snapshot every interval.
func NewTracer(interval time.Duration, snapshot func() map[string]float64) *Tracer {
	return &Tracer{interval: interval, snapshot: snapshot}
}

// Start begins sampling in a background goroutine. Calling Start on a
// running or stopped tracer is a no-op.
func (t *Tracer) Start() {
	t.mu.Lock()
	if t.started {
		t.mu.Unlock()
		return
	}
	t.started = true
	t.stop = make(chan struct{})
	t.done = make(chan struct{})
	t.mu.Unlock()

	t.stateMu.Lock()
	t.start = time.Now()
	t.prev = t.snapshot()
	t.prevT = t.start
	t.stateMu.Unlock()
	go func() {
		defer close(t.done)
		ticker := time.NewTicker(t.interval)
		defer ticker.Stop()
		for {
			select {
			case <-t.stop:
				return
			case now := <-ticker.C:
				t.sample(now)
			}
		}
	}()
}

// sample appends one rate sample covering [prevT, now], advancing the
// last-tick state. No-op when no time has elapsed.
func (t *Tracer) sample(now time.Time) {
	t.stateMu.Lock()
	defer t.stateMu.Unlock()
	dt := now.Sub(t.prevT).Seconds()
	if dt <= 0 {
		return
	}
	cur := t.snapshot()
	rates := make(map[string]float64, len(cur))
	for k, v := range cur {
		rates[k] = (v - t.prev[k]) / dt
	}
	t.mu.Lock()
	t.samples = append(t.samples, Sample{T: now.Sub(t.start), Rates: rates})
	t.mu.Unlock()
	t.prev, t.prevT = cur, now
}

// Stop ends sampling and returns the collected trace, including a final
// sample covering the tail since the last tick (so traces shorter than one
// interval still carry data). Stop is idempotent and safe before Start.
func (t *Tracer) Stop() []Sample {
	t.mu.Lock()
	started, stopped := t.started, t.stopped
	t.stopped = true
	t.mu.Unlock()
	if started && !stopped {
		close(t.stop)
		<-t.done
		t.sample(time.Now())
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.samples
}
