package metrics

import (
	"sync/atomic"
	"testing"
	"time"
)

func TestCyclesPerByte(t *testing.T) {
	// 1 second over 3.5e9 bytes at 3.5 GHz = 1 cycle/byte.
	if got := CyclesPerByte(time.Second, int64(NominalHz)); got < 0.999 || got > 1.001 {
		t.Fatalf("CyclesPerByte = %v, want 1", got)
	}
	if CyclesPerByte(time.Second, 0) != 0 {
		t.Fatal("zero bytes must yield zero cost")
	}
}

func TestCycles(t *testing.T) {
	if got := Cycles(2 * time.Second); got != 2*NominalHz {
		t.Fatalf("Cycles = %v", got)
	}
}

func TestTracerRates(t *testing.T) {
	var counter atomic.Int64
	tr := NewTracer(5*time.Millisecond, func() map[string]float64 {
		return map[string]float64{"n": float64(counter.Load())}
	})
	tr.Start()
	stop := time.Now().Add(60 * time.Millisecond)
	for time.Now().Before(stop) {
		counter.Add(1000)
		time.Sleep(time.Millisecond)
	}
	samples := tr.Stop()
	if len(samples) < 3 {
		t.Fatalf("only %d samples", len(samples))
	}
	// Counter grows ~1000/ms => rate about 1e6/s; accept a wide band
	// (scheduler noise on one core).
	sawReasonable := false
	for _, s := range samples {
		if r := s.Rates["n"]; r > 1e5 && r < 1e7 {
			sawReasonable = true
		}
		if s.T < 0 {
			t.Fatal("negative sample offset")
		}
	}
	if !sawReasonable {
		t.Fatalf("no sample in the expected rate band: %+v", samples)
	}
	// Offsets must be increasing.
	for i := 1; i < len(samples); i++ {
		if samples[i].T <= samples[i-1].T {
			t.Fatal("sample offsets not increasing")
		}
	}
}

func TestTracerStopIdempotentData(t *testing.T) {
	tr := NewTracer(time.Millisecond, func() map[string]float64 {
		return map[string]float64{"x": 1}
	})
	tr.Start()
	time.Sleep(5 * time.Millisecond)
	s1 := tr.Stop()
	_ = s1 // a second Stop would panic (close of closed chan) by contract:
	// the tracer is single-use; just verify the returned slice is stable.
}
