package metrics

import (
	"sync/atomic"
	"testing"
	"time"
)

func TestCyclesPerByte(t *testing.T) {
	// 1 second over 3.5e9 bytes at 3.5 GHz = 1 cycle/byte.
	if got := CyclesPerByte(time.Second, int64(NominalHz)); got < 0.999 || got > 1.001 {
		t.Fatalf("CyclesPerByte = %v, want 1", got)
	}
	if CyclesPerByte(time.Second, 0) != 0 {
		t.Fatal("zero bytes must yield zero cost")
	}
}

func TestCycles(t *testing.T) {
	if got := Cycles(2 * time.Second); got != 2*NominalHz {
		t.Fatalf("Cycles = %v", got)
	}
}

func TestTracerRates(t *testing.T) {
	var counter atomic.Int64
	tr := NewTracer(5*time.Millisecond, func() map[string]float64 {
		return map[string]float64{"n": float64(counter.Load())}
	})
	tr.Start()
	stop := time.Now().Add(60 * time.Millisecond)
	for time.Now().Before(stop) {
		counter.Add(1000)
		time.Sleep(time.Millisecond)
	}
	samples := tr.Stop()
	if len(samples) < 3 {
		t.Fatalf("only %d samples", len(samples))
	}
	// Counter grows ~1000/ms => rate about 1e6/s; accept a wide band
	// (scheduler noise on one core).
	sawReasonable := false
	for _, s := range samples {
		if r := s.Rates["n"]; r > 1e5 && r < 1e7 {
			sawReasonable = true
		}
		if s.T < 0 {
			t.Fatal("negative sample offset")
		}
	}
	if !sawReasonable {
		t.Fatalf("no sample in the expected rate band: %+v", samples)
	}
	// Offsets must be increasing.
	for i := 1; i < len(samples); i++ {
		if samples[i].T <= samples[i-1].T {
			t.Fatal("sample offsets not increasing")
		}
	}
}

// TestTracerStopIdempotent: Stop must be callable any number of times and
// return the same trace each time — a double Stop used to close a closed
// channel and panic.
func TestTracerStopIdempotent(t *testing.T) {
	tr := NewTracer(time.Millisecond, func() map[string]float64 {
		return map[string]float64{"x": 1}
	})
	tr.Start()
	time.Sleep(5 * time.Millisecond)
	s1 := tr.Stop()
	s2 := tr.Stop()
	if len(s1) != len(s2) {
		t.Fatalf("second Stop returned %d samples, first %d", len(s2), len(s1))
	}
}

// TestTracerStopBeforeStart: stopping a never-started tracer must be a
// harmless no-op (it used to close a nil channel and panic).
func TestTracerStopBeforeStart(t *testing.T) {
	tr := NewTracer(time.Millisecond, func() map[string]float64 { return nil })
	if s := tr.Stop(); len(s) != 0 {
		t.Fatalf("Stop before Start returned %d samples, want 0", len(s))
	}
	// Start after Stop stays inert: the tracer is spent.
	tr.Start()
	if s := tr.Stop(); len(s) != 0 {
		t.Fatalf("spent tracer produced %d samples", len(s))
	}
}

// TestTracerStartIdempotent: a second Start must not spawn a second
// sampling goroutine (which would double-close done on Stop).
func TestTracerStartIdempotent(t *testing.T) {
	var counter atomic.Int64
	tr := NewTracer(time.Millisecond, func() map[string]float64 {
		return map[string]float64{"n": float64(counter.Load())}
	})
	tr.Start()
	tr.Start()
	counter.Add(100)
	time.Sleep(3 * time.Millisecond)
	tr.Stop() // must not hang or panic
}

// TestTracerFinalSample: a trace shorter than one sampling interval must
// still carry data — Stop takes a final sample covering the tail between
// the last tick (or Start) and Stop.
func TestTracerFinalSample(t *testing.T) {
	var counter atomic.Int64
	tr := NewTracer(time.Hour, func() map[string]float64 {
		return map[string]float64{"n": float64(counter.Load())}
	})
	tr.Start()
	counter.Add(5000)
	time.Sleep(2 * time.Millisecond)
	samples := tr.Stop()
	if len(samples) == 0 {
		t.Fatal("sub-interval trace is empty: tail sample missing")
	}
	last := samples[len(samples)-1]
	if last.Rates["n"] <= 0 {
		t.Fatalf("final sample rate = %v, want > 0", last.Rates["n"])
	}
}
