package metrics

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// FaultTracker accumulates fault-path counters across queries: transient
// I/O errors recovered by retry, writes re-striped away from dead devices,
// queries aborted by cancellation, and per-device error counts. The engine
// updates it from query results; chaos tests and operators read it to see
// how much recovery work a run actually exercised.
type FaultTracker struct {
	retries   atomic.Int64
	failovers atomic.Int64
	canceled  atomic.Int64
	failed    atomic.Int64
	started   atomic.Int64
	completed atomic.Int64

	mu        sync.Mutex
	devErrors map[int]int64
}

// NewFaultTracker returns an empty tracker.
func NewFaultTracker() *FaultTracker {
	return &FaultTracker{devErrors: map[int]int64{}}
}

// AddRetries records transient errors recovered by retrying.
func (t *FaultTracker) AddRetries(n int64) { t.retries.Add(n) }

// AddFailovers records writes re-striped away from a dead device.
func (t *FaultTracker) AddFailovers(n int64) { t.failovers.Add(n) }

// QueryCanceled records a query aborted by context cancellation.
func (t *FaultTracker) QueryCanceled() { t.canceled.Add(1) }

// QueryFailed records a query that returned a fatal error.
func (t *FaultTracker) QueryFailed() { t.failed.Add(1) }

// QueryStarted records a query beginning execution.
func (t *FaultTracker) QueryStarted() { t.started.Add(1) }

// QueryCompleted records a query finishing successfully.
func (t *FaultTracker) QueryCompleted() { t.completed.Add(1) }

// DeviceError records one I/O error on the given device.
func (t *FaultTracker) DeviceError(dev int, n int64) {
	t.mu.Lock()
	t.devErrors[dev] += n
	t.mu.Unlock()
}

// FaultCounts is a point-in-time snapshot of a FaultTracker.
type FaultCounts struct {
	Retries          int64
	Failovers        int64
	CanceledQueries  int64
	FailedQueries    int64
	StartedQueries   int64
	CompletedQueries int64
	DeviceErrors     map[int]int64
}

// Snapshot returns the current counters.
func (t *FaultTracker) Snapshot() FaultCounts {
	c := FaultCounts{
		Retries:          t.retries.Load(),
		Failovers:        t.failovers.Load(),
		CanceledQueries:  t.canceled.Load(),
		FailedQueries:    t.failed.Load(),
		StartedQueries:   t.started.Load(),
		CompletedQueries: t.completed.Load(),
		DeviceErrors:     map[int]int64{},
	}
	t.mu.Lock()
	for dev, n := range t.devErrors {
		c.DeviceErrors[dev] = n
	}
	t.mu.Unlock()
	return c
}

// String renders the counters compactly, devices in order.
func (c FaultCounts) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "retries=%d failovers=%d canceled=%d failed=%d",
		c.Retries, c.Failovers, c.CanceledQueries, c.FailedQueries)
	devs := make([]int, 0, len(c.DeviceErrors))
	for dev := range c.DeviceErrors {
		devs = append(devs, dev)
	}
	sort.Ints(devs)
	for _, dev := range devs {
		fmt.Fprintf(&b, " dev%d=%d", dev, c.DeviceErrors[dev])
	}
	return b.String()
}
