package metrics

import (
	"sync"
	"testing"
)

func TestFaultTracker(t *testing.T) {
	ft := NewFaultTracker()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ft.AddRetries(2)
			ft.AddFailovers(1)
			ft.DeviceError(i%2, 3)
		}(i)
	}
	wg.Wait()
	ft.QueryCanceled()
	ft.QueryFailed()

	c := ft.Snapshot()
	if c.Retries != 16 || c.Failovers != 8 {
		t.Fatalf("retries=%d failovers=%d, want 16/8", c.Retries, c.Failovers)
	}
	if c.CanceledQueries != 1 || c.FailedQueries != 1 {
		t.Fatalf("canceled=%d failed=%d, want 1/1", c.CanceledQueries, c.FailedQueries)
	}
	if c.DeviceErrors[0] != 12 || c.DeviceErrors[1] != 12 {
		t.Fatalf("device errors = %v, want 12 each", c.DeviceErrors)
	}
	want := "retries=16 failovers=8 canceled=1 failed=1 dev0=12 dev1=12"
	if got := c.String(); got != want {
		t.Fatalf("String() = %q, want %q", got, want)
	}
}
