// Package codec provides the general-purpose page compression schemes used
// by Umami's self-regulating compression (paper §4.4).
//
// The paper evaluates LZ4, Snappy, ZSTD, and BZ2 through their open-source
// libraries and finds a smooth cost/ratio trade-off curve (Figure 3). This
// stdlib-only reproduction builds the same curve from four families:
//
//   - lz4-*: a from-scratch LZ4-block-format codec with a fast path
//     (acceleration settings) and a high-compression path (chained match
//     search depths) — the paper's multiple LZ4 settings.
//   - snappy: a from-scratch Snappy-format-style codec — one fixed setting,
//     off the pareto frontier exactly as the paper finds.
//   - deflate-*: stdlib compress/flate at several levels, standing in for
//     ZSTD's settings (documented substitution, see DESIGN.md).
//   - bwt: a from-scratch Burrows-Wheeler block-sorting compressor
//     (BWT + move-to-front + RLE + flate entropy stage), standing in for
//     BZ2: very high cost, high ratio, excluded from the unified scale.
//
// All codecs are self-framing: Decompress needs no out-of-band length.
package codec

import (
	"errors"
	"fmt"
)

// ErrCorrupt reports an undecodable compressed block.
var ErrCorrupt = errors.New("codec: corrupt compressed data")

// ID identifies a codec in spilled-page slot headers (§5.3). IDs are
// persisted inside staging areas and must not be renumbered.
type ID uint8

// The codec registry. None means the page bytes are stored raw.
const (
	None ID = iota
	LZ4Fastest
	LZ4Fast
	LZ4Default
	LZ4HC4
	LZ4HC16
	LZ4HC64
	Snappy
	Deflate1
	Deflate3
	Deflate6
	Deflate9
	BWT
	numIDs
)

// Codec compresses and decompresses blocks. Implementations are safe for
// concurrent use.
type Codec interface {
	// ID returns the codec's persistent identifier.
	ID() ID
	// Name returns a short human-readable name, e.g. "lz4-hc16".
	Name() string
	// Compress appends the compressed form of src to dst and returns the
	// extended slice. The output may be larger than src for incompressible
	// input.
	Compress(dst, src []byte) []byte
	// Decompress appends the decompressed form of src to dst. It returns
	// ErrCorrupt (possibly wrapped) for invalid input.
	Decompress(dst, src []byte) ([]byte, error)
}

var registry [numIDs]Codec

func register(c Codec) {
	if registry[c.ID()] != nil {
		panic(fmt.Sprintf("codec: duplicate registration of id %d", c.ID()))
	}
	registry[c.ID()] = c
}

// ByID returns the codec with the given id, or nil for None/unknown ids.
func ByID(id ID) Codec {
	if id >= numIDs {
		return nil
	}
	return registry[id]
}

// ByName returns the codec with the given name, or nil.
func ByName(name string) Codec {
	for _, c := range registry {
		if c != nil && c.Name() == name {
			return c
		}
	}
	return nil
}

// All returns every registered codec, ordered by ID.
func All() []Codec {
	out := make([]Codec, 0, numIDs)
	for _, c := range registry {
		if c != nil {
			out = append(out, c)
		}
	}
	return out
}
