package codec

import "encoding/binary"

// snappyCodec implements a Snappy-block-format-style codec from scratch:
// uvarint decompressed length followed by tagged elements (literal runs and
// copies with 1- or 2-byte offsets). It has one fixed setting; as in the
// paper's Figure 3, it sits off the pareto frontier (our LZ4 settings
// dominate it) and is therefore excluded from the unified scale.
type snappyCodec struct{}

func init() { register(snappyCodec{}) }

func (snappyCodec) ID() ID       { return Snappy }
func (snappyCodec) Name() string { return "snappy" }

// Tag types (low two bits of the tag byte).
const (
	snTagLiteral = 0
	snTagCopy1   = 1 // 1-byte offset: length 4..11, offset < 2048
	snTagCopy2   = 2 // 2-byte offset: length 1..64, offset < 65536
)

const (
	snHashLog   = 14
	snTableSize = 1 << snHashLog
)

func snHash(v uint32) uint32 { return v * 0x1e35a7bd >> (32 - snHashLog) }

func (snappyCodec) Compress(dst, src []byte) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(src)))
	if len(src) == 0 {
		return dst
	}
	if len(src) < 16 {
		return snEmitLiteral(dst, src)
	}
	var table [snTableSize]int32
	anchor, ip := 0, 1
	limit := len(src) - 8
	table[snHash(load32(src, 0))] = 1
	for ip <= limit {
		h := snHash(load32(src, ip))
		cand := int(table[h]) - 1
		table[h] = int32(ip + 1)
		if cand < 0 || ip-cand > 65535 || load32(src, cand) != load32(src, ip) {
			ip += 1 + (ip-anchor)>>5
			continue
		}
		matchLen := 4
		for ip+matchLen < len(src) && src[cand+matchLen] == src[ip+matchLen] {
			matchLen++
		}
		if anchor < ip {
			dst = snEmitLiteral(dst, src[anchor:ip])
		}
		dst = snEmitCopy(dst, ip-cand, matchLen)
		ip += matchLen
		anchor = ip
	}
	if anchor < len(src) {
		dst = snEmitLiteral(dst, src[anchor:])
	}
	return dst
}

func snEmitLiteral(dst, lit []byte) []byte {
	n := len(lit) - 1
	switch {
	case n < 60:
		dst = append(dst, byte(n)<<2|snTagLiteral)
	case n < 1<<8:
		dst = append(dst, 60<<2|snTagLiteral, byte(n))
	case n < 1<<16:
		dst = append(dst, 61<<2|snTagLiteral, byte(n), byte(n>>8))
	default:
		dst = append(dst, 62<<2|snTagLiteral, byte(n), byte(n>>8), byte(n>>16))
	}
	return append(dst, lit...)
}

func snEmitCopy(dst []byte, offset, length int) []byte {
	// Long matches are emitted as a run of <=64-byte copies.
	for length > 0 {
		n := length
		if n > 64 {
			n = 64
			// Avoid a trailing copy shorter than 4 (tag1 minimum isn't the
			// issue — tag2 supports 1..64 — but keeping chunks >=4 preserves
			// the option of tag1 below).
			if length-64 < 4 {
				n = length - 4
			}
		}
		if n >= 4 && n <= 11 && offset < 2048 {
			dst = append(dst,
				byte(offset>>8)<<5|byte(n-4)<<2|snTagCopy1,
				byte(offset))
		} else {
			dst = append(dst, byte(n-1)<<2|snTagCopy2, byte(offset), byte(offset>>8))
		}
		length -= n
	}
	return dst
}

func (snappyCodec) Decompress(dst, src []byte) ([]byte, error) {
	want, n := binary.Uvarint(src)
	if n <= 0 {
		return dst, ErrCorrupt
	}
	src = src[n:]
	base := len(dst)
	out := dst
	for len(src) > 0 {
		tag := src[0]
		src = src[1:]
		switch tag & 3 {
		case snTagLiteral:
			length := int(tag >> 2)
			switch {
			case length < 60:
				length++
			case length == 60:
				if len(src) < 1 {
					return dst, ErrCorrupt
				}
				length = int(src[0]) + 1
				src = src[1:]
			case length == 61:
				if len(src) < 2 {
					return dst, ErrCorrupt
				}
				length = int(src[0]) | int(src[1])<<8
				length++
				src = src[2:]
			default:
				if len(src) < 3 {
					return dst, ErrCorrupt
				}
				length = int(src[0]) | int(src[1])<<8 | int(src[2])<<16
				length++
				src = src[3:]
			}
			if length > len(src) {
				return dst, ErrCorrupt
			}
			out = append(out, src[:length]...)
			src = src[length:]
		case snTagCopy1:
			if len(src) < 1 {
				return dst, ErrCorrupt
			}
			length := int(tag>>2&7) + 4
			offset := int(tag>>5)<<8 | int(src[0])
			src = src[1:]
			var err error
			out, err = snCopy(out, base, offset, length)
			if err != nil {
				return dst, err
			}
		case snTagCopy2:
			if len(src) < 2 {
				return dst, ErrCorrupt
			}
			length := int(tag>>2) + 1
			offset := int(src[0]) | int(src[1])<<8
			src = src[2:]
			var err error
			out, err = snCopy(out, base, offset, length)
			if err != nil {
				return dst, err
			}
		default:
			return dst, ErrCorrupt // 4-byte offsets unused by our encoder
		}
	}
	if len(out)-base != int(want) {
		return dst, ErrCorrupt
	}
	return out, nil
}

func snCopy(out []byte, base, offset, length int) ([]byte, error) {
	if offset == 0 || offset > len(out)-base {
		return out, ErrCorrupt
	}
	pos := len(out) - offset
	for i := 0; i < length; i++ {
		out = append(out, out[pos+i])
	}
	return out, nil
}
