package codec

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

// testInputs covers the data shapes spilled pages exhibit: runs, repeated
// structure (row-wise tuples), text, and incompressible noise.
func testInputs() map[string][]byte {
	rng := rand.New(rand.NewSource(42))
	random := make([]byte, 64<<10)
	rng.Read(random)

	tuples := make([]byte, 0, 64<<10)
	for i := 0; len(tuples) < 60<<10; i++ {
		row := make([]byte, 88)
		for j := 0; j < 8; j++ {
			row[j] = byte(i >> (8 * j))
		}
		copy(row[8:], "DELIVER IN PERSON")
		copy(row[32:], "ironic deposits sleep furiously around the ")
		row[80] = byte(i % 7)
		tuples = append(tuples, row...)
	}

	return map[string][]byte{
		"empty":     {},
		"one":       {0x42},
		"tiny":      []byte("abc"),
		"zeros":     make([]byte, 32<<10),
		"runs":      bytes.Repeat([]byte{1, 1, 1, 1, 2, 2, 2, 2, 3}, 4000),
		"text":      []byte(strings.Repeat("the quick brown fox jumps over the lazy dog. ", 1200)),
		"tuples":    tuples,
		"random":    random,
		"aaaa":      bytes.Repeat([]byte{'a'}, 70000),
		"alternate": bytes.Repeat([]byte{0, 255}, 10000),
	}
}

func TestRoundTripAllCodecs(t *testing.T) {
	inputs := testInputs()
	for _, c := range All() {
		c := c
		t.Run(c.Name(), func(t *testing.T) {
			for name, in := range inputs {
				comp := c.Compress(nil, in)
				got, err := c.Decompress(nil, comp)
				if err != nil {
					t.Fatalf("%s: decompress: %v", name, err)
				}
				if !bytes.Equal(got, in) {
					t.Fatalf("%s: round trip mismatch (in %d bytes, out %d bytes)", name, len(in), len(got))
				}
			}
		})
	}
}

func TestDecompressAppends(t *testing.T) {
	c := ByID(LZ4Default)
	comp := c.Compress(nil, []byte("world"))
	out, err := c.Decompress([]byte("hello "), comp)
	if err != nil {
		t.Fatal(err)
	}
	if string(out) != "hello world" {
		t.Fatalf("append semantics broken: %q", out)
	}
}

func TestCompressAppends(t *testing.T) {
	for _, c := range All() {
		prefix := []byte{9, 9, 9}
		comp := c.Compress(append([]byte(nil), prefix...), []byte("payload data payload data"))
		if !bytes.Equal(comp[:3], prefix) {
			t.Fatalf("%s: Compress overwrote dst prefix", c.Name())
		}
		got, err := c.Decompress(nil, comp[3:])
		if err != nil || string(got) != "payload data payload data" {
			t.Fatalf("%s: round trip with prefix failed: %v %q", c.Name(), err, got)
		}
	}
}

func TestCompressionRatioOnStructuredData(t *testing.T) {
	in := testInputs()["tuples"]
	for _, c := range All() {
		comp := c.Compress(nil, in)
		ratio := float64(len(in)) / float64(len(comp))
		if ratio < 1.5 {
			t.Errorf("%s: ratio %.2f on structured tuple data, want >= 1.5", c.Name(), ratio)
		}
	}
}

func TestHCNotWorseThanFast(t *testing.T) {
	// Deeper LZ4 search must not compress structured data worse.
	in := testInputs()["text"]
	fast := len(ByID(LZ4Fastest).Compress(nil, in))
	hc := len(ByID(LZ4HC16).Compress(nil, in))
	if hc > fast {
		t.Fatalf("lz4-hc16 output (%d) larger than lz4-a8 (%d)", hc, fast)
	}
}

func TestDeflateLevelsOrdered(t *testing.T) {
	in := testInputs()["tuples"]
	l1 := len(ByID(Deflate1).Compress(nil, in))
	l9 := len(ByID(Deflate9).Compress(nil, in))
	if l9 > l1 {
		t.Fatalf("deflate-9 output (%d) larger than deflate-1 (%d)", l9, l1)
	}
}

func TestCorruptInputRejected(t *testing.T) {
	for _, c := range All() {
		if _, err := c.Decompress(nil, nil); err == nil {
			t.Errorf("%s: accepted empty input", c.Name())
		}
		comp := c.Compress(nil, []byte(strings.Repeat("abcdefgh", 100)))
		// Truncations must error, never panic or return wrong-length data.
		for _, cut := range []int{1, len(comp) / 2, len(comp) - 1} {
			if cut >= len(comp) {
				continue
			}
			got, err := c.Decompress(nil, comp[:cut])
			if err == nil && len(got) == 800 {
				// Extremely unlikely a truncation still yields full output.
				t.Errorf("%s: truncation to %d bytes decoded fully", c.Name(), cut)
			}
		}
	}
}

func TestCorruptBitFlips(t *testing.T) {
	// Flipping bytes must never panic; errors or detectable garbage are fine.
	in := []byte(strings.Repeat("spilly spills pages to nvme ", 50))
	for _, c := range All() {
		comp := c.Compress(nil, in)
		for i := 0; i < len(comp); i += 3 {
			mut := append([]byte(nil), comp...)
			mut[i] ^= 0x55
			func() {
				defer func() {
					if r := recover(); r != nil {
						t.Fatalf("%s: panic on corrupt input (byte %d): %v", c.Name(), i, r)
					}
				}()
				c.Decompress(nil, mut)
			}()
		}
	}
}

func TestQuickRoundTrip(t *testing.T) {
	for _, c := range All() {
		c := c
		f := func(data []byte) bool {
			comp := c.Compress(nil, data)
			got, err := c.Decompress(nil, comp)
			return err == nil && bytes.Equal(got, data)
		}
		n := 300
		if c.ID() == BWT {
			n = 60 // BWT is deliberately slow
		}
		if err := quick.Check(f, &quick.Config{MaxCount: n}); err != nil {
			t.Errorf("%s: %v", c.Name(), err)
		}
	}
}

func TestRegistry(t *testing.T) {
	if ByID(None) != nil {
		t.Fatal("None must have no codec (raw storage)")
	}
	if ByID(numIDs) != nil || ByID(numIDs+100) != nil {
		t.Fatal("out-of-range ID returned a codec")
	}
	if c := ByName("lz4"); c == nil || c.ID() != LZ4Default {
		t.Fatal("ByName(lz4) broken")
	}
	if ByName("nope") != nil {
		t.Fatal("ByName accepted unknown name")
	}
	ids := map[ID]bool{}
	for _, c := range All() {
		if ids[c.ID()] {
			t.Fatalf("duplicate codec id %d", c.ID())
		}
		ids[c.ID()] = true
	}
	if len(ids) != int(numIDs)-1 {
		t.Fatalf("registered %d codecs, want %d", len(ids), numIDs-1)
	}
}

func TestBWTKnownVector(t *testing.T) {
	// "banana" with sentinel sorts to the classic annb$aa / primary form;
	// verify via explicit inverse rather than hardcoding.
	l, p := bwtForward([]byte("banana"))
	got, err := bwtInverse(l, p)
	if err != nil || string(got) != "banana" {
		t.Fatalf("bwt(banana) inverse = %q, %v", got, err)
	}
	if string(l) == "banana" {
		t.Fatal("bwt output equals input; transform did nothing")
	}
}

func TestMTFRoundTrip(t *testing.T) {
	f := func(data []byte) bool {
		orig := append([]byte(nil), data...)
		mtfEncode(data)
		mtfDecode(data)
		return bytes.Equal(data, orig)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestSuffixArraySorted(t *testing.T) {
	check := func(s []byte) {
		sa := suffixArray(s)
		m := len(s) + 1
		if len(sa) != m {
			t.Fatalf("sa length %d, want %d", len(sa), m)
		}
		suffix := func(i int32) []byte { return s[i:] }
		if sa[0] != int32(len(s)) {
			t.Fatalf("sentinel suffix not first: sa[0]=%d", sa[0])
		}
		for i := 2; i < m; i++ {
			if bytes.Compare(suffix(sa[i-1]), suffix(sa[i])) >= 0 {
				t.Fatalf("suffixes out of order at %d for input %q", i, s)
			}
		}
	}
	check([]byte("banana"))
	check([]byte("aaaaaaaaaa"))
	check([]byte("mississippi"))
	rng := rand.New(rand.NewSource(1))
	buf := make([]byte, 3000)
	rng.Read(buf)
	check(buf)
	for i := range buf {
		buf[i] = byte(rng.Intn(3)) // small alphabet stresses prefix doubling
	}
	check(buf)
}

func benchCodec(b *testing.B, id ID, compress bool) {
	in := testInputs()["tuples"]
	c := ByID(id)
	comp := c.Compress(nil, in)
	b.SetBytes(int64(len(in)))
	b.ReportMetric(float64(len(in))/float64(len(comp)), "ratio")
	b.ResetTimer()
	if compress {
		for i := 0; i < b.N; i++ {
			c.Compress(nil, in)
		}
		return
	}
	for i := 0; i < b.N; i++ {
		c.Decompress(nil, comp)
	}
}

func BenchmarkCompressLZ4A8(b *testing.B)     { benchCodec(b, LZ4Fastest, true) }
func BenchmarkCompressLZ4(b *testing.B)       { benchCodec(b, LZ4Default, true) }
func BenchmarkCompressLZ4HC16(b *testing.B)   { benchCodec(b, LZ4HC16, true) }
func BenchmarkCompressSnappy(b *testing.B)    { benchCodec(b, Snappy, true) }
func BenchmarkCompressDeflate1(b *testing.B)  { benchCodec(b, Deflate1, true) }
func BenchmarkCompressDeflate6(b *testing.B)  { benchCodec(b, Deflate6, true) }
func BenchmarkCompressBWT(b *testing.B)       { benchCodec(b, BWT, true) }
func BenchmarkDecompressLZ4(b *testing.B)     { benchCodec(b, LZ4Default, false) }
func BenchmarkDecompressDeflate6(b *testing.B) { benchCodec(b, Deflate6, false) }
