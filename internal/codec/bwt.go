package codec

import (
	"bytes"
	"compress/flate"
	"encoding/binary"
	"fmt"
	"io"
	"sort"
	"sync"
)

// bwtCodec is a from-scratch Burrows-Wheeler block-sorting compressor
// standing in for BZ2: a BWT (via a prefix-doubling suffix array over the
// block plus sentinel), a move-to-front transform, and a flate entropy
// stage. Like BZ2 in the paper's Figure 3, it compresses well but its cost
// is an order of magnitude above the other schemes, so the unified scale
// excludes it.
type bwtCodec struct {
	pool sync.Pool // *flate.Writer, level 6
}

func init() { register(&bwtCodec{}) }

func (c *bwtCodec) ID() ID       { return BWT }
func (c *bwtCodec) Name() string { return "bwt" }

func (c *bwtCodec) Compress(dst, src []byte) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(src)))
	if len(src) == 0 {
		return dst
	}
	l, primary := bwtForward(src)
	dst = binary.AppendUvarint(dst, uint64(primary))
	mtfEncode(l)
	var buf bytes.Buffer
	w, _ := c.pool.Get().(*flate.Writer)
	if w == nil {
		w, _ = flate.NewWriter(&buf, 6)
	} else {
		w.Reset(&buf)
	}
	if _, err := w.Write(l); err != nil {
		panic(fmt.Sprintf("codec: bwt flate write: %v", err))
	}
	if err := w.Close(); err != nil {
		panic(fmt.Sprintf("codec: bwt flate close: %v", err))
	}
	c.pool.Put(w)
	return append(dst, buf.Bytes()...)
}

func (c *bwtCodec) Decompress(dst, src []byte) ([]byte, error) {
	n, k := binary.Uvarint(src)
	if k <= 0 {
		return dst, ErrCorrupt
	}
	src = src[k:]
	if n == 0 {
		return dst, nil
	}
	primary, k := binary.Uvarint(src)
	if k <= 0 || primary > n {
		return dst, ErrCorrupt
	}
	src = src[k:]
	r := flate.NewReader(bytes.NewReader(src))
	defer r.Close()
	l := make([]byte, 0, n)
	buf := make([]byte, 32<<10)
	for {
		nr, err := r.Read(buf)
		l = append(l, buf[:nr]...)
		if err == io.EOF {
			break
		}
		if err != nil {
			return dst, fmt.Errorf("%w: %v", ErrCorrupt, err)
		}
	}
	if uint64(len(l)) != n {
		return dst, ErrCorrupt
	}
	mtfDecode(l)
	out, err := bwtInverse(l, int(primary))
	if err != nil {
		return dst, err
	}
	return append(dst, out...), nil
}

// bwtForward returns the Burrows-Wheeler transform of src (computed over
// src plus a virtual sentinel smaller than every byte) with the sentinel
// position removed, plus that position ("primary index").
func bwtForward(src []byte) (l []byte, primary int) {
	sa := suffixArray(src)
	l = make([]byte, 0, len(src))
	for i, j := range sa {
		if j == 0 {
			primary = i
			continue // this row's last column is the sentinel; dropped
		}
		l = append(l, src[j-1])
	}
	return l, primary
}

// bwtInverse reverses bwtForward.
func bwtInverse(l []byte, primary int) ([]byte, error) {
	n := len(l)
	m := n + 1
	if primary > n {
		return nil, ErrCorrupt
	}
	// Rebuild the full last column with the sentinel (symbol 0; bytes are
	// shifted up by one).
	full := make([]uint16, m)
	for i, idx := 0, 0; i < m; i++ {
		if i == primary {
			full[i] = 0
			continue
		}
		full[i] = uint16(l[idx]) + 1
		idx++
	}
	// LF mapping: LF[i] = C[c] + rank of c within full[0..i].
	var counts [257]int
	for _, c := range full {
		counts[c]++
	}
	var c [257]int
	sum := 0
	for s := 0; s < 257; s++ {
		c[s] = sum
		sum += counts[s]
	}
	lf := make([]int32, m)
	var seen [257]int
	for i, ch := range full {
		lf[i] = int32(c[ch] + seen[ch])
		seen[ch]++
	}
	// Row 0 is the rotation starting with the sentinel; its last column is
	// the final byte of the text. Walk backward n times.
	out := make([]byte, n)
	i := int32(0)
	for k := n - 1; k >= 0; k-- {
		ch := full[i]
		if ch == 0 {
			return nil, ErrCorrupt // hit the sentinel too early
		}
		out[k] = byte(ch - 1)
		i = lf[i]
	}
	return out, nil
}

// suffixArray computes the suffix array of s plus a sentinel smaller than
// all bytes, by prefix doubling (O(n log^2 n)). Adequate for 64 KiB pages;
// the BWT codec is *supposed* to be expensive (it plays BZ2's role).
func suffixArray(s []byte) []int32 {
	m := len(s) + 1
	sa := make([]int32, m)
	rank := make([]int32, m)
	tmp := make([]int32, m)
	for i := range sa {
		sa[i] = int32(i)
	}
	for i := 0; i < len(s); i++ {
		rank[i] = int32(s[i]) + 1
	}
	rank[m-1] = 0 // sentinel
	for k := 1; ; k *= 2 {
		second := func(i int32) int32 {
			if int(i)+k < m {
				return rank[int(i)+k] + 1
			}
			return 0
		}
		sort.Slice(sa, func(a, b int) bool {
			x, y := sa[a], sa[b]
			if rank[x] != rank[y] {
				return rank[x] < rank[y]
			}
			return second(x) < second(y)
		})
		tmp[sa[0]] = 0
		for i := 1; i < m; i++ {
			p, q := sa[i-1], sa[i]
			tmp[q] = tmp[p]
			if rank[p] != rank[q] || second(p) != second(q) {
				tmp[q]++
			}
		}
		copy(rank, tmp)
		if int(rank[sa[m-1]]) == m-1 && int(rank[sa[0]]) == 0 && allDistinct(rank, m) {
			break
		}
		if k > m {
			break
		}
	}
	return sa
}

func allDistinct(rank []int32, m int) bool {
	// Ranks are distinct iff the maximum rank equals m-1.
	var max int32
	for _, r := range rank {
		if r > max {
			max = r
		}
	}
	return int(max) == m-1
}

// mtfEncode applies the move-to-front transform in place.
func mtfEncode(data []byte) {
	var alphabet [256]byte
	for i := range alphabet {
		alphabet[i] = byte(i)
	}
	for i, b := range data {
		var j int
		for alphabet[j] != b {
			j++
		}
		data[i] = byte(j)
		copy(alphabet[1:], alphabet[:j])
		alphabet[0] = b
	}
}

// mtfDecode reverses mtfEncode in place.
func mtfDecode(data []byte) {
	var alphabet [256]byte
	for i := range alphabet {
		alphabet[i] = byte(i)
	}
	for i, j := range data {
		b := alphabet[j]
		data[i] = b
		copy(alphabet[1:], alphabet[:j])
		alphabet[0] = b
	}
}
