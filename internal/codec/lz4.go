package codec

import (
	"encoding/binary"
)

// lz4Codec implements the LZ4 block format from scratch. The fast path uses
// a single-probe hash table with LZ4's acceleration skip heuristic; the
// high-compression path (depth > 0) uses hash chains and examines up to
// depth candidates per position, like lz4hc. Together the settings span the
// lower-left region of the paper's Figure 3 trade-off curve.
//
// Frame layout: uvarint(decompressed length) followed by LZ4 block
// sequences: token (hi nibble literal length, lo nibble match length - 4,
// 15 = extension bytes follow), literals, 2-byte little-endian match offset,
// match length extension bytes. The final sequence is literals-only.
type lz4Codec struct {
	id    ID
	name  string
	accel int // fast path: skip acceleration (>=1); larger = faster, worse ratio
	depth int // HC path: candidates per position; 0 selects the fast path
}

func init() {
	register(&lz4Codec{id: LZ4Fastest, name: "lz4-a8", accel: 8})
	register(&lz4Codec{id: LZ4Fast, name: "lz4-a4", accel: 4})
	register(&lz4Codec{id: LZ4Default, name: "lz4", accel: 1})
	register(&lz4Codec{id: LZ4HC4, name: "lz4-hc4", accel: 1, depth: 4})
	register(&lz4Codec{id: LZ4HC16, name: "lz4-hc16", accel: 1, depth: 16})
	register(&lz4Codec{id: LZ4HC64, name: "lz4-hc64", accel: 1, depth: 64})
}

func (c *lz4Codec) ID() ID       { return c.id }
func (c *lz4Codec) Name() string { return c.name }

const (
	lz4MinMatch   = 4
	lz4MaxOffset  = 65535
	lz4HashLog    = 14
	lz4TableSize  = 1 << lz4HashLog
	lz4LastLits   = 5  // spec: last 5 bytes are always literals
	lz4MatchGuard = 12 // spec: no match may start within the last 12 bytes
)

func lz4Hash(v uint32) uint32 {
	return v * 2654435761 >> (32 - lz4HashLog)
}

func load32(b []byte, i int) uint32 {
	return binary.LittleEndian.Uint32(b[i:])
}

func (c *lz4Codec) Compress(dst, src []byte) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(src)))
	if len(src) == 0 {
		return dst
	}
	if len(src) < lz4MatchGuard+lz4MinMatch {
		// Too short for any match: single literal run.
		return lz4EmitFinal(dst, src)
	}

	var table [lz4TableSize]int32 // position+1 of last occurrence of each hash
	var chain []int32             // HC: previous position+1 with same hash
	if c.depth > 0 {
		chain = make([]int32, len(src))
	}

	anchor := 0
	ip := 1 // position 0 can never reference an earlier match
	limit := len(src) - lz4MatchGuard
	table[lz4Hash(load32(src, 0))] = 1

	for ip <= limit {
		h := lz4Hash(load32(src, ip))
		cand := int(table[h]) - 1
		if c.depth > 0 {
			chain[ip] = table[h]
		}
		table[h] = int32(ip + 1)

		matchPos, matchLen := -1, 0
		if c.depth == 0 {
			if cand >= 0 && ip-cand <= lz4MaxOffset && load32(src, cand) == load32(src, ip) {
				matchPos = cand
				matchLen = lz4ExtendMatch(src, cand, ip, limit+lz4MatchGuard-lz4LastLits)
			}
		} else {
			// Walk the chain, keep the longest match.
			end := limit + lz4MatchGuard - lz4LastLits
			for probes := 0; cand >= 0 && ip-cand <= lz4MaxOffset && probes < c.depth; probes++ {
				if load32(src, cand) == load32(src, ip) {
					l := lz4ExtendMatch(src, cand, ip, end)
					if l > matchLen {
						matchLen, matchPos = l, cand
					}
				}
				cand = int(chain[cand]) - 1
			}
		}

		if matchLen < lz4MinMatch {
			ip = lz4Advance(ip, anchor, c.accel)
			continue
		}

		// Extend the match backward over pending literals.
		for matchPos > 0 && ip > anchor && src[matchPos-1] == src[ip-1] {
			matchPos--
			ip--
			matchLen++
		}

		dst = lz4EmitSequence(dst, src[anchor:ip], ip-matchPos, matchLen)
		ip += matchLen
		anchor = ip

		// Index interior positions of the match region for future matches
		// (cheap variant: index every other position).
		if c.depth > 0 {
			for j := ip - matchLen + 1; j < ip && j <= limit; j++ {
				hj := lz4Hash(load32(src, j))
				chain[j] = table[hj]
				table[hj] = int32(j + 1)
			}
		}
	}
	return lz4EmitFinal(dst, src[anchor:])
}

// lz4Advance applies LZ4's skip-acceleration step: after many consecutive
// literal misses the search stride grows, trading ratio for speed. Higher
// acceleration settings grow the stride faster.
func lz4Advance(ip, anchor, accel int) int {
	return ip + 1 + (ip-anchor)>>6*accel
}

// lz4ExtendMatch returns the match length between positions ref and pos,
// scanning no further than end.
func lz4ExtendMatch(src []byte, ref, pos, end int) int {
	n := 0
	for pos+n < end && src[ref+n] == src[pos+n] {
		n++
	}
	return n
}

func lz4EmitSequence(dst, literals []byte, offset, matchLen int) []byte {
	litLen := len(literals)
	ml := matchLen - lz4MinMatch
	token := byte(0)
	if litLen >= 15 {
		token = 15 << 4
	} else {
		token = byte(litLen) << 4
	}
	if ml >= 15 {
		token |= 15
	} else {
		token |= byte(ml)
	}
	dst = append(dst, token)
	if litLen >= 15 {
		dst = lz4EmitLen(dst, litLen-15)
	}
	dst = append(dst, literals...)
	dst = append(dst, byte(offset), byte(offset>>8))
	if ml >= 15 {
		dst = lz4EmitLen(dst, ml-15)
	}
	return dst
}

// lz4EmitFinal writes the trailing literals-only sequence.
func lz4EmitFinal(dst, literals []byte) []byte {
	litLen := len(literals)
	token := byte(0)
	if litLen >= 15 {
		token = 15 << 4
	} else {
		token = byte(litLen) << 4
	}
	dst = append(dst, token)
	if litLen >= 15 {
		dst = lz4EmitLen(dst, litLen-15)
	}
	return append(dst, literals...)
}

func lz4EmitLen(dst []byte, n int) []byte {
	for n >= 255 {
		dst = append(dst, 255)
		n -= 255
	}
	return append(dst, byte(n))
}

func (c *lz4Codec) Decompress(dst, src []byte) ([]byte, error) {
	return lz4Decompress(dst, src)
}

func lz4Decompress(dst, src []byte) ([]byte, error) {
	want, n := binary.Uvarint(src)
	if n <= 0 {
		return dst, ErrCorrupt
	}
	src = src[n:]
	base := len(dst)
	out := dst
	for len(src) > 0 {
		token := src[0]
		src = src[1:]
		// Literals.
		litLen := int(token >> 4)
		if litLen == 15 {
			var ok bool
			litLen, src, ok = lz4ReadLen(litLen, src)
			if !ok {
				return dst, ErrCorrupt
			}
		}
		if litLen > len(src) {
			return dst, ErrCorrupt
		}
		out = append(out, src[:litLen]...)
		src = src[litLen:]
		if len(src) == 0 {
			break // final literals-only sequence
		}
		// Match.
		if len(src) < 2 {
			return dst, ErrCorrupt
		}
		offset := int(src[0]) | int(src[1])<<8
		src = src[2:]
		if offset == 0 || offset > len(out)-base {
			return dst, ErrCorrupt
		}
		matchLen := int(token & 15)
		if matchLen == 15 {
			var ok bool
			matchLen, src, ok = lz4ReadLen(matchLen, src)
			if !ok {
				return dst, ErrCorrupt
			}
		}
		matchLen += lz4MinMatch
		// Byte-wise copy: overlapping matches are the RLE case and must
		// copy forward one byte at a time.
		pos := len(out) - offset
		for i := 0; i < matchLen; i++ {
			out = append(out, out[pos+i])
		}
	}
	if len(out)-base != int(want) {
		return dst, ErrCorrupt
	}
	return out, nil
}

func lz4ReadLen(n int, src []byte) (int, []byte, bool) {
	for {
		if len(src) == 0 {
			return 0, src, false
		}
		b := src[0]
		src = src[1:]
		n += int(b)
		if b != 255 {
			return n, src, true
		}
	}
}
