package codec

import (
	"bytes"
	"compress/flate"
	"encoding/binary"
	"fmt"
	"io"
	"sync"
)

// deflateCodec wraps stdlib compress/flate. Its levels stand in for the
// paper's ZSTD settings: a dictionary-window entropy-coded scheme that is
// slower but compresses better than the LZ4 family (see DESIGN.md for the
// substitution rationale). Frame: uvarint decompressed length + raw DEFLATE
// stream.
type deflateCodec struct {
	id    ID
	name  string
	level int
	pool  sync.Pool // *flate.Writer
}

func newDeflate(id ID, name string, level int) *deflateCodec {
	return &deflateCodec{id: id, name: name, level: level}
}

func init() {
	register(newDeflate(Deflate1, "deflate-1", 1))
	register(newDeflate(Deflate3, "deflate-3", 3))
	register(newDeflate(Deflate6, "deflate-6", 6))
	register(newDeflate(Deflate9, "deflate-9", 9))
}

func (c *deflateCodec) ID() ID       { return c.id }
func (c *deflateCodec) Name() string { return c.name }

func (c *deflateCodec) Compress(dst, src []byte) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(src)))
	var buf bytes.Buffer
	w, _ := c.pool.Get().(*flate.Writer)
	if w == nil {
		var err error
		w, err = flate.NewWriter(&buf, c.level)
		if err != nil {
			panic(fmt.Sprintf("codec: flate.NewWriter(%d): %v", c.level, err))
		}
	} else {
		w.Reset(&buf)
	}
	if _, err := w.Write(src); err != nil {
		panic(fmt.Sprintf("codec: flate write to memory failed: %v", err))
	}
	if err := w.Close(); err != nil {
		panic(fmt.Sprintf("codec: flate close failed: %v", err))
	}
	c.pool.Put(w)
	return append(dst, buf.Bytes()...)
}

func (c *deflateCodec) Decompress(dst, src []byte) ([]byte, error) {
	want, n := binary.Uvarint(src)
	if n <= 0 {
		return dst, ErrCorrupt
	}
	r := flate.NewReader(bytes.NewReader(src[n:]))
	defer r.Close()
	base := len(dst)
	out := dst
	buf := make([]byte, 32<<10)
	for {
		nr, err := r.Read(buf)
		out = append(out, buf[:nr]...)
		if err == io.EOF {
			break
		}
		if err != nil {
			return dst, fmt.Errorf("%w: %v", ErrCorrupt, err)
		}
	}
	if len(out)-base != int(want) {
		return dst, ErrCorrupt
	}
	return out, nil
}
