// Package uring provides an io_uring-shaped asynchronous I/O interface over
// the simulated NVMe array (paper §5.1).
//
// Each worker thread owns one Ring to avoid contention, mirroring Spilly's
// one-io_uring-per-thread design. Requests are collected in a local
// submission queue and flushed to the "OS" (the array) as a batch by Submit.
// Completions are reaped by Poll, which — like a real completion queue —
// only surfaces requests whose modeled device time has passed. Every
// submission records its start timestamp, the trick the paper implements by
// encoding the start time in the io_uring user-data field, so that the
// self-regulating compression controller can compute I/O cost (cycles per
// byte) from completion latencies (§4.4, Figure 4 B).
package uring

import (
	"container/heap"
	"time"

	"github.com/spilly-db/spilly/internal/nvmesim"
)

// Op is the request type.
type Op uint8

// Request operations.
const (
	OpWrite Op = iota
	OpRead
)

// Class is the I/O priority class a request carries into the shared
// dispatcher (internal/iosched). Lower values dispatch first. Unbound
// rings ignore it.
type Class uint8

// Priority classes, highest first (§5.1: deep enough to saturate, shallow
// enough that latency-critical requests aren't stuck behind bulk I/O).
const (
	// ClassDemand marks reads a consumer is blocked on.
	ClassDemand Class = iota
	// ClassSpillWrite marks phase-1 spill writes; the writer's maxAhead
	// backpressure bounds how many a query can have outstanding.
	ClassSpillWrite
	// ClassPrefetch marks speculative reads: scan lookahead and partition
	// readback prefetch.
	ClassPrefetch
	// ClassBackground marks deferrable maintenance I/O (cache demotion).
	ClassBackground
	// NumClasses is the number of priority classes.
	NumClasses = 4
)

// String names the class for metrics and logs.
func (c Class) String() string {
	switch c {
	case ClassDemand:
		return "demand"
	case ClassSpillWrite:
		return "spill_write"
	case ClassPrefetch:
		return "prefetch"
	default:
		return "background"
	}
}

// Request is one I/O request a bound ring hands to the shared dispatcher.
// Submitted is the ring-side submission timestamp (the user-data timestamp
// trick), so Completion.Latency includes any time the dispatcher defers the
// request — queueing delay is part of the I/O cost the self-regulating
// compression controller observes. DepthAtSubmit keeps its ring-local
// meaning: this ring's outstanding requests when the request was submitted,
// including itself.
type Request struct {
	Op            Op
	Loc           nvmesim.Loc
	Buf           []byte
	UserData      uint64
	Class         Class
	Submitted     time.Time
	DepthAtSubmit int
}

// Dispatcher is an engine-wide shared I/O scheduler rings can bind to
// (internal/iosched implements it). Register returns the per-ring
// submission handle; query is the fairness key requests are round-robined
// by within a class.
type Dispatcher interface {
	Register(query uint64) DispatchRing
}

// DispatchRing is the dispatcher-side state of one bound ring. All methods
// are safe for concurrent use (the dispatcher serializes internally), but a
// Ring itself remains single-threaded by design.
type DispatchRing interface {
	// Submit enqueues a batch; the dispatcher takes ownership of reqs.
	Submit(reqs []Request)
	// Poll appends ready completions to out. With block set it sleeps —
	// driving the shared dispatch loop — until at least one of this ring's
	// requests completes, the ring has nothing outstanding, or cancel
	// (which may be nil) reports cancellation.
	Poll(out []Completion, block bool, cancel func() bool) []Completion
	// Outstanding counts this ring's submitted-but-unreaped requests.
	Outstanding() int
	// Promote re-tags a still-deferred request as demand (a consumer now
	// blocks on it); returns false if it already dispatched.
	Promote(userData uint64) bool
	// CancelDeferred drops this ring's not-yet-dispatched requests
	// without completing them, returning how many were dropped. Used by
	// teardown paths that will never poll again.
	CancelDeferred() int
}

// Completion is one completed I/O request.
type Completion struct {
	UserData  uint64
	Op        Op
	Loc       nvmesim.Loc
	Buf       []byte // the buffer the request owned; returned to the caller
	N         int    // bytes transferred
	Err       error
	Submitted time.Time     // submission timestamp (user-data timestamp trick)
	Latency   time.Duration // completion time - submission time
	// DepthAtSubmit is the number of requests in flight when this one was
	// submitted (including itself); cost trackers combine it with the
	// reap-time depth to estimate the parallelism its latency was shared
	// across (§4.4, Figure 4 B).
	DepthAtSubmit int
}

// sqe is a pending submission queue entry.
type sqe struct {
	op       Op
	dev      int // write target device (-1 = ring picks round-robin)
	loc      nvmesim.Loc
	buf      []byte
	userData uint64
	class    Class
}

// cqe is an in-flight request ordered by readyAt.
type cqe struct {
	Completion
	readyAt time.Time
}

type cqHeap []cqe

func (h cqHeap) Len() int            { return len(h) }
func (h cqHeap) Less(i, j int) bool  { return h[i].readyAt.Before(h[j].readyAt) }
func (h cqHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *cqHeap) Push(x interface{}) { *h = append(*h, x.(cqe)) }
func (h *cqHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// Ring is a per-thread submission/completion ring. It is not safe for
// concurrent use — by design, exactly like an io_uring instance.
type Ring struct {
	arr      *nvmesim.Array
	clock    nvmesim.Clock
	sq       []sqe
	inflight cqHeap
	lastDev  int // round-robin write spreading (paper §5.1)

	// lease, when set, owns every spill extent the ring's writes allocate,
	// so query teardown can reclaim exactly this query's spilled data.
	// Read-only rings and permanent column-store writes leave it nil.
	lease *nvmesim.Lease

	// cancel, when set, is polled during blocking waits so that a stuck
	// device (or an arbitrarily long latency spike) cannot hang the caller:
	// once it returns true, Poll returns whatever is ready instead of
	// sleeping until the next modeled completion.
	cancel func() bool

	// dr, when set (Bind), routes submissions through the engine's shared
	// I/O dispatcher instead of hitting the array directly; class is the
	// default priority class queued requests carry.
	dr    DispatchRing
	class Class

	// Cumulative counters for the harness.
	writesQueued int64
	readsQueued  int64
	bytesWritten int64
	bytesRead    int64
}

// New returns a ring over the given array.
func New(arr *nvmesim.Array) *Ring {
	return &Ring{arr: arr, clock: arr.Clock(), lastDev: -1}
}

// Array returns the underlying array.
func (r *Ring) Array() *nvmesim.Array { return r.arr }

// SetCancel installs a cancellation probe consulted during blocking polls
// (typically a context.Context check). Passing nil restores indefinite
// blocking.
func (r *Ring) SetCancel(cancel func() bool) { r.cancel = cancel }

// SetLease tags all subsequent queued writes' spill allocations with the
// given lease (nil = unleased). The query's teardown frees the lease, which
// reclaims every extent the ring allocated under it.
func (r *Ring) SetLease(l *nvmesim.Lease) { r.lease = l }

// Bind routes the ring's submissions through the shared dispatcher d under
// the given default class and query fairness key. Call before the first
// Submit; a nil dispatcher leaves the ring private (requests hit the array
// directly at Submit, the pre-scheduler behavior).
func (r *Ring) Bind(d Dispatcher, class Class, query uint64) {
	if d == nil {
		return
	}
	r.dr = d.Register(query)
	r.class = class
}

// Promote re-tags a still-deferred request as demand — the caller's
// consumer now blocks on it. It is a no-op on unbound rings (their requests
// always dispatch at Submit) and on requests already dispatched. Unlike the
// rest of the Ring API, Promote is safe to call concurrently with the
// ring's owner: it only touches the dispatcher, which locks internally.
func (r *Ring) Promote(userData uint64) bool {
	if r.dr == nil {
		return false
	}
	return r.dr.Promote(userData)
}

// CancelDeferred drops the ring's not-yet-dispatched requests, returning
// how many were dropped. Teardown paths that will never poll again use it
// so abandoned requests do not occupy scheduler queues until they drain on
// their own.
func (r *Ring) CancelDeferred() int {
	if r.dr == nil {
		return 0
	}
	return r.dr.CancelDeferred()
}

// QueueWrite queues data to be written to the next writable device in the
// ring's round-robin order and returns the location it will occupy. Devices
// that have failed permanently or whose spill area is full are skipped —
// the failover half of the engine's fault tolerance: once a device dies,
// subsequent writes re-stripe across the survivors. The error of the last
// device tried is returned when no device can take the write. The ring owns
// buf until the corresponding completion is reaped.
func (r *Ring) QueueWrite(buf []byte, userData uint64) (nvmesim.Loc, error) {
	n := r.arr.Devices()
	var lastErr error
	for i := 0; i < n; i++ {
		r.lastDev = (r.lastDev + 1) % n
		if !r.arr.DeviceAlive(r.lastDev) {
			lastErr = &nvmesim.DeviceError{Device: r.lastDev, Op: "alloc", Err: nvmesim.ErrDeviceDead}
			continue
		}
		loc, err := r.QueueWriteDev(r.lastDev, buf, userData)
		if err == nil {
			return loc, nil
		}
		lastErr = err
	}
	return 0, lastErr
}

// QueueWriteDev queues a write to a specific device (used by the column
// store to stripe chunks deterministically).
func (r *Ring) QueueWriteDev(dev int, buf []byte, userData uint64) (nvmesim.Loc, error) {
	off, err := r.arr.AllocSpillLease(dev, len(buf), r.lease)
	if err != nil {
		return 0, err
	}
	loc := nvmesim.MakeLoc(dev, off, len(buf))
	r.sq = append(r.sq, sqe{op: OpWrite, dev: dev, loc: loc, buf: buf, userData: userData, class: r.class})
	r.writesQueued++
	return loc, nil
}

// QueueRead queues a read of loc into buf, which must be at least
// loc.Size() bytes minus alignment padding; the stored block length governs.
func (r *Ring) QueueRead(loc nvmesim.Loc, buf []byte, userData uint64) {
	r.sq = append(r.sq, sqe{op: OpRead, loc: loc, buf: buf, userData: userData, class: r.class})
	r.readsQueued++
}

// QueueReadClass queues a read under an explicit priority class, overriding
// the ring's default — the PartitionScheduler distinguishes demand reads
// (a consumer blocks on them) from prefetch on the same ring.
func (r *Ring) QueueReadClass(loc nvmesim.Loc, buf []byte, userData uint64, class Class) {
	r.sq = append(r.sq, sqe{op: OpRead, loc: loc, buf: buf, userData: userData, class: class})
	r.readsQueued++
}

// Submit flushes the local submission queue as one batch and returns the
// number of requests submitted. A bound ring hands the batch to the shared
// dispatcher, which may defer individual requests until their device has
// depth-target headroom; an unbound ring hits the array directly.
func (r *Ring) Submit() int {
	n := len(r.sq)
	now := r.clock.Now()
	if r.dr != nil {
		base := r.dr.Outstanding()
		reqs := make([]Request, 0, n)
		for i, e := range r.sq {
			reqs = append(reqs, Request{
				Op: e.op, Loc: e.loc, Buf: e.buf, UserData: e.userData,
				Class: e.class, Submitted: now, DepthAtSubmit: base + i + 1,
			})
		}
		r.sq = r.sq[:0]
		r.dr.Submit(reqs)
		return n
	}
	for _, e := range r.sq {
		c := cqe{Completion: Completion{
			UserData:  e.userData,
			Op:        e.op,
			Loc:       e.loc,
			Buf:       e.buf,
			Submitted: now,
		}}
		switch e.op {
		case OpWrite:
			ready, err := r.arr.Write(e.loc.Device(), e.loc.Offset(), e.buf)
			c.readyAt = ready
			c.Err = err
			c.N = len(e.buf)
			if err == nil {
				r.bytesWritten += int64(len(e.buf))
			}
		case OpRead:
			ready, nr, err := r.arr.Read(e.loc.Device(), e.loc.Offset(), e.buf)
			c.readyAt = ready
			c.Err = err
			c.N = nr
			if err == nil {
				r.bytesRead += int64(nr)
			}
		}
		if c.Err != nil {
			c.readyAt = now
		}
		c.DepthAtSubmit = len(r.inflight) + 1
		heap.Push(&r.inflight, c)
	}
	r.sq = r.sq[:0]
	return n
}

// Outstanding returns the number of submitted-but-unreaped requests.
func (r *Ring) Outstanding() int {
	if r.dr != nil {
		return r.dr.Outstanding()
	}
	return len(r.inflight)
}

// Pending returns the number of queued-but-unsubmitted requests.
func (r *Ring) Pending() int { return len(r.sq) }

// maxPollWait bounds one blocking sleep inside Poll when a cancel probe is
// installed, so cancellation is observed within one poll interval even if
// the earliest completion is far in the future (stuck device, latency
// spike).
const maxPollWait = time.Millisecond

// Poll reaps completions whose device time has passed, appending them to out
// and returning the extended slice. If block is true and at least one
// request is in flight but none is ready, Poll sleeps until the earliest
// completion instead of returning empty. With a cancel probe installed
// (SetCancel), a blocking Poll returns early — possibly empty — once the
// probe reports cancellation.
func (r *Ring) Poll(out []Completion, block bool) []Completion {
	if r.dr != nil {
		n0 := len(out)
		out = r.dr.Poll(out, block, r.cancel)
		// Byte counters move to reap time on bound rings: success is only
		// known once the dispatcher completes the request.
		for _, c := range out[n0:] {
			if c.Err != nil {
				continue
			}
			if c.Op == OpWrite {
				r.bytesWritten += int64(c.N)
			} else {
				r.bytesRead += int64(c.N)
			}
		}
		return out
	}
	for {
		now := r.clock.Now()
		got := false
		for len(r.inflight) > 0 && !r.inflight[0].readyAt.After(now) {
			c := heap.Pop(&r.inflight).(cqe)
			cc := c.Completion
			cc.Latency = c.readyAt.Sub(c.Submitted)
			out = append(out, cc)
			got = true
		}
		if got || !block || len(r.inflight) == 0 {
			return out
		}
		if r.cancel != nil && r.cancel() {
			return out
		}
		wait := r.inflight[0].readyAt.Sub(now)
		if r.cancel != nil && wait > maxPollWait {
			wait = maxPollWait
		}
		r.clock.Sleep(wait)
	}
}

// WaitAll submits any pending requests and blocks until every in-flight
// request has completed (or the cancel probe fires), returning all
// completions reaped.
func (r *Ring) WaitAll(out []Completion) []Completion {
	r.Submit()
	for r.Outstanding() > 0 {
		if r.cancel != nil && r.cancel() {
			return out
		}
		out = r.Poll(out, true)
	}
	return out
}

// Counters reports cumulative request and byte counts for the harness.
func (r *Ring) Counters() (writes, reads, bytesWritten, bytesRead int64) {
	return r.writesQueued, r.readsQueued, r.bytesWritten, r.bytesRead
}
