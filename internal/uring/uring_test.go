package uring

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"github.com/spilly-db/spilly/internal/nvmesim"
)

var spec = nvmesim.DeviceSpec{
	ReadBandwidth:  1e6,
	WriteBandwidth: 1e6,
	Latency:        time.Millisecond,
}

func newRing(devs int) (*Ring, *nvmesim.VirtualClock) {
	clk := nvmesim.NewVirtualClock(time.Unix(0, 0))
	return New(nvmesim.New(devs, spec, clk)), clk
}

func TestWriteReadRoundTrip(t *testing.T) {
	r, _ := newRing(2)
	data := bytes.Repeat([]byte{0x5a}, 2048)
	loc, err := r.QueueWrite(append([]byte(nil), data...), 1)
	if err != nil {
		t.Fatal(err)
	}
	comps := r.WaitAll(nil)
	if len(comps) != 1 || comps[0].Err != nil || comps[0].UserData != 1 {
		t.Fatalf("write completions: %+v", comps)
	}
	dst := make([]byte, 2048)
	r.QueueRead(loc, dst, 2)
	comps = r.WaitAll(nil)
	if len(comps) != 1 || comps[0].Err != nil {
		t.Fatalf("read completions: %+v", comps)
	}
	if !bytes.Equal(dst, data) {
		t.Fatal("data mismatch after round trip")
	}
}

func TestRoundRobinSpreading(t *testing.T) {
	r, _ := newRing(4)
	devs := map[int]int{}
	for i := 0; i < 8; i++ {
		loc, err := r.QueueWrite(make([]byte, 512), uint64(i))
		if err != nil {
			t.Fatal(err)
		}
		devs[loc.Device()]++
	}
	for dev := 0; dev < 4; dev++ {
		if devs[dev] != 2 {
			t.Fatalf("device %d got %d writes, want 2 (round robin)", dev, devs[dev])
		}
	}
}

func TestBatchedSubmission(t *testing.T) {
	r, _ := newRing(1)
	for i := 0; i < 5; i++ {
		if _, err := r.QueueWrite(make([]byte, 512), uint64(i)); err != nil {
			t.Fatal(err)
		}
	}
	if r.Pending() != 5 || r.Outstanding() != 0 {
		t.Fatalf("pending=%d outstanding=%d before submit", r.Pending(), r.Outstanding())
	}
	if n := r.Submit(); n != 5 {
		t.Fatalf("Submit returned %d", n)
	}
	if r.Pending() != 0 || r.Outstanding() != 5 {
		t.Fatalf("pending=%d outstanding=%d after submit", r.Pending(), r.Outstanding())
	}
}

func TestPollRespectsModelTime(t *testing.T) {
	r, clk := newRing(1)
	// 1 MB at 1 MB/s = 1 s + 1 ms latency.
	r.QueueWrite(make([]byte, 1_000_000), 7)
	r.Submit()
	if got := r.Poll(nil, false); len(got) != 0 {
		t.Fatalf("completion surfaced before model time: %+v", got)
	}
	clk.Advance(500 * time.Millisecond)
	if got := r.Poll(nil, false); len(got) != 0 {
		t.Fatal("completion surfaced halfway through transfer")
	}
	clk.Advance(501 * time.Millisecond)
	got := r.Poll(nil, false)
	if len(got) != 1 {
		t.Fatal("completion missing after model time passed")
	}
	if got[0].Latency < time.Second {
		t.Fatalf("latency %v, want >= 1s", got[0].Latency)
	}
}

func TestBlockingPollSleeps(t *testing.T) {
	r, clk := newRing(1)
	r.QueueWrite(make([]byte, 1_000_000), 1)
	r.Submit()
	start := clk.Now()
	got := r.Poll(nil, true)
	if len(got) != 1 {
		t.Fatal("blocking poll returned nothing")
	}
	if clk.Now().Sub(start) < time.Second {
		t.Fatal("blocking poll did not advance the clock to completion time")
	}
}

func TestCompletionOrderByReadyTime(t *testing.T) {
	r, _ := newRing(2)
	// Big write on dev 0 completes after small write on dev 1.
	r.QueueWriteDev(0, make([]byte, 1_000_000), 100)
	r.QueueWriteDev(1, make([]byte, 1_000), 200)
	comps := r.WaitAll(nil)
	if len(comps) != 2 {
		t.Fatalf("got %d completions", len(comps))
	}
	if comps[0].UserData != 200 || comps[1].UserData != 100 {
		t.Fatalf("completions out of ready order: %v, %v", comps[0].UserData, comps[1].UserData)
	}
}

func TestErrorSurfacesInCompletion(t *testing.T) {
	r, _ := newRing(1)
	r.Array().InjectFailures(0, 1)
	r.QueueWrite(make([]byte, 512), 9)
	comps := r.WaitAll(nil)
	if len(comps) != 1 || comps[0].Err == nil {
		t.Fatalf("injected error not surfaced: %+v", comps)
	}
	// A read of a location whose write failed must error too.
	dst := make([]byte, 512)
	r.QueueRead(comps[0].Loc, dst, 10)
	comps = r.WaitAll(nil)
	if comps[0].Err == nil {
		t.Fatal("read of failed write did not error")
	}
}

func TestBufferOwnershipReturned(t *testing.T) {
	r, _ := newRing(1)
	buf := make([]byte, 512)
	r.QueueWrite(buf, 3)
	comps := r.WaitAll(nil)
	if &comps[0].Buf[0] != &buf[0] {
		t.Fatal("completion does not return the submitted buffer")
	}
}

func TestCounters(t *testing.T) {
	r, _ := newRing(1)
	loc, _ := r.QueueWrite(make([]byte, 1024), 1)
	r.WaitAll(nil)
	r.QueueRead(loc, make([]byte, 1024), 2)
	r.WaitAll(nil)
	w, rd, bw, br := r.Counters()
	if w != 1 || rd != 1 || bw != 1024 || br != 1024 {
		t.Fatalf("counters: w=%d r=%d bw=%d br=%d", w, rd, bw, br)
	}
}

func TestManyInflight(t *testing.T) {
	r, _ := newRing(4)
	const n = 256
	for i := 0; i < n; i++ {
		if _, err := r.QueueWrite(make([]byte, 4096), uint64(i)); err != nil {
			t.Fatal(err)
		}
	}
	comps := r.WaitAll(nil)
	if len(comps) != n {
		t.Fatalf("got %d completions, want %d", len(comps), n)
	}
	seen := map[uint64]bool{}
	for _, c := range comps {
		if c.Err != nil {
			t.Fatal(c.Err)
		}
		if seen[c.UserData] {
			t.Fatalf("duplicate completion for %d", c.UserData)
		}
		seen[c.UserData] = true
	}
}

func TestQueueWriteSkipsDeadDevice(t *testing.T) {
	r, _ := newRing(3)
	r.Array().KillDevice(1)
	for i := 0; i < 6; i++ {
		loc, err := r.QueueWrite(make([]byte, 512), uint64(i))
		if err != nil {
			t.Fatal(err)
		}
		if loc.Device() == 1 {
			t.Fatal("write striped onto a dead device")
		}
	}
	comps := r.WaitAll(nil)
	for _, c := range comps {
		if c.Err != nil {
			t.Fatalf("write on live device failed: %v", c.Err)
		}
	}
}

func TestQueueWriteAllDevicesDead(t *testing.T) {
	r, _ := newRing(2)
	r.Array().KillDevice(0)
	r.Array().KillDevice(1)
	if _, err := r.QueueWrite(make([]byte, 512), 1); !nvmesim.IsDeviceDead(err) {
		t.Fatalf("want device-dead error, got %v", err)
	}
}

func TestQueueWriteAllDevicesFull(t *testing.T) {
	full := spec
	full.Capacity = 512
	clk := nvmesim.NewVirtualClock(time.Unix(0, 0))
	r := New(nvmesim.New(2, full, clk))
	for i := 0; i < 2; i++ {
		if _, err := r.QueueWrite(make([]byte, 512), uint64(i)); err != nil {
			t.Fatal(err)
		}
	}
	_, err := r.QueueWrite(make([]byte, 512), 9)
	if !errors.Is(err, nvmesim.ErrDeviceFull) {
		t.Fatalf("want ErrDeviceFull once every device is full, got %v", err)
	}
}

func TestPollCancelReturnsEarly(t *testing.T) {
	r, _ := newRing(1)
	r.QueueWrite(make([]byte, 1<<20), 1) // ~1s of modeled transfer
	r.Submit()
	r.SetCancel(func() bool { return true })
	comps := r.Poll(nil, true)
	if len(comps) != 0 {
		t.Fatalf("canceled poll reaped %d completions", len(comps))
	}
	if got := r.WaitAll(nil); len(got) != 0 {
		t.Fatalf("canceled WaitAll reaped %d completions", len(got))
	}
	r.SetCancel(nil)
	if got := r.WaitAll(nil); len(got) != 1 {
		t.Fatalf("after cancel cleared: %d completions", len(got))
	}
}
