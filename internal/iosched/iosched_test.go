package iosched_test

import (
	"sync"
	"testing"
	"time"

	"github.com/spilly-db/spilly/internal/iosched"
	"github.com/spilly-db/spilly/internal/nvmesim"
	"github.com/spilly-db/spilly/internal/uring"
)

// spec makes modeled I/O slow enough that scheduling decisions are visible
// on the virtual clock: a 4 KiB transfer occupies a channel for ~4 ms.
var spec = nvmesim.DeviceSpec{
	ReadBandwidth:  1e6,
	WriteBandwidth: 1e6,
	Latency:        time.Millisecond,
}

func newSched(devs int, cfg iosched.Config) (*iosched.Scheduler, *nvmesim.Array, *nvmesim.VirtualClock) {
	clk := nvmesim.NewVirtualClock(time.Unix(0, 0))
	arr := nvmesim.New(devs, spec, clk)
	return iosched.New(arr, cfg), arr, clk
}

// writeBlocks seeds n blocks of the given size on device 0 with a private
// (unscheduled) ring and waits for them, so read tests start from a quiet
// array.
func writeBlocks(t *testing.T, arr *nvmesim.Array, n, size int) []nvmesim.Loc {
	t.Helper()
	r := uring.New(arr)
	locs := make([]nvmesim.Loc, n)
	for i := range locs {
		loc, err := r.QueueWriteDev(0, make([]byte, size), uint64(i))
		if err != nil {
			t.Fatal(err)
		}
		locs[i] = loc
	}
	for _, c := range r.WaitAll(nil) {
		if c.Err != nil {
			t.Fatal(c.Err)
		}
	}
	return locs
}

func readyAt(c uring.Completion) time.Time { return c.Submitted.Add(c.Latency) }

// TestDemandDispatchesBeforeQueuedPrefetch: with the prefetch share cap
// holding back a deep lookahead, a newly arriving demand read must find a
// free slot immediately instead of queueing behind the prefetch backlog.
func TestDemandDispatchesBeforeQueuedPrefetch(t *testing.T) {
	sched, arr, _ := newSched(1, iosched.Config{DepthTarget: 2, PrefetchShare: 0.5})
	locs := writeBlocks(t, arr, 6, 4096)

	pre := uring.New(arr)
	pre.Bind(sched, uring.ClassPrefetch, 1)
	for i := 0; i < 5; i++ {
		pre.QueueRead(locs[i], make([]byte, 4096), uint64(100+i))
	}
	pre.Submit()
	st := sched.Stats()
	// bgCap = 2 * 0.5 = 1: one prefetch in flight, the rest deferred.
	if st.Inflight != 1 || st.Queued != 4 {
		t.Fatalf("after prefetch flood: inflight=%d queued=%d, want 1/4", st.Inflight, st.Queued)
	}

	dem := uring.New(arr)
	dem.Bind(sched, uring.ClassDemand, 2)
	dem.QueueRead(locs[5], make([]byte, 4096), 1)
	dem.Submit()
	st = sched.Stats()
	if st.Classes[uring.ClassDemand].Dispatched != 1 {
		t.Fatal("demand read deferred behind the prefetch backlog")
	}
	if st.Inflight != 2 {
		t.Fatalf("inflight=%d after demand dispatch, want 2", st.Inflight)
	}

	if comps := dem.WaitAll(nil); len(comps) != 1 || comps[0].Err != nil {
		t.Fatalf("demand completions: %+v", comps)
	}
	if comps := pre.WaitAll(nil); len(comps) != 5 {
		t.Fatalf("prefetch completions: %d, want 5", len(comps))
	}
	st = sched.Stats()
	if st.Queued != 0 || st.Inflight != 0 {
		t.Fatalf("scheduler did not drain: queued=%d inflight=%d", st.Queued, st.Inflight)
	}
	if st.Classes[uring.ClassPrefetch].Deferred != 4 {
		t.Fatalf("prefetch deferred=%d, want 4", st.Classes[uring.ClassPrefetch].Deferred)
	}
}

// TestSpillWriteBeatsBackground: on the write channel, a queued spill write
// overtakes earlier-queued background (cache demotion) writes.
func TestSpillWriteBeatsBackground(t *testing.T) {
	sched, arr, _ := newSched(1, iosched.Config{DepthTarget: 2, PrefetchShare: 0.5})

	bg := uring.New(arr)
	bg.Bind(sched, uring.ClassBackground, 0)
	for i := 0; i < 3; i++ {
		if _, err := bg.QueueWriteDev(0, make([]byte, 4096), uint64(i+1)); err != nil {
			t.Fatal(err)
		}
	}
	bg.Submit()

	sp := uring.New(arr)
	sp.Bind(sched, uring.ClassSpillWrite, 1)
	for i := 0; i < 2; i++ {
		if _, err := sp.QueueWriteDev(0, make([]byte, 4096), uint64(10+i)); err != nil {
			t.Fatal(err)
		}
	}
	sp.Submit()

	spComps := sp.WaitAll(nil)
	bgComps := bg.WaitAll(nil)
	if len(spComps) != 2 || len(bgComps) != 3 {
		t.Fatalf("completions: spill=%d bg=%d", len(spComps), len(bgComps))
	}
	// Service order must be bg1 (already in flight), spill1, spill2, bg2,
	// bg3: both spill writes finish before the second background write.
	var spLast, bgSecond time.Time
	for _, c := range spComps {
		if r := readyAt(c); r.After(spLast) {
			spLast = r
		}
	}
	times := []time.Time{readyAt(bgComps[0]), readyAt(bgComps[1]), readyAt(bgComps[2])}
	bgSecond = times[1]
	if !spLast.Before(bgSecond) {
		t.Fatalf("spill writes finished %v, after second background write %v", spLast, bgSecond)
	}
}

// TestPrefetchFloodCannotStarveDemand: a 64-deep prefetch flood from one
// query must not delay another query's demand read by more than the share
// cap's worth of in-flight requests.
func TestPrefetchFloodCannotStarveDemand(t *testing.T) {
	sched, arr, _ := newSched(1, iosched.Config{DepthTarget: 4, PrefetchShare: 0.5})
	locs := writeBlocks(t, arr, 65, 4096)

	pre := uring.New(arr)
	pre.Bind(sched, uring.ClassPrefetch, 1)
	for i := 0; i < 64; i++ {
		pre.QueueRead(locs[i], make([]byte, 4096), uint64(100+i))
	}
	pre.Submit()

	dem := uring.New(arr)
	dem.Bind(sched, uring.ClassDemand, 2)
	dem.QueueRead(locs[64], make([]byte, 4096), 1)
	dem.Submit()

	demComps := dem.WaitAll(nil)
	if len(demComps) != 1 || demComps[0].Err != nil {
		t.Fatalf("demand completions: %+v", demComps)
	}
	demReady := readyAt(demComps[0])
	served := 0
	for _, c := range pre.WaitAll(nil) {
		if !readyAt(c).After(demReady) {
			served++
		}
	}
	// bgCap = 2, so at most the two prefetches already occupying the channel
	// may finish ahead of the demand read.
	if served > 2 {
		t.Fatalf("%d prefetch reads served before the demand read, want <= 2", served)
	}
}

// TestAgingEscapesShareCap: a background request stuck behind a fully
// occupied prefetch share must still dispatch once it has aged, even though
// the cap never clears.
func TestAgingEscapesShareCap(t *testing.T) {
	sched, arr, clk := newSched(1, iosched.Config{
		DepthTarget: 4, PrefetchShare: 0.5, AgeAfter: 2 * time.Millisecond,
	})
	// Two long reads (~200 ms each) pin both prefetch-share slots.
	locs := writeBlocks(t, arr, 2, 200_000)
	small := writeBlocks(t, arr, 1, 4096)

	pre := uring.New(arr)
	pre.Bind(sched, uring.ClassPrefetch, 1)
	pre.QueueRead(locs[0], make([]byte, 200_000), 1)
	pre.QueueRead(locs[1], make([]byte, 200_000), 2)
	pre.Submit()

	bg := uring.New(arr)
	bg.Bind(sched, uring.ClassPrefetch, 2)
	bg.QueueReadClass(small[0], make([]byte, 4096), 9, uring.ClassBackground)
	bg.Submit()

	st := sched.Stats()
	if st.Inflight != 2 || st.Queued != 1 {
		t.Fatalf("before aging: inflight=%d queued=%d, want 2/1", st.Inflight, st.Queued)
	}
	// After (background - spill-write) * AgeAfter = 4 ms the request is old
	// enough to run at spill-write level, which the share cap does not bind.
	clk.Advance(5 * time.Millisecond)
	st = sched.Stats()
	if st.Classes[uring.ClassBackground].Dispatched != 1 || st.Queued != 0 {
		t.Fatalf("aged background not dispatched: %+v", st)
	}
	if st.Aged != 1 {
		t.Fatalf("aged=%d, want 1", st.Aged)
	}
}

// TestRoundRobinAcrossQueries: with one query's deep backlog already
// queued, a second query's requests are served round-robin instead of
// waiting for the first queue to empty.
func TestRoundRobinAcrossQueries(t *testing.T) {
	sched, arr, _ := newSched(1, iosched.Config{DepthTarget: 1})
	locs := writeBlocks(t, arr, 16, 4096)

	a := uring.New(arr)
	a.Bind(sched, uring.ClassPrefetch, 1)
	for i := 0; i < 8; i++ {
		a.QueueRead(locs[i], make([]byte, 4096), uint64(i+1))
	}
	a.Submit()

	b := uring.New(arr)
	b.Bind(sched, uring.ClassPrefetch, 2)
	for i := 0; i < 8; i++ {
		b.QueueRead(locs[8+i], make([]byte, 4096), uint64(i+1))
	}
	b.Submit()

	aComps := a.WaitAll(nil)
	bComps := b.WaitAll(nil)
	if len(aComps) != 8 || len(bComps) != 8 {
		t.Fatalf("completions: a=%d b=%d", len(aComps), len(bComps))
	}
	bFirst := readyAt(bComps[0])
	for _, c := range bComps[1:] {
		if r := readyAt(c); r.Before(bFirst) {
			bFirst = r
		}
	}
	aBefore := 0
	for _, c := range aComps {
		if readyAt(c).Before(bFirst) {
			aBefore++
		}
	}
	// Query A had its whole queue in first, but round-robin lets B's first
	// read in after at most the in-flight request plus one more of A's.
	if aBefore > 2 {
		t.Fatalf("%d of query A's reads served before query B's first, want <= 2", aBefore)
	}
}

// TestPromoteMovesDeferredToDemand: promoting a still-deferred prefetch
// dispatches it through the demand path; promoting an already dispatched
// request reports false.
func TestPromoteMovesDeferredToDemand(t *testing.T) {
	sched, arr, _ := newSched(1, iosched.Config{DepthTarget: 2, PrefetchShare: 0.5})
	locs := writeBlocks(t, arr, 3, 4096)

	r := uring.New(arr)
	r.Bind(sched, uring.ClassPrefetch, 1)
	for i := 0; i < 3; i++ {
		r.QueueRead(locs[i], make([]byte, 4096), uint64(100+i))
	}
	r.Submit() // ud 100 dispatches (share cap 1), 101 and 102 defer

	if !r.Promote(101) {
		t.Fatal("Promote(101) = false for a deferred request")
	}
	st := sched.Stats()
	if st.Promoted != 1 || st.Inflight != 2 || st.Queued != 1 {
		t.Fatalf("after promote: %+v", st)
	}
	if r.Promote(100) {
		t.Fatal("Promote(100) = true for an already dispatched request")
	}
	if comps := r.WaitAll(nil); len(comps) != 3 {
		t.Fatalf("completions: %d, want 3", len(comps))
	}
}

// TestCancelDeferredDropsQueued: cancelling drops only the deferred
// requests; dispatched ones still complete, and the scheduler drains.
func TestCancelDeferredDropsQueued(t *testing.T) {
	sched, arr, _ := newSched(1, iosched.Config{DepthTarget: 2, PrefetchShare: 0.5})
	locs := writeBlocks(t, arr, 3, 4096)

	r := uring.New(arr)
	r.Bind(sched, uring.ClassPrefetch, 1)
	for i := 0; i < 3; i++ {
		r.QueueRead(locs[i], make([]byte, 4096), uint64(100+i))
	}
	r.Submit()
	if n := r.CancelDeferred(); n != 2 {
		t.Fatalf("CancelDeferred dropped %d, want 2", n)
	}
	if n := r.Outstanding(); n != 1 {
		t.Fatalf("outstanding=%d after cancel, want 1", n)
	}
	if comps := r.WaitAll(nil); len(comps) != 1 || comps[0].UserData != 100 {
		t.Fatalf("completions after cancel: %+v", comps)
	}
	st := sched.Stats()
	if st.Queued != 0 || st.Inflight != 0 {
		t.Fatalf("scheduler did not drain: queued=%d inflight=%d", st.Queued, st.Inflight)
	}
}

// TestLatencyIncludesQueueingDelay: a deferred request's completion latency
// spans ring submission to completion, not dispatch to completion, so cost
// trackers observe scheduling delay.
func TestLatencyIncludesQueueingDelay(t *testing.T) {
	sched, arr, _ := newSched(1, iosched.Config{DepthTarget: 1})
	locs := writeBlocks(t, arr, 4, 4096)

	r := uring.New(arr)
	r.Bind(sched, uring.ClassPrefetch, 1)
	for i := 0; i < 4; i++ {
		r.QueueRead(locs[i], make([]byte, 4096), uint64(i+1))
	}
	r.Submit()
	comps := r.WaitAll(nil)
	if len(comps) != 4 {
		t.Fatalf("completions: %d", len(comps))
	}
	var min, max time.Duration
	for _, c := range comps {
		if min == 0 || c.Latency < min {
			min = c.Latency
		}
		if c.Latency > max {
			max = c.Latency
		}
	}
	// Depth target 1 serializes the channel: the last read waits behind
	// three full transfers, so its latency must dwarf the first one's.
	if max < 3*min {
		t.Fatalf("latencies do not reflect queueing delay: min=%v max=%v", min, max)
	}
}

// TestConcurrentMixedClasses exercises the shared scheduler from eight
// goroutines across all four classes under -race.
func TestConcurrentMixedClasses(t *testing.T) {
	clk := nvmesim.NewVirtualClock(time.Unix(0, 0))
	fast := nvmesim.DeviceSpec{ReadBandwidth: 1e9, WriteBandwidth: 1e9, Latency: time.Microsecond}
	arr := nvmesim.New(4, fast, clk)
	sched := iosched.New(arr, iosched.Config{})
	locs := writeBlocks(t, arr, 32, 4096)

	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			ring := uring.New(arr)
			ring.Bind(sched, uring.Class(g%4), uint64(g))
			for i := 0; i < 25; i++ {
				if g%2 == 0 {
					ring.QueueRead(locs[(g*25+i)%len(locs)], make([]byte, 4096), uint64(i+1))
				} else if _, err := ring.QueueWriteDev(g%4, make([]byte, 2048), uint64(i+1)); err != nil {
					errs <- err
					return
				}
				for _, c := range ring.WaitAll(nil) {
					if c.Err != nil {
						errs <- c.Err
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	st := sched.Stats()
	if st.Queued != 0 || st.Inflight != 0 {
		t.Fatalf("scheduler did not drain: queued=%d inflight=%d", st.Queued, st.Inflight)
	}
	var total int64
	for _, c := range st.Classes {
		total += c.Dispatched
	}
	if total != 200 {
		t.Fatalf("dispatched %d requests, want 200", total)
	}
}
