// Package iosched is the engine-wide prioritized NVMe I/O scheduler: one
// shared dispatch layer per array that every ring submits through (paper
// §5.1–§5.2). With concurrent queries, dozens of private rings would
// otherwise stack requests onto the same per-device backlogs — a demand
// read that has a worker stalled waits behind another query's deep
// prefetch, and nothing bounds per-device queue depth. The scheduler
// restores the paper's "deep enough to saturate, shallow enough for
// latency" property across queries:
//
//   - Every request carries a priority class (demand read > spill write >
//     prefetch read > background) and a query fairness key.
//   - Each device channel (read / write) has an in-flight depth target.
//     Requests dispatch while the channel is below target and otherwise
//     defer in per-class queues. The target bounds the modeled backlog a
//     newly arriving demand read can be stuck behind: backlog ≈ target ×
//     avg request size / channel bandwidth.
//   - Prefetch and background together never hold more than a configured
//     share of the target, so latency-critical classes always find
//     headroom — the demand-read fast path.
//   - Within a class, queries take turns round-robin, so one query's
//     flood cannot monopolize a device against its neighbors.
//   - Deferred requests age: waiting AgeAfter promotes a request one
//     class per interval (and an aged prefetch escapes the share cap), so
//     no class starves under sustained higher-priority load.
//
// The scheduler is cooperative, like the simulated array it drives: device
// time passes on the model clock, and any ring's Submit or Poll advances
// shared state — expiring in-flight requests whose device time has passed
// and dispatching deferred ones into the freed slots. A blocking Poll
// sleeps until the earliest in-flight completion anywhere on the array, so
// a ring whose requests are deferred behind another ring's I/O still makes
// progress without that ring polling.
package iosched

import (
	"container/heap"
	"sync"
	"time"

	"github.com/spilly-db/spilly/internal/nvmesim"
	"github.com/spilly-db/spilly/internal/uring"
)

// Defaults. The depth target derives from the backlog model: on the scaled
// CM7-R profile a 64 KiB spill block occupies a device's write channel for
// ~1 ms (64 KiB / 62 MB/s) and its read channel for ~0.6 ms, so 8 requests
// keep a channel saturated while bounding the queueing delay in front of a
// newly arriving demand read to single-digit milliseconds.
const (
	DefaultDepthTarget   = 8
	DefaultPrefetchShare = 0.5
	DefaultAgeAfter      = 2 * time.Millisecond
)

// maxPollWait mirrors uring's bound on one blocking sleep when a cancel
// probe is installed, so cancellation is observed promptly.
const maxPollWait = time.Millisecond

// Config tunes one scheduler.
type Config struct {
	// DepthTarget is the per-device per-channel in-flight target
	// (<= 0 selects DefaultDepthTarget).
	DepthTarget int
	// PrefetchShare is the fraction of the depth target that prefetch and
	// background requests may hold together (<= 0 selects
	// DefaultPrefetchShare; always at least one slot). Aged requests
	// escape the cap.
	PrefetchShare float64
	// AgeAfter promotes a deferred request one priority class per
	// interval waited (<= 0 selects DefaultAgeAfter).
	AgeAfter time.Duration
}

func (c Config) withDefaults() Config {
	if c.DepthTarget <= 0 {
		c.DepthTarget = DefaultDepthTarget
	}
	if c.PrefetchShare <= 0 {
		c.PrefetchShare = DefaultPrefetchShare
	}
	if c.AgeAfter <= 0 {
		c.AgeAfter = DefaultAgeAfter
	}
	return c
}

// ioReq is one deferred (queued) request.
type ioReq struct {
	ring      *ringDisp
	op        uring.Op
	loc       nvmesim.Loc
	buf       []byte
	ud        uint64
	class     uring.Class
	query     uint64
	submitted time.Time
	depthAt   int
	enqueued  time.Time
	pass      uint64 // dispatch pass this request could first be issued in
}

// doneEntry is a completed request waiting for its modeled device time to
// pass before the owning ring may reap it.
type doneEntry struct {
	c       uring.Completion
	readyAt time.Time
}

type doneHeap []doneEntry

func (h doneHeap) Len() int            { return len(h) }
func (h doneHeap) Less(i, j int) bool  { return h[i].readyAt.Before(h[j].readyAt) }
func (h doneHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *doneHeap) Push(x interface{}) { *h = append(*h, x.(doneEntry)) }
func (h *doneHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// event is one dispatched request occupying a channel slot until readyAt.
type event struct {
	readyAt time.Time
	dev     int
	ch      int // 0 = write, 1 = read (uring.Op values)
	bg      bool
}

type eventHeap []event

func (h eventHeap) Len() int            { return len(h) }
func (h eventHeap) Less(i, j int) bool  { return h[i].readyAt.Before(h[j].readyAt) }
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// classQueue holds one channel's deferred requests of one class, as
// per-query FIFOs served round-robin.
type classQueue struct {
	fifos map[uint64][]*ioReq
	order []uint64 // rotation of queries with queued requests
	n     int
}

func (q *classQueue) push(rq *ioReq) {
	if q.fifos == nil {
		q.fifos = make(map[uint64][]*ioReq)
	}
	f, ok := q.fifos[rq.query]
	if !ok {
		q.order = append(q.order, rq.query)
	}
	q.fifos[rq.query] = append(f, rq)
	q.n++
}

// pick pops the next request round-robin across queries, but only one old
// enough to run at effective class eff (orig is the queue's tagged class;
// per-query FIFOs keep heads oldest-first, so checking heads suffices).
func (q *classQueue) pick(eff, orig uring.Class, now time.Time, ageAfter time.Duration) *ioReq {
	for i := 0; i < len(q.order); i++ {
		qid := q.order[0]
		f := q.fifos[qid]
		rq := f[0]
		if orig > eff && now.Sub(rq.enqueued) < time.Duration(orig-eff)*ageAfter {
			q.order = append(q.order[1:], qid)
			continue
		}
		if f = f[1:]; len(f) == 0 {
			delete(q.fifos, qid)
			q.order = q.order[1:]
		} else {
			q.fifos[qid] = f
			q.order = append(q.order[1:], qid)
		}
		q.n--
		return rq
	}
	return nil
}

// remove deletes a specific deferred request (promotion, cancellation).
func (q *classQueue) remove(rq *ioReq) bool {
	f, ok := q.fifos[rq.query]
	if !ok {
		return false
	}
	for i, x := range f {
		if x != rq {
			continue
		}
		f = append(f[:i], f[i+1:]...)
		if len(f) == 0 {
			delete(q.fifos, rq.query)
			for j, id := range q.order {
				if id == rq.query {
					q.order = append(q.order[:j], q.order[j+1:]...)
					break
				}
			}
		} else {
			q.fifos[rq.query] = f
		}
		q.n--
		return true
	}
	return false
}

// chanState is one device channel's dispatch state.
type chanState struct {
	inflight   int // dispatched requests whose device time has not passed
	bgInflight int // of those, prefetch/background (share-capped)
	queues     [uring.NumClasses]classQueue
	queued     int
}

type devState struct {
	ch [2]chanState // indexed by uring.Op: 0 = write, 1 = read
}

// Scheduler is the shared dispatcher for one array. It implements
// uring.Dispatcher; rings bind to it with uring.Ring.Bind.
type Scheduler struct {
	arr   *nvmesim.Array
	clock nvmesim.Clock
	cfg   Config

	mu     sync.Mutex
	devs   []devState
	events eventHeap
	pass   uint64

	// Counters (guarded by mu; snapshot via Stats).
	dispatchedC [uring.NumClasses]int64
	deferredC   [uring.NumClasses]int64
	promotedN   int64
	agedN       int64
}

// New returns a scheduler over the given array.
func New(arr *nvmesim.Array, cfg Config) *Scheduler {
	return &Scheduler{
		arr:   arr,
		clock: arr.Clock(),
		cfg:   cfg.withDefaults(),
		devs:  make([]devState, arr.Devices()),
	}
}

// Array returns the array this scheduler dispatches to.
func (s *Scheduler) Array() *nvmesim.Array { return s.arr }

// bgCap is the share-capped number of prefetch+background slots per
// channel: at least one (so an idle channel always accepts them), and at
// most target-1 (so demand always has a reserved slot when target > 1).
func (s *Scheduler) bgCap() int {
	cap := int(float64(s.cfg.DepthTarget) * s.cfg.PrefetchShare)
	if cap < 1 {
		cap = 1
	}
	if s.cfg.DepthTarget > 1 && cap > s.cfg.DepthTarget-1 {
		cap = s.cfg.DepthTarget - 1
	}
	return cap
}

// Register implements uring.Dispatcher.
func (s *Scheduler) Register(query uint64) uring.DispatchRing {
	return &ringDisp{s: s, query: query, deferred: make(map[uint64]*ioReq)}
}

// advanceLocked moves shared state to now: expire in-flight requests whose
// device time has passed, then dispatch deferred requests into freed slots.
func (s *Scheduler) advanceLocked(now time.Time) {
	for len(s.events) > 0 && !s.events[0].readyAt.After(now) {
		e := heap.Pop(&s.events).(event)
		c := &s.devs[e.dev].ch[e.ch]
		c.inflight--
		if e.bg {
			c.bgInflight--
		}
	}
	s.dispatchLocked(now)
}

// dispatchLocked issues deferred requests while channels have headroom.
func (s *Scheduler) dispatchLocked(now time.Time) {
	s.pass++
	for di := range s.devs {
		for chIdx := 0; chIdx < 2; chIdx++ {
			c := &s.devs[di].ch[chIdx]
			for c.queued > 0 && c.inflight < s.cfg.DepthTarget {
				rq, eff := s.pickLocked(c, now)
				if rq == nil {
					break
				}
				c.queued--
				s.issueLocked(c, rq, eff, now)
			}
		}
	}
}

// pickLocked selects the next request for a channel: classes in priority
// order, each level also admitting lower-class requests that aged up to
// it; prefetch/background levels respect the share cap (aged requests were
// admitted at a better level above, which is how they escape it).
func (s *Scheduler) pickLocked(c *chanState, now time.Time) (*ioReq, uring.Class) {
	for eff := uring.Class(0); eff < uring.NumClasses; eff++ {
		if eff >= uring.ClassPrefetch && c.bgInflight >= s.bgCap() {
			return nil, 0
		}
		for orig := eff; orig < uring.NumClasses; orig++ {
			q := &c.queues[orig]
			if q.n == 0 {
				continue
			}
			if rq := q.pick(eff, orig, now, s.cfg.AgeAfter); rq != nil {
				return rq, eff
			}
		}
	}
	return nil, 0
}

// issueLocked hands one request to the array and records its completion
// and channel occupancy. Latency spans ring submission to modeled
// completion, so deferral time is part of the observed I/O cost.
func (s *Scheduler) issueLocked(c *chanState, rq *ioReq, eff uring.Class, now time.Time) {
	delete(rq.ring.deferred, rq.ud)
	comp := uring.Completion{
		UserData: rq.ud, Op: rq.op, Loc: rq.loc, Buf: rq.buf,
		Submitted: rq.submitted, DepthAtSubmit: rq.depthAt,
	}
	var readyAt time.Time
	if rq.op == uring.OpWrite {
		readyAt, comp.Err = s.arr.Write(rq.loc.Device(), rq.loc.Offset(), rq.buf)
		comp.N = len(rq.buf)
	} else {
		readyAt, comp.N, comp.Err = s.arr.Read(rq.loc.Device(), rq.loc.Offset(), rq.buf)
	}
	if comp.Err != nil || readyAt.Before(now) {
		readyAt = now
	}
	comp.Latency = readyAt.Sub(rq.submitted)
	s.dispatchedC[rq.class]++
	if s.pass > rq.pass {
		s.deferredC[rq.class]++
	}
	if eff != rq.class {
		s.agedN++
	}
	heap.Push(&rq.ring.done, doneEntry{c: comp, readyAt: readyAt})
	if comp.Err == nil && readyAt.After(now) {
		bg := eff >= uring.ClassPrefetch
		c.inflight++
		if bg {
			c.bgInflight++
		}
		heap.Push(&s.events, event{readyAt: readyAt, dev: rq.loc.Device(), ch: int(rq.op), bg: bg})
	}
}

// ringDisp is the scheduler-side state of one bound ring; it implements
// uring.DispatchRing. All fields are guarded by s.mu.
type ringDisp struct {
	s           *Scheduler
	query       uint64
	outstanding int
	done        doneHeap
	deferred    map[uint64]*ioReq
}

// Submit implements uring.DispatchRing.
func (rd *ringDisp) Submit(reqs []uring.Request) {
	s := rd.s
	s.mu.Lock()
	now := s.clock.Now()
	for i := range reqs {
		r := &reqs[i]
		rq := &ioReq{
			ring: rd, op: r.Op, loc: r.Loc, buf: r.Buf, ud: r.UserData,
			class: r.Class, query: rd.query, submitted: r.Submitted,
			depthAt: r.DepthAtSubmit, enqueued: now, pass: s.pass + 1,
		}
		rd.outstanding++
		rd.deferred[rq.ud] = rq
		c := &s.devs[rq.loc.Device()].ch[int(rq.op)]
		c.queues[rq.class].push(rq)
		c.queued++
	}
	s.advanceLocked(now)
	s.mu.Unlock()
}

// Poll implements uring.DispatchRing. A blocking Poll drives the shared
// dispatch loop while it waits: it sleeps until the earliest in-flight
// completion anywhere on the array, so deferred requests dispatch even
// when the rings holding the device slots never poll again.
func (rd *ringDisp) Poll(out []uring.Completion, block bool, cancel func() bool) []uring.Completion {
	s := rd.s
	s.mu.Lock()
	for {
		now := s.clock.Now()
		s.advanceLocked(now)
		got := false
		for len(rd.done) > 0 && !rd.done[0].readyAt.After(now) {
			e := heap.Pop(&rd.done).(doneEntry)
			out = append(out, e.c)
			rd.outstanding--
			got = true
		}
		if got || !block || rd.outstanding == 0 {
			s.mu.Unlock()
			return out
		}
		if cancel != nil && cancel() {
			s.mu.Unlock()
			return out
		}
		wait := maxPollWait
		if len(s.events) > 0 {
			wait = s.events[0].readyAt.Sub(now)
		}
		if len(rd.done) > 0 {
			if w := rd.done[0].readyAt.Sub(now); w < wait {
				wait = w
			}
		}
		if wait <= 0 {
			wait = 10 * time.Microsecond
		}
		if cancel != nil && wait > maxPollWait {
			wait = maxPollWait
		}
		s.mu.Unlock()
		s.clock.Sleep(wait)
		s.mu.Lock()
	}
}

// Outstanding implements uring.DispatchRing.
func (rd *ringDisp) Outstanding() int {
	rd.s.mu.Lock()
	n := rd.outstanding
	rd.s.mu.Unlock()
	return n
}

// Promote implements uring.DispatchRing: a still-deferred request moves to
// the demand class (and dispatches immediately if its channel has room).
func (rd *ringDisp) Promote(ud uint64) bool {
	s := rd.s
	s.mu.Lock()
	defer s.mu.Unlock()
	rq, ok := rd.deferred[ud]
	if !ok {
		return false
	}
	if rq.class == uring.ClassDemand {
		return true
	}
	c := &s.devs[rq.loc.Device()].ch[int(rq.op)]
	if !c.queues[rq.class].remove(rq) {
		return false
	}
	rq.class = uring.ClassDemand
	c.queues[uring.ClassDemand].push(rq)
	s.promotedN++
	s.advanceLocked(s.clock.Now())
	return true
}

// CancelDeferred implements uring.DispatchRing.
func (rd *ringDisp) CancelDeferred() int {
	s := rd.s
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for ud, rq := range rd.deferred {
		c := &s.devs[rq.loc.Device()].ch[int(rq.op)]
		if c.queues[rq.class].remove(rq) {
			c.queued--
			rd.outstanding--
			n++
		}
		delete(rd.deferred, ud)
	}
	return n
}

// ClassCounters are one class's cumulative dispatch counters.
type ClassCounters struct {
	Dispatched int64 // requests issued to the array
	Deferred   int64 // of those, requests that waited at least one pass
}

// Stats is a point-in-time scheduler snapshot.
type Stats struct {
	Classes  [uring.NumClasses]ClassCounters
	Promoted int64 // explicit prefetch→demand promotions (Ring.Promote)
	Aged     int64 // requests dispatched above their tagged class by aging
	Queued   int64 // currently deferred
	Inflight int64 // dispatched, modeled device time not yet passed
}

// Stats returns cumulative counters and current queue gauges.
func (s *Scheduler) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.advanceLocked(s.clock.Now())
	var st Stats
	for i := 0; i < uring.NumClasses; i++ {
		st.Classes[i] = ClassCounters{Dispatched: s.dispatchedC[i], Deferred: s.deferredC[i]}
	}
	st.Promoted = s.promotedN
	st.Aged = s.agedN
	for di := range s.devs {
		for chIdx := 0; chIdx < 2; chIdx++ {
			c := &s.devs[di].ch[chIdx]
			st.Queued += int64(c.queued)
			st.Inflight += int64(c.inflight)
		}
	}
	return st
}

// DeviceStats is one device's scheduler view: in-flight and deferred
// request counts per channel plus the array's modeled channel backlogs.
type DeviceStats struct {
	Device       int
	ReadDepth    int
	WriteDepth   int
	ReadQueued   int
	WriteQueued  int
	ReadBacklog  time.Duration
	WriteBacklog time.Duration
}

// PerDevice returns per-device depth and backlog gauges for /metrics.
func (s *Scheduler) PerDevice() []DeviceStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.advanceLocked(s.clock.Now())
	out := make([]DeviceStats, len(s.devs))
	for di := range s.devs {
		d := &s.devs[di]
		rb, wb := s.arr.ChannelBacklogs(di)
		out[di] = DeviceStats{
			Device:       di,
			WriteDepth:   d.ch[uring.OpWrite].inflight,
			ReadDepth:    d.ch[uring.OpRead].inflight,
			WriteQueued:  d.ch[uring.OpWrite].queued,
			ReadQueued:   d.ch[uring.OpRead].queued,
			ReadBacklog:  rb,
			WriteBacklog: wb,
		}
	}
	return out
}
