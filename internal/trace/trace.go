// Package trace is the engine's per-query observability subsystem: every
// operator (scan, join, agg, sort, window, external sort) opens a Span on
// the query's Tracer and feeds it wall time, row/byte flow, spill volume,
// compression-scheme choices, and regulator level transitions. The paper's
// whole evaluation is engine introspection — the §4.4 cycles/byte currency,
// Figure 8's utilization traces, Figure 11's spill histograms — and spans
// are the per-operator refinement of those same counters.
//
// Cost model: a nil Tracer (the default) costs one pointer comparison per
// operator per query — the hot per-tuple paths never see the tracer at all.
// With tracing on, workers accumulate into plain per-worker span buffers
// and merge into the span's shared atomics every few batches and at stream
// end, so the steady-state cost is two clock reads per batch (~1024 rows).
package trace

import (
	"sync"
	"sync/atomic"
	"time"
)

// Span records one operator's execution within a query: identity (operator
// kind, an optional label such as the scanned table), tree position, wall
// time, and flow counters. All counter methods are nil-safe so operators
// can call them unconditionally after a single tracer check at Run time.
type Span struct {
	// ID is the span's index in the tracer's span list; ParentID is the
	// enclosing operator's ID, -1 for the plan root.
	ID       int
	ParentID int
	// Op is the operator kind ("scan", "join", "agg", ...); Label carries
	// operator detail (table name, join kind, group-by columns).
	Op    string
	Label string

	tracer  *Tracer
	startNs int64        // offset from tracer start
	endNs   atomic.Int64 // last observed activity, offset from tracer start

	// busyNs accumulates worker-time spent inside this operator and
	// nowhere else: stream wrappers subtract nested child-stream time and
	// blocking phases subtract every charge descendants made during the
	// phase window (see the tracer's charged counter), so busy is
	// exclusive at the source and self time is simply busy / workers.
	busyNs atomic.Int64

	rowsOut    atomic.Int64
	batchesOut atomic.Int64

	// Materialization and spill counters (operators with an Umami phase).
	tuplesStored   atomic.Int64
	spilledBytes   atomic.Int64 // raw page bytes handed to the spill path
	writtenBytes   atomic.Int64 // post-compression bytes written to the array
	spillReadBytes atomic.Int64
	spillRetries   atomic.Int64
	spillFailovers atomic.Int64
	partitioned    atomic.Bool
	spilled        atomic.Bool

	// Phase-2 overlap telemetry: worker wall time stalled inside spill
	// readback (exclusive — stall is measured at the cursor, not derived
	// from busy time) and partitions whose readback was already in flight
	// when this operator opened them.
	spillStallNs    atomic.Int64
	prefetchedParts atomic.Int64

	// Scan-side stall telemetry: worker wall time spent blocked inside a
	// table scan waiting for group reads the prefetch window had not
	// finished yet (measured at the colstore reader).
	scanStallNs atomic.Int64

	// Spill integrity telemetry (checksummed frames + parity stripes):
	// frames whose checksums verified on readback, blocks that failed
	// verification, and blocks rebuilt from their parity stripe.
	spillVerified     atomic.Int64
	spillChecksumErrs atomic.Int64
	spillReconstructs atomic.Int64

	// Self-regulating compression telemetry (§4.4): how often the
	// regulator moved along the unified scale and how far up it got.
	regLevelChanges atomic.Int64
	regMaxLevel     atomic.Int64

	schemesMu sync.Mutex
	schemes   map[string]int64 // spilled pages per compression scheme
}

// Tracer collects the spans of one query execution. Create one per traced
// query and attach it to the execution context; a nil *Tracer disables
// tracing with near-zero overhead.
type Tracer struct {
	t0      time.Time
	workers int

	// charged totals every busy charge made to any span. Blocking phases
	// snapshot it at phase start and subtract the delta from workers×wall
	// at phase end, so time already attributed to descendants (stream
	// pulls, nested build phases) is not charged twice.
	charged atomic.Int64

	mu    sync.Mutex
	spans []*Span
	stack []*Span // Run()-time parent scope stack
}

// New returns a tracer for a query running with the given worker count
// (used to normalize summed worker-time back into wall time).
func New(workers int) *Tracer {
	if workers < 1 {
		workers = 1
	}
	return &Tracer{t0: time.Now(), workers: workers}
}

// Workers returns the worker count the tracer normalizes against.
func (t *Tracer) Workers() int {
	if t == nil {
		return 1
	}
	return t.workers
}

// Start opens a span as a child of the current scope and makes it the
// current scope. Operators call it at the top of Run and close the scope
// with EndScope once their Run body (including child Run calls) returns.
// Nil-safe: a nil tracer returns a nil span.
func (t *Tracer) Start(op, label string) *Span {
	if t == nil {
		return nil
	}
	s := &Span{Op: op, Label: label, tracer: t, startNs: int64(time.Since(t.t0))}
	t.mu.Lock()
	s.ID = len(t.spans)
	s.ParentID = -1
	if n := len(t.stack); n > 0 {
		s.ParentID = t.stack[n-1].ID
	}
	t.spans = append(t.spans, s)
	t.stack = append(t.stack, s)
	t.mu.Unlock()
	return s
}

// EndScope pops s off the scope stack. It does not close the span — the
// span keeps accumulating counters until its stream is drained; EndScope
// only determines parentage of spans started later.
func (t *Tracer) EndScope(s *Span) {
	if t == nil || s == nil {
		return
	}
	t.mu.Lock()
	for n := len(t.stack); n > 0; n = len(t.stack) {
		top := t.stack[n-1]
		t.stack = t.stack[:n-1]
		if top == s {
			break
		}
	}
	t.mu.Unlock()
}

// Spans returns the spans recorded so far, in creation order. The slice is
// a copy; the spans themselves are live and may still accumulate.
func (t *Tracer) Spans() []*Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]*Span(nil), t.spans...)
}

// touch advances the span's last-activity watermark.
func (s *Span) touch() {
	now := int64(time.Since(s.tracer.t0))
	for {
		cur := s.endNs.Load()
		if cur >= now || s.endNs.CompareAndSwap(cur, now) {
			return
		}
	}
}

// AddBusy records d of worker-time spent inside this operator, exclusive
// of time already charged to other spans (stream wrappers and blocking
// phases compute the exclusive share before calling).
func (s *Span) AddBusy(d time.Duration) {
	if s == nil || d <= 0 {
		return
	}
	s.busyNs.Add(int64(d))
	s.tracer.charged.Add(int64(d))
	s.touch()
}

// Charged returns the total busy time charged to all spans so far. Blocking
// phases snapshot it before and after to compute their exclusive share.
func (t *Tracer) Charged() time.Duration {
	if t == nil {
		return 0
	}
	return time.Duration(t.charged.Load())
}

// AddRows records rows and batches emitted by this operator.
func (s *Span) AddRows(rows, batches int64) {
	if s == nil {
		return
	}
	s.rowsOut.Add(rows)
	s.batchesOut.Add(batches)
}

// AddMaterialized records tuples stored through the operator's Umami phase.
func (s *Span) AddMaterialized(tuples int64) {
	if s == nil {
		return
	}
	s.tuplesStored.Add(tuples)
}

// AddSpill records spill-write volume: raw page bytes handed to the spill
// path and post-compression bytes written to the array.
func (s *Span) AddSpill(rawBytes, writtenBytes, retries, failovers int64) {
	if s == nil {
		return
	}
	s.spilledBytes.Add(rawBytes)
	s.writtenBytes.Add(writtenBytes)
	s.spillRetries.Add(retries)
	s.spillFailovers.Add(failovers)
	if rawBytes > 0 {
		s.spilled.Store(true)
	}
}

// AddSpillRead records bytes read back from the spill array (and transient
// read errors recovered by retry).
func (s *Span) AddSpillRead(bytes, retries int64) {
	if s == nil {
		return
	}
	s.spillReadBytes.Add(bytes)
	s.spillRetries.Add(retries)
}

// AddSpillStall records spill-readback stall time (worker wall time spent
// waiting inside cursor Next calls) and partitions found prefetched at open.
func (s *Span) AddSpillStall(stallNs, prefetched int64) {
	if s == nil {
		return
	}
	s.spillStallNs.Add(stallNs)
	s.prefetchedParts.Add(prefetched)
}

// AddScanStall records table-scan stall time: worker wall time spent
// blocked inside reader Next calls waiting on group reads.
func (s *Span) AddScanStall(stallNs int64) {
	if s == nil {
		return
	}
	s.scanStallNs.Add(stallNs)
}

// AddSpillIntegrity records readback integrity work: frames verified,
// blocks that failed verification, and blocks rebuilt from parity.
func (s *Span) AddSpillIntegrity(verified, checksumErrs, reconstructions int64) {
	if s == nil {
		return
	}
	s.spillVerified.Add(verified)
	s.spillChecksumErrs.Add(checksumErrs)
	s.spillReconstructs.Add(reconstructions)
}

// SetPartitioned marks that the operator enabled partitioning.
func (s *Span) SetPartitioned() {
	if s == nil {
		return
	}
	s.partitioned.Store(true)
}

// AddRegulator records self-regulating compression activity: scheme
// transitions and the highest level reached on the unified scale.
func (s *Span) AddRegulator(levelChanges int64, maxLevel int) {
	if s == nil {
		return
	}
	s.regLevelChanges.Add(levelChanges)
	for {
		cur := s.regMaxLevel.Load()
		if int64(maxLevel) <= cur || s.regMaxLevel.CompareAndSwap(cur, int64(maxLevel)) {
			break
		}
	}
}

// AddSchemes merges a spilled-pages-per-scheme histogram into the span.
func (s *Span) AddSchemes(h map[string]int64) {
	if s == nil || len(h) == 0 {
		return
	}
	s.schemesMu.Lock()
	if s.schemes == nil {
		s.schemes = make(map[string]int64, len(h))
	}
	for k, v := range h {
		s.schemes[k] += v
	}
	s.schemesMu.Unlock()
}

// SpanSnapshot is a plain-struct copy of a span's state, safe to serialize
// (the live Span holds atomics and a mutex).
type SpanSnapshot struct {
	ID       int    `json:"id"`
	ParentID int    `json:"parent"`
	Op       string `json:"op"`
	Label    string `json:"label,omitempty"`

	Start time.Duration `json:"start_ns"` // offset from query start
	End   time.Duration `json:"end_ns"`   // last observed activity
	Busy  time.Duration `json:"busy_ns"`  // summed worker-time

	RowsOut    int64 `json:"rows_out"`
	BatchesOut int64 `json:"batches_out"`

	TuplesStored   int64 `json:"tuples_stored,omitempty"`
	SpilledBytes   int64 `json:"spilled_bytes,omitempty"`
	WrittenBytes   int64 `json:"written_bytes,omitempty"`
	SpillReadBytes int64 `json:"spill_read_bytes,omitempty"`
	SpillRetries   int64 `json:"spill_retries,omitempty"`
	SpillFailovers int64 `json:"spill_failovers,omitempty"`
	Partitioned    bool  `json:"partitioned,omitempty"`
	Spilled        bool  `json:"spilled,omitempty"`

	SpillStallNs    time.Duration `json:"spill_stall_ns,omitempty"`
	PrefetchedParts int64         `json:"prefetched_partitions,omitempty"`
	ScanStallNs     time.Duration `json:"scan_stall_ns,omitempty"`

	SpillVerified     int64 `json:"spill_pages_verified,omitempty"`
	SpillChecksumErrs int64 `json:"spill_checksum_errors,omitempty"`
	SpillReconstructs int64 `json:"spill_reconstructions,omitempty"`

	RegLevelChanges int64            `json:"reg_level_changes,omitempty"`
	RegMaxLevel     int64            `json:"reg_max_level,omitempty"`
	Schemes         map[string]int64 `json:"schemes,omitempty"`
}

// Snapshot copies the span's current state.
func (s *Span) Snapshot() SpanSnapshot {
	snap := SpanSnapshot{
		ID:              s.ID,
		ParentID:        s.ParentID,
		Op:              s.Op,
		Label:           s.Label,
		Start:           time.Duration(s.startNs),
		End:             time.Duration(s.endNs.Load()),
		Busy:            time.Duration(s.busyNs.Load()),
		RowsOut:         s.rowsOut.Load(),
		BatchesOut:      s.batchesOut.Load(),
		TuplesStored:    s.tuplesStored.Load(),
		SpilledBytes:    s.spilledBytes.Load(),
		WrittenBytes:    s.writtenBytes.Load(),
		SpillReadBytes:  s.spillReadBytes.Load(),
		SpillRetries:    s.spillRetries.Load(),
		SpillFailovers:  s.spillFailovers.Load(),
		Partitioned:     s.partitioned.Load(),
		Spilled:         s.spilled.Load(),
		SpillStallNs:    time.Duration(s.spillStallNs.Load()),
		PrefetchedParts: s.prefetchedParts.Load(),
		ScanStallNs:     time.Duration(s.scanStallNs.Load()),
		SpillVerified:     s.spillVerified.Load(),
		SpillChecksumErrs: s.spillChecksumErrs.Load(),
		SpillReconstructs: s.spillReconstructs.Load(),
		RegLevelChanges: s.regLevelChanges.Load(),
		RegMaxLevel:     s.regMaxLevel.Load(),
	}
	s.schemesMu.Lock()
	if len(s.schemes) > 0 {
		snap.Schemes = make(map[string]int64, len(s.schemes))
		for k, v := range s.schemes {
			snap.Schemes[k] += v
		}
	}
	s.schemesMu.Unlock()
	return snap
}

// Snapshots copies every span's state, in creation order (ID order).
func (t *Tracer) Snapshots() []SpanSnapshot {
	if t == nil {
		return nil
	}
	spans := t.Spans()
	out := make([]SpanSnapshot, len(spans))
	for i, s := range spans {
		out[i] = s.Snapshot()
	}
	return out
}
