package trace

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// Profile is the EXPLAIN ANALYZE view of one executed query: the operator
// tree with per-operator time (self time, i.e. excluding children,
// normalized by the worker count so the per-operator times sum to roughly
// the query's wall duration), row flow, and spill activity.
type Profile struct {
	// Total is the query's measured wall duration.
	Total time.Duration
	// Workers is the worker count spans were normalized against.
	Workers int
	// AllocObjects and AllocBytes are the heap-allocation deltas across
	// the query; GCPause and NumGC the collector activity it incurred.
	// Filled in by the engine (spans do not track allocations).
	// AllocApprox marks them approximate: another query overlapped this
	// one, and the process-wide counters mix in its allocations too.
	AllocObjects int64
	AllocBytes   int64
	GCPause      time.Duration
	NumGC        int64
	AllocApprox  bool
	// AdmissionWait is the time spent queued for a memory grant before
	// execution; MemoryGrant the grant admitted with (0 = unlimited).
	// Filled in by the engine.
	AdmissionWait time.Duration
	MemoryGrant   int64
	// CacheHit marks a query answered from the result reuse cache (no
	// plan executed — the tree below is empty); CacheTier names the tier
	// that served it ("memory" or "nvme"). Filled in by the engine.
	CacheHit  bool
	CacheTier string
	// Roots are the top-level operators (normally one: the plan root).
	Roots []*ProfileNode
}

// ProfileNode is one operator in the profile tree.
type ProfileNode struct {
	SpanSnapshot
	// Self is the operator's own wall-clock share: its exclusive summed
	// worker-time divided by the worker count. The Self values of a
	// profile sum to ~Total.
	Self time.Duration
	// Inclusive is Self plus all descendants'.
	Inclusive time.Duration
	Children  []*ProfileNode
}

// Profile assembles the span tree and computes self times. total is the
// query's measured wall duration (the normalization target).
func (t *Tracer) Profile(total time.Duration) *Profile {
	if t == nil {
		return nil
	}
	snaps := t.Snapshots()
	p := &Profile{Total: total, Workers: t.Workers()}
	nodes := make([]*ProfileNode, len(snaps))
	for i := range snaps {
		nodes[i] = &ProfileNode{SpanSnapshot: snaps[i]}
	}
	for _, n := range nodes {
		if n.ParentID >= 0 && n.ParentID < len(nodes) {
			nodes[n.ParentID].Children = append(nodes[n.ParentID].Children, n)
		} else {
			p.Roots = append(p.Roots, n)
		}
	}
	w := time.Duration(p.Workers)
	var compute func(n *ProfileNode)
	compute = func(n *ProfileNode) {
		n.Self = n.Busy / w
		n.Inclusive = n.Self
		for _, c := range n.Children {
			compute(c)
			n.Inclusive += c.Inclusive
		}
	}
	for _, r := range p.Roots {
		compute(r)
	}
	return p
}

// SelfSum returns the sum of per-operator self times — the quantity that
// should land within a few percent of Total when workers stay busy.
func (p *Profile) SelfSum() time.Duration {
	var sum time.Duration
	var walk func(n *ProfileNode)
	walk = func(n *ProfileNode) {
		sum += n.Self
		for _, c := range n.Children {
			walk(c)
		}
	}
	for _, r := range p.Roots {
		walk(r)
	}
	return sum
}

// FormatProfile renders the profile as an EXPLAIN ANALYZE-style tree:
//
//	query: 18.3ms total, 2 workers
//	└─ sort  0.1ms (0.6%)  rows=4
//	   └─ agg  7.7ms (42.1%)  rows=4 in=60175 spilled=1.2MB written=0.4MB [lz4-1:12 none:3]
//	      └─ scan lineitem  10.4ms (56.8%)  rows=60175
func FormatProfile(p *Profile) string {
	if p == nil {
		return "(no profile)\n"
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "query: %s total, %d workers\n", fmtDur(p.Total), p.Workers)
	if p.CacheHit {
		fmt.Fprintf(&sb, "result cache: hit (%s tier); plan not executed\n", p.CacheTier)
	}
	if p.AdmissionWait > 0 || p.MemoryGrant > 0 {
		fmt.Fprintf(&sb, "admission: wait=%s grant=%s\n",
			fmtDur(p.AdmissionWait), fmtBytes(p.MemoryGrant))
	}
	if p.AllocObjects > 0 || p.NumGC > 0 {
		approx := ""
		if p.AllocApprox {
			approx = " (approx: concurrent queries)"
		}
		fmt.Fprintf(&sb, "gc: allocs=%d alloc-bytes=%s cycles=%d pause=%s%s\n",
			p.AllocObjects, fmtBytes(p.AllocBytes), p.NumGC, fmtDur(p.GCPause), approx)
	}
	for _, r := range p.Roots {
		formatNode(&sb, r, "", p.Total)
	}
	return sb.String()
}

func formatNode(sb *strings.Builder, n *ProfileNode, indent string, total time.Duration) {
	pct := 0.0
	if total > 0 {
		pct = float64(n.Self) / float64(total) * 100
	}
	sb.WriteString(indent)
	sb.WriteString("└─ ")
	sb.WriteString(n.Op)
	if n.Label != "" {
		sb.WriteString(" ")
		sb.WriteString(n.Label)
	}
	fmt.Fprintf(sb, "  %s (%.1f%%)  rows=%d", fmtDur(n.Self), pct, n.RowsOut)
	if n.TuplesStored > 0 {
		fmt.Fprintf(sb, " in=%d", n.TuplesStored)
	}
	if n.Partitioned {
		sb.WriteString(" partitioned")
	}
	if n.SpilledBytes > 0 {
		fmt.Fprintf(sb, " spilled=%s written=%s", fmtBytes(n.SpilledBytes), fmtBytes(n.WrittenBytes))
	}
	if n.SpillReadBytes > 0 {
		fmt.Fprintf(sb, " spill-read=%s", fmtBytes(n.SpillReadBytes))
	}
	if n.SpillStallNs > 0 || n.PrefetchedParts > 0 {
		fmt.Fprintf(sb, " stall=%s prefetched=%d", fmtDur(n.SpillStallNs), n.PrefetchedParts)
	}
	if n.ScanStallNs > 0 {
		fmt.Fprintf(sb, " scan-stall=%s", fmtDur(n.ScanStallNs))
	}
	if n.SpillRetries > 0 || n.SpillFailovers > 0 {
		fmt.Fprintf(sb, " retries=%d failovers=%d", n.SpillRetries, n.SpillFailovers)
	}
	if n.SpillVerified > 0 || n.SpillChecksumErrs > 0 {
		fmt.Fprintf(sb, " verified=%d", n.SpillVerified)
	}
	if n.SpillChecksumErrs > 0 || n.SpillReconstructs > 0 {
		fmt.Fprintf(sb, " csum-errors=%d reconstructed=%d", n.SpillChecksumErrs, n.SpillReconstructs)
	}
	if n.RegLevelChanges > 0 {
		fmt.Fprintf(sb, " reg-changes=%d reg-max-level=%d", n.RegLevelChanges, n.RegMaxLevel)
	}
	if len(n.Schemes) > 0 {
		names := make([]string, 0, len(n.Schemes))
		for k := range n.Schemes {
			names = append(names, k)
		}
		sort.Strings(names)
		sb.WriteString(" [")
		for i, k := range names {
			if i > 0 {
				sb.WriteString(" ")
			}
			fmt.Fprintf(sb, "%s:%d", k, n.Schemes[k])
		}
		sb.WriteString("]")
	}
	sb.WriteByte('\n')
	for _, c := range n.Children {
		formatNode(sb, c, indent+"   ", total)
	}
}

func fmtDur(d time.Duration) string {
	switch {
	case d >= time.Second:
		return fmt.Sprintf("%.2fs", d.Seconds())
	case d >= time.Millisecond:
		return fmt.Sprintf("%.1fms", float64(d)/float64(time.Millisecond))
	default:
		return fmt.Sprintf("%.0fµs", float64(d)/float64(time.Microsecond))
	}
}

func fmtBytes(n int64) string {
	switch {
	case n >= 1<<20:
		return fmt.Sprintf("%.1fMB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1fKB", float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%dB", n)
	}
}
