package trace

import (
	"strings"
	"sync"
	"testing"
	"time"
)

// TestNilTracerIsSafe: every method must be a no-op on a nil tracer and a
// nil span — the engine calls them unconditionally after one nil check.
func TestNilTracerIsSafe(t *testing.T) {
	var tr *Tracer
	sp := tr.Start("scan", "lineitem")
	if sp != nil {
		t.Fatalf("nil tracer returned non-nil span")
	}
	sp.AddBusy(time.Millisecond)
	sp.AddRows(10, 1)
	sp.AddMaterialized(5)
	sp.AddSpill(1, 1, 0, 0)
	sp.AddSpillRead(1, 0)
	sp.SetPartitioned()
	sp.AddRegulator(1, 2)
	sp.AddSchemes(map[string]int64{"lz4": 1})
	tr.EndScope(sp)
	if tr.Spans() != nil || tr.Snapshots() != nil || tr.Profile(time.Second) != nil {
		t.Fatal("nil tracer must return nil collections")
	}
	if tr.Workers() != 1 {
		t.Fatal("nil tracer Workers() must be 1")
	}
}

// TestSpanTreeParentage: spans started inside another span's Run scope
// become its children; EndScope restores the enclosing scope.
func TestSpanTreeParentage(t *testing.T) {
	tr := New(2)
	root := tr.Start("sort", "")
	child1 := tr.Start("agg", "")
	leaf := tr.Start("scan", "lineitem")
	tr.EndScope(leaf)
	tr.EndScope(child1)
	child2 := tr.Start("scan", "orders")
	tr.EndScope(child2)
	tr.EndScope(root)

	if root.ParentID != -1 {
		t.Fatalf("root parent = %d, want -1", root.ParentID)
	}
	if child1.ParentID != root.ID || child2.ParentID != root.ID {
		t.Fatalf("children parents = %d, %d, want %d", child1.ParentID, child2.ParentID, root.ID)
	}
	if leaf.ParentID != child1.ID {
		t.Fatalf("leaf parent = %d, want %d", leaf.ParentID, child1.ID)
	}
}

// TestProfileSelfTime: busy is exclusive at the source, so self time is
// busy normalized by the worker count and inclusive sums the subtree.
func TestProfileSelfTime(t *testing.T) {
	tr := New(2)
	root := tr.Start("agg", "")
	child := tr.Start("scan", "t")
	tr.EndScope(child)
	tr.EndScope(root)

	child.AddBusy(600 * time.Millisecond) // summed over 2 workers
	root.AddBusy(400 * time.Millisecond)  // exclusive of child
	root.AddRows(4, 1)

	p := tr.Profile(500 * time.Millisecond)
	if len(p.Roots) != 1 || len(p.Roots[0].Children) != 1 {
		t.Fatalf("tree shape wrong: %+v", p.Roots)
	}
	rn, cn := p.Roots[0], p.Roots[0].Children[0]
	if rn.Self != 200*time.Millisecond { // 400/2
		t.Fatalf("root self = %v, want 200ms", rn.Self)
	}
	if cn.Self != 300*time.Millisecond { // 600/2
		t.Fatalf("child self = %v, want 300ms", cn.Self)
	}
	if got := p.SelfSum(); got != 500*time.Millisecond {
		t.Fatalf("SelfSum = %v, want 500ms (total busy / workers)", got)
	}
	if rn.Inclusive != 500*time.Millisecond {
		t.Fatalf("root inclusive = %v, want 500ms", rn.Inclusive)
	}
}

// TestTracerChargedTracksBusy: every busy charge to any span advances the
// tracer's charged watermark — the quantity blocking phases subtract to
// stay exclusive.
func TestTracerChargedTracksBusy(t *testing.T) {
	tr := New(2)
	a := tr.Start("scan", "")
	b := tr.Start("join", "")
	tr.EndScope(b)
	tr.EndScope(a)
	if tr.Charged() != 0 {
		t.Fatalf("fresh tracer charged = %v", tr.Charged())
	}
	a.AddBusy(100 * time.Millisecond)
	b.AddBusy(50 * time.Millisecond)
	if got := tr.Charged(); got != 150*time.Millisecond {
		t.Fatalf("charged = %v, want 150ms", got)
	}
	var nilT *Tracer
	if nilT.Charged() != 0 {
		t.Fatal("nil tracer Charged must be 0")
	}
}

// TestFormatProfile: the renderer emits one tree line per span with the
// operator name, time, percentage, and counters.
func TestFormatProfile(t *testing.T) {
	tr := New(1)
	root := tr.Start("agg", "group=l_returnflag")
	child := tr.Start("scan", "lineitem")
	tr.EndScope(child)
	tr.EndScope(root)
	child.AddBusy(30 * time.Millisecond)
	child.AddRows(60175, 59)
	root.AddBusy(100 * time.Millisecond)
	root.AddRows(4, 1)
	root.AddMaterialized(60175)
	root.SetPartitioned()
	root.AddSpill(2<<20, 1<<20, 1, 0)
	root.AddSpillRead(2<<20, 0)
	root.AddRegulator(3, 2)
	root.AddSchemes(map[string]int64{"lz4-fastest": 12, "raw": 3})

	out := FormatProfile(tr.Profile(100 * time.Millisecond))
	for _, want := range []string{
		"query: 100.0ms total, 1 workers",
		"└─ agg group=l_returnflag",
		"rows=4", "in=60175", "partitioned",
		"spilled=2.0MB", "written=1.0MB", "spill-read=2.0MB",
		"retries=1", "reg-changes=3", "reg-max-level=2",
		"[lz4-fastest:12 raw:3]",
		"   └─ scan lineitem",
		"rows=60175",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("profile output missing %q:\n%s", want, out)
		}
	}
	if FormatProfile(nil) != "(no profile)\n" {
		t.Fatal("nil profile must render a placeholder")
	}
}

// TestSpanConcurrentCounters: counter methods and Snapshot must be safe
// under concurrent use (runs under -race in make race).
func TestSpanConcurrentCounters(t *testing.T) {
	tr := New(4)
	sp := tr.Start("join", "")
	tr.EndScope(sp)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				sp.AddRows(1, 1)
				sp.AddBusy(time.Microsecond)
				sp.AddSchemes(map[string]int64{"lz4": 1})
				sp.AddRegulator(1, i%8)
				_ = sp.Snapshot()
			}
		}()
	}
	wg.Wait()
	snap := sp.Snapshot()
	if snap.RowsOut != 4000 || snap.Schemes["lz4"] != 4000 {
		t.Fatalf("lost updates: rows=%d schemes=%v", snap.RowsOut, snap.Schemes)
	}
	if snap.RegMaxLevel != 7 {
		t.Fatalf("reg max level = %d, want 7", snap.RegMaxLevel)
	}
}
