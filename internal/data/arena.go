package data

import "unsafe"

// arenaChunkSize is the allocation granularity of a ByteArena. 64 KiB
// amortizes one heap allocation over thousands of TPC-H-sized strings.
const arenaChunkSize = 64 << 10

// ByteArena is a bump allocator for variable-length values restored from
// spilled or materialized tuples. Interning through an arena replaces one
// heap allocation per string with one per 64 KiB chunk, and — just as
// important for recycling — it decouples the interned value from the page
// buffer it was decoded out of: once every consumer interns what it keeps,
// page buffers can be returned to the recycler without dangling strings.
//
// Lifetime: a chunk stays reachable exactly as long as any string interned
// into it, via the string's pointer — the arena itself only references the
// current chunk. Arenas are not safe for concurrent use; operators keep one
// per worker.
type ByteArena struct {
	buf []byte
}

// InternBytes copies b into the arena and returns it as a string without a
// per-call allocation. Values larger than a quarter chunk get their own
// allocation so a single huge string cannot strand a mostly-empty chunk.
func (a *ByteArena) InternBytes(b []byte) string {
	if len(b) == 0 {
		return ""
	}
	if len(b) > arenaChunkSize/4 {
		return string(b)
	}
	if len(a.buf)+len(b) > cap(a.buf) {
		a.buf = make([]byte, 0, arenaChunkSize)
	}
	n := len(a.buf)
	a.buf = append(a.buf, b...)
	s := a.buf[n : n+len(b)]
	return unsafe.String(&s[0], len(s))
}

// CompareBytesString lexically compares b against s with string comparison
// semantics (byte-wise), without converting b to a string. Returns -1, 0,
// or 1.
func CompareBytesString(b []byte, s string) int {
	n := len(b)
	if len(s) < n {
		n = len(s)
	}
	for i := 0; i < n; i++ {
		switch {
		case b[i] < s[i]:
			return -1
		case b[i] > s[i]:
			return 1
		}
	}
	switch {
	case len(b) < len(s):
		return -1
	case len(b) > len(s):
		return 1
	}
	return 0
}

// Copy copies b into the arena and returns the copy as a byte slice. The
// returned slice must be treated as immutable: it shares a chunk with other
// interned values and with strings handed out by InternBytes.
func (a *ByteArena) Copy(b []byte) []byte {
	if len(b) == 0 {
		return nil
	}
	if len(b) > arenaChunkSize/4 {
		return append([]byte(nil), b...)
	}
	if len(a.buf)+len(b) > cap(a.buf) {
		a.buf = make([]byte, 0, arenaChunkSize)
	}
	n := len(a.buf)
	a.buf = append(a.buf, b...)
	return a.buf[n : n+len(b) : n+len(b)]
}
