// Package data defines the engine's data model: column types, schemas,
// columnar batches (the unit of vectorized processing within a morsel), and
// the row-wise tuple codec used when operators materialize data through
// Umami (paper §4.4 "Why general-purpose schemes": table data is columnar,
// materialized operator data is row-wise so hash tables can point at
// tuples).
package data

import (
	"fmt"
	"time"
)

// Type is a column type.
type Type uint8

// Column types. Dates are stored as days since the Unix epoch; Bool columns
// store 0/1 in the integer representation.
const (
	Int64 Type = iota
	Float64
	String
	Date
	Bool
)

// Fixed reports whether the type has a fixed-width 8-byte representation.
func (t Type) Fixed() bool { return t != String }

// String implements fmt.Stringer.
func (t Type) String() string {
	switch t {
	case Int64:
		return "int64"
	case Float64:
		return "float64"
	case String:
		return "string"
	case Date:
		return "date"
	case Bool:
		return "bool"
	default:
		return fmt.Sprintf("type(%d)", uint8(t))
	}
}

// ColumnDef names and types one column of a schema.
type ColumnDef struct {
	Name string
	Type Type
}

// Schema describes the columns of a batch or table.
type Schema struct {
	Cols []ColumnDef
}

// NewSchema builds a schema from column definitions.
func NewSchema(cols ...ColumnDef) *Schema { return &Schema{Cols: cols} }

// Len returns the number of columns.
func (s *Schema) Len() int { return len(s.Cols) }

// Index returns the position of the named column, or -1.
func (s *Schema) Index(name string) int {
	for i, c := range s.Cols {
		if c.Name == name {
			return i
		}
	}
	return -1
}

// MustIndex is Index but panics on unknown names — schema references in
// hand-built plans are programming errors, not runtime conditions.
func (s *Schema) MustIndex(name string) int {
	i := s.Index(name)
	if i < 0 {
		panic(fmt.Sprintf("data: unknown column %q", name))
	}
	return i
}

// Types returns the column types in order.
func (s *Schema) Types() []Type {
	out := make([]Type, len(s.Cols))
	for i, c := range s.Cols {
		out[i] = c.Type
	}
	return out
}

// Project returns a schema of the named columns.
func (s *Schema) Project(names ...string) *Schema {
	out := &Schema{Cols: make([]ColumnDef, len(names))}
	for i, n := range names {
		out.Cols[i] = s.Cols[s.MustIndex(n)]
	}
	return out
}

// Concat returns a schema with other's columns appended.
func (s *Schema) Concat(other *Schema) *Schema {
	out := &Schema{Cols: make([]ColumnDef, 0, len(s.Cols)+len(other.Cols))}
	out.Cols = append(out.Cols, s.Cols...)
	out.Cols = append(out.Cols, other.Cols...)
	return out
}

// Column is one column of a batch. Exactly one of I, F, S is populated
// depending on the type; Null, when non-nil, marks NULL rows (produced only
// by outer joins — base TPC-H data is NOT NULL throughout).
type Column struct {
	Type Type
	I    []int64
	F    []float64
	S    []string
	Null []bool
}

// Batch is a columnar chunk of rows, the engine's unit of processing
// within a morsel.
type Batch struct {
	Schema *Schema
	Cols   []Column
	// Sel, when non-nil, is a selection vector: the live rows of the batch
	// are Sel[0], Sel[1], ... (physical row indices into the columns, in
	// ascending order). Filters produce selection vectors instead of
	// compacting columns, so a scan batch survives predicates without a
	// single copy. Consumers iterate Rows()/Row(i) or pass Sel to the
	// vectorized kernels; Reset and Flatten clear it.
	Sel []int32
	n   int
	// pool, when non-nil, is the BatchPool this batch was leased from;
	// Release returns it there. Cleared on Put so a pooled batch cannot be
	// double-released through a stale reference.
	pool *BatchPool
}

// NewBatch returns an empty batch with capacity hint cap.
func NewBatch(schema *Schema, capHint int) *Batch {
	b := &Batch{Schema: schema, Cols: make([]Column, schema.Len())}
	for i, c := range schema.Cols {
		b.Cols[i].Type = c.Type
		switch c.Type {
		case Float64:
			b.Cols[i].F = make([]float64, 0, capHint)
		case String:
			b.Cols[i].S = make([]string, 0, capHint)
		default:
			b.Cols[i].I = make([]int64, 0, capHint)
		}
	}
	return b
}

// Len returns the number of physical rows (ignoring any selection vector).
func (b *Batch) Len() int { return b.n }

// SetLen declares the row count after columns were filled directly.
func (b *Batch) SetLen(n int) { b.n = n }

// Rows returns the number of live rows: the selection vector's length when
// one is set, the physical row count otherwise.
func (b *Batch) Rows() int {
	if b.Sel != nil {
		return len(b.Sel)
	}
	return b.n
}

// Row maps live row i to its physical row index.
func (b *Batch) Row(i int) int {
	if b.Sel != nil {
		return int(b.Sel[i])
	}
	return i
}

// Reset clears all rows and the selection vector, keeping capacity.
func (b *Batch) Reset() {
	for i := range b.Cols {
		c := &b.Cols[i]
		c.I = c.I[:0]
		c.F = c.F[:0]
		c.S = c.S[:0]
		c.Null = nil
	}
	b.Sel = nil
	b.n = 0
}

// Flatten materializes the selection vector by compacting the columns in
// place (ascending Sel makes the in-place shift safe) and clearing Sel.
// It must not be called on batches that alias table storage (in-memory
// scans hand out views): compacting would corrupt the table. Operators
// therefore consume Sel via Rows()/Row(i) instead; Flatten exists for
// owned batches and tests.
func (b *Batch) Flatten() {
	if b.Sel == nil {
		return
	}
	sel := b.Sel
	for i := range b.Cols {
		c := &b.Cols[i]
		switch {
		case c.F != nil:
			for j, r := range sel {
				c.F[j] = c.F[r]
			}
			c.F = c.F[:len(sel)]
		case c.S != nil:
			for j, r := range sel {
				c.S[j] = c.S[r]
			}
			c.S = c.S[:len(sel)]
		default:
			for j, r := range sel {
				c.I[j] = c.I[r]
			}
			c.I = c.I[:len(sel)]
		}
		if c.Null != nil {
			for j, r := range sel {
				c.Null[j] = c.Null[r]
			}
			c.Null = c.Null[:len(sel)]
		}
	}
	b.n = len(sel)
	b.Sel = nil
}

// IsNull reports whether column col is NULL at row.
func (b *Batch) IsNull(col, row int) bool {
	n := b.Cols[col].Null
	return n != nil && n[row]
}

// AppendRowFrom copies row r of src (which must share the schema layout)
// onto b.
func (b *Batch) AppendRowFrom(src *Batch, r int) {
	for i := range b.Cols {
		dst, s := &b.Cols[i], &src.Cols[i]
		switch dst.Type {
		case Float64:
			dst.F = append(dst.F, s.F[r])
		case String:
			dst.S = append(dst.S, s.S[r])
		default:
			dst.I = append(dst.I, s.I[r])
		}
		if s.Null != nil {
			if dst.Null == nil {
				dst.Null = make([]bool, b.n)
			}
			dst.Null = append(dst.Null, s.Null[r])
		} else if dst.Null != nil {
			dst.Null = append(dst.Null, false)
		}
	}
	b.n++
}

// Date helpers.

var unixEpoch = time.Date(1970, 1, 1, 0, 0, 0, 0, time.UTC)

// ParseDate converts "YYYY-MM-DD" into days since the Unix epoch. It panics
// on malformed input: date literals appear only in hand-built plans.
func ParseDate(s string) int64 {
	t, err := time.Parse("2006-01-02", s)
	if err != nil {
		panic(fmt.Sprintf("data: bad date literal %q: %v", s, err))
	}
	return int64(t.Sub(unixEpoch) / (24 * time.Hour))
}

// DateOf builds a day number from components.
func DateOf(year, month, day int) int64 {
	t := time.Date(year, time.Month(month), day, 0, 0, 0, 0, time.UTC)
	return int64(t.Sub(unixEpoch) / (24 * time.Hour))
}

// FormatDate renders a day number as "YYYY-MM-DD".
func FormatDate(days int64) string {
	return unixEpoch.AddDate(0, 0, int(days)).Format("2006-01-02")
}

// Year extracts the calendar year of a day number.
func Year(days int64) int64 {
	return int64(unixEpoch.AddDate(0, 0, int(days)).Year())
}

// AddMonths shifts a day number by whole months (SQL interval arithmetic).
func AddMonths(days int64, months int) int64 {
	t := unixEpoch.AddDate(0, 0, int(days)).AddDate(0, months, 0)
	return int64(t.Sub(unixEpoch) / (24 * time.Hour))
}

// AddYears shifts a day number by whole years.
func AddYears(days int64, years int) int64 {
	return AddMonths(days, 12*years)
}
