//go:build !race

// Allocation-count regression tests for the row-codec hot path. Excluded
// under -race: the race runtime adds bookkeeping allocations that make
// testing.AllocsPerRun meaningless.

package data

import (
	"testing"

	"github.com/spilly-db/spilly/internal/xhash"
)

// allocBatch builds a 1024-row batch over the standard test schema.
func allocBatch() *Batch {
	s := testSchema()
	b := NewBatch(s, 1024)
	for i := 0; i < 1024; i++ {
		fillRow(b, int64(i), float64(i)*0.5, "supplier name padding", int64(i%3000), int64(i%2))
	}
	return b
}

func assertAllocs(t *testing.T, name string, want float64, f func()) {
	t.Helper()
	if got := testing.AllocsPerRun(50, f); got > want {
		t.Errorf("%s: %.1f allocs/run, want <= %.0f", name, got, want)
	}
}

func TestAllocsXHash(t *testing.T) {
	buf := []byte("some medium length key value")
	str := string(buf)
	var sink uint64
	assertAllocs(t, "xhash.Bytes", 0, func() { sink = xhash.Bytes(buf, 7) })
	assertAllocs(t, "xhash.String", 0, func() { sink = xhash.String(str, 7) })
	_ = sink
}

func TestAllocsRowCodecBulk(t *testing.T) {
	b := allocBatch()
	rc := NewRowCodec(b.Schema.Types())
	sizes := rc.SizeAll(b, nil, make([]int, 0, b.Len()))
	dsts := make([][]byte, b.Len())
	for i, sz := range sizes {
		dsts[i] = make([]byte, sz)
	}
	sizeBuf := make([]int, 0, b.Len())
	assertAllocs(t, "SizeAll", 0, func() { sizeBuf = rc.SizeAll(b, nil, sizeBuf[:0]) })
	assertAllocs(t, "EncodeAll", 0, func() { rc.EncodeAll(dsts, b, nil) })
}

func TestAllocsTupleOps(t *testing.T) {
	b := allocBatch()
	rc := NewRowCodec(b.Schema.Types())
	tup := make([]byte, rc.Size(b, 0))
	rc.Encode(tup, b, 0)
	tup2 := make([]byte, rc.Size(b, 1))
	rc.Encode(tup2, b, 1)
	keys := []int{0, 2} // int64 + string key
	var h uint64
	var eq bool
	// String keys hash and compare as views into the encoded tuple — the
	// zero-copy restore contract.
	assertAllocs(t, "HashTuple", 0, func() { h = rc.HashTuple(tup, keys) })
	assertAllocs(t, "KeyEqual", 0, func() { eq = rc.KeyEqual(tup, tup2, keys) })
	assertAllocs(t, "KeyEqualRow", 0, func() { eq = rc.KeyEqualRow(tup, keys, b, keys, 0) })
	assertAllocs(t, "StrBytes", 0, func() { _ = rc.StrBytes(tup, 2) })
	assertAllocs(t, "CompareBytesString", 0, func() {
		_ = CompareBytesString(rc.StrBytes(tup, 2), "supplier name padding")
	})
	_, _ = h, eq
}

// TestAllocsArenaIntern pins the amortized cost of arena interning: one
// chunk allocation per 64 KiB of string data, i.e. well under one
// allocation per call for TPC-H-sized values.
func TestAllocsArenaIntern(t *testing.T) {
	var a ByteArena
	val := []byte("twenty-three byte value")
	got := testing.AllocsPerRun(2000, func() { _ = a.InternBytes(val) })
	if got > 0.05 {
		t.Errorf("InternBytes: %.3f allocs/run, want amortized < 0.05", got)
	}
}

func BenchmarkAllocEncodeAll(b *testing.B) {
	bt := allocBatch()
	rc := NewRowCodec(bt.Schema.Types())
	sizes := rc.SizeAll(bt, nil, make([]int, 0, bt.Len()))
	dsts := make([][]byte, bt.Len())
	for i, sz := range sizes {
		dsts[i] = make([]byte, sz)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rc.EncodeAll(dsts, bt, nil)
	}
}

func BenchmarkAllocInternBytes(b *testing.B) {
	var a ByteArena
	val := []byte("twenty-three byte value")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = a.InternBytes(val)
	}
}

func BenchmarkAllocAppendToArena(b *testing.B) {
	bt := allocBatch()
	rc := NewRowCodec(bt.Schema.Types())
	tup := make([]byte, rc.Size(bt, 0))
	rc.Encode(tup, bt, 0)
	out := NewBatch(bt.Schema, 4096)
	var a ByteArena
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if out.Len() >= 4096 {
			out.Reset()
		}
		rc.AppendToArena(out, tup, &a)
	}
}

func TestAllocsAppendToArena(t *testing.T) {
	b := allocBatch()
	rc := NewRowCodec(b.Schema.Types())
	tup := make([]byte, rc.Size(b, 0))
	rc.Encode(tup, b, 0)
	out := NewBatch(b.Schema, 2048)
	var a ByteArena
	// Warm the destination so append growth settles, then require the
	// steady state: no per-row allocations beyond amortized arena chunks.
	for i := 0; i < 2048; i++ {
		rc.AppendToArena(out, tup, &a)
	}
	got := testing.AllocsPerRun(1000, func() {
		out.Reset()
		rc.AppendToArena(out, tup, &a)
	})
	if got > 0.1 {
		t.Errorf("AppendToArena: %.3f allocs/run, want amortized < 0.1", got)
	}
}
