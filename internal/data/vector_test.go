package data

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
)

var vecTestSchema = NewSchema(
	ColumnDef{"k", Int64},
	ColumnDef{"v", Float64},
	ColumnDef{"s", String},
	ColumnDef{"d", Date},
	ColumnDef{"n", Int64},
)

// randVecBatch builds a random batch over vecTestSchema: random row count,
// sometimes a null mask, sometimes an ascending selection vector.
func randVecBatch(rng *rand.Rand) *Batch {
	n := 1 + rng.Intn(150)
	b := NewBatch(vecTestSchema, n)
	for i := 0; i < n; i++ {
		b.Cols[0].I = append(b.Cols[0].I, rng.Int63n(1000)-200)
		b.Cols[1].F = append(b.Cols[1].F, rng.Float64()*1e4-5e3)
		b.Cols[2].S = append(b.Cols[2].S, fmt.Sprintf("str-%d", rng.Intn(100)))
		b.Cols[3].I = append(b.Cols[3].I, DateOf(1992+rng.Intn(7), 1+rng.Intn(12), 1+rng.Intn(28)))
		b.Cols[4].I = append(b.Cols[4].I, rng.Int63n(50))
	}
	b.SetLen(n)
	if rng.Intn(2) == 0 {
		null := make([]bool, n)
		for i := range null {
			null[i] = rng.Intn(4) == 0
		}
		b.Cols[4].Null = null
	}
	if rng.Intn(2) == 0 {
		sel := make([]int32, 0, n)
		for i := 0; i < n; i++ {
			if rng.Intn(3) != 0 {
				sel = append(sel, int32(i))
			}
		}
		b.Sel = sel
	}
	return b
}

// TestHashColumnsMatchesHashRow: the batch hash kernel must be
// bit-identical to the per-row hash for every key-column combination —
// partition routing depends on it (a spilled build tuple and its probe
// row must land in the same partition whichever path hashed them).
func TestHashColumnsMatchesHashRow(t *testing.T) {
	keySets := [][]int{{0}, {1}, {2}, {4}, {0, 2}, {0, 1, 2, 3, 4}}
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		b := randVecBatch(rng)
		for _, keys := range keySets {
			hs := HashColumns(b, b.Sel, keys, nil)
			if len(hs) != b.Rows() {
				t.Logf("seed %d keys %v: got %d hashes, want %d", seed, keys, len(hs), b.Rows())
				return false
			}
			for i := 0; i < b.Rows(); i++ {
				if want := HashRow(b, keys, b.Row(i)); hs[i] != want {
					t.Logf("seed %d keys %v row %d: HashColumns %x, HashRow %x", seed, keys, i, hs[i], want)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestSizeAllEncodeAllMatchScalar: batch sizing and encoding must produce
// byte-identical tuples to the per-row Size/Encode pair.
func TestSizeAllEncodeAllMatchScalar(t *testing.T) {
	rc := NewRowCodec(vecTestSchema.Types())
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		b := randVecBatch(rng)
		sizes := rc.SizeAll(b, b.Sel, nil)
		if len(sizes) != b.Rows() {
			t.Logf("seed %d: SizeAll returned %d sizes, want %d", seed, len(sizes), b.Rows())
			return false
		}
		dsts := make([][]byte, b.Rows())
		for i, sz := range sizes {
			if want := rc.Size(b, b.Row(i)); sz != want {
				t.Logf("seed %d row %d: SizeAll %d, Size %d", seed, i, sz, want)
				return false
			}
			dsts[i] = make([]byte, sz)
		}
		rc.EncodeAll(dsts, b, b.Sel)
		for i := range dsts {
			want := make([]byte, sizes[i])
			rc.Encode(want, b, b.Row(i))
			if !bytes.Equal(dsts[i], want) {
				t.Logf("seed %d row %d: EncodeAll %x, Encode %x", seed, i, dsts[i], want)
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func benchVecBatch(n int) *Batch {
	rng := rand.New(rand.NewSource(1))
	b := NewBatch(vecTestSchema, n)
	for i := 0; i < n; i++ {
		b.Cols[0].I = append(b.Cols[0].I, rng.Int63n(1000))
		b.Cols[1].F = append(b.Cols[1].F, rng.Float64())
		b.Cols[2].S = append(b.Cols[2].S, fmt.Sprintf("str-%d", rng.Intn(100)))
		b.Cols[3].I = append(b.Cols[3].I, DateOf(1995, 1, 1+rng.Intn(28)))
		b.Cols[4].I = append(b.Cols[4].I, rng.Int63n(50))
	}
	b.SetLen(n)
	return b
}

func BenchmarkHashRow(b *testing.B) {
	batch := benchVecBatch(4096)
	keys := []int{0, 2}
	out := make([]uint64, 4096)
	b.SetBytes(4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for r := 0; r < 4096; r++ {
			out[r] = HashRow(batch, keys, r)
		}
	}
}

func BenchmarkHashColumns(b *testing.B) {
	batch := benchVecBatch(4096)
	keys := []int{0, 2}
	var out []uint64
	b.SetBytes(4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out = HashColumns(batch, nil, keys, out[:0])
	}
}

func BenchmarkEncodeRow(b *testing.B) {
	batch := benchVecBatch(4096)
	rc := NewRowCodec(vecTestSchema.Types())
	var buf []byte
	b.SetBytes(4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for r := 0; r < 4096; r++ {
			sz := rc.Size(batch, r)
			if cap(buf) < sz {
				buf = make([]byte, sz)
			}
			rc.Encode(buf[:sz], batch, r)
		}
	}
}

func BenchmarkEncodeAll(b *testing.B) {
	batch := benchVecBatch(4096)
	rc := NewRowCodec(vecTestSchema.Types())
	var sizes []int
	var enc []byte
	var dsts [][]byte
	b.SetBytes(4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sizes = rc.SizeAll(batch, nil, sizes[:0])
		total := 0
		for _, s := range sizes {
			total += s
		}
		if cap(enc) < total {
			enc = make([]byte, total)
		}
		enc = enc[:total]
		dsts = dsts[:0]
		off := 0
		for _, s := range sizes {
			dsts = append(dsts, enc[off:off+s:off+s])
			off += s
		}
		rc.EncodeAll(dsts, batch, nil)
	}
}
