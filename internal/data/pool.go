package data

import (
	"sync"
	"sync/atomic"
)

// batchShrinkCap bounds the per-column capacity a pooled batch may retain.
// Operators occasionally produce one oversized batch (a skewed partition, a
// large sort run); without a cap that batch's backing arrays — and, for
// string columns, every string header they still reference — would live as
// long as the pool. Columns grown past the cap are dropped on Put and
// reallocated lazily on the next fill.
const batchShrinkCap = 8192

// BatchPool recycles batches of one schema. Operators lease a batch with
// Get and return it with Put (or Batch.Release); between queries the pool
// is just a sync.Pool, so unreturned batches are not leaked — they fall
// back to the garbage collector — but every Get that is matched by a Put
// runs the hot path without allocating.
//
// Ownership rule: the leaseholder may fill, reset, and read the batch, but
// must not retain any column slice past Put. Strings appended to a pooled
// batch may outlive it (string headers are copied out by AppendRowFrom);
// the pool never writes to string backing arrays for exactly that reason —
// see shrink.
type BatchPool struct {
	schema *Schema
	pool   sync.Pool
	gets   atomic.Int64
	puts   atomic.Int64
}

// NewBatchPool returns a pool producing batches of the given schema.
func NewBatchPool(schema *Schema) *BatchPool {
	bp := &BatchPool{schema: schema}
	bp.pool.New = func() interface{} { return NewBatch(schema, 0) }
	return bp
}

// Schema returns the schema of the pooled batches.
func (bp *BatchPool) Schema() *Schema { return bp.schema }

// Get leases a reset batch from the pool.
func (bp *BatchPool) Get() *Batch {
	bp.gets.Add(1)
	b := bp.pool.Get().(*Batch)
	b.Reset()
	b.pool = bp
	return b
}

// Put returns a batch to the pool. Nil is a no-op; double-Put is the
// caller's bug (the same batch would be leased twice).
func (bp *BatchPool) Put(b *Batch) {
	if b == nil {
		return
	}
	bp.puts.Add(1)
	b.pool = nil
	b.shrink()
	b.Reset()
	bp.pool.Put(b)
}

// Counters returns the cumulative Get and Put call counts. A balanced
// pipeline returns every leased batch, so after a successful query
// gets == puts (the leak test asserts exactly that).
func (bp *BatchPool) Counters() (gets, puts int64) {
	return bp.gets.Load(), bp.puts.Load()
}

// Release returns the batch to the pool it was leased from; on batches that
// did not come from a pool it is a no-op, so operators can release
// unconditionally.
func (b *Batch) Release() {
	if b == nil || b.pool == nil {
		return
	}
	p := b.pool
	b.pool = nil
	p.Put(b)
}

// shrink applies the retention policy before a batch re-enters the pool:
// any column (or selection vector) grown past batchShrinkCap is dropped so
// retained bytes stabilize at schema-width × batchShrinkCap regardless of
// the largest batch ever pooled.
//
// Deliberately NOT done here: zeroing retained string headers. Batches
// filled by in-memory scans alias table storage (colstore hands out views),
// so writing into a retained backing array could clobber a table column.
// Dropping oversized arrays is always safe; the small retained string
// arrays pin at most batchShrinkCap stale headers until the next fill
// overwrites them.
func (b *Batch) shrink() {
	for i := range b.Cols {
		c := &b.Cols[i]
		if cap(c.I) > batchShrinkCap {
			c.I = nil
		}
		if cap(c.F) > batchShrinkCap {
			c.F = nil
		}
		if cap(c.S) > batchShrinkCap {
			c.S = nil
		}
		c.Null = nil
	}
	if cap(b.Sel) > batchShrinkCap {
		b.Sel = nil
	}
}
