package data

import (
	"fmt"
	"testing"
)

func TestBatchPoolLease(t *testing.T) {
	s := testSchema()
	p := NewBatchPool(s)

	b := p.Get()
	if b.Schema != s {
		t.Fatal("pooled batch has wrong schema")
	}
	if b.Len() != 0 {
		t.Fatal("pooled batch not reset")
	}
	fillRow(b, 1, 1.5, "x", 0, 1)
	b.Release()

	b2 := p.Get()
	if b2.Len() != 0 {
		t.Fatal("reused batch not reset")
	}
	b2.Release()

	gets, puts := p.Counters()
	if gets != 2 || puts != 2 {
		t.Fatalf("counters = %d gets, %d puts; want 2, 2", gets, puts)
	}
}

func TestBatchReleaseWithoutPoolIsNoop(t *testing.T) {
	b := NewBatch(testSchema(), 4)
	b.Release() // must not panic: plain batches have no pool
	b.Release()
}

func TestBatchPoolDoubleReleaseOnlyCountsOnce(t *testing.T) {
	p := NewBatchPool(testSchema())
	b := p.Get()
	b.Release()
	b.Release() // second release of the same lease is a no-op
	if gets, puts := p.Counters(); gets != 1 || puts != 1 {
		t.Fatalf("counters = %d gets, %d puts; want 1, 1", gets, puts)
	}
}

// TestBatchPoolShrinksOversizedColumns is the Batch.Reset retention fix:
// a batch that grew huge during one query must not pin that memory across
// reuse. Retained capacity has to stabilize at the shrink cap.
func TestBatchPoolShrinksOversizedColumns(t *testing.T) {
	s := NewSchema(ColumnDef{"k", Int64}, ColumnDef{"v", String})
	p := NewBatchPool(s)

	b := p.Get()
	huge := batchShrinkCap * 4
	b.Cols[0].I = make([]int64, huge)
	b.Cols[1].S = make([]string, huge)
	b.Sel = make([]int32, huge)
	b.SetLen(huge)
	b.Release()

	// The same arrays must not come back; after a release/get cycle the
	// retained capacity is bounded regardless of the spike.
	for i := 0; i < 3; i++ {
		b = p.Get()
		if cap(b.Cols[0].I) > batchShrinkCap || cap(b.Cols[1].S) > batchShrinkCap {
			t.Fatalf("cycle %d: retained caps I=%d S=%d exceed shrink cap %d",
				i, cap(b.Cols[0].I), cap(b.Cols[1].S), batchShrinkCap)
		}
		if cap(b.Sel) > batchShrinkCap {
			t.Fatalf("cycle %d: retained Sel cap %d exceeds shrink cap", i, cap(b.Sel))
		}
		// Normal-sized refills stay retained (that is the point of pooling).
		for r := 0; r < 1024; r++ {
			b.Cols[0].I = append(b.Cols[0].I, int64(r))
			b.Cols[1].S = append(b.Cols[1].S, "v")
		}
		b.SetLen(1024)
		b.Release()
	}
}

func TestByteArenaIntern(t *testing.T) {
	var a ByteArena
	if a.InternBytes(nil) != "" {
		t.Fatal("empty intern")
	}
	vals := make([]string, 0, 1000)
	for i := 0; i < 1000; i++ {
		vals = append(vals, a.InternBytes([]byte(fmt.Sprintf("value-%d", i))))
	}
	for i, v := range vals {
		if v != fmt.Sprintf("value-%d", i) {
			t.Fatalf("interned string %d corrupted: %q", i, v)
		}
	}
	// Oversized values bypass the chunk so they cannot strand it.
	big := make([]byte, arenaChunkSize)
	if got := a.InternBytes(big); len(got) != len(big) {
		t.Fatal("oversized intern")
	}
}

func TestCompareBytesString(t *testing.T) {
	cases := []struct {
		b    string
		s    string
		want int
	}{
		{"", "", 0}, {"a", "a", 0}, {"a", "b", -1}, {"b", "a", 1},
		{"ab", "a", 1}, {"a", "ab", -1}, {"abc", "abd", -1},
	}
	for _, c := range cases {
		if got := CompareBytesString([]byte(c.b), c.s); got != c.want {
			t.Errorf("CompareBytesString(%q, %q) = %d, want %d", c.b, c.s, got, c.want)
		}
	}
}
