package data

import (
	"testing"
	"testing/quick"
)

func testSchema() *Schema {
	return NewSchema(
		ColumnDef{"id", Int64},
		ColumnDef{"price", Float64},
		ColumnDef{"name", String},
		ColumnDef{"ship", Date},
		ColumnDef{"flag", Bool},
	)
}

func fillRow(b *Batch, id int64, price float64, name string, ship int64, flag int64) {
	b.Cols[0].I = append(b.Cols[0].I, id)
	b.Cols[1].F = append(b.Cols[1].F, price)
	b.Cols[2].S = append(b.Cols[2].S, name)
	b.Cols[3].I = append(b.Cols[3].I, ship)
	b.Cols[4].I = append(b.Cols[4].I, flag)
	b.SetLen(b.Len() + 1)
}

func TestSchemaBasics(t *testing.T) {
	s := testSchema()
	if s.Len() != 5 {
		t.Fatal("Len")
	}
	if s.Index("name") != 2 || s.Index("missing") != -1 {
		t.Fatal("Index")
	}
	p := s.Project("ship", "id")
	if p.Cols[0].Name != "ship" || p.Cols[1].Type != Int64 {
		t.Fatal("Project")
	}
	c := s.Concat(NewSchema(ColumnDef{"x", Float64}))
	if c.Len() != 6 || c.Cols[5].Name != "x" {
		t.Fatal("Concat")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("MustIndex on unknown column did not panic")
		}
	}()
	s.MustIndex("nope")
}

func TestDates(t *testing.T) {
	d := ParseDate("1995-03-15")
	if FormatDate(d) != "1995-03-15" {
		t.Fatalf("round trip: %s", FormatDate(d))
	}
	if Year(d) != 1995 {
		t.Fatalf("Year = %d", Year(d))
	}
	if ParseDate("1970-01-01") != 0 {
		t.Fatal("epoch not day 0")
	}
	if got := FormatDate(AddMonths(ParseDate("1995-12-15"), 3)); got != "1996-03-15" {
		t.Fatalf("AddMonths = %s", got)
	}
	if got := FormatDate(AddYears(ParseDate("1996-02-29"), 1)); got != "1997-03-01" {
		t.Fatalf("AddYears leap = %s", got)
	}
	if DateOf(1992, 1, 2) != ParseDate("1992-01-02") {
		t.Fatal("DateOf disagrees with ParseDate")
	}
}

func TestRowCodecRoundTrip(t *testing.T) {
	s := testSchema()
	rc := NewRowCodec(s.Types())
	b := NewBatch(s, 4)
	fillRow(b, 42, 3.25, "hello world", ParseDate("1998-09-02"), 1)
	fillRow(b, -7, -0.5, "", ParseDate("1970-01-01"), 0)

	out := NewBatch(s, 4)
	for r := 0; r < b.Len(); r++ {
		buf := make([]byte, rc.Size(b, r))
		rc.Encode(buf, b, r)
		if rc.Int(buf, 0) != b.Cols[0].I[r] {
			t.Fatalf("row %d int mismatch", r)
		}
		if rc.Float(buf, 1) != b.Cols[1].F[r] {
			t.Fatalf("row %d float mismatch", r)
		}
		if rc.Str(buf, 2) != b.Cols[2].S[r] {
			t.Fatalf("row %d str mismatch: %q", r, rc.Str(buf, 2))
		}
		if rc.Int(buf, 3) != b.Cols[3].I[r] || rc.Int(buf, 4) != b.Cols[4].I[r] {
			t.Fatalf("row %d date/bool mismatch", r)
		}
		rc.AppendTo(out, buf)
	}
	if out.Len() != 2 || out.Cols[2].S[0] != "hello world" || out.Cols[0].I[1] != -7 {
		t.Fatal("AppendTo mismatch")
	}
}

func TestRowCodecNulls(t *testing.T) {
	s := NewSchema(ColumnDef{"k", Int64}, ColumnDef{"v", String})
	rc := NewRowCodec(s.Types())
	b := NewBatch(s, 2)
	b.Cols[0].I = []int64{1}
	b.Cols[0].Null = []bool{true}
	b.Cols[1].S = []string{"x"}
	b.SetLen(1)

	buf := make([]byte, rc.Size(b, 0))
	rc.Encode(buf, b, 0)
	if !rc.IsNull(buf, 0) || rc.IsNull(buf, 1) {
		t.Fatal("null bits wrong")
	}
	out := NewBatch(s, 1)
	rc.AppendTo(out, buf)
	if !out.IsNull(0, 0) || out.IsNull(1, 0) {
		t.Fatal("null round trip wrong")
	}
}

func TestHashConsistency(t *testing.T) {
	s := NewSchema(ColumnDef{"a", Int64}, ColumnDef{"b", String}, ColumnDef{"c", Float64})
	rc := NewRowCodec(s.Types())
	b := NewBatch(s, 2)
	b.Cols[0].I = []int64{7, 7}
	b.Cols[1].S = []string{"key", "key"}
	b.Cols[2].F = []float64{1.5, 2.5}
	b.SetLen(2)

	keys := []int{0, 1}
	h0 := HashRow(b, keys, 0)
	if h0 != HashRow(b, keys, 1) {
		t.Fatal("equal keys hash unequal")
	}
	buf := make([]byte, rc.Size(b, 0))
	rc.Encode(buf, b, 0)
	if rc.HashTuple(buf, keys) != h0 {
		t.Fatal("tuple hash differs from row hash")
	}
	if !rc.KeyEqualRow(buf, keys, b, keys, 1) {
		t.Fatal("KeyEqualRow false on equal keys")
	}
	buf2 := make([]byte, rc.Size(b, 1))
	rc.Encode(buf2, b, 1)
	if !rc.KeyEqual(buf, buf2, keys) {
		t.Fatal("KeyEqual false on equal keys")
	}
	if rc.KeyEqual(buf, buf2, []int{2}) {
		t.Fatal("KeyEqual true on differing float field")
	}
}

func TestHashRowNullGroupsTogether(t *testing.T) {
	s := NewSchema(ColumnDef{"k", Int64})
	b := NewBatch(s, 2)
	b.Cols[0].I = []int64{5, 9}
	b.Cols[0].Null = []bool{true, true}
	b.SetLen(2)
	if HashRow(b, []int{0}, 0) != HashRow(b, []int{0}, 1) {
		t.Fatal("NULL keys must hash equal for grouping")
	}
}

func TestRowCodecQuick(t *testing.T) {
	s := NewSchema(ColumnDef{"i", Int64}, ColumnDef{"f", Float64}, ColumnDef{"s1", String}, ColumnDef{"s2", String})
	rc := NewRowCodec(s.Types())
	f := func(i int64, fl float64, s1, s2 string) bool {
		if len(s1) > 5000 {
			s1 = s1[:5000]
		}
		if len(s2) > 5000 {
			s2 = s2[:5000]
		}
		b := NewBatch(s, 1)
		b.Cols[0].I = []int64{i}
		b.Cols[1].F = []float64{fl}
		b.Cols[2].S = []string{s1}
		b.Cols[3].S = []string{s2}
		b.SetLen(1)
		buf := make([]byte, rc.Size(b, 0))
		rc.Encode(buf, b, 0)
		return rc.Int(buf, 0) == i && rc.Float(buf, 1) == fl &&
			rc.Str(buf, 2) == s1 && rc.Str(buf, 3) == s2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestAppendRowFrom(t *testing.T) {
	s := testSchema()
	src := NewBatch(s, 2)
	fillRow(src, 1, 1.0, "a", 10, 0)
	fillRow(src, 2, 2.0, "b", 20, 1)
	dst := NewBatch(s, 2)
	dst.AppendRowFrom(src, 1)
	if dst.Len() != 1 || dst.Cols[0].I[0] != 2 || dst.Cols[2].S[0] != "b" {
		t.Fatal("AppendRowFrom copied wrong row")
	}
}

func TestBatchReset(t *testing.T) {
	s := testSchema()
	b := NewBatch(s, 2)
	fillRow(b, 1, 1.0, "a", 10, 0)
	b.Reset()
	if b.Len() != 0 || len(b.Cols[0].I) != 0 || len(b.Cols[2].S) != 0 {
		t.Fatal("Reset left data")
	}
}
