package data

import (
	"math"

	"github.com/spilly-db/spilly/internal/xhash"
)

// Hash seeds shared by the scalar (HashRow/HashTuple) and vectorized
// (HashColumns) paths — they must agree bit-for-bit, since Umami partition
// numbers and hash-table buckets are derived from these values on both
// sides of a spill.
const (
	hashSeed    = 0x517cc1b727220a95 // initial key-hash accumulator
	hashNullTag = 0x9e3779b97f4a7c15 // NULL fields hash to a fixed tag
	hashField   = 17                 // per-field seed
)

// HashColumns hashes the key columns of every live row of b
// column-at-a-time, appending one hash per live row to out (returned).
// It produces exactly the values HashRow would per row, but hoists the
// per-row type dispatch and null-bitmap checks out of the loop — the
// batch kernel behind join build/probe, aggregation, and window
// materialization.
func HashColumns(b *Batch, sel []int32, keyCols []int, out []uint64) []uint64 {
	n := b.n
	if sel != nil {
		n = len(sel)
	}
	base := len(out)
	for i := 0; i < n; i++ {
		out = append(out, hashSeed)
	}
	hs := out[base:]
	for _, col := range keyCols {
		c := &b.Cols[col]
		if c.Null != nil {
			// Null-aware slow lane (outer-join outputs only).
			for i := range hs {
				r := i
				if sel != nil {
					r = int(sel[i])
				}
				if c.Null[r] {
					hs[i] = xhash.Combine(hs[i], hashNullTag)
					continue
				}
				switch c.Type {
				case Float64:
					hs[i] = xhash.Combine(hs[i], xhash.U64(math.Float64bits(c.F[r]), hashField))
				case String:
					hs[i] = xhash.Combine(hs[i], xhash.String(c.S[r], hashField))
				default:
					hs[i] = xhash.Combine(hs[i], xhash.U64(uint64(c.I[r]), hashField))
				}
			}
			continue
		}
		switch c.Type {
		case Float64:
			if sel == nil {
				xhash.CombineF64s(hs, c.F[:n], hashField)
			} else {
				vals := c.F
				for i, r := range sel {
					hs[i] = xhash.Combine(hs[i], xhash.U64(math.Float64bits(vals[r]), hashField))
				}
			}
		case String:
			if sel == nil {
				xhash.CombineStrings(hs, c.S[:n], hashField)
			} else {
				vals := c.S
				for i, r := range sel {
					hs[i] = xhash.Combine(hs[i], xhash.String(vals[r], hashField))
				}
			}
		default:
			if sel == nil {
				xhash.CombineU64s(hs, c.I[:n], hashField)
			} else {
				vals := c.I
				for i, r := range sel {
					hs[i] = xhash.Combine(hs[i], xhash.U64(uint64(vals[r]), hashField))
				}
			}
		}
	}
	return out
}
