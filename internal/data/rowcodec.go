package data

import (
	"bytes"
	"encoding/binary"
	"math"
	"sync"

	"github.com/spilly-db/spilly/internal/xhash"
)

// varOffPool recycles EncodeAll's per-call variable-offset scratch.
var varOffPool = sync.Pool{New: func() any { s := make([]int, 0, 1024); return &s }}

// RowCodec serializes rows into the row-wise tuple format operators
// materialize through Umami. The layout gives O(1) field access:
//
//	[null bitmap, 1 bit per field, byte-rounded]
//	[8-byte slot per field: value, or (u32 offset | u32 len) for strings]
//	[string data]
//
// Offsets are relative to the row start, so a tuple is self-contained and
// can be copied, spilled, and read back byte-identically.
type RowCodec struct {
	types     []Type
	strFields []int // indices of String fields, in order
	nullBytes int
	fixedEnd  int // nullBytes + 8*len(types)
}

// NewRowCodec returns a codec for the given column types.
func NewRowCodec(types []Type) *RowCodec {
	nb := (len(types) + 7) / 8
	rc := &RowCodec{types: types, nullBytes: nb, fixedEnd: nb + 8*len(types)}
	for i, t := range types {
		if t == String {
			rc.strFields = append(rc.strFields, i)
		}
	}
	return rc
}

// Fields returns the number of fields per row.
func (rc *RowCodec) Fields() int { return len(rc.types) }

// Types returns the field types.
func (rc *RowCodec) Types() []Type { return rc.types }

// Size returns the encoded size of row r of b.
func (rc *RowCodec) Size(b *Batch, r int) int {
	n := rc.fixedEnd
	for i, t := range rc.types {
		if t == String {
			n += len(b.Cols[i].S[r])
		}
	}
	return n
}

// Encode writes row r of b into dst, which must be exactly Size(b, r)
// bytes (e.g. allocated in place on an Umami page).
func (rc *RowCodec) Encode(dst []byte, b *Batch, r int) {
	for i := 0; i < rc.nullBytes; i++ {
		dst[i] = 0
	}
	varOff := rc.fixedEnd
	for i, t := range rc.types {
		c := &b.Cols[i]
		slot := dst[rc.nullBytes+8*i:]
		if c.Null != nil && c.Null[r] {
			dst[i/8] |= 1 << uint(i%8)
		}
		switch t {
		case Float64:
			binary.LittleEndian.PutUint64(slot, math.Float64bits(c.F[r]))
		case String:
			s := c.S[r]
			binary.LittleEndian.PutUint32(slot, uint32(varOff))
			binary.LittleEndian.PutUint32(slot[4:], uint32(len(s)))
			copy(dst[varOff:], s)
			varOff += len(s)
		default:
			binary.LittleEndian.PutUint64(slot, uint64(c.I[r]))
		}
	}
}

// FixedSize returns the encoded tuple size when the codec has no string
// fields, in which case every tuple is the same width.
func (rc *RowCodec) FixedSize() (int, bool) {
	return rc.fixedEnd, len(rc.strFields) == 0
}

// SizeAll appends the encoded size of every live row of b to out
// (returned). For all-fixed schemas this is a constant fill; otherwise the
// per-row base cost is filled once and only string columns are walked —
// amortizing the per-row type loop Size performs.
func (rc *RowCodec) SizeAll(b *Batch, sel []int32, out []int) []int {
	n := b.n
	if sel != nil {
		n = len(sel)
	}
	base := len(out)
	for i := 0; i < n; i++ {
		out = append(out, rc.fixedEnd)
	}
	sizes := out[base:]
	for _, f := range rc.strFields {
		vals := b.Cols[f].S
		if sel == nil {
			for i := 0; i < n; i++ {
				sizes[i] += len(vals[i])
			}
		} else {
			for i, r := range sel {
				sizes[i] += len(vals[r])
			}
		}
	}
	return out
}

// EncodeAll encodes the live rows of b into dsts, one pre-allocated
// destination per live row (each exactly the corresponding SizeAll size,
// e.g. allocated in place on Umami pages). It is column-at-a-time: per
// column the type dispatch happens once and a tight loop writes all rows,
// where Encode re-dispatches per row.
func (rc *RowCodec) EncodeAll(dsts [][]byte, b *Batch, sel []int32) {
	n := b.n
	if sel != nil {
		n = len(sel)
	}
	if len(dsts) != n {
		panic("data: EncodeAll destination count mismatch")
	}
	for i := range dsts {
		for j := 0; j < rc.nullBytes; j++ {
			dsts[i][j] = 0
		}
	}
	// varOff tracks, per row, where the next string body lands; only
	// needed when the schema has string fields. The scratch comes from a
	// pool so batch-at-a-time encoding stays allocation-free.
	var varOffs []int
	var varOffsPtr *[]int
	if len(rc.strFields) > 0 {
		varOffsPtr = varOffPool.Get().(*[]int)
		varOffs = *varOffsPtr
		if cap(varOffs) < n {
			varOffs = make([]int, n)
		} else {
			varOffs = varOffs[:n]
		}
		for i := range varOffs {
			varOffs[i] = rc.fixedEnd
		}
		defer func() {
			*varOffsPtr = varOffs
			varOffPool.Put(varOffsPtr)
		}()
	}
	for f, t := range rc.types {
		c := &b.Cols[f]
		slotOff := rc.nullBytes + 8*f
		switch t {
		case Float64:
			vals := c.F
			for i := range dsts {
				r := i
				if sel != nil {
					r = int(sel[i])
				}
				binary.LittleEndian.PutUint64(dsts[i][slotOff:], math.Float64bits(vals[r]))
			}
		case String:
			vals := c.S
			for i := range dsts {
				r := i
				if sel != nil {
					r = int(sel[i])
				}
				s := vals[r]
				dst := dsts[i]
				binary.LittleEndian.PutUint32(dst[slotOff:], uint32(varOffs[i]))
				binary.LittleEndian.PutUint32(dst[slotOff+4:], uint32(len(s)))
				copy(dst[varOffs[i]:], s)
				varOffs[i] += len(s)
			}
		default:
			vals := c.I
			for i := range dsts {
				r := i
				if sel != nil {
					r = int(sel[i])
				}
				binary.LittleEndian.PutUint64(dsts[i][slotOff:], uint64(vals[r]))
			}
		}
		if c.Null != nil {
			for i := range dsts {
				r := i
				if sel != nil {
					r = int(sel[i])
				}
				if c.Null[r] {
					dsts[i][f/8] |= 1 << uint(f%8)
				}
			}
		}
	}
}

// IsNull reports whether field f of the tuple is NULL.
func (rc *RowCodec) IsNull(tuple []byte, f int) bool {
	return tuple[f/8]&(1<<uint(f%8)) != 0
}

// Int returns integer/date/bool field f.
func (rc *RowCodec) Int(tuple []byte, f int) int64 {
	return int64(binary.LittleEndian.Uint64(tuple[rc.nullBytes+8*f:]))
}

// Float returns float field f.
func (rc *RowCodec) Float(tuple []byte, f int) float64 {
	return math.Float64frombits(binary.LittleEndian.Uint64(tuple[rc.nullBytes+8*f:]))
}

// Str returns string field f as an owned copy (one allocation per call).
// Hot paths that only hash or compare the field use StrBytes instead.
func (rc *RowCodec) Str(tuple []byte, f int) string {
	return string(rc.StrBytes(tuple, f))
}

// StrBytes returns string field f as a view into the tuple — no copy, no
// allocation. The view is only valid while the tuple's backing page is
// alive; callers that store the value copy it first (Str or
// ByteArena.InternBytes).
func (rc *RowCodec) StrBytes(tuple []byte, f int) []byte {
	slot := tuple[rc.nullBytes+8*f:]
	off := binary.LittleEndian.Uint32(slot)
	n := binary.LittleEndian.Uint32(slot[4:])
	return tuple[off : off+n]
}

// AppendTo decodes the whole tuple onto the end of b, whose schema must
// match the codec's types. String fields are copied individually; the
// spill-restore paths use AppendToArena instead.
func (rc *RowCodec) AppendTo(b *Batch, tuple []byte) {
	rc.AppendToArena(b, tuple, nil)
}

// AppendToArena is AppendTo with string fields interned through the arena
// (when non-nil): the output owns its bytes without a per-field allocation,
// so the tuple's backing page can be recycled once the batch is emitted.
func (rc *RowCodec) AppendToArena(b *Batch, tuple []byte, arena *ByteArena) {
	for i, t := range rc.types {
		c := &b.Cols[i]
		null := rc.IsNull(tuple, i)
		switch t {
		case Float64:
			c.F = append(c.F, rc.Float(tuple, i))
		case String:
			if arena != nil {
				c.S = append(c.S, arena.InternBytes(rc.StrBytes(tuple, i)))
			} else {
				c.S = append(c.S, rc.Str(tuple, i))
			}
		default:
			c.I = append(c.I, rc.Int(tuple, i))
		}
		if null {
			if c.Null == nil {
				c.Null = make([]bool, b.n)
			}
		}
		if c.Null != nil {
			c.Null = append(c.Null, null)
		}
	}
	b.n++
}

// HashRow hashes the given key columns of row r (for hash tables and Umami
// partitioning). NULL fields hash to a fixed tag so NULL == NULL groups
// together in aggregations.
func HashRow(b *Batch, keyCols []int, r int) uint64 {
	h := uint64(hashSeed)
	for _, col := range keyCols {
		c := &b.Cols[col]
		if c.Null != nil && c.Null[r] {
			h = xhash.Combine(h, hashNullTag)
			continue
		}
		switch c.Type {
		case Float64:
			h = xhash.Combine(h, xhash.U64(math.Float64bits(c.F[r]), hashField))
		case String:
			h = xhash.Combine(h, xhash.String(c.S[r], hashField))
		default:
			h = xhash.Combine(h, xhash.U64(uint64(c.I[r]), hashField))
		}
	}
	return h
}

// HashTuple hashes the given key fields of an encoded tuple, consistently
// with HashRow over the same values.
func (rc *RowCodec) HashTuple(tuple []byte, keyFields []int) uint64 {
	h := uint64(hashSeed)
	for _, f := range keyFields {
		if rc.IsNull(tuple, f) {
			h = xhash.Combine(h, hashNullTag)
			continue
		}
		switch rc.types[f] {
		case Float64:
			h = xhash.Combine(h, xhash.U64(binary.LittleEndian.Uint64(tuple[rc.nullBytes+8*f:]), hashField))
		case String:
			h = xhash.Combine(h, xhash.Bytes(rc.StrBytes(tuple, f), hashField))
		default:
			h = xhash.Combine(h, xhash.U64(uint64(rc.Int(tuple, f)), hashField))
		}
	}
	return h
}

// KeyEqual reports whether the key fields of two encoded tuples are equal
// (NULLs compare equal for grouping purposes).
func (rc *RowCodec) KeyEqual(a, b []byte, keyFields []int) bool {
	for _, f := range keyFields {
		an, bn := rc.IsNull(a, f), rc.IsNull(b, f)
		if an != bn {
			return false
		}
		if an {
			continue
		}
		switch rc.types[f] {
		case String:
			if !bytes.Equal(rc.StrBytes(a, f), rc.StrBytes(b, f)) {
				return false
			}
		default:
			if rc.Int(a, f) != rc.Int(b, f) {
				return false
			}
		}
	}
	return true
}

// KeyEqualRow compares the key fields of an encoded tuple with key columns
// of a batch row.
func (rc *RowCodec) KeyEqualRow(tuple []byte, keyFields []int, b *Batch, keyCols []int, r int) bool {
	for i, f := range keyFields {
		c := &b.Cols[keyCols[i]]
		tn := rc.IsNull(tuple, f)
		bn := c.Null != nil && c.Null[r]
		if tn != bn {
			return false
		}
		if tn {
			continue
		}
		switch rc.types[f] {
		case Float64:
			if rc.Float(tuple, f) != c.F[r] {
				return false
			}
		case String:
			// The []byte→string conversion inside a comparison does not
			// allocate.
			if string(rc.StrBytes(tuple, f)) != c.S[r] {
				return false
			}
		default:
			if rc.Int(tuple, f) != c.I[r] {
				return false
			}
		}
	}
	return true
}
