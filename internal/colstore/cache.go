package colstore

import (
	"sync"
	"sync/atomic"

	"github.com/spilly-db/spilly/internal/nvmesim"
	"github.com/spilly-db/spilly/internal/xhash"
)

// cacheShards is the number of mutex stripes. Hot concurrent scans hit
// the cache from every worker of every query; one global mutex serialized
// them all, so the map is striped by Loc hash. Power of two so the shard
// pick is a mask, not a modulo.
const cacheShards = 16

// Cache is a block cache with random eviction, mirroring the buffer cache
// the paper adds to Spilly's scan operator for the hot-run comparison
// (§6.2: "a simple buffer cache using a random eviction policy"). Random
// eviction exploits Go's randomized map iteration order, applied within
// the shard the insert landed in — the policy the single-mutex version
// had, restricted to a 1/16th sample of the blocks, which is still a
// uniformly random victim over the shard's keys.
type Cache struct {
	shards [cacheShards]cacheShard
	// capacity is split evenly across shards so total fill stays bounded
	// without cross-shard accounting on the hot path. A side effect of
	// striping: the largest cacheable block shrank from capacity to
	// capacity/cacheShards (a block cannot span shards). Oversized counts
	// the Puts refused for exceeding that bound, so the shrinkage is
	// visible in CacheStats rather than silent.
	perShard  int64
	oversized atomic.Int64
}

// cacheShard is one stripe: a capacity-bounded map under its own mutex.
type cacheShard struct {
	mu     sync.Mutex
	used   int64
	blocks map[nvmesim.Loc][]byte
	hits   atomic.Int64
	misses atomic.Int64
	_      [40]byte // pad against false sharing between neighboring stripes
}

// cacheShardSeed salts the shard pick so it is independent of any other
// use of the Loc's hash.
const cacheShardSeed = 0xb10cca5e

// NewCache returns a cache holding up to capacity bytes, split evenly
// across 16 mutex-striped shards. Because a block lives entirely in one
// shard, the largest cacheable block is capacity/16; larger blocks are
// refused by Put and counted in CacheStats.Oversized.
func NewCache(capacity int64) *Cache {
	c := &Cache{perShard: capacity / cacheShards}
	for i := range c.shards {
		c.shards[i].blocks = make(map[nvmesim.Loc][]byte)
	}
	return c
}

func (c *Cache) shard(loc nvmesim.Loc) *cacheShard {
	return &c.shards[xhash.U64(uint64(loc), cacheShardSeed)&(cacheShards-1)]
}

// Get returns the cached block for loc, if present.
func (c *Cache) Get(loc nvmesim.Loc) ([]byte, bool) {
	s := c.shard(loc)
	s.mu.Lock()
	b, ok := s.blocks[loc]
	s.mu.Unlock()
	if ok {
		s.hits.Add(1)
	} else {
		s.misses.Add(1)
	}
	return b, ok
}

// Put inserts a block, evicting random victims from the block's shard if
// needed. Blocks larger than the per-shard capacity (total capacity / 16)
// are refused and counted in CacheStats.Oversized. The cache keeps a
// reference to buf; callers must not modify it afterwards.
func (c *Cache) Put(loc nvmesim.Loc, buf []byte) {
	if int64(len(buf)) > c.perShard {
		c.oversized.Add(1)
		return
	}
	s := c.shard(loc)
	s.mu.Lock()
	defer s.mu.Unlock()
	if old, ok := s.blocks[loc]; ok {
		s.used -= int64(len(old))
	}
	for s.used+int64(len(buf)) > c.perShard {
		evicted := false
		for k, v := range s.blocks { // random iteration order = random eviction
			delete(s.blocks, k)
			s.used -= int64(len(v))
			evicted = true
			break
		}
		if !evicted {
			break
		}
	}
	s.blocks[loc] = buf
	s.used += int64(len(buf))
}

// Clear empties the cache (cold runs clear the "OS page cache", §6.1).
func (c *Cache) Clear() {
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		s.blocks = make(map[nvmesim.Loc][]byte)
		s.used = 0
		s.mu.Unlock()
	}
}

// CacheStats is a snapshot of the buffer cache's counters and fill.
type CacheStats struct {
	Hits      int64
	Misses    int64
	Used      int64 // bytes currently cached
	Blocks    int64 // blocks currently cached
	Oversized int64 // Puts refused: block larger than per-shard capacity
}

// Stats returns hit/miss counters and current fill, summed over shards.
func (c *Cache) Stats() CacheStats {
	st := CacheStats{Oversized: c.oversized.Load()}
	for i := range c.shards {
		s := &c.shards[i]
		st.Hits += s.hits.Load()
		st.Misses += s.misses.Load()
		s.mu.Lock()
		st.Used += s.used
		st.Blocks += int64(len(s.blocks))
		s.mu.Unlock()
	}
	return st
}
