package colstore

import (
	"sync"

	"github.com/spilly-db/spilly/internal/nvmesim"
)

// Cache is a simple block cache with random eviction, mirroring the buffer
// cache the paper adds to Spilly's scan operator for the hot-run comparison
// (§6.2: "a simple buffer cache using a random eviction policy"). Random
// eviction exploits Go's randomized map iteration order.
type Cache struct {
	mu       sync.Mutex
	capacity int64
	used     int64
	blocks   map[nvmesim.Loc][]byte
	hits     int64
	misses   int64
}

// NewCache returns a cache holding up to capacity bytes.
func NewCache(capacity int64) *Cache {
	return &Cache{capacity: capacity, blocks: make(map[nvmesim.Loc][]byte)}
}

// Get returns the cached block for loc, if present.
func (c *Cache) Get(loc nvmesim.Loc) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	b, ok := c.blocks[loc]
	if ok {
		c.hits++
	} else {
		c.misses++
	}
	return b, ok
}

// Put inserts a block, evicting random victims if needed. The cache keeps a
// reference to buf; callers must not modify it afterwards.
func (c *Cache) Put(loc nvmesim.Loc, buf []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if int64(len(buf)) > c.capacity {
		return
	}
	if old, ok := c.blocks[loc]; ok {
		c.used -= int64(len(old))
	}
	for c.used+int64(len(buf)) > c.capacity {
		evicted := false
		for k, v := range c.blocks { // random iteration order = random eviction
			delete(c.blocks, k)
			c.used -= int64(len(v))
			evicted = true
			break
		}
		if !evicted {
			break
		}
	}
	c.blocks[loc] = buf
	c.used += int64(len(buf))
}

// Clear empties the cache (cold runs clear the "OS page cache", §6.1).
func (c *Cache) Clear() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.blocks = make(map[nvmesim.Loc][]byte)
	c.used = 0
}

// Stats returns hit/miss counters and current fill.
func (c *Cache) Stats() (hits, misses, used int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses, c.used
}
