// Package colstore implements the engine's columnar table storage (paper
// §5.2): tables are split into row groups (default 32k tuples, doubling as
// the morsel granularity), each column of a row group is encoded into one
// chunk, and chunks are striped across the SSDs of the NVMe array.
//
// Chunk encoding is a lightweight columnar scheme in the spirit of
// BtrBlocks, which the paper applies off the shelf: per chunk, the encoder
// trial-encodes a small family of schemes (raw, run-length, delta-varint,
// dictionary) and keeps the smallest — cheap, cache-friendly decoding with
// compression ratios comparable to general-purpose schemes on TPC-H data
// (the §5.2 table reports ~3×; see the sec52 experiment).
package colstore

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"github.com/spilly-db/spilly/internal/codec"
	"github.com/spilly-db/spilly/internal/data"
)

// ErrChunkCorrupt reports an undecodable chunk.
var ErrChunkCorrupt = errors.New("colstore: corrupt chunk")

// Chunk encoding schemes.
const (
	encRawInt byte = iota
	encRLEInt
	encDeltaInt
	encRawFloat
	encRLEFloat
	encRawStr
	encDictStr
	// encLZ4Str wraps the raw string layout in the engine's LZ4 codec —
	// the role FSST plays for string columns in real BtrBlocks.
	encLZ4Str
)

// encodeIntChunk encodes an int64 column chunk, picking the smallest of
// raw, RLE, and delta-varint.
func encodeIntChunk(dst []byte, vals []int64) []byte {
	rle := encodeRLEInt(nil, vals)
	delta := encodeDeltaInt(nil, vals)
	rawSize := 8 * len(vals)
	best, bestLen := byte(encRawInt), rawSize
	if len(rle) < bestLen {
		best, bestLen = encRLEInt, len(rle)
	}
	if len(delta) < bestLen {
		best, bestLen = encDeltaInt, len(delta)
	}
	_ = bestLen
	dst = append(dst, best)
	dst = binary.AppendUvarint(dst, uint64(len(vals)))
	switch best {
	case encRawInt:
		for _, v := range vals {
			dst = binary.LittleEndian.AppendUint64(dst, uint64(v))
		}
	case encRLEInt:
		dst = append(dst, rle...)
	case encDeltaInt:
		dst = append(dst, delta...)
	}
	return dst
}

func encodeRLEInt(dst []byte, vals []int64) []byte {
	for i := 0; i < len(vals); {
		j := i + 1
		for j < len(vals) && vals[j] == vals[i] {
			j++
		}
		dst = binary.AppendVarint(dst, vals[i])
		dst = binary.AppendUvarint(dst, uint64(j-i))
		i = j
	}
	return dst
}

func encodeDeltaInt(dst []byte, vals []int64) []byte {
	prev := int64(0)
	for _, v := range vals {
		dst = binary.AppendVarint(dst, v-prev)
		prev = v
	}
	return dst
}

// encodeFloatChunk encodes a float64 column chunk (raw or RLE).
func encodeFloatChunk(dst []byte, vals []float64) []byte {
	// Count runs to decide cheaply whether RLE pays off.
	runs := 0
	for i := 0; i < len(vals); {
		j := i + 1
		for j < len(vals) && vals[j] == vals[i] {
			j++
		}
		runs++
		i = j
	}
	scheme := byte(encRawFloat)
	if runs*16 < len(vals)*8 {
		scheme = encRLEFloat
	}
	dst = append(dst, scheme)
	dst = binary.AppendUvarint(dst, uint64(len(vals)))
	if scheme == encRawFloat {
		for _, v := range vals {
			dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(v))
		}
		return dst
	}
	for i := 0; i < len(vals); {
		j := i + 1
		for j < len(vals) && vals[j] == vals[i] {
			j++
		}
		dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(vals[i]))
		dst = binary.AppendUvarint(dst, uint64(j-i))
		i = j
	}
	return dst
}

// encodeStrChunk encodes a string column chunk (raw or dictionary).
func encodeStrChunk(dst []byte, vals []string) []byte {
	dict := make(map[string]int)
	for _, v := range vals {
		if _, ok := dict[v]; !ok {
			dict[v] = len(dict)
		}
		if len(dict) > len(vals)/2 {
			dict = nil
			break
		}
	}
	if dict != nil && len(vals) > 0 {
		dst = append(dst, encDictStr)
		dst = binary.AppendUvarint(dst, uint64(len(vals)))
		dst = binary.AppendUvarint(dst, uint64(len(dict)))
		// Dictionary entries in first-seen (= code) order.
		ordered := make([]string, len(dict))
		for s, code := range dict {
			ordered[code] = s
		}
		for _, s := range ordered {
			dst = binary.AppendUvarint(dst, uint64(len(s)))
			dst = append(dst, s...)
		}
		for _, v := range vals {
			dst = binary.AppendUvarint(dst, uint64(dict[v]))
		}
		return dst
	}
	// Raw layout, then try the LZ4 wrap and keep the smaller form.
	body := make([]byte, 0, 16*len(vals))
	for _, v := range vals {
		body = binary.AppendUvarint(body, uint64(len(v)))
		body = append(body, v...)
	}
	comp := codec.ByID(codec.LZ4Default).Compress(nil, body)
	if len(comp) < len(body)*9/10 {
		dst = append(dst, encLZ4Str)
		dst = binary.AppendUvarint(dst, uint64(len(vals)))
		return append(dst, comp...)
	}
	dst = append(dst, encRawStr)
	dst = binary.AppendUvarint(dst, uint64(len(vals)))
	return append(dst, body...)
}

// EncodeChunk encodes one column chunk of the given type.
func EncodeChunk(dst []byte, c *data.Column, lo, hi int) []byte {
	switch c.Type {
	case data.Float64:
		return encodeFloatChunk(dst, c.F[lo:hi])
	case data.String:
		return encodeStrChunk(dst, c.S[lo:hi])
	default:
		return encodeIntChunk(dst, c.I[lo:hi])
	}
}

// DecodeChunk decodes a chunk into the column (appending), returning the
// number of values.
func DecodeChunk(c *data.Column, chunk []byte) (int, error) {
	if len(chunk) < 2 {
		return 0, ErrChunkCorrupt
	}
	scheme := chunk[0]
	body := chunk[1:]
	count, k := binary.Uvarint(body)
	if k <= 0 {
		return 0, ErrChunkCorrupt
	}
	body = body[k:]
	n := int(count)
	switch scheme {
	case encRawInt:
		if len(body) < 8*n {
			return 0, ErrChunkCorrupt
		}
		for i := 0; i < n; i++ {
			c.I = append(c.I, int64(binary.LittleEndian.Uint64(body[8*i:])))
		}
	case encRLEInt:
		got := 0
		for got < n {
			v, k1 := binary.Varint(body)
			if k1 <= 0 {
				return 0, ErrChunkCorrupt
			}
			body = body[k1:]
			run, k2 := binary.Uvarint(body)
			if k2 <= 0 || got+int(run) > n {
				return 0, ErrChunkCorrupt
			}
			body = body[k2:]
			for i := 0; i < int(run); i++ {
				c.I = append(c.I, v)
			}
			got += int(run)
		}
	case encDeltaInt:
		prev := int64(0)
		for i := 0; i < n; i++ {
			d, k1 := binary.Varint(body)
			if k1 <= 0 {
				return 0, ErrChunkCorrupt
			}
			body = body[k1:]
			prev += d
			c.I = append(c.I, prev)
		}
	case encRawFloat:
		if len(body) < 8*n {
			return 0, ErrChunkCorrupt
		}
		for i := 0; i < n; i++ {
			c.F = append(c.F, math.Float64frombits(binary.LittleEndian.Uint64(body[8*i:])))
		}
	case encRLEFloat:
		got := 0
		for got < n {
			if len(body) < 8 {
				return 0, ErrChunkCorrupt
			}
			v := math.Float64frombits(binary.LittleEndian.Uint64(body))
			body = body[8:]
			run, k2 := binary.Uvarint(body)
			if k2 <= 0 || got+int(run) > n {
				return 0, ErrChunkCorrupt
			}
			body = body[k2:]
			for i := 0; i < int(run); i++ {
				c.F = append(c.F, v)
			}
			got += int(run)
		}
	case encRawStr, encLZ4Str:
		if scheme == encLZ4Str {
			dec, err := codec.ByID(codec.LZ4Default).Decompress(nil, body)
			if err != nil {
				return 0, fmt.Errorf("%w: %v", ErrChunkCorrupt, err)
			}
			body = dec
		}
		for i := 0; i < n; i++ {
			l, k1 := binary.Uvarint(body)
			if k1 <= 0 || int(l) > len(body)-k1 {
				return 0, ErrChunkCorrupt
			}
			body = body[k1:]
			c.S = append(c.S, string(body[:l]))
			body = body[l:]
		}
	case encDictStr:
		dictLen, k1 := binary.Uvarint(body)
		if k1 <= 0 {
			return 0, ErrChunkCorrupt
		}
		body = body[k1:]
		dict := make([]string, dictLen)
		for i := range dict {
			l, k2 := binary.Uvarint(body)
			if k2 <= 0 || int(l) > len(body)-k2 {
				return 0, ErrChunkCorrupt
			}
			body = body[k2:]
			dict[i] = string(body[:l])
			body = body[l:]
		}
		for i := 0; i < n; i++ {
			code, k2 := binary.Uvarint(body)
			if k2 <= 0 || code >= dictLen {
				return 0, ErrChunkCorrupt
			}
			body = body[k2:]
			c.S = append(c.S, dict[code])
		}
	default:
		return 0, fmt.Errorf("%w: unknown scheme %d", ErrChunkCorrupt, scheme)
	}
	return n, nil
}
