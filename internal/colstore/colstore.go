package colstore

import (
	"fmt"
	"sync/atomic"

	"github.com/spilly-db/spilly/internal/data"
	"github.com/spilly-db/spilly/internal/nvmesim"
	"github.com/spilly-db/spilly/internal/uring"
)

// DefaultRowGroupSize is the number of tuples per row group; the paper
// sizes row groups at 32k tuples and uses them as the morsel unit (§5.2).
const DefaultRowGroupSize = 32 * 1024

// Table is a scannable table: in memory (MemTable) or on the NVMe array
// (DiskTable). Readers share a group cursor, which is exactly the
// morsel-stealing mechanism of morsel-driven parallelism.
type Table interface {
	Name() string
	// ID is a process-unique identity for this table snapshot.
	// Re-registering a table under the same name yields a new snapshot
	// with a new ID, so plan fingerprints taken over different snapshots
	// never alias each other in the result cache.
	ID() uint64
	Schema() *data.Schema
	Rows() int64
	Groups() int
	GroupRows(g int) int
	// NewReader returns a per-worker reader over the projected columns.
	// All readers sharing cursor collectively scan each group once.
	NewReader(proj []int, cursor *atomic.Int64) Reader
}

// Reader yields row groups as batches. Next fills b (after resetting it)
// and returns the number of rows, or 0 at end of table.
type Reader interface {
	Next(b *data.Batch) (int, error)
}

// ScanOpts carries per-scan reader options. The zero value falls back to
// the store-level defaults (SetScanDepth) for every field.
type ScanOpts struct {
	// Query is the fairness key scan reads carry into the shared I/O
	// scheduler, so one query's scan flood cannot crowd out another's.
	Query uint64
	// Depth bounds the row groups each reader keeps in flight
	// (0 = the store's scan depth, itself defaulted to DefaultScanDepth).
	Depth int
}

// OptsTable is implemented by tables whose readers accept per-scan options;
// executors type-assert for it and fall back to NewReader otherwise.
type OptsTable interface {
	Table
	NewReaderOpts(proj []int, cursor *atomic.Int64, opts ScanOpts) Reader
}

// MemTable is a fully in-memory columnar table.
type MemTable struct {
	name      string
	id        uint64
	schema    *data.Schema
	cols      []data.Column
	rows      int
	groupSize int
}

// tableIDs issues process-unique snapshot identities (Table.ID).
var tableIDs atomic.Uint64

// NewMemTable returns an empty in-memory table. groupSize <= 0 selects the
// default row group size.
func NewMemTable(name string, schema *data.Schema, groupSize int) *MemTable {
	if groupSize <= 0 {
		groupSize = DefaultRowGroupSize
	}
	t := &MemTable{name: name, id: tableIDs.Add(1), schema: schema, groupSize: groupSize, cols: make([]data.Column, schema.Len())}
	for i, c := range schema.Cols {
		t.cols[i].Type = c.Type
	}
	return t
}

// Append bulk-loads the rows of b, whose schema must match.
func (t *MemTable) Append(b *data.Batch) {
	for i := range t.cols {
		src := &b.Cols[i]
		dst := &t.cols[i]
		switch dst.Type {
		case data.Float64:
			dst.F = append(dst.F, src.F...)
		case data.String:
			dst.S = append(dst.S, src.S...)
		default:
			dst.I = append(dst.I, src.I...)
		}
	}
	t.rows += b.Len()
}

// Name implements Table.
func (t *MemTable) Name() string { return t.name }

// ID implements Table.
func (t *MemTable) ID() uint64 { return t.id }

// Schema implements Table.
func (t *MemTable) Schema() *data.Schema { return t.schema }

// Rows implements Table.
func (t *MemTable) Rows() int64 { return int64(t.rows) }

// Groups implements Table.
func (t *MemTable) Groups() int {
	return (t.rows + t.groupSize - 1) / t.groupSize
}

// GroupRows implements Table.
func (t *MemTable) GroupRows(g int) int {
	lo := g * t.groupSize
	hi := lo + t.groupSize
	if hi > t.rows {
		hi = t.rows
	}
	if hi < lo {
		return 0
	}
	return hi - lo
}

// Column exposes the backing column (read-only) for direct inspection.
func (t *MemTable) Column(i int) *data.Column { return &t.cols[i] }

// NewReader implements Table. In-memory readers alias table storage —
// parallel in-memory scans are pointer dereferences, as the paper notes.
func (t *MemTable) NewReader(proj []int, cursor *atomic.Int64) Reader {
	return &memReader{t: t, proj: proj, cursor: cursor}
}

// NewReaderOpts implements OptsTable; in-memory scans do no I/O, so the
// options are irrelevant and it simply delegates to NewReader.
func (t *MemTable) NewReaderOpts(proj []int, cursor *atomic.Int64, _ ScanOpts) Reader {
	return t.NewReader(proj, cursor)
}

type memReader struct {
	t      *MemTable
	proj   []int
	cursor *atomic.Int64
}

func (r *memReader) Next(b *data.Batch) (int, error) {
	g := int(r.cursor.Add(1) - 1)
	if g >= r.t.Groups() {
		return 0, nil
	}
	lo := g * r.t.groupSize
	hi := lo + r.t.GroupRows(g)
	b.Reset()
	for i, col := range r.proj {
		src := &r.t.cols[col]
		dst := &b.Cols[i]
		switch src.Type {
		case data.Float64:
			dst.F = src.F[lo:hi]
		case data.String:
			dst.S = src.S[lo:hi]
		default:
			dst.I = src.I[lo:hi]
		}
	}
	b.SetLen(hi - lo)
	return hi - lo, nil
}

// ChunkRef locates one encoded column chunk on the array.
type ChunkRef struct {
	Loc nvmesim.Loc
	Len int32 // encoded byte length (Loc.Size() is block-aligned)
}

type diskGroup struct {
	rows   int
	chunks []ChunkRef // one per column
}

// Store manages tables resident on an NVMe array, with an optional buffer
// cache (§6.1: the comparison systems cache data in memory for hot runs;
// Spilly gets a simple cache with random eviction for parity).
type Store struct {
	arr   *nvmesim.Array
	cache *Cache

	// sched, when set, routes every table read and write through the
	// engine's shared I/O scheduler: scans as prefetch-class (promoted to
	// demand when a worker blocks), bulk loads as background-class.
	sched uring.Dispatcher
	// scanDepth is the default per-reader group lookahead (0 = DefaultScanDepth).
	scanDepth int
}

// NewStore returns a store over the array. cache may be nil (always-cold
// scans).
func NewStore(arr *nvmesim.Array, cache *Cache) *Store {
	return &Store{arr: arr, cache: cache}
}

// Array returns the underlying NVMe array.
func (s *Store) Array() *nvmesim.Array { return s.arr }

// Cache returns the store's buffer cache, or nil.
func (s *Store) Cache() *Cache { return s.cache }

// SetIOSched routes the store's I/O through the given shared dispatcher
// (nil = private rings). Set once at engine start, before any reads.
func (s *Store) SetIOSched(d uring.Dispatcher) { s.sched = d }

// SetScanDepth sets the default per-reader group lookahead for external
// scans (<= 0 restores DefaultScanDepth).
func (s *Store) SetScanDepth(n int) { s.scanDepth = n }

// DiskTable is a table stored as encoded column chunks on the array.
type DiskTable struct {
	name      string
	id        uint64
	schema    *data.Schema
	rows      int64
	groupSize int
	groups    []diskGroup
	store     *Store
	rawBytes  int64 // uncompressed size, for the §5.2 ratio
	encBytes  int64
}

// WriteTable encodes mt's row groups and stripes the chunks across the
// array's devices in round-robin order (§5.2 "data layout optimized for
// NVMe arrays": maximizing single-column scan throughput requires
// distributing each column across SSDs).
func (s *Store) WriteTable(mt *MemTable) (*DiskTable, error) {
	dt := &DiskTable{
		name:      mt.name,
		id:        tableIDs.Add(1),
		schema:    mt.schema,
		rows:      int64(mt.rows),
		groupSize: mt.groupSize,
		store:     s,
	}
	ring := uring.New(s.arr)
	// Bulk loads are background-class under the shared scheduler: they
	// must not crowd out a running query's demand reads.
	ring.Bind(s.sched, uring.ClassBackground, 0)
	devs := s.arr.Devices()
	chunkNo := 0
	type pendingWrite struct {
		group, col int
	}
	pend := map[uint64]pendingWrite{}
	var ud uint64
	for g := 0; g < mt.Groups(); g++ {
		lo := g * mt.groupSize
		rows := mt.GroupRows(g)
		dg := diskGroup{rows: rows, chunks: make([]ChunkRef, mt.schema.Len())}
		for col := range mt.cols {
			enc := EncodeChunk(nil, &mt.cols[col], lo, lo+rows)
			dt.encBytes += int64(len(enc))
			dt.rawBytes += rawColumnBytes(&mt.cols[col], lo, lo+rows)
			ud++
			loc, err := ring.QueueWriteDev(chunkNo%devs, enc, ud)
			if err != nil {
				return nil, fmt.Errorf("colstore: writing %s group %d col %d: %w", mt.name, g, col, err)
			}
			pend[ud] = pendingWrite{g, col}
			dg.chunks[col] = ChunkRef{Loc: loc, Len: int32(len(enc))}
			chunkNo++
		}
		dt.groups = append(dt.groups, dg)
	}
	for _, c := range ring.WaitAll(nil) {
		if c.Err != nil {
			pw := pend[c.UserData]
			return nil, fmt.Errorf("colstore: writing %s group %d col %d: %w", mt.name, pw.group, pw.col, c.Err)
		}
	}
	return dt, nil
}

func rawColumnBytes(c *data.Column, lo, hi int) int64 {
	if c.Type == data.String {
		var n int64
		for _, s := range c.S[lo:hi] {
			n += int64(len(s)) + 4
		}
		return n
	}
	return int64(8 * (hi - lo))
}

// Name implements Table.
func (t *DiskTable) Name() string { return t.name }

// ID implements Table.
func (t *DiskTable) ID() uint64 { return t.id }

// Schema implements Table.
func (t *DiskTable) Schema() *data.Schema { return t.schema }

// Rows implements Table.
func (t *DiskTable) Rows() int64 { return t.rows }

// Groups implements Table.
func (t *DiskTable) Groups() int { return len(t.groups) }

// GroupRows implements Table.
func (t *DiskTable) GroupRows(g int) int { return t.groups[g].rows }

// CompressionRatio returns raw bytes / encoded bytes (§5.2 table).
func (t *DiskTable) CompressionRatio() float64 {
	if t.encBytes == 0 {
		return 1
	}
	return float64(t.rawBytes) / float64(t.encBytes)
}

// EncodedBytes returns the table's on-array size.
func (t *DiskTable) EncodedBytes() int64 { return t.encBytes }

// RawBytes returns the table's uncompressed size.
func (t *DiskTable) RawBytes() int64 { return t.rawBytes }
