package colstore

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
	"time"

	"github.com/spilly-db/spilly/internal/data"
	"github.com/spilly-db/spilly/internal/iosched"
	"github.com/spilly-db/spilly/internal/nvmesim"
)

func testArray() *nvmesim.Array {
	return nvmesim.New(4, nvmesim.DeviceSpec{
		ReadBandwidth:  4e9,
		WriteBandwidth: 2e9,
		Latency:        10 * time.Microsecond,
	}, nvmesim.RealClock{})
}

func buildTable(t *testing.T, rows, groupSize int) *MemTable {
	t.Helper()
	schema := data.NewSchema(
		data.ColumnDef{Name: "id", Type: data.Int64},
		data.ColumnDef{Name: "qty", Type: data.Int64},
		data.ColumnDef{Name: "price", Type: data.Float64},
		data.ColumnDef{Name: "flag", Type: data.String},
		data.ColumnDef{Name: "comment", Type: data.String},
	)
	mt := NewMemTable("test", schema, groupSize)
	b := data.NewBatch(schema, rows)
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < rows; i++ {
		b.Cols[0].I = append(b.Cols[0].I, int64(i))          // delta-friendly
		b.Cols[1].I = append(b.Cols[1].I, int64(i%5))        // rle-friendly-ish
		b.Cols[2].F = append(b.Cols[2].F, float64(i)*1.5)    // raw floats
		b.Cols[3].S = append(b.Cols[3].S, []string{"A", "N", "R"}[i%3]) // dict
		b.Cols[4].S = append(b.Cols[4].S, fmt.Sprintf("comment-%d-%d", i, rng.Intn(100)))
	}
	b.SetLen(rows)
	mt.Append(b)
	return mt
}

func scanAll(t *testing.T, tbl Table, proj []int, workers int) []*data.Batch {
	t.Helper()
	var cursor atomic.Int64
	var mu sync.Mutex
	var out []*data.Batch
	var wg sync.WaitGroup
	schema := &data.Schema{}
	for _, c := range proj {
		schema.Cols = append(schema.Cols, tbl.Schema().Cols[c])
	}
	errs := make([]error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			r := tbl.NewReader(proj, &cursor)
			for {
				b := data.NewBatch(schema, 0)
				n, err := r.Next(b)
				if err != nil {
					errs[w] = err
					return
				}
				if n == 0 {
					return
				}
				mu.Lock()
				out = append(out, b)
				mu.Unlock()
			}
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	return out
}

func checkScan(t *testing.T, batches []*data.Batch, rows int) {
	t.Helper()
	seen := map[int64]bool{}
	total := 0
	for _, b := range batches {
		total += b.Len()
		for r := 0; r < b.Len(); r++ {
			id := b.Cols[0].I[r]
			if seen[id] {
				t.Fatalf("row %d scanned twice", id)
			}
			seen[id] = true
			if b.Cols[1].I[r] != id%5 {
				t.Fatalf("row %d qty mismatch", id)
			}
			if b.Cols[2].F[r] != float64(id)*1.5 {
				t.Fatalf("row %d price mismatch", id)
			}
			if want := []string{"A", "N", "R"}[id%3]; b.Cols[3].S[r] != want {
				t.Fatalf("row %d flag %q want %q", id, b.Cols[3].S[r], want)
			}
		}
	}
	if total != rows {
		t.Fatalf("scanned %d rows, want %d", total, rows)
	}
}

func TestMemTableScan(t *testing.T) {
	mt := buildTable(t, 10000, 1024)
	if mt.Groups() != 10 {
		t.Fatalf("Groups = %d", mt.Groups())
	}
	checkScan(t, scanAll(t, mt, []int{0, 1, 2, 3, 4}, 3), 10000)
}

func TestDiskTableScan(t *testing.T) {
	mt := buildTable(t, 10000, 1024)
	store := NewStore(testArray(), nil)
	dt, err := store.WriteTable(mt)
	if err != nil {
		t.Fatal(err)
	}
	if dt.Rows() != 10000 || dt.Groups() != 10 {
		t.Fatalf("disk table shape: rows=%d groups=%d", dt.Rows(), dt.Groups())
	}
	checkScan(t, scanAll(t, dt, []int{0, 1, 2, 3, 4}, 3), 10000)
}

func TestDiskTableProjection(t *testing.T) {
	mt := buildTable(t, 5000, 512)
	store := NewStore(testArray(), nil)
	dt, err := store.WriteTable(mt)
	if err != nil {
		t.Fatal(err)
	}
	// Project only id and flag; column order in the batch follows proj.
	batches := scanAll(t, dt, []int{0, 3}, 2)
	total := 0
	for _, b := range batches {
		total += b.Len()
		for r := 0; r < b.Len(); r++ {
			id := b.Cols[0].I[r]
			if want := []string{"A", "N", "R"}[id%3]; b.Cols[1].S[r] != want {
				t.Fatalf("projection mismatch at id %d", id)
			}
		}
	}
	if total != 5000 {
		t.Fatalf("scanned %d rows", total)
	}
}

func TestCompressionRatio(t *testing.T) {
	mt := buildTable(t, 20000, 4096)
	store := NewStore(testArray(), nil)
	dt, err := store.WriteTable(mt)
	if err != nil {
		t.Fatal(err)
	}
	if r := dt.CompressionRatio(); r < 1.5 {
		t.Fatalf("compression ratio %.2f, want >= 1.5 (§5.2 reports ~3x)", r)
	}
}

func TestChunksStripedAcrossDevices(t *testing.T) {
	mt := buildTable(t, 10000, 1024)
	store := NewStore(testArray(), nil)
	dt, err := store.WriteTable(mt)
	if err != nil {
		t.Fatal(err)
	}
	devs := map[int]int{}
	for _, g := range dt.groups {
		for _, c := range g.chunks {
			devs[c.Loc.Device()]++
		}
	}
	if len(devs) != 4 {
		t.Fatalf("chunks landed on %d of 4 devices: %v", len(devs), devs)
	}
}

func TestBufferCache(t *testing.T) {
	mt := buildTable(t, 5000, 512)
	cache := NewCache(64 << 20)
	store := NewStore(testArray(), cache)
	dt, err := store.WriteTable(mt)
	if err != nil {
		t.Fatal(err)
	}
	checkScan(t, scanAll(t, dt, []int{0, 1, 2, 3, 4}, 2), 5000)
	misses1 := cache.Stats().Misses
	before := store.Array().Stats().BytesRead
	checkScan(t, scanAll(t, dt, []int{0, 1, 2, 3, 4}, 2), 5000)
	s2 := cache.Stats()
	if s2.Misses != misses1 {
		t.Fatalf("hot scan missed the cache: %d -> %d misses", misses1, s2.Misses)
	}
	if s2.Hits == 0 {
		t.Fatal("hot scan recorded no cache hits")
	}
	if got := store.Array().Stats().BytesRead; got != before {
		t.Fatalf("hot scan read %d bytes from the array", got-before)
	}
	cache.Clear()
	checkScan(t, scanAll(t, dt, []int{0, 1, 2, 3, 4}, 2), 5000)
	if got := store.Array().Stats().BytesRead; got == before {
		t.Fatal("cold scan after Clear did not hit the array")
	}
}

func TestCacheEviction(t *testing.T) {
	c := NewCache(16 << 10) // 1 KiB per shard
	for i := 0; i < 200; i++ {
		c.Put(nvmesim.MakeLoc(0, int64(i)*512, 512), make([]byte, 300))
	}
	if used := c.Stats().Used; used > 16<<10 {
		t.Fatalf("cache over capacity: %d", used)
	}
	// A block larger than a shard's capacity is not cached, and the
	// refusal is counted so the per-shard bound is observable.
	c.Put(nvmesim.MakeLoc(1, 0, 512), make([]byte, 2000))
	if _, ok := c.Get(nvmesim.MakeLoc(1, 0, 512)); ok {
		t.Fatal("oversized block was cached")
	}
	if n := c.Stats().Oversized; n != 1 {
		t.Fatalf("Oversized = %d, want 1", n)
	}
}

// TestCacheConcurrent hammers the sharded cache from many goroutines
// (run under -race to verify the striping).
func TestCacheConcurrent(t *testing.T) {
	c := NewCache(1 << 20)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				loc := nvmesim.MakeLoc(w%4, int64(i)*512, 512)
				if i%2 == 0 {
					c.Put(loc, make([]byte, 256))
				} else {
					c.Get(loc)
				}
			}
		}(w)
	}
	wg.Wait()
	s := c.Stats()
	if s.Hits+s.Misses == 0 {
		t.Fatal("no lookups recorded")
	}
	c.Clear()
	if s := c.Stats(); s.Used != 0 || s.Blocks != 0 {
		t.Fatalf("Clear left %d bytes / %d blocks", s.Used, s.Blocks)
	}
}

func TestReadErrorSurfaces(t *testing.T) {
	mt := buildTable(t, 5000, 512)
	arr := testArray()
	store := NewStore(arr, nil)
	dt, err := store.WriteTable(mt)
	if err != nil {
		t.Fatal(err)
	}
	for d := 0; d < 4; d++ {
		arr.InjectFailures(d, 1000)
	}
	var cursor atomic.Int64
	r := dt.NewReader([]int{0}, &cursor)
	b := data.NewBatch(data.NewSchema(data.ColumnDef{Name: "id", Type: data.Int64}), 0)
	if _, err := r.Next(b); err == nil {
		t.Fatal("injected read failure did not surface")
	}
}

// TestReadErrorStickyAndDrained: after a failed group read the error is
// sticky, the reader's ring is quiesced, and no buffers stay referenced —
// the regression test for the error path leaking in-flight reads.
func TestReadErrorStickyAndDrained(t *testing.T) {
	mt := buildTable(t, 5000, 512)
	arr := testArray()
	store := NewStore(arr, nil)
	dt, err := store.WriteTable(mt)
	if err != nil {
		t.Fatal(err)
	}
	for d := 0; d < 4; d++ {
		arr.InjectFailures(d, 1000)
	}
	var cursor atomic.Int64
	r := dt.NewReader([]int{0, 1, 2}, &cursor).(*diskReader)
	b := data.NewBatch(data.NewSchema(
		data.ColumnDef{Name: "id", Type: data.Int64},
		data.ColumnDef{Name: "qty", Type: data.Int64},
		data.ColumnDef{Name: "price", Type: data.Float64},
	), 0)
	_, err = r.Next(b)
	if err == nil {
		t.Fatal("injected read failure did not surface")
	}
	if _, err2 := r.Next(b); err2 != err {
		t.Fatalf("error not sticky: first %v, then %v", err, err2)
	}
	if n := r.ring.Outstanding(); n != 0 {
		t.Fatalf("%d reads still outstanding after failure", n)
	}
	if len(r.pending) != 0 || len(r.inflight) != 0 {
		t.Fatalf("failed reader still references %d pending / %d inflight groups",
			len(r.pending), len(r.inflight))
	}
}

// TestReaderCloseIdempotent: Close quiesces a mid-scan reader's I/O, is
// safe to call twice, and a later Next reports end of stream.
func TestReaderCloseIdempotent(t *testing.T) {
	mt := buildTable(t, 5000, 512)
	store := NewStore(testArray(), nil)
	dt, err := store.WriteTable(mt)
	if err != nil {
		t.Fatal(err)
	}
	var cursor atomic.Int64
	r := dt.NewReader([]int{0}, &cursor).(*diskReader)
	b := data.NewBatch(data.NewSchema(data.ColumnDef{Name: "id", Type: data.Int64}), 0)
	if _, err := r.Next(b); err != nil { // leaves lookahead groups in flight
		t.Fatal(err)
	}
	r.Close()
	r.Close()
	if n := r.ring.Outstanding(); n != 0 {
		t.Fatalf("%d reads still outstanding after Close", n)
	}
	if n, err := r.Next(b); n != 0 || err != nil {
		t.Fatalf("Next after Close = (%d, %v), want (0, nil)", n, err)
	}
}

// TestReadErrorUnderSharedScheduler: when scan reads route through the
// shared I/O scheduler, the error path must also cancel the reads still
// deferred in the scheduler's queues.
func TestReadErrorUnderSharedScheduler(t *testing.T) {
	mt := buildTable(t, 20000, 512)
	arr := testArray()
	store := NewStore(arr, nil)
	sched := iosched.New(arr, iosched.Config{DepthTarget: 2})
	store.SetIOSched(sched)
	dt, err := store.WriteTable(mt)
	if err != nil {
		t.Fatal(err)
	}
	for d := 0; d < 4; d++ {
		arr.InjectFailures(d, 10000)
	}
	var cursor atomic.Int64
	r := dt.NewReaderOpts([]int{0, 1, 2, 3, 4}, &cursor, ScanOpts{Query: 7, Depth: 8}).(*diskReader)
	b := data.NewBatch(mt.Schema(), 0)
	if _, err := r.Next(b); err == nil {
		t.Fatal("injected read failure did not surface")
	}
	if n := r.ring.Outstanding(); n != 0 {
		t.Fatalf("%d reads still outstanding after failure", n)
	}
	st := sched.Stats()
	if st.Queued != 0 {
		t.Fatalf("%d reads still deferred in the shared scheduler", st.Queued)
	}
}

func TestChunkRoundTripQuick(t *testing.T) {
	fInt := func(vals []int64) bool {
		col := data.Column{Type: data.Int64, I: vals}
		enc := EncodeChunk(nil, &col, 0, len(vals))
		var out data.Column
		n, err := DecodeChunk(&out, enc)
		if err != nil || n != len(vals) {
			return false
		}
		for i, v := range vals {
			if out.I[i] != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(fInt, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
	fStr := func(vals []string) bool {
		col := data.Column{Type: data.String, S: vals}
		enc := EncodeChunk(nil, &col, 0, len(vals))
		var out data.Column
		n, err := DecodeChunk(&out, enc)
		if err != nil || n != len(vals) {
			return false
		}
		for i, v := range vals {
			if out.S[i] != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(fStr, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
	fFloat := func(vals []float64) bool {
		col := data.Column{Type: data.Float64, F: vals}
		enc := EncodeChunk(nil, &col, 0, len(vals))
		var out data.Column
		n, err := DecodeChunk(&out, enc)
		if err != nil || n != len(vals) {
			return false
		}
		for i, v := range vals {
			if out.F[i] != v && !(v != v && out.F[i] != out.F[i]) { // NaN-safe
				return false
			}
		}
		return true
	}
	if err := quick.Check(fFloat, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeChunkRejectsCorrupt(t *testing.T) {
	col := data.Column{Type: data.Int64, I: []int64{1, 2, 3, 4, 5}}
	enc := EncodeChunk(nil, &col, 0, 5)
	for cut := 0; cut < len(enc); cut++ {
		var out data.Column
		if _, err := DecodeChunk(&out, enc[:cut]); err == nil && cut < len(enc) {
			// Some truncations of varint streams can decode fewer values
			// without error detection at this layer; the reader catches
			// those via the row-count check. Only the header must fail.
			if cut < 2 {
				t.Fatalf("truncation to %d decoded without error", cut)
			}
		}
	}
	var out data.Column
	if _, err := DecodeChunk(&out, []byte{99, 5}); err == nil {
		t.Fatal("unknown scheme accepted")
	}
}

func TestRLEAndDictChosen(t *testing.T) {
	// Constant column must RLE to a tiny chunk.
	con := make([]int64, 10000)
	col := data.Column{Type: data.Int64, I: con}
	enc := EncodeChunk(nil, &col, 0, len(con))
	if len(enc) > 64 {
		t.Fatalf("constant int chunk encoded to %d bytes", len(enc))
	}
	// Low-cardinality strings must dictionary-encode well below raw size.
	ss := make([]string, 10000)
	for i := range ss {
		ss[i] = []string{"AIR", "RAIL", "TRUCK"}[i%3]
	}
	scol := data.Column{Type: data.String, S: ss}
	senc := EncodeChunk(nil, &scol, 0, len(ss))
	if len(senc) > 2*len(ss) {
		t.Fatalf("dict string chunk encoded to %d bytes", len(senc))
	}
}
