package colstore

import (
	"fmt"
	"sync/atomic"

	"github.com/spilly-db/spilly/internal/data"
	"github.com/spilly-db/spilly/internal/uring"
)

// defaultScanPrefetch is the number of row groups each external-scan
// reader keeps in flight. With one reader per worker, the per-reader
// lookahead times the worker count keeps the array's I/O queues full
// across morsel boundaries (§5.2).
const defaultScanPrefetch = 4

// diskReader is a per-worker external scan (§5.2): it pulls row-group
// morsels from the shared cursor, schedules asynchronous reads for the
// projected column chunks of several groups ahead — "aiming to maintain a
// full I/O queue" across morsel boundaries — and decodes whichever group
// completes first.
type diskReader struct {
	t      *DiskTable
	proj   []int
	cursor *atomic.Int64
	ring   *uring.Ring

	prefetch int // groups to keep in flight
	inflight []*inflightGroup
	pending  map[uint64]*chunkRead
	nextUD   uint64
	exhaust  bool
	scratch  []uring.Completion
	err      error
}

type inflightGroup struct {
	g       int
	rows    int
	bufs    [][]byte // one per projected column, in proj order
	missing int
}

type chunkRead struct {
	grp *inflightGroup
	i   int // index into proj
}

// NewReader implements Table.
func (t *DiskTable) NewReader(proj []int, cursor *atomic.Int64) Reader {
	return &diskReader{
		t:        t,
		proj:     proj,
		cursor:   cursor,
		ring:     uring.New(t.store.arr),
		prefetch: defaultScanPrefetch,
		pending:  map[uint64]*chunkRead{},
	}
}

func (r *diskReader) Next(b *data.Batch) (int, error) {
	if r.err != nil {
		return 0, r.err
	}
	for {
		r.fill()
		// Deliver any fully-read group.
		for i, g := range r.inflight {
			if g.missing == 0 {
				r.inflight = append(r.inflight[:i], r.inflight[i+1:]...)
				if err := r.decode(b, g); err != nil {
					r.err = err
					return 0, err
				}
				return g.rows, nil
			}
		}
		if len(r.inflight) == 0 {
			return 0, nil // table exhausted
		}
		r.ring.Submit()
		r.scratch = r.ring.Poll(r.scratch[:0], true)
		for _, c := range r.scratch {
			cr, ok := r.pending[c.UserData]
			if !ok {
				continue
			}
			delete(r.pending, c.UserData)
			if c.Err != nil {
				r.err = fmt.Errorf("colstore: reading %s: %w", r.t.name, c.Err)
				return 0, r.err
			}
			if cache := r.t.store.cache; cache != nil {
				ref := r.t.groups[cr.grp.g].chunks[r.proj[cr.i]]
				cache.Put(ref.Loc, cr.grp.bufs[cr.i][:ref.Len])
			}
			cr.grp.missing--
		}
	}
}

// fill tops up the in-flight group window, serving chunks from the buffer
// cache when possible.
func (r *diskReader) fill() {
	for !r.exhaust && len(r.inflight) < r.prefetch {
		g := int(r.cursor.Add(1) - 1)
		if g >= len(r.t.groups) {
			r.exhaust = true
			return
		}
		dg := &r.t.groups[g]
		ig := &inflightGroup{g: g, rows: dg.rows, bufs: make([][]byte, len(r.proj))}
		for i, col := range r.proj {
			ref := dg.chunks[col]
			if cache := r.t.store.cache; cache != nil {
				if buf, ok := cache.Get(ref.Loc); ok {
					ig.bufs[i] = buf
					continue
				}
			}
			buf := make([]byte, ref.Loc.Size())
			ig.bufs[i] = buf
			r.nextUD++
			r.ring.QueueRead(ref.Loc, buf, r.nextUD)
			r.pending[r.nextUD] = &chunkRead{grp: ig, i: i}
			ig.missing++
		}
		r.inflight = append(r.inflight, ig)
	}
}

func (r *diskReader) decode(b *data.Batch, g *inflightGroup) error {
	b.Reset()
	dg := &r.t.groups[g.g]
	for i, col := range r.proj {
		ref := dg.chunks[col]
		n, err := DecodeChunk(&b.Cols[i], g.bufs[i][:ref.Len])
		if err != nil {
			return fmt.Errorf("colstore: decoding %s group %d col %d: %w", r.t.name, g.g, col, err)
		}
		if n != g.rows {
			return fmt.Errorf("colstore: %s group %d col %d has %d values, want %d", r.t.name, g.g, col, n, g.rows)
		}
	}
	b.SetLen(g.rows)
	return nil
}
