package colstore

import (
	"fmt"
	"sync/atomic"

	"github.com/spilly-db/spilly/internal/data"
	"github.com/spilly-db/spilly/internal/nvmesim"
	"github.com/spilly-db/spilly/internal/uring"
)

// DefaultScanDepth is the default number of row groups each external-scan
// reader keeps in flight. With one reader per worker, the per-reader
// lookahead times the worker count keeps the array's I/O queues full
// across morsel boundaries (§5.2). Engines override it per store
// (Store.SetScanDepth) or per scan (ScanOpts.Depth).
const DefaultScanDepth = 4

// diskReader is a per-worker external scan (§5.2): it pulls row-group
// morsels from the shared cursor, schedules asynchronous reads for the
// projected column chunks of several groups ahead — "aiming to maintain a
// full I/O queue" across morsel boundaries — and decodes whichever group
// completes first.
//
// Under the shared I/O scheduler the lookahead reads are prefetch class:
// they fill idle device headroom but yield to demand reads and spill
// writes. When the worker is about to block, the reads of the oldest
// in-flight group are promoted to demand — the scan is no longer ahead of
// the consumer, so its next group is on the critical path.
type diskReader struct {
	t      *DiskTable
	proj   []int
	cursor *atomic.Int64
	ring   *uring.Ring
	clock  nvmesim.Clock

	prefetch int // groups to keep in flight
	inflight []*inflightGroup
	pending  map[uint64]*chunkRead
	nextUD   uint64
	exhaust  bool
	scratch  []uring.Completion
	stallNs  int64
	stalls   int64
	err      error
	closed   bool
}

type inflightGroup struct {
	g       int
	rows    int
	bufs    [][]byte // one per projected column, in proj order
	missing int
}

type chunkRead struct {
	grp *inflightGroup
	i   int // index into proj
}

// NewReader implements Table, with the store-level scan defaults.
func (t *DiskTable) NewReader(proj []int, cursor *atomic.Int64) Reader {
	return t.NewReaderOpts(proj, cursor, ScanOpts{})
}

// NewReaderOpts implements OptsTable: opts.Depth overrides the store's
// scan depth, opts.Query keys the reads in the shared I/O scheduler.
func (t *DiskTable) NewReaderOpts(proj []int, cursor *atomic.Int64, opts ScanOpts) Reader {
	depth := opts.Depth
	if depth <= 0 {
		depth = t.store.scanDepth
	}
	if depth <= 0 {
		depth = DefaultScanDepth
	}
	ring := uring.New(t.store.arr)
	ring.Bind(t.store.sched, uring.ClassPrefetch, opts.Query)
	return &diskReader{
		t:        t,
		proj:     proj,
		cursor:   cursor,
		ring:     ring,
		clock:    t.store.arr.Clock(),
		prefetch: depth,
		pending:  map[uint64]*chunkRead{},
	}
}

func (r *diskReader) Next(b *data.Batch) (int, error) {
	if r.err != nil {
		return 0, r.err
	}
	if r.closed {
		return 0, nil
	}
	for {
		r.fill()
		// Deliver any fully-read group.
		for i, g := range r.inflight {
			if g.missing == 0 {
				r.inflight = append(r.inflight[:i], r.inflight[i+1:]...)
				if err := r.decode(b, g); err != nil {
					return 0, r.fail(err)
				}
				return g.rows, nil
			}
		}
		if len(r.inflight) == 0 {
			return 0, nil // table exhausted
		}
		r.ring.Submit()
		// No group is complete: the worker is about to stall on I/O. The
		// oldest group's reads are on the critical path now — promote them
		// to demand class — and charge the blocked time to the scan.
		oldest := r.inflight[0]
		for ud, cr := range r.pending {
			if cr.grp == oldest {
				r.ring.Promote(ud)
			}
		}
		t0 := r.clock.Now()
		r.scratch = r.ring.Poll(r.scratch[:0], true)
		r.stallNs += r.clock.Now().Sub(t0).Nanoseconds()
		r.stalls++
		for _, c := range r.scratch {
			cr, ok := r.pending[c.UserData]
			if !ok {
				continue
			}
			delete(r.pending, c.UserData)
			if c.Err != nil {
				return 0, r.fail(fmt.Errorf("colstore: reading %s: %w", r.t.name, c.Err))
			}
			if cache := r.t.store.cache; cache != nil {
				ref := r.t.groups[cr.grp.g].chunks[r.proj[cr.i]]
				cache.Put(ref.Loc, cr.grp.bufs[cr.i][:ref.Len])
			}
			cr.grp.missing--
		}
	}
}

// fail makes err the reader's sticky error and quiesces its I/O: deferred
// reads are cancelled, dispatched ones drained, and buffer references
// dropped. Every later Next returns the same error.
func (r *diskReader) fail(err error) error {
	if r.err == nil {
		r.err = err
	}
	r.drain()
	return r.err
}

// Close quiesces the reader's outstanding I/O (draining dispatched reads,
// cancelling deferred ones) and releases its buffer references. Idempotent;
// consumers call it when abandoning a scan mid-stream. A later Next returns
// the sticky error if one is set, end-of-table otherwise.
func (r *diskReader) Close() {
	r.closed = true
	r.drain()
}

func (r *diskReader) drain() {
	// Deferred reads will never dispatch for an abandoned reader — drop
	// them first so WaitAll terminates and the shared scheduler's queues
	// do not hold this scan's buffers forever.
	r.ring.CancelDeferred()
	r.ring.WaitAll(r.scratch[:0])
	if r.ring.Outstanding() > 0 {
		// Cancellation cut the drain short; leak the buffers to the GC.
		r.scratch = nil
	}
	r.pending = map[uint64]*chunkRead{}
	r.inflight = nil
	r.exhaust = true
}

// StallNanos returns the cumulative wall time this reader's worker spent
// blocked waiting for group reads.
func (r *diskReader) StallNanos() int64 { return r.stallNs }

// Stalls returns how many times the worker blocked waiting for a group
// read (each block promotes the oldest group's reads to demand class);
// StallNanos/Stalls is the mean demand wait per block — how long each
// promoted, latency-critical read kept its worker waiting.
func (r *diskReader) Stalls() int64 { return r.stalls }

// fill tops up the in-flight group window, serving chunks from the buffer
// cache when possible.
func (r *diskReader) fill() {
	for !r.exhaust && len(r.inflight) < r.prefetch {
		g := int(r.cursor.Add(1) - 1)
		if g >= len(r.t.groups) {
			r.exhaust = true
			return
		}
		dg := &r.t.groups[g]
		ig := &inflightGroup{g: g, rows: dg.rows, bufs: make([][]byte, len(r.proj))}
		for i, col := range r.proj {
			ref := dg.chunks[col]
			if cache := r.t.store.cache; cache != nil {
				if buf, ok := cache.Get(ref.Loc); ok {
					ig.bufs[i] = buf
					continue
				}
			}
			buf := make([]byte, ref.Loc.Size())
			ig.bufs[i] = buf
			r.nextUD++
			r.ring.QueueRead(ref.Loc, buf, r.nextUD)
			r.pending[r.nextUD] = &chunkRead{grp: ig, i: i}
			ig.missing++
		}
		r.inflight = append(r.inflight, ig)
	}
}

func (r *diskReader) decode(b *data.Batch, g *inflightGroup) error {
	b.Reset()
	dg := &r.t.groups[g.g]
	for i, col := range r.proj {
		ref := dg.chunks[col]
		n, err := DecodeChunk(&b.Cols[i], g.bufs[i][:ref.Len])
		if err != nil {
			return fmt.Errorf("colstore: decoding %s group %d col %d: %w", r.t.name, g.g, col, err)
		}
		if n != g.rows {
			return fmt.Errorf("colstore: %s group %d col %d has %d values, want %d", r.t.name, g.g, col, n, g.rows)
		}
	}
	b.SetLen(g.rows)
	return nil
}
