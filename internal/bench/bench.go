// Package bench is the experiment harness: for every table and figure in
// the paper's evaluation it provides a function that regenerates the
// corresponding rows/series on the simulated hardware. The cmd/spillybench
// binary and the repository's bench_test.go both dispatch into this
// package; EXPERIMENTS.md records paper-versus-measured for each entry.
package bench

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"time"

	spilly "github.com/spilly-db/spilly"
	"github.com/spilly-db/spilly/internal/exec"
	"github.com/spilly-db/spilly/internal/tpch"
)

// goCPUFactor calibrates experiments whose shape depends on the CPU-to-I/O
// bandwidth ratio (Figures 11 and 12). The engine's default device scaling
// (DESIGN.md) preserves the paper's per-core byte ratios, but this Go
// engine processes roughly 4x fewer tuples per core-second than the
// paper's generated C++, so workloads that were I/O-bound on the paper's
// testbed become CPU-bound here. Scaling device bandwidth by the same
// factor restores the published regime; see EXPERIMENTS.md.
const goCPUFactor = 0.25

// bestOf runs f n times and returns the best (max) result of each pair —
// single-run wall-clock measurements on a 1-core box are noisy.
func bestOf(n int, f func() (float64, map[string]int64)) (float64, map[string]int64) {
	var best float64
	var schemes map[string]int64
	for i := 0; i < n; i++ {
		v, s := f()
		if v > best {
			best = v
			schemes = s
		}
	}
	return best, schemes
}

// Options configures an experiment run.
type Options struct {
	// Quick shrinks scale factors and sweeps for smoke tests.
	Quick bool
	// Workers per query (default 2: this box has one core, but two
	// workers still exercise all concurrency paths).
	Workers int
	// SFs overrides the default scale-factor sweep.
	SFs []float64
	// Budget overrides the default memory budget in bytes.
	Budget int64
}

func (o Options) workers() int {
	if o.Workers <= 0 {
		return 2
	}
	return o.Workers
}

func (o Options) sweep(def []float64) []float64 {
	if len(o.SFs) > 0 {
		return o.SFs
	}
	if o.Quick {
		if len(def) > 2 {
			return def[:2]
		}
	}
	return def
}

func (o Options) budget(def int64) int64 {
	if o.Budget > 0 {
		return o.Budget
	}
	return def
}

// Experiment regenerates one paper artifact, writing a plain-text report.
type Experiment struct {
	ID    string
	Paper string // which table/figure this regenerates
	Run   func(w io.Writer, o Options) error
}

var registry []Experiment

func register(e Experiment) { registry = append(registry, e) }

// All returns every experiment, in registration (paper) order.
func All() []Experiment { return registry }

// ByID returns the experiment with the given id, or nil.
func ByID(id string) *Experiment {
	for i := range registry {
		if registry[i].ID == id {
			return &registry[i]
		}
	}
	return nil
}

// --- shared helpers ---

// system is a named engine configuration standing in for one of the
// paper's comparison systems (see DESIGN.md for the substitution table).
type system struct {
	Name string
	// Role documents which evaluated system this configuration plays.
	Role string
	Make func(budget int64, workers int, spillDevices int) spilly.Config
}

// systems returns the comparison lineup:
//
//   - Spilly: the paper's engine — adaptive materialization, hybrid
//     spilling, self-regulating compression.
//   - InMemDB: a pure in-memory engine (Hyper's role): fastest operators,
//     fails when the budget is exceeded.
//   - HybridDB: an out-of-memory-capable engine that always partitions its
//     hash operators HHJ-style (DuckDB's role).
//   - PartDB: an HDD-era engine (Column Store S's role): grace joins,
//     no pre-aggregation, one spill device, no compression.
func systems() []system {
	return []system{
		{"Spilly", "the paper's engine", func(b int64, w, d int) spilly.Config {
			return spilly.Config{Workers: w, MemoryBudget: b, Compression: true, SpillDevices: d}
		}},
		{"InMemDB", "in-memory engine (Hyper)", func(b int64, w, d int) spilly.Config {
			return spilly.Config{Workers: w, MemoryBudget: b, Mode: spilly.NeverPartition, DisableSpill: true}
		}},
		{"HybridDB", "partitioning OOM-capable engine (DuckDB)", func(b int64, w, d int) spilly.Config {
			return spilly.Config{Workers: w, MemoryBudget: b, Mode: spilly.AlwaysPartition, SpillDevices: d}
		}},
		{"PartDB", "HDD-era robust engine (Column Store S)", func(b int64, w, d int) spilly.Config {
			return spilly.Config{Workers: w, MemoryBudget: b, Mode: spilly.AlwaysPartition,
				ForceGrace: true, NoPreAgg: true, SpillDevices: 1}
		}},
	}
}

// runAllQueries executes TPC-H queries 1..22 on eng and returns total
// scanned tuples, total time, and per-query times. Failed queries (OOM)
// abort with the error.
func runAllQueries(eng *spilly.Engine) (tuples int64, total time.Duration, perQuery []time.Duration, err error) {
	perQuery = make([]time.Duration, tpch.NumQueries+1)
	for q := 1; q <= tpch.NumQueries; q++ {
		eng.ClearCaches()
		res, qerr := eng.RunTPCH(q)
		if qerr != nil {
			return 0, 0, nil, fmt.Errorf("Q%d: %w", q, qerr)
		}
		tuples += res.Stats.ScannedRows
		total += res.Stats.Duration
		perQuery[q] = res.Stats.Duration
	}
	return tuples, total, perQuery, nil
}

// geoMean returns the geometric mean of positive values.
func geoMean(vals []float64) float64 {
	if len(vals) == 0 {
		return 0
	}
	var s float64
	for _, v := range vals {
		s += math.Log(v)
	}
	return math.Exp(s / float64(len(vals)))
}

// table is a simple aligned text table writer.
type table struct {
	header []string
	rows   [][]string
}

func newTable(header ...string) *table { return &table{header: header} }

func (t *table) row(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case string:
			row[i] = v
		case float64:
			row[i] = formatFloat(v)
		case time.Duration:
			row[i] = fmt.Sprintf("%.3fs", v.Seconds())
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	t.rows = append(t.rows, row)
}

func formatFloat(v float64) string {
	switch {
	case v == 0:
		return "0"
	case math.Abs(v) >= 1e6:
		return fmt.Sprintf("%.3gM", v/1e6)
	case math.Abs(v) >= 1000:
		return fmt.Sprintf("%.3gk", v/1000)
	case math.Abs(v) >= 10:
		return fmt.Sprintf("%.1f", v)
	default:
		return fmt.Sprintf("%.3f", v)
	}
}

func (t *table) write(w io.Writer) {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = c + strings.Repeat(" ", widths[i]-len(c))
		}
		fmt.Fprintln(w, strings.Join(parts, "  "))
	}
	line(t.header)
	sep := make([]string, len(t.header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, r := range t.rows {
		line(r)
	}
}

// fmtBytes renders a byte count with a binary unit.
func fmtBytes(n int64) string {
	switch {
	case n >= 1<<30:
		return fmt.Sprintf("%.2fGB", float64(n)/(1<<30))
	case n >= 1<<20:
		return fmt.Sprintf("%.1fMB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1fKB", float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%dB", n)
	}
}

// newEngine opens an engine, loading TPC-H at sf (onArray = external).
func newEngine(cfg spilly.Config, sf float64, onArray bool) (*spilly.Engine, error) {
	eng, err := spilly.Open(cfg)
	if err != nil {
		return nil, err
	}
	if cfg.CacheBytes == 0 && onArray {
		// External scans need a cache only for hot runs; cold-run
		// experiments pass CacheBytes 0 and clear between queries.
		_ = eng
	}
	if err := eng.LoadTPCH(sf, onArray); err != nil {
		return nil, err
	}
	return eng, nil
}

// schemeSummary renders a scheme histogram sorted by page count.
func schemeSummary(schemes map[string]int64) string {
	if len(schemes) == 0 {
		return "-"
	}
	type kv struct {
		k string
		v int64
	}
	var list []kv
	var total int64
	for k, v := range schemes {
		list = append(list, kv{k, v})
		total += v
	}
	sort.Slice(list, func(i, j int) bool { return list[i].v > list[j].v })
	parts := make([]string, 0, len(list))
	for _, e := range list {
		parts = append(parts, fmt.Sprintf("%s %.0f%%", e.k, 100*float64(e.v)/float64(total)))
	}
	return strings.Join(parts, ", ")
}

// microPlan builds one of the two paper microbenchmarks by name.
func microPlan(eng *spilly.Engine, name string) exec.Node {
	if name == "join" {
		return eng.JoinMicroPlan()
	}
	return eng.AggMicroPlan()
}
