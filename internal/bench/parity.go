package bench

import (
	"fmt"
	"io"

	spilly "github.com/spilly-db/spilly"
)

func init() {
	register(Experiment{
		ID:    "parity",
		Paper: "Spill integrity tax: checksummed pages + XOR parity vs raw spilling (engine addition)",
		Run:   runParityReport,
	})
}

// parityStripeWidth is the stripe width K used by the integrity benchmark:
// one XOR parity block per three data blocks, the widest stripe the default
// four-device spill array can place on distinct devices while keeping a
// whole group in flight.
const parityStripeWidth = 3

// ParityMeasurement is one (query, integrity-mode) cell of the spill
// integrity report. Modes are "off" (raw spill pages, the pre-integrity
// engine) and "parity" (checksummed frames + XOR parity stripes).
type ParityMeasurement struct {
	Query string `json:"query"`
	Mode  string `json:"mode"` // "off" or "parity"
	// NsPerOp is the best wall time over a few repetitions; the integrity
	// counters come from that same best run.
	NsPerOp      float64 `json:"ns_per_op"`
	WrittenBytes int64   `json:"written_bytes"`
	// ParityBytes is the extra spill volume spent on parity blocks; the
	// storage tax is ParityBytes/WrittenBytes (≈ 1/K when blocks fill).
	ParityBytes   int64  `json:"parity_bytes"`
	PagesVerified int64  `json:"pages_verified"`
	Checksum      string `json:"checksum"` // result fingerprint hash; must match across modes
}

// Key returns the map key "Q9/parity" used by reports and the paritycmp gate.
func (m ParityMeasurement) Key() string { return m.Query + "/" + m.Mode }

// MeasureParity runs the integrity-off-vs-on matrix over the spill-heavy
// overlap workloads (Q9/Q12/Q13 — the queries whose phase 2 reads every
// spilled byte back, so both the write-side checksum+XOR cost and the
// read-side verification cost land on the critical path). Wall time is the
// best of a few repetitions; counters come from the same best run.
func MeasureParity(o Options) ([]ParityMeasurement, error) {
	sf := 0.02
	reps := 5
	if o.Quick {
		sf = 0.01
		reps = 3
	}
	if len(o.SFs) > 0 {
		sf = o.SFs[0]
	}
	modes := []struct {
		name   string
		parity int
	}{
		{"off", 0},
		{"parity", parityStripeWidth},
	}
	// Both engines live for the whole measurement and the repetition loop
	// interleaves modes (off, parity, off, parity, ...), so a machine-wide
	// slowdown lands on both sides of the comparison instead of biasing
	// whichever mode happened to run during it. Single-run wall clock on a
	// shared one-core box is far noisier than the ~1/K tax being measured.
	engines := make([]*spilly.Engine, len(modes))
	for i, m := range modes {
		eng, err := newEngine(spilly.Config{
			Workers:      o.workers(),
			MemoryBudget: o.budget(overlapSpillBudget),
			Compression:  true,
			SpillParity:  m.parity,
		}, sf, false)
		if err != nil {
			return nil, err
		}
		engines[i] = eng
	}
	var out []ParityMeasurement
	for _, q := range overlapQueries {
		best := make([]ParityMeasurement, len(modes))
		for i, m := range modes {
			best[i] = ParityMeasurement{Query: fmt.Sprintf("Q%d", q), Mode: m.name}
			// Warmup run: first execution pays one-time pool and
			// table-setup costs that are not steady-state spill cost.
			if _, err := engines[i].RunTPCH(q); err != nil {
				return nil, fmt.Errorf("%s Q%d: %w", m.name, q, err)
			}
		}
		for rep := 0; rep < reps; rep++ {
			for i, m := range modes {
				res, err := engines[i].RunTPCH(q)
				if err != nil {
					return nil, fmt.Errorf("%s Q%d: %w", m.name, q, err)
				}
				s := res.Stats
				if ns := float64(s.Duration.Nanoseconds()); rep == 0 || ns < best[i].NsPerOp {
					best[i].NsPerOp = ns
					best[i].WrittenBytes = s.WrittenBytes
					best[i].ParityBytes = s.SpillParityBytes
					best[i].PagesVerified = s.SpillPagesVerified
					best[i].Checksum = overlapChecksum(res)
				}
			}
		}
		out = append(out, best...)
	}
	return out, nil
}

func runParityReport(w io.Writer, o Options) error {
	ms, err := MeasureParity(o)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "Spill integrity tax: the spill-heavy joins/aggs with raw spill pages")
	fmt.Fprintln(w, "(off) vs checksummed page frames + rotating XOR parity stripes (parity).")
	fmt.Fprintln(w, "Parity mode hashes every page on the write path, XORs each block into")
	fmt.Fprintln(w, "its stripe's parity accumulator, writes one parity block per group, and")
	fmt.Fprintln(w, "re-verifies every page on readback; checksums must match across modes.")
	fmt.Fprintln(w)
	t := newTable("Query", "Mode", "ms/op", "written", "parity", "verified", "checksum")
	for _, m := range ms {
		t.row(m.Query, m.Mode, m.NsPerOp/1e6, fmtBytes(m.WrittenBytes),
			fmtBytes(m.ParityBytes), m.PagesVerified, m.Checksum)
	}
	t.write(w)

	byKey := map[string]ParityMeasurement{}
	for _, m := range ms {
		byKey[m.Key()] = m
	}
	var wallRatios []float64
	for _, q := range overlapQueries {
		off, ok1 := byKey[fmt.Sprintf("Q%d/off", q)]
		par, ok2 := byKey[fmt.Sprintf("Q%d/parity", q)]
		if !ok1 || !ok2 {
			continue
		}
		if off.Checksum != par.Checksum {
			return fmt.Errorf("parity: Q%d result checksum mismatch: off %s vs parity %s",
				q, off.Checksum, par.Checksum)
		}
		ratio := par.NsPerOp / off.NsPerOp
		wallRatios = append(wallRatios, ratio)
		storageTax := 0.0
		if par.WrittenBytes > 0 {
			storageTax = 100 * float64(par.ParityBytes) / float64(par.WrittenBytes)
		}
		fmt.Fprintf(w, "\nQ%d: integrity wall tax %.1f%%, storage tax %.1f%% of written bytes",
			q, 100*(ratio-1), storageTax)
	}
	fmt.Fprintln(w)
	fmt.Fprintf(w, "\nShape check: end-to-end spill integrity (verify every page, survive any\n")
	fmt.Fprintf(w, "single lost or corrupted block per stripe) costs a geo-mean %.1f%% of wall\n",
		100*(geoMean(wallRatios)-1))
	fmt.Fprintln(w, "time and ~1/K of spill bandwidth — cheap enough to leave on whenever")
	fmt.Fprintln(w, "spilled state outlives the failure domain of a single device.")
	return nil
}
