package bench

import (
	"fmt"
	"io"
	"sort"

	spilly "github.com/spilly-db/spilly"
)

func init() {
	register(Experiment{
		ID:    "alloc",
		Paper: "GC-pressure harness: allocations per query, in-memory vs forced spill (engine addition)",
		Run:   runAllocReport,
	})
}

// allocQueries are the workloads the GC-pressure harness tracks: Q1
// (tight aggregation, the in-memory regression canary), Q13 (string-heavy
// join/agg), Q18 (large join + agg, the paper's spill-heavy workhorse).
var allocQueries = []int{1, 13, 18}

// AllocMeasurement is one (query, mode) cell of the GC-pressure report.
type AllocMeasurement struct {
	Query        string  `json:"query"`
	Mode         string  `json:"mode"` // "inmem" or "spill"
	AllocsPerOp  float64 `json:"allocs_per_op"`
	BytesPerOp   float64 `json:"bytes_per_op"`
	NsPerOp      float64 `json:"ns_per_op"`
	GCCycles     float64 `json:"gc_cycles"`
	SpilledBytes int64   `json:"spilled_bytes"`
	// Approx marks the cell's allocation numbers unreliable: another
	// query was in flight during at least one rep, so the process-wide
	// MemStats delta mixes in its allocations. Regression gates skip
	// approximate cells.
	Approx bool `json:"approx,omitempty"`
}

// Key returns the map key "Q1/inmem" used by BENCH_alloc.json baselines.
func (m AllocMeasurement) Key() string { return m.Query + "/" + m.Mode }

// allocSpillBudget forces Q13/Q18 to partition and spill at the
// measurement scale factors (Q1 pre-aggregates to a handful of groups and
// never materializes enough to spill — it serves as the in-memory canary
// in both modes).
const allocSpillBudget = 128 << 10

// MeasureAlloc runs the GC-pressure matrix and returns one measurement per
// (query, mode). Allocation counts come from the engine's per-query
// runtime.MemStats deltas (Stats.AllocObjects etc.); each cell is the
// minimum over a few repetitions, since a background GC inflates single
// runs.
func MeasureAlloc(o Options) ([]AllocMeasurement, error) {
	sf := 0.02
	reps := 3
	if o.Quick {
		sf = 0.01
		reps = 2
	}
	modes := []struct {
		name string
		cfg  spilly.Config
	}{
		{"inmem", spilly.Config{Workers: o.workers()}},
		{"spill", spilly.Config{
			Workers:      o.workers(),
			MemoryBudget: o.budget(allocSpillBudget),
			Compression:  true,
		}},
	}
	var out []AllocMeasurement
	for _, m := range modes {
		eng, err := newEngine(m.cfg, sf, false)
		if err != nil {
			return nil, err
		}
		for _, q := range allocQueries {
			// Warmup run: first execution pays one-time pool and table
			// setup costs that are not per-query GC pressure.
			if _, err := eng.RunTPCH(q); err != nil {
				return nil, fmt.Errorf("%s Q%d: %w", m.name, q, err)
			}
			best := AllocMeasurement{Query: fmt.Sprintf("Q%d", q), Mode: m.name}
			for rep := 0; rep < reps; rep++ {
				res, err := eng.RunTPCH(q)
				if err != nil {
					return nil, fmt.Errorf("%s Q%d: %w", m.name, q, err)
				}
				s := res.Stats
				if rep == 0 || float64(s.AllocObjects) < best.AllocsPerOp {
					best.AllocsPerOp = float64(s.AllocObjects)
					best.BytesPerOp = float64(s.AllocBytes)
					best.GCCycles = float64(s.NumGC)
					best.SpilledBytes = s.SpilledBytes
				}
				if s.AllocApprox {
					best.Approx = true
				}
				if ns := float64(s.Duration.Nanoseconds()); rep == 0 || ns < best.NsPerOp {
					best.NsPerOp = ns
				}
			}
			out = append(out, best)
		}
	}
	return out, nil
}

func runAllocReport(w io.Writer, o Options) error {
	ms, err := MeasureAlloc(o)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "Heap allocations per query execution (runtime.MemStats deltas, best")
	fmt.Fprintln(w, "of a few runs). \"spill\" forces partitioning with a tight budget; the")
	fmt.Fprintln(w, "recycling hot path must keep spilled executions from multiplying GC work.")
	fmt.Fprintln(w)
	t := newTable("Query", "Mode", "allocs/op", "alloc MB/op", "ms/op", "spilled")
	for _, m := range ms {
		t.row(m.Query, m.Mode, m.AllocsPerOp, m.BytesPerOp/(1<<20), m.NsPerOp/1e6, fmtBytes(m.SpilledBytes))
	}
	t.write(w)

	byKey := map[string]AllocMeasurement{}
	for _, m := range ms {
		byKey[m.Key()] = m
	}
	keys := make([]string, 0, len(byKey))
	for k := range byKey {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	if in, ok := byKey["Q18/inmem"]; ok {
		if sp, ok2 := byKey["Q18/spill"]; ok2 && in.AllocsPerOp > 0 {
			fmt.Fprintf(w, "\nShape check: spilling Q18 allocates %.1fx the objects of the in-memory\n",
				sp.AllocsPerOp/in.AllocsPerOp)
			fmt.Fprintln(w, "run — restore paths decode into recycled buffers and arenas, so the")
			fmt.Fprintln(w, "spill multiplier stays small instead of scaling with spilled tuples.")
		}
	}
	return nil
}
