package bench

import (
	"fmt"
	"io"
	"sync/atomic"
	"time"

	spilly "github.com/spilly-db/spilly"
	"github.com/spilly-db/spilly/internal/codec"
	"github.com/spilly-db/spilly/internal/colstore"
	"github.com/spilly-db/spilly/internal/data"
	"github.com/spilly-db/spilly/internal/metrics"
	"github.com/spilly-db/spilly/internal/nvmesim"
	"github.com/spilly-db/spilly/internal/pages"
	"github.com/spilly-db/spilly/internal/tpch"
)

func init() {
	register(Experiment{
		ID:    "fig3",
		Paper: "Figure 3: compression ratio vs (de)compression cost on spilled TPC-H pages",
		Run:   runCompressionTradeoff,
	})
	register(Experiment{
		ID:    "sec52-tablecomp",
		Paper: "§5.2 table-compression ratio table",
		Run:   runTableCompression,
	})
	register(Experiment{
		ID:    "fig11",
		Paper: "Figure 11: self-regulating compression vs NVMe array size",
		Run:   runSelfReg,
	})
	register(Experiment{
		ID:    "fig12",
		Paper: "Figure 12: spilling on simulated cloud instances",
		Run:   runCloud,
	})
}

// spillCorpus builds row-encoded 64 KiB pages from TPC-H tuple data —
// byte-identical in layout to what Umami spills, so codec measurements
// match the paper's "spilled pages produced across all TPC-H queries".
func spillCorpus(sf float64) [][]byte {
	g := &tpch.Gen{SF: sf}
	var corpus [][]byte
	for _, name := range []string{tpch.Lineitem, tpch.Orders, tpch.Customer, tpch.PartSupp} {
		mt := g.Table(name)
		schema := mt.Schema()
		rc := data.NewRowCodec(schema.Types())
		cols := make([]int, schema.Len())
		for i := range cols {
			cols[i] = i
		}
		cursorBatch := data.NewBatch(schema, 0)
		var cursor atomic.Int64
		pg := pages.New(pages.DefaultPageSize)
		reader := mt.NewReader(cols, &cursor)
		for {
			n, err := reader.Next(cursorBatch)
			if err != nil || n == 0 {
				break
			}
			for r := 0; r < n; r++ {
				size := rc.Size(cursorBatch, r)
				dst, ok := pg.Alloc(size)
				if !ok {
					corpus = append(corpus, append([]byte(nil), pg.Seal()...))
					pg.Reset()
					dst, _ = pg.Alloc(size)
				}
				rc.Encode(dst, cursorBatch, r)
			}
		}
		if pg.Tuples() > 0 {
			corpus = append(corpus, append([]byte(nil), pg.Seal()...))
		}
	}
	return corpus
}

func runCompressionTradeoff(w io.Writer, o Options) error {
	sf := 0.01
	if o.Quick {
		sf = 0.002
	}
	corpus := spillCorpus(sf)
	var total int64
	for _, p := range corpus {
		total += int64(len(p))
	}
	fmt.Fprintf(w, "Corpus: %d row-format pages (%s) of TPC-H tuple data (SF %g).\n\n", len(corpus), fmtBytes(total), sf)
	t := newTable("Scheme", "Ratio", "Compress cyc/B", "Decompress cyc/B")
	for _, c := range codec.All() {
		var encBytes int64
		var compTime, decompTime time.Duration
		var dec []byte
		for _, page := range corpus {
			start := time.Now()
			enc := c.Compress(nil, page)
			compTime += time.Since(start)
			encBytes += int64(len(enc))
			start = time.Now()
			var err error
			dec, err = c.Decompress(dec[:0], enc)
			if err != nil {
				return fmt.Errorf("%s: %w", c.Name(), err)
			}
			decompTime += time.Since(start)
		}
		t.row(c.Name(),
			float64(total)/float64(encBytes),
			metrics.CyclesPerByte(compTime, total),
			metrics.CyclesPerByte(decompTime, total))
	}
	t.write(w)
	fmt.Fprintln(w, "\nShape check (paper Figure 3): the LZ4 family is cheapest, the deflate")
	fmt.Fprintln(w, "(ZSTD-role) settings trade more CPU for better ratios, snappy is off the")
	fmt.Fprintln(w, "pareto frontier, and bwt (BZ2 role) is an order of magnitude costlier —")
	fmt.Fprintln(w, "hence the unified scale keeps only raw < lz4* < deflate*.")
	return nil
}

func runTableCompression(w io.Writer, o Options) error {
	sf := 0.02
	if o.Quick {
		sf = 0.005
	}
	arr := nvmesim.New(8, spilly.DefaultDevice, nvmesim.RealClock{})
	store := colstore.NewStore(arr, nil)
	g := &tpch.Gen{SF: sf}
	fmt.Fprintf(w, "Columnar table compression (BtrBlocks-lite), TPC-H SF %g:\n\n", sf)
	t := newTable("Table", "Raw", "Encoded", "Ratio")
	var raw, enc int64
	for _, name := range tpch.TableNames {
		dt, err := store.WriteTable(g.Table(name))
		if err != nil {
			return err
		}
		t.row(name, fmtBytes(dt.RawBytes()), fmtBytes(dt.EncodedBytes()), dt.CompressionRatio())
		raw += dt.RawBytes()
		enc += dt.EncodedBytes()
	}
	t.row("TOTAL", fmtBytes(raw), fmtBytes(enc), float64(raw)/float64(enc))
	t.write(w)
	fmt.Fprintln(w, "\nShape check: overall ratio is ~3x, matching the §5.2 table (Spilly 2.97x,")
	fmt.Fprintln(w, "Column Store S 3.77x, DuckDB 2.95x at SF 10k).")
	return nil
}

func runSelfReg(w io.Writer, o Options) error {
	sf := 0.05
	budget := o.budget(2 << 20)
	devices := []int{1, 2, 4, 6, 8}
	if o.Quick {
		sf = 0.02
		devices = []int{1, 8}
	}
	fmt.Fprintf(w, "Spilling aggregation microbenchmark (§6.3 query) at SF %g, %s budget,\n", sf, fmtBytes(budget))
	fmt.Fprintln(w, "varying the number of SSDs available for spilling (Figure 11).")
	fmt.Fprintln(w)
	repeats := 2
	if o.Quick {
		repeats = 1
	}
	device := spilly.DefaultDevice.Scaled(goCPUFactor)
	t := newTable("SSDs", "tup/s selfreg", "tup/s no-compress", "Speedup", "Spilled", "Written", "Schemes chosen")
	for _, d := range devices {
		var tps [2]float64
		var spilled, written int64
		var schemes map[string]int64
		for i, compress := range []bool{true, false} {
			v, sch := bestOf(repeats, func() (float64, map[string]int64) {
				eng, err := newEngine(spilly.Config{
					Workers: o.workers(), MemoryBudget: budget,
					Compression: compress, SpillDevices: d, Device: device,
				}, sf, false)
				if err != nil {
					return 0, nil
				}
				res, err := eng.Run(eng.AggMicroPlan())
				if err != nil {
					return 0, nil
				}
				if compress {
					spilled = res.Stats.SpilledBytes
					written = res.Stats.WrittenBytes
				}
				return res.Stats.TuplesPerSec, res.Stats.Schemes
			})
			tps[i] = v
			if compress {
				schemes = sch
			}
		}
		t.row(d, tps[0], tps[1], fmt.Sprintf("%.2fx", tps[0]/tps[1]), fmtBytes(spilled), fmtBytes(written), schemeSummary(schemes))
	}
	t.write(w)
	fmt.Fprintln(w, "\nShape check (paper Figure 11): self-regulating compression speeds up")
	fmt.Fprintln(w, "spilling most at 1 SSD (paper: ~2x), the benefit shrinks as bandwidth")
	fmt.Fprintln(w, "grows, and it never hurts; deep schemes are chosen at low bandwidth and")
	fmt.Fprintln(w, "phased out toward raw as SSDs are added (right panel).")
	return nil
}

// cloudInstance models one of the paper's §6.9 rentals: per-device
// bandwidth divided by the instance's core count (our single worker core
// stands for the whole CPU, exactly as the main setup scales the paper's
// 96-core box), with a factor for older/slower cores.
type cloudInstance struct {
	name     string
	devices  int
	readBps  float64 // per device, per core
	writeBps float64
}

func cloudInstances() []cloudInstance {
	return []cloudInstance{
		// i3.16xlarge: 8 NVMe, ~2/1 GB/s per device, 64 older vCPUs.
		{"i3.16xlarge", 8, 2e9 / 64 * 0.7, 1e9 / 64 * 0.7},
		// i4i.32xlarge: 8 NVMe, ~2.2/1.1 GB/s per device, 128 vCPUs.
		{"i4i.32xlarge", 8, 2.2e9 / 128, 1.1e9 / 128},
		// r6id.32xlarge: as many cores as i4i but fewer SSDs.
		{"r6id.32xlarge", 4, 2.2e9 / 128, 1.1e9 / 128},
	}
}

func runCloud(w io.Writer, o Options) error {
	sf := 0.05
	budget := o.budget(2 << 20)
	if o.Quick {
		sf = 0.02
	}
	fmt.Fprintf(w, "Spilling aggregation microbenchmark on simulated cloud instances (SF %g,\n", sf)
	fmt.Fprintf(w, "%s budget). Device bandwidth is normalized per core as in DESIGN.md.\n\n", fmtBytes(budget))
	t := newTable("Instance", "SSDs", "tup/s selfreg", "tup/s no-compress", "Speedup", "Schemes chosen")
	for _, inst := range cloudInstances() {
		devs := []int{inst.devices}
		if !o.Quick {
			devs = []int{1, inst.devices}
		}
		repeats := 2
		if o.Quick {
			repeats = 1
		}
		for _, d := range devs {
			var tps [2]float64
			var schemes map[string]int64
			for i, compress := range []bool{true, false} {
				compress := compress
				v, sch := bestOf(repeats, func() (float64, map[string]int64) {
					eng, err := newEngine(spilly.Config{
						Workers: o.workers(), MemoryBudget: budget,
						Compression:  compress,
						SpillDevices: d,
						TableDevices: inst.devices,
						Device: spilly.DeviceSpec{
							ReadBandwidth:  inst.readBps * goCPUFactor,
							WriteBandwidth: inst.writeBps * goCPUFactor,
							Latency:        150 * time.Microsecond,
						},
					}, sf, false)
					if err != nil {
						return 0, nil
					}
					res, err := eng.Run(eng.AggMicroPlan())
					if err != nil {
						return 0, nil
					}
					return res.Stats.TuplesPerSec, res.Stats.Schemes
				})
				tps[i] = v
				if compress {
					schemes = sch
				}
			}
			t.row(inst.name, d, tps[0], tps[1], fmt.Sprintf("%.2fx", tps[0]/tps[1]), schemeSummary(schemes))
		}
	}
	t.write(w)
	fmt.Fprintln(w, "\nShape check (paper Figure 12): cloud instances have a much higher")
	fmt.Fprintln(w, "CPU-to-I/O ratio than the on-premise array, so self-regulating")
	fmt.Fprintln(w, "compression helps everywhere; i4i outperforms i3 (faster cores) and")
	fmt.Fprintln(w, "r6id (more SSDs at equal cores).")
	return nil
}
