package bench

import (
	"fmt"
	"io"
	"time"

	"github.com/spilly-db/spilly/internal/nvmesim"
	"github.com/spilly-db/spilly/internal/uring"
)

func init() {
	register(Experiment{
		ID:    "sec2-hw-cost",
		Paper: "§2 hardware-cost table (30 TB storage options)",
		Run:   runHWCost,
	})
	register(Experiment{
		ID:    "sec3-io-model",
		Paper: "§3 table: hash table on SSD vs partitioning to SSD",
		Run:   runIOModel,
	})
}

// runHWCost reprints the paper's static price/bandwidth comparison (data
// embedded from the paper, January 2024 prices); included so the harness
// regenerates every table in the paper.
func runHWCost(w io.Writer, o Options) error {
	fmt.Fprintln(w, "30 TB storage configurations (January 2024 prices, from the paper):")
	t := newTable("Configuration", "Price $", "Capacity TB", "Read GB/s", "Write GB/s", "$/TB")
	rows := []struct {
		name          string
		price         float64
		capacity      float64
		read, write   float64
	}{
		{"16x1.9 TB PCIe 5 SSD", 6832, 30.7, 176, 88},   // the paper's table transposes
		{"8x3.8 TB PCIe 5 SSD", 5376, 30.7, 88, 49.6},   // read/write columns; we report
		{"4x7.7 TB PCIe 5 SSD", 4620, 30.7, 44, 24.8},   // bandwidth = devices x CM7-class
		{"8x3.8 TB PCIe 4 SSD", 5032, 30.7, 52, 28},     // per-device figures.
		{"8x3.8 TB PCIe 3 SSD", 3592, 30.7, 24, 16},
	}
	for _, r := range rows {
		t.row(r.name, r.price, r.capacity, r.read, r.write, r.price/r.capacity)
	}
	t.write(w)
	fmt.Fprintln(w, "\nShape check: PCIe 5 arrays dominate older generations in absolute and")
	fmt.Fprintln(w, "per-dollar bandwidth; the paper's highlighted 8x3.8TB config is ~6% more")
	fmt.Fprintln(w, "expensive than PCIe 4 and ~50% more than PCIe 3.")
	return nil
}

// runIOModel reproduces the §3 back-of-envelope table analytically at paper
// scale, then validates the same two strategies measured on the simulated
// array at laptop scale.
func runIOModel(w io.Writer, o Options) error {
	// Analytic model at paper scale: 839M 128-byte tuples (~100 GB) on an
	// array with 50 GB/s I/O throughput and 4 KB point-access pages.
	const (
		tuples    = 839e6
		tupleSize = 128.0
		pageSize  = 4096.0
		ioBps     = 50e9
	)
	dataGB := tuples * tupleSize / 1e9
	fmt.Fprintf(w, "Analytic model (paper scale: %.0fM tuples of %gB, %.0f GB/s array):\n", tuples/1e6, tupleSize, ioBps/1e9)
	t := newTable("Strategy", "Writes", "Total I/O GB", "Tuples/s", "Time s")
	// Hash table on SSD: every tuple insert rewrites a 4 KB page and each
	// prior read costs a page: write amplification pageSize/tupleSize.
	htIO := tuples * pageSize * 2 / 1e9 // read + write per point access
	htTime := htIO * 1e9 / ioBps
	t.row("Hash table on SSD", fmt.Sprintf("%.0fM", tuples/1e6), htIO, tuples/htTime, htTime)
	// Partitioning: each tuple written once in full pages.
	partWrites := tuples * tupleSize / pageSize
	partTime := dataGB * 1e9 / ioBps
	t.row("Partition to SSD", fmt.Sprintf("%.0fM", partWrites/1e6), dataGB, tuples/partTime, partTime)
	t.write(w)

	// Measured on the simulator at laptop scale.
	n := int64(200_000)
	if o.Quick {
		n = 20_000
	}
	fmt.Fprintf(w, "\nMeasured on the simulated array (%d tuples of 128B, 4KB pages):\n", n)
	spec := nvmesim.DeviceSpec{ReadBandwidth: 110e6 * 8, WriteBandwidth: 62e6 * 8, Latency: 100 * time.Microsecond}

	measure := func(pointAccess bool) (float64, float64) {
		arr := nvmesim.New(1, spec, nvmesim.RealClock{})
		ring := uring.New(arr)
		start := time.Now()
		var written int64
		if pointAccess {
			// Each "insert" rewrites the 4 KB page containing the bucket.
			page := make([]byte, 4096)
			for i := int64(0); i < n; i++ {
				buf := page
				if _, err := ring.QueueWrite(buf, uint64(i)); err != nil {
					return 0, 0
				}
				written += 4096
				if ring.Outstanding()+ring.Pending() > 64 {
					ring.Submit()
					ring.Poll(nil, true)
				}
			}
		} else {
			// Tuples accumulate into 4 KB partition pages, one write per page.
			page := make([]byte, 4096)
			perPage := int64(4096 / 128)
			for i := int64(0); i < n; i += perPage {
				if _, err := ring.QueueWrite(page, uint64(i)); err != nil {
					return 0, 0
				}
				written += 4096
				if ring.Outstanding()+ring.Pending() > 64 {
					ring.Submit()
					ring.Poll(nil, true)
				}
			}
		}
		ring.WaitAll(nil)
		el := time.Since(start).Seconds()
		return float64(n) / el, float64(written) / 1e9
	}

	mt := newTable("Strategy", "I/O GB", "Tuples/s")
	tp1, io1 := measure(true)
	mt.row("Hash table on SSD (write amp 32x)", io1, tp1)
	tp2, io2 := measure(false)
	mt.row("Partition to SSD", io2, tp2)
	mt.write(w)
	fmt.Fprintf(w, "\nShape check: partitioning sustains ~%0.fx the tuple throughput of\n", tp2/tp1)
	fmt.Fprintln(w, "page-granular point access (paper: 64x at 128B tuples on 4KB pages).")
	return nil
}
