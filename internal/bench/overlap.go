package bench

import (
	"fmt"
	"hash/fnv"
	"io"

	spilly "github.com/spilly-db/spilly"
	"github.com/spilly-db/spilly/internal/chaos"
)

func init() {
	register(Experiment{
		ID:    "overlap",
		Paper: "Phase-2 overlap: pipelined spill readback vs blocking materialization (engine addition)",
		Run:   runOverlapReport,
	})
}

// overlapQueries are the spill-heavy workloads whose phase 2 reads back
// partitions from the array: Q9 (deep join tree, the largest readback
// volume), Q12 (large join with a spilling probe side), Q13 (string-heavy
// join/agg whose merge phase pulls partitions through the scheduler).
var overlapQueries = []int{9, 12, 13}

// overlapSpillBudget forces all three queries to partition and spill at the
// measurement scale factors while leaving the scheduler some headroom to
// reserve prefetch buffers from — the regime the scheduler targets. (Under a
// fully saturated budget the lookahead window shrinks to its one-block
// floor: wall time still improves, but stall approaches the blocking
// baseline since most reads go back to demand.)
const overlapSpillBudget = 512 << 10

// OverlapMeasurement is one (query, readback-mode) cell of the phase-2
// overlap report.
type OverlapMeasurement struct {
	Query string `json:"query"`
	Mode  string `json:"mode"` // "blocking" or "pipelined"
	// NsPerOp is the best wall time over a few repetitions; StallNsPerOp is
	// the spill-readback stall time of that same best run (worker wall time
	// spent inside cursor waits, summed across operators).
	NsPerOp      float64 `json:"ns_per_op"`
	StallNsPerOp float64 `json:"stall_ns_per_op"`
	// Prefetched counts partitions whose readback was already in flight
	// when the consumer opened them (always 0 in blocking mode).
	Prefetched     int64  `json:"prefetched_partitions"`
	SpillReadBytes int64  `json:"spill_read_bytes"`
	Checksum       string `json:"checksum"` // result fingerprint hash; must match across modes
}

// Key returns the map key "Q18/pipelined" used by BENCH_overlap.json.
func (m OverlapMeasurement) Key() string { return m.Query + "/" + m.Mode }

// overlapChecksum hashes the order-insensitive result fingerprint so the
// report can assert both readback modes computed identical results.
func overlapChecksum(res *spilly.Result) string {
	h := fnv.New64a()
	h.Write([]byte(chaos.Fingerprint(res.Batch)))
	return fmt.Sprintf("%016x", h.Sum64())
}

// MeasureOverlap runs the blocking-vs-pipelined readback matrix and returns
// one measurement per (query, mode). Wall time is the best of a few
// repetitions (single-run wall clock is noisy on a shared box); stall time
// and prefetch counts come from the same best run so the columns stay
// internally consistent.
func MeasureOverlap(o Options) ([]OverlapMeasurement, error) {
	sf := 0.02
	reps := 3
	if o.Quick {
		sf = 0.01
		reps = 2
	}
	if len(o.SFs) > 0 {
		sf = o.SFs[0]
	}
	modes := []struct {
		name     string
		blocking bool
	}{
		{"blocking", true},
		{"pipelined", false},
	}
	var out []OverlapMeasurement
	for _, m := range modes {
		eng, err := newEngine(spilly.Config{
			Workers:           o.workers(),
			MemoryBudget:      o.budget(overlapSpillBudget),
			Compression:       true,
			BlockingSpillRead: m.blocking,
		}, sf, false)
		if err != nil {
			return nil, err
		}
		for _, q := range overlapQueries {
			// Warmup run: the first execution pays one-time pool and
			// table-setup costs that are not steady-state readback cost.
			if _, err := eng.RunTPCH(q); err != nil {
				return nil, fmt.Errorf("%s Q%d: %w", m.name, q, err)
			}
			best := OverlapMeasurement{Query: fmt.Sprintf("Q%d", q), Mode: m.name}
			for rep := 0; rep < reps; rep++ {
				res, err := eng.RunTPCH(q)
				if err != nil {
					return nil, fmt.Errorf("%s Q%d: %w", m.name, q, err)
				}
				s := res.Stats
				if ns := float64(s.Duration.Nanoseconds()); rep == 0 || ns < best.NsPerOp {
					best.NsPerOp = ns
					best.StallNsPerOp = float64(s.SpillStallTime.Nanoseconds())
					best.Prefetched = s.PrefetchedPartitions
					best.SpillReadBytes = s.SpillReadBytes
					best.Checksum = overlapChecksum(res)
				}
			}
			out = append(out, best)
		}
	}
	return out, nil
}

func runOverlapReport(w io.Writer, o Options) error {
	ms, err := MeasureOverlap(o)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "Phase-2 overlap: spilled TPC-H joins/aggs with blocking readback")
	fmt.Fprintln(w, "(materialize each partition, then process it) vs the pipelined")
	fmt.Fprintln(w, "partition scheduler (next partitions' block reads stay in flight while")
	fmt.Fprintln(w, "the current one is probed/merged). Stall is worker wall time spent")
	fmt.Fprintln(w, "waiting inside spill-read cursor calls; checksums must match per query.")
	fmt.Fprintln(w)
	t := newTable("Query", "Mode", "ms/op", "stall ms/op", "prefetched", "read back", "checksum")
	for _, m := range ms {
		t.row(m.Query, m.Mode, m.NsPerOp/1e6, m.StallNsPerOp/1e6, m.Prefetched,
			fmtBytes(m.SpillReadBytes), m.Checksum)
	}
	t.write(w)

	byKey := map[string]OverlapMeasurement{}
	for _, m := range ms {
		byKey[m.Key()] = m
	}
	var stallRatios, wallRatios []float64
	for _, q := range overlapQueries {
		bl, ok1 := byKey[fmt.Sprintf("Q%d/blocking", q)]
		pl, ok2 := byKey[fmt.Sprintf("Q%d/pipelined", q)]
		if !ok1 || !ok2 {
			continue
		}
		if bl.Checksum != pl.Checksum {
			return fmt.Errorf("overlap: Q%d result checksum mismatch: blocking %s vs pipelined %s",
				q, bl.Checksum, pl.Checksum)
		}
		if bl.StallNsPerOp > 0 {
			fmt.Fprintf(w, "\nQ%d: pipelined readback cuts stall to %.0f%% of blocking (wall %.2fx)",
				q, 100*pl.StallNsPerOp/bl.StallNsPerOp, bl.NsPerOp/pl.NsPerOp)
			stallRatios = append(stallRatios, pl.StallNsPerOp/bl.StallNsPerOp)
			wallRatios = append(wallRatios, bl.NsPerOp/pl.NsPerOp)
		}
	}
	fmt.Fprintln(w)
	fmt.Fprintf(w, "\nShape check: overlapping readback with phase-2 compute lowers spill\n")
	fmt.Fprintf(w, "stall time (geo-mean %.0f%% of blocking) and wall time (geo-mean %.2fx)\n",
		100*geoMean(stallRatios), geoMean(wallRatios))
	fmt.Fprintln(w, "while checksums stay identical — the scheduler hides I/O, it never")
	fmt.Fprintln(w, "changes results.")
	return nil
}
