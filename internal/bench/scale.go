package bench

import (
	"fmt"
	"io"
	"time"

	spilly "github.com/spilly-db/spilly"
	"github.com/spilly-db/spilly/internal/tpch"
)

func init() {
	register(Experiment{
		ID:    "fig5",
		Paper: "Figure 5: in-memory TPC-H performance, hot runs",
		Run:   runHotRuns,
	})
	register(Experiment{
		ID:    "fig6",
		Paper: "Figure 6 + §6.2 tables: cold-run scaling across scale factors",
		Run:   runColdScaling,
	})
	register(Experiment{
		ID:    "fig7",
		Paper: "Figure 7: spilling aggregation microbenchmark across scale factors",
		Run:   func(w io.Writer, o Options) error { return runMicroSweep(w, o, "agg") },
	})
	register(Experiment{
		ID:    "fig10",
		Paper: "Figure 10: spilling join microbenchmark across scale factors",
		Run:   func(w io.Writer, o Options) error { return runMicroSweep(w, o, "join") },
	})
	register(Experiment{
		ID:    "sec65-hybrid",
		Paper: "§6.5 table: hybrid spilling vs spill-all",
		Run:   runHybridVsSpillAll,
	})
	register(Experiment{
		ID:    "fig8",
		Paper: "Figure 8: CPU / memory / I/O traces of the aggregation microbenchmark",
		Run:   runTraces,
	})
}

func runHotRuns(w io.Writer, o Options) error {
	sf := 0.02
	if o.Quick {
		sf = 0.01
	}
	fmt.Fprintf(w, "TPC-H hot runs at SF %g: tables on the NVMe array with a buffer cache\n", sf)
	fmt.Fprintln(w, "large enough to hold them; each query runs twice and the second run is")
	fmt.Fprintln(w, "measured (§6.1). No memory pressure.")
	fmt.Fprintln(w)
	t := newTable("System", "Role", "tup/s (geomean)", "total time")
	for _, sys := range systems() {
		cfg := sys.Make(0, o.workers(), 8)
		cfg.CacheBytes = 1 << 30
		eng, err := newEngine(cfg, sf, true)
		if err != nil {
			return err
		}
		var rates []float64
		var total time.Duration
		for q := 1; q <= tpch.NumQueries; q++ {
			if _, err := eng.RunTPCH(q); err != nil { // cold pass warms the cache
				return fmt.Errorf("%s Q%d: %w", sys.Name, q, err)
			}
			res, err := eng.RunTPCH(q) // hot pass
			if err != nil {
				return fmt.Errorf("%s Q%d: %w", sys.Name, q, err)
			}
			rates = append(rates, res.Stats.TuplesPerSec)
			total += res.Stats.Duration
		}
		t.row(sys.Name, sys.Role, geoMean(rates), total)
	}
	t.write(w)
	fmt.Fprintln(w, "\nShape check (paper Figure 5): Spilly matches the pure in-memory engine")
	fmt.Fprintln(w, "(Hyper) — the whole point of adaptive materialization — while the")
	fmt.Fprintln(w, "always-partitioning systems trail.")
	return nil
}

func runColdScaling(w io.Writer, o Options) error {
	sfs := o.sweep([]float64{0.02, 0.05, 0.1, 0.2})
	budget := o.budget(12 << 20)
	fmt.Fprintf(w, "TPC-H cold runs: tables on the NVMe array, no cache, %s memory budget\n", fmtBytes(budget))
	fmt.Fprintln(w, "(the paper holds 384 GB against up to 10 TB; the budget:data ratio axis")
	fmt.Fprintln(w, "is reproduced by growing SF against a fixed budget).")
	fmt.Fprintln(w)

	type cell struct {
		tps    float64
		failed bool
	}
	results := map[string][]cell{}
	spilled := make([]int64, len(sfs))
	scanned := make([]int64, len(sfs))
	var spillyTimes [][]time.Duration

	for si, sf := range sfs {
		for _, sys := range systems() {
			eng, err := newEngine(sys.Make(budget, o.workers(), 8), sf, true)
			if err != nil {
				return err
			}
			tuples, total, perQ, err := runAllQueriesWithStats(eng, func(s spilly.Stats) {
				if sys.Name == "Spilly" {
					spilled[si] += s.SpilledBytes
					scanned[si] += s.ScannedBytes
				}
			})
			if err != nil {
				results[sys.Name] = append(results[sys.Name], cell{failed: true})
				continue
			}
			results[sys.Name] = append(results[sys.Name], cell{tps: float64(tuples) / total.Seconds()})
			if sys.Name == "Spilly" {
				spillyTimes = append(spillyTimes, perQ)
			}
		}
	}

	t := newTable(append([]string{"System"}, sfHeaders(sfs)...)...)
	for _, sys := range systems() {
		cells := []interface{}{sys.Name}
		for _, c := range results[sys.Name] {
			if c.failed {
				cells = append(cells, "FAIL (OOM)")
			} else {
				cells = append(cells, c.tps)
			}
		}
		t.row(cells...)
	}
	t.write(w)

	fmt.Fprintln(w, "\nSpilly spilled vs scanned data (paper §6.2 table):")
	st := newTable("SF", "Spilled", "Scanned", "Spilled fraction")
	for si, sf := range sfs {
		frac := 0.0
		if scanned[si] > 0 {
			frac = float64(spilled[si]) / float64(scanned[si])
		}
		st.row(fmt.Sprintf("%g", sf), fmtBytes(spilled[si]), fmtBytes(scanned[si]), fmt.Sprintf("%.0f%%", 100*frac))
	}
	st.write(w)

	if len(spillyTimes) > 0 {
		fmt.Fprintln(w, "\nSpilly absolute query times (§6.2, smallest and largest SF):")
		qt := newTable("Query", fmt.Sprintf("SF %g", sfs[0]), fmt.Sprintf("SF %g", sfs[len(sfs)-1]))
		last := spillyTimes[len(spillyTimes)-1]
		for q := 1; q <= tpch.NumQueries; q++ {
			qt.row(fmt.Sprintf("Q%d", q), spillyTimes[0][q], last[q])
		}
		qt.write(w)
	}
	fmt.Fprintln(w, "\nShape check (paper Figure 6): Spilly's throughput declines only mildly")
	fmt.Fprintln(w, "as data grows past memory (paper: 11% over 50x data growth); the pure")
	fmt.Fprintln(w, "in-memory engine fails outright once the budget is exceeded; the HDD-era")
	fmt.Fprintln(w, "engine survives but is several times slower throughout.")
	return nil
}

// runAllQueriesWithStats is runAllQueries plus a per-query stats callback.
func runAllQueriesWithStats(eng *spilly.Engine, cb func(spilly.Stats)) (int64, time.Duration, []time.Duration, error) {
	perQuery := make([]time.Duration, tpch.NumQueries+1)
	var tuples int64
	var total time.Duration
	for q := 1; q <= tpch.NumQueries; q++ {
		eng.ClearCaches()
		res, err := eng.RunTPCH(q)
		if err != nil {
			return 0, 0, nil, fmt.Errorf("Q%d: %w", q, err)
		}
		tuples += res.Stats.ScannedRows
		total += res.Stats.Duration
		perQuery[q] = res.Stats.Duration
		if cb != nil {
			cb(res.Stats)
		}
	}
	return tuples, total, perQuery, nil
}

func runMicroSweep(w io.Writer, o Options, micro string) error {
	sfs := o.sweep([]float64{0.02, 0.05, 0.1, 0.2})
	budget := o.budget(4 << 20)
	label := "aggregation (§6.3)"
	if micro == "join" {
		label = "join (§6.7)"
	}
	fmt.Fprintf(w, "Spilling %s microbenchmark across scale factors, %s budget,\n", label, fmtBytes(budget))
	fmt.Fprintln(w, "tables on the NVMe array.")
	fmt.Fprintln(w)
	t := newTable(append([]string{"System"}, sfHeaders(sfs)...)...)
	spillRow := newTable(append([]string{"Metric"}, sfHeaders(sfs)...)...)
	var spilledCells []interface{}
	spilledCells = append(spilledCells, "Spilly spilled")
	var firstTps, lastTps float64
	for _, sys := range systems() {
		cells := []interface{}{sys.Name}
		for si, sf := range sfs {
			eng, err := newEngine(sys.Make(budget, o.workers(), 8), sf, true)
			if err != nil {
				return err
			}
			res, err := eng.Run(microPlan(eng, micro))
			if err != nil {
				cells = append(cells, "FAIL (OOM)")
				if sys.Name == "Spilly" {
					spilledCells = append(spilledCells, "-")
				}
				continue
			}
			cells = append(cells, res.Stats.TuplesPerSec)
			if sys.Name == "Spilly" {
				spilledCells = append(spilledCells, fmtBytes(res.Stats.SpilledBytes))
				if si == 0 {
					firstTps = res.Stats.TuplesPerSec
				}
				if si == len(sfs)-1 {
					lastTps = res.Stats.TuplesPerSec
				}
			}
		}
		t.row(cells...)
	}
	t.write(w)
	fmt.Fprintln(w)
	spillRow.row(spilledCells...)
	spillRow.write(w)
	if lastTps > 0 {
		fmt.Fprintf(w, "\nShape check: Spilly's throughput drop across the sweep is %.2fx\n", firstTps/lastTps)
		fmt.Fprintln(w, "(paper: 1.19x for the aggregation over SF 100->10k, 1.63x for the join).")
		fmt.Fprintln(w, "The in-memory engine fails at larger SFs; the HDD-era engine is slow but flat.")
	}
	return nil
}

func runHybridVsSpillAll(w io.Writer, o Options) error {
	sfs := o.sweep([]float64{0.02, 0.05, 0.1, 0.2})
	budget := o.budget(12 << 20)
	fmt.Fprintf(w, "Umami's hybrid spilling vs spilling everything on overflow (§6.5),\n")
	fmt.Fprintf(w, "TPC-H cold runs, %s budget.\n\n", fmtBytes(budget))
	t := newTable("SF", "Spilled all", "Spilled hybrid", "Time all", "Time hybrid")
	for _, sf := range sfs {
		var spilledB [2]int64
		var times [2]time.Duration
		for i, mode := range []spilly.Mode{spilly.SpillAll, spilly.Adaptive} {
			eng, err := newEngine(spilly.Config{
				Workers: o.workers(), MemoryBudget: budget, Mode: mode, Compression: true,
			}, sf, true)
			if err != nil {
				return err
			}
			_, total, _, err := runAllQueriesWithStats(eng, func(s spilly.Stats) {
				spilledB[i] += s.SpilledBytes
			})
			if err != nil {
				return fmt.Errorf("mode %d SF %g: %w", mode, sf, err)
			}
			times[i] = total
		}
		t.row(fmt.Sprintf("%g", sf), fmtBytes(spilledB[0]), fmtBytes(spilledB[1]), times[0], times[1])
	}
	t.write(w)
	fmt.Fprintln(w, "\nShape check (paper §6.5): hybrid spilling writes the least just past the")
	fmt.Fprintln(w, "memory cliff (paper: 36% less at SF 200) and the advantage shrinks at")
	fmt.Fprintln(w, "larger scale factors, where almost everything must spill either way.")
	return nil
}

func runTraces(w io.Writer, o Options) error {
	sf := 0.1
	if o.Quick {
		sf = 0.05
	}
	budget := o.budget(4 << 20)
	for _, tc := range []struct {
		name   string
		sf     float64
		budget int64
	}{
		{"in-memory (paper Fig. 8 top)", sf, 0},
		{"out-of-memory (paper Fig. 8 bottom)", sf, budget},
	} {
		eng, err := newEngine(spilly.Config{
			Workers: o.workers(), MemoryBudget: tc.budget, Compression: false,
		}, tc.sf, true)
		if err != nil {
			return err
		}
		res, samples, err := eng.TraceQuery(eng.AggMicroPlan(), 10*time.Millisecond)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "Aggregation microbenchmark, %s: SF %g, %s spilled, %.0f tup/s\n",
			tc.name, tc.sf, fmtBytes(res.Stats.SpilledBytes), res.Stats.TuplesPerSec)
		t := newTable("t (ms)", "Mtup/s", "table read MB/s", "spill write MB/s", "spill read MB/s")
		step := 1
		if len(samples) > 24 {
			step = len(samples) / 24
		}
		for i := 0; i < len(samples); i += step {
			s := samples[i]
			t.row(s.T.Milliseconds(),
				s.Rates["tuples"]/1e6,
				s.Rates["table_read"]/1e6,
				s.Rates["spill_write"]/1e6,
				s.Rates["spill_read"]/1e6)
		}
		t.write(w)
		fmt.Fprintln(w)
	}
	fmt.Fprintln(w, "Shape check (paper Figure 8): the in-memory run shows CPU-bound scan +")
	fmt.Fprintln(w, "merge phases with no spill I/O; the out-of-memory run adds a write phase")
	fmt.Fprintln(w, "near the array's write bandwidth and a read-back phase, with tuple")
	fmt.Fprintln(w, "throughput staying CPU-limited rather than collapsing to I/O speed.")
	return nil
}
