package bench

import (
	"encoding/binary"
	"fmt"
	"io"
	"time"

	spilly "github.com/spilly-db/spilly"
	"github.com/spilly-db/spilly/internal/core"
	"github.com/spilly-db/spilly/internal/metrics"
	"github.com/spilly-db/spilly/internal/tpch"
	"github.com/spilly-db/spilly/internal/xhash"
)

func init() {
	register(Experiment{
		ID:    "fig2",
		Paper: "Figure 2: TPC-H with partitioning, hybrid, non-partitioning operators (in memory)",
		Run:   func(w io.Writer, o Options) error { return runOperatorChoice(w, o, false) },
	})
	register(Experiment{
		ID:    "fig9",
		Paper: "Figure 9: same as Figure 2 plus Umami's adaptive operators",
		Run:   func(w io.Writer, o Options) error { return runOperatorChoice(w, o, true) },
	})
	register(Experiment{
		ID:    "sec44-cpb",
		Paper: "§4.4 cycles/byte table across TPC-H queries",
		Run:   runCyclesPerByte,
	})
	register(Experiment{
		ID:    "sec66-hashing",
		Paper: "§6.6 cost-of-hashing table (materialization with and without hashing)",
		Run:   runHashingCost,
	})
}

// inMemVariants are the in-memory operator strategies of Figures 2 and 9.
func inMemVariants(adaptive bool) []system {
	v := []system{
		{"partitioning", "grace join + partitioning aggregation", func(b int64, w, d int) spilly.Config {
			return spilly.Config{Workers: w, Mode: spilly.AlwaysPartition, ForceGrace: true, NoPreAgg: true}
		}},
		{"hybrid", "hybrid hash join (always partitions build side)", func(b int64, w, d int) spilly.Config {
			return spilly.Config{Workers: w, Mode: spilly.AlwaysPartition}
		}},
		{"non-partitioning", "simple hash join + plain aggregation", func(b int64, w, d int) spilly.Config {
			return spilly.Config{Workers: w, Mode: spilly.NeverPartition}
		}},
	}
	if adaptive {
		v = append(v, system{"adaptive (Umami)", "unified operators", func(b int64, w, d int) spilly.Config {
			return spilly.Config{Workers: w}
		}})
	}
	return v
}

func runOperatorChoice(w io.Writer, o Options, adaptive bool) error {
	sfs := o.sweep([]float64{0.01, 0.05})
	fmt.Fprintln(w, "TPC-H tuple throughput by operator strategy; data resides in memory,")
	fmt.Fprintln(w, "no memory pressure (the paper's small-query majority).")
	t := newTable(append([]string{"Strategy"}, sfHeaders(sfs)...)...)
	type res struct{ tps []float64 }
	results := map[string]*res{}
	repeats := 2
	if o.Quick {
		repeats = 1
	}
	for _, v := range inMemVariants(adaptive) {
		results[v.Name] = &res{}
		for _, sf := range sfs {
			eng, err := newEngine(v.Make(0, o.workers(), 8), sf, false)
			if err != nil {
				return err
			}
			// Best of N: single-run wall-clock on a shared 1-core box is
			// noisy relative to the gaps under study.
			best := 0.0
			for rep := 0; rep < repeats; rep++ {
				tuples, total, _, err := runAllQueries(eng)
				if err != nil {
					return fmt.Errorf("%s at SF %g: %w", v.Name, sf, err)
				}
				if tps := float64(tuples) / total.Seconds(); tps > best {
					best = tps
				}
			}
			results[v.Name].tps = append(results[v.Name].tps, best)
		}
	}
	for _, v := range inMemVariants(adaptive) {
		cells := []interface{}{v.Name}
		for _, tp := range results[v.Name].tps {
			cells = append(cells, tp)
		}
		t.row(cells...)
	}
	t.write(w)
	part := results["partitioning"].tps[0]
	nonPart := results["non-partitioning"].tps[0]
	fmt.Fprintf(w, "\nShape check: non-partitioning is %.1fx faster than always-partitioning\n", nonPart/part)
	fmt.Fprintln(w, "and the hybrid join sits in between; with adaptive operators enabled")
	fmt.Fprintln(w, "(Figure 9) they match the non-partitioning variant. The paper reports a")
	fmt.Fprintln(w, "~5x gap; ours is smaller because this engine's interpreted scan and")
	fmt.Fprintln(w, "expression evaluation dominate per-query time where the paper's")
	fmt.Fprintln(w, "generated C++ makes operator materialization the bottleneck — the")
	fmt.Fprintln(w, "ordering, which drives the paper's argument, is preserved.")
	return nil
}

func sfHeaders(sfs []float64) []string {
	out := make([]string, len(sfs))
	for i, sf := range sfs {
		out[i] = fmt.Sprintf("SF %g tup/s", sf)
	}
	return out
}

func runCyclesPerByte(w io.Writer, o Options) error {
	sf := 0.02
	if o.Quick {
		sf = 0.01
	}
	eng, err := newEngine(spilly.Config{Workers: o.workers()}, sf, false)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "CPU cycles per scanned byte across TPC-H queries (SF %g, in memory;\n", sf)
	fmt.Fprintf(w, "nanoseconds at the paper's nominal %.1f GHz).\n\n", metrics.NominalHz/1e9)
	cpb := make([]float64, tpch.NumQueries+1)
	minV, maxV := 1e18, 0.0
	for q := 1; q <= tpch.NumQueries; q++ {
		res, err := eng.RunTPCH(q)
		if err != nil {
			return err
		}
		cpb[q] = res.Stats.CyclesPerByte
		if cpb[q] < minV {
			minV = cpb[q]
		}
		if cpb[q] > maxV {
			maxV = cpb[q]
		}
	}
	t := newTable("Query", "cycles/byte")
	for q := 1; q <= tpch.NumQueries; q++ {
		t.row(fmt.Sprintf("Q%d", q), cpb[q])
	}
	t.write(w)
	fmt.Fprintf(w, "\nPaper's highlighted queries: Q1=%.1f Q13=%.1f Q16=%.1f Q17=%.1f Q19=%.1f\n",
		cpb[1], cpb[13], cpb[16], cpb[17], cpb[19])
	fmt.Fprintf(w, "max/min spread: %.1fx (paper: 20.2x). Shape check: per-byte CPU cost\n", maxV/minV)
	fmt.Fprintln(w, "varies by more than an order of magnitude across queries, so some spill")
	fmt.Fprintln(w, "I/O-bound and others compute-bound (the premise of self-regulation).")
	return nil
}

// runHashingCost measures the §6.6 microbenchmark: the cost of passing a
// real hash (vs a constant) to Umami's StoreTuple during materialization,
// for wide and key-only tuples.
func runHashingCost(w io.Writer, o Options) error {
	n := 2_000_000
	if o.Quick {
		n = 300_000
	}
	fmt.Fprintf(w, "Materializing %d tuples through the Umami interface (§6.6):\n\n", n)
	// Discarded warmup: the first materialization pays the allocator's
	// heap growth, which would otherwise bias the first configuration.
	measureMaterialization(n, 199, true)
	t := newTable("Payload bytes", "Hashing", "Cycles/Tuple", "Time ms")
	for _, payload := range []int{199, 0} {
		// The effect under study is <2%, far below the drift between
		// consecutive runs on a shared single core. Interleave the two
		// configurations across repetitions and keep each one's minimum.
		var best [2]time.Duration
		for rep := 0; rep < 5; rep++ {
			for i, hashing := range []bool{false, true} {
				m := measureMaterialization(n, payload, hashing)
				if best[i] == 0 || m < best[i] {
					best[i] = m
				}
			}
		}
		for i, label := range []string{"no", "yes"} {
			t.row(payload, label, metrics.Cycles(best[i])/float64(n), float64(best[i].Milliseconds()))
		}
	}
	t.write(w)
	fmt.Fprintln(w, "\nShape check: hashing adds work per tuple but is overshadowed by the")
	fmt.Fprintln(w, "materialization loads/stores (paper: <2% cycle overhead at 199B payload).")
	return nil
}

func measureMaterialization(n, payload int, hashing bool) time.Duration {
	shared := core.NewShared(core.Config{})
	buf := shared.NewBuffer()
	tuple := make([]byte, 8+payload)
	start := time.Now()
	for i := 0; i < n; i++ {
		binary.LittleEndian.PutUint64(tuple, uint64(i))
		h := uint64(0) // the paper's "fake hash of 0"
		if hashing {
			h = xhash.U64(uint64(i), 17)
		}
		buf.StoreTuple(tuple, h)
	}
	d := time.Since(start)
	buf.Finish()
	return d
}
