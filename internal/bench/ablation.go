package bench

import (
	"fmt"
	"io"

	spilly "github.com/spilly-db/spilly"
)

func init() {
	register(Experiment{
		ID:    "ablation-umami",
		Paper: "ablation: Umami design choices (partition count, page size) under spilling",
		Run:   runAblation,
	})
}

// runAblation sweeps the two knobs DESIGN.md calls out as fixed by the
// paper (64 partitions, 64 KiB pages) on the spilling aggregation
// microbenchmark, showing why the defaults sit where they do: too few
// partitions lose hybrid granularity and phase-2 locality; too many
// multiply the active working set; small pages multiply per-write latency;
// oversized pages waste budget granularity.
func runAblation(w io.Writer, o Options) error {
	sf := 0.05
	budget := o.budget(4 << 20)
	if o.Quick {
		sf = 0.02
	}
	device := spilly.DefaultDevice.Scaled(goCPUFactor)
	fmt.Fprintf(w, "Spilling aggregation microbenchmark (SF %g, %s budget, 2 SSDs),\n", sf, fmtBytes(budget))
	fmt.Fprintln(w, "sweeping Umami's partition count and page size independently.")
	fmt.Fprintln(w)

	measure := func(parts, pageSize int) (float64, int64, error) {
		eng, err := spilly.Open(spilly.Config{
			Workers: o.workers(), MemoryBudget: budget, Compression: true,
			SpillDevices: 2, Device: device,
			Partitions: parts, PageSize: pageSize,
		})
		if err != nil {
			return 0, 0, err
		}
		if err := eng.LoadTPCH(sf, false); err != nil {
			return 0, 0, err
		}
		res, err := eng.Run(eng.AggMicroPlan())
		if err != nil {
			return 0, 0, err
		}
		return res.Stats.TuplesPerSec, res.Stats.SpilledBytes, nil
	}

	pt := newTable("Partitions", "Page size", "tup/s", "Spilled")
	parts := []int{8, 16, 64}
	if o.Quick {
		parts = []int{8, 64}
	}
	for _, p := range parts {
		tps, spilled, err := measure(p, 16<<10)
		if err != nil {
			return err
		}
		pt.row(p, "16KB", tps, fmtBytes(spilled))
	}
	sizes := []int{4 << 10, 16 << 10, 64 << 10}
	if o.Quick {
		sizes = []int{4 << 10, 64 << 10}
	}
	for _, ps := range sizes {
		tps, spilled, err := measure(16, ps)
		if err != nil {
			return err
		}
		pt.row(16, fmtBytes(int64(ps)), tps, fmtBytes(spilled))
	}
	pt.write(w)
	fmt.Fprintln(w, "\nShape check: throughput is flat across moderate partition counts (the")
	fmt.Fprintln(w, "adaptivity works at any fan-out that fits the budget) and page size")
	fmt.Fprintln(w, "trades per-write overhead against working-set granularity, peaking in")
	fmt.Fprintln(w, "the middle at this budget — the paper's 64 KiB assumes a 384 GB budget.")
	return nil
}
