package bench

import (
	"bytes"
	"strings"
	"testing"
)

// TestAllExperimentsQuick smoke-runs every experiment in quick mode and
// checks that each produces a non-trivial report.
func TestAllExperimentsQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("experiments take seconds to minutes")
	}
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			var buf bytes.Buffer
			if err := e.Run(&buf, Options{Quick: true, Workers: 2}); err != nil {
				t.Fatalf("%s: %v", e.ID, err)
			}
			out := buf.String()
			if len(out) < 100 {
				t.Fatalf("%s produced a suspiciously short report:\n%s", e.ID, out)
			}
			if !strings.Contains(out, "Shape check") && e.ID != "fig8" {
				t.Errorf("%s report lacks a shape check note", e.ID)
			}
		})
	}
}

func TestRegistryComplete(t *testing.T) {
	// Every evaluation artifact from DESIGN.md's experiment index must be
	// registered.
	want := []string{
		"sec2-hw-cost", "sec3-io-model", "fig2", "sec44-cpb", "fig3",
		"fig5", "fig6", "fig7", "fig8", "sec65-hybrid", "fig9",
		"sec66-hashing", "fig10", "fig11", "fig12", "sec52-tablecomp",
		"ablation-umami", "alloc", "overlap", "parity", "rescache",
		"iosched",
	}
	for _, id := range want {
		if ByID(id) == nil {
			t.Errorf("experiment %s not registered", id)
		}
	}
	if len(All()) != len(want) {
		t.Errorf("registry has %d experiments, index lists %d", len(All()), len(want))
	}
}

func TestGeoMean(t *testing.T) {
	if g := geoMean([]float64{1, 100}); g < 9.99 || g > 10.01 {
		t.Fatalf("geoMean = %v", g)
	}
	if geoMean(nil) != 0 {
		t.Fatal("empty geoMean")
	}
}

func TestTableFormatting(t *testing.T) {
	tab := newTable("a", "bb")
	tab.row("x", 1234.5)
	var buf bytes.Buffer
	tab.write(&buf)
	if !strings.Contains(buf.String(), "1.23k") {
		t.Fatalf("table output: %s", buf.String())
	}
}

func TestFmtBytes(t *testing.T) {
	cases := map[int64]string{
		512:      "512B",
		2048:     "2.0KB",
		5 << 20:  "5.0MB",
		3 << 30:  "3.00GB",
	}
	for in, want := range cases {
		if got := fmtBytes(in); got != want {
			t.Errorf("fmtBytes(%d) = %s, want %s", in, got, want)
		}
	}
}
