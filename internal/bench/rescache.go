package bench

import (
	"fmt"
	"io"

	spilly "github.com/spilly-db/spilly"
	"github.com/spilly-db/spilly/internal/colstore"
	"github.com/spilly-db/spilly/internal/data"
)

func init() {
	register(Experiment{
		ID:    "rescache",
		Paper: "Result reuse: governor-integrated query-result cache with NVMe demotion (engine addition)",
		Run:   runRescacheReport,
	})
}

// rescacheQueries are the reuse workloads: Q1 (scan-heavy agg — large
// compute, tiny result: the cache's best case), Q6 (cheap single-table
// filter agg — near the cost-admission floor), Q13 (string-heavy join/agg —
// the largest cached result of the three, so the NVMe round trip moves the
// most bytes through the checksummed demotion path).
var rescacheQueries = []int{1, 6, 13}

// rescachePhases, in measurement order. Each phase is the same query under
// a different cache state; the result fingerprint must be identical in all
// four.
var rescachePhases = []string{"cold", "warm-memory", "warm-nvme", "post-invalidation"}

// RescacheMeasurement is one (query, phase) cell of the reuse-cache report.
type RescacheMeasurement struct {
	Query string `json:"query"`
	Phase string `json:"phase"`
	// NsPerOp is the best wall time over a few repetitions, with the cache
	// forced back into the phase's state before every repetition.
	NsPerOp float64 `json:"ns_per_op"`
	// Tier is the serving result-cache tier ("memory", "nvme", or "" when
	// the plan actually executed).
	Tier     string `json:"tier"`
	Checksum string `json:"checksum"` // result fingerprint; must match across phases
}

// Key returns the map key "Q1/warm-nvme" used by BENCH_rescache.json.
func (m RescacheMeasurement) Key() string { return m.Query + "/" + m.Phase }

// rescacheDummyTable returns a tiny unrelated table whose registration bumps
// the catalog generation — the invalidation trigger for the last phase.
func rescacheDummyTable(n int) *colstore.MemTable {
	sch := &data.Schema{Cols: []data.ColumnDef{{Name: "x", Type: data.Int64}}}
	return colstore.NewMemTable(fmt.Sprintf("rescache_dummy_%d", n), sch, 1024)
}

// MeasureRescache measures each query cold (cache cleared), warm from the
// memory tier, warm from the NVMe tier (hot tier demoted to the spill array
// first), and again after a catalog change invalidated the entry. Wall time
// is the best of a few repetitions with the cache state reset before each:
// cold and post-invalidation repetitions re-execute the plan; warm-nvme
// repetitions re-demote first, since an NVMe hit promotes the entry back to
// memory.
func MeasureRescache(o Options) ([]RescacheMeasurement, error) {
	sf := 0.02
	reps := 3
	if o.Quick {
		sf = 0.01
		reps = 2
	}
	if len(o.SFs) > 0 {
		sf = o.SFs[0]
	}
	eng, err := newEngine(spilly.Config{
		Workers:          o.workers(),
		Compression:      true,
		ResultCacheBytes: 64 << 20,
	}, sf, false)
	if err != nil {
		return nil, err
	}

	var out []RescacheMeasurement
	dummies := 0
	for _, q := range rescacheQueries {
		// Warmup run: first execution pays one-time pool and table-setup
		// costs that belong to neither the cold nor the warm columns.
		if _, err := eng.RunTPCH(q); err != nil {
			return nil, fmt.Errorf("warmup Q%d: %w", q, err)
		}
		for _, phase := range rescachePhases {
			best := RescacheMeasurement{Query: fmt.Sprintf("Q%d", q), Phase: phase}
			for rep := 0; rep < reps; rep++ {
				switch phase {
				case "cold":
					eng.ClearCaches()
				case "warm-memory":
					// The previous run (cold's last rep, or this phase's
					// prior rep) populated the memory tier; nothing to do.
				case "warm-nvme":
					if n := eng.DemoteResultCache(); n == 0 && rep == 0 {
						return nil, fmt.Errorf("Q%d: nothing to demote before warm-nvme phase", q)
					}
				case "post-invalidation":
					dummies++
					eng.RegisterTable(rescacheDummyTable(dummies))
				}
				res, err := eng.RunTPCH(q)
				if err != nil {
					return nil, fmt.Errorf("%s Q%d: %w", phase, q, err)
				}
				s := res.Stats
				wantHit := phase == "warm-memory" || phase == "warm-nvme"
				if s.ResultCacheHit != wantHit {
					return nil, fmt.Errorf("%s Q%d: cache hit = %v, want %v",
						phase, q, s.ResultCacheHit, wantHit)
				}
				if phase == "warm-nvme" && s.ResultCacheTier != "nvme" {
					return nil, fmt.Errorf("warm-nvme Q%d served from %q tier", q, s.ResultCacheTier)
				}
				if ns := float64(s.Duration.Nanoseconds()); rep == 0 || ns < best.NsPerOp {
					best.NsPerOp = ns
					best.Tier = s.ResultCacheTier
					best.Checksum = overlapChecksum(res)
				}
			}
			out = append(out, best)
		}
	}
	return out, nil
}

func runRescacheReport(w io.Writer, o Options) error {
	ms, err := MeasureRescache(o)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "Result reuse cache: each query measured cold (cache cleared), warm from")
	fmt.Fprintln(w, "the memory tier, warm from the NVMe tier (hot entries demoted to the")
	fmt.Fprintln(w, "spill array first), and after a catalog change invalidated the entry")
	fmt.Fprintln(w, "(recompute). Checksums must match across all four phases per query.")
	fmt.Fprintln(w)
	t := newTable("Query", "Phase", "ms/op", "tier", "checksum")
	for _, m := range ms {
		tier := m.Tier
		if tier == "" {
			tier = "-"
		}
		t.row(m.Query, m.Phase, m.NsPerOp/1e6, tier, m.Checksum)
	}
	t.write(w)

	byKey := map[string]RescacheMeasurement{}
	for _, m := range ms {
		byKey[m.Key()] = m
	}
	var memSpeedups, nvmeSpeedups []float64
	for _, q := range rescacheQueries {
		name := fmt.Sprintf("Q%d", q)
		cold := byKey[name+"/cold"]
		for _, phase := range rescachePhases[1:] {
			m, ok := byKey[name+"/"+phase]
			if !ok {
				continue
			}
			if m.Checksum != cold.Checksum {
				return fmt.Errorf("rescache: %s result checksum mismatch: cold %s vs %s %s",
					name, cold.Checksum, phase, m.Checksum)
			}
		}
		mem, nvme := byKey[name+"/warm-memory"], byKey[name+"/warm-nvme"]
		if cold.NsPerOp > 0 && mem.NsPerOp > 0 && nvme.NsPerOp > 0 {
			fmt.Fprintf(w, "\n%s: memory hit %.0fx faster than cold, nvme hit %.1fx",
				name, cold.NsPerOp/mem.NsPerOp, cold.NsPerOp/nvme.NsPerOp)
			memSpeedups = append(memSpeedups, cold.NsPerOp/mem.NsPerOp)
			nvmeSpeedups = append(nvmeSpeedups, cold.NsPerOp/nvme.NsPerOp)
		}
	}
	fmt.Fprintln(w)
	fmt.Fprintf(w, "\nShape check: a warm memory-tier hit skips plan execution entirely\n")
	fmt.Fprintf(w, "(geo-mean %.0fx over cold); an NVMe-tier hit pays one checksummed\n",
		geoMean(memSpeedups))
	fmt.Fprintf(w, "readback+decode round trip and still wins (geo-mean %.1fx); a catalog\n",
		geoMean(nvmeSpeedups))
	fmt.Fprintln(w, "change drops the entry and the query recomputes — identical checksums")
	fmt.Fprintln(w, "in all four phases show the cache never changes results.")
	return nil
}
