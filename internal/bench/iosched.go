package bench

import (
	"fmt"
	"hash/fnv"
	"io"
	"sort"
	"sync"
	"time"

	spilly "github.com/spilly-db/spilly"
	"github.com/spilly-db/spilly/internal/chaos"
)

func init() {
	register(Experiment{
		ID:    "iosched",
		Paper: "Shared I/O scheduler: demand-read stall and tail latency under 8-way mixed-class concurrency (engine addition)",
		Run:   runIOSchedReport,
	})
}

// ioschedQueries is the 8-way mixed-class workload: Q9 and Q12 spill
// (spill-write + readback demand-read classes on the spill array), Q1 and
// Q6 are scan-heavy over on-array tables (prefetch class, promoted to
// demand when a worker blocks). Together they put all four priority
// classes in flight at once.
var ioschedQueries = []int{9, 1, 12, 6, 9, 1, 12, 6}

// ioschedBudget is the shared engine budget the admission governor splits
// across the concurrent queries — small enough that the spilling queries
// actually spill at the measurement scale factor.
const ioschedBudget = 512 << 10

// IOSchedMeasurement is one scheduler mode's 8-way concurrency result.
type IOSchedMeasurement struct {
	Mode string `json:"mode"` // "private" (per-operator rings) or "shared"
	// Every column is the best (minimum) value observed for its mode
	// across the repetitions; per-column best-of damps scheduler jitter
	// that a single "best batch" would carry into every column.
	WallNs float64 `json:"wall_ns"`
	// DemandReadLatNs is the mean demand-read wait across the batch: each
	// spill-readback read issued demand-class contributes its completion
	// latency, and each scan block (which promotes the blocked group's
	// reads to demand) contributes the wall time the worker waited. This
	// per-event latency of latency-critical reads is what the scheduler's
	// demand-first dispatch bounds, and the primary gated metric.
	DemandReadLatNs float64 `json:"demand_read_lat_ns"`
	// SpillStallNs sums worker time stalled on spill readback across the
	// batch; ScanStallNs sums worker time blocked on table reads. In a
	// saturated closed loop scheduling order mostly relocates this blocked
	// time rather than removing it, so these are reported, not gated.
	SpillStallNs float64 `json:"spill_stall_ns"`
	ScanStallNs  float64 `json:"scan_stall_ns"`
	// P99QueryNs and MeanQueryNs summarize per-query latency within the
	// batch (with 8 queries the p99 is the slowest query — the tail a
	// concurrent client actually observes).
	P99QueryNs  float64 `json:"p99_query_ns"`
	MeanQueryNs float64 `json:"mean_query_ns"`
	// Checksum combines every query's result fingerprint; it must match
	// across modes — the scheduler reorders I/O, never results.
	Checksum string `json:"checksum"`
}

// Key returns the map key used by BENCH_iosched.json.
func (m IOSchedMeasurement) Key() string { return m.Mode }

// MeasureIOSched runs the 8-way mixed workload once per scheduler mode and
// returns one measurement per mode. Every concurrent result is checked
// against its serial run before anything is reported.
func MeasureIOSched(o Options) ([]IOSchedMeasurement, error) {
	sf := 0.02
	reps := 4
	if o.Quick {
		sf = 0.01
		reps = 2
	}
	if len(o.SFs) > 0 {
		sf = o.SFs[0]
	}
	modes := []struct {
		name      string
		noIOSched bool
	}{
		{"private", true},
		{"shared", false},
	}
	var out []IOSchedMeasurement
	for _, m := range modes {
		eng, err := newEngine(spilly.Config{
			Workers:      o.workers(),
			MemoryBudget: o.budget(ioschedBudget),
			Compression:  true,
			// Slowed devices and small arrays put the run in the I/O-bound
			// regime the scheduler targets (the same goCPUFactor calibration
			// the other experiments use); at full speed the Go engine is
			// CPU-bound and scheduling order cannot move the tail.
			Device:       spilly.DefaultDevice.Scaled(goCPUFactor),
			SpillDevices: 2,
			TableDevices: 2,
			// Deep readback and scan lookahead in both modes: the regime
			// the scheduler targets is aggressive per-operator prefetch,
			// which private rings stack straight onto the device queues.
			ReadDepth: 16,
			ScanDepth: 8,
			NoIOSched: m.noIOSched,
		}, sf, true)
		if err != nil {
			return nil, err
		}
		// Serial reference run per distinct query: warms pools and tables
		// and pins the fingerprint each concurrent copy must reproduce.
		want := map[int]string{}
		for _, q := range []int{1, 6, 9, 12} {
			res, err := eng.RunTPCH(q)
			if err != nil {
				return nil, fmt.Errorf("%s serial Q%d: %w", m.name, q, err)
			}
			want[q] = chaos.Fingerprint(res.Batch)
		}
		best := IOSchedMeasurement{Mode: m.name}
		for rep := 0; rep < reps; rep++ {
			batch, err := runIOSchedBatch(eng, want)
			if err != nil {
				return nil, fmt.Errorf("%s: %w", m.name, err)
			}
			if rep == 0 {
				mode := best.Mode
				best = batch
				best.Mode = mode
				continue
			}
			best.WallNs = min(best.WallNs, batch.WallNs)
			best.DemandReadLatNs = min(best.DemandReadLatNs, batch.DemandReadLatNs)
			best.SpillStallNs = min(best.SpillStallNs, batch.SpillStallNs)
			best.ScanStallNs = min(best.ScanStallNs, batch.ScanStallNs)
			best.P99QueryNs = min(best.P99QueryNs, batch.P99QueryNs)
			best.MeanQueryNs = min(best.MeanQueryNs, batch.MeanQueryNs)
		}
		out = append(out, best)
	}
	return out, nil
}

// runIOSchedBatch fires the 8 queries concurrently, verifies each result
// against its serial fingerprint, and aggregates the batch's stall and
// latency columns.
func runIOSchedBatch(eng *spilly.Engine, want map[int]string) (IOSchedMeasurement, error) {
	type runRes struct {
		q     int
		durNs float64
		stats spilly.Stats
		fp    string
		err   error
	}
	runs := make([]runRes, len(ioschedQueries))
	var wg sync.WaitGroup
	start := time.Now()
	for i, q := range ioschedQueries {
		wg.Add(1)
		go func(i, q int) {
			defer wg.Done()
			res, err := eng.RunTPCH(q)
			if err != nil {
				runs[i] = runRes{q: q, err: err}
				return
			}
			runs[i] = runRes{
				q:     q,
				durNs: float64(res.Stats.Duration.Nanoseconds()),
				stats: res.Stats,
				fp:    chaos.Fingerprint(res.Batch),
			}
		}(i, q)
	}
	wg.Wait()
	wall := time.Since(start)

	var m IOSchedMeasurement
	m.WallNs = float64(wall.Nanoseconds())
	h := fnv.New64a()
	durs := make([]float64, 0, len(runs))
	var demandReads, demandNs int64
	for _, r := range runs {
		if r.err != nil {
			return m, fmt.Errorf("Q%d: %w", r.q, r.err)
		}
		if r.fp != want[r.q] {
			return m, fmt.Errorf("Q%d concurrent result differs from its serial run", r.q)
		}
		m.SpillStallNs += float64(r.stats.SpillStallTime.Nanoseconds())
		m.ScanStallNs += float64(r.stats.ScanStallTime.Nanoseconds())
		demandReads += r.stats.DemandReads + r.stats.ScanStalls
		demandNs += int64(r.stats.DemandReadTime) + r.stats.ScanStallTime.Nanoseconds()
		durs = append(durs, r.durNs)
		m.MeanQueryNs += r.durNs / float64(len(runs))
		fmt.Fprintf(h, "Q%d=%s;", r.q, r.fp)
	}
	if demandReads == 0 {
		return m, fmt.Errorf("no demand-class spill readback completed; the mix no longer exercises the demand path")
	}
	m.DemandReadLatNs = float64(demandNs) / float64(demandReads)
	sort.Float64s(durs)
	m.P99QueryNs = durs[len(durs)-1]
	m.Checksum = fmt.Sprintf("%016x", h.Sum64())
	return m, nil
}

func runIOSchedReport(w io.Writer, o Options) error {
	ms, err := MeasureIOSched(o)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "Shared I/O scheduler: 8 concurrent TPC-H queries (Q9/Q12 spilling,")
	fmt.Fprintln(w, "Q1/Q6 scanning on-array tables) with per-operator private rings vs the")
	fmt.Fprintln(w, "engine-wide prioritized scheduler (demand > spill-write > prefetch >")
	fmt.Fprintln(w, "background, per-device depth targets, cross-query round-robin). Stall")
	fmt.Fprintln(w, "columns are worker time blocked on spill readback and table reads;")
	fmt.Fprintln(w, "checksums must match across modes.")
	fmt.Fprintln(w)
	t := newTable("Mode", "wall ms", "demand-read µs", "spill-stall ms", "scan-stall ms", "p99 query ms", "mean query ms", "checksum")
	for _, m := range ms {
		t.row(m.Mode, m.WallNs/1e6, m.DemandReadLatNs/1e3, m.SpillStallNs/1e6, m.ScanStallNs/1e6,
			m.P99QueryNs/1e6, m.MeanQueryNs/1e6, m.Checksum)
	}
	t.write(w)

	byMode := map[string]IOSchedMeasurement{}
	for _, m := range ms {
		byMode[m.Mode] = m
	}
	pr, ok1 := byMode["private"]
	sh, ok2 := byMode["shared"]
	if ok1 && ok2 {
		if pr.Checksum != sh.Checksum {
			return fmt.Errorf("iosched: result checksum mismatch across scheduler modes: private %s vs shared %s",
				pr.Checksum, sh.Checksum)
		}
		if pr.DemandReadLatNs > 0 {
			fmt.Fprintln(w)
			fmt.Fprintf(w, "\nShape check: the shared scheduler cuts mean demand-read latency to %.0f%%\n",
				100*sh.DemandReadLatNs/pr.DemandReadLatNs)
			fmt.Fprintf(w, "of private rings (p99 query %.2fx faster, wall %.2fx) under the 8-way mix,\n",
				pr.P99QueryNs/sh.P99QueryNs, pr.WallNs/sh.WallNs)
			fmt.Fprintln(w, "with identical checksums — demand-first dispatch keeps latency-critical")
			fmt.Fprintln(w, "reads from queueing behind other queries' prefetch and write floods.")
		}
	}
	return nil
}
