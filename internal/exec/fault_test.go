package exec

import (
	"context"
	"errors"
	"strings"
	"testing"

	"github.com/spilly-db/spilly/internal/core"
	"github.com/spilly-db/spilly/internal/data"
)

// TestWorkerPanicBecomesQueryError: a panic inside a worker must fail the
// query with a structured error carrying the operator name and the panic
// message — never crash the process or hang sibling workers.
func TestWorkerPanicBecomesQueryError(t *testing.T) {
	schema := data.NewSchema(data.ColumnDef{Name: "x", Type: data.Int64})
	s := &Stream{
		schema: schema,
		next: func(w int, b *data.Batch) (int, error) {
			if w == 0 {
				panic("worker exploded")
			}
			return 0, nil
		},
	}
	err := Drain(&Ctx{Workers: 2}, s, nil)
	var qe *core.QueryError
	if !errors.As(err, &qe) {
		t.Fatalf("err = %v (%T), want *QueryError", err, err)
	}
	if qe.Op != "drain" {
		t.Fatalf("QueryError.Op = %q, want \"drain\"", qe.Op)
	}
	if !strings.Contains(qe.Err.Error(), "worker exploded") {
		t.Fatalf("panic message lost: %v", qe.Err)
	}
}

// TestWorkerOOMPanicStaysIdentity: the out-of-memory panic must keep
// converting to the bare ErrOutOfMemory sentinel — callers compare it by
// identity.
func TestWorkerOOMPanicStaysIdentity(t *testing.T) {
	err := runWorkers("agg", 2, func(w int) error {
		if w == 1 {
			core.PanicOOM()
		}
		return nil
	})
	if err != core.ErrOutOfMemory {
		t.Fatalf("err = %v, want ErrOutOfMemory by identity", err)
	}
}

// TestDrainObservesCancellation: a canceled context stops the batch loop
// even when the stream itself would keep producing forever.
func TestDrainObservesCancellation(t *testing.T) {
	schema := data.NewSchema(data.ColumnDef{Name: "x", Type: data.Int64})
	ctx, cancel := context.WithCancel(context.Background())
	n := 0
	s := &Stream{
		schema: schema,
		next: func(w int, b *data.Batch) (int, error) {
			n++
			if n == 3 {
				cancel()
			}
			b.Reset()
			b.Cols[0].I = append(b.Cols[0].I[:0], 1)
			b.SetLen(1)
			return 1, nil
		},
	}
	err := Drain(&Ctx{Workers: 1, Context: ctx}, s, nil)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled in the chain", err)
	}
	var qe *core.QueryError
	if !errors.As(err, &qe) {
		t.Fatalf("err = %v, want *QueryError", err)
	}
}
