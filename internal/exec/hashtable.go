package exec

import (
	"bytes"
	"sync/atomic"

	"github.com/spilly-db/spilly/internal/data"
	"github.com/spilly-db/spilly/internal/pages"
)

// hashTable is the chaining hash table used by phase 2 of the unified
// operators: buckets hold indices into a flat entry array whose entries
// reference tuples stored on Umami pages (the paper's hash table "links to
// tuples on pages", §4.4). The bucket index is a *prefix* of the hash so
// that partition bits map to contiguous bucket ranges — the locality and
// contention optimization of §5.3.
type hashTable struct {
	entries []htEntry
	buckets []int32 // head entry index + 1; 0 = empty
	shift   uint    // bucket = hash >> shift
	pages   []*pages.Page
	rc      *data.RowCodec
	keys    []int
}

type htEntry struct {
	hash uint64
	page int32
	tup  int32
	next int32 // entry index + 1; 0 = end
}

// hashBuildTestHook, when set by tests, runs once per page during the hash
// phase — the injection point for verifying that build-side failures
// propagate to the caller instead of yielding a half-built table.
var hashBuildTestHook func()

// buildHashTable constructs a table over the tuples of pgs in parallel.
// distinctHint sizes the bucket array (the paper derives it from the
// HyperLogLog sketches built during materialization); 0 falls back to the
// total tuple count. A worker failure (error or panic, recovered by
// runWorkers) aborts the build: a partially linked table would silently
// drop matches.
func buildHashTable(pgs []*pages.Page, rc *data.RowCodec, keys []int, distinctHint int64, workers int) (*hashTable, error) {
	total := 0
	base := make([]int, len(pgs)+1)
	for i, p := range pgs {
		base[i] = total
		total += p.Tuples()
	}
	base[len(pgs)] = total

	size := distinctHint
	if size <= 0 {
		size = int64(total)
	}
	nBuckets := int64(1024)
	for nBuckets < size*2 {
		nBuckets *= 2
	}
	ht := &hashTable{
		entries: make([]htEntry, total),
		buckets: make([]int32, nBuckets),
		shift:   uint(64 - log2(uint64(nBuckets))),
		pages:   pgs,
		rc:      rc,
		keys:    keys,
	}
	if total == 0 {
		return ht, nil
	}

	// Phase A: hash every tuple. Pages are distributed via an atomic
	// cursor; since the page list is grouped by partition, consecutive
	// pages share partitions and workers enjoy the §5.3 locality.
	var cursor atomic.Int64
	err := runWorkers("hash-build", workers, func(w int) error {
		for {
			pi := int(cursor.Add(1) - 1)
			if pi >= len(pgs) {
				return nil
			}
			if hashBuildTestHook != nil {
				hashBuildTestHook()
			}
			p := pgs[pi]
			off := base[pi]
			for t := 0; t < p.Tuples(); t++ {
				tuple := p.Tuple(t)
				ht.entries[off+t] = htEntry{
					hash: rc.HashTuple(tuple, keys),
					page: int32(pi),
					tup:  int32(t),
				}
			}
		}
	})
	if err != nil {
		return nil, err
	}

	// Phase B: link entries into buckets with CAS pushes. Entry ranges
	// follow page order, so contention mirrors partition overlap only.
	var cursor2 atomic.Int64
	const chunk = 4096
	err = runWorkers("hash-build", workers, func(w int) error {
		for {
			lo := int(cursor2.Add(chunk) - chunk)
			if lo >= total {
				return nil
			}
			hi := lo + chunk
			if hi > total {
				hi = total
			}
			for i := lo; i < hi; i++ {
				b := ht.entries[i].hash >> ht.shift
				for {
					head := atomic.LoadInt32(&ht.buckets[b])
					ht.entries[i].next = head
					if atomic.CompareAndSwapInt32(&ht.buckets[b], head, int32(i+1)) {
						break
					}
				}
			}
		}
	})
	if err != nil {
		return nil, err
	}
	return ht, nil
}

// newStreamingHashTable returns an empty table sized for distinctHint keys
// (per-partition HLL estimates, §4.4; <= 0 starts minimal and relies on
// growth). Pages are then fed in one at a time with insertPage as they
// arrive from the readback scheduler — the streaming counterpart of
// buildHashTable for phase-2 partition builds, where completion order is
// irrelevant and each partition is built by a single worker.
func newStreamingHashTable(rc *data.RowCodec, keys []int, distinctHint int64) *hashTable {
	size := distinctHint
	if size <= 0 {
		size = 1
	}
	nBuckets := int64(1024)
	for nBuckets < size*2 {
		nBuckets *= 2
	}
	return &hashTable{
		buckets: make([]int32, nBuckets),
		shift:   uint(64 - log2(uint64(nBuckets))),
		rc:      rc,
		keys:    keys,
	}
}

// insertPage appends one page's tuples to the table. Single-threaded by
// contract (one partition, one worker), so links are plain stores.
func (h *hashTable) insertPage(p *pages.Page) {
	n := p.Tuples()
	if need := len(h.entries) + n; need*2 > len(h.buckets) {
		h.grow(need)
	}
	pi := int32(len(h.pages))
	h.pages = append(h.pages, p)
	for t := 0; t < n; t++ {
		e := htEntry{hash: h.rc.HashTuple(p.Tuple(t), h.keys), page: pi, tup: int32(t)}
		b := e.hash >> h.shift
		e.next = h.buckets[b]
		h.entries = append(h.entries, e)
		h.buckets[b] = int32(len(h.entries)) // index + 1
	}
}

// grow rebuilds the bucket array to keep the load factor at or below 1/2
// (the HLL hint usually makes this a no-op; it fires when the estimate was
// low or absent).
func (h *hashTable) grow(need int) {
	nBuckets := int64(len(h.buckets))
	for nBuckets < int64(need)*2 {
		nBuckets *= 2
	}
	h.buckets = make([]int32, nBuckets)
	h.shift = uint(64 - log2(uint64(nBuckets)))
	for i := range h.entries {
		b := h.entries[i].hash >> h.shift
		h.entries[i].next = h.buckets[b]
		h.buckets[b] = int32(i + 1)
	}
}

func log2(v uint64) int {
	n := 0
	for v > 1 {
		v >>= 1
		n++
	}
	return n
}

// probeRow iterates matches of the given batch row's key columns, calling
// fn with each matching build tuple. It returns whether any match existed.
func (h *hashTable) probeRow(hash uint64, b *data.Batch, keyCols []int, r int, fn func(tuple []byte)) bool {
	matched := false
	for e := h.buckets[hash>>h.shift]; e != 0; {
		ent := &h.entries[e-1]
		e = ent.next
		if ent.hash != hash {
			continue
		}
		tuple := h.pages[ent.page].Tuple(int(ent.tup))
		if h.rc.KeyEqualRow(tuple, h.keys, b, keyCols, r) {
			matched = true
			if fn != nil {
				fn(tuple)
			} else {
				return true // existence check only
			}
		}
	}
	return matched
}

// probeTuple iterates matches of an encoded tuple's key fields (used in the
// spilled-partition phase where both sides are materialized).
func (h *hashTable) probeTuple(hash uint64, tuple []byte, rc *data.RowCodec, keyFields []int, fn func(buildTuple []byte)) bool {
	matched := false
	for e := h.buckets[hash>>h.shift]; e != 0; {
		ent := &h.entries[e-1]
		e = ent.next
		if ent.hash != hash {
			continue
		}
		bt := h.pages[ent.page].Tuple(int(ent.tup))
		if keyFieldsEqual(h.rc, bt, h.keys, rc, tuple, keyFields) {
			matched = true
			if fn != nil {
				fn(bt)
			} else {
				return true
			}
		}
	}
	return matched
}

// keyFieldsEqual compares key fields across two differently-coded tuples.
func keyFieldsEqual(arc *data.RowCodec, a []byte, aKeys []int, brc *data.RowCodec, b []byte, bKeys []int) bool {
	for i := range aKeys {
		af, bf := aKeys[i], bKeys[i]
		an, bn := arc.IsNull(a, af), brc.IsNull(b, bf)
		if an != bn {
			return false
		}
		if an {
			continue
		}
		if arc.Types()[af] == data.String {
			if !bytes.Equal(arc.StrBytes(a, af), brc.StrBytes(b, bf)) {
				return false
			}
		} else {
			if arc.Int(a, af) != brc.Int(b, bf) {
				return false
			}
		}
	}
	return true
}
