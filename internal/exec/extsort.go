package exec

import (
	"container/heap"
	"fmt"
	"sort"
	"sync"

	"github.com/spilly-db/spilly/internal/core"
	"github.com/spilly-db/spilly/internal/data"
	"github.com/spilly-db/spilly/internal/nvmesim"
	"github.com/spilly-db/spilly/internal/pages"
	"github.com/spilly-db/spilly/internal/trace"
	"github.com/spilly-db/spilly/internal/uring"
)

// ExtSort is an external merge sort: the spilling counterpart to Sort and
// an implementation of the sorting direction the paper leaves as future
// work (§4.7 "applying adaptive materialization to other operators, such
// as sorting"). Workers generate sorted runs bounded by the memory budget,
// spilling full runs to the NVMe array as sequences of pages; a final
// k-way merge streams the ordered result. In memory (no budget pressure)
// it degenerates to one sorted run per worker and a merge — no I/O.
type ExtSort struct {
	Child Node
	Keys  []SortKey
	Limit int // 0 = unlimited
}

// Schema implements Node.
func (s *ExtSort) Schema() *data.Schema { return s.Child.Schema() }

// sortRun is one sorted run: either resident (pages plus sorted tuple
// refs) or spilled (an ordered page sequence on the array).
type sortRun struct {
	pgs   []*pages.Page // in-memory run backing pages
	refs  []tupleRef    // in-memory run tuples in sorted order
	slots []core.SpilledSlot
}

// Run implements Node.
func (s *ExtSort) Run(ctx *Ctx) (*Stream, error) {
	if err := checkSchemaCols(s.Child.Schema(), sortCols(s.Keys)); err != nil {
		return nil, err
	}
	sp := ctx.Trace.Start("extsort", sortLabel(s.Keys))
	defer ctx.Trace.EndScope(sp)
	pc := ctx.phaseStart()
	in, err := s.Child.Run(ctx)
	if err != nil {
		return nil, err
	}
	schema := s.Child.Schema()
	rc := data.NewRowCodec(schema.Types())
	keyCols := indicesOf(schema, sortCols(s.Keys))

	pageSize := ctx.PageSize
	if pageSize == 0 {
		pageSize = pages.DefaultPageSize
	}

	var mu sync.Mutex
	var runs []*sortRun

	err = runWorkers("sort", ctx.workers(), func(w int) error {
		done := false
		defer func() {
			if !done {
				in.Abandon(w)
			}
		}()
		g := &runGenerator{
			sorter: s, ctx: ctx, rc: rc, keyCols: keyCols,
			pageSize: pageSize,
			pool:     pages.NewPool(pageSize, 0, ctx.Budget),
			sp:       sp,
		}
		b := ctx.BatchPool(schema).Get()
		defer b.Release()
		for {
			n, err := in.Next(w, b)
			if err != nil {
				return err
			}
			if n == 0 {
				done = true
				rs, err := g.finish()
				if err != nil {
					return err
				}
				sp.AddMaterialized(g.tuples)
				mu.Lock()
				runs = append(runs, rs...)
				mu.Unlock()
				return nil
			}
			for i := 0; i < n; i++ {
				if err := g.add(b, b.Row(i)); err != nil {
					return err
				}
			}
		}
	})
	if err != nil {
		return nil, err
	}
	// In-memory runs keep their backing pages until the merge has streamed
	// them out; return their budget reservation at query end.
	ctx.AddCleanup(func() {
		for _, run := range runs {
			for _, p := range run.pgs {
				ctx.Budget.Release(int64(p.Size()))
			}
		}
	})
	ctx.spanPhase(sp, pc)
	return s.mergeStream(ctx, sp, runs, rc, keyCols, pageSize)
}

// runGenerator accumulates tuples into pages; when the budget runs out it
// sorts the accumulated run and spills it in order.
type runGenerator struct {
	sorter   *ExtSort
	ctx      *Ctx
	rc       *data.RowCodec
	keyCols  []int
	pageSize int
	pool     *pages.Pool

	cur    *pages.Page
	pgs    []*pages.Page
	refs   []tupleRef
	runs   []*sortRun
	ring   *uring.Ring
	sp     *trace.Span
	tuples int64
}

type tupleRef struct {
	page int32
	tup  int32
}

func (g *runGenerator) add(b *data.Batch, r int) error {
	size := g.rc.Size(b, r)
	if g.cur == nil || !g.cur.HasSpace(size) {
		if g.ctx.Budget.Exhausted(g.pageSize) && len(g.pgs) > 0 {
			if err := g.spillRun(); err != nil {
				return err
			}
		}
		g.cur = g.pool.Get()
		g.pgs = append(g.pgs, g.cur)
	}
	dst, ok := g.cur.Alloc(size)
	if !ok {
		return fmt.Errorf("exec: sort tuple of %d bytes exceeds page size", size)
	}
	g.rc.Encode(dst, b, r)
	g.refs = append(g.refs, tupleRef{page: int32(len(g.pgs) - 1), tup: int32(g.cur.Tuples() - 1)})
	g.tuples++
	return nil
}

// sortRefs orders the accumulated tuple refs by the sort keys.
func (g *runGenerator) sortRefs() {
	rc, keys := g.rc, g.keyCols
	desc := g.sorter.Keys
	sort.SliceStable(g.refs, func(a, b int) bool {
		ta := g.pgs[g.refs[a].page].Tuple(int(g.refs[a].tup))
		tb := g.pgs[g.refs[b].page].Tuple(int(g.refs[b].tup))
		for i, c := range keys {
			cmp := compareTupleField(rc, ta, tb, c)
			if cmp == 0 {
				continue
			}
			if desc[i].Desc {
				return cmp > 0
			}
			return cmp < 0
		}
		return false
	})
}

// spillRun sorts the current run and writes it out as an ordered page
// sequence.
func (g *runGenerator) spillRun() error {
	if g.ctx.Spill == nil {
		core.PanicOOM()
	}
	g.sortRefs()
	if g.ring == nil {
		g.ring = uring.New(g.ctx.Spill.Array)
		g.ring.SetLease(g.ctx.Spill.Lease)
		g.ring.Bind(g.ctx.Spill.Sched, uring.ClassSpillWrite, g.ctx.Spill.Query)
	}
	run := &sortRun{}
	// Write buffers are plain pages owned by the ring until completion;
	// the bounded in-flight window caps their memory.
	out := pages.New(g.pageSize)
	flush := func(p *pages.Page) error {
		loc, err := g.ring.QueueWrite(p.Seal(), uint64(len(run.slots)))
		if err != nil {
			return err
		}
		run.slots = append(run.slots, core.SpilledSlot{Loc: loc, Off: 0, Len: uint32(p.Size())})
		if g.ring.Outstanding()+g.ring.Pending() > 16 {
			g.ring.Submit()
			g.ring.Poll(nil, true)
		}
		return nil
	}
	for _, ref := range g.refs {
		t := g.pgs[ref.page].Tuple(int(ref.tup))
		if !out.HasSpace(len(t)) {
			if err := flush(out); err != nil {
				return err
			}
			out = pages.New(g.pageSize)
		}
		out.Append(t)
	}
	if out.Tuples() > 0 {
		if err := flush(out); err != nil {
			return err
		}
	}
	for _, c := range g.ring.WaitAll(nil) {
		if c.Err != nil {
			return c.Err
		}
	}
	var bytes int64
	for _, s := range run.slots {
		bytes += int64(s.Len)
	}
	if g.ctx.Stats != nil {
		g.ctx.Stats.SpilledBytes.Add(bytes)
		g.ctx.Stats.WrittenBytes.Add(bytes)
	}
	g.sp.AddSpill(bytes, bytes, 0, 0)
	g.runs = append(g.runs, run)
	// Release the run's input memory back to the budget.
	for _, p := range g.pgs {
		g.pool.Discard(p)
	}
	g.pgs, g.refs, g.cur = nil, nil, nil
	return nil
}

// finish sorts the resident tail into a final in-memory run (zero copy:
// the run keeps the backing pages plus the sorted refs).
func (g *runGenerator) finish() ([]*sortRun, error) {
	if len(g.refs) > 0 {
		g.sortRefs()
		g.runs = append(g.runs, &sortRun{pgs: g.pgs, refs: g.refs})
		g.pgs, g.refs, g.cur = nil, nil, nil
	}
	return g.runs, nil
}

// runCursor iterates one sorted run's tuples in order, prefetching spilled
// pages sequentially.
type runCursor struct {
	run      *sortRun
	arr      *nvmesim.Array
	pageSize int
	stats    *Stats
	sp       *trace.Span

	pageIdx int
	tupIdx  int
	cur     *pages.Page
	curBuf  []byte // recycler-backed buffer the current page aliases

	ring    *uring.Ring
	disp    uring.Dispatcher // shared I/O scheduler (nil = private ring)
	query   uint64
	pending map[uint64]int
	bufs    map[int][]byte
	nextReq int
}

func newRunCursor(run *sortRun, arr *nvmesim.Array, pageSize int, stats *Stats, sp *trace.Span) *runCursor {
	return &runCursor{run: run, arr: arr, pageSize: pageSize, stats: stats, sp: sp,
		pending: map[uint64]int{}, bufs: map[int][]byte{}}
}

// next returns the run's next tuple, or nil at end.
func (c *runCursor) next() ([]byte, error) {
	// In-memory runs iterate their sorted refs directly.
	if c.run.pgs != nil {
		if c.tupIdx >= len(c.run.refs) {
			return nil, nil
		}
		ref := c.run.refs[c.tupIdx]
		c.tupIdx++
		return c.run.pgs[ref.page].Tuple(int(ref.tup)), nil
	}
	for {
		if c.cur != nil && c.tupIdx < c.cur.Tuples() {
			t := c.cur.Tuple(c.tupIdx)
			c.tupIdx++
			return t, nil
		}
		c.cur = nil
		c.tupIdx = 0
		if c.pageIdx >= len(c.run.slots) {
			// Run exhausted; the last page's tuples are all copied out
			// (the merge appends through an arena), so its buffer can go
			// back to the recycler.
			if c.curBuf != nil {
				pages.PutBuf(c.curBuf)
				c.curBuf = nil
			}
			return nil, nil
		}
		if err := c.loadSpilled(); err != nil {
			return nil, err
		}
	}
}

// loadSpilled reads the next spilled page (with sequential prefetch).
func (c *runCursor) loadSpilled() error {
	if c.ring == nil {
		c.ring = uring.New(c.arr)
		// Merge reads block the (single) merge worker, so they are demand
		// class under the shared scheduler.
		c.ring.Bind(c.disp, uring.ClassDemand, c.query)
	}
	// Prefetch ahead.
	for c.nextReq < len(c.run.slots) && c.nextReq < c.pageIdx+4 {
		slot := c.run.slots[c.nextReq]
		buf := pages.GetBuf(int(slot.Loc.Size()))
		c.ring.QueueRead(slot.Loc, buf, uint64(c.nextReq))
		c.pending[uint64(c.nextReq)] = c.nextReq
		c.bufs[c.nextReq] = buf
		c.nextReq++
	}
	c.ring.Submit()
	for {
		if buf, ok := c.bufs[c.pageIdx]; ok {
			if _, stillPending := c.pending[uint64(c.pageIdx)]; !stillPending {
				p, err := pages.Load(buf[:c.pageSize])
				if err != nil {
					return err
				}
				delete(c.bufs, c.pageIdx)
				// The previous page was fully merged (every tuple copied
				// through the merge arena); recycle its buffer.
				if c.curBuf != nil {
					pages.PutBuf(c.curBuf)
				}
				c.curBuf = buf
				if n := int64(c.run.slots[c.pageIdx].Len); n > 0 {
					if c.stats != nil {
						c.stats.SpillReadBytes.Add(n)
					}
					c.sp.AddSpillRead(n, 0)
				}
				c.cur = p
				c.pageIdx++
				return nil
			}
		}
		comps := c.ring.Poll(nil, true)
		for _, comp := range comps {
			if comp.Err != nil {
				// The merge aborts on a failed read; drop reads the shared
				// scheduler never issued so they do not linger in its queues.
				c.ring.CancelDeferred()
				return comp.Err
			}
			delete(c.pending, comp.UserData)
		}
	}
}

// mergeStream k-way merges the runs. The merge itself is sequential (one
// worker drives it; the others see end-of-stream immediately), which is
// inherent to order-preserving output.
func (s *ExtSort) mergeStream(ctx *Ctx, sp *trace.Span, runs []*sortRun, rc *data.RowCodec, keyCols []int, pageSize int) (*Stream, error) {
	var arr *nvmesim.Array
	if ctx.Spill != nil {
		arr = ctx.Spill.Array
	}
	h := &mergeHeap{rc: rc, keyCols: keyCols, keys: s.Keys}
	for _, run := range runs {
		cur := newRunCursor(run, arr, pageSize, ctx.Stats, sp)
		if ctx.Spill != nil {
			cur.disp, cur.query = ctx.Spill.Sched, ctx.Spill.Query
		}
		t, err := cur.next()
		if err != nil {
			return nil, err
		}
		if t != nil {
			h.items = append(h.items, mergeItem{tuple: t, cur: cur})
		}
	}
	heap.Init(h)

	var mu sync.Mutex
	emitted := 0
	var arena data.ByteArena // guarded by mu (single-producer merge)
	schema := s.Child.Schema()
	return ctx.traceStream(&Stream{
		schema: schema,
		next: func(w int, b *data.Batch) (int, error) {
			// Ordered output is single-producer by nature: deliver the
			// merged stream through worker 0 only, so consumers that
			// append batches in arrival order preserve the sort order.
			if w != 0 {
				return 0, nil
			}
			mu.Lock()
			defer mu.Unlock()
			b.Reset()
			for b.Len() < 1024 && h.Len() > 0 {
				if s.Limit > 0 && emitted >= s.Limit {
					break
				}
				item := h.items[0]
				rc.AppendToArena(b, item.tuple, &arena)
				emitted++
				t, err := item.cur.next()
				if err != nil {
					return 0, err
				}
				if t == nil {
					heap.Pop(h)
				} else {
					h.items[0].tuple = t
					heap.Fix(h, 0)
				}
			}
			return b.Len(), nil
		},
	}, sp), nil
}

type mergeItem struct {
	tuple []byte
	cur   *runCursor
}

type mergeHeap struct {
	items   []mergeItem
	rc      *data.RowCodec
	keyCols []int
	keys    []SortKey
}

func (h *mergeHeap) Len() int { return len(h.items) }
func (h *mergeHeap) Less(i, j int) bool {
	for k, c := range h.keyCols {
		cmp := compareTupleField(h.rc, h.items[i].tuple, h.items[j].tuple, c)
		if cmp == 0 {
			continue
		}
		if h.keys[k].Desc {
			return cmp > 0
		}
		return cmp < 0
	}
	return false
}
func (h *mergeHeap) Swap(i, j int)       { h.items[i], h.items[j] = h.items[j], h.items[i] }
func (h *mergeHeap) Push(x interface{})  { h.items = append(h.items, x.(mergeItem)) }
func (h *mergeHeap) Pop() interface{} {
	old := h.items
	n := len(old)
	x := old[n-1]
	h.items = old[:n-1]
	return x
}
