package exec

// Vectorized batch kernels over compiled expressions. The scalar closures
// in expr.go remain the semantic ground truth (and the fallback for
// arbitrary expressions); the constructors additionally attach
// column-at-a-time kernels for the shapes that dominate TPC-H filters and
// projections — bare column refs, constants, comparisons against
// constants or other columns, arithmetic, and fused AND-chains — so the
// hot loops run one function call per *batch* instead of one per row.
// This is the stdlib-Go stand-in for the per-query vectorized code the
// paper's engine generates (see DESIGN.md §5.9).

import (
	"sync"

	"github.com/spilly-db/spilly/internal/core"
	"github.com/spilly-db/spilly/internal/data"
)

// batchEncoder materializes all live rows of a batch through an Umami
// buffer: key hashes and tuple sizes are computed column-at-a-time, the
// rows are encoded column-at-a-time into one scratch buffer, and each
// tuple is then copied into its AllocTuple slot. The copy is what makes
// this safe: AllocTuple may trigger adaptive partitioning or spilling,
// which invalidates previously returned slots, so tuples must be complete
// bytes by the time the next allocation happens.
type batchEncoder struct {
	hs    []uint64
	sizes []int
	dsts  [][]byte
	enc   []byte
}

// materialize encodes every live row of b into buf. each (optional) is
// invoked with the index and key hash of every live row, before its tuple
// is allocated.
func (be *batchEncoder) materialize(buf *core.Buffer, rc *data.RowCodec, b *data.Batch, keyCols []int, each func(i int, h uint64)) {
	be.hs = data.HashColumns(b, b.Sel, keyCols, be.hs[:0])
	be.sizes = rc.SizeAll(b, b.Sel, be.sizes[:0])
	total := 0
	for _, s := range be.sizes {
		total += s
	}
	if cap(be.enc) < total {
		be.enc = make([]byte, total)
	}
	be.enc = be.enc[:total]
	be.dsts = be.dsts[:0]
	off := 0
	for _, s := range be.sizes {
		be.dsts = append(be.dsts, be.enc[off:off+s:off+s])
		off += s
	}
	rc.EncodeAll(be.dsts, b, b.Sel)
	for i, h := range be.hs {
		if each != nil {
			each(i, h)
		}
		copy(buf.AllocTuple(be.sizes[i], h), be.dsts[i])
	}
}

// vectorizeEnabled gates every vectorized fast path; when false all
// evaluation goes through the per-row scalar closures. Flipped only by
// SetVectorized (equivalence tests); not safe to toggle mid-query.
var vectorizeEnabled = true

// SetVectorized toggles the vectorized kernels engine-wide. Tests force
// the scalar fallback to prove the two paths produce byte-identical
// results; production code never calls this.
func SetVectorized(on bool) { vectorizeEnabled = on }

// EvalBool evaluates a boolean expression over the live rows of b,
// appending the physical indices of passing rows to out (returned) — the
// selection-vector form of a filter. sel selects the rows to test (nil =
// all physical rows). out must not alias sel unless writing in ascending
// positions ≤ the read position is acceptable (it is for in-place
// refinement: survivors are a subset written monotonically).
func (e Expr) EvalBool(b *data.Batch, sel []int32, out []int32) []int32 {
	if vectorizeEnabled && e.vecSel != nil {
		return e.vecSel(b, sel, out)
	}
	f := e.I
	if sel == nil {
		n := b.Len()
		for r := 0; r < n; r++ {
			if f(b, r) != 0 {
				out = append(out, int32(r))
			}
		}
		return out
	}
	for _, r := range sel {
		if f(b, int(r)) != 0 {
			out = append(out, r)
		}
	}
	return out
}

// refineSel filters sel in place by e, returning the surviving prefix.
func (e Expr) refineSel(b *data.Batch, sel []int32) []int32 {
	return e.EvalBool(b, sel, sel[:0])
}

// EvalI evaluates an integer-typed expression for every live row of b
// into out, which must be sized to the live row count.
func (e Expr) EvalI(b *data.Batch, sel []int32, out []int64) {
	if vectorizeEnabled && e.vecI != nil {
		e.vecI(b, sel, out)
		return
	}
	f := e.I
	if sel == nil {
		for r := range out {
			out[r] = f(b, r)
		}
		return
	}
	for i, r := range sel {
		out[i] = f(b, int(r))
	}
}

// EvalF evaluates a float expression for every live row of b into out.
func (e Expr) EvalF(b *data.Batch, sel []int32, out []float64) {
	if vectorizeEnabled && e.vecF != nil {
		e.vecF(b, sel, out)
		return
	}
	f := e.F
	if sel == nil {
		for r := range out {
			out[r] = f(b, r)
		}
		return
	}
	for i, r := range sel {
		out[i] = f(b, int(r))
	}
}

// EvalS evaluates a string expression for every live row of b into out.
func (e Expr) EvalS(b *data.Batch, sel []int32, out []string) {
	if vectorizeEnabled && e.vecS != nil {
		e.vecS(b, sel, out)
		return
	}
	f := e.S
	if sel == nil {
		for r := range out {
			out[r] = f(b, r)
		}
		return
	}
	for i, r := range sel {
		out[i] = f(b, int(r))
	}
}

// grow extends s by n zero/empty elements, reallocating only when needed,
// and returns the extended slice (write into the last n positions).
func grow[T any](s []T, n int) []T {
	m := len(s)
	if cap(s) >= m+n {
		// No zeroing: every caller overwrites the n new positions in full.
		return s[:m+n]
	}
	ns := make([]T, m+n, (m+n)*2)
	copy(ns, s)
	return ns
}

// --- scratch pools for composed kernels ---

var (
	i64Pool = sync.Pool{New: func() interface{} { return new([]int64) }}
	f64Pool = sync.Pool{New: func() interface{} { return new([]float64) }}
)

func getI64(n int) *[]int64 {
	p := i64Pool.Get().(*[]int64)
	if cap(*p) < n {
		*p = make([]int64, n)
	}
	*p = (*p)[:n]
	return p
}

func getF64(n int) *[]float64 {
	p := f64Pool.Get().(*[]float64)
	if cap(*p) < n {
		*p = make([]float64, n)
	}
	*p = (*p)[:n]
	return p
}

// --- comparison opcodes ---

type cmpOp int

const (
	opLt cmpOp = iota
	opLe
	opGt
	opGe
	opEq
	opNe
)

func cmpOpOf(op string) cmpOp {
	switch op {
	case "<":
		return opLt
	case "<=":
		return opLe
	case ">":
		return opGt
	case ">=":
		return opGe
	case "=":
		return opEq
	case "<>":
		return opNe
	}
	panic("exec: unknown comparison " + op)
}

// revOp mirrors an operator across swapped operands: a<b ⇔ b>a.
func revOp(op cmpOp) cmpOp {
	switch op {
	case opLt:
		return opGt
	case opLe:
		return opGe
	case opGt:
		return opLt
	case opGe:
		return opLe
	}
	return op // =, <> are symmetric
}

type ordered interface {
	~int64 | ~float64 | ~string
}

// cmpColConstSel compares a physical column slice against a constant over
// the live rows, appending passing physical indices to out. The opcode
// switch sits outside the loops, so each case is a tight branch-free-ish
// scan — the kernel behind pushed-down range predicates.
func cmpColConstSel[T ordered](vals []T, k T, op cmpOp, n int, sel []int32, out []int32) []int32 {
	if sel == nil {
		switch op {
		case opLt:
			for r := 0; r < n; r++ {
				if vals[r] < k {
					out = append(out, int32(r))
				}
			}
		case opLe:
			for r := 0; r < n; r++ {
				if vals[r] <= k {
					out = append(out, int32(r))
				}
			}
		case opGt:
			for r := 0; r < n; r++ {
				if vals[r] > k {
					out = append(out, int32(r))
				}
			}
		case opGe:
			for r := 0; r < n; r++ {
				if vals[r] >= k {
					out = append(out, int32(r))
				}
			}
		case opEq:
			for r := 0; r < n; r++ {
				if vals[r] == k {
					out = append(out, int32(r))
				}
			}
		case opNe:
			for r := 0; r < n; r++ {
				if vals[r] != k {
					out = append(out, int32(r))
				}
			}
		}
		return out
	}
	switch op {
	case opLt:
		for _, r := range sel {
			if vals[r] < k {
				out = append(out, r)
			}
		}
	case opLe:
		for _, r := range sel {
			if vals[r] <= k {
				out = append(out, r)
			}
		}
	case opGt:
		for _, r := range sel {
			if vals[r] > k {
				out = append(out, r)
			}
		}
	case opGe:
		for _, r := range sel {
			if vals[r] >= k {
				out = append(out, r)
			}
		}
	case opEq:
		for _, r := range sel {
			if vals[r] == k {
				out = append(out, r)
			}
		}
	case opNe:
		for _, r := range sel {
			if vals[r] != k {
				out = append(out, r)
			}
		}
	}
	return out
}

// cmpColColSel compares two physical column slices row-wise (e.g. Q12's
// l_commitdate < l_receiptdate).
func cmpColColSel[T ordered](xs, ys []T, op cmpOp, n int, sel []int32, out []int32) []int32 {
	if sel == nil {
		switch op {
		case opLt:
			for r := 0; r < n; r++ {
				if xs[r] < ys[r] {
					out = append(out, int32(r))
				}
			}
		case opLe:
			for r := 0; r < n; r++ {
				if xs[r] <= ys[r] {
					out = append(out, int32(r))
				}
			}
		case opGt:
			for r := 0; r < n; r++ {
				if xs[r] > ys[r] {
					out = append(out, int32(r))
				}
			}
		case opGe:
			for r := 0; r < n; r++ {
				if xs[r] >= ys[r] {
					out = append(out, int32(r))
				}
			}
		case opEq:
			for r := 0; r < n; r++ {
				if xs[r] == ys[r] {
					out = append(out, int32(r))
				}
			}
		case opNe:
			for r := 0; r < n; r++ {
				if xs[r] != ys[r] {
					out = append(out, int32(r))
				}
			}
		}
		return out
	}
	switch op {
	case opLt:
		for _, r := range sel {
			if xs[r] < ys[r] {
				out = append(out, r)
			}
		}
	case opLe:
		for _, r := range sel {
			if xs[r] <= ys[r] {
				out = append(out, r)
			}
		}
	case opGt:
		for _, r := range sel {
			if xs[r] > ys[r] {
				out = append(out, r)
			}
		}
	case opGe:
		for _, r := range sel {
			if xs[r] >= ys[r] {
				out = append(out, r)
			}
		}
	case opEq:
		for _, r := range sel {
			if xs[r] == ys[r] {
				out = append(out, r)
			}
		}
	case opNe:
		for _, r := range sel {
			if xs[r] != ys[r] {
				out = append(out, r)
			}
		}
	}
	return out
}

// cmpDenseConst compares densely materialized live-row values (index i is
// the i-th live row) against a constant, appending passing *physical*
// indices.
func cmpDenseConst[T ordered](xs []T, k T, op cmpOp, sel []int32, out []int32) []int32 {
	phys := func(i int) int32 {
		if sel != nil {
			return sel[i]
		}
		return int32(i)
	}
	switch op {
	case opLt:
		for i := range xs {
			if xs[i] < k {
				out = append(out, phys(i))
			}
		}
	case opLe:
		for i := range xs {
			if xs[i] <= k {
				out = append(out, phys(i))
			}
		}
	case opGt:
		for i := range xs {
			if xs[i] > k {
				out = append(out, phys(i))
			}
		}
	case opGe:
		for i := range xs {
			if xs[i] >= k {
				out = append(out, phys(i))
			}
		}
	case opEq:
		for i := range xs {
			if xs[i] == k {
				out = append(out, phys(i))
			}
		}
	case opNe:
		for i := range xs {
			if xs[i] != k {
				out = append(out, phys(i))
			}
		}
	}
	return out
}

// cmpDense compares two densely materialized live-row value slices.
func cmpDense[T ordered](xs, ys []T, op cmpOp, sel []int32, out []int32) []int32 {
	phys := func(i int) int32 {
		if sel != nil {
			return sel[i]
		}
		return int32(i)
	}
	switch op {
	case opLt:
		for i := range xs {
			if xs[i] < ys[i] {
				out = append(out, phys(i))
			}
		}
	case opLe:
		for i := range xs {
			if xs[i] <= ys[i] {
				out = append(out, phys(i))
			}
		}
	case opGt:
		for i := range xs {
			if xs[i] > ys[i] {
				out = append(out, phys(i))
			}
		}
	case opGe:
		for i := range xs {
			if xs[i] >= ys[i] {
				out = append(out, phys(i))
			}
		}
	case opEq:
		for i := range xs {
			if xs[i] == ys[i] {
				out = append(out, phys(i))
			}
		}
	case opNe:
		for i := range xs {
			if xs[i] != ys[i] {
				out = append(out, phys(i))
			}
		}
	}
	return out
}

func liveRows(b *data.Batch, sel []int32) int {
	if sel != nil {
		return len(sel)
	}
	return b.Len()
}

// attachCmpKernel builds a vecSel fast path for a compiled comparison,
// choosing, in order of preference: direct col⊗const and col⊗col kernels,
// then materialize-and-compare over the operands' vectorized evaluators,
// else nothing (scalar fallback).
func attachCmpKernel(e *Expr, op cmpOp, a, b Expr) {
	switch {
	case a.Type == data.String || b.Type == data.String:
		switch {
		case a.isColRef() && b.isConst():
			ci, k := a.colIdx(), b.cS
			e.vecSel = func(ba *data.Batch, sel []int32, out []int32) []int32 {
				return cmpColConstSel(ba.Cols[ci].S, k, op, ba.Len(), sel, out)
			}
		case a.isConst() && b.isColRef():
			ci, k, rop := b.colIdx(), a.cS, revOp(op)
			e.vecSel = func(ba *data.Batch, sel []int32, out []int32) []int32 {
				return cmpColConstSel(ba.Cols[ci].S, k, rop, ba.Len(), sel, out)
			}
		case a.isColRef() && b.isColRef():
			ca, cb := a.colIdx(), b.colIdx()
			e.vecSel = func(ba *data.Batch, sel []int32, out []int32) []int32 {
				return cmpColColSel(ba.Cols[ca].S, ba.Cols[cb].S, op, ba.Len(), sel, out)
			}
		}
	case a.Type != data.Float64 && b.Type != data.Float64:
		// Integer-kind comparison (int64, date, bool).
		switch {
		case a.isColRef() && b.isConst():
			ci, k := a.colIdx(), b.cI
			e.vecSel = func(ba *data.Batch, sel []int32, out []int32) []int32 {
				return cmpColConstSel(ba.Cols[ci].I, k, op, ba.Len(), sel, out)
			}
		case a.isConst() && b.isColRef():
			ci, k, rop := b.colIdx(), a.cI, revOp(op)
			e.vecSel = func(ba *data.Batch, sel []int32, out []int32) []int32 {
				return cmpColConstSel(ba.Cols[ci].I, k, rop, ba.Len(), sel, out)
			}
		case a.isColRef() && b.isColRef():
			ca, cb := a.colIdx(), b.colIdx()
			e.vecSel = func(ba *data.Batch, sel []int32, out []int32) []int32 {
				return cmpColColSel(ba.Cols[ca].I, ba.Cols[cb].I, op, ba.Len(), sel, out)
			}
		case a.vecI != nil && b.isConst():
			av, k := a.vecI, b.cI
			e.vecSel = func(ba *data.Batch, sel []int32, out []int32) []int32 {
				xp := getI64(liveRows(ba, sel))
				av(ba, sel, *xp)
				out = cmpDenseConst(*xp, k, op, sel, out)
				i64Pool.Put(xp)
				return out
			}
		case a.vecI != nil && b.vecI != nil:
			av, bv := a.vecI, b.vecI
			e.vecSel = func(ba *data.Batch, sel []int32, out []int32) []int32 {
				n := liveRows(ba, sel)
				xp, yp := getI64(n), getI64(n)
				av(ba, sel, *xp)
				bv(ba, sel, *yp)
				out = cmpDense(*xp, *yp, op, sel, out)
				i64Pool.Put(xp)
				i64Pool.Put(yp)
				return out
			}
		}
	default:
		// Float comparison with int→float promotion.
		af, bf := a.AsFloat(), b.AsFloat()
		switch {
		case af.isColRef() && bf.isConst():
			ci, k := af.colIdx(), bf.cF
			e.vecSel = func(ba *data.Batch, sel []int32, out []int32) []int32 {
				return cmpColConstSel(ba.Cols[ci].F, k, op, ba.Len(), sel, out)
			}
		case af.isConst() && bf.isColRef():
			ci, k, rop := bf.colIdx(), af.cF, revOp(op)
			e.vecSel = func(ba *data.Batch, sel []int32, out []int32) []int32 {
				return cmpColConstSel(ba.Cols[ci].F, k, rop, ba.Len(), sel, out)
			}
		case af.isColRef() && bf.isColRef():
			ca, cb := af.colIdx(), bf.colIdx()
			e.vecSel = func(ba *data.Batch, sel []int32, out []int32) []int32 {
				return cmpColColSel(ba.Cols[ca].F, ba.Cols[cb].F, op, ba.Len(), sel, out)
			}
		case af.vecF != nil && bf.isConst():
			av, k := af.vecF, bf.cF
			e.vecSel = func(ba *data.Batch, sel []int32, out []int32) []int32 {
				xp := getF64(liveRows(ba, sel))
				av(ba, sel, *xp)
				out = cmpDenseConst(*xp, k, op, sel, out)
				f64Pool.Put(xp)
				return out
			}
		case af.vecF != nil && bf.vecF != nil:
			av, bv := af.vecF, bf.vecF
			e.vecSel = func(ba *data.Batch, sel []int32, out []int32) []int32 {
				n := liveRows(ba, sel)
				xp, yp := getF64(n), getF64(n)
				av(ba, sel, *xp)
				bv(ba, sel, *yp)
				out = cmpDense(*xp, *yp, op, sel, out)
				f64Pool.Put(xp)
				f64Pool.Put(yp)
				return out
			}
		}
	}
}

// --- arithmetic kernels ---

type arithOp int

const (
	aAdd arithOp = iota
	aSub
	aMul
	aDiv
)

// applyConstF folds a constant into out in place: out[i] = out[i] op k,
// or k op out[i] when rev (needed for non-commutative Sub/Div).
func applyConstF(out []float64, k float64, op arithOp, rev bool) {
	switch {
	case op == aAdd:
		for i := range out {
			out[i] += k
		}
	case op == aMul:
		for i := range out {
			out[i] *= k
		}
	case op == aSub && !rev:
		for i := range out {
			out[i] -= k
		}
	case op == aSub && rev:
		for i := range out {
			out[i] = k - out[i]
		}
	case op == aDiv && !rev:
		for i := range out {
			out[i] /= k
		}
	default: // aDiv reversed
		for i := range out {
			out[i] = k / out[i]
		}
	}
}

func applyConstI(out []int64, k int64, op arithOp, rev bool) {
	switch {
	case op == aAdd:
		for i := range out {
			out[i] += k
		}
	case op == aMul:
		for i := range out {
			out[i] *= k
		}
	case op == aSub && !rev:
		for i := range out {
			out[i] -= k
		}
	default: // aSub reversed; aDiv never reaches the int kernel
		for i := range out {
			out[i] = k - out[i]
		}
	}
}

// applyColF folds a physical float column into out in place.
func applyColF(out []float64, vals []float64, sel []int32, op arithOp, rev bool) {
	v := func(i int) float64 {
		if sel != nil {
			return vals[sel[i]]
		}
		return vals[i]
	}
	switch {
	case op == aAdd:
		for i := range out {
			out[i] += v(i)
		}
	case op == aMul:
		for i := range out {
			out[i] *= v(i)
		}
	case op == aSub && !rev:
		for i := range out {
			out[i] -= v(i)
		}
	case op == aSub && rev:
		for i := range out {
			out[i] = v(i) - out[i]
		}
	case op == aDiv && !rev:
		for i := range out {
			out[i] /= v(i)
		}
	default:
		for i := range out {
			out[i] = v(i) / out[i]
		}
	}
}

func applyColI(out []int64, vals []int64, sel []int32, op arithOp, rev bool) {
	v := func(i int) int64 {
		if sel != nil {
			return vals[sel[i]]
		}
		return vals[i]
	}
	switch {
	case op == aAdd:
		for i := range out {
			out[i] += v(i)
		}
	case op == aMul:
		for i := range out {
			out[i] *= v(i)
		}
	case op == aSub && !rev:
		for i := range out {
			out[i] -= v(i)
		}
	default:
		for i := range out {
			out[i] = v(i) - out[i]
		}
	}
}

// combineF computes out[i] = xs[i] op out[i] in place.
func combineF(xs, out []float64, op arithOp) {
	switch op {
	case aAdd:
		for i := range out {
			out[i] = xs[i] + out[i]
		}
	case aSub:
		for i := range out {
			out[i] = xs[i] - out[i]
		}
	case aMul:
		for i := range out {
			out[i] = xs[i] * out[i]
		}
	case aDiv:
		for i := range out {
			out[i] = xs[i] / out[i]
		}
	}
}

func combineI(xs, out []int64, op arithOp) {
	switch op {
	case aAdd:
		for i := range out {
			out[i] = xs[i] + out[i]
		}
	case aSub:
		for i := range out {
			out[i] = xs[i] - out[i]
		}
	case aMul:
		for i := range out {
			out[i] = xs[i] * out[i]
		}
	}
}

// binaryFKernel composes a vectorized float kernel for a op b, or nil
// when either side lacks one. Const and bare-column operands fold into
// the other side's output buffer; only the general case pays a scratch
// materialization.
func binaryFKernel(a, b Expr, op arithOp) func(*data.Batch, []int32, []float64) {
	if a.vecF == nil || b.vecF == nil {
		return nil
	}
	switch {
	case b.isConst():
		av, k := a.vecF, b.cF
		return func(ba *data.Batch, sel []int32, out []float64) {
			av(ba, sel, out)
			applyConstF(out, k, op, false)
		}
	case a.isConst():
		bv, k := b.vecF, a.cF
		return func(ba *data.Batch, sel []int32, out []float64) {
			bv(ba, sel, out)
			applyConstF(out, k, op, true)
		}
	case b.isColRef():
		av, ci := a.vecF, b.colIdx()
		return func(ba *data.Batch, sel []int32, out []float64) {
			av(ba, sel, out)
			applyColF(out, ba.Cols[ci].F, sel, op, false)
		}
	case a.isColRef():
		bv, ci := b.vecF, a.colIdx()
		return func(ba *data.Batch, sel []int32, out []float64) {
			bv(ba, sel, out)
			applyColF(out, ba.Cols[ci].F, sel, op, true)
		}
	default:
		av, bv := a.vecF, b.vecF
		return func(ba *data.Batch, sel []int32, out []float64) {
			xp := getF64(len(out))
			av(ba, sel, *xp)
			bv(ba, sel, out)
			combineF(*xp, out, op)
			f64Pool.Put(xp)
		}
	}
}

// binaryIKernel is binaryFKernel for the integer lane (Add/Sub/Mul only).
func binaryIKernel(a, b Expr, op arithOp) func(*data.Batch, []int32, []int64) {
	if a.vecI == nil || b.vecI == nil {
		return nil
	}
	switch {
	case b.isConst():
		av, k := a.vecI, b.cI
		return func(ba *data.Batch, sel []int32, out []int64) {
			av(ba, sel, out)
			applyConstI(out, k, op, false)
		}
	case a.isConst():
		bv, k := b.vecI, a.cI
		return func(ba *data.Batch, sel []int32, out []int64) {
			bv(ba, sel, out)
			applyConstI(out, k, op, true)
		}
	case b.isColRef():
		av, ci := a.vecI, b.colIdx()
		return func(ba *data.Batch, sel []int32, out []int64) {
			av(ba, sel, out)
			applyColI(out, ba.Cols[ci].I, sel, op, false)
		}
	case a.isColRef():
		bv, ci := b.vecI, a.colIdx()
		return func(ba *data.Batch, sel []int32, out []int64) {
			bv(ba, sel, out)
			applyColI(out, ba.Cols[ci].I, sel, op, true)
		}
	default:
		av, bv := a.vecI, b.vecI
		return func(ba *data.Batch, sel []int32, out []int64) {
			xp := getI64(len(out))
			av(ba, sel, *xp)
			bv(ba, sel, out)
			combineI(*xp, out, op)
			i64Pool.Put(xp)
		}
	}
}
