package exec

import (
	"fmt"
	"sync"
	"sync/atomic"

	"github.com/spilly-db/spilly/internal/core"
	"github.com/spilly-db/spilly/internal/data"
	"github.com/spilly-db/spilly/internal/hll"
	"github.com/spilly-db/spilly/internal/pages"
	"github.com/spilly-db/spilly/internal/trace"
)

// JoinKind selects the join semantics. All kinds are probe-side preserving
// where applicable: Outer emits every probe row (padding build columns with
// NULL when unmatched), matching the paper's inner/semi/anti/outer set.
type JoinKind int

// Join kinds.
const (
	Inner JoinKind = iota
	Semi
	Anti
	Outer
)

// Join is the unified hash join (§4.5). It materializes the build side
// through Umami — so it starts as a simple in-memory hash join and
// adaptively partitions and spills — and executes its probe side like a
// hybrid hash join when partitions were spilled: probe tuples of spilled
// partitions first probe the in-memory table (which holds everything
// materialized before partitioning began), then follow their partition to
// the spilled phase.
//
// With Grace set, the operator instead behaves as the classical grace hash
// join baseline (§4.1): both sides always partition and every partition is
// joined separately — no streaming probe phase.
type Join struct {
	Build, Probe         Node
	BuildKeys, ProbeKeys []string
	Kind                 JoinKind
	Grace                bool

	schema *data.Schema
}

// NewJoin constructs a join node. The output schema is probe ⊕ build for
// Inner and Outer, probe only for Semi and Anti.
func NewJoin(kind JoinKind, build Node, buildKeys []string, probe Node, probeKeys []string) *Join {
	j := &Join{Build: build, Probe: probe, BuildKeys: buildKeys, ProbeKeys: probeKeys, Kind: kind}
	if len(buildKeys) != len(probeKeys) || len(buildKeys) == 0 {
		panic("exec: join key lists must be non-empty and of equal length")
	}
	switch kind {
	case Semi, Anti:
		j.schema = probe.Schema()
	default:
		j.schema = probe.Schema().Concat(build.Schema())
	}
	return j
}

// Schema implements Node.
func (j *Join) Schema() *data.Schema { return j.schema }

// grace reports whether this join runs as a grace hash join, either by its
// own flag or by the context-wide baseline switch.
func (j *Join) grace(ctx *Ctx) bool { return j.Grace || ctx.ForceGrace }

func indicesOf(s *data.Schema, names []string) []int {
	out := make([]int, len(names))
	for i, n := range names {
		out[i] = s.MustIndex(n)
	}
	return out
}

// Run implements Node.
func (j *Join) Run(ctx *Ctx) (*Stream, error) {
	if err := checkSchemaCols(j.Build.Schema(), j.BuildKeys); err != nil {
		return nil, err
	}
	if err := checkSchemaCols(j.Probe.Schema(), j.ProbeKeys); err != nil {
		return nil, err
	}
	sp := ctx.Trace.Start("join", j.label(ctx))
	defer ctx.Trace.EndScope(sp)
	pc := ctx.phaseStart()
	bres, rcB, bKeyFields, est, err := j.runBuild(ctx, sp)
	if err != nil {
		return nil, err
	}
	workers := ctx.workers()

	// Phase 2 preparation: the single in-memory hash table over ALL
	// in-memory pages — partitioned or not (§4.2 "Independence"). The
	// grace baseline has no streaming phase and builds no global table.
	var ht *hashTable
	routedMask := bres.Mask
	if j.grace(ctx) {
		routedMask = ^uint64(0) >> (64 - uint(bres.Partitions))
	} else {
		memPages := make([]*pages.Page, 0, len(bres.Unpartitioned)+len(bres.InMemory))
		memPages = append(memPages, bres.Unpartitioned...)
		memPages = append(memPages, bres.InMemory...)
		ht, err = buildHashTable(memPages, rcB, bKeyFields, est, workers)
		if err != nil {
			return nil, err
		}
	}
	ctx.spanPhase(sp, pc)

	return j.probeStream(ctx, sp, bres, rcB, bKeyFields, ht, routedMask)
}

// label describes the join for its profile span.
func (j *Join) label(ctx *Ctx) string {
	kind := "inner"
	switch j.Kind {
	case Semi:
		kind = "semi"
	case Anti:
		kind = "anti"
	case Outer:
		kind = "outer"
	}
	if j.grace(ctx) {
		kind += " grace"
	}
	return kind
}

// runBuild materializes the build side through Umami.
func (j *Join) runBuild(ctx *Ctx, sp *trace.Span) (*core.Result, *data.RowCodec, []int, int64, error) {
	bs, err := j.Build.Run(ctx)
	if err != nil {
		return nil, nil, nil, 0, err
	}
	bSchema := j.Build.Schema()
	rcB := data.NewRowCodec(bSchema.Types())
	bKeyCols := indicesOf(bSchema, j.BuildKeys)

	cfg := ctx.coreConfig()
	if j.grace(ctx) {
		cfg.Mode = core.ModeAlwaysPartition
	}
	shared := core.NewShared(cfg)
	workers := ctx.workers()
	parts := cfg.Partitions
	if parts <= 0 {
		parts = core.MaxPartitions
	}
	shiftP := uint(64 - log2(uint64(parts)))
	// Per-worker, per-partition HyperLogLog sketches: partition routing
	// consumes the hash prefix, so slicing the sketches the same way yields
	// a statistically valid distinct estimate per partition — the hint
	// phase 2 sizes each partition's hash table from (§4.4).
	sketches := make([][]*hll.Sketch, workers)
	err = runWorkers("join-build", workers, func(w int) error {
		done := false
		defer func() {
			if !done {
				bs.Abandon(w)
			}
		}()
		buf := shared.NewBuffer()
		skp := make([]*hll.Sketch, parts)
		sketches[w] = skp
		b := ctx.BatchPool(bSchema).Get()
		defer b.Release()
		var be batchEncoder
		for {
			n, err := bs.Next(w, b)
			if err != nil {
				return err
			}
			if n == 0 {
				done = true
				return buf.Finish()
			}
			// Batch materialization: hashing, sizing, and encoding all run
			// column-at-a-time. The HyperLogLog sketch computes a key hash
			// anyway; Umami reuses it for adaptive partitioning (§4.5).
			be.materialize(buf, rcB, b, bKeyCols, func(i int, h uint64) {
				p := int(h >> shiftP)
				sk := skp[p]
				if sk == nil {
					sk = hll.New()
					skp[p] = sk
				}
				sk.Add(h)
			})
		}
	})
	if err != nil {
		return nil, nil, nil, 0, err
	}
	bres, err := shared.Finalize()
	if err != nil {
		return nil, nil, nil, 0, err
	}
	ctx.AddCleanup(func() { bres.ReleaseMemory(ctx.Budget) })
	if ctx.Stats != nil {
		ctx.Stats.addResult(bres)
		if shared.PartitioningActive() {
			ctx.Stats.PartitionedOps.Add(1)
		}
	}
	spanResult(sp, bres)
	if shared.PartitioningActive() {
		sp.SetPartitioned()
	}
	// Merge the sketch grid: per-partition estimates feed phase-2 table
	// sizing; their union (register-wise max is associative) sizes the
	// global in-memory table exactly as the single sketch used to.
	partDistinct := make([]int64, parts)
	merged := hll.New()
	acc := hll.New()
	for p := 0; p < parts; p++ {
		acc.Reset()
		any := false
		for w := range sketches {
			if sk := sketches[w][p]; sk != nil {
				acc.Merge(sk)
				any = true
			}
		}
		if any {
			partDistinct[p] = int64(acc.Estimate())
			merged.Merge(acc)
		}
	}
	bres.PartDistinct = partDistinct
	bKeyFields := bKeyCols // build tuples carry the full build schema
	return bres, rcB, bKeyFields, int64(merged.Estimate()), nil
}

// joinShared is the probe-phase state shared by all workers.
type joinShared struct {
	j      *Join
	ctx    *Ctx
	sp     *trace.Span
	bres   *core.Result
	rcB    *data.RowCodec
	bKeys  []int
	ht     *hashTable
	mask   uint64
	shiftP uint // partition shift (64 - log2 partitions)
	nBuild int  // build schema width

	pSchema  *data.Schema
	pmSchema *data.Schema // probe materialization schema (probe ⊕ matched flag for Outer)
	rcP      *data.RowCodec
	pKeys    []int

	probeIn *Stream
	pshared *core.Shared

	bar        *barrier
	finalOnce  sync.Once
	pres       *core.Result
	routed     []int
	sched      *core.PartitionScheduler // nil when no partition spilled
	partCursor atomic.Int64
	err        errValue
}

func (j *Join) probeStream(ctx *Ctx, sp *trace.Span, bres *core.Result, rcB *data.RowCodec, bKeys []int, ht *hashTable, routedMask uint64) (*Stream, error) {
	ps, err := j.Probe.Run(ctx)
	if err != nil {
		return nil, err
	}
	pSchema := j.Probe.Schema()
	pmSchema := pSchema
	if j.Kind == Outer {
		pmSchema = pSchema.Concat(data.NewSchema(data.ColumnDef{Name: "__matched", Type: data.Bool}))
	}

	js := &joinShared{
		j:        j,
		ctx:      ctx,
		sp:       sp,
		bres:     bres,
		rcB:      rcB,
		bKeys:    bKeys,
		ht:       ht,
		mask:     routedMask,
		shiftP:   uint(64 - log2(uint64(bres.Partitions))),
		nBuild:   j.Build.Schema().Len(),
		pSchema:  pSchema,
		pmSchema: pmSchema,
		rcP:      data.NewRowCodec(pmSchema.Types()),
		pKeys:    indicesOf(pSchema, j.ProbeKeys),
		probeIn:  ps,
		bar:      newBarrier(ctx.workers()),
	}
	if routedMask != 0 {
		pcfg := ctx.coreConfig()
		pcfg.Mode = core.ModeAlwaysPartition
		pcfg.Partitions = bres.Partitions
		js.pshared = core.NewShared(pcfg)
	}

	workers := make([]*joinWorker, ctx.workers())
	var mu sync.Mutex
	return ctx.traceStream(&Stream{
		schema: j.schema,
		next: func(w int, b *data.Batch) (int, error) {
			mu.Lock()
			jw := workers[w]
			if jw == nil {
				jw = newJoinWorker(js, w)
				workers[w] = jw
			}
			mu.Unlock()
			return jw.next(b)
		},
		abandon: func(w int) {
			mu.Lock()
			jw := workers[w]
			mu.Unlock()
			// A worker that never reached the phase barrier will never
			// arrive: release the others.
			if jw == nil || jw.stage == 1 {
				js.bar.deregister()
			}
			js.probeIn.Abandon(w)
		},
	}, sp), nil
}

// joinWorker is one worker's probe state machine: stage 1 streams the probe
// input against the in-memory table, stage 2 (after a barrier) joins the
// routed partitions one at a time.
type joinWorker struct {
	js       *joinShared
	wid      int // this worker's stream id
	pbuf     *core.Buffer
	in       *data.Batch
	flag     []int64       // scratch matched-flag column (Outer)
	hashes   []uint64      // per-batch probe-key hashes
	wrapCols []data.Column // scratch columns for the Outer wrap batch
	arena    data.ByteArena

	stage int // 1 streaming, 2 partitions, 3 done
	cur   *partJoinState
}

// partJoinState is one worker's in-progress spilled partition: the build
// table (streamed in at open), the probe side's in-memory pages, and the
// probe cursor still being pulled from — probe pages of a spilled partition
// are joined as they arrive from the scheduler instead of being materialized
// first.
type partJoinState struct {
	part     int
	ht       *hashTable
	memPages []*pages.Page // probe side in-memory pages, consumed first
	idx      int
	bcur     core.PartitionCursor // build side, exhausted; pages live until Release
	pcur     core.PartitionCursor // probe side, streamed
}

func newJoinWorker(js *joinShared, wid int) *joinWorker {
	jw := &joinWorker{js: js, wid: wid, in: js.ctx.BatchPool(js.pSchema).Get(), stage: 1}
	if js.pshared != nil {
		jw.pbuf = js.pshared.NewBuffer()
	}
	return jw
}

func (jw *joinWorker) next(b *data.Batch) (int, error) {
	b.Reset()
	for {
		if err := jw.js.err.get(); err != nil {
			jw.releaseIn()
			return 0, err
		}
		switch jw.stage {
		case 1:
			n, err := jw.js.probeIn.Next(jw.workerID(), jw.in)
			if err != nil {
				jw.js.err.set(err)
				jw.releaseIn()
				return 0, err
			}
			if n == 0 {
				jw.releaseIn()
				if jw.pbuf != nil {
					if err := jw.pbuf.Finish(); err != nil {
						jw.js.err.set(err)
					}
				}
				jw.js.bar.wait()
				if err := jw.finalizeProbe(); err != nil {
					jw.js.err.set(err)
					return 0, err
				}
				jw.stage = 2
				continue
			}
			if out := jw.streamBatch(b); out > 0 {
				return out, nil
			}
		case 2:
			n, err := jw.partitionStep(b)
			if err != nil {
				jw.js.err.set(err)
				return 0, err
			}
			if n > 0 {
				return n, nil
			}
			if jw.stage == 3 {
				return 0, nil
			}
		default:
			return 0, nil
		}
	}
}

// releaseIn returns the worker's probe-input batch lease. Every terminal
// path out of next must call it — the clean end of stream and all error
// returns alike — or a failing query strands the lease and the query-end
// pool audit (gets == puts) reports a leak. Idempotent.
func (jw *joinWorker) releaseIn() {
	if jw.in != nil {
		jw.in.Release()
		jw.in = nil
	}
}

// workerID returns this worker's probe-stream id, bound at creation.
func (jw *joinWorker) workerID() int { return jw.wid }

// streamBatch probes jw.in against the in-memory table, emitting into b and
// routing tuples of spilled (or grace) partitions into the probe buffer.
func (jw *joinWorker) streamBatch(b *data.Batch) int {
	js := jw.js
	in := jw.in
	var wrap *data.Batch
	if js.j.Kind == Outer {
		if cap(jw.flag) < in.Len() {
			jw.flag = make([]int64, in.Len())
		}
		jw.flag = jw.flag[:in.Len()]
		jw.wrapCols = append(jw.wrapCols[:0], in.Cols...)
		jw.wrapCols = append(jw.wrapCols, data.Column{Type: data.Bool, I: jw.flag})
		wrap = &data.Batch{Schema: js.pmSchema, Cols: jw.wrapCols}
		wrap.SetLen(in.Len())
	}
	// Key hashes for the whole batch, column-at-a-time; the per-row loop
	// below then only routes and emits.
	jw.hashes = data.HashColumns(in, in.Sel, js.pKeys, jw.hashes[:0])
	n := in.Rows()
	for i := 0; i < n; i++ {
		r := in.Row(i)
		h := jw.hashes[i]
		part := int(h >> js.shiftP)
		routed := js.mask&(1<<uint(part)) != 0

		matched := false
		if js.ht != nil {
			switch js.j.Kind {
			case Inner, Outer:
				js.ht.probeRow(h, in, js.pKeys, r, func(bt []byte) {
					matched = true
					emitJoined(b, in, r, js.rcB, bt, js.nBuild, &jw.arena)
				})
			case Semi, Anti:
				matched = js.ht.probeRow(h, in, js.pKeys, r, nil)
			}
		}

		if !routed {
			switch js.j.Kind {
			case Semi:
				if matched {
					b.AppendRowFrom(in, r)
				}
			case Anti:
				if !matched {
					b.AppendRowFrom(in, r)
				}
			case Outer:
				if !matched {
					emitPadded(b, in, r, js.j.Build.Schema())
				}
			}
			continue
		}

		// Routed partition: decide whether the tuple continues to the
		// spilled phase (see §4.3/§4.5 hybrid semantics per join kind).
		switch js.j.Kind {
		case Inner:
			jw.store(in, r, h)
		case Semi:
			if matched {
				b.AppendRowFrom(in, r)
			} else {
				jw.store(in, r, h)
			}
		case Anti:
			if !matched {
				jw.store(in, r, h)
			}
		case Outer:
			jw.flag[r] = 0
			if matched {
				jw.flag[r] = 1
			}
			jw.storeWrap(wrap, r, h)
		}
	}
	return b.Len()
}

func (jw *joinWorker) store(in *data.Batch, r int, h uint64) {
	dst := jw.pbuf.AllocTuple(jw.js.rcP.Size(in, r), h)
	jw.js.rcP.Encode(dst, in, r)
}

func (jw *joinWorker) storeWrap(wrap *data.Batch, r int, h uint64) {
	dst := jw.pbuf.AllocTuple(jw.js.rcP.Size(wrap, r), h)
	jw.js.rcP.Encode(dst, wrap, r)
}

// finalizeProbe merges the probe-side materialization once all workers have
// finished stage 1.
func (jw *joinWorker) finalizeProbe() error {
	js := jw.js
	var ferr error
	js.finalOnce.Do(func() {
		if js.pshared != nil {
			pres, err := js.pshared.Finalize()
			if err != nil {
				ferr = err
				return
			}
			js.pres = pres
			js.ctx.AddCleanup(func() { pres.ReleaseMemory(js.ctx.Budget) })
			if js.ctx.Stats != nil {
				js.ctx.Stats.addResult(pres)
			}
			spanResult(js.sp, pres)
		}
		for p := 0; p < js.bres.Partitions; p++ {
			if js.mask&(1<<uint(p)) != 0 {
				js.routed = append(js.routed, p)
			}
		}
		// Schedule readback for every routed partition, build side then
		// probe side, in claim order — the order workers will consume them
		// in partitionStep, so prefetch lookahead tracks actual progress.
		anySpilled := false
		items := make([]core.PartitionWork, 0, 2*len(js.routed))
		for _, p := range js.routed {
			bslots := js.bres.Spilled[p]
			var pslots []core.SpilledSlot
			if js.pres != nil {
				pslots = js.pres.Spilled[p]
			}
			anySpilled = anySpilled || len(bslots) > 0 || len(pslots) > 0
			items = append(items,
				core.PartitionWork{Part: p, Slots: bslots},
				core.PartitionWork{Part: p, Slots: pslots})
		}
		if anySpilled {
			js.sched = core.NewPartitionScheduler(js.ctx.goCtx(), js.ctx.Spill.Array,
				js.ctx.pageSize(), items, js.ctx.readDepth(), js.ctx.Budget,
				js.ctx.BlockingSpillRead)
			js.ctx.bindSpillIO(js.sched)
			// One scheduler serves both sides, so its stripe directory is
			// the union of the build and probe results' parity stripes.
			stripes := js.bres.Stripes
			if js.pres != nil && len(js.pres.Stripes) > 0 {
				stripes = append(append([]*core.StripeGroup(nil), stripes...), js.pres.Stripes...)
			}
			js.sched.SetIntegrity(stripes)
			js.ctx.AddCleanup(js.sched.Close)
		}
	})
	return ferr
}

// partitionStep processes (part of) one routed partition, emitting into b.
// Probe pages are pulled one at a time — from the in-memory partition first,
// then from the readback cursor — so the worker joins page k while the
// scheduler's ring is already reading page k+1 (and the next partitions).
func (jw *joinWorker) partitionStep(b *data.Batch) (int, error) {
	js := jw.js
	for {
		if jw.cur == nil {
			i := int(js.partCursor.Add(1) - 1)
			if i >= len(js.routed) {
				jw.stage = 3
				return 0, nil
			}
			st, err := jw.openPartition(i, js.routed[i])
			if err != nil {
				return 0, err
			}
			jw.cur = st
		}
		st := jw.cur
		var pg *pages.Page
		if st.idx < len(st.memPages) {
			pg = st.memPages[st.idx]
			st.idx++
		} else if st.pcur != nil {
			next, err := st.pcur.Next()
			if err != nil {
				chargeSpillCursor(js.ctx, js.sp, st.pcur)
				return 0, fmt.Errorf("exec: join reading probe partition %d: %w", st.part, err)
			}
			pg = next
		}
		if pg == nil {
			// Partition fully joined: nothing references its pages anymore
			// (outputs are arena-interned, the hash table dies with st), so
			// the cursors' buffers can be recycled.
			jw.cur = nil
			st.ht = nil
			if st.pcur != nil {
				chargeSpillCursor(js.ctx, js.sp, st.pcur)
				st.pcur.Release()
			}
			if st.bcur != nil {
				st.bcur.Release()
			}
			continue
		}
		jw.emitProbePage(b, st, pg)
		if b.Len() > 0 {
			return b.Len(), nil
		}
	}
}

// openPartition streams the build side of routed partition i (partition p)
// into a hash table sized from its HLL distinct estimate, and opens the
// probe-side cursor for partitionStep to pull from.
func (jw *joinWorker) openPartition(i, p int) (*partJoinState, error) {
	js := jw.js
	st := &partJoinState{part: p}

	var hint int64
	if p < len(js.bres.PartDistinct) {
		hint = js.bres.PartDistinct[p]
	}
	st.ht = newStreamingHashTable(js.rcB, js.bKeys, hint)
	// Build side: spilled pages always; in-memory partition pages only for
	// the grace baseline (the unified join already covered them in the
	// global in-memory table).
	if js.j.grace(js.ctx) {
		for _, pg := range js.bres.InMemoryByPart(p) {
			st.ht.insertPage(pg)
		}
	}
	if js.sched != nil {
		bcur := js.sched.Open(2 * i)
		for {
			pg, err := bcur.Next()
			if err != nil {
				chargeSpillCursor(js.ctx, js.sp, bcur)
				return nil, fmt.Errorf("exec: join reading build partition %d: %w", p, err)
			}
			if pg == nil {
				break
			}
			st.ht.insertPage(pg)
		}
		chargeSpillCursor(js.ctx, js.sp, bcur)
		st.bcur = bcur
		st.pcur = js.sched.Open(2*i + 1)
	}
	if js.pres != nil {
		st.memPages = js.pres.InMemoryByPart(p)
	}
	return st, nil
}

// emitProbePage probes every tuple of one materialized probe page.
func (jw *joinWorker) emitProbePage(b *data.Batch, st *partJoinState, pg *pages.Page) {
	js := jw.js
	arena := &jw.arena
	nProbe := js.pSchema.Len()
	for t := 0; t < pg.Tuples(); t++ {
		tuple := pg.Tuple(t)
		h := js.rcP.HashTuple(tuple, js.pKeys)
		switch js.j.Kind {
		case Inner:
			st.ht.probeTuple(h, tuple, js.rcP, js.pKeys, func(bt []byte) {
				appendTupleCols(b, 0, js.rcP, tuple, nProbe, arena)
				appendTupleCols(b, nProbe, js.rcB, bt, js.nBuild, arena)
				b.SetLen(b.Len() + 1)
			})
		case Semi:
			if st.ht.probeTuple(h, tuple, js.rcP, js.pKeys, nil) {
				appendTupleCols(b, 0, js.rcP, tuple, nProbe, arena)
				b.SetLen(b.Len() + 1)
			}
		case Anti:
			if !st.ht.probeTuple(h, tuple, js.rcP, js.pKeys, nil) {
				appendTupleCols(b, 0, js.rcP, tuple, nProbe, arena)
				b.SetLen(b.Len() + 1)
			}
		case Outer:
			matched := st.ht.probeTuple(h, tuple, js.rcP, js.pKeys, func(bt []byte) {
				appendTupleCols(b, 0, js.rcP, tuple, nProbe, arena)
				appendTupleCols(b, nProbe, js.rcB, bt, js.nBuild, arena)
				b.SetLen(b.Len() + 1)
			})
			flagField := nProbe // the appended __matched field
			if !matched && js.rcP.Int(tuple, flagField) == 0 {
				appendTupleCols(b, 0, js.rcP, tuple, nProbe, arena)
				appendNullCols(b, nProbe, js.j.Build.Schema())
				b.SetLen(b.Len() + 1)
			}
		}
	}
}

// emitJoined appends probe row r of in ⊕ decoded build tuple to out.
func emitJoined(out *data.Batch, in *data.Batch, r int, rcB *data.RowCodec, buildTuple []byte, nBuild int, arena *data.ByteArena) {
	appendBatchRowCols(out, 0, in, r)
	appendTupleCols(out, in.Schema.Len(), rcB, buildTuple, nBuild, arena)
	out.SetLen(out.Len() + 1)
}

// emitPadded appends probe row r with NULL build columns (outer join).
func emitPadded(out *data.Batch, in *data.Batch, r int, buildSchema *data.Schema) {
	appendBatchRowCols(out, 0, in, r)
	appendNullCols(out, in.Schema.Len(), buildSchema)
	out.SetLen(out.Len() + 1)
}

// appendBatchRowCols copies row r of in into out columns [start, start+w).
func appendBatchRowCols(out *data.Batch, start int, in *data.Batch, r int) {
	for i := range in.Cols {
		src := &in.Cols[i]
		dst := &out.Cols[start+i]
		switch dst.Type {
		case data.Float64:
			dst.F = append(dst.F, src.F[r])
		case data.String:
			dst.S = append(dst.S, src.S[r])
		default:
			dst.I = append(dst.I, src.I[r])
		}
		appendNullMark(dst, out.Len(), src.Null != nil && src.Null[r])
	}
}

// appendTupleCols decodes the first n fields of tuple into out columns
// [start, start+n). String fields are interned through arena (when
// non-nil), so the output owns its bytes and the tuple's page can be
// recycled once the batch is emitted.
func appendTupleCols(out *data.Batch, start int, rc *data.RowCodec, tuple []byte, n int, arena *data.ByteArena) {
	for f := 0; f < n; f++ {
		dst := &out.Cols[start+f]
		switch rc.Types()[f] {
		case data.Float64:
			dst.F = append(dst.F, rc.Float(tuple, f))
		case data.String:
			if arena != nil {
				dst.S = append(dst.S, arena.InternBytes(rc.StrBytes(tuple, f)))
			} else {
				dst.S = append(dst.S, rc.Str(tuple, f))
			}
		default:
			dst.I = append(dst.I, rc.Int(tuple, f))
		}
		appendNullMark(dst, out.Len(), rc.IsNull(tuple, f))
	}
}

// appendNullCols appends NULL values for every column of schema into out
// columns [start, start+len).
func appendNullCols(out *data.Batch, start int, schema *data.Schema) {
	for i, cd := range schema.Cols {
		dst := &out.Cols[start+i]
		switch cd.Type {
		case data.Float64:
			dst.F = append(dst.F, 0)
		case data.String:
			dst.S = append(dst.S, "")
		default:
			dst.I = append(dst.I, 0)
		}
		appendNullMark(dst, out.Len(), true)
	}
}

// appendNullMark maintains a column's null bitmap while appending row
// rowIdx (the batch length before the row is complete).
func appendNullMark(c *data.Column, rowIdx int, null bool) {
	if c.Null == nil {
		if !null {
			return
		}
		c.Null = make([]bool, rowIdx)
	}
	for len(c.Null) < rowIdx {
		c.Null = append(c.Null, false)
	}
	c.Null = append(c.Null, null)
}
