package exec

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"

	"github.com/spilly-db/spilly/internal/core"
	"github.com/spilly-db/spilly/internal/data"
	"github.com/spilly-db/spilly/internal/pages"
	"github.com/spilly-db/spilly/internal/trace"
)

// AggFunc is an aggregate function.
type AggFunc int

// Aggregate functions. CountStar counts rows; Count counts non-NULL values
// of a column (the distinction matters after outer joins, e.g. Q13).
const (
	Sum AggFunc = iota
	Count
	CountStar
	Min
	Max
	Avg
)

// AggSpec is one aggregate: Func over column Col (ignored for CountStar),
// named As in the output schema.
type AggSpec struct {
	Func AggFunc
	Col  string
	As   string
}

// Agg is the unified hash aggregation (§4.6). Worker threads pre-aggregate
// into small thread-local tables; full tables flush their groups as partial
// aggregate tuples into Umami, which adaptively partitions and spills.
// Workers that observe high group cardinality bypass pre-aggregation, since
// it only wastes cache space then (the paper's cardinality-adaptive
// behavior). Phase 2 merges in-memory partials into a sharded global table
// and processes spilled partitions independently.
type Agg struct {
	Child   Node
	GroupBy []string
	Aggs    []AggSpec
	// DisablePreAgg forces per-row materialization (the classical
	// partitioning-aggregation baseline of Figure 2).
	DisablePreAgg bool

	schema  *data.Schema // output schema
	partial *data.Schema // materialized partial-aggregate schema
	states  []stateDef
}

// stateDef maps one aggregate to its partial-state fields.
type stateDef struct {
	fn     AggFunc
	col    int // input column (-1 = CountStar)
	typ    data.Type
	fields []int // field indices in the partial tuple
}

// NewAgg constructs an aggregation node.
func NewAgg(child Node, groupBy []string, aggs []AggSpec) *Agg {
	a := &Agg{Child: child, GroupBy: groupBy, Aggs: aggs}
	in := child.Schema()
	out := &data.Schema{}
	part := &data.Schema{}
	for _, g := range groupBy {
		cd := in.Cols[in.MustIndex(g)]
		out.Cols = append(out.Cols, cd)
		part.Cols = append(part.Cols, cd)
	}
	for i, spec := range aggs {
		name := spec.As
		if name == "" {
			name = fmt.Sprintf("agg%d", i)
		}
		sd := stateDef{fn: spec.Func, col: -1}
		if spec.Func != CountStar {
			sd.col = in.MustIndex(spec.Col)
			sd.typ = in.Cols[sd.col].Type
		}
		addField := func(t data.Type) {
			sd.fields = append(sd.fields, part.Len())
			part.Cols = append(part.Cols, data.ColumnDef{Name: fmt.Sprintf("s%d_%d", i, len(sd.fields)), Type: t})
		}
		switch spec.Func {
		case Sum:
			addField(data.Float64)
			out.Cols = append(out.Cols, data.ColumnDef{Name: name, Type: data.Float64})
		case Count, CountStar:
			addField(data.Int64)
			out.Cols = append(out.Cols, data.ColumnDef{Name: name, Type: data.Int64})
		case Min, Max:
			addField(sd.typ)
			out.Cols = append(out.Cols, data.ColumnDef{Name: name, Type: sd.typ})
		case Avg:
			addField(data.Float64)
			addField(data.Int64)
			out.Cols = append(out.Cols, data.ColumnDef{Name: name, Type: data.Float64})
		}
		a.states = append(a.states, sd)
	}
	a.schema = out
	a.partial = part
	return a
}

// Schema implements Node.
func (a *Agg) Schema() *data.Schema { return a.schema }

// aggVal is one partial-state slot.
type aggVal struct {
	i    int64
	f    float64
	s    string
	seen bool // Min/Max initialization, Count-NULL handling
}

// localGroup is one group in a thread-local pre-aggregation table.
type localGroup struct {
	hash     uint64
	nk       int // group key count
	keys     []aggVal
	keyNulls []bool
	vals     []aggVal
}

const (
	localAggSlots   = 1 << 12 // thread-local table size (cache-resident, §4.6)
	localAggMax     = localAggSlots * 3 / 4
	preAggProbeRows = 1 << 14 // rows before judging pre-agg effectiveness
)

// Run implements Node.
func (a *Agg) Run(ctx *Ctx) (*Stream, error) {
	if err := checkSchemaCols(a.Child.Schema(), a.GroupBy); err != nil {
		return nil, err
	}
	var label string
	if len(a.GroupBy) > 0 {
		label = "group=" + strings.Join(a.GroupBy, ",")
	}
	sp := ctx.Trace.Start("agg", label)
	defer ctx.Trace.EndScope(sp)
	pc := ctx.phaseStart()
	in, err := a.Child.Run(ctx)
	if err != nil {
		return nil, err
	}
	inSchema := a.Child.Schema()
	keyCols := indicesOf(inSchema, a.GroupBy)
	rcPart := data.NewRowCodec(a.partial.Types())
	keyFields := make([]int, len(keyCols))
	for i := range keyCols {
		keyFields[i] = i
	}

	cfg := ctx.coreConfig()
	shared := core.NewShared(cfg)
	workers := ctx.workers()

	// Phase 1: consume input with local pre-aggregation, materializing
	// partial aggregate tuples through Umami.
	err = runWorkers("agg", workers, func(w int) error {
		done := false
		defer func() {
			if !done {
				in.Abandon(w)
			}
		}()
		nk := len(keyCols)
		nv := a.partial.Len() - nk
		aw := &aggWorker{
			a:       a,
			rcPart:  rcPart,
			keyCols: keyCols,
			buf:     shared.NewBuffer(),
			pb:      data.NewBatch(a.partial, 1),
			preAgg:  !a.DisablePreAgg && !ctx.NoPreAgg,
			nk:      nk,
			nv:      nv,
			// Group key/value widths are fixed per query, so local groups
			// carve their slices out of flat arenas instead of allocating
			// three slices per group (a measured phase-1 hotspot).
			keyArena:  make([]aggVal, localAggMax*nk),
			nullArena: make([]bool, localAggMax*nk),
			valArena:  make([]aggVal, localAggMax*nv),
			groups:    make([]localGroup, 0, localAggMax),
		}
		aw.pb.SetLen(1)
		for i := range a.partial.Cols {
			c := &aw.pb.Cols[i]
			switch c.Type {
			case data.Float64:
				c.F = make([]float64, 1)
			case data.String:
				c.S = make([]string, 1)
			default:
				c.I = make([]int64, 1)
			}
		}
		b := ctx.BatchPool(inSchema).Get()
		defer b.Release()
		for {
			n, err := in.Next(w, b)
			if err != nil {
				return err
			}
			if n == 0 {
				done = true
				aw.flushAll()
				return aw.buf.Finish()
			}
			aw.consume(b)
		}
	})
	if err != nil {
		return nil, err
	}
	res, err := shared.Finalize()
	if err != nil {
		return nil, err
	}
	ctx.AddCleanup(func() { res.ReleaseMemory(ctx.Budget) })
	if ctx.Stats != nil {
		ctx.Stats.addResult(res)
		if shared.PartitioningActive() {
			ctx.Stats.PartitionedOps.Add(1)
		}
	}
	spanResult(sp, res)
	if shared.PartitioningActive() {
		sp.SetPartitioned()
	}
	ctx.spanPhase(sp, pc)

	return a.mergePhase(ctx, sp, res, rcPart, keyFields)
}

// aggWorker is one worker's phase-1 state.
type aggWorker struct {
	a       *Agg
	rcPart  *data.RowCodec
	keyCols []int
	buf     *core.Buffer
	pb      *data.Batch // reusable 1-row partial batch for serialization
	tmpVals []aggVal
	hashes  []uint64 // per-batch key hashes (HashColumns output)

	preAgg bool
	probed int64
	rows   int64

	nk, nv    int // group key / value state widths
	keyArena  []aggVal
	nullArena []bool
	valArena  []aggVal

	slots  [localAggSlots]int32 // group index + 1; 0 = empty
	groups []localGroup
}

// consume processes one input batch: key hashes are computed for the whole
// batch column-at-a-time, then each live row folds into the local table.
func (aw *aggWorker) consume(b *data.Batch) {
	aw.hashes = data.HashColumns(b, b.Sel, aw.keyCols, aw.hashes[:0])
	n := b.Rows()
	for i := 0; i < n; i++ {
		r := b.Row(i)
		h := aw.hashes[i]
		if !aw.preAgg {
			aw.materializeRow(b, r, h)
			continue
		}
		aw.rows++
		g := aw.lookup(b, r, h)
		accumulateRow(aw.a.states, g, b, r)
		// Cardinality adaptivity: when almost every row opens a new
		// group, pre-aggregation buys nothing — bypass it (§4.6).
		if aw.rows == preAggProbeRows && len(aw.groups) > int(aw.rows*3/4) {
			aw.flushAll()
			aw.preAgg = false
		}
	}
}

// lookup finds or creates the local group for row r; it flushes the table
// when full.
func (aw *aggWorker) lookup(b *data.Batch, r int, h uint64) *localGroup {
	for {
		idx := h & (localAggSlots - 1)
		for {
			s := aw.slots[idx]
			if s == 0 {
				break
			}
			g := &aw.groups[s-1]
			if g.hash == h && aw.keysEqual(g, b, r) {
				return g
			}
			idx = (idx + 1) & (localAggSlots - 1)
		}
		if len(aw.groups) >= localAggMax {
			aw.flushAll()
			continue
		}
		gi := len(aw.groups)
		aw.groups = append(aw.groups, localGroup{
			hash:     h,
			nk:       aw.nk,
			keys:     aw.keyArena[gi*aw.nk : (gi+1)*aw.nk : (gi+1)*aw.nk],
			keyNulls: aw.nullArena[gi*aw.nk : (gi+1)*aw.nk : (gi+1)*aw.nk],
			vals:     aw.valArena[gi*aw.nv : (gi+1)*aw.nv : (gi+1)*aw.nv],
		})
		g := &aw.groups[len(aw.groups)-1]
		for i := range g.vals {
			g.vals[i] = aggVal{}
		}
		for i, c := range aw.keyCols {
			col := &b.Cols[c]
			g.keyNulls[i] = col.Null != nil && col.Null[r]
			switch col.Type {
			case data.Float64:
				g.keys[i].f = col.F[r]
			case data.String:
				g.keys[i].s = col.S[r]
			default:
				g.keys[i].i = col.I[r]
			}
		}
		aw.slots[idx] = int32(len(aw.groups))
		return g
	}
}

func (aw *aggWorker) keysEqual(g *localGroup, b *data.Batch, r int) bool {
	for i, c := range aw.keyCols {
		col := &b.Cols[c]
		null := col.Null != nil && col.Null[r]
		if null != g.keyNulls[i] {
			return false
		}
		if null {
			continue
		}
		switch col.Type {
		case data.Float64:
			if g.keys[i].f != col.F[r] {
				return false
			}
		case data.String:
			if g.keys[i].s != col.S[r] {
				return false
			}
		default:
			if g.keys[i].i != col.I[r] {
				return false
			}
		}
	}
	return true
}

// flushAll serializes every local group as a partial tuple into Umami and
// clears the table (the paper evicts groups to partition pages; flushing
// whole tables is the allocation-friendly equivalent, see DESIGN.md).
func (aw *aggWorker) flushAll() {
	for i := range aw.groups {
		aw.serializeGroup(&aw.groups[i])
	}
	aw.groups = aw.groups[:0]
	aw.slots = [localAggSlots]int32{}
}

// serializeGroup writes one local group as a partial tuple.
func (aw *aggWorker) serializeGroup(g *localGroup) {
	pb := aw.pb
	nk := len(aw.keyCols)
	for i := 0; i < nk; i++ {
		c := &pb.Cols[i]
		setNull(c, g.keyNulls[i])
		switch c.Type {
		case data.Float64:
			c.F[0] = g.keys[i].f
		case data.String:
			c.S[0] = g.keys[i].s
		default:
			c.I[0] = g.keys[i].i
		}
	}
	for i := nk; i < pb.Schema.Len(); i++ {
		v := &g.vals[i-nk]
		c := &pb.Cols[i]
		setNull(c, !v.seen && isMinMaxField(aw.a.states, i))
		switch c.Type {
		case data.Float64:
			c.F[0] = v.f
		case data.String:
			c.S[0] = v.s
		default:
			c.I[0] = v.i
		}
	}
	dst := aw.buf.AllocTuple(aw.rcPart.Size(pb, 0), g.hash)
	aw.rcPart.Encode(dst, pb, 0)
}

// materializeRow writes an input row directly as an initial partial tuple
// (pre-aggregation bypass).
func (aw *aggWorker) materializeRow(b *data.Batch, r int, h uint64) {
	pb := aw.pb
	nk := len(aw.keyCols)
	for i, c := range aw.keyCols {
		col := &b.Cols[c]
		dst := &pb.Cols[i]
		setNull(dst, col.Null != nil && col.Null[r])
		switch col.Type {
		case data.Float64:
			dst.F[0] = col.F[r]
		case data.String:
			dst.S[0] = col.S[r]
		default:
			dst.I[0] = col.I[r]
		}
	}
	// Initialize states from the single row.
	if cap(aw.tmpVals) < pb.Schema.Len()-nk {
		aw.tmpVals = make([]aggVal, pb.Schema.Len()-nk)
	}
	tmp := aw.tmpVals[:pb.Schema.Len()-nk]
	for i := range tmp {
		tmp[i] = aggVal{}
	}
	g := localGroup{vals: tmp, nk: nk}
	accumulateRow(aw.a.states, &g, b, r)
	for i := nk; i < pb.Schema.Len(); i++ {
		v := &tmp[i-nk]
		dst := &pb.Cols[i]
		setNull(dst, !v.seen && isMinMaxField(aw.a.states, i))
		switch dst.Type {
		case data.Float64:
			dst.F[0] = v.f
		case data.String:
			dst.S[0] = v.s
		default:
			dst.I[0] = v.i
		}
	}
	dst := aw.buf.AllocTuple(aw.rcPart.Size(pb, 0), h)
	aw.rcPart.Encode(dst, pb, 0)
}

func setNull(c *data.Column, null bool) {
	if null {
		if c.Null == nil {
			c.Null = make([]bool, 1)
		}
		c.Null[0] = true
	} else if c.Null != nil {
		c.Null[0] = false
	}
}

// isMinMaxField reports whether partial tuple field f (an absolute index)
// belongs to a Min/Max aggregate — their unseen state is NULL, every other
// state starts at zero.
func isMinMaxField(states []stateDef, f int) bool {
	for _, sd := range states {
		for _, sf := range sd.fields {
			if sf == f {
				return sd.fn == Min || sd.fn == Max
			}
		}
	}
	return false
}

// accumulateRow folds input row r into group state vals.
func accumulateRow(states []stateDef, g *localGroup, b *data.Batch, r int) {
	nk := g.nk
	for _, sd := range states {
		base := sd.fields[0] - nk
		switch sd.fn {
		case CountStar:
			g.vals[base].i++
		case Count:
			c := &b.Cols[sd.col]
			if c.Null == nil || !c.Null[r] {
				g.vals[base].i++
			}
		case Sum, Avg:
			c := &b.Cols[sd.col]
			if c.Null != nil && c.Null[r] {
				break
			}
			var v float64
			if c.Type == data.Float64 {
				v = c.F[r]
			} else {
				v = float64(c.I[r])
			}
			g.vals[base].f += v
			if sd.fn == Avg {
				g.vals[sd.fields[1]-nk].i++
			}
		case Min, Max:
			c := &b.Cols[sd.col]
			if c.Null != nil && c.Null[r] {
				break
			}
			v := &g.vals[base]
			switch c.Type {
			case data.Float64:
				x := c.F[r]
				if !v.seen || (sd.fn == Min && x < v.f) || (sd.fn == Max && x > v.f) {
					v.f = x
				}
			case data.String:
				x := c.S[r]
				if !v.seen || (sd.fn == Min && x < v.s) || (sd.fn == Max && x > v.s) {
					v.s = x
				}
			default:
				x := c.I[r]
				if !v.seen || (sd.fn == Min && x < v.i) || (sd.fn == Max && x > v.i) {
					v.i = x
				}
			}
			v.seen = true
		}
	}
}

// mergePartialTuple folds a partial tuple into final group state.
func mergePartialTuple(states []stateDef, vals []aggVal, rc *data.RowCodec, tuple []byte, nk int) {
	for _, sd := range states {
		f0 := sd.fields[0]
		base := f0 - nk
		switch sd.fn {
		case CountStar, Count:
			vals[base].i += rc.Int(tuple, f0)
		case Sum:
			vals[base].f += rc.Float(tuple, f0)
		case Avg:
			vals[base].f += rc.Float(tuple, f0)
			vals[sd.fields[1]-nk].i += rc.Int(tuple, sd.fields[1])
		case Min, Max:
			if rc.IsNull(tuple, f0) {
				break
			}
			v := &vals[base]
			switch rc.Types()[f0] {
			case data.Float64:
				x := rc.Float(tuple, f0)
				if !v.seen || (sd.fn == Min && x < v.f) || (sd.fn == Max && x > v.f) {
					v.f = x
				}
			case data.String:
				// Compare through a view; copy only when the best value
				// improves (spill-restore merges call this per tuple).
				x := rc.StrBytes(tuple, f0)
				if !v.seen || (sd.fn == Min && data.CompareBytesString(x, v.s) < 0) ||
					(sd.fn == Max && data.CompareBytesString(x, v.s) > 0) {
					v.s = string(x)
				}
			default:
				x := rc.Int(tuple, f0)
				if !v.seen || (sd.fn == Min && x < v.i) || (sd.fn == Max && x > v.i) {
					v.i = x
				}
			}
			v.seen = true
		}
	}
}

// finalGroup is one group in the global (or per-partition) merge table.
type finalGroup struct {
	keyVals  []aggVal
	keyNulls []bool
	vals     []aggVal
}

// mergeTable is a sharded hash map for the phase-2 global merge — the
// "global synchronized hash table" of §4.6. Shards are indexed by a hash
// prefix, so partitioned inputs touch disjoint shards (§5.3 locality).
type mergeTable struct {
	shards []mergeShard
	shift  uint
}

type mergeShard struct {
	mu sync.Mutex
	m  map[string]*finalGroup
	// Block arenas for group state, carved under the shard lock: one
	// finalGroup plus its keyVals/keyNulls/vals slices per new group
	// would otherwise be four heap allocations each, and high-cardinality
	// queries (Q13, Q18) insert one group per input tuple here.
	groupArena []finalGroup
	valArena   []aggVal
	nullArena  []bool
	// keyArena interns the map key bytes of new groups: one chunk
	// allocation per 64 KiB of key data instead of one string per group —
	// the measured residual hotspot on high-cardinality merges (Q18's
	// per-orderkey aggregation inserts ~30k groups per query).
	keyArena data.ByteArena
}

// mergeArenaGroups is the arena block size (groups per block).
const mergeArenaGroups = 256

// newGroup carves one zeroed finalGroup with nk key slots and nv
// aggregate slots from the shard's arenas.
func (sh *mergeShard) newGroup(nk, nv int) *finalGroup {
	if len(sh.groupArena) == 0 {
		sh.groupArena = make([]finalGroup, mergeArenaGroups)
	}
	g := &sh.groupArena[0]
	sh.groupArena = sh.groupArena[1:]
	if len(sh.valArena) < nk+nv {
		sh.valArena = make([]aggVal, mergeArenaGroups*(nk+nv))
	}
	g.keyVals = sh.valArena[:nk:nk]
	g.vals = sh.valArena[nk : nk+nv : nk+nv]
	sh.valArena = sh.valArena[nk+nv:]
	if len(sh.nullArena) < nk {
		sh.nullArena = make([]bool, mergeArenaGroups*nk)
	}
	g.keyNulls = sh.nullArena[:nk:nk]
	sh.nullArena = sh.nullArena[nk:]
	return g
}

func newMergeTable(shardCount int) *mergeTable {
	mt := &mergeTable{shards: make([]mergeShard, shardCount), shift: uint(64 - log2(uint64(shardCount)))}
	for i := range mt.shards {
		mt.shards[i].m = make(map[string]*finalGroup)
	}
	return mt
}

// keyString builds the canonical key-bytes of a partial tuple's key fields.
func keyString(rc *data.RowCodec, tuple []byte, nk int, scratch []byte) []byte {
	scratch = scratch[:0]
	for f := 0; f < nk; f++ {
		if rc.IsNull(tuple, f) {
			scratch = append(scratch, 1)
			continue
		}
		scratch = append(scratch, 0)
		if rc.Types()[f] == data.String {
			s := rc.StrBytes(tuple, f)
			scratch = append(scratch, byte(len(s)), byte(len(s)>>8))
			scratch = append(scratch, s...)
		} else {
			v := rc.Int(tuple, f)
			for k := 0; k < 8; k++ {
				scratch = append(scratch, byte(v>>(8*k)))
			}
		}
	}
	return scratch
}

// merge folds one partial tuple into the table.
func (mt *mergeTable) merge(a *Agg, rc *data.RowCodec, tuple []byte, hash uint64, scratch []byte) []byte {
	nk := len(a.GroupBy)
	sh := &mt.shards[hash>>mt.shift]
	scratch = keyString(rc, tuple, nk, scratch)
	sh.mu.Lock()
	// map[string] lookup keyed by a byte slice compiles to a zero-alloc
	// probe; the key string is only materialized for new groups (a
	// measured phase-2 hotspot: one alloc per tuple before).
	g, ok := sh.m[string(scratch)]
	if !ok {
		g = sh.newGroup(nk, a.partial.Len()-nk)
		for f := 0; f < nk; f++ {
			g.keyNulls[f] = rc.IsNull(tuple, f)
			switch rc.Types()[f] {
			case data.Float64:
				g.keyVals[f].f = rc.Float(tuple, f)
			case data.String:
				g.keyVals[f].s = rc.Str(tuple, f)
			default:
				g.keyVals[f].i = rc.Int(tuple, f)
			}
		}
		// Min/Max merge needs the seen flag reconstructed from NULLs.
		for _, sd := range a.states {
			if sd.fn == Min || sd.fn == Max {
				g.vals[sd.fields[0]-nk].seen = false
			}
		}
		sh.m[sh.keyArena.InternBytes(scratch)] = g
	}
	mergePartialTuple(a.states, g.vals, rc, tuple, nk)
	sh.mu.Unlock()
	return scratch
}

// mergePhase builds the final tables and returns the output stream.
func (a *Agg) mergePhase(ctx *Ctx, sp *trace.Span, res *core.Result, rcPart *data.RowCodec, keyFields []int) (*Stream, error) {
	mergePC := ctx.phaseStart()
	workers := ctx.workers()
	mask := res.Mask
	shiftP := uint(64 - log2(uint64(res.Partitions)))

	global := newMergeTable(64)
	// Overflow: tuples on in-memory pages that belong to spilled
	// partitions must merge with the spilled data, not the global table
	// (they may share groups with spilled partial tuples).
	overflow := make([][][]byte, res.Partitions)
	var ovMu sync.Mutex

	memPages := make([]*pages.Page, 0, len(res.Unpartitioned)+len(res.InMemory))
	memPages = append(memPages, res.Unpartitioned...)
	memPages = append(memPages, res.InMemory...)
	var cursor atomic.Int64
	err := runWorkers("agg-merge", workers, func(w int) error {
		scratch := make([]byte, 0, 128)
		localOv := make([][][]byte, res.Partitions)
		// Overflow tuples are copied through an arena: one allocation per
		// 64 KiB chunk instead of one per tuple.
		var tupArena data.ByteArena
		for {
			pi := int(cursor.Add(1) - 1)
			if pi >= len(memPages) {
				break
			}
			pg := memPages[pi]
			for t := 0; t < pg.Tuples(); t++ {
				tuple := pg.Tuple(t)
				h := rcPart.HashTuple(tuple, keyFields)
				part := int(h >> shiftP)
				if mask&(1<<uint(part)) != 0 {
					cp := tupArena.Copy(tuple)
					localOv[part] = append(localOv[part], cp)
					continue
				}
				scratch = global.merge(a, rcPart, tuple, h, scratch)
			}
		}
		ovMu.Lock()
		for p := range localOv {
			overflow[p] = append(overflow[p], localOv[p]...)
		}
		ovMu.Unlock()
		return nil
	})
	if err != nil {
		return nil, err
	}
	ctx.spanPhase(sp, mergePC)

	// Output stream: tasks are global shards plus spilled partitions.
	type task struct {
		shard int // >= 0: global shard; -1: partition
		part  int
		item  int // scheduler work item for partition tasks
	}
	var tasks []task
	for s := range global.shards {
		if len(global.shards[s].m) > 0 {
			tasks = append(tasks, task{shard: s})
		}
	}
	// Spilled partitions go through the readback scheduler in task order,
	// so while one worker merges partition k the ring is already reading
	// the next partitions — the merge loop never stalls at a partition
	// boundary.
	var items []core.PartitionWork
	anySlots := false
	for p := 0; p < res.Partitions; p++ {
		if mask&(1<<uint(p)) != 0 {
			tasks = append(tasks, task{shard: -1, part: p, item: len(items)})
			items = append(items, core.PartitionWork{Part: p, Slots: res.Spilled[p]})
			anySlots = anySlots || len(res.Spilled[p]) > 0
		}
	}
	var sched *core.PartitionScheduler
	if anySlots {
		sched = core.NewPartitionScheduler(ctx.goCtx(), ctx.Spill.Array, ctx.pageSize(),
			items, ctx.readDepth(), ctx.Budget, ctx.BlockingSpillRead)
		ctx.bindSpillIO(sched)
		sched.SetIntegrity(res.Stripes)
		ctx.AddCleanup(sched.Close)
	}
	var taskCursor atomic.Int64

	return ctx.traceStream(&Stream{
		schema: a.schema,
		next: func(w int, b *data.Batch) (int, error) {
			for {
				ti := int(taskCursor.Add(1) - 1)
				if ti >= len(tasks) {
					return 0, nil
				}
				t := tasks[ti]
				b.Reset()
				if t.shard >= 0 {
					for _, g := range global.shards[t.shard].m {
						a.emitGroup(b, g)
					}
				} else {
					n, err := a.emitPartition(ctx, sp, b, rcPart, keyFields, overflow[t.part], t.part, sched, t.item)
					if err != nil {
						return 0, err
					}
					if n == 0 {
						continue
					}
				}
				if b.Len() > 0 {
					return b.Len(), nil
				}
			}
		},
	}, sp), nil
}

// emitPartition merges one spilled partition (overflow tuples + read-back
// pages, streamed through the scheduler) and emits its groups.
func (a *Agg) emitPartition(ctx *Ctx, sp *trace.Span, b *data.Batch, rcPart *data.RowCodec, keyFields []int, overflow [][]byte, part int, sched *core.PartitionScheduler, item int) (int, error) {
	local := newMergeTable(1)
	scratch := make([]byte, 0, 128)
	// Overflow holds every in-memory tuple of this partition (routed there
	// during the global merge); the spilled pages follow from the array.
	for _, tuple := range overflow {
		scratch = local.merge(a, rcPart, tuple, rcPart.HashTuple(tuple, keyFields), scratch)
	}
	if sched != nil {
		cur := sched.Open(item)
		for {
			pg, err := cur.Next()
			if err != nil {
				chargeSpillCursor(ctx, sp, cur)
				return 0, fmt.Errorf("exec: agg reading partition %d: %w", part, err)
			}
			if pg == nil {
				break
			}
			for t := 0; t < pg.Tuples(); t++ {
				tuple := pg.Tuple(t)
				scratch = local.merge(a, rcPart, tuple, rcPart.HashTuple(tuple, keyFields), scratch)
			}
		}
		chargeSpillCursor(ctx, sp, cur)
		// Every key and Min/Max string was copied into the merge table, so
		// the read-back buffers can be recycled before emitting.
		cur.Release()
	}
	n := 0
	for _, g := range local.shards[0].m {
		a.emitGroup(b, g)
		n++
	}
	return n, nil
}

// emitGroup appends one finalized group to b.
func (a *Agg) emitGroup(b *data.Batch, g *finalGroup) {
	nk := len(a.GroupBy)
	for i := 0; i < nk; i++ {
		c := &b.Cols[i]
		switch c.Type {
		case data.Float64:
			c.F = append(c.F, g.keyVals[i].f)
		case data.String:
			c.S = append(c.S, g.keyVals[i].s)
		default:
			c.I = append(c.I, g.keyVals[i].i)
		}
		appendNullMark(c, b.Len(), g.keyNulls[i])
	}
	for i, sd := range a.states {
		c := &b.Cols[nk+i]
		base := sd.fields[0] - nk
		switch sd.fn {
		case Sum:
			c.F = append(c.F, g.vals[base].f)
		case Count, CountStar:
			c.I = append(c.I, g.vals[base].i)
		case Avg:
			cnt := g.vals[sd.fields[1]-nk].i
			if cnt == 0 {
				c.F = append(c.F, 0)
			} else {
				c.F = append(c.F, g.vals[base].f/float64(cnt))
			}
		case Min, Max:
			switch c.Type {
			case data.Float64:
				c.F = append(c.F, g.vals[base].f)
			case data.String:
				c.S = append(c.S, g.vals[base].s)
			default:
				c.I = append(c.I, g.vals[base].i)
			}
		}
	}
	b.SetLen(b.Len() + 1)
}
