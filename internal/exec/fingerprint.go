package exec

import (
	"math"

	"github.com/spilly-db/spilly/internal/data"
	"github.com/spilly-db/spilly/internal/xhash"
)

// PlanFingerprint computes a canonical structural hash of a plan tree:
// two plans with the same fingerprint read the same tables through the
// same operators with the same expressions, keys, and literals, so —
// against the same catalog generation — they produce the same result.
// The result cache uses this as its key (DESIGN.md §14).
//
// The second return reports cacheability. A plan is uncacheable when it
// contains a node type this walker does not know, or an expression that
// was assembled outside the package constructors (its fp field is zero,
// so its structure is unknown); such plans fingerprint to 0 and are
// executed normally. ValuesNode content *is* hashed — scalar-subquery
// results embedded in a plan are part of its identity.
func PlanFingerprint(n Node) (uint64, bool) {
	fp := nodeFP(n)
	return fp, fp != 0
}

func nodeFP(n Node) uint64 {
	switch v := n.(type) {
	case *Scan:
		// The snapshot ID — not just the name — keys the scan: a plan
		// built over an old snapshot of a re-registered table must never
		// share a cache entry with plans over the new one, even within a
		// single catalog generation (the plan may have been built before
		// the registration that bumped it).
		parts := []uint64{
			xhash.String(v.Table.Name(), fpSeed),
			fpNz(xhash.U64(v.Table.ID(), fpSeed)),
		}
		for _, c := range v.Cols {
			parts = append(parts, xhash.String(c, fpSeed))
		}
		parts = append(parts, v.Filter.fingerprint())
		return fpNode("scan", parts...)
	case *FilterNode:
		return fpNode("filter", nodeFP(v.Child), v.Pred.fingerprint())
	case *Project:
		parts := []uint64{nodeFP(v.Child)}
		for i, name := range v.Names {
			parts = append(parts, xhash.String(name, fpSeed), v.Exprs[i].fingerprint())
		}
		return fpNode("project", parts...)
	case *ValuesNode:
		return fpNode("values", batchFP(v.Batch))
	case *Join:
		parts := []uint64{
			xhash.U64(uint64(v.Kind), fpSeed),
			xhash.U64(boolBit(v.Grace), fpSeed),
			nodeFP(v.Build),
			nodeFP(v.Probe),
		}
		for _, k := range v.BuildKeys {
			parts = append(parts, xhash.String(k, fpSeed))
		}
		for _, k := range v.ProbeKeys {
			parts = append(parts, xhash.String(k, fpSeed))
		}
		return fpNode("join", parts...)
	case *Agg:
		parts := []uint64{nodeFP(v.Child), xhash.U64(boolBit(v.DisablePreAgg), fpSeed)}
		for _, g := range v.GroupBy {
			parts = append(parts, xhash.String(g, fpSeed))
		}
		for _, a := range v.Aggs {
			parts = append(parts,
				xhash.U64(uint64(a.Func), fpSeed),
				xhash.String(a.Col, fpSeed),
				xhash.String(a.As, fpSeed))
		}
		return fpNode("agg", parts...)
	case *Sort:
		return fpNode("sort", sortFP(v.Child, v.Keys, v.Limit))
	case *ExtSort:
		return fpNode("extsort", sortFP(v.Child, v.Keys, v.Limit))
	case *Limit:
		return fpNode("limit", nodeFP(v.Child), xhash.U64(uint64(int64(v.N)), fpSeed))
	case *Window:
		parts := []uint64{nodeFP(v.Child)}
		for _, p := range v.PartitionBy {
			parts = append(parts, xhash.String(p, fpSeed))
		}
		for _, k := range v.OrderBy {
			parts = append(parts, xhash.String(k.Col, fpSeed), xhash.U64(boolBit(k.Desc), fpSeed))
		}
		for _, f := range v.Funcs {
			parts = append(parts,
				xhash.U64(uint64(f.Func), fpSeed),
				xhash.String(f.Col, fpSeed),
				xhash.String(f.As, fpSeed),
				xhash.U64(uint64(f.Frame), fpSeed),
				xhash.U64(uint64(int64(f.Lo)), fpSeed),
				xhash.U64(uint64(int64(f.Hi)), fpSeed))
		}
		return fpNode("window", parts...)
	default:
		return 0
	}
}

func sortFP(child Node, keys []SortKey, limit int) uint64 {
	parts := []uint64{nodeFP(child), xhash.U64(uint64(int64(limit)), fpSeed)}
	for _, k := range keys {
		parts = append(parts, xhash.String(k.Col, fpSeed), xhash.U64(boolBit(k.Desc), fpSeed))
	}
	return fpNode("sortkeys", parts...)
}

func boolBit(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

// batchFP hashes a batch's schema and full content. Values batches come
// from scalar subqueries and literal relations, so they are tiny; hashing
// their payload keeps plans with different subquery results distinct.
func batchFP(b *data.Batch) uint64 {
	if b == nil {
		return xhash.String("nilbatch", fpSeed)
	}
	h := xhash.U64(uint64(int64(b.Rows())), fpSeed)
	for _, cd := range b.Schema.Cols {
		h = xhash.Combine(h, xhash.String(cd.Name, fpSeed))
		h = xhash.Combine(h, xhash.U64(uint64(cd.Type), fpSeed))
	}
	for ci := range b.Cols {
		c := &b.Cols[ci]
		for i := 0; i < b.Rows(); i++ {
			r := b.Row(i)
			switch c.Type {
			case data.String:
				h = xhash.Combine(h, xhash.String(c.S[r], fpSeed))
			case data.Float64:
				h = xhash.Combine(h, xhash.U64(math.Float64bits(c.F[r]), fpSeed))
			default:
				h = xhash.Combine(h, xhash.U64(uint64(c.I[r]), fpSeed))
			}
			if c.Null != nil && c.Null[r] {
				h = xhash.Combine(h, xhash.String("null", fpSeed))
			}
		}
	}
	return fpNz(h)
}
