package exec

import (
	"testing"

	"github.com/spilly-db/spilly/internal/colstore"
	"github.com/spilly-db/spilly/internal/data"
)

func fpTestTable(t *testing.T, name string) colstore.Table {
	t.Helper()
	sch := &data.Schema{Cols: []data.ColumnDef{
		{Name: "k", Type: data.Int64},
		{Name: "v", Type: data.Float64},
		{Name: "s", Type: data.String},
	}}
	mt := colstore.NewMemTable(name, sch, 1024)
	b := data.NewBatch(sch, 4)
	for i := 0; i < 4; i++ {
		b.Cols[0].I = append(b.Cols[0].I, int64(i))
		b.Cols[1].F = append(b.Cols[1].F, float64(i)*1.5)
		b.Cols[2].S = append(b.Cols[2].S, "row")
	}
	b.SetLen(4)
	mt.Append(b)
	return mt
}

func fpTestPlan(tbl colstore.Table, threshold int64) Node {
	scan := NewScan(tbl, "k", "v")
	sch := scan.Schema()
	scan.Filter = Cmp("<", Col(sch, "k"), ConstInt(threshold))
	return &Agg{
		Child:   scan,
		GroupBy: []string{"k"},
		Aggs:    []AggSpec{{Func: Sum, Col: "v", As: "sum_v"}},
	}
}

// TestPlanFingerprintDeterministic: structurally identical plans built
// twice must hash identically — the property the result cache keys on.
func TestPlanFingerprintDeterministic(t *testing.T) {
	tbl := fpTestTable(t, "fp_t")
	a, okA := PlanFingerprint(fpTestPlan(tbl, 2))
	b, okB := PlanFingerprint(fpTestPlan(tbl, 2))
	if !okA || !okB {
		t.Fatalf("cacheable plans reported uncacheable: %v %v", okA, okB)
	}
	if a != b {
		t.Fatalf("identical plans fingerprint differently: %#x vs %#x", a, b)
	}
}

// TestPlanFingerprintSensitivity: any change to a literal, a key list, an
// operator knob, or the underlying table name must change the hash.
func TestPlanFingerprintSensitivity(t *testing.T) {
	tbl := fpTestTable(t, "fp_t")
	base, _ := PlanFingerprint(fpTestPlan(tbl, 2))

	if fp, _ := PlanFingerprint(fpTestPlan(tbl, 3)); fp == base {
		t.Error("changed literal, same fingerprint")
	}
	if fp, _ := PlanFingerprint(fpTestPlan(fpTestTable(t, "fp_u"), 2)); fp == base {
		t.Error("changed table name, same fingerprint")
	}
	// A different snapshot under the same name is a different plan: the
	// scan hashes the table's process-unique ID, so a plan built before a
	// re-registration never aliases one built after it.
	if fp, _ := PlanFingerprint(fpTestPlan(fpTestTable(t, "fp_t"), 2)); fp == base {
		t.Error("re-built table snapshot, same fingerprint")
	}

	withLimit, ok := PlanFingerprint(&Limit{Child: fpTestPlan(tbl, 2), N: 10})
	if !ok {
		t.Fatal("limit plan uncacheable")
	}
	if withLimit == base {
		t.Error("added limit, same fingerprint")
	}

	sorted, _ := PlanFingerprint(&Sort{Child: fpTestPlan(tbl, 2), Keys: []SortKey{{Col: "k"}}})
	sortedDesc, _ := PlanFingerprint(&Sort{Child: fpTestPlan(tbl, 2), Keys: []SortKey{{Col: "k", Desc: true}}})
	if sorted == sortedDesc {
		t.Error("sort direction ignored by fingerprint")
	}
}

// TestPlanFingerprintUncacheable: expressions assembled outside the
// package constructors carry no structural hash, so plans containing them
// must refuse a fingerprint rather than alias some other plan.
func TestPlanFingerprintUncacheable(t *testing.T) {
	tbl := fpTestTable(t, "fp_t")
	scan := NewScan(tbl, "k")
	scan.Filter = Expr{Type: data.Bool, I: func(b *data.Batch, r int) int64 { return 1 }}
	if fp, ok := PlanFingerprint(scan); ok || fp != 0 {
		t.Fatalf("hand-built filter expr fingerprinted: fp=%#x ok=%v", fp, ok)
	}

	// A zero-value (absent) filter is fine — that's a plain full scan.
	if _, ok := PlanFingerprint(NewScan(tbl, "k")); !ok {
		t.Fatal("filterless scan should be cacheable")
	}

	// Unknown node types propagate uncacheability upward.
	if _, ok := PlanFingerprint(&FilterNode{Child: unknownNode{tbl}, Pred: IsNotNull(NewScan(tbl).Schema(), "k")}); ok {
		t.Fatal("plan over unknown node type should be uncacheable")
	}
}

type unknownNode struct{ tbl colstore.Table }

func (u unknownNode) Schema() *data.Schema        { return u.tbl.Schema() }
func (u unknownNode) Run(ctx *Ctx) (*Stream, error) { return nil, nil }

// TestPlanFingerprintValuesContent: ValuesNode payload (scalar subquery
// results) is part of plan identity.
func TestPlanFingerprintValuesContent(t *testing.T) {
	sch := &data.Schema{Cols: []data.ColumnDef{{Name: "x", Type: data.Float64}}}
	mk := func(v float64) *ValuesNode {
		b := data.NewBatch(sch, 1)
		b.Cols[0].F = append(b.Cols[0].F, v)
		b.SetLen(1)
		return &ValuesNode{Batch: b}
	}
	a, okA := PlanFingerprint(mk(1.0))
	b, _ := PlanFingerprint(mk(2.0))
	if !okA {
		t.Fatal("values plan uncacheable")
	}
	if a == b {
		t.Error("different values content, same fingerprint")
	}
}
