package exec

import (
	"errors"
	"strings"
	"sync"
	"testing"

	"github.com/spilly-db/spilly/internal/codec"
	"github.com/spilly-db/spilly/internal/core"
	"github.com/spilly-db/spilly/internal/trace"
)

// TestHashBuildPanicBecomesQueryError: a panic during the hash-table build
// must surface as a structured *QueryError from the query. The build used to
// discard runWorkers' error entirely, so the query would silently proceed
// with a half-built (empty-bucket) table and return wrong results.
func TestHashBuildPanicBecomesQueryError(t *testing.T) {
	hashBuildTestHook = func() { panic("hash build exploded") }
	defer func() { hashBuildTestHook = nil }()

	j := NewJoin(Inner,
		NewScan(custTable(5000)), []string{"ckey"},
		NewScan(ordersTable(5000)), []string{"okey"})
	_, err := Collect(testCtx(2), j)
	if err == nil {
		t.Fatal("hash-build panic was swallowed: query returned no error")
	}
	var qe *core.QueryError
	if !errors.As(err, &qe) {
		t.Fatalf("err = %v (%T), want *QueryError", err, err)
	}
	if qe.Op != "hash-build" {
		t.Fatalf("QueryError.Op = %q, want \"hash-build\"", qe.Op)
	}
	if !strings.Contains(err.Error(), "hash build exploded") {
		t.Fatalf("panic message lost: %v", err)
	}
}

// TestStatsHistogramRace: Stats.addResult must be safe to run concurrently
// with SchemeHistogram readers (the live /metrics endpoint reads the
// histogram while workers finalize operators). Run with -race.
func TestStatsHistogramRace(t *testing.T) {
	s := &Stats{}
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(2)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				s.addResult(&core.Result{
					SpilledBytes:    1,
					SchemeHistogram: map[codec.ID]int64{codec.None: 1, codec.LZ4Fastest: 2},
				})
			}
		}()
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				_ = s.SchemeHistogram()
			}
		}()
	}
	wg.Wait()
	hist := s.SchemeHistogram()
	if hist[codec.None] != 2000 || hist[codec.LZ4Fastest] != 4000 {
		t.Fatalf("histogram = %v, want None=2000 LZ4Fastest=4000", hist)
	}
}

// TestJoinProducesSpans: running a plan with a tracer attached must yield a
// span per operator, with parentage mirroring the plan tree and row counts
// on the streaming edges.
func TestJoinProducesSpans(t *testing.T) {
	ctx := testCtx(2)
	ctx.Trace = trace.New(2)
	j := NewJoin(Inner,
		NewScan(custTable(100)), []string{"ckey"},
		NewScan(ordersTable(1000)), []string{"okey"})
	out, err := Collect(ctx, j)
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 100 {
		t.Fatalf("join rows = %d, want 100", out.Len())
	}
	byOp := map[string][]trace.SpanSnapshot{}
	for _, s := range ctx.Trace.Snapshots() {
		byOp[s.Op] = append(byOp[s.Op], s)
	}
	if len(byOp["join"]) != 1 || len(byOp["scan"]) != 2 {
		t.Fatalf("spans = %v, want 1 join + 2 scans", byOp)
	}
	join := byOp["join"][0]
	if join.ParentID != -1 {
		t.Fatalf("join parent = %d, want root (-1)", join.ParentID)
	}
	for _, sc := range byOp["scan"] {
		if sc.ParentID != join.ID {
			t.Fatalf("scan parent = %d, want join id %d", sc.ParentID, join.ID)
		}
	}
	if join.RowsOut != 100 {
		t.Fatalf("join rows_out = %d, want 100", join.RowsOut)
	}
	if join.TuplesStored != 100 {
		t.Fatalf("join tuples_stored = %d, want 100 build rows", join.TuplesStored)
	}
}

// TestSpillSpansCarrySpillBytes: a spilling aggregation must report its
// spill volume on the operator span, matching the query-level stats.
func TestSpillSpansCarrySpillBytes(t *testing.T) {
	ctx := spillCtx(2, 256)
	ctx.Trace = trace.New(2)
	agg := NewAgg(NewScan(ordersTable(200000)), []string{"okey"},
		[]AggSpec{{Func: Sum, Col: "total", As: "s"}})
	if _, err := Collect(ctx, agg); err != nil {
		t.Fatal(err)
	}
	var spilled int64
	for _, s := range ctx.Trace.Snapshots() {
		if s.Op == "agg" {
			spilled = s.SpilledBytes
			if !s.Spilled || !s.Partitioned {
				t.Fatalf("agg span flags = %+v, want spilled+partitioned", s)
			}
		}
	}
	if want := ctx.Stats.SpilledBytes.Load(); spilled != want {
		t.Fatalf("agg span spilled_bytes = %d, stats say %d", spilled, want)
	}
}
