package exec

import (
	"fmt"
	"sort"
	"testing"
	"time"

	"github.com/spilly-db/spilly/internal/colstore"
	"github.com/spilly-db/spilly/internal/core"
	"github.com/spilly-db/spilly/internal/data"
	"github.com/spilly-db/spilly/internal/nvmesim"
	"github.com/spilly-db/spilly/internal/pages"
)

// --- fixtures ---

func testCtx(workers int) *Ctx {
	return &Ctx{Workers: workers, Stats: &Stats{}}
}

// spillCtx returns a context with a tight budget and a fast array so that
// materializing operators are forced to partition and spill.
func spillCtx(workers int, budgetKB int64) *Ctx {
	arr := nvmesim.New(2, nvmesim.DeviceSpec{
		ReadBandwidth:  4e9,
		WriteBandwidth: 2e9,
		Latency:        20 * time.Microsecond,
	}, nvmesim.RealClock{})
	return &Ctx{
		Workers:     workers,
		Budget:      pages.NewBudget(budgetKB << 10),
		PageSize:    8 << 10,
		Partitions:  16,
		PartitionAt: 0.3,
		Spill:       &core.SpillConfig{Array: arr},
		Stats:       &Stats{},
	}
}

// ordersTable: (okey int, cust int, total float, flag string)
func ordersTable(n int) *colstore.MemTable {
	schema := data.NewSchema(
		data.ColumnDef{Name: "okey", Type: data.Int64},
		data.ColumnDef{Name: "cust", Type: data.Int64},
		data.ColumnDef{Name: "total", Type: data.Float64},
		data.ColumnDef{Name: "flag", Type: data.String},
	)
	t := colstore.NewMemTable("orders", schema, 512)
	b := data.NewBatch(schema, n)
	for i := 0; i < n; i++ {
		b.Cols[0].I = append(b.Cols[0].I, int64(i))
		b.Cols[1].I = append(b.Cols[1].I, int64(i%100))
		b.Cols[2].F = append(b.Cols[2].F, float64(i)*0.5)
		b.Cols[3].S = append(b.Cols[3].S, []string{"A", "B", "C"}[i%3])
	}
	b.SetLen(n)
	t.Append(b)
	return t
}

// custTable: (ckey int, name string) for keys 0..n-1.
func custTable(n int) *colstore.MemTable {
	schema := data.NewSchema(
		data.ColumnDef{Name: "ckey", Type: data.Int64},
		data.ColumnDef{Name: "name", Type: data.String},
	)
	t := colstore.NewMemTable("cust", schema, 512)
	b := data.NewBatch(schema, n)
	for i := 0; i < n; i++ {
		b.Cols[0].I = append(b.Cols[0].I, int64(i))
		b.Cols[1].S = append(b.Cols[1].S, fmt.Sprintf("cust-%d", i))
	}
	b.SetLen(n)
	t.Append(b)
	return t
}

// --- expression tests ---

func exprBatch() *data.Batch {
	schema := data.NewSchema(
		data.ColumnDef{Name: "i", Type: data.Int64},
		data.ColumnDef{Name: "f", Type: data.Float64},
		data.ColumnDef{Name: "s", Type: data.String},
		data.ColumnDef{Name: "d", Type: data.Date},
	)
	b := data.NewBatch(schema, 2)
	b.Cols[0].I = []int64{10, -3}
	b.Cols[1].F = []float64{2.5, 0.5}
	b.Cols[2].S = []string{"PROMO BRUSHED TIN", "SMALL PLATED BRASS"}
	b.Cols[3].I = []int64{data.ParseDate("1995-03-15"), data.ParseDate("1998-11-02")}
	b.SetLen(2)
	return b
}

func TestExprArithmetic(t *testing.T) {
	b := exprBatch()
	s := b.Schema
	e := Add(Col(s, "i"), ConstInt(5))
	if e.I(b, 0) != 15 || e.I(b, 1) != 2 {
		t.Fatal("int add")
	}
	m := Mul(Col(s, "f"), Sub(ConstFloat(1), ConstFloat(0.1)))
	if m.F(b, 0) != 2.25 {
		t.Fatalf("float mul: %v", m.F(b, 0))
	}
	// Mixed int/float promotes.
	mx := Add(Col(s, "i"), Col(s, "f"))
	if mx.Type != data.Float64 || mx.F(b, 0) != 12.5 {
		t.Fatal("promotion")
	}
	d := Div(Col(s, "i"), ConstInt(4))
	if d.F(b, 0) != 2.5 {
		t.Fatal("div is float division")
	}
}

func TestExprComparisons(t *testing.T) {
	b := exprBatch()
	s := b.Schema
	if !Cmp(">", Col(s, "i"), ConstInt(0)).Bool(b, 0) || Cmp(">", Col(s, "i"), ConstInt(0)).Bool(b, 1) {
		t.Fatal("int cmp")
	}
	if !Cmp("=", Col(s, "s"), ConstStr("PROMO BRUSHED TIN")).Bool(b, 0) {
		t.Fatal("str eq")
	}
	if !Cmp("<", Col(s, "d"), ConstDate("1996-01-01")).Bool(b, 0) {
		t.Fatal("date cmp")
	}
	if !And(ConstBool(true), Cmp("<>", Col(s, "i"), ConstInt(0))).Bool(b, 0) {
		t.Fatal("and")
	}
	if Or(ConstBool(false), Cmp("=", Col(s, "i"), ConstInt(99))).Bool(b, 0) {
		t.Fatal("or")
	}
	if !Not(ConstBool(false)).Bool(b, 0) {
		t.Fatal("not")
	}
}

func TestExprLike(t *testing.T) {
	b := exprBatch()
	s := b.Schema
	cases := []struct {
		pattern string
		want    [2]bool
	}{
		{"PROMO%", [2]bool{true, false}},
		{"%BRASS", [2]bool{false, true}},
		{"%PLATED%", [2]bool{false, true}},
		{"PROMO BRUSHED TIN", [2]bool{true, false}},
		{"%PROMO%TIN%", [2]bool{true, false}},
		{"P_OMO%", [2]bool{true, false}},
		{"%XYZ%", [2]bool{false, false}},
	}
	for _, c := range cases {
		e := Like(Col(s, "s"), c.pattern)
		for r := 0; r < 2; r++ {
			if e.Bool(b, r) != c.want[r] {
				t.Errorf("LIKE %q row %d = %v, want %v", c.pattern, r, e.Bool(b, r), c.want[r])
			}
		}
	}
}

func TestExprMisc(t *testing.T) {
	b := exprBatch()
	s := b.Schema
	if YearOf(Col(s, "d")).I(b, 1) != 1998 {
		t.Fatal("year")
	}
	if Substr(Col(s, "s"), 1, 5).S(b, 0) != "PROMO" {
		t.Fatal("substr")
	}
	if Substr(Col(s, "s"), 100, 5).S(b, 0) != "" {
		t.Fatal("substr out of range")
	}
	if !InStr(Col(s, "s"), "PROMO BRUSHED TIN", "other").Bool(b, 0) {
		t.Fatal("in str")
	}
	if !InInt(Col(s, "i"), -3, 7).Bool(b, 1) {
		t.Fatal("in int")
	}
	c := Case(Cmp(">", Col(s, "i"), ConstInt(0)), Col(s, "f"), ConstFloat(0))
	if c.F(b, 0) != 2.5 || c.F(b, 1) != 0 {
		t.Fatal("case")
	}
}

// --- scan / filter / project ---

func TestScanProjectFilter(t *testing.T) {
	tbl := ordersTable(5000)
	sc := NewScan(tbl, "okey", "flag")
	sc.Filter = Cmp("=", Col(sc.Schema(), "flag"), ConstStr("A"))
	ctx := testCtx(2)
	out, err := Collect(ctx, sc)
	if err != nil {
		t.Fatal(err)
	}
	want := 0
	for i := 0; i < 5000; i++ {
		if i%3 == 0 {
			want++
		}
	}
	if out.Len() != want {
		t.Fatalf("filtered scan: %d rows, want %d", out.Len(), want)
	}
	if ctx.Stats.ScannedRows.Load() != 5000 {
		t.Fatalf("scanned rows stat = %d", ctx.Stats.ScannedRows.Load())
	}
}

func TestProjectExpressions(t *testing.T) {
	tbl := ordersTable(100)
	sc := NewScan(tbl, "okey", "total")
	p := NewProject(sc, []string{"okey", "double"}, []Expr{
		Col(sc.Schema(), "okey"),
		Mul(Col(sc.Schema(), "total"), ConstFloat(2)),
	})
	out, err := Collect(testCtx(1), p)
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 100 {
		t.Fatalf("rows: %d", out.Len())
	}
	for r := 0; r < out.Len(); r++ {
		if out.Cols[1].F[r] != float64(out.Cols[0].I[r]) {
			t.Fatalf("row %d: double %v != okey %v", r, out.Cols[1].F[r], out.Cols[0].I[r])
		}
	}
}

// --- joins ---

// refInnerJoin computes the expected (cust, name) match count per key.
func runJoin(t *testing.T, ctx *Ctx, kind JoinKind, grace bool, nOrders, nCust int) *data.Batch {
	t.Helper()
	orders := ordersTable(nOrders)
	cust := custTable(nCust)
	j := NewJoin(kind, NewScan(cust), []string{"ckey"}, NewScan(orders, "okey", "cust"), []string{"cust"})
	j.Grace = grace
	out, err := Collect(ctx, j)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func TestInnerJoin(t *testing.T) {
	// cust keys 0..49; orders cust = i%100 → half the orders match.
	out := runJoin(t, testCtx(2), Inner, false, 10000, 50)
	if out.Len() != 5000 {
		t.Fatalf("inner join rows = %d, want 5000", out.Len())
	}
	// Verify the join columns line up.
	ci := out.Schema.MustIndex("cust")
	ki := out.Schema.MustIndex("ckey")
	ni := out.Schema.MustIndex("name")
	for r := 0; r < out.Len(); r++ {
		if out.Cols[ci].I[r] != out.Cols[ki].I[r] {
			t.Fatalf("row %d: key mismatch", r)
		}
		if out.Cols[ni].S[r] != fmt.Sprintf("cust-%d", out.Cols[ki].I[r]) {
			t.Fatalf("row %d: payload mismatch", r)
		}
	}
}

func TestSemiAntiJoin(t *testing.T) {
	semi := runJoin(t, testCtx(2), Semi, false, 10000, 50)
	if semi.Len() != 5000 {
		t.Fatalf("semi join rows = %d, want 5000", semi.Len())
	}
	anti := runJoin(t, testCtx(2), Anti, false, 10000, 50)
	if anti.Len() != 5000 {
		t.Fatalf("anti join rows = %d, want 5000", anti.Len())
	}
	for r := 0; r < anti.Len(); r++ {
		if anti.Cols[1].I[r] < 50 {
			t.Fatalf("anti join emitted matching row cust=%d", anti.Cols[1].I[r])
		}
	}
}

func TestOuterJoin(t *testing.T) {
	out := runJoin(t, testCtx(2), Outer, false, 10000, 50)
	if out.Len() != 10000 {
		t.Fatalf("outer join rows = %d, want 10000", out.Len())
	}
	ni := out.Schema.MustIndex("name")
	padded := 0
	for r := 0; r < out.Len(); r++ {
		if out.IsNull(ni, r) {
			padded++
		}
	}
	if padded != 5000 {
		t.Fatalf("padded rows = %d, want 5000", padded)
	}
}

func TestJoinDuplicateBuildKeys(t *testing.T) {
	// Build side with duplicate keys: every probe row matches twice.
	schema := data.NewSchema(
		data.ColumnDef{Name: "k", Type: data.Int64},
		data.ColumnDef{Name: "tag", Type: data.String},
	)
	bt := colstore.NewMemTable("dup", schema, 64)
	b := data.NewBatch(schema, 20)
	for i := 0; i < 10; i++ {
		for c := 0; c < 2; c++ {
			b.Cols[0].I = append(b.Cols[0].I, int64(i))
			b.Cols[1].S = append(b.Cols[1].S, fmt.Sprintf("t%d", c))
		}
	}
	b.SetLen(20)
	bt.Append(b)

	probe := custTable(10)
	j := NewJoin(Inner, NewScan(bt), []string{"k"}, NewScan(probe), []string{"ckey"})
	out, err := Collect(testCtx(2), j)
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 20 {
		t.Fatalf("duplicate-key join rows = %d, want 20", out.Len())
	}
}

func joinRowSet(t *testing.T, b *data.Batch) map[string]int {
	t.Helper()
	out := map[string]int{}
	for r := 0; r < b.Len(); r++ {
		key := ""
		for c := range b.Cols {
			col := &b.Cols[c]
			if col.Null != nil && col.Null[r] {
				key += "|NULL"
				continue
			}
			switch col.Type {
			case data.Float64:
				key += fmt.Sprintf("|%v", col.F[r])
			case data.String:
				key += "|" + col.S[r]
			default:
				key += fmt.Sprintf("|%d", col.I[r])
			}
		}
		out[key]++
	}
	return out
}

func sameRowSet(a, b map[string]int) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if b[k] != v {
			return false
		}
	}
	return true
}

// TestJoinModesEquivalent is the central unified-operator invariant: every
// configuration (in-memory, spilling, grace, always-partition) produces the
// same multiset of rows for every join kind.
func TestJoinModesEquivalent(t *testing.T) {
	for _, kind := range []JoinKind{Inner, Semi, Anti, Outer} {
		ref := joinRowSet(t, runJoin(t, testCtx(2), kind, false, 8000, 70))
		configs := map[string]func() *data.Batch{
			"spill": func() *data.Batch { return runJoin(t, spillCtx(2, 96), kind, false, 8000, 70) },
			"grace": func() *data.Batch { return runJoin(t, testCtx(2), kind, true, 8000, 70) },
			"grace-spill": func() *data.Batch { return runJoin(t, spillCtx(2, 96), kind, true, 8000, 70) },
			"always-partition": func() *data.Batch {
				ctx := testCtx(2)
				ctx.Mode = core.ModeAlwaysPartition
				return runJoin(t, ctx, kind, false, 8000, 70)
			},
		}
		for name, fn := range configs {
			got := joinRowSet(t, fn())
			if !sameRowSet(ref, got) {
				t.Fatalf("kind %d config %s: row set differs from in-memory reference (%d vs %d distinct)", kind, name, len(got), len(ref))
			}
		}
	}
}

func TestJoinActuallySpills(t *testing.T) {
	ctx := spillCtx(2, 64)
	runJoin(t, ctx, Inner, false, 20000, 5000)
	if ctx.Stats.SpilledBytes.Load() == 0 {
		t.Fatal("join under a 64KB budget did not spill")
	}
	if ctx.Stats.SpillReadBytes.Load() == 0 {
		t.Fatal("join spilled but never read back")
	}
}

// --- aggregation ---

func runAgg(t *testing.T, ctx *Ctx, disablePre bool, n int) *data.Batch {
	t.Helper()
	tbl := ordersTable(n)
	sc := NewScan(tbl, "cust", "total", "flag")
	agg := NewAgg(sc, []string{"cust"}, []AggSpec{
		{Func: Sum, Col: "total", As: "sum_total"},
		{Func: CountStar, As: "cnt"},
		{Func: Min, Col: "flag", As: "min_flag"},
		{Func: Max, Col: "total", As: "max_total"},
		{Func: Avg, Col: "total", As: "avg_total"},
	})
	agg.DisablePreAgg = disablePre
	out, err := Collect(ctx, agg)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func checkAggResult(t *testing.T, out *data.Batch, n int) {
	t.Helper()
	if out.Len() != 100 {
		t.Fatalf("groups = %d, want 100", out.Len())
	}
	perGroup := n / 100
	for r := 0; r < out.Len(); r++ {
		cust := out.Cols[0].I[r]
		if cnt := out.Cols[2].I[r]; cnt != int64(perGroup) {
			t.Fatalf("group %d count = %d, want %d", cust, cnt, perGroup)
		}
		// sum of (cust + 100k)*0.5 for k = 0..perGroup-1
		var want float64
		var wantMax float64
		for k := 0; k < perGroup; k++ {
			v := float64(cust+int64(100*k)) * 0.5
			want += v
			if v > wantMax {
				wantMax = v
			}
		}
		if got := out.Cols[1].F[r]; !closeTo(got, want) {
			t.Fatalf("group %d sum = %v, want %v", cust, got, want)
		}
		if got := out.Cols[4].F[r]; !closeTo(got, wantMax) {
			t.Fatalf("group %d max = %v, want %v", cust, got, wantMax)
		}
		if got := out.Cols[5].F[r]; !closeTo(got, want/float64(perGroup)) {
			t.Fatalf("group %d avg = %v", cust, got)
		}
		// Rows of group c have okey = c, c+100, c+200, ... and flag =
		// okey%3; since 100%3 = 1 the flags rotate, so min is "A" for
		// any group with at least 3 members.
		if got := out.Cols[3].S[r]; got != "A" {
			t.Fatalf("group %d min flag = %q, want A", cust, got)
		}
	}
}

func closeTo(a, b float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	scale := b
	if scale < 0 {
		scale = -scale
	}
	return d <= 1e-6*(scale+1)
}

func TestAggInMemory(t *testing.T) {
	checkAggResult(t, runAgg(t, testCtx(2), false, 10000), 10000)
}

func TestAggNoPreAgg(t *testing.T) {
	checkAggResult(t, runAgg(t, testCtx(2), true, 10000), 10000)
}

func TestAggSpilling(t *testing.T) {
	ctx := spillCtx(2, 64)
	checkAggResult(t, runAgg(t, ctx, true, 20000), 20000)
	if ctx.Stats.SpilledBytes.Load() == 0 {
		t.Fatal("aggregation under 64KB budget did not spill")
	}
}

func TestAggHighCardinalityBypass(t *testing.T) {
	// Group by okey: every row its own group — triggers the bypass and,
	// with a small budget, heavy spilling (the §6.3 microbenchmark shape).
	ctx := spillCtx(2, 128)
	tbl := ordersTable(30000)
	sc := NewScan(tbl, "okey", "total")
	agg := NewAgg(sc, []string{"okey"}, []AggSpec{{Func: Sum, Col: "total", As: "s"}})
	out, err := Collect(ctx, agg)
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 30000 {
		t.Fatalf("groups = %d, want 30000", out.Len())
	}
	if ctx.Stats.SpilledBytes.Load() == 0 {
		t.Fatal("high-cardinality aggregation did not spill")
	}
	seen := map[int64]bool{}
	for r := 0; r < out.Len(); r++ {
		k := out.Cols[0].I[r]
		if seen[k] {
			t.Fatalf("group %d emitted twice (spilled/global overlap)", k)
		}
		seen[k] = true
		if !closeTo(out.Cols[1].F[r], float64(k)*0.5) {
			t.Fatalf("group %d sum wrong", k)
		}
	}
}

func TestAggCountNulls(t *testing.T) {
	// count(col) skips NULLs (outer-join downstream, Q13 shape).
	orders := ordersTable(900)
	cust := custTable(30)
	j := NewJoin(Outer, NewScan(orders, "okey", "cust"), []string{"cust"}, NewScan(cust), []string{"ckey"})
	agg := NewAgg(j, []string{"ckey"}, []AggSpec{
		{Func: Count, Col: "okey", As: "c_count"},
		{Func: CountStar, As: "rows"},
	})
	out, err := Collect(testCtx(2), agg)
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 30 {
		t.Fatalf("groups = %d", out.Len())
	}
	for r := 0; r < out.Len(); r++ {
		ck := out.Cols[0].I[r]
		wantCount := int64(0)
		if ck < 30 { // custs 0..29 all match orders cust=i%100
			wantCount = 9
		}
		if out.Cols[1].I[r] != wantCount {
			t.Fatalf("cust %d count = %d, want %d", ck, out.Cols[1].I[r], wantCount)
		}
		if wantCount == 0 && out.Cols[2].I[r] != 1 {
			t.Fatalf("cust %d rows = %d, want 1 padded row", ck, out.Cols[2].I[r])
		}
	}
}

func TestAggModesEquivalent(t *testing.T) {
	ref := runAgg(t, testCtx(2), false, 12000)
	refSet := joinRowSet(t, ref)
	for name, ctx := range map[string]*Ctx{
		"spill-tight": spillCtx(2, 48),
		"spill-wide":  spillCtx(2, 512),
		"single":      testCtx(1),
	} {
		got := joinRowSet(t, runAgg(t, ctx, false, 12000))
		if !sameRowSet(refSet, got) {
			t.Fatalf("%s: aggregation results differ", name)
		}
	}
	// Always-partition baseline.
	ctx := testCtx(2)
	ctx.Mode = core.ModeAlwaysPartition
	if !sameRowSet(refSet, joinRowSet(t, runAgg(t, ctx, true, 12000))) {
		t.Fatal("always-partition aggregation differs")
	}
}

// --- sort / limit ---

func TestSortAndLimit(t *testing.T) {
	tbl := ordersTable(1000)
	s := &Sort{
		Child: NewScan(tbl, "okey", "total", "flag"),
		Keys:  []SortKey{{Col: "flag"}, {Col: "total", Desc: true}},
		Limit: 10,
	}
	out, err := Collect(testCtx(2), s)
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 10 {
		t.Fatalf("limit: %d rows", out.Len())
	}
	for r := 0; r < out.Len(); r++ {
		if out.Cols[2].S[r] != "A" {
			t.Fatalf("row %d flag %q, want A first", r, out.Cols[2].S[r])
		}
		if r > 0 && out.Cols[1].F[r] > out.Cols[1].F[r-1] {
			t.Fatal("total not descending")
		}
	}
}

func TestSortStableFullOrder(t *testing.T) {
	tbl := ordersTable(500)
	s := &Sort{Child: NewScan(tbl, "okey"), Keys: []SortKey{{Col: "okey", Desc: false}}}
	out, err := Collect(testCtx(3), s)
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 500 {
		t.Fatal("row count")
	}
	if !sort.SliceIsSorted(out.Cols[0].I, func(a, b int) bool { return out.Cols[0].I[a] < out.Cols[0].I[b] }) {
		t.Fatal("not sorted")
	}
}

func TestLimitNode(t *testing.T) {
	tbl := ordersTable(5000)
	l := &Limit{Child: NewScan(tbl, "okey"), N: 17}
	out, err := Collect(testCtx(2), l)
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() > 17 || out.Len() == 0 {
		t.Fatalf("limit emitted %d rows", out.Len())
	}
}

// --- OOM behavior (the in-memory-only engine role) ---

func TestJoinOOMWithoutSpill(t *testing.T) {
	ctx := &Ctx{
		Workers: 2,
		Budget:  pages.NewBudget(32 << 10),
		Mode:    core.ModeNeverPartition,
		Stats:   &Stats{},
	}
	orders := ordersTable(50000)
	cust := custTable(20000)
	j := NewJoin(Inner, NewScan(cust), []string{"ckey"}, NewScan(orders, "cust"), []string{"cust"})
	if _, err := Collect(ctx, j); err != core.ErrOutOfMemory {
		t.Fatalf("err = %v, want ErrOutOfMemory", err)
	}
}

// --- values node ---

func TestValuesNode(t *testing.T) {
	schema := data.NewSchema(data.ColumnDef{Name: "x", Type: data.Float64})
	b := data.NewBatch(schema, 1)
	b.Cols[0].F = []float64{42}
	b.SetLen(1)
	out, err := Collect(testCtx(3), &ValuesNode{Batch: b})
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 1 || out.Cols[0].F[0] != 42 {
		t.Fatal("values node broken")
	}
}
