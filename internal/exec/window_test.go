package exec

import (
	"fmt"
	"testing"

	"github.com/spilly-db/spilly/internal/colstore"
	"github.com/spilly-db/spilly/internal/data"
)

// windowTable: (grp int, seq int, val float) with rows shuffled across
// groups so window partitions interleave in the input.
func windowTable(groups, perGroup int) *colstore.MemTable {
	schema := data.NewSchema(
		data.ColumnDef{Name: "grp", Type: data.Int64},
		data.ColumnDef{Name: "seq", Type: data.Int64},
		data.ColumnDef{Name: "val", Type: data.Float64},
	)
	t := colstore.NewMemTable("w", schema, 512)
	b := data.NewBatch(schema, groups*perGroup)
	for s := 0; s < perGroup; s++ {
		for g := 0; g < groups; g++ {
			b.Cols[0].I = append(b.Cols[0].I, int64(g))
			b.Cols[1].I = append(b.Cols[1].I, int64(s))
			b.Cols[2].F = append(b.Cols[2].F, float64(g*1000+s))
		}
	}
	b.SetLen(groups * perGroup)
	t.Append(b)
	return t
}

func runWindow(t *testing.T, ctx *Ctx, groups, perGroup int, funcs []WindowSpec) *data.Batch {
	t.Helper()
	w := NewWindow(NewScan(windowTable(groups, perGroup)),
		[]string{"grp"}, []SortKey{{Col: "seq"}}, funcs)
	out, err := Collect(ctx, w)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func allWindowFuncs() []WindowSpec {
	return []WindowSpec{
		{Func: WRowNumber, As: "rn"},
		{Func: WRank, As: "rk"},
		{Func: WSum, Col: "val", As: "running_sum", Frame: FrameRunning},
		{Func: WSum, Col: "val", As: "total", Frame: FrameAll},
		{Func: WAvg, Col: "val", As: "sliding_avg", Frame: FrameRows, Lo: -1, Hi: 1},
		{Func: WMin, Col: "val", As: "sliding_min", Frame: FrameRows, Lo: -2, Hi: 0},
		{Func: WMax, Col: "val", As: "max_all", Frame: FrameAll},
		{Func: WCount, Col: "val", As: "cnt", Frame: FrameRunning},
	}
}

func checkWindow(t *testing.T, out *data.Batch, groups, perGroup int) {
	t.Helper()
	if out.Len() != groups*perGroup {
		t.Fatalf("rows = %d, want %d", out.Len(), groups*perGroup)
	}
	s := out.Schema
	gi, si := s.MustIndex("grp"), s.MustIndex("seq")
	for r := 0; r < out.Len(); r++ {
		g := out.Cols[gi].I[r]
		seq := int(out.Cols[si].I[r])
		base := float64(g * 1000)
		val := func(k int) float64 { return base + float64(k) }

		if rn := out.Cols[s.MustIndex("rn")].I[r]; rn != int64(seq+1) {
			t.Fatalf("g%d seq%d: row_number %d, want %d", g, seq, rn, seq+1)
		}
		if rk := out.Cols[s.MustIndex("rk")].I[r]; rk != int64(seq+1) {
			t.Fatalf("g%d seq%d: rank %d", g, seq, rk)
		}
		var wantRun float64
		for k := 0; k <= seq; k++ {
			wantRun += val(k)
		}
		if got := out.Cols[s.MustIndex("running_sum")].F[r]; !closeTo(got, wantRun) {
			t.Fatalf("g%d seq%d: running sum %v, want %v", g, seq, got, wantRun)
		}
		var wantTotal float64
		for k := 0; k < perGroup; k++ {
			wantTotal += val(k)
		}
		if got := out.Cols[s.MustIndex("total")].F[r]; !closeTo(got, wantTotal) {
			t.Fatalf("g%d seq%d: total %v, want %v", g, seq, got, wantTotal)
		}
		lo, hi := seq-1, seq+1
		if lo < 0 {
			lo = 0
		}
		if hi > perGroup-1 {
			hi = perGroup - 1
		}
		var sum float64
		for k := lo; k <= hi; k++ {
			sum += val(k)
		}
		if got := out.Cols[s.MustIndex("sliding_avg")].F[r]; !closeTo(got, sum/float64(hi-lo+1)) {
			t.Fatalf("g%d seq%d: sliding avg %v", g, seq, got)
		}
		mlo := seq - 2
		if mlo < 0 {
			mlo = 0
		}
		if got := out.Cols[s.MustIndex("sliding_min")].F[r]; got != val(mlo) {
			t.Fatalf("g%d seq%d: sliding min %v, want %v", g, seq, got, val(mlo))
		}
		if got := out.Cols[s.MustIndex("max_all")].F[r]; got != val(perGroup-1) {
			t.Fatalf("g%d seq%d: max %v", g, seq, got)
		}
		if got := out.Cols[s.MustIndex("cnt")].I[r]; got != int64(seq+1) {
			t.Fatalf("g%d seq%d: count %d", g, seq, got)
		}
	}
}

func TestWindowInMemory(t *testing.T) {
	checkWindow(t, runWindow(t, testCtx(2), 50, 20, allWindowFuncs()), 50, 20)
}

func TestWindowSpilling(t *testing.T) {
	ctx := spillCtx(2, 64)
	out := runWindow(t, ctx, 200, 40, allWindowFuncs())
	checkWindow(t, out, 200, 40)
	if ctx.Stats.SpilledBytes.Load() == 0 {
		t.Fatal("window under 64KB budget did not spill")
	}
}

func TestWindowModesEquivalent(t *testing.T) {
	ref := joinRowSet(t, runWindow(t, testCtx(1), 30, 15, allWindowFuncs()))
	for name, ctx := range map[string]*Ctx{
		"parallel": testCtx(3),
		"spill":    spillCtx(2, 48),
	} {
		got := joinRowSet(t, runWindow(t, ctx, 30, 15, allWindowFuncs()))
		if !sameRowSet(ref, got) {
			t.Fatalf("%s: window results differ", name)
		}
	}
}

func TestWindowRankWithTies(t *testing.T) {
	schema := data.NewSchema(
		data.ColumnDef{Name: "g", Type: data.Int64},
		data.ColumnDef{Name: "k", Type: data.Int64},
	)
	tbl := colstore.NewMemTable("ties", schema, 64)
	b := data.NewBatch(schema, 5)
	b.Cols[0].I = []int64{1, 1, 1, 1, 1}
	b.Cols[1].I = []int64{10, 10, 20, 20, 30}
	b.SetLen(5)
	tbl.Append(b)
	w := NewWindow(NewScan(tbl), []string{"g"}, []SortKey{{Col: "k"}},
		[]WindowSpec{{Func: WRank, As: "rk"}, {Func: WRowNumber, As: "rn"}})
	out, err := Collect(testCtx(1), w)
	if err != nil {
		t.Fatal(err)
	}
	// Ranks: 1,1,3,3,5 for keys 10,10,20,20,30.
	want := map[int64]int64{10: 1, 20: 3, 30: 5}
	for r := 0; r < out.Len(); r++ {
		k := out.Cols[1].I[r]
		if out.Cols[2].I[r] != want[k] {
			t.Fatalf("key %d rank = %d, want %d", k, out.Cols[2].I[r], want[k])
		}
	}
}

func TestWindowSinglePartition(t *testing.T) {
	// Empty PARTITION BY is the degenerate whole-input window.
	tbl := windowTable(1, 10)
	w := NewWindow(NewScan(tbl), nil, []SortKey{{Col: "seq"}},
		[]WindowSpec{{Func: WRowNumber, As: "rn"}})
	out, err := Collect(testCtx(2), w)
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 10 {
		t.Fatalf("rows = %d", out.Len())
	}
	seen := map[int64]bool{}
	for r := 0; r < out.Len(); r++ {
		rn := out.Cols[out.Schema.MustIndex("rn")].I[r]
		if seen[rn] {
			t.Fatalf("duplicate row number %d", rn)
		}
		seen[rn] = true
	}
}

func TestWindowSchemaNaming(t *testing.T) {
	tbl := windowTable(2, 2)
	w := NewWindow(NewScan(tbl), []string{"grp"}, []SortKey{{Col: "seq"}},
		[]WindowSpec{{Func: WSum, Col: "val"}})
	if w.Schema().Cols[3].Name != "w0" {
		t.Fatalf("default name = %q", w.Schema().Cols[3].Name)
	}
	if w.Schema().Cols[3].Type != data.Float64 {
		t.Fatal("sum type")
	}
}

func BenchmarkWindowSlidingMinMax(b *testing.B) {
	tbl := windowTable(10, 1000)
	funcs := []WindowSpec{
		{Func: WMin, Col: "val", As: "m", Frame: FrameRows, Lo: -50, Hi: 50},
		{Func: WMax, Col: "val", As: "M", Frame: FrameRows, Lo: -50, Hi: 50},
	}
	ctx := testCtx(2)
	b.SetBytes(int64(10 * 1000 * 24))
	for i := 0; i < b.N; i++ {
		w := NewWindow(NewScan(tbl), []string{"grp"}, []SortKey{{Col: "seq"}}, funcs)
		if _, err := Collect(ctx, w); err != nil {
			b.Fatal(err)
		}
	}
	_ = fmt.Sprint()
}
