package exec

import (
	"sync"
	"sync/atomic"

	"github.com/spilly-db/spilly/internal/colstore"
	"github.com/spilly-db/spilly/internal/data"
)

// Scan reads a table (in memory or from the NVMe array — the reader hides
// the difference, §5.2) with an optional projection and a pushed-down
// filter predicate.
type Scan struct {
	Table  colstore.Table
	Cols   []string // projection; nil = all columns
	Filter Expr     // boolean predicate over the projected schema; zero = none

	schema *data.Schema
	proj   []int
}

// NewScan builds a scan of the named columns (all columns when none given).
func NewScan(t colstore.Table, cols ...string) *Scan {
	s := &Scan{Table: t, Cols: cols}
	full := t.Schema()
	if len(cols) == 0 {
		s.schema = full
		for i := range full.Cols {
			s.proj = append(s.proj, i)
		}
		return s
	}
	s.schema = full.Project(cols...)
	for _, c := range cols {
		s.proj = append(s.proj, full.MustIndex(c))
	}
	return s
}

// Schema implements Node.
func (s *Scan) Schema() *data.Schema { return s.schema }

// Run implements Node.
func (s *Scan) Run(ctx *Ctx) (*Stream, error) {
	var cursor atomic.Int64
	readers := make([]colstore.Reader, ctx.workers())
	var mu sync.Mutex
	hasFilter := s.Filter.I != nil
	scratchPool := sync.Pool{New: func() interface{} { return data.NewBatch(s.schema, 0) }}
	return &Stream{
		schema: s.schema,
		next: func(w int, b *data.Batch) (int, error) {
			mu.Lock()
			if readers[w] == nil {
				readers[w] = s.Table.NewReader(s.proj, &cursor)
			}
			r := readers[w]
			mu.Unlock()
			for {
				var in *data.Batch
				if hasFilter {
					in = scratchPool.Get().(*data.Batch)
				} else {
					in = b
				}
				n, err := r.Next(in)
				if err != nil || n == 0 {
					if hasFilter {
						scratchPool.Put(in)
					}
					return 0, err
				}
				if ctx.Stats != nil {
					ctx.Stats.ScannedRows.Add(int64(n))
					ctx.Stats.ScannedBytes.Add(batchBytes(in))
				}
				if !hasFilter {
					return n, nil
				}
				kept := filterInto(b, in, s.Filter)
				scratchPool.Put(in)
				if kept > 0 {
					return kept, nil
				}
				// Whole batch filtered out; fetch the next morsel.
			}
		},
	}, nil
}

// batchBytes estimates the raw byte volume of a batch (8 bytes per fixed
// value, string lengths for strings) — the "scanned bytes" currency of the
// paper's cycles-per-byte metric (§4.4).
func batchBytes(b *data.Batch) int64 {
	var n int64
	for i := range b.Cols {
		c := &b.Cols[i]
		if c.Type == data.String {
			for _, s := range c.S {
				n += int64(len(s))
			}
		} else {
			n += 8 * int64(b.Len())
		}
	}
	return n
}

// filterInto copies rows of in that satisfy pred into out (after reset).
func filterInto(out, in *data.Batch, pred Expr) int {
	out.Reset()
	for r := 0; r < in.Len(); r++ {
		if pred.I(in, r) != 0 {
			out.AppendRowFrom(in, r)
		}
	}
	return out.Len()
}

// FilterNode filters any child stream (used when a predicate cannot be
// pushed into the scan, e.g. post-join residuals).
type FilterNode struct {
	Child Node
	Pred  Expr
}

// Schema implements Node.
func (f *FilterNode) Schema() *data.Schema { return f.Child.Schema() }

// Run implements Node.
func (f *FilterNode) Run(ctx *Ctx) (*Stream, error) {
	in, err := f.Child.Run(ctx)
	if err != nil {
		return nil, err
	}
	scratchPool := sync.Pool{New: func() interface{} { return data.NewBatch(in.schema, 0) }}
	return &Stream{
		schema:  in.schema,
		abandon: in.Abandon,
		next: func(w int, b *data.Batch) (int, error) {
			for {
				tmp := scratchPool.Get().(*data.Batch)
				n, err := in.Next(w, tmp)
				if err != nil || n == 0 {
					scratchPool.Put(tmp)
					return 0, err
				}
				kept := filterInto(b, tmp, f.Pred)
				scratchPool.Put(tmp)
				if kept > 0 {
					return kept, nil
				}
			}
		},
	}, nil
}

// Project computes expressions over the child stream.
type Project struct {
	Child Node
	Names []string
	Exprs []Expr

	schema *data.Schema
}

// NewProject builds a projection; names and exprs correspond pairwise.
func NewProject(child Node, names []string, exprs []Expr) *Project {
	p := &Project{Child: child, Names: names, Exprs: exprs}
	sch := &data.Schema{}
	for i, n := range names {
		sch.Cols = append(sch.Cols, data.ColumnDef{Name: n, Type: exprs[i].Type})
	}
	p.schema = sch
	return p
}

// Schema implements Node.
func (p *Project) Schema() *data.Schema { return p.schema }

// Run implements Node.
func (p *Project) Run(ctx *Ctx) (*Stream, error) {
	in, err := p.Child.Run(ctx)
	if err != nil {
		return nil, err
	}
	scratchPool := sync.Pool{New: func() interface{} { return data.NewBatch(in.schema, 0) }}
	return &Stream{
		schema:  p.schema,
		abandon: in.Abandon,
		next: func(w int, b *data.Batch) (int, error) {
			tmp := scratchPool.Get().(*data.Batch)
			defer scratchPool.Put(tmp)
			n, err := in.Next(w, tmp)
			if err != nil || n == 0 {
				return 0, err
			}
			b.Reset()
			projectInto(b, tmp, p.Exprs)
			return n, nil
		},
	}, nil
}

// projectInto evaluates exprs over every row of in, appending to out.
func projectInto(out, in *data.Batch, exprs []Expr) {
	for i, e := range exprs {
		c := &out.Cols[i]
		switch e.Type {
		case data.Float64:
			for r := 0; r < in.Len(); r++ {
				c.F = append(c.F, e.F(in, r))
			}
		case data.String:
			for r := 0; r < in.Len(); r++ {
				c.S = append(c.S, e.S(in, r))
			}
		default:
			for r := 0; r < in.Len(); r++ {
				c.I = append(c.I, e.I(in, r))
			}
		}
	}
	out.SetLen(out.Len() + in.Len())
}

// ValuesNode exposes a pre-computed batch as a plan node (scalar subquery
// results, tiny literal relations).
type ValuesNode struct {
	Batch *data.Batch
}

// Schema implements Node.
func (v *ValuesNode) Schema() *data.Schema { return v.Batch.Schema }

// Run implements Node.
func (v *ValuesNode) Run(ctx *Ctx) (*Stream, error) {
	var taken atomic.Bool
	return &Stream{
		schema: v.Batch.Schema,
		next: func(w int, b *data.Batch) (int, error) {
			if taken.Swap(true) {
				return 0, nil
			}
			b.Reset()
			for r := 0; r < v.Batch.Len(); r++ {
				b.AppendRowFrom(v.Batch, r)
			}
			return v.Batch.Len(), nil
		},
	}, nil
}
