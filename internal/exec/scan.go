package exec

import (
	"sync"
	"sync/atomic"

	"github.com/spilly-db/spilly/internal/colstore"
	"github.com/spilly-db/spilly/internal/data"
)

// Scan reads a table (in memory or from the NVMe array — the reader hides
// the difference, §5.2) with an optional projection and a pushed-down
// filter predicate.
type Scan struct {
	Table  colstore.Table
	Cols   []string // projection; nil = all columns
	Filter Expr     // boolean predicate over the projected schema; zero = none

	schema *data.Schema
	proj   []int
}

// NewScan builds a scan of the named columns (all columns when none given).
func NewScan(t colstore.Table, cols ...string) *Scan {
	s := &Scan{Table: t, Cols: cols}
	full := t.Schema()
	if len(cols) == 0 {
		s.schema = full
		for i := range full.Cols {
			s.proj = append(s.proj, i)
		}
		return s
	}
	s.schema = full.Project(cols...)
	for _, c := range cols {
		s.proj = append(s.proj, full.MustIndex(c))
	}
	return s
}

// Schema implements Node.
func (s *Scan) Schema() *data.Schema { return s.schema }

// Run implements Node.
func (s *Scan) Run(ctx *Ctx) (*Stream, error) {
	sp := ctx.Trace.Start("scan", s.Table.Name())
	defer ctx.Trace.EndScope(sp)
	var cursor atomic.Int64
	nw := ctx.workers()
	readers := make([]colstore.Reader, nw)
	var mu sync.Mutex
	hasFilter := s.Filter.I != nil
	accs := make([]statsAcc, nw)
	selBufs := make([][]int32, nw)
	// chargeStall folds a finished (or abandoned) reader's accumulated
	// I/O-stall time into the query stats and the scan span, exactly once
	// per reader.
	stalled := make([]bool, nw)
	chargeStall := func(w int) {
		if stalled[w] || readers[w] == nil {
			return
		}
		stalled[w] = true
		if sr, ok := readers[w].(interface{ StallNanos() int64 }); ok {
			ns := sr.StallNanos()
			if ctx.Stats != nil {
				ctx.Stats.ScanStallNanos.Add(ns)
				if sc, ok := readers[w].(interface{ Stalls() int64 }); ok {
					ctx.Stats.ScanStalls.Add(sc.Stalls())
				}
			}
			sp.AddScanStall(ns)
		}
	}
	return ctx.traceStream(&Stream{
		schema: s.schema,
		abandon: func(w int) {
			mu.Lock()
			if c, ok := readers[w].(interface{ Close() }); ok {
				c.Close()
			}
			chargeStall(w)
			mu.Unlock()
			if ctx.Stats != nil {
				accs[w].flush(ctx.Stats)
			}
		},
		next: func(w int, b *data.Batch) (int, error) {
			mu.Lock()
			if readers[w] == nil {
				if ot, ok := s.Table.(colstore.OptsTable); ok {
					readers[w] = ot.NewReaderOpts(s.proj, &cursor,
						colstore.ScanOpts{Query: ctx.QueryID, Depth: ctx.ScanDepth})
				} else {
					readers[w] = s.Table.NewReader(s.proj, &cursor)
				}
			}
			r := readers[w]
			mu.Unlock()
			for {
				n, err := r.Next(b)
				if err != nil || n == 0 {
					mu.Lock()
					chargeStall(w)
					mu.Unlock()
					if ctx.Stats != nil {
						accs[w].flush(ctx.Stats)
					}
					return 0, err
				}
				if ctx.Stats != nil {
					accs[w].add(ctx.Stats, int64(n), batchBytes(b))
				}
				if !hasFilter {
					return n, nil
				}
				// The filter produces a selection vector over the scan
				// batch (which may alias table storage) instead of copying
				// surviving rows out — predicates cost zero data movement.
				sel := s.Filter.EvalBool(b, nil, selBufs[w][:0])
				selBufs[w] = sel
				if len(sel) == n {
					return n, nil
				}
				if len(sel) > 0 {
					b.Sel = sel
					return len(sel), nil
				}
				// Whole batch filtered out; fetch the next morsel.
			}
		},
	}, sp), nil
}

// batchBytes estimates the raw byte volume of a batch (8 bytes per fixed
// value, string lengths for strings) — the "scanned bytes" currency of the
// paper's cycles-per-byte metric (§4.4).
func batchBytes(b *data.Batch) int64 {
	var n int64
	for i := range b.Cols {
		c := &b.Cols[i]
		if c.Type == data.String {
			for _, s := range c.S {
				n += int64(len(s))
			}
		} else {
			n += 8 * int64(b.Len())
		}
	}
	return n
}

// statsFlushRows is the per-worker row count after which accumulated scan
// statistics are flushed into the shared atomic counters — batching the
// cross-core traffic instead of paying two contended atomics per batch.
const statsFlushRows = 1 << 15

// statsAcc accumulates one worker's scan counters. The fields are atomics
// only so an abandoning consumer can flush another worker's residue
// safely; in steady state each worker touches only its own (padded)
// accumulator, so the adds stay core-local.
type statsAcc struct {
	rows  atomic.Int64
	bytes atomic.Int64
	_     [112]byte // pad to a cache-line multiple against false sharing
}

func (a *statsAcc) add(st *Stats, rows, bytes int64) {
	a.bytes.Add(bytes)
	if a.rows.Add(rows) >= statsFlushRows {
		a.flush(st)
	}
}

func (a *statsAcc) flush(st *Stats) {
	if r := a.rows.Swap(0); r != 0 {
		st.ScannedRows.Add(r)
	}
	if b := a.bytes.Swap(0); b != 0 {
		st.ScannedBytes.Add(b)
	}
}

// FilterNode filters any child stream (used when a predicate cannot be
// pushed into the scan, e.g. post-join residuals).
type FilterNode struct {
	Child Node
	Pred  Expr
}

// Schema implements Node.
func (f *FilterNode) Schema() *data.Schema { return f.Child.Schema() }

// Run implements Node.
func (f *FilterNode) Run(ctx *Ctx) (*Stream, error) {
	sp := ctx.Trace.Start("filter", "")
	in, err := f.Child.Run(ctx)
	ctx.Trace.EndScope(sp)
	if err != nil {
		return nil, err
	}
	selBufs := make([][]int32, ctx.workers())
	return ctx.traceStream(&Stream{
		schema:  in.schema,
		abandon: in.Abandon,
		next: func(w int, b *data.Batch) (int, error) {
			for {
				n, err := in.Next(w, b)
				if err != nil || n == 0 {
					return 0, err
				}
				// Refine the child's selection vector (if any) in our own
				// buffer; rows stay in place.
				sel := f.Pred.EvalBool(b, b.Sel, selBufs[w][:0])
				selBufs[w] = sel
				if len(sel) == b.Len() {
					b.Sel = nil
					return n, nil
				}
				if len(sel) > 0 {
					b.Sel = sel
					return len(sel), nil
				}
			}
		},
	}, sp), nil
}

// Project computes expressions over the child stream.
type Project struct {
	Child Node
	Names []string
	Exprs []Expr

	schema *data.Schema
}

// NewProject builds a projection; names and exprs correspond pairwise.
func NewProject(child Node, names []string, exprs []Expr) *Project {
	p := &Project{Child: child, Names: names, Exprs: exprs}
	sch := &data.Schema{}
	for i, n := range names {
		sch.Cols = append(sch.Cols, data.ColumnDef{Name: n, Type: exprs[i].Type})
	}
	p.schema = sch
	return p
}

// Schema implements Node.
func (p *Project) Schema() *data.Schema { return p.schema }

// Run implements Node.
func (p *Project) Run(ctx *Ctx) (*Stream, error) {
	sp := ctx.Trace.Start("project", "")
	in, err := p.Child.Run(ctx)
	ctx.Trace.EndScope(sp)
	if err != nil {
		return nil, err
	}
	scratchPool := ctx.BatchPool(in.schema)
	return ctx.traceStream(&Stream{
		schema:  p.schema,
		abandon: in.Abandon,
		next: func(w int, b *data.Batch) (int, error) {
			tmp := scratchPool.Get()
			defer tmp.Release()
			n, err := in.Next(w, tmp)
			if err != nil || n == 0 {
				return 0, err
			}
			b.Reset()
			projectInto(b, tmp, p.Exprs)
			return n, nil
		},
	}, sp), nil
}

// projectInto evaluates exprs over every live row of in, appending the
// dense results to out. Each expression runs as one batch kernel (or the
// scalar fallback loop) straight into the output column.
func projectInto(out, in *data.Batch, exprs []Expr) {
	n := in.Rows()
	for i, e := range exprs {
		c := &out.Cols[i]
		switch e.Type {
		case data.Float64:
			m := len(c.F)
			c.F = grow(c.F, n)
			e.EvalF(in, in.Sel, c.F[m:])
		case data.String:
			m := len(c.S)
			c.S = grow(c.S, n)
			e.EvalS(in, in.Sel, c.S[m:])
		default:
			m := len(c.I)
			c.I = grow(c.I, n)
			e.EvalI(in, in.Sel, c.I[m:])
		}
	}
	out.SetLen(out.Len() + n)
}

// ValuesNode exposes a pre-computed batch as a plan node (scalar subquery
// results, tiny literal relations).
type ValuesNode struct {
	Batch *data.Batch
}

// Schema implements Node.
func (v *ValuesNode) Schema() *data.Schema { return v.Batch.Schema }

// Run implements Node.
func (v *ValuesNode) Run(ctx *Ctx) (*Stream, error) {
	var taken atomic.Bool
	return &Stream{
		schema: v.Batch.Schema,
		next: func(w int, b *data.Batch) (int, error) {
			if taken.Swap(true) {
				return 0, nil
			}
			b.Reset()
			for r := 0; r < v.Batch.Len(); r++ {
				b.AppendRowFrom(v.Batch, r)
			}
			return v.Batch.Len(), nil
		},
	}, nil
}
