// Package exec implements the execution engine: morsel-driven parallel
// streams, compiled expressions, and the relational operators — most
// importantly the paper's unified hash join (§4.5) and unified hash
// aggregation (§4.6), which materialize through Umami (internal/core) and
// therefore adaptively partition and spill without a physical operator
// choice. The classical baselines the paper measures against (grace join,
// always-partitioning and never-partitioning variants) are configurations
// of the same operators.
package exec

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"

	"github.com/spilly-db/spilly/internal/codec"
	"github.com/spilly-db/spilly/internal/core"
	"github.com/spilly-db/spilly/internal/data"
	"github.com/spilly-db/spilly/internal/pages"
	"github.com/spilly-db/spilly/internal/trace"
)

// Ctx carries per-query execution settings and statistics.
type Ctx struct {
	// Context carries cancellation and deadlines for the query (nil =
	// background). Workers observe it between batches and blocking spill
	// I/O observes it within one poll interval, so a canceled query
	// aborts promptly even when a device is stuck.
	Context context.Context
	// Workers is the number of worker goroutines per pipeline.
	Workers int
	// Budget is the query's materialization memory budget (shared by all
	// materializing operators, per the engine-wide budget Spilly uses).
	Budget *pages.Budget
	// Mode is the materialization strategy for all operators (Umami's
	// adaptive mode by default; baselines for the paper's experiments).
	Mode core.Mode
	// Spill enables out-of-memory processing (nil = in-memory only).
	Spill *core.SpillConfig
	// PageSize for materialization (0 = 64 KiB default).
	PageSize int
	// Partitions per operator (0 = core.MaxPartitions, i.e. 64).
	Partitions int
	// PartitionAt is the adaptive partition trigger fraction
	// (0 = core.DefaultPartitionAt).
	PartitionAt float64
	// Stats accumulates query statistics; may be nil.
	Stats *Stats
	// Trace, when non-nil, collects per-operator spans for EXPLAIN
	// ANALYZE-style profiles. Nil (the default) disables tracing; every
	// operator pays exactly one nil check per Run.
	Trace *trace.Tracer
	// traceNest holds per-worker stream-nesting counters for exclusive
	// time attribution (see traceStream); allocated on first traced
	// stream wrap.
	traceNest []nestSlot
	// ReadDepth bounds in-flight spill readback block reads per operator
	// (0 = core.DefaultReadDepth). Deeper queues keep more of the array's
	// aggregate bandwidth busy during phase 2 (§5.2).
	ReadDepth int
	// QueryID is the fairness key operators pass to the shared I/O
	// scheduler (Spill.Query when spilling is on). 0 is a valid key for
	// one-off contexts; engines use the spill lease ID.
	QueryID uint64
	// ScanDepth bounds in-flight group reads per table scan
	// (0 = colstore's default). See colstore.ScanOpts.
	ScanDepth int
	// BlockingSpillRead disables phase-2 readback overlap: every spilled
	// partition is read back synchronously when its consumer reaches it,
	// with no cross-partition prefetch — the pre-scheduler baseline the
	// overlap benchmark and the equivalence tests compare against.
	BlockingSpillRead bool
	// ForceGrace makes every join run as a classical grace hash join —
	// the always-partitioning baseline of Figure 2.
	ForceGrace bool
	// NoPreAgg disables local pre-aggregation — the classical
	// partitioning-aggregation baseline of Figure 2.
	NoPreAgg bool

	// poolMu guards pools, the per-schema batch pool registry operators
	// lease scratch batches from (see BatchPool).
	poolMu sync.Mutex
	pools  map[*data.Schema]*data.BatchPool
	// cleanupMu guards cleanups, the deferred query-end work registered by
	// operators (budget releases for materialized results, in-memory sort
	// runs). Close runs them once, in registration order.
	cleanupMu sync.Mutex
	cleanups  []func()
}

// BatchPool returns the query-lifetime batch pool for the given schema,
// creating it on first use. Every operator that fills scratch batches in a
// loop leases them here instead of calling data.NewBatch per worker.
func (c *Ctx) BatchPool(s *data.Schema) *data.BatchPool {
	c.poolMu.Lock()
	defer c.poolMu.Unlock()
	if c.pools == nil {
		c.pools = make(map[*data.Schema]*data.BatchPool)
	}
	bp, ok := c.pools[s]
	if !ok {
		bp = data.NewBatchPool(s)
		c.pools[s] = bp
	}
	return bp
}

// PoolCounters sums Get/Put calls over every batch pool of the query. A
// leak-free query leaves them equal (each leased batch released exactly
// once).
func (c *Ctx) PoolCounters() (gets, puts int64) {
	c.poolMu.Lock()
	defer c.poolMu.Unlock()
	for _, bp := range c.pools {
		g, p := bp.Counters()
		gets += g
		puts += p
	}
	return gets, puts
}

// AddCleanup registers fn to run when the query finishes (Ctx.Close). Safe
// for concurrent use; operators use it to release the budget reservations
// of results that outlive their phase.
func (c *Ctx) AddCleanup(fn func()) {
	c.cleanupMu.Lock()
	c.cleanups = append(c.cleanups, fn)
	c.cleanupMu.Unlock()
}

// Close runs the registered cleanups (once each) after the query's output
// has been collected. Only accounting and recycling happen here — result
// data is already copied out — so Budget.Used() drops back to zero. The
// spill lease, if any, is freed last — after every cleanup (scheduler
// drains, cursor closes) has quiesced the readers that might still touch
// the query's extents — so the array reclaims this query's spilled data.
// The context stays usable for another query (the freed lease is cleared).
func (c *Ctx) Close() {
	c.cleanupMu.Lock()
	fns := c.cleanups
	c.cleanups = nil
	c.cleanupMu.Unlock()
	for _, fn := range fns {
		fn()
	}
	if c.Spill != nil && c.Spill.Lease != nil {
		c.Spill.Lease.Free()
		c.Spill.Lease = nil
	}
}

func (c *Ctx) workers() int {
	if c.Workers <= 0 {
		return 1
	}
	return c.Workers
}

// goCtx returns the query's context, never nil.
func (c *Ctx) goCtx() context.Context {
	if c.Context == nil {
		return context.Background()
	}
	return c.Context
}

// canceled returns the context's error once the query has been canceled or
// its deadline passed, nil otherwise.
func (c *Ctx) canceled() error {
	if c.Context == nil {
		return nil
	}
	return c.Context.Err()
}

// bindSpillIO routes a partition scheduler's readback through the engine's
// shared I/O dispatcher (no-op when none is configured).
func (c *Ctx) bindSpillIO(s *core.PartitionScheduler) {
	if c.Spill != nil {
		s.BindIO(c.Spill.Sched, c.Spill.Query)
	}
}

// readDepth returns the spill readback depth, defaulted.
func (c *Ctx) readDepth() int {
	if c.ReadDepth <= 0 {
		return core.DefaultReadDepth
	}
	return c.ReadDepth
}

// pageSize returns the materialization page size, defaulted.
func (c *Ctx) pageSize() int {
	if c.PageSize <= 0 {
		return pages.DefaultPageSize
	}
	return c.PageSize
}

func (c *Ctx) coreConfig() core.Config {
	return core.Config{
		Ctx:         c.Context,
		PageSize:    c.PageSize,
		Partitions:  c.Partitions,
		Budget:      c.Budget,
		PartitionAt: c.PartitionAt,
		Mode:        c.Mode,
		Spill:       c.Spill,
	}
}

// Stats are cumulative per-query counters.
type Stats struct {
	ScannedRows    atomic.Int64
	ScannedBytes   atomic.Int64
	SpilledBytes   atomic.Int64 // raw page bytes spilled
	WrittenBytes   atomic.Int64 // post-compression bytes written
	SpillReadBytes atomic.Int64
	PartitionedOps atomic.Int64 // operators that enabled partitioning
	SpilledOps     atomic.Int64 // operators that spilled
	SpillRetries   atomic.Int64 // transient I/O errors recovered by retry
	SpillFailovers atomic.Int64 // spill writes re-striped away from a dead device

	// Phase-2 overlap counters: worker wall time spent stalled inside
	// spill-readback Next calls, and spilled partitions whose readback was
	// already in flight when their consumer opened them.
	SpillStallNanos      atomic.Int64
	PrefetchedPartitions atomic.Int64

	// ScanStallNanos is worker wall time spent blocked inside table-scan
	// Next calls waiting on group reads — the scan-side analog of
	// SpillStallNanos, attributed per scan via colstore.Reader stall
	// counters.
	ScanStallNanos atomic.Int64
	// ScanStalls counts how many times scan workers blocked waiting for a
	// group read (each block promotes the group's reads to demand class);
	// ScanStallNanos/ScanStalls is the mean demand wait per block.
	ScanStalls atomic.Int64

	// Demand-read latency: completed spill-readback reads that were
	// issued demand-class (their partition's consumer had already opened
	// it) and the sum of their per-request completion latencies. Where
	// the stall counters measure worker-side blocked wall time, these
	// measure how long each latency-critical read itself spent queued
	// behind other I/O — the quantity the shared I/O scheduler's
	// demand-first dispatch bounds.
	DemandReads     atomic.Int64
	DemandReadNanos atomic.Int64

	// Spill integrity counters (checksummed frames + parity stripes, see
	// core.SpillConfig.Parity): frames whose checksums verified on
	// readback, blocks that failed verification, blocks rebuilt from their
	// parity stripe, and parity bytes written alongside the spilled data.
	SpillPagesVerified   atomic.Int64
	SpillChecksumErrors  atomic.Int64
	SpillReconstructions atomic.Int64
	SpillParityBytes     atomic.Int64

	histMu sync.Mutex
	hist   map[codec.ID]int64 // spilled pages per compression scheme
}

func (s *Stats) addResult(r *core.Result) {
	if s == nil {
		return
	}
	s.SpilledBytes.Add(r.SpilledBytes)
	s.WrittenBytes.Add(r.WrittenBytes)
	s.SpillRetries.Add(r.SpillRetries)
	s.SpillFailovers.Add(r.SpillFailovers)
	s.SpillParityBytes.Add(r.ParityBytes)
	if r.HasSpilled() {
		s.SpilledOps.Add(1)
	}
	if len(r.SchemeHistogram) > 0 {
		s.histMu.Lock()
		if s.hist == nil {
			s.hist = map[codec.ID]int64{}
		}
		for id, n := range r.SchemeHistogram {
			s.hist[id] += n
		}
		s.histMu.Unlock()
	}
}

// SchemeHistogram returns spilled pages per compression scheme (Figure 11
// right panel).
func (s *Stats) SchemeHistogram() map[codec.ID]int64 {
	s.histMu.Lock()
	defer s.histMu.Unlock()
	out := make(map[codec.ID]int64, len(s.hist))
	for id, n := range s.hist {
		out[id] = n
	}
	return out
}

// chargeSpillCursor folds one partition cursor's readback counters into the
// query stats and the operator's span. Call it exactly once per cursor, after
// the consumer is done pulling from it.
func chargeSpillCursor(ctx *Ctx, sp *trace.Span, c core.PartitionCursor) {
	if c == nil {
		return
	}
	var pre int64
	if c.Prefetched() {
		pre = 1
	}
	if ctx.Stats != nil {
		ctx.Stats.SpillReadBytes.Add(c.BytesRead())
		ctx.Stats.SpillRetries.Add(c.Retries())
		ctx.Stats.SpillStallNanos.Add(c.StallNanos())
		ctx.Stats.PrefetchedPartitions.Add(pre)
		dn, dns := c.DemandReads()
		ctx.Stats.DemandReads.Add(dn)
		ctx.Stats.DemandReadNanos.Add(dns)
		ctx.Stats.SpillPagesVerified.Add(c.Verified())
		ctx.Stats.SpillChecksumErrors.Add(c.ChecksumErrors())
		ctx.Stats.SpillReconstructions.Add(c.Reconstructions())
	}
	sp.AddSpillRead(c.BytesRead(), c.Retries())
	sp.AddSpillStall(c.StallNanos(), pre)
	sp.AddSpillIntegrity(c.Verified(), c.ChecksumErrors(), c.Reconstructions())
}

// Stream is a parallel batch stream: workers 0..Workers-1 each repeatedly
// call Next with their id until it returns 0 rows. Work distribution
// (morsel stealing) happens inside the stream.
type Stream struct {
	schema *data.Schema
	// next fills b (after resetting it) and returns the live row count
	// (len of b's selection vector when one is set), 0 at end of stream
	// for that worker.
	next func(w int, b *data.Batch) (int, error)
	// abandon, if set, tells the stream that worker w will never call
	// Next again (it failed). Streams with cross-worker synchronization
	// (the join's phase barrier) deregister the worker so the others do
	// not wait for it forever; wrappers forward to their child.
	abandon func(w int)
}

// Schema returns the stream's output schema.
func (s *Stream) Schema() *data.Schema { return s.schema }

// Next pulls the next batch for worker w.
func (s *Stream) Next(w int, b *data.Batch) (int, error) { return s.next(w, b) }

// Abandon marks worker w as permanently gone (after an error or panic).
func (s *Stream) Abandon(w int) {
	if s.abandon != nil {
		s.abandon(w)
	}
}

// Node is a physical plan node.
type Node interface {
	// Schema returns the node's output schema.
	Schema() *data.Schema
	// Run executes the node's blocking phases (if any) and returns its
	// output stream for the parent to consume.
	Run(ctx *Ctx) (*Stream, error)
}

// runWorkers runs fn for each worker id in parallel. Each worker goroutine
// is a recovery boundary: Umami's out-of-memory panic becomes ErrOutOfMemory
// (by identity), any other panic becomes a structured *core.QueryError
// attributed to op — a worker failure fails the query, never the process.
// The first error wins.
func runWorkers(op string, workers int, fn func(w int) error) error {
	var wg sync.WaitGroup
	errs := make([]error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			defer core.RecoverQueryPanic(op, &errs[w])
			errs[w] = fn(w)
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// Drain consumes a stream to completion, calling sink for every batch.
// sink is called concurrently from different workers. Workers that fail —
// by error or by Umami's out-of-memory panic — abandon the stream so that
// streams with internal barriers release the surviving workers.
func Drain(ctx *Ctx, s *Stream, sink func(w int, b *data.Batch) error) error {
	return runWorkers("drain", ctx.workers(), func(w int) error {
		done := false
		defer func() {
			if !done {
				s.Abandon(w)
			}
		}()
		b := ctx.BatchPool(s.schema).Get()
		defer b.Release()
		for {
			if err := ctx.canceled(); err != nil {
				return core.WrapQueryError("drain", err)
			}
			n, err := s.Next(w, b)
			if err != nil {
				return err
			}
			if n == 0 {
				done = true
				return nil
			}
			if sink != nil {
				if err := sink(w, b); err != nil {
					return err
				}
			}
		}
	})
}

// Collect runs a plan and gathers its entire output into one batch
// (results of TPC-H queries are small).
func Collect(ctx *Ctx, n Node) (*data.Batch, error) {
	s, err := n.Run(ctx)
	if err != nil {
		return nil, err
	}
	out := data.NewBatch(s.schema, 1024)
	var mu sync.Mutex
	err = Drain(ctx, s, func(w int, b *data.Batch) error {
		mu.Lock()
		defer mu.Unlock()
		for i, n := 0, b.Rows(); i < n; i++ {
			out.AppendRowFrom(b, b.Row(i))
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// barrier is a single-use latch: workers wait until every registered
// worker has either arrived or deregistered (used between the streaming and
// the spilled-partition phase of unified operators). Deregistration keeps
// a worker that died from an error or OOM from deadlocking the rest.
type barrier struct {
	mu       sync.Mutex
	cond     *sync.Cond
	total    int
	arrived  int
	released bool
}

func newBarrier(total int) *barrier {
	b := &barrier{total: total}
	b.cond = sync.NewCond(&b.mu)
	return b
}

// wait blocks until all still-registered workers arrive.
func (b *barrier) wait() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.arrived++
	if b.arrived >= b.total {
		b.released = true
		b.cond.Broadcast()
	}
	for !b.released {
		b.cond.Wait()
	}
}

// deregister removes one never-arriving worker.
func (b *barrier) deregister() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.total--
	if b.arrived >= b.total {
		b.released = true
		b.cond.Broadcast()
	}
}

// errValue lets concurrent workers publish a first error.
type errValue struct {
	mu  sync.Mutex
	err error
}

func (e *errValue) set(err error) {
	if err == nil {
		return
	}
	e.mu.Lock()
	if e.err == nil {
		e.err = err
	}
	e.mu.Unlock()
}

func (e *errValue) get() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.err
}

func checkSchemaCols(s *data.Schema, cols []string) error {
	for _, c := range cols {
		if s.Index(c) < 0 {
			return fmt.Errorf("exec: column %q not in schema", c)
		}
	}
	return nil
}
