package exec

import (
	"time"

	"github.com/spilly-db/spilly/internal/codec"
	"github.com/spilly-db/spilly/internal/core"
	"github.com/spilly-db/spilly/internal/data"
	"github.com/spilly-db/spilly/internal/trace"
)

// spanAcc is one worker's local span accumulator. Workers batch their busy
// time and row counts here and merge into the span's shared atomics every
// spanFlushRows rows, keeping the traced steady state free of cross-core
// contention. Padded so adjacent workers' accumulators do not share a cache
// line (same layout rationale as statsAcc in scan.go).
type spanAcc struct {
	busyNs  int64
	rows    int64
	batches int64
	_       [104]byte
}

// spanFlushRows is the per-worker merge threshold (32k rows ≈ 32 batches).
const spanFlushRows = 1 << 15

func (a *spanAcc) flush(sp *trace.Span) {
	if a.busyNs == 0 && a.rows == 0 && a.batches == 0 {
		return
	}
	sp.AddBusy(time.Duration(a.busyNs))
	sp.AddRows(a.rows, a.batches)
	a.busyNs, a.rows, a.batches = 0, 0, 0
}

// nestSlot is one worker's stream-nesting counter: the full elapsed time of
// traced child streams pulled within the current enclosing Next call.
// Padded against false sharing like spanAcc.
type nestSlot struct {
	ns int64
	_  [120]byte
}

// traceStream wraps s so that every Next call charges its exclusive elapsed
// time (total minus nested traced child streams, via the per-worker nesting
// counter) and its row output to sp. Returns s unchanged when tracing is
// off, so the untraced fast path adds no indirection.
func (c *Ctx) traceStream(s *Stream, sp *trace.Span) *Stream {
	if sp == nil {
		return s
	}
	if c.traceNest == nil {
		// Allocated once; operator Run recursion is single-goroutine.
		c.traceNest = make([]nestSlot, c.workers())
	}
	accs := make([]spanAcc, c.workers())
	return &Stream{
		schema: s.schema,
		next: func(w int, b *data.Batch) (int, error) {
			a := &accs[w]
			nest := &c.traceNest[w].ns
			saved := *nest
			*nest = 0
			start := time.Now()
			n, err := s.next(w, b)
			el := int64(time.Since(start))
			if self := el - *nest; self > 0 {
				a.busyNs += self
			}
			*nest = saved + el
			if n > 0 {
				a.rows += int64(n)
				a.batches++
			}
			if n == 0 || err != nil || a.rows >= spanFlushRows {
				a.flush(sp)
			}
			return n, err
		},
		abandon: func(w int) {
			accs[w].flush(sp)
			s.Abandon(w)
		},
	}
}

// phaseClock marks the start of a blocking phase: the wall time and the
// tracer's total-charged watermark, so the phase can charge workers × wall
// minus whatever descendants charged meanwhile.
type phaseClock struct {
	start    time.Time
	charged0 time.Duration
}

// phaseStart opens a blocking-phase measurement window.
func (c *Ctx) phaseStart() phaseClock {
	return phaseClock{start: time.Now(), charged0: c.Trace.Charged()}
}

// spanPhase charges a blocking phase that occupied all workers since pc as
// workers × wall, minus the busy time descendant spans charged during the
// window (their stream pulls and nested build phases), keeping every span's
// busy time exclusive.
func (c *Ctx) spanPhase(sp *trace.Span, pc phaseClock) {
	if sp == nil {
		return
	}
	d := time.Duration(c.workers())*time.Since(pc.start) - (c.Trace.Charged() - pc.charged0)
	if d > 0 {
		sp.AddBusy(d)
	}
}

// spanResult feeds an operator's materialization Result into its span:
// stored tuples, spill volume, regulator activity, and the per-scheme
// spilled-page histogram (keyed by codec name for serialization).
func spanResult(sp *trace.Span, r *core.Result) {
	if sp == nil || r == nil {
		return
	}
	sp.AddMaterialized(r.Tuples)
	sp.AddSpill(r.SpilledBytes, r.WrittenBytes, r.SpillRetries, r.SpillFailovers)
	sp.AddRegulator(r.RegLevelChanges, r.RegMaxLevel)
	if len(r.SchemeHistogram) > 0 {
		h := make(map[string]int64, len(r.SchemeHistogram))
		for id, n := range r.SchemeHistogram {
			name := "raw"
			if c := codec.ByID(id); c != nil {
				name = c.Name()
			}
			h[name] += n
		}
		sp.AddSchemes(h)
	}
}
