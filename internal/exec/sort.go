package exec

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"github.com/spilly-db/spilly/internal/data"
)

// SortKey orders by one column.
type SortKey struct {
	Col  string
	Desc bool
}

// Sort materializes, orders, and optionally limits its input. TPC-H result
// sets are small (the heavy lifting happens in joins and aggregations), so
// the sort gathers rows into memory and emits a single ordered morsel.
type Sort struct {
	Child Node
	Keys  []SortKey
	Limit int // 0 = unlimited
}

// Schema implements Node.
func (s *Sort) Schema() *data.Schema { return s.Child.Schema() }

// Run implements Node.
func (s *Sort) Run(ctx *Ctx) (*Stream, error) {
	sp := ctx.Trace.Start("sort", sortLabel(s.Keys))
	defer ctx.Trace.EndScope(sp)
	pc := ctx.phaseStart()
	in, err := s.Child.Run(ctx)
	if err != nil {
		return nil, err
	}
	schema := s.Child.Schema()
	all := ctx.BatchPool(schema).Get()
	defer all.Release()
	var mu sync.Mutex
	err = Drain(ctx, in, func(w int, b *data.Batch) error {
		mu.Lock()
		defer mu.Unlock()
		for i, n := 0, b.Rows(); i < n; i++ {
			all.AppendRowFrom(b, b.Row(i))
		}
		return nil
	})
	if err != nil {
		return nil, err
	}

	keyCols := make([]int, len(s.Keys))
	for i, k := range s.Keys {
		keyCols[i] = schema.MustIndex(k.Col)
	}
	idx := make([]int, all.Len())
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(x, y int) bool {
		a, b := idx[x], idx[y]
		for i, c := range keyCols {
			cmp := compareRows(all, c, a, b)
			if cmp == 0 {
				continue
			}
			if s.Keys[i].Desc {
				return cmp > 0
			}
			return cmp < 0
		}
		return false
	})
	if s.Limit > 0 && len(idx) > s.Limit {
		idx = idx[:s.Limit]
	}

	out := data.NewBatch(schema, len(idx))
	for _, r := range idx {
		out.AppendRowFrom(all, r)
	}
	sp.AddMaterialized(int64(all.Len()))
	ctx.spanPhase(sp, pc)
	var taken atomic.Bool
	return ctx.traceStream(&Stream{
		schema: schema,
		next: func(w int, b *data.Batch) (int, error) {
			if taken.Swap(true) || out.Len() == 0 {
				return 0, nil
			}
			b.Reset()
			for r := 0; r < out.Len(); r++ {
				b.AppendRowFrom(out, r)
			}
			return out.Len(), nil
		},
	}, sp), nil
}

// sortLabel renders the sort keys for the profile span.
func sortLabel(keys []SortKey) string {
	parts := make([]string, len(keys))
	for i, k := range keys {
		parts[i] = k.Col
		if k.Desc {
			parts[i] += " desc"
		}
	}
	return strings.Join(parts, ",")
}

// compareRows orders rows a and b of batch on column c; NULL sorts first.
func compareRows(batch *data.Batch, c, a, b int) int {
	col := &batch.Cols[c]
	an := col.Null != nil && col.Null[a]
	bn := col.Null != nil && col.Null[b]
	if an || bn {
		switch {
		case an && bn:
			return 0
		case an:
			return -1
		default:
			return 1
		}
	}
	switch col.Type {
	case data.Float64:
		switch {
		case col.F[a] < col.F[b]:
			return -1
		case col.F[a] > col.F[b]:
			return 1
		}
	case data.String:
		switch {
		case col.S[a] < col.S[b]:
			return -1
		case col.S[a] > col.S[b]:
			return 1
		}
	default:
		switch {
		case col.I[a] < col.I[b]:
			return -1
		case col.I[a] > col.I[b]:
			return 1
		}
	}
	return 0
}

// Limit truncates its input to n rows (without ordering).
type Limit struct {
	Child Node
	N     int
}

// Schema implements Node.
func (l *Limit) Schema() *data.Schema { return l.Child.Schema() }

// Run implements Node.
func (l *Limit) Run(ctx *Ctx) (*Stream, error) {
	sp := ctx.Trace.Start("limit", fmt.Sprintf("n=%d", l.N))
	in, err := l.Child.Run(ctx)
	ctx.Trace.EndScope(sp)
	if err != nil {
		return nil, err
	}
	var taken atomic.Int64
	return ctx.traceStream(&Stream{
		schema:  l.Child.Schema(),
		abandon: in.Abandon,
		next: func(w int, b *data.Batch) (int, error) {
			if taken.Load() >= int64(l.N) {
				return 0, nil
			}
			n, err := in.Next(w, b)
			if err != nil || n == 0 {
				return 0, err
			}
			have := taken.Add(int64(n))
			if over := have - int64(l.N); over > 0 {
				keep := n - int(over)
				if keep <= 0 {
					return 0, nil
				}
				trimBatch(b, keep)
				return keep, nil
			}
			return n, nil
		},
	}, sp), nil
}

// trimBatch truncates b to its first n live rows. When a selection vector
// is set, trimming the vector suffices — the columns stay untouched.
func trimBatch(b *data.Batch, n int) {
	if b.Sel != nil {
		b.Sel = b.Sel[:n]
		return
	}
	for i := range b.Cols {
		c := &b.Cols[i]
		if c.I != nil {
			c.I = c.I[:n]
		}
		if c.F != nil {
			c.F = c.F[:n]
		}
		if c.S != nil {
			c.S = c.S[:n]
		}
		if c.Null != nil {
			c.Null = c.Null[:n]
		}
	}
	b.SetLen(n)
}
