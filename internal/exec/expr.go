package exec

import (
	"fmt"
	"strings"

	"github.com/spilly-db/spilly/internal/data"
)

// Expr is a compiled scalar expression over batch rows. Expressions are
// compiled against a schema into closures — the stdlib-Go analogue of the
// per-query code generation the paper's engine performs. Exactly one of
// the evaluator functions is set, according to Type.
type Expr struct {
	Type data.Type
	I    func(b *data.Batch, r int) int64
	F    func(b *data.Batch, r int) float64
	S    func(b *data.Batch, r int) string
}

// Bool evaluates a boolean expression.
func (e Expr) Bool(b *data.Batch, r int) bool { return e.I(b, r) != 0 }

// AsFloat coerces a numeric expression to float64 evaluation.
func (e Expr) AsFloat() Expr {
	switch e.Type {
	case data.Float64:
		return e
	case data.Int64, data.Date, data.Bool:
		i := e.I
		return Expr{Type: data.Float64, F: func(b *data.Batch, r int) float64 { return float64(i(b, r)) }}
	default:
		panic(fmt.Sprintf("exec: cannot coerce %v to float", e.Type))
	}
}

// Col compiles a column reference.
func Col(s *data.Schema, name string) Expr {
	idx := s.MustIndex(name)
	switch s.Cols[idx].Type {
	case data.Float64:
		return Expr{Type: data.Float64, F: func(b *data.Batch, r int) float64 { return b.Cols[idx].F[r] }}
	case data.String:
		return Expr{Type: data.String, S: func(b *data.Batch, r int) string { return b.Cols[idx].S[r] }}
	default:
		t := s.Cols[idx].Type
		return Expr{Type: t, I: func(b *data.Batch, r int) int64 { return b.Cols[idx].I[r] }}
	}
}

// ConstInt compiles an integer literal.
func ConstInt(v int64) Expr {
	return Expr{Type: data.Int64, I: func(*data.Batch, int) int64 { return v }}
}

// ConstFloat compiles a float literal.
func ConstFloat(v float64) Expr {
	return Expr{Type: data.Float64, F: func(*data.Batch, int) float64 { return v }}
}

// ConstStr compiles a string literal.
func ConstStr(v string) Expr {
	return Expr{Type: data.String, S: func(*data.Batch, int) string { return v }}
}

// ConstDate compiles a date literal from "YYYY-MM-DD".
func ConstDate(s string) Expr {
	v := data.ParseDate(s)
	return Expr{Type: data.Date, I: func(*data.Batch, int) int64 { return v }}
}

// ConstBool compiles a boolean literal.
func ConstBool(v bool) Expr {
	i := int64(0)
	if v {
		i = 1
	}
	return Expr{Type: data.Bool, I: func(*data.Batch, int) int64 { return i }}
}

func arith(a, b Expr, iop func(x, y int64) int64, fop func(x, y float64) float64) Expr {
	if a.Type == data.Float64 || b.Type == data.Float64 {
		af, bf := a.AsFloat().F, b.AsFloat().F
		return Expr{Type: data.Float64, F: func(ba *data.Batch, r int) float64 { return fop(af(ba, r), bf(ba, r)) }}
	}
	ai, bi := a.I, b.I
	return Expr{Type: data.Int64, I: func(ba *data.Batch, r int) int64 { return iop(ai(ba, r), bi(ba, r)) }}
}

// Add compiles a + b with int→float promotion.
func Add(a, b Expr) Expr {
	return arith(a, b, func(x, y int64) int64 { return x + y }, func(x, y float64) float64 { return x + y })
}

// Sub compiles a - b.
func Sub(a, b Expr) Expr {
	return arith(a, b, func(x, y int64) int64 { return x - y }, func(x, y float64) float64 { return x - y })
}

// Mul compiles a * b.
func Mul(a, b Expr) Expr {
	return arith(a, b, func(x, y int64) int64 { return x * y }, func(x, y float64) float64 { return x * y })
}

// Div compiles a / b (always float, SQL decimal division).
func Div(a, b Expr) Expr {
	af, bf := a.AsFloat().F, b.AsFloat().F
	return Expr{Type: data.Float64, F: func(ba *data.Batch, r int) float64 { return af(ba, r) / bf(ba, r) }}
}

func boolExpr(f func(b *data.Batch, r int) bool) Expr {
	return Expr{Type: data.Bool, I: func(b *data.Batch, r int) int64 {
		if f(b, r) {
			return 1
		}
		return 0
	}}
}

// Cmp compiles a comparison. op is one of "<", "<=", ">", ">=", "=", "<>".
func Cmp(op string, a, b Expr) Expr {
	if a.Type == data.String || b.Type == data.String {
		if a.Type != data.String || b.Type != data.String {
			panic("exec: comparing string with non-string")
		}
		as, bs := a.S, b.S
		switch op {
		case "<":
			return boolExpr(func(ba *data.Batch, r int) bool { return as(ba, r) < bs(ba, r) })
		case "<=":
			return boolExpr(func(ba *data.Batch, r int) bool { return as(ba, r) <= bs(ba, r) })
		case ">":
			return boolExpr(func(ba *data.Batch, r int) bool { return as(ba, r) > bs(ba, r) })
		case ">=":
			return boolExpr(func(ba *data.Batch, r int) bool { return as(ba, r) >= bs(ba, r) })
		case "=":
			return boolExpr(func(ba *data.Batch, r int) bool { return as(ba, r) == bs(ba, r) })
		case "<>":
			return boolExpr(func(ba *data.Batch, r int) bool { return as(ba, r) != bs(ba, r) })
		}
		panic("exec: unknown comparison " + op)
	}
	if a.Type == data.Float64 || b.Type == data.Float64 {
		af, bf := a.AsFloat().F, b.AsFloat().F
		switch op {
		case "<":
			return boolExpr(func(ba *data.Batch, r int) bool { return af(ba, r) < bf(ba, r) })
		case "<=":
			return boolExpr(func(ba *data.Batch, r int) bool { return af(ba, r) <= bf(ba, r) })
		case ">":
			return boolExpr(func(ba *data.Batch, r int) bool { return af(ba, r) > bf(ba, r) })
		case ">=":
			return boolExpr(func(ba *data.Batch, r int) bool { return af(ba, r) >= bf(ba, r) })
		case "=":
			return boolExpr(func(ba *data.Batch, r int) bool { return af(ba, r) == bf(ba, r) })
		case "<>":
			return boolExpr(func(ba *data.Batch, r int) bool { return af(ba, r) != bf(ba, r) })
		}
		panic("exec: unknown comparison " + op)
	}
	ai, bi := a.I, b.I
	switch op {
	case "<":
		return boolExpr(func(ba *data.Batch, r int) bool { return ai(ba, r) < bi(ba, r) })
	case "<=":
		return boolExpr(func(ba *data.Batch, r int) bool { return ai(ba, r) <= bi(ba, r) })
	case ">":
		return boolExpr(func(ba *data.Batch, r int) bool { return ai(ba, r) > bi(ba, r) })
	case ">=":
		return boolExpr(func(ba *data.Batch, r int) bool { return ai(ba, r) >= bi(ba, r) })
	case "=":
		return boolExpr(func(ba *data.Batch, r int) bool { return ai(ba, r) == bi(ba, r) })
	case "<>":
		return boolExpr(func(ba *data.Batch, r int) bool { return ai(ba, r) != bi(ba, r) })
	}
	panic("exec: unknown comparison " + op)
}

// And compiles a short-circuit conjunction.
func And(exprs ...Expr) Expr {
	return boolExpr(func(b *data.Batch, r int) bool {
		for _, e := range exprs {
			if e.I(b, r) == 0 {
				return false
			}
		}
		return true
	})
}

// Or compiles a short-circuit disjunction.
func Or(exprs ...Expr) Expr {
	return boolExpr(func(b *data.Batch, r int) bool {
		for _, e := range exprs {
			if e.I(b, r) != 0 {
				return true
			}
		}
		return false
	})
}

// Not compiles a negation.
func Not(e Expr) Expr {
	return boolExpr(func(b *data.Batch, r int) bool { return e.I(b, r) == 0 })
}

// Like compiles a SQL LIKE pattern with % and _ wildcards.
func Like(e Expr, pattern string) Expr {
	m := compileLike(pattern)
	s := e.S
	return boolExpr(func(b *data.Batch, r int) bool { return m(s(b, r)) })
}

// NotLike compiles NOT LIKE.
func NotLike(e Expr, pattern string) Expr { return Not(Like(e, pattern)) }

// compileLike builds a matcher for a LIKE pattern, fast-pathing the common
// shapes (%x%, x%, %x, exact) and falling back to a general matcher.
func compileLike(pattern string) func(string) bool {
	if !strings.ContainsAny(pattern, "_") {
		parts := strings.Split(pattern, "%")
		switch {
		case len(parts) == 1:
			return func(s string) bool { return s == pattern }
		case len(parts) == 2 && parts[0] == "":
			suf := parts[1]
			return func(s string) bool { return strings.HasSuffix(s, suf) }
		case len(parts) == 2 && parts[1] == "":
			pre := parts[0]
			return func(s string) bool { return strings.HasPrefix(s, pre) }
		case len(parts) == 3 && parts[0] == "" && parts[2] == "":
			mid := parts[1]
			return func(s string) bool { return strings.Contains(s, mid) }
		default:
			// General %-only pattern: ordered substring search.
			return func(s string) bool {
				rest := s
				for i, p := range parts {
					if p == "" {
						continue
					}
					idx := strings.Index(rest, p)
					if idx < 0 {
						return false
					}
					if i == 0 && idx != 0 {
						return false
					}
					rest = rest[idx+len(p):]
				}
				if last := parts[len(parts)-1]; last != "" && !strings.HasSuffix(s, last) {
					return false
				}
				return true
			}
		}
	}
	// General matcher with _ support (rare in TPC-H).
	return func(s string) bool { return likeMatch(pattern, s) }
}

func likeMatch(pattern, s string) bool {
	// Simple backtracking matcher.
	var pi, si, star, mark int
	star = -1
	for si < len(s) {
		switch {
		case pi < len(pattern) && (pattern[pi] == '_' || pattern[pi] == s[si]):
			pi++
			si++
		case pi < len(pattern) && pattern[pi] == '%':
			star = pi
			mark = si
			pi++
		case star >= 0:
			pi = star + 1
			mark++
			si = mark
		default:
			return false
		}
	}
	for pi < len(pattern) && pattern[pi] == '%' {
		pi++
	}
	return pi == len(pattern)
}

// InStr compiles membership in a string set.
func InStr(e Expr, vals ...string) Expr {
	set := make(map[string]struct{}, len(vals))
	for _, v := range vals {
		set[v] = struct{}{}
	}
	s := e.S
	return boolExpr(func(b *data.Batch, r int) bool {
		_, ok := set[s(b, r)]
		return ok
	})
}

// InInt compiles membership in an integer set.
func InInt(e Expr, vals ...int64) Expr {
	set := make(map[int64]struct{}, len(vals))
	for _, v := range vals {
		set[v] = struct{}{}
	}
	i := e.I
	return boolExpr(func(b *data.Batch, r int) bool {
		_, ok := set[i(b, r)]
		return ok
	})
}

// Case compiles CASE WHEN cond THEN a ELSE b END.
func Case(cond, then, els Expr) Expr {
	if then.Type != els.Type && !(then.Type != data.String && els.Type != data.String) {
		panic("exec: CASE branches of incompatible types")
	}
	switch {
	case then.Type == data.String:
		t, e, c := then.S, els.S, cond.I
		return Expr{Type: data.String, S: func(b *data.Batch, r int) string {
			if c(b, r) != 0 {
				return t(b, r)
			}
			return e(b, r)
		}}
	case then.Type == data.Float64 || els.Type == data.Float64:
		t, e, c := then.AsFloat().F, els.AsFloat().F, cond.I
		return Expr{Type: data.Float64, F: func(b *data.Batch, r int) float64 {
			if c(b, r) != 0 {
				return t(b, r)
			}
			return e(b, r)
		}}
	default:
		t, e, c := then.I, els.I, cond.I
		return Expr{Type: then.Type, I: func(b *data.Batch, r int) int64 {
			if c(b, r) != 0 {
				return t(b, r)
			}
			return e(b, r)
		}}
	}
}

// YearOf compiles EXTRACT(YEAR FROM date).
func YearOf(e Expr) Expr {
	i := e.I
	return Expr{Type: data.Int64, I: func(b *data.Batch, r int) int64 { return data.Year(i(b, r)) }}
}

// Substr compiles SUBSTRING(s FROM start FOR length) with 1-based start.
func Substr(e Expr, start, length int) Expr {
	s := e.S
	return Expr{Type: data.String, S: func(b *data.Batch, r int) string {
		v := s(b, r)
		lo := start - 1
		if lo < 0 || lo >= len(v) {
			return ""
		}
		hi := lo + length
		if hi > len(v) {
			hi = len(v)
		}
		return v[lo:hi]
	}}
}

// IsNotNull compiles col IS NOT NULL for the named column.
func IsNotNull(s *data.Schema, name string) Expr {
	idx := s.MustIndex(name)
	return boolExpr(func(b *data.Batch, r int) bool { return !b.IsNull(idx, r) })
}
