package exec

import (
	"fmt"
	"math"
	"strings"

	"github.com/spilly-db/spilly/internal/data"
	"github.com/spilly-db/spilly/internal/xhash"
)

// Expr is a compiled scalar expression over batch rows. Expressions are
// compiled against a schema into closures — the stdlib-Go analogue of the
// per-query code generation the paper's engine performs. Exactly one of
// the evaluator functions is set, according to Type.
//
// Constructors additionally attach vectorized batch kernels (vecSel/vecI/
// vecF/vecS, see vector.go) for the expression shapes that dominate
// query plans; the Eval* entry points use them when present and fall back
// to the scalar closures otherwise, so any expression works either way.
type Expr struct {
	Type data.Type
	I    func(b *data.Batch, r int) int64
	F    func(b *data.Batch, r int) float64
	S    func(b *data.Batch, r int) string

	// Vectorized fast paths; nil means scalar fallback.
	vecSel func(b *data.Batch, sel []int32, out []int32) []int32
	vecI   func(b *data.Batch, sel []int32, out []int64)
	vecF   func(b *data.Batch, sel []int32, out []float64)
	vecS   func(b *data.Batch, sel []int32, out []string)

	// Shape metadata the kernel builders specialize on: col1 is the
	// referenced column index + 1 for bare column refs (0 = not a column);
	// constant marks literals, with the value in the cI/cF/cS matching Type.
	col1     int32
	constant bool
	cI       int64
	cF       float64
	cS       string

	// fp is the expression's structural fingerprint, set by every public
	// constructor (see fingerprint.go). The closures above erase structure,
	// so the hash must be recorded at construction time; 0 means the
	// expression was assembled outside the constructors and plans containing
	// it are not result-cacheable.
	fp uint64
}

// fpSeed seeds every fingerprint hash in the package.
const fpSeed uint64 = 0x5ca1ab1e

// fpEmptyExpr tags the zero Expr (e.g. an absent scan filter).
const fpEmptyExpr uint64 = 0xe321a97b0d15ea5e

// fpNz keeps legitimate fingerprints out of the 0 = "uncacheable" sentinel.
func fpNz(h uint64) uint64 {
	if h == 0 {
		return 1
	}
	return h
}

// fpNode hashes an op tag with its ordered parts, propagating the
// uncacheable sentinel: any zero part zeroes the result.
func fpNode(op string, parts ...uint64) uint64 {
	h := xhash.String(op, fpSeed)
	for _, p := range parts {
		if p == 0 {
			return 0
		}
		h = xhash.Combine(h, p)
	}
	return fpNz(h)
}

// fingerprint returns the expression's structural fingerprint: the recorded
// hash when the expression came from a package constructor, a fixed tag for
// the zero Expr, and 0 (uncacheable) for hand-assembled expressions.
func (e Expr) fingerprint() uint64 {
	if e.fp != 0 {
		return e.fp
	}
	if e.I == nil && e.F == nil && e.S == nil {
		return fpEmptyExpr
	}
	return 0
}

func (e Expr) isColRef() bool { return e.col1 != 0 }
func (e Expr) colIdx() int    { return int(e.col1) - 1 }
func (e Expr) isConst() bool  { return e.constant }

// Bool evaluates a boolean expression.
func (e Expr) Bool(b *data.Batch, r int) bool { return e.I(b, r) != 0 }

// AsFloat coerces a numeric expression to float64 evaluation.
func (e Expr) AsFloat() Expr {
	switch e.Type {
	case data.Float64:
		return e
	case data.Int64, data.Date, data.Bool:
		i := e.I
		out := Expr{Type: data.Float64, F: func(b *data.Batch, r int) float64 { return float64(i(b, r)) },
			fp: fpNode("asfloat", e.fingerprint())}
		switch {
		case e.constant:
			k := float64(e.cI)
			out.constant, out.cF = true, k
			out.vecF = func(ba *data.Batch, sel []int32, o []float64) {
				for j := range o {
					o[j] = k
				}
			}
		case e.isColRef():
			ci := e.colIdx()
			out.vecF = func(ba *data.Batch, sel []int32, o []float64) {
				vals := ba.Cols[ci].I
				if sel == nil {
					for j := range o {
						o[j] = float64(vals[j])
					}
					return
				}
				for j, r := range sel {
					o[j] = float64(vals[r])
				}
			}
		case e.vecI != nil:
			iv := e.vecI
			out.vecF = func(ba *data.Batch, sel []int32, o []float64) {
				xp := getI64(len(o))
				iv(ba, sel, *xp)
				for j, x := range *xp {
					o[j] = float64(x)
				}
				i64Pool.Put(xp)
			}
		}
		return out
	default:
		panic(fmt.Sprintf("exec: cannot coerce %v to float", e.Type))
	}
}

// Col compiles a column reference. The vectorized kernels are gathers
// (or straight copies when no selection vector is set).
func Col(s *data.Schema, name string) Expr {
	idx := s.MustIndex(name)
	fp := fpNode("col", xhash.String(name, fpSeed), xhash.U64(uint64(idx), fpSeed),
		xhash.U64(uint64(s.Cols[idx].Type), fpSeed))
	switch s.Cols[idx].Type {
	case data.Float64:
		e := Expr{Type: data.Float64, F: func(b *data.Batch, r int) float64 { return b.Cols[idx].F[r] }}
		e.col1, e.fp = int32(idx)+1, fp
		e.vecF = func(b *data.Batch, sel []int32, out []float64) {
			vals := b.Cols[idx].F
			if sel == nil {
				copy(out, vals)
				return
			}
			for i, r := range sel {
				out[i] = vals[r]
			}
		}
		return e
	case data.String:
		e := Expr{Type: data.String, S: func(b *data.Batch, r int) string { return b.Cols[idx].S[r] }}
		e.col1, e.fp = int32(idx)+1, fp
		e.vecS = func(b *data.Batch, sel []int32, out []string) {
			vals := b.Cols[idx].S
			if sel == nil {
				copy(out, vals)
				return
			}
			for i, r := range sel {
				out[i] = vals[r]
			}
		}
		return e
	default:
		t := s.Cols[idx].Type
		e := Expr{Type: t, I: func(b *data.Batch, r int) int64 { return b.Cols[idx].I[r] }}
		e.col1, e.fp = int32(idx)+1, fp
		e.vecI = func(b *data.Batch, sel []int32, out []int64) {
			vals := b.Cols[idx].I
			if sel == nil {
				copy(out, vals)
				return
			}
			for i, r := range sel {
				out[i] = vals[r]
			}
		}
		return e
	}
}

func constIntExpr(t data.Type, v int64) Expr {
	e := Expr{Type: t, I: func(*data.Batch, int) int64 { return v }}
	e.constant, e.cI = true, v
	e.fp = fpNode("consti", xhash.U64(uint64(t), fpSeed), xhash.U64(uint64(v), fpSeed))
	e.vecI = func(b *data.Batch, sel []int32, out []int64) {
		for i := range out {
			out[i] = v
		}
	}
	return e
}

// ConstInt compiles an integer literal.
func ConstInt(v int64) Expr { return constIntExpr(data.Int64, v) }

// ConstFloat compiles a float literal.
func ConstFloat(v float64) Expr {
	e := Expr{Type: data.Float64, F: func(*data.Batch, int) float64 { return v }}
	e.constant, e.cF = true, v
	e.fp = fpNode("constf", xhash.U64(math.Float64bits(v), fpSeed))
	e.vecF = func(b *data.Batch, sel []int32, out []float64) {
		for i := range out {
			out[i] = v
		}
	}
	return e
}

// ConstStr compiles a string literal.
func ConstStr(v string) Expr {
	e := Expr{Type: data.String, S: func(*data.Batch, int) string { return v }}
	e.constant, e.cS = true, v
	e.fp = fpNode("consts", xhash.String(v, fpSeed))
	e.vecS = func(b *data.Batch, sel []int32, out []string) {
		for i := range out {
			out[i] = v
		}
	}
	return e
}

// ConstDate compiles a date literal from "YYYY-MM-DD".
func ConstDate(s string) Expr { return constIntExpr(data.Date, data.ParseDate(s)) }

// ConstBool compiles a boolean literal.
func ConstBool(v bool) Expr {
	i := int64(0)
	if v {
		i = 1
	}
	return constIntExpr(data.Bool, i)
}

func arith(a, b Expr, op arithOp, iop func(x, y int64) int64, fop func(x, y float64) float64) Expr {
	if a.Type == data.Float64 || b.Type == data.Float64 {
		av, bv := a.AsFloat(), b.AsFloat()
		if av.constant && bv.constant {
			return ConstFloat(fop(av.cF, bv.cF))
		}
		af, bf := av.F, bv.F
		e := Expr{Type: data.Float64, F: func(ba *data.Batch, r int) float64 { return fop(af(ba, r), bf(ba, r)) }}
		e.vecF = binaryFKernel(av, bv, op)
		e.fp = fpNode("arith", xhash.U64(uint64(op), fpSeed), a.fingerprint(), b.fingerprint())
		return e
	}
	if a.constant && b.constant {
		return ConstInt(iop(a.cI, b.cI))
	}
	ai, bi := a.I, b.I
	e := Expr{Type: data.Int64, I: func(ba *data.Batch, r int) int64 { return iop(ai(ba, r), bi(ba, r)) }}
	e.vecI = binaryIKernel(a, b, op)
	e.fp = fpNode("arith", xhash.U64(uint64(op), fpSeed), a.fingerprint(), b.fingerprint())
	return e
}

// Add compiles a + b with int→float promotion.
func Add(a, b Expr) Expr {
	return arith(a, b, aAdd, func(x, y int64) int64 { return x + y }, func(x, y float64) float64 { return x + y })
}

// Sub compiles a - b.
func Sub(a, b Expr) Expr {
	return arith(a, b, aSub, func(x, y int64) int64 { return x - y }, func(x, y float64) float64 { return x - y })
}

// Mul compiles a * b.
func Mul(a, b Expr) Expr {
	return arith(a, b, aMul, func(x, y int64) int64 { return x * y }, func(x, y float64) float64 { return x * y })
}

// Div compiles a / b (always float, SQL decimal division).
func Div(a, b Expr) Expr {
	av, bv := a.AsFloat(), b.AsFloat()
	if av.constant && bv.constant {
		return ConstFloat(av.cF / bv.cF)
	}
	af, bf := av.F, bv.F
	e := Expr{Type: data.Float64, F: func(ba *data.Batch, r int) float64 { return af(ba, r) / bf(ba, r) }}
	e.vecF = binaryFKernel(av, bv, aDiv)
	e.fp = fpNode("div", a.fingerprint(), b.fingerprint())
	return e
}

func boolExpr(f func(b *data.Batch, r int) bool) Expr {
	return Expr{Type: data.Bool, I: func(b *data.Batch, r int) int64 {
		if f(b, r) {
			return 1
		}
		return 0
	}}
}

// Cmp compiles a comparison. op is one of "<", "<=", ">", ">=", "=", "<>".
// Comparisons against constants and between columns get vectorized
// selection kernels (see attachCmpKernel); everything else falls back to
// the scalar closure.
func Cmp(op string, a, b Expr) Expr {
	e := cmpScalar(op, a, b)
	attachCmpKernel(&e, cmpOpOf(op), a, b)
	e.fp = fpNode("cmp", xhash.String(op, fpSeed), a.fingerprint(), b.fingerprint())
	return e
}

func cmpScalar(op string, a, b Expr) Expr {
	if a.Type == data.String || b.Type == data.String {
		if a.Type != data.String || b.Type != data.String {
			panic("exec: comparing string with non-string")
		}
		as, bs := a.S, b.S
		switch op {
		case "<":
			return boolExpr(func(ba *data.Batch, r int) bool { return as(ba, r) < bs(ba, r) })
		case "<=":
			return boolExpr(func(ba *data.Batch, r int) bool { return as(ba, r) <= bs(ba, r) })
		case ">":
			return boolExpr(func(ba *data.Batch, r int) bool { return as(ba, r) > bs(ba, r) })
		case ">=":
			return boolExpr(func(ba *data.Batch, r int) bool { return as(ba, r) >= bs(ba, r) })
		case "=":
			return boolExpr(func(ba *data.Batch, r int) bool { return as(ba, r) == bs(ba, r) })
		case "<>":
			return boolExpr(func(ba *data.Batch, r int) bool { return as(ba, r) != bs(ba, r) })
		}
		panic("exec: unknown comparison " + op)
	}
	if a.Type == data.Float64 || b.Type == data.Float64 {
		af, bf := a.AsFloat().F, b.AsFloat().F
		switch op {
		case "<":
			return boolExpr(func(ba *data.Batch, r int) bool { return af(ba, r) < bf(ba, r) })
		case "<=":
			return boolExpr(func(ba *data.Batch, r int) bool { return af(ba, r) <= bf(ba, r) })
		case ">":
			return boolExpr(func(ba *data.Batch, r int) bool { return af(ba, r) > bf(ba, r) })
		case ">=":
			return boolExpr(func(ba *data.Batch, r int) bool { return af(ba, r) >= bf(ba, r) })
		case "=":
			return boolExpr(func(ba *data.Batch, r int) bool { return af(ba, r) == bf(ba, r) })
		case "<>":
			return boolExpr(func(ba *data.Batch, r int) bool { return af(ba, r) != bf(ba, r) })
		}
		panic("exec: unknown comparison " + op)
	}
	ai, bi := a.I, b.I
	switch op {
	case "<":
		return boolExpr(func(ba *data.Batch, r int) bool { return ai(ba, r) < bi(ba, r) })
	case "<=":
		return boolExpr(func(ba *data.Batch, r int) bool { return ai(ba, r) <= bi(ba, r) })
	case ">":
		return boolExpr(func(ba *data.Batch, r int) bool { return ai(ba, r) > bi(ba, r) })
	case ">=":
		return boolExpr(func(ba *data.Batch, r int) bool { return ai(ba, r) >= bi(ba, r) })
	case "=":
		return boolExpr(func(ba *data.Batch, r int) bool { return ai(ba, r) == bi(ba, r) })
	case "<>":
		return boolExpr(func(ba *data.Batch, r int) bool { return ai(ba, r) != bi(ba, r) })
	}
	panic("exec: unknown comparison " + op)
}

// And compiles a short-circuit conjunction. The vectorized form is a
// fused filter chain: the first conjunct produces a selection vector and
// each following conjunct refines it in place, so later (often more
// expensive) predicates only ever see rows that survived the earlier
// ones — batch-level short-circuiting.
func And(exprs ...Expr) Expr {
	e := boolExpr(func(b *data.Batch, r int) bool {
		for _, e := range exprs {
			if e.I(b, r) == 0 {
				return false
			}
		}
		return true
	})
	fps := []uint64{}
	for _, c := range exprs {
		fps = append(fps, c.fingerprint())
	}
	e.fp = fpNode("and", fps...)
	if len(exprs) > 0 {
		es := append([]Expr(nil), exprs...)
		e.vecSel = func(b *data.Batch, sel []int32, out []int32) []int32 {
			out = es[0].EvalBool(b, sel, out)
			for _, c := range es[1:] {
				// Stop once the selection is empty: nothing left to
				// refine, and a nil out must not reach refineSel, where
				// it would read as "all physical rows".
				if len(out) == 0 {
					break
				}
				out = c.refineSel(b, out)
			}
			return out
		}
	}
	return e
}

// Or compiles a short-circuit disjunction.
func Or(exprs ...Expr) Expr {
	out := boolExpr(func(b *data.Batch, r int) bool {
		for _, e := range exprs {
			if e.I(b, r) != 0 {
				return true
			}
		}
		return false
	})
	fps := []uint64{}
	for _, c := range exprs {
		fps = append(fps, c.fingerprint())
	}
	out.fp = fpNode("or", fps...)
	return out
}

// Not compiles a negation.
func Not(e Expr) Expr {
	out := boolExpr(func(b *data.Batch, r int) bool { return e.I(b, r) == 0 })
	out.fp = fpNode("not", e.fingerprint())
	return out
}

// Like compiles a SQL LIKE pattern with % and _ wildcards.
func Like(e Expr, pattern string) Expr {
	m := compileLike(pattern)
	s := e.S
	out := boolExpr(func(b *data.Batch, r int) bool { return m(s(b, r)) })
	out.fp = fpNode("like", e.fingerprint(), xhash.String(pattern, fpSeed))
	if e.isColRef() {
		ci := e.colIdx()
		out.vecSel = func(b *data.Batch, sel []int32, o []int32) []int32 {
			return selectStrCol(b.Cols[ci].S, b.Len(), sel, o, m, false)
		}
	}
	return out
}

// NotLike compiles NOT LIKE.
func NotLike(e Expr, pattern string) Expr {
	m := compileLike(pattern)
	out := Not(Like(e, pattern))
	out.fp = fpNode("notlike", e.fingerprint(), xhash.String(pattern, fpSeed))
	if e.isColRef() {
		ci := e.colIdx()
		out.vecSel = func(b *data.Batch, sel []int32, o []int32) []int32 {
			return selectStrCol(b.Cols[ci].S, b.Len(), sel, o, m, true)
		}
	}
	return out
}

// selectStrCol appends the live rows for which match(vals[r]) != negate.
func selectStrCol(vals []string, n int, sel []int32, out []int32, match func(string) bool, negate bool) []int32 {
	if sel == nil {
		for r := 0; r < n; r++ {
			if match(vals[r]) != negate {
				out = append(out, int32(r))
			}
		}
		return out
	}
	for _, r := range sel {
		if match(vals[r]) != negate {
			out = append(out, r)
		}
	}
	return out
}

// compileLike builds a matcher for a LIKE pattern, fast-pathing the common
// shapes (%x%, x%, %x, exact) and falling back to a general matcher.
func compileLike(pattern string) func(string) bool {
	if !strings.ContainsAny(pattern, "_") {
		parts := strings.Split(pattern, "%")
		switch {
		case len(parts) == 1:
			return func(s string) bool { return s == pattern }
		case len(parts) == 2 && parts[0] == "":
			suf := parts[1]
			return func(s string) bool { return strings.HasSuffix(s, suf) }
		case len(parts) == 2 && parts[1] == "":
			pre := parts[0]
			return func(s string) bool { return strings.HasPrefix(s, pre) }
		case len(parts) == 3 && parts[0] == "" && parts[2] == "":
			mid := parts[1]
			return func(s string) bool { return strings.Contains(s, mid) }
		default:
			// General %-only pattern: ordered substring search.
			return func(s string) bool {
				rest := s
				for i, p := range parts {
					if p == "" {
						continue
					}
					idx := strings.Index(rest, p)
					if idx < 0 {
						return false
					}
					if i == 0 && idx != 0 {
						return false
					}
					rest = rest[idx+len(p):]
				}
				if last := parts[len(parts)-1]; last != "" && !strings.HasSuffix(s, last) {
					return false
				}
				return true
			}
		}
	}
	// General matcher with _ support (rare in TPC-H).
	return func(s string) bool { return likeMatch(pattern, s) }
}

func likeMatch(pattern, s string) bool {
	// Simple backtracking matcher.
	var pi, si, star, mark int
	star = -1
	for si < len(s) {
		switch {
		case pi < len(pattern) && (pattern[pi] == '_' || pattern[pi] == s[si]):
			pi++
			si++
		case pi < len(pattern) && pattern[pi] == '%':
			star = pi
			mark = si
			pi++
		case star >= 0:
			pi = star + 1
			mark++
			si = mark
		default:
			return false
		}
	}
	for pi < len(pattern) && pattern[pi] == '%' {
		pi++
	}
	return pi == len(pattern)
}

// InStr compiles membership in a string set.
func InStr(e Expr, vals ...string) Expr {
	set := make(map[string]struct{}, len(vals))
	for _, v := range vals {
		set[v] = struct{}{}
	}
	s := e.S
	out := boolExpr(func(b *data.Batch, r int) bool {
		_, ok := set[s(b, r)]
		return ok
	})
	fps := []uint64{e.fingerprint()}
	for _, v := range vals {
		fps = append(fps, xhash.String(v, fpSeed))
	}
	out.fp = fpNode("instr", fps...)
	if e.isColRef() {
		ci := e.colIdx()
		out.vecSel = func(b *data.Batch, sel []int32, o []int32) []int32 {
			return selectStrCol(b.Cols[ci].S, b.Len(), sel, o, func(v string) bool {
				_, ok := set[v]
				return ok
			}, false)
		}
	}
	return out
}

// InInt compiles membership in an integer set.
func InInt(e Expr, vals ...int64) Expr {
	set := make(map[int64]struct{}, len(vals))
	for _, v := range vals {
		set[v] = struct{}{}
	}
	i := e.I
	out := boolExpr(func(b *data.Batch, r int) bool {
		_, ok := set[i(b, r)]
		return ok
	})
	fps := []uint64{e.fingerprint()}
	for _, v := range vals {
		fps = append(fps, xhash.U64(uint64(v), fpSeed))
	}
	out.fp = fpNode("inint", fps...)
	if e.isColRef() {
		ci := e.colIdx()
		out.vecSel = func(b *data.Batch, sel []int32, o []int32) []int32 {
			vals := b.Cols[ci].I
			if sel == nil {
				n := b.Len()
				for r := 0; r < n; r++ {
					if _, ok := set[vals[r]]; ok {
						o = append(o, int32(r))
					}
				}
				return o
			}
			for _, r := range sel {
				if _, ok := set[vals[r]]; ok {
					o = append(o, r)
				}
			}
			return o
		}
	}
	return out
}

// Case compiles CASE WHEN cond THEN a ELSE b END.
func Case(cond, then, els Expr) Expr {
	if then.Type != els.Type && !(then.Type != data.String && els.Type != data.String) {
		panic("exec: CASE branches of incompatible types")
	}
	fp := fpNode("case", cond.fingerprint(), then.fingerprint(), els.fingerprint())
	switch {
	case then.Type == data.String:
		t, e, c := then.S, els.S, cond.I
		return Expr{Type: data.String, fp: fp, S: func(b *data.Batch, r int) string {
			if c(b, r) != 0 {
				return t(b, r)
			}
			return e(b, r)
		}}
	case then.Type == data.Float64 || els.Type == data.Float64:
		t, e, c := then.AsFloat().F, els.AsFloat().F, cond.I
		return Expr{Type: data.Float64, fp: fp, F: func(b *data.Batch, r int) float64 {
			if c(b, r) != 0 {
				return t(b, r)
			}
			return e(b, r)
		}}
	default:
		t, e, c := then.I, els.I, cond.I
		return Expr{Type: then.Type, fp: fp, I: func(b *data.Batch, r int) int64 {
			if c(b, r) != 0 {
				return t(b, r)
			}
			return e(b, r)
		}}
	}
}

// YearOf compiles EXTRACT(YEAR FROM date).
func YearOf(e Expr) Expr {
	i := e.I
	out := Expr{Type: data.Int64, fp: fpNode("year", e.fingerprint()), I: func(b *data.Batch, r int) int64 { return data.Year(i(b, r)) }}
	if e.vecI != nil {
		iv := e.vecI
		out.vecI = func(b *data.Batch, sel []int32, o []int64) {
			iv(b, sel, o)
			for j := range o {
				o[j] = data.Year(o[j])
			}
		}
	}
	return out
}

// Substr compiles SUBSTRING(s FROM start FOR length) with 1-based start.
func Substr(e Expr, start, length int) Expr {
	s := e.S
	fp := fpNode("substr", e.fingerprint(), xhash.U64(uint64(int64(start)), fpSeed), xhash.U64(uint64(int64(length)), fpSeed))
	return Expr{Type: data.String, fp: fp, S: func(b *data.Batch, r int) string {
		v := s(b, r)
		lo := start - 1
		if lo < 0 || lo >= len(v) {
			return ""
		}
		hi := lo + length
		if hi > len(v) {
			hi = len(v)
		}
		return v[lo:hi]
	}}
}

// IsNotNull compiles col IS NOT NULL for the named column.
func IsNotNull(s *data.Schema, name string) Expr {
	idx := s.MustIndex(name)
	e := boolExpr(func(b *data.Batch, r int) bool { return !b.IsNull(idx, r) })
	e.fp = fpNode("isnotnull", xhash.String(name, fpSeed), xhash.U64(uint64(idx), fpSeed))
	e.vecSel = func(b *data.Batch, sel []int32, out []int32) []int32 {
		null := b.Cols[idx].Null
		if null == nil {
			// No null bitmap: every live row passes.
			if sel == nil {
				n := b.Len()
				for r := 0; r < n; r++ {
					out = append(out, int32(r))
				}
				return out
			}
			return append(out, sel...)
		}
		if sel == nil {
			n := b.Len()
			for r := 0; r < n; r++ {
				if !null[r] {
					out = append(out, int32(r))
				}
			}
			return out
		}
		for _, r := range sel {
			if !null[r] {
				out = append(out, r)
			}
		}
		return out
	}
	return e
}
