//go:build !race

// Allocation-count regression tests for the operator hot paths. Excluded
// under -race: the race runtime's bookkeeping allocations make
// testing.AllocsPerRun meaningless.

package exec

import (
	"fmt"
	"testing"

	"github.com/spilly-db/spilly/internal/data"
	"github.com/spilly-db/spilly/internal/pages"
)

// evalBatch builds a 1024-row batch for expression-kernel measurements.
func evalBatch() *data.Batch {
	schema := data.NewSchema(
		data.ColumnDef{Name: "i", Type: data.Int64},
		data.ColumnDef{Name: "f", Type: data.Float64},
		data.ColumnDef{Name: "s", Type: data.String},
	)
	b := data.NewBatch(schema, 1024)
	for i := 0; i < 1024; i++ {
		b.Cols[0].I = append(b.Cols[0].I, int64(i%97))
		b.Cols[1].F = append(b.Cols[1].F, float64(i)*0.25)
		b.Cols[2].S = append(b.Cols[2].S, "MEDIUM POLISHED COPPER")
	}
	b.SetLen(1024)
	return b
}

// TestAllocsExprChains pins the fused expression entry points at amortized
// zero allocations per batch: intermediate vectors come from slice pools,
// so after warmup a 1024-row evaluation must not touch the heap.
func TestAllocsExprChains(t *testing.T) {
	b := evalBatch()
	s := b.Schema
	filter := And(
		Cmp(">=", Col(s, "i"), ConstInt(10)),
		Cmp("<", Col(s, "f"), ConstFloat(200)),
	)
	arith := Mul(Col(s, "f"), Sub(ConstFloat(1), ConstFloat(0.1)))

	selBuf := make([]int32, 1024)
	outF := make([]float64, 1024)
	// Warm the slice pools.
	for i := 0; i < 8; i++ {
		_ = filter.EvalBool(b, nil, selBuf[:0])
		arith.EvalF(b, nil, outF)
	}
	if got := testing.AllocsPerRun(100, func() {
		_ = filter.EvalBool(b, nil, selBuf[:0])
	}); got > 0.1 {
		t.Errorf("EvalBool fused filter: %.3f allocs/run, want ~0", got)
	}
	if got := testing.AllocsPerRun(100, func() {
		arith.EvalF(b, nil, outF)
	}); got > 0.1 {
		t.Errorf("EvalF fused arithmetic: %.3f allocs/run, want ~0", got)
	}
}

// TestAllocsJoinProbeEmit pins the probe-side emit path: hashing a batch
// row, probing the table, and appending the matching build tuple's columns
// through an arena must not allocate per row in steady state.
func TestAllocsJoinProbeEmit(t *testing.T) {
	buildSchema := data.NewSchema(
		data.ColumnDef{Name: "ckey", Type: data.Int64},
		data.ColumnDef{Name: "name", Type: data.String},
	)
	rc := data.NewRowCodec(buildSchema.Types())
	src := data.NewBatch(buildSchema, 256)
	for i := 0; i < 256; i++ {
		src.Cols[0].I = append(src.Cols[0].I, int64(i))
		src.Cols[1].S = append(src.Cols[1].S, fmt.Sprintf("cust-name-%d", i))
	}
	src.SetLen(256)

	// Materialize the build rows onto pages, as the join build phase does.
	pg := pages.New(64 << 10)
	for r := 0; r < src.Len(); r++ {
		dst, ok := pg.Append(make([]byte, rc.Size(src, r)))
		if !ok {
			t.Fatal("page overflow")
		}
		rc.Encode(dst, src, r)
	}
	ht, err := buildHashTable([]*pages.Page{pg}, rc, []int{0}, 0, 1)
	if err != nil {
		t.Fatal(err)
	}

	probe := evalBatch()
	out := data.NewBatch(buildSchema, 4096)
	var arena data.ByteArena
	emit := func() {
		out.Reset()
		for r := 0; r < probe.Len(); r++ {
			h := data.HashRow(probe, []int{0}, r)
			ht.probeRow(h, probe, []int{0}, r, func(tuple []byte) {
				appendTupleCols(out, 0, rc, tuple, buildSchema.Len(), &arena)
				out.SetLen(out.Len() + 1)
			})
		}
	}
	for i := 0; i < 8; i++ {
		emit()
	}
	got := testing.AllocsPerRun(50, emit)
	// 1024 probe rows per run: allow only amortized arena-chunk noise.
	if got > 1 {
		t.Errorf("join probe emit: %.2f allocs/run for 1024 rows, want <= 1", got)
	}
}

func BenchmarkAllocBatchPoolCycle(b *testing.B) {
	p := data.NewBatchPool(evalBatch().Schema)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bt := p.Get()
		bt.Release()
	}
}

// TestAllocsBatchPoolCycle pins the per-fill cost of the batch lease:
// Get/Release on a warmed pool must not allocate.
func TestAllocsBatchPoolCycle(t *testing.T) {
	p := data.NewBatchPool(evalBatch().Schema)
	for i := 0; i < 8; i++ {
		b := p.Get()
		b.Release()
	}
	got := testing.AllocsPerRun(100, func() {
		b := p.Get()
		b.Release()
	})
	if got > 0.1 {
		t.Errorf("BatchPool Get/Release: %.3f allocs/run, want ~0", got)
	}
}
