package exec

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/spilly-db/spilly/internal/data"
)

// propSchema is a mixed-type schema exercising every kernel lane: int and
// float columns, strings for LIKE/IN, a date for YearOf, and a nullable
// column for IsNotNull.
var propSchema = data.NewSchema(
	data.ColumnDef{Name: "a", Type: data.Int64},
	data.ColumnDef{Name: "b", Type: data.Int64},
	data.ColumnDef{Name: "f", Type: data.Float64},
	data.ColumnDef{Name: "g", Type: data.Float64},
	data.ColumnDef{Name: "s", Type: data.String},
	data.ColumnDef{Name: "d", Type: data.Date},
	data.ColumnDef{Name: "n", Type: data.Int64},
)

// randPropBatch builds a random batch over propSchema: random row count,
// sometimes a null mask on column n, sometimes a random ascending
// selection vector (possibly empty).
func randPropBatch(rng *rand.Rand) *data.Batch {
	n := 1 + rng.Intn(200)
	b := data.NewBatch(propSchema, n)
	words := []string{"MAIL", "SHIP", "AIR", "RAIL", "TRUCK", "FOB", "special", "packages"}
	for i := 0; i < n; i++ {
		b.Cols[0].I = append(b.Cols[0].I, int64(rng.Intn(50)-10))
		b.Cols[1].I = append(b.Cols[1].I, int64(rng.Intn(50)))
		b.Cols[2].F = append(b.Cols[2].F, rng.Float64()*100-50)
		b.Cols[3].F = append(b.Cols[3].F, rng.Float64())
		b.Cols[4].S = append(b.Cols[4].S, words[rng.Intn(len(words))]+fmt.Sprint(rng.Intn(5)))
		b.Cols[5].I = append(b.Cols[5].I, data.DateOf(1992+rng.Intn(7), 1+rng.Intn(12), 1+rng.Intn(28)))
		b.Cols[6].I = append(b.Cols[6].I, int64(rng.Intn(10)))
	}
	b.SetLen(n)
	if rng.Intn(2) == 0 {
		null := make([]bool, n)
		for i := range null {
			null[i] = rng.Intn(3) == 0
		}
		b.Cols[6].Null = null
	}
	if rng.Intn(2) == 0 {
		sel := make([]int32, 0, n)
		for i := 0; i < n; i++ {
			if rng.Intn(3) != 0 {
				sel = append(sel, int32(i))
			}
		}
		b.Sel = sel
	}
	return b
}

// propBoolExprs covers the predicate shapes the kernel builders specialize
// on: col⊗const and col⊗col comparisons in all three type lanes, reversed
// operands, fused AND chains, OR/NOT fallbacks, LIKE, IN, IsNotNull, and
// comparisons over composed arithmetic.
func propBoolExprs(s *data.Schema) []Expr {
	a, bc, f, g, str, d := Col(s, "a"), Col(s, "b"), Col(s, "f"), Col(s, "g"), Col(s, "s"), Col(s, "d")
	return []Expr{
		Cmp("<", a, ConstInt(7)),
		Cmp(">=", ConstInt(7), a),
		Cmp("=", a, bc),
		Cmp("<>", f, ConstFloat(0.25)),
		Cmp("<", f, g),
		Cmp(">", Mul(f, g), ConstFloat(1.5)),
		Cmp("<=", str, ConstStr("RAIL")),
		Cmp("=", str, ConstStr("MAIL3")),
		Cmp(">", a.AsFloat(), g),
		And(Cmp(">", a, ConstInt(0)), Cmp("<", f, ConstFloat(10)), Cmp("<>", bc, ConstInt(3))),
		Or(Cmp("<", a, ConstInt(-5)), Cmp(">", g, ConstFloat(0.9))),
		Not(Cmp("<", a, bc)),
		Like(str, "%AI%"),
		NotLike(str, "S%"),
		InStr(str, "MAIL0", "AIR1", "FOB2"),
		InInt(a, 1, 2, 3),
		IsNotNull(s, "n"),
		Cmp(">", YearOf(d), ConstInt(1995)),
	}
}

func propIntExprs(s *data.Schema) []Expr {
	a, bc, d := Col(s, "a"), Col(s, "b"), Col(s, "d")
	return []Expr{
		a,
		ConstInt(42),
		Add(a, bc),
		Sub(a, ConstInt(3)),
		Mul(Add(a, ConstInt(1)), bc),
		YearOf(d),
	}
}

func propFloatExprs(s *data.Schema) []Expr {
	a, f, g := Col(s, "a"), Col(s, "f"), Col(s, "g")
	return []Expr{
		f,
		ConstFloat(2.5),
		a.AsFloat(),
		Add(f, g),
		Mul(f, Sub(ConstFloat(1), g)),
		Mul(Mul(f, Sub(ConstFloat(1), g)), Add(ConstFloat(1), g)),
		Div(f, g),
	}
}

func selEqual(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestVectorizedMatchesScalar is the tentpole's safety net: for random
// batches (with and without null masks and selection vectors), every
// vectorized kernel must produce exactly the rows / values the scalar
// closures produce — bit-identical for floats.
func TestVectorizedMatchesScalar(t *testing.T) {
	defer SetVectorized(true)
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		b := randPropBatch(rng)
		sel := b.Sel
		for ei, e := range propBoolExprs(propSchema) {
			SetVectorized(true)
			vec := e.EvalBool(b, sel, nil)
			SetVectorized(false)
			sc := e.EvalBool(b, sel, nil)
			if !selEqual(vec, sc) {
				t.Logf("seed %d bool expr %d: vectorized %v, scalar %v", seed, ei, vec, sc)
				return false
			}
		}
		n := b.Rows()
		for ei, e := range propIntExprs(propSchema) {
			vec, sc := make([]int64, n), make([]int64, n)
			SetVectorized(true)
			e.EvalI(b, sel, vec)
			SetVectorized(false)
			e.EvalI(b, sel, sc)
			for i := range vec {
				if vec[i] != sc[i] {
					t.Logf("seed %d int expr %d row %d: vectorized %d, scalar %d", seed, ei, i, vec[i], sc[i])
					return false
				}
			}
		}
		for ei, e := range propFloatExprs(propSchema) {
			vec, sc := make([]float64, n), make([]float64, n)
			SetVectorized(true)
			e.EvalF(b, sel, vec)
			SetVectorized(false)
			e.EvalF(b, sel, sc)
			for i := range vec {
				if math.Float64bits(vec[i]) != math.Float64bits(sc[i]) {
					t.Logf("seed %d float expr %d row %d: vectorized %v, scalar %v", seed, ei, i, vec[i], sc[i])
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestEvalBoolRefinesSelection checks the selection-vector contract
// directly: EvalBool over an input selection returns an ascending subset
// of it, and a fused AND chain equals refining each conjunct in turn.
func TestEvalBoolRefinesSelection(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		b := randPropBatch(rng)
		s := propSchema
		conj := []Expr{
			Cmp(">", Col(s, "a"), ConstInt(0)),
			Cmp("<", Col(s, "f"), ConstFloat(20)),
			Cmp("<>", Col(s, "b"), ConstInt(3)),
		}
		fused := And(conj...).EvalBool(b, b.Sel, nil)
		step := b.Sel
		var out []int32
		for i, c := range conj {
			out = c.EvalBool(b, step, nil)
			step = out
			_ = i
		}
		if b.Sel == nil && len(conj) == 0 {
			continue
		}
		if !selEqual(fused, step) {
			t.Fatalf("trial %d: fused AND %v != stepwise refinement %v", trial, fused, step)
		}
		prev := int32(-1)
		for _, r := range fused {
			if r <= prev {
				t.Fatalf("trial %d: selection not ascending: %v", trial, fused)
			}
			prev = r
		}
	}
}

func benchBatch(n int) *data.Batch {
	rng := rand.New(rand.NewSource(1))
	b := data.NewBatch(propSchema, n)
	for i := 0; i < n; i++ {
		b.Cols[0].I = append(b.Cols[0].I, int64(rng.Intn(50)-10))
		b.Cols[1].I = append(b.Cols[1].I, int64(rng.Intn(50)))
		b.Cols[2].F = append(b.Cols[2].F, rng.Float64()*100-50)
		b.Cols[3].F = append(b.Cols[3].F, rng.Float64())
		b.Cols[4].S = append(b.Cols[4].S, "MODE"+fmt.Sprint(rng.Intn(8)))
		b.Cols[5].I = append(b.Cols[5].I, data.DateOf(1992+rng.Intn(7), 1+rng.Intn(12), 1+rng.Intn(28)))
		b.Cols[6].I = append(b.Cols[6].I, int64(rng.Intn(10)))
	}
	b.SetLen(n)
	return b
}

// benchPred is a Q6-shaped conjunction: date range + float range + int
// threshold, the dominant predicate shape in TPC-H scans.
func benchPred(s *data.Schema) Expr {
	return And(
		Cmp(">=", Col(s, "d"), ConstDate("1994-01-01")),
		Cmp("<", Col(s, "d"), ConstDate("1995-01-01")),
		Cmp(">=", Col(s, "g"), ConstFloat(0.05)),
		Cmp("<=", Col(s, "g"), ConstFloat(0.07)),
		Cmp("<", Col(s, "a"), ConstInt(24)),
	)
}

func benchFilter(b *testing.B, vectorized bool) {
	defer SetVectorized(true)
	SetVectorized(vectorized)
	batch := benchBatch(4096)
	pred := benchPred(propSchema)
	var sel []int32
	b.SetBytes(4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sel = pred.EvalBool(batch, nil, sel[:0])
	}
	_ = sel
}

func BenchmarkFilterScalar(b *testing.B)     { benchFilter(b, false) }
func BenchmarkFilterVectorized(b *testing.B) { benchFilter(b, true) }

func benchProject(b *testing.B, vectorized bool) {
	defer SetVectorized(true)
	SetVectorized(vectorized)
	batch := benchBatch(4096)
	s := propSchema
	// Q1-shaped measure: f * (1 - g).
	e := Mul(Col(s, "f"), Sub(ConstFloat(1), Col(s, "g")))
	out := make([]float64, 4096)
	b.SetBytes(4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.EvalF(batch, nil, out)
	}
}

func BenchmarkProjectScalar(b *testing.B)     { benchProject(b, false) }
func BenchmarkProjectVectorized(b *testing.B) { benchProject(b, true) }
