package exec

import (
	"bytes"
	"fmt"
	"sort"
	"strings"
	"sync/atomic"

	"github.com/spilly-db/spilly/internal/core"
	"github.com/spilly-db/spilly/internal/data"
	"github.com/spilly-db/spilly/internal/trace"
)

// WindowFunc is a window aggregate.
type WindowFunc int

// Window functions.
const (
	WRowNumber WindowFunc = iota
	WRank
	WSum
	WCount
	WAvg
	WMin
	WMax
)

// FrameKind selects the window frame.
type FrameKind int

// Frames: the whole partition, the running prefix (UNBOUNDED PRECEDING TO
// CURRENT ROW), or a sliding ROWS frame [Lo, Hi] relative to the current
// row.
const (
	FrameAll FrameKind = iota
	FrameRunning
	FrameRows
)

// WindowSpec is one window function: Func over column Col (ignored for
// WRowNumber/WRank), named As, evaluated over Frame.
type WindowSpec struct {
	Func   WindowFunc
	Col    string
	As     string
	Frame  FrameKind
	Lo, Hi int // FrameRows offsets relative to the current row (Lo <= Hi)
}

// Window is a hash-based window operator built on Umami — the §4.7
// extension the paper names as a direct beneficiary of adaptive
// materialization. Input rows materialize through a per-thread Umami
// buffer hashed by the PARTITION BY keys, so the operator adaptively
// partitions and spills exactly like the unified join and aggregation;
// phase 2 groups each hash partition's rows (in-memory and read back),
// sorts every window partition, and evaluates the functions — sliding
// MIN/MAX frames via the segment tree approach the paper cites.
type Window struct {
	Child       Node
	PartitionBy []string
	OrderBy     []SortKey
	Funcs       []WindowSpec

	schema *data.Schema
}

// NewWindow constructs a window node. The output schema is the child's
// columns followed by one column per window function.
func NewWindow(child Node, partitionBy []string, orderBy []SortKey, funcs []WindowSpec) *Window {
	w := &Window{Child: child, PartitionBy: partitionBy, OrderBy: orderBy, Funcs: funcs}
	out := &data.Schema{Cols: append([]data.ColumnDef{}, child.Schema().Cols...)}
	in := child.Schema()
	for i, f := range funcs {
		name := f.As
		if name == "" {
			name = fmt.Sprintf("w%d", i)
		}
		t := data.Float64
		switch f.Func {
		case WRowNumber, WRank, WCount:
			t = data.Int64
		case WMin, WMax:
			t = in.Cols[in.MustIndex(f.Col)].Type
		}
		out.Cols = append(out.Cols, data.ColumnDef{Name: name, Type: t})
	}
	w.schema = out
	return w
}

// Schema implements Node.
func (w *Window) Schema() *data.Schema { return w.schema }

// Run implements Node.
func (w *Window) Run(ctx *Ctx) (*Stream, error) {
	if err := checkSchemaCols(w.Child.Schema(), w.PartitionBy); err != nil {
		return nil, err
	}
	var label string
	if len(w.PartitionBy) > 0 {
		label = "by=" + strings.Join(w.PartitionBy, ",")
	}
	sp := ctx.Trace.Start("window", label)
	defer ctx.Trace.EndScope(sp)
	pc := ctx.phaseStart()
	in, err := w.Child.Run(ctx)
	if err != nil {
		return nil, err
	}
	inSchema := w.Child.Schema()
	rc := data.NewRowCodec(inSchema.Types())
	partCols := indicesOf(inSchema, w.PartitionBy)

	shared := core.NewShared(ctx.coreConfig())
	err = runWorkers("window", ctx.workers(), func(wk int) error {
		done := false
		defer func() {
			if !done {
				in.Abandon(wk)
			}
		}()
		buf := shared.NewBuffer()
		b := ctx.BatchPool(inSchema).Get()
		defer b.Release()
		var be batchEncoder
		for {
			n, err := in.Next(wk, b)
			if err != nil {
				return err
			}
			if n == 0 {
				done = true
				return buf.Finish()
			}
			// Batch materialization, as in the join build: hashing,
			// sizing, and encoding all run column-at-a-time.
			be.materialize(buf, rc, b, partCols, nil)
		}
	})
	if err != nil {
		return nil, err
	}
	res, err := shared.Finalize()
	if err != nil {
		return nil, err
	}
	ctx.AddCleanup(func() { res.ReleaseMemory(ctx.Budget) })
	if ctx.Stats != nil {
		ctx.Stats.addResult(res)
	}
	spanResult(sp, res)
	if shared.PartitioningActive() {
		sp.SetPartitioned()
	}
	ctx.spanPhase(sp, pc)
	return w.outputStream(ctx, sp, res, rc, partCols)
}

// outputStream evaluates windows hash-partition-wise. Unpartitioned pages
// are routed to their hash partitions first (a window partition's rows may
// be split between the unpartitioned head and its hash partition).
func (w *Window) outputStream(ctx *Ctx, sp *trace.Span, res *core.Result, rc *data.RowCodec, partCols []int) (*Stream, error) {
	shiftP := uint(64 - log2(uint64(res.Partitions)))
	routed := make([][][]byte, res.Partitions)
	for _, pg := range res.Unpartitioned {
		for t := 0; t < pg.Tuples(); t++ {
			tuple := pg.Tuple(t)
			p := int(rc.HashTuple(tuple, partCols) >> shiftP)
			routed[p] = append(routed[p], tuple)
		}
	}
	// Spilled partitions stream back through the readback scheduler in the
	// same ascending order workers claim them, so partition k+1's reads are
	// in flight while partition k's windows are sorted and evaluated.
	itemOf := make([]int, res.Partitions)
	var items []core.PartitionWork
	for p := 0; p < res.Partitions; p++ {
		itemOf[p] = -1
		if len(res.Spilled[p]) > 0 {
			itemOf[p] = len(items)
			items = append(items, core.PartitionWork{Part: p, Slots: res.Spilled[p]})
		}
	}
	var sched *core.PartitionScheduler
	if len(items) > 0 {
		sched = core.NewPartitionScheduler(ctx.goCtx(), ctx.Spill.Array, ctx.pageSize(),
			items, ctx.readDepth(), ctx.Budget, ctx.BlockingSpillRead)
		ctx.bindSpillIO(sched)
		sched.SetIntegrity(res.Stripes)
		ctx.AddCleanup(sched.Close)
	}
	var cursor atomic.Int64
	return ctx.traceStream(&Stream{
		schema: w.schema,
		next: func(wk int, b *data.Batch) (int, error) {
			var arena data.ByteArena
			for {
				p := int(cursor.Add(1) - 1)
				if p >= res.Partitions {
					return 0, nil
				}
				tuples := append([][]byte(nil), routed[p]...)
				for _, pg := range res.InMemoryByPart(p) {
					for t := 0; t < pg.Tuples(); t++ {
						tuples = append(tuples, pg.Tuple(t))
					}
				}
				var cur core.PartitionCursor
				if itemOf[p] >= 0 {
					cur = sched.Open(itemOf[p])
					for {
						pg, err := cur.Next()
						if err != nil {
							chargeSpillCursor(ctx, sp, cur)
							return 0, fmt.Errorf("exec: window reading partition %d: %w", p, err)
						}
						if pg == nil {
							break
						}
						for t := 0; t < pg.Tuples(); t++ {
							tuples = append(tuples, pg.Tuple(t))
						}
					}
					chargeSpillCursor(ctx, sp, cur)
				}
				if len(tuples) == 0 {
					continue
				}
				b.Reset()
				w.evalPartition(b, tuples, rc, partCols, &arena)
				// The batch owns its values now (strings arena-interned), so
				// the read-back buffers can be recycled.
				if cur != nil {
					cur.Release()
				}
				if b.Len() > 0 {
					return b.Len(), nil
				}
			}
		},
	}, sp), nil
}

// evalPartition groups one hash partition's tuples into window partitions,
// sorts each, evaluates the functions, and emits.
func (w *Window) evalPartition(out *data.Batch, tuples [][]byte, rc *data.RowCodec, partCols []int, arena *data.ByteArena) {
	inSchema := w.Child.Schema()
	// Group by exact partition keys.
	groups := map[string][]int{}
	scratch := make([]byte, 0, 64)
	for i, tup := range tuples {
		var key string
		scratch, key = windowKey(rc, tup, partCols, scratch)
		groups[key] = append(groups[key], i)
	}
	orderCols := indicesOf(inSchema, sortCols(w.OrderBy))
	for _, idxs := range groups {
		// Sort the window partition by ORDER BY.
		sort.SliceStable(idxs, func(a, b int) bool {
			ta, tb := tuples[idxs[a]], tuples[idxs[b]]
			for i, c := range orderCols {
				cmp := compareTupleField(rc, ta, tb, c)
				if cmp == 0 {
					continue
				}
				if w.OrderBy[i].Desc {
					return cmp > 0
				}
				return cmp < 0
			}
			return false
		})
		w.emitGroup(out, tuples, idxs, rc, orderCols, arena)
	}
}

func sortCols(keys []SortKey) []string {
	out := make([]string, len(keys))
	for i, k := range keys {
		out[i] = k.Col
	}
	return out
}

// windowKey canonicalizes the partition key fields of a tuple.
func windowKey(rc *data.RowCodec, tup []byte, cols []int, scratch []byte) ([]byte, string) {
	scratch = scratch[:0]
	for _, c := range cols {
		if rc.IsNull(tup, c) {
			scratch = append(scratch, 1)
			continue
		}
		scratch = append(scratch, 0)
		if rc.Types()[c] == data.String {
			s := rc.StrBytes(tup, c)
			scratch = append(scratch, byte(len(s)), byte(len(s)>>8))
			scratch = append(scratch, s...)
		} else {
			v := rc.Int(tup, c)
			for k := 0; k < 8; k++ {
				scratch = append(scratch, byte(v>>(8*k)))
			}
		}
	}
	return scratch, string(scratch)
}

// compareTupleField orders two tuples on one field (NULL first).
func compareTupleField(rc *data.RowCodec, a, b []byte, c int) int {
	an, bn := rc.IsNull(a, c), rc.IsNull(b, c)
	switch {
	case an && bn:
		return 0
	case an:
		return -1
	case bn:
		return 1
	}
	switch rc.Types()[c] {
	case data.Float64:
		x, y := rc.Float(a, c), rc.Float(b, c)
		switch {
		case x < y:
			return -1
		case x > y:
			return 1
		}
	case data.String:
		if cmp := bytes.Compare(rc.StrBytes(a, c), rc.StrBytes(b, c)); cmp != 0 {
			return cmp
		}
	default:
		x, y := rc.Int(a, c), rc.Int(b, c)
		switch {
		case x < y:
			return -1
		case x > y:
			return 1
		}
	}
	return 0
}

// emitGroup evaluates every window function over one sorted window
// partition and appends the output rows. Per function, the group is
// preprocessed once: prefix sums for SUM/COUNT/AVG, a segment tree for
// sliding MIN/MAX (the approach of the paper's citation [54]).
func (w *Window) emitGroup(out *data.Batch, tuples [][]byte, idxs []int, rc *data.RowCodec, orderCols []int, arena *data.ByteArena) {
	inSchema := w.Child.Schema()
	n := len(idxs)
	nIn := inSchema.Len()

	type funcState struct {
		col    int
		prefix []float64 // prefix sums of values (Sum/Avg)
		counts []int64   // prefix counts of non-NULL values
		tree   *segTree
	}
	states := make([]funcState, len(w.Funcs))
	for fi, f := range w.Funcs {
		if f.Func == WRowNumber || f.Func == WRank {
			continue
		}
		col := inSchema.MustIndex(f.Col)
		states[fi].col = col
		switch f.Func {
		case WSum, WAvg, WCount:
			prefix := make([]float64, n+1)
			counts := make([]int64, n+1)
			for i := 0; i < n; i++ {
				t := tuples[idxs[i]]
				prefix[i+1] = prefix[i]
				counts[i+1] = counts[i]
				if rc.IsNull(t, col) {
					continue
				}
				if rc.Types()[col] == data.Float64 {
					prefix[i+1] += rc.Float(t, col)
				} else {
					prefix[i+1] += float64(rc.Int(t, col))
				}
				counts[i+1]++
			}
			states[fi].prefix = prefix
			states[fi].counts = counts
		case WMin, WMax:
			states[fi].tree = newSegTree(f.Func == WMin, tuples, idxs, rc, col)
		}
	}

	rank := int64(1)
	for r := 0; r < n; r++ {
		if r > 0 && !tupleOrderEqual(rc, tuples[idxs[r-1]], tuples[idxs[r]], orderCols) {
			rank = int64(r) + 1
		}
		appendTupleCols(out, 0, rc, tuples[idxs[r]], nIn, arena)
		for fi, f := range w.Funcs {
			col := &out.Cols[nIn+fi]
			lo, hi := 0, n-1
			switch f.Frame {
			case FrameRunning:
				hi = r
			case FrameRows:
				lo, hi = r+f.Lo, r+f.Hi
				if lo < 0 {
					lo = 0
				}
				if hi > n-1 {
					hi = n - 1
				}
			}
			var v aggVal
			if lo <= hi {
				st := &states[fi]
				switch f.Func {
				case WRowNumber:
					v.i = int64(r + 1)
				case WRank:
					v.i = rank
				case WSum:
					v.f = st.prefix[hi+1] - st.prefix[lo]
				case WCount:
					v.i = st.counts[hi+1] - st.counts[lo]
				case WAvg:
					if cnt := st.counts[hi+1] - st.counts[lo]; cnt > 0 {
						v.f = (st.prefix[hi+1] - st.prefix[lo]) / float64(cnt)
					}
				case WMin, WMax:
					v = st.tree.query(lo, hi+1)
				}
			}
			switch col.Type {
			case data.Float64:
				col.F = append(col.F, v.f)
			case data.String:
				col.S = append(col.S, v.s)
			default:
				col.I = append(col.I, v.i)
			}
			appendNullMark(col, out.Len(), false)
		}
		out.SetLen(out.Len() + 1)
	}
}

func tupleOrderEqual(rc *data.RowCodec, a, b []byte, orderCols []int) bool {
	for _, c := range orderCols {
		if compareTupleField(rc, a, b, c) != 0 {
			return false
		}
	}
	return true
}

// segTree answers MIN/MAX range queries over one window partition in
// O(log n) per frame — the segment tree technique of the paper's window
// function citation [54].
type segTree struct {
	typ   data.Type
	min   bool
	nodes []aggVal
	size  int
}

func newSegTree(min bool, tuples [][]byte, idxs []int, rc *data.RowCodec, col int) *segTree {
	n := len(idxs)
	t := &segTree{typ: rc.Types()[col], min: min, size: n}
	t.nodes = make([]aggVal, 2*n)
	for i := 0; i < n; i++ {
		tup := tuples[idxs[i]]
		v := aggVal{seen: !rc.IsNull(tup, col)}
		if v.seen {
			switch t.typ {
			case data.Float64:
				v.f = rc.Float(tup, col)
			case data.String:
				v.s = rc.Str(tup, col)
			default:
				v.i = rc.Int(tup, col)
			}
		}
		t.nodes[n+i] = v
	}
	for i := n - 1; i > 0; i-- {
		t.nodes[i] = t.combine(t.nodes[2*i], t.nodes[2*i+1])
	}
	return t
}

func (t *segTree) combine(a, b aggVal) aggVal {
	if !a.seen {
		return b
	}
	if !b.seen {
		return a
	}
	better := false
	switch t.typ {
	case data.Float64:
		better = (t.min && b.f < a.f) || (!t.min && b.f > a.f)
	case data.String:
		better = (t.min && b.s < a.s) || (!t.min && b.s > a.s)
	default:
		better = (t.min && b.i < a.i) || (!t.min && b.i > a.i)
	}
	if better {
		return b
	}
	return a
}

// query returns the aggregate over [lo, hi).
func (t *segTree) query(lo, hi int) aggVal {
	var acc aggVal
	lo += t.size
	hi += t.size
	for lo < hi {
		if lo&1 == 1 {
			acc = t.combine(acc, t.nodes[lo])
			lo++
		}
		if hi&1 == 1 {
			hi--
			acc = t.combine(acc, t.nodes[hi])
		}
		lo >>= 1
		hi >>= 1
	}
	return acc
}
