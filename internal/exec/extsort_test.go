package exec

import (
	"sort"
	"testing"

	"github.com/spilly-db/spilly/internal/data"
)

func runExtSort(t *testing.T, ctx *Ctx, n, limit int) *data.Batch {
	t.Helper()
	s := &ExtSort{
		Child: NewScan(ordersTable(n), "okey", "total", "flag"),
		Keys:  []SortKey{{Col: "flag"}, {Col: "total", Desc: true}},
		Limit: limit,
	}
	out, err := Collect(ctx, s)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func checkSorted(t *testing.T, out *data.Batch) {
	t.Helper()
	for r := 1; r < out.Len(); r++ {
		fa, fb := out.Cols[2].S[r-1], out.Cols[2].S[r]
		if fa > fb {
			t.Fatalf("row %d: flag order violated (%q > %q)", r, fa, fb)
		}
		if fa == fb && out.Cols[1].F[r-1] < out.Cols[1].F[r] {
			t.Fatalf("row %d: total not descending within flag", r)
		}
	}
}

func TestExtSortInMemory(t *testing.T) {
	out := runExtSort(t, testCtx(2), 5000, 0)
	if out.Len() != 5000 {
		t.Fatalf("rows = %d", out.Len())
	}
	checkSorted(t, out)
}

func TestExtSortSpilling(t *testing.T) {
	ctx := spillCtx(2, 64)
	out := runExtSort(t, ctx, 20000, 0)
	if out.Len() != 20000 {
		t.Fatalf("rows = %d", out.Len())
	}
	checkSorted(t, out)
	if ctx.Stats.SpilledBytes.Load() == 0 {
		t.Fatal("external sort under 64KB budget did not spill")
	}
	// Every input row must come back exactly once.
	seen := map[int64]bool{}
	for r := 0; r < out.Len(); r++ {
		k := out.Cols[0].I[r]
		if seen[k] {
			t.Fatalf("key %d emitted twice", k)
		}
		seen[k] = true
	}
}

func TestExtSortMatchesInMemorySort(t *testing.T) {
	ref, err := Collect(testCtx(2), &Sort{
		Child: NewScan(ordersTable(8000), "okey", "total", "flag"),
		Keys:  []SortKey{{Col: "flag"}, {Col: "total", Desc: true}},
	})
	if err != nil {
		t.Fatal(err)
	}
	got := runExtSort(t, spillCtx(2, 96), 8000, 0)
	if ref.Len() != got.Len() {
		t.Fatalf("row counts differ: %d vs %d", ref.Len(), got.Len())
	}
	for r := 0; r < ref.Len(); r++ {
		// Keys must agree positionally (ties may reorder the okey within
		// equal (flag,total) pairs, but totals/flags must match exactly).
		if ref.Cols[1].F[r] != got.Cols[1].F[r] || ref.Cols[2].S[r] != got.Cols[2].S[r] {
			t.Fatalf("row %d differs: (%v,%q) vs (%v,%q)", r,
				ref.Cols[1].F[r], ref.Cols[2].S[r], got.Cols[1].F[r], got.Cols[2].S[r])
		}
	}
}

func TestExtSortLimit(t *testing.T) {
	out := runExtSort(t, spillCtx(2, 64), 10000, 25)
	if out.Len() != 25 {
		t.Fatalf("limit: %d rows", out.Len())
	}
	checkSorted(t, out)
}

func TestExtSortOOMWithoutSpill(t *testing.T) {
	ctx := spillCtx(2, 48)
	ctx.Spill = nil
	s := &ExtSort{
		Child: NewScan(ordersTable(20000), "okey"),
		Keys:  []SortKey{{Col: "okey"}},
	}
	if _, err := Collect(ctx, s); err == nil {
		t.Fatal("external sort without spill target survived budget exhaustion")
	}
}

func TestExtSortSingleWorkerOrderTotal(t *testing.T) {
	// With one worker and an int key, the output must be globally sorted
	// ascending over all inputs.
	ctx := spillCtx(1, 64)
	s := &ExtSort{
		Child: NewScan(ordersTable(15000), "okey"),
		Keys:  []SortKey{{Col: "okey"}},
	}
	out, err := Collect(ctx, s)
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 15000 {
		t.Fatalf("rows = %d", out.Len())
	}
	if !sort.SliceIsSorted(out.Cols[0].I, func(a, b int) bool { return out.Cols[0].I[a] < out.Cols[0].I[b] }) {
		t.Fatal("output not globally sorted")
	}
}
