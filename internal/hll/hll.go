// Package hll implements HyperLogLog cardinality sketches (Flajolet et al.).
//
// Spilly's unified join and aggregation operators maintain one sketch per
// worker thread during the materialization phase (paper §4.5/§4.6). The
// sketches serve two purposes: the hash they compute per tuple is reused by
// Umami's adaptive partitioning for free, and after materialization the
// merged sketch sizes the global hash table, avoiding rehashing.
package hll

import "math"

// Precision is the number of index bits. 2^Precision registers; standard
// error is about 1.04 / sqrt(2^Precision) ≈ 1.6% at 12.
const Precision = 12

const numRegisters = 1 << Precision

// Sketch is a HyperLogLog cardinality estimator. The zero value is NOT
// ready; use New. Sketches are not safe for concurrent use — the engine
// keeps one per worker and merges at the end, as the paper prescribes.
type Sketch struct {
	registers [numRegisters]uint8
}

// New returns an empty sketch.
func New() *Sketch {
	return &Sketch{}
}

// Add records a pre-computed 64-bit hash of an element. Using the hash
// directly (rather than the element) lets operators share one hash
// computation between the sketch and Umami partitioning.
func (s *Sketch) Add(hash uint64) {
	// Register index: low Precision bits. Rank: leading zeros of the rest.
	// Umami partitioning consumes the hash *prefix* (high bits), so the
	// sketch deliberately consumes the *suffix* to stay independent.
	idx := hash & (numRegisters - 1)
	w := hash>>Precision | 1<<(64-Precision) // ensure termination
	rank := uint8(1)
	for w&1 == 0 {
		rank++
		w >>= 1
	}
	if rank > s.registers[idx] {
		s.registers[idx] = rank
	}
}

// Merge folds other into s (register-wise max). Both must use the same
// precision, which is a package constant, so merging is always valid.
func (s *Sketch) Merge(other *Sketch) {
	for i, r := range other.registers {
		if r > s.registers[i] {
			s.registers[i] = r
		}
	}
}

// Reset clears the sketch for reuse.
func (s *Sketch) Reset() {
	s.registers = [numRegisters]uint8{}
}

// Estimate returns the estimated number of distinct elements added.
func (s *Sketch) Estimate() uint64 {
	m := float64(numRegisters)
	var sum float64
	var zeros int
	for _, r := range s.registers {
		sum += 1 / float64(uint64(1)<<r)
		if r == 0 {
			zeros++
		}
	}
	alpha := 0.7213 / (1 + 1.079/m)
	est := alpha * m * m / sum
	// Small-range correction (linear counting).
	if est <= 2.5*m && zeros > 0 {
		est = m * math.Log(m/float64(zeros))
	}
	if est < 0 {
		est = 0
	}
	return uint64(est + 0.5)
}
