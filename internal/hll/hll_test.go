package hll

import (
	"math"
	"testing"

	"github.com/spilly-db/spilly/internal/xhash"
)

func estimateOf(n int, seed uint64) uint64 {
	s := New()
	for i := 0; i < n; i++ {
		s.Add(xhash.U64(uint64(i), seed))
	}
	return s.Estimate()
}

func TestEmpty(t *testing.T) {
	if got := New().Estimate(); got != 0 {
		t.Fatalf("empty sketch estimate = %d, want 0", got)
	}
}

func TestSmallExact(t *testing.T) {
	// Linear counting should be near-exact for tiny cardinalities.
	for _, n := range []int{1, 2, 5, 10, 100} {
		got := estimateOf(n, 1)
		if math.Abs(float64(got)-float64(n)) > math.Max(2, 0.05*float64(n)) {
			t.Errorf("n=%d: estimate %d too far off", n, got)
		}
	}
}

func TestErrorBound(t *testing.T) {
	// Standard error at precision 12 is ~1.6%; allow 4 sigma across seeds.
	for _, n := range []int{1000, 10000, 100000, 1000000} {
		for seed := uint64(0); seed < 3; seed++ {
			got := estimateOf(n, seed)
			relErr := math.Abs(float64(got)-float64(n)) / float64(n)
			if relErr > 0.065 {
				t.Errorf("n=%d seed=%d: estimate %d, rel err %.3f > 0.065", n, seed, got, relErr)
			}
		}
	}
}

func TestDuplicatesDoNotInflate(t *testing.T) {
	s := New()
	for rep := 0; rep < 10; rep++ {
		for i := 0; i < 1000; i++ {
			s.Add(xhash.U64(uint64(i), 9))
		}
	}
	got := s.Estimate()
	if got > 1100 || got < 900 {
		t.Fatalf("estimate with duplicates = %d, want about 1000", got)
	}
}

func TestMergeEqualsUnion(t *testing.T) {
	a, b, u := New(), New(), New()
	for i := 0; i < 5000; i++ {
		h := xhash.U64(uint64(i), 2)
		a.Add(h)
		u.Add(h)
	}
	for i := 2500; i < 10000; i++ {
		h := xhash.U64(uint64(i), 2)
		b.Add(h)
		u.Add(h)
	}
	a.Merge(b)
	if a.Estimate() != u.Estimate() {
		t.Fatalf("merged estimate %d != union estimate %d", a.Estimate(), u.Estimate())
	}
	relErr := math.Abs(float64(a.Estimate())-10000) / 10000
	if relErr > 0.065 {
		t.Fatalf("union estimate %d, rel err %.3f", a.Estimate(), relErr)
	}
}

func TestReset(t *testing.T) {
	s := New()
	for i := 0; i < 1000; i++ {
		s.Add(xhash.U64(uint64(i), 3))
	}
	s.Reset()
	if got := s.Estimate(); got != 0 {
		t.Fatalf("after Reset estimate = %d, want 0", got)
	}
}

func BenchmarkAdd(b *testing.B) {
	s := New()
	for i := 0; i < b.N; i++ {
		s.Add(xhash.U64(uint64(i), 0))
	}
}
