package pages

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"time"
)

// ErrAdmissionTimeout is returned by Governor.Admit when a query waited out
// its admission timeout without a grant becoming available.
var ErrAdmissionTimeout = errors.New("admission queue timeout")

// Governor owns an engine-wide memory budget and hands each admitted query a
// grant carved from it. A single query on an idle engine receives the full
// remaining budget — preserving single-query behavior exactly — while
// concurrent queries share: each admission takes half of what remains, never
// less than the configured floor. Queries that cannot be admitted (less than
// a floor's worth of memory is free) queue FIFO until running queries
// release their grants; Admit respects both a timeout and the caller's
// context, so a canceled query leaves the queue immediately with its slot
// released.
//
// The Governor only tracks grants; per-query enforcement stays with the
// per-query Budget each grant is used to size.
type Governor struct {
	total int64
	floor int64

	mu      sync.Mutex
	granted int64
	active  int
	waiters []*govWaiter

	// cacheReserved is memory rented out to the result cache (ReserveCache).
	// It is subtracted from admission headroom exactly like granted bytes,
	// but the cache is a strictly lower-priority tenant: reservations are
	// refused while queries queue, and an admission shortfall triggers the
	// pressure callback asking the cache to surrender memory before the
	// query is queued.
	cacheReserved int64
	pressure      func(need int64)

	admitted  atomic.Int64
	timeouts  atomic.Int64
	waitNanos atomic.Int64
}

// govWaiter is one queued admission request. The grant channel is buffered
// so a releaser can hand off without blocking; an abandoning waiter drains
// it and returns any grant it finds.
type govWaiter struct {
	ch chan *Grant
}

// Grant is one query's share of the governed budget. Release returns it;
// Release is idempotent and safe to call from teardown paths that may run
// more than once.
type Grant struct {
	g        *Governor
	bytes    int64
	released atomic.Bool
}

// Bytes returns the grant's size.
func (g *Grant) Bytes() int64 {
	if g == nil {
		return 0
	}
	return g.bytes
}

// Release returns the grant to the governor and wakes queued admissions that
// now fit. Idempotent.
func (g *Grant) Release() {
	if g == nil || g.released.Swap(true) {
		return
	}
	g.g.release(g.bytes)
}

// NewGovernor returns a governor over total bytes of memory with the given
// per-query admission floor. The floor is clamped to [1, total].
func NewGovernor(total, floor int64) *Governor {
	if floor < 1 {
		floor = 1
	}
	if floor > total {
		floor = total
	}
	return &Governor{total: total, floor: floor}
}

// Total returns the governed budget.
func (g *Governor) Total() int64 { return g.total }

// Floor returns the minimum admission grant.
func (g *Governor) Floor() int64 { return g.floor }

// Admit blocks until the query receives a memory grant, the timeout elapses
// (ErrAdmissionTimeout), or ctx is done (ctx.Err()). timeout <= 0 means no
// timeout. The returned wait is how long admission took, for stats.
func (g *Governor) Admit(ctx context.Context, timeout time.Duration) (*Grant, time.Duration, error) {
	start := time.Now()
	g.mu.Lock()
	if len(g.waiters) == 0 {
		if grant := g.grantLocked(g.active > 0); grant != nil {
			g.mu.Unlock()
			g.admitted.Add(1)
			return grant, 0, nil
		}
		// Shortfall. Before queueing, ask the result cache (if any) to
		// surrender enough reservation to cover a floor-sized grant, then
		// retry once. The callback runs outside g.mu — it calls back into
		// ReleaseCache — so a racing reservation can steal the freed
		// memory; the retry is best-effort and the queue below is the
		// backstop.
		if pressure, need := g.pressure, g.floor-(g.total-g.granted-g.cacheReserved); pressure != nil && need > 0 && g.cacheReserved > 0 {
			g.mu.Unlock()
			pressure(need)
			g.mu.Lock()
			if len(g.waiters) == 0 {
				if grant := g.grantLocked(g.active > 0); grant != nil {
					g.mu.Unlock()
					g.admitted.Add(1)
					return grant, 0, nil
				}
			}
		}
	}
	w := &govWaiter{ch: make(chan *Grant, 1)}
	g.waiters = append(g.waiters, w)
	g.mu.Unlock()

	var timer <-chan time.Time
	if timeout > 0 {
		t := time.NewTimer(timeout)
		defer t.Stop()
		timer = t.C
	}
	var done <-chan struct{}
	if ctx != nil {
		done = ctx.Done()
	}
	select {
	case grant := <-w.ch:
		wait := time.Since(start)
		g.admitted.Add(1)
		g.waitNanos.Add(int64(wait))
		return grant, wait, nil
	case <-timer:
		g.abandon(w)
		g.timeouts.Add(1)
		return nil, time.Since(start), ErrAdmissionTimeout
	case <-done:
		g.abandon(w)
		return nil, time.Since(start), ctx.Err()
	}
}

// grantLocked computes and books an immediate grant, or returns nil when
// less than a floor's worth of budget is free. When share is true the grant
// takes half of what is free (never below the floor) so concurrent queries
// converge toward an even split instead of the first claiming everything; a
// lone query gets the full remainder. Caller holds g.mu.
func (g *Governor) grantLocked(share bool) *Grant {
	avail := g.total - g.granted - g.cacheReserved
	if avail < g.floor {
		return nil
	}
	size := avail
	if share {
		if size = avail / 2; size < g.floor {
			size = g.floor
		}
	}
	g.granted += size
	g.active++
	return &Grant{g: g, bytes: size}
}

// release returns bytes to the pool and admits queued waiters in FIFO order
// while grants fit.
func (g *Governor) release(bytes int64) {
	g.mu.Lock()
	g.granted -= bytes
	g.active--
	g.wakeLocked()
	g.mu.Unlock()
}

// wakeLocked admits queued waiters in FIFO order while grants fit. Caller
// holds g.mu.
func (g *Governor) wakeLocked() {
	for len(g.waiters) > 0 {
		share := g.active > 0 || len(g.waiters) > 1
		grant := g.grantLocked(share)
		if grant == nil {
			break
		}
		w := g.waiters[0]
		g.waiters = g.waiters[1:]
		w.ch <- grant // buffered; never blocks
	}
}

// SetPressure registers the callback invoked (without g.mu held) when an
// admission falls short while the cache holds a reservation. need is the
// shortfall in bytes; the callback should call ReleaseCache (directly or
// via cache eviction) for at least that much if it can.
func (g *Governor) SetPressure(fn func(need int64)) {
	g.mu.Lock()
	g.pressure = fn
	g.mu.Unlock()
}

// ReserveCache rents bytes of idle headroom to the result cache. The
// reservation is refused (returns false) when queries are queued for
// admission or when taking it would leave less than one admission floor
// free — the cache never starves live queries; it only borrows what
// admission wasn't using.
func (g *Governor) ReserveCache(bytes int64) bool {
	if bytes <= 0 {
		return true
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	if len(g.waiters) > 0 {
		return false
	}
	if g.total-g.granted-g.cacheReserved-bytes < g.floor {
		return false
	}
	g.cacheReserved += bytes
	return true
}

// ReleaseCache returns bytes of cache reservation and wakes any queued
// admissions that now fit.
func (g *Governor) ReleaseCache(bytes int64) {
	if bytes <= 0 {
		return
	}
	g.mu.Lock()
	g.cacheReserved -= bytes
	if g.cacheReserved < 0 {
		panic("pages: cache reservation released below zero")
	}
	g.wakeLocked()
	g.mu.Unlock()
}

// CacheReserved returns the bytes currently reserved by the result cache.
func (g *Governor) CacheReserved() int64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.cacheReserved
}

// abandon removes w from the queue after a timeout or cancellation. If a
// releaser granted w concurrently, the grant is taken back.
func (g *Governor) abandon(w *govWaiter) {
	g.mu.Lock()
	for i, q := range g.waiters {
		if q == w {
			g.waiters = append(g.waiters[:i], g.waiters[i+1:]...)
			g.mu.Unlock()
			return
		}
	}
	g.mu.Unlock()
	// Not queued: a grant raced our abandonment. Return it.
	select {
	case grant := <-w.ch:
		grant.Release()
	default:
	}
}

// GovernorStats is a snapshot of admission state and totals.
type GovernorStats struct {
	Total         int64 // governed budget in bytes
	Granted       int64 // bytes currently granted
	CacheReserved int64 // bytes rented to the result cache
	Active        int   // queries currently holding a grant
	Queued        int   // queries waiting for admission
	// Cumulative totals.
	Admitted  int64         // grants handed out
	Timeouts  int64         // admissions that timed out
	WaitTotal time.Duration // total time admitted queries spent queued
}

// Stats returns a snapshot of the governor's state.
func (g *Governor) Stats() GovernorStats {
	g.mu.Lock()
	s := GovernorStats{
		Total:         g.total,
		Granted:       g.granted,
		CacheReserved: g.cacheReserved,
		Active:        g.active,
		Queued:        len(g.waiters),
	}
	g.mu.Unlock()
	s.Admitted = g.admitted.Load()
	s.Timeouts = g.timeouts.Load()
	s.WaitTotal = time.Duration(g.waitNanos.Load())
	return s
}

// Outstanding returns the bytes currently granted (0 when every admitted
// query has released). Tests use it to assert balance.
func (g *Governor) Outstanding() int64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.granted
}
