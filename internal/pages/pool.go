package pages

import (
	"fmt"
	"sync/atomic"
)

// Budget tracks page memory allocated across all worker threads of an
// operator (or of the whole engine). Umami consults the budget on every page
// allocation: once it is exhausted, threads switch to spilling full pages
// instead of allocating new ones (paper §4.2, "Deciding whether to spill").
//
// All methods are safe for concurrent use.
type Budget struct {
	limit int64 // bytes; 0 means unlimited
	used  atomic.Int64
}

// NewBudget returns a budget of limit bytes. limit <= 0 means unlimited.
func NewBudget(limit int64) *Budget {
	if limit < 0 {
		limit = 0
	}
	return &Budget{limit: limit}
}

// Limit returns the configured limit in bytes (0 = unlimited).
func (b *Budget) Limit() int64 { return b.limit }

// Used returns the bytes currently accounted.
func (b *Budget) Used() int64 { return b.used.Load() }

// TryReserve reserves n bytes if the budget allows it.
func (b *Budget) TryReserve(n int64) bool {
	if b == nil {
		return true
	}
	for {
		cur := b.used.Load()
		if b.limit > 0 && cur+n > b.limit {
			return false
		}
		if b.used.CompareAndSwap(cur, cur+n) {
			return true
		}
	}
}

// Reserve reserves n bytes unconditionally (used for the bounded page pools
// themselves, which must exist for spilling to make progress).
func (b *Budget) Reserve(n int64) {
	if b != nil {
		b.used.Add(n)
	}
}

// Release returns n bytes to the budget.
func (b *Budget) Release(n int64) {
	if b == nil {
		return
	}
	if b.used.Add(-n) < 0 {
		panic(fmt.Sprintf("pages: budget released below zero (by %d)", n))
	}
}

// Exhausted reports whether the budget has no room for one more page of the
// given size. This is the per-allocation spill trigger.
func (b *Budget) Exhausted(pageSize int) bool {
	if b == nil || b.limit <= 0 {
		return false
	}
	return b.used.Load()+int64(pageSize) > b.limit
}

// Pool is a thread-local free list of pages. Spilling buffers draw clean
// pages from the pool while full ones are written out asynchronously
// (paper Listing 2); the pool's fixed size bounds per-thread memory during
// spilling regardless of input size.
//
// Pool is not safe for concurrent use.
type Pool struct {
	pageSize int
	fixed    int // fixed tuple size for pages from this pool; 0 = slotted
	free     []*Page
	budget   *Budget
	created  int
	closed   int
}

// NewPool returns a pool creating pages of pageSize bytes. If fixedTupleSize
// is nonzero all pages use the fixed layout. The budget, if non-nil, is
// charged for every page the pool creates and credited when pages are
// discarded via Discard.
func NewPool(pageSize, fixedTupleSize int, budget *Budget) *Pool {
	return &Pool{pageSize: pageSize, fixed: fixedTupleSize, budget: budget}
}

// PageSize returns the size of pages this pool manages.
func (p *Pool) PageSize() int { return p.pageSize }

// Get returns a clean page, reusing a freed one when available. It charges
// the budget for newly created pages but never fails: budget pressure is
// handled by the caller deciding to spill, not by allocation failure.
func (p *Pool) Get() *Page {
	if n := len(p.free); n > 0 {
		pg := p.free[n-1]
		p.free = p.free[:n-1]
		pg.Reset()
		return pg
	}
	p.budget.Reserve(int64(p.pageSize))
	p.created++
	if p.fixed != 0 {
		return NewFixed(p.pageSize, p.fixed)
	}
	return New(p.pageSize)
}

// Put returns a page to the free list for reuse. The budget is unaffected:
// the memory is still held.
func (p *Pool) Put(pg *Page) {
	if pg.Size() != p.pageSize {
		panic("pages: returning foreign-size page to pool")
	}
	p.free = append(p.free, pg)
}

// Discard drops a page entirely, releasing its budget share.
func (p *Pool) Discard(pg *Page) {
	p.budget.Release(int64(pg.Size()))
}

// Close drops every page on the free list and releases its budget share.
// Buffers call it after their last page retires so a finished operator's
// clean pages stop counting against the query budget — without Close the
// free list would hold its reservation until the pool itself is collected.
// The pool stays usable after Close (Get simply allocates again).
func (p *Pool) Close() {
	for _, pg := range p.free {
		p.budget.Release(int64(pg.Size()))
	}
	p.closed += len(p.free)
	p.free = nil
}

// FreePages returns the number of pages currently on the free list.
func (p *Pool) FreePages() int { return len(p.free) }

// Created returns the number of pages this pool has ever allocated.
func (p *Pool) Created() int { return p.created }

// Closed returns the number of clean pages retired by Close — pages whose
// budget reservation was returned because no tuple referenced them.
func (p *Pool) Closed() int { return p.closed }
