package pages

import (
	"errors"
	"testing"
)

func TestFrameRoundTrip(t *testing.T) {
	payload := []byte("some compressed spill page bytes")
	b := AppendFrame(nil, 3, 17, payload)
	if len(b) != FrameSize+len(payload) {
		t.Fatalf("framed length %d", len(b))
	}
	got, err := VerifyFrame(b, 3, 17)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(payload) {
		t.Fatal("payload mangled")
	}
	// part < 0 skips the partition check but still verifies everything else.
	if _, err := VerifyFrame(b, -1, 17); err != nil {
		t.Fatalf("part -1 should skip partition check: %v", err)
	}
	// Trailing block padding after the payload is ignored.
	padded := append(append([]byte(nil), b...), make([]byte, 100)...)
	if _, err := VerifyFrame(padded, 3, 17); err != nil {
		t.Fatalf("padded frame: %v", err)
	}
}

func TestFrameDetectsDamage(t *testing.T) {
	payload := make([]byte, 500)
	for i := range payload {
		payload[i] = byte(i)
	}
	fresh := func() []byte { return AppendFrame(nil, 1, 42, payload) }

	cases := []struct {
		name   string
		mutate func(b []byte) ([]byte, int, uint32)
	}{
		{"payload bit flip", func(b []byte) ([]byte, int, uint32) {
			b[FrameSize+123] ^= 0x10
			return b, 1, 42
		}},
		{"header bit flip", func(b []byte) ([]byte, int, uint32) {
			b[2] ^= 0x01
			return b, 1, 42
		}},
		{"wrong seq (stale read)", func(b []byte) ([]byte, int, uint32) {
			return b, 1, 43
		}},
		{"wrong partition (misdirected)", func(b []byte) ([]byte, int, uint32) {
			return b, 2, 42
		}},
		{"torn tail", func(b []byte) ([]byte, int, uint32) {
			for i := len(b) / 2; i < len(b); i++ {
				b[i] = 0
			}
			return b, 1, 42
		}},
		{"truncated", func(b []byte) ([]byte, int, uint32) {
			return b[:FrameSize-1], 1, 42
		}},
		{"zeroed block", func(b []byte) ([]byte, int, uint32) {
			for i := range b {
				b[i] = 0
			}
			return b, 1, 42
		}},
	}
	for _, tc := range cases {
		b, part, seq := tc.mutate(fresh())
		_, err := VerifyFrame(b, part, seq)
		var fe *FrameError
		if err == nil || !errors.As(err, &fe) {
			t.Fatalf("%s: want FrameError, got %v", tc.name, err)
		}
	}
}

func TestFrameChecksumSeedBindsSeq(t *testing.T) {
	// Two frames with identical payloads but different seqs must not have
	// interchangeable checksums — a stale read that serves the other frame
	// wholesale is caught even if the seq field were also stale-consistent.
	payload := []byte("identical payload")
	a := AppendFrame(nil, 0, 1, payload)
	b := AppendFrame(nil, 0, 2, payload)
	if string(a[16:24]) == string(b[16:24]) {
		t.Fatal("checksums not bound to sequence number")
	}
}

func TestFrameEmptyPayload(t *testing.T) {
	b := AppendFrame(nil, 0, 9, nil)
	p, err := VerifyFrame(b, 0, 9)
	if err != nil || len(p) != 0 {
		t.Fatalf("empty payload: %v len=%d", err, len(p))
	}
}
