package pages

import (
	"encoding/binary"
	"fmt"

	"github.com/spilly-db/spilly/internal/xhash"
)

// Spill page frames.
//
// Spilled pages live on a raw block device with no filesystem underneath,
// so nothing below the engine detects bit rot, torn writes, or misdirected
// reads — a corrupted page would decompress (or not) into wrong tuples and
// flow silently into results. When spill integrity is enabled, every page
// payload handed to the spill writer is wrapped in a small frame:
//
//	offset  size  field
//	0       4     magic   0x53504C46 ("SPLF")
//	4       4     seq     engine-unique page sequence number
//	8       4     part    owning partition id (+1; 0 = unpartitioned)
//	12      4     len     payload length in bytes
//	16      8     sum     xhash64(payload, seed=seq)
//
// The checksum seed is the sequence number, so two identical payloads
// written as different pages still carry different sums — a stale read
// that serves a perfectly valid *other* frame is caught by the seq check
// first and by the sum even if an attacker-grade coincidence matched seq.
// Verification happens in the readback cursors before any byte reaches a
// decompressor or consumer.

// FrameSize is the fixed frame header length in bytes.
const FrameSize = 24

// frameMagic marks the start of a spill page frame ("SPLF").
const frameMagic = 0x53504C46

// AppendFrame appends a frame header followed by payload to buf and
// returns the extended slice. part is the owning partition (-1 for
// unpartitioned spill); seq must be unique per engine run.
func AppendFrame(buf []byte, part int, seq uint32, payload []byte) []byte {
	var h [FrameSize]byte
	binary.LittleEndian.PutUint32(h[0:], frameMagic)
	binary.LittleEndian.PutUint32(h[4:], seq)
	binary.LittleEndian.PutUint32(h[8:], uint32(part+1))
	binary.LittleEndian.PutUint32(h[12:], uint32(len(payload)))
	binary.LittleEndian.PutUint64(h[16:], xhash.Bytes(payload, uint64(seq)))
	buf = append(buf, h[:]...)
	return append(buf, payload...)
}

// FrameError reports a spill frame that failed verification. It is the
// signal that the stored page differs from what the writer framed — bit
// rot, a torn write, or a misdirected read — and that reconstruction
// should be attempted before failing the query.
type FrameError struct {
	Reason string
	Part   int    // partition the reader expected
	Seq    uint32 // sequence number the reader expected
}

// Error implements error.
func (e *FrameError) Error() string {
	return fmt.Sprintf("pages: spill frame part %d seq %d: %s", e.Part, e.Seq, e.Reason)
}

// VerifyFrame checks the frame at the start of b against the slot identity
// the reader expects and returns the enclosed payload. part < 0 skips the
// partition check (readers that don't know the partition yet). The payload
// aliases b; callers must copy if they outlive the block buffer.
func VerifyFrame(b []byte, part int, seq uint32) ([]byte, error) {
	fail := func(format string, args ...any) ([]byte, error) {
		return nil, &FrameError{Reason: fmt.Sprintf(format, args...), Part: part, Seq: seq}
	}
	if len(b) < FrameSize {
		return fail("short frame: %d bytes", len(b))
	}
	if m := binary.LittleEndian.Uint32(b[0:]); m != frameMagic {
		return fail("bad magic %#x", m)
	}
	if s := binary.LittleEndian.Uint32(b[4:]); s != seq {
		return fail("sequence mismatch: stored %d", s)
	}
	if p := int(binary.LittleEndian.Uint32(b[8:])) - 1; part >= 0 && p != part {
		return fail("partition mismatch: stored %d", p)
	}
	n := int(binary.LittleEndian.Uint32(b[12:]))
	if n < 0 || FrameSize+n > len(b) {
		return fail("payload length %d exceeds block", n)
	}
	payload := b[FrameSize : FrameSize+n]
	want := binary.LittleEndian.Uint64(b[16:])
	if got := xhash.Bytes(payload, uint64(seq)); got != want {
		return fail("checksum mismatch: stored %016x computed %016x", want, got)
	}
	return payload, nil
}
