package pages

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSlottedAppendAndRead(t *testing.T) {
	p := New(4096)
	tuples := [][]byte{
		[]byte("alpha"), []byte(""), []byte("a much longer tuple with padding"),
		{0, 1, 2, 3}, []byte("z"),
	}
	for _, tup := range tuples {
		if _, ok := p.Append(tup); !ok {
			t.Fatalf("append of %q failed unexpectedly", tup)
		}
	}
	if p.Tuples() != len(tuples) {
		t.Fatalf("Tuples() = %d, want %d", p.Tuples(), len(tuples))
	}
	for i, want := range tuples {
		if got := p.Tuple(i); !bytes.Equal(got, want) {
			t.Fatalf("tuple %d = %q, want %q", i, got, want)
		}
	}
}

func TestFixedAppendAndRead(t *testing.T) {
	p := NewFixed(1024, 8)
	for i := 0; i < 10; i++ {
		tup := []byte{byte(i), 0, 0, 0, 0, 0, 0, byte(i)}
		if _, ok := p.Append(tup); !ok {
			t.Fatalf("append %d failed", i)
		}
	}
	for i := 0; i < 10; i++ {
		got := p.Tuple(i)
		if got[0] != byte(i) || got[7] != byte(i) {
			t.Fatalf("tuple %d corrupted: %v", i, got)
		}
	}
}

func TestAppendUntilFull(t *testing.T) {
	p := New(512)
	tup := make([]byte, 60)
	n := 0
	for {
		if _, ok := p.Append(tup); !ok {
			break
		}
		n++
	}
	if n == 0 {
		t.Fatal("no tuple fit on a 512-byte page")
	}
	// Page must reject further tuples but keep existing ones intact.
	if p.HasSpace(60) {
		t.Fatal("HasSpace true after Append returned false")
	}
	if p.Tuples() != n {
		t.Fatalf("tuple count changed after full: %d != %d", p.Tuples(), n)
	}
}

func TestFixedFullBoundary(t *testing.T) {
	// Page with exact space for 4 tuples of 100 bytes after the header.
	p := NewFixed(headerSize+400, 100)
	for i := 0; i < 4; i++ {
		if _, ok := p.Append(make([]byte, 100)); !ok {
			t.Fatalf("tuple %d should fit", i)
		}
	}
	if _, ok := p.Append(make([]byte, 100)); ok {
		t.Fatal("5th tuple should not fit")
	}
}

func TestAllocInPlace(t *testing.T) {
	p := New(1024)
	dst, ok := p.Alloc(5)
	if !ok {
		t.Fatal("alloc failed")
	}
	copy(dst, "hello")
	if got := p.Tuple(0); string(got) != "hello" {
		t.Fatalf("in-place tuple = %q", got)
	}
}

func TestSealLoadRoundTripSlotted(t *testing.T) {
	p := New(2048)
	var want [][]byte
	rng := rand.New(rand.NewSource(7))
	for {
		tup := make([]byte, rng.Intn(50))
		rng.Read(tup)
		if _, ok := p.Append(tup); !ok {
			break
		}
		want = append(want, tup)
	}
	block := p.Seal()
	got, err := Load(block)
	if err != nil {
		t.Fatal(err)
	}
	if got.Tuples() != len(want) {
		t.Fatalf("loaded %d tuples, want %d", got.Tuples(), len(want))
	}
	for i, w := range want {
		if !bytes.Equal(got.Tuple(i), w) {
			t.Fatalf("tuple %d mismatch after round trip", i)
		}
	}
}

func TestSealLoadRoundTripFixed(t *testing.T) {
	p := NewFixed(2048, 16)
	for i := 0; i < 20; i++ {
		tup := make([]byte, 16)
		tup[0] = byte(i)
		p.Append(tup)
	}
	got, err := Load(p.Seal())
	if err != nil {
		t.Fatal(err)
	}
	if got.FixedTupleSize() != 16 || got.Tuples() != 20 {
		t.Fatalf("loaded fixed=%d tuples=%d", got.FixedTupleSize(), got.Tuples())
	}
	for i := 0; i < 20; i++ {
		if got.Tuple(i)[0] != byte(i) {
			t.Fatalf("tuple %d mismatch", i)
		}
	}
}

func TestLoadRejectsCorrupt(t *testing.T) {
	cases := map[string][]byte{
		"too short":     make([]byte, 8),
		"zeroed header": make([]byte, 256),
	}
	// dataEnd beyond page size.
	p := New(256)
	p.Append([]byte("x"))
	bad := append([]byte(nil), p.Seal()...)
	bad[4] = 0xff
	bad[5] = 0xff
	cases["dataEnd overflow"] = bad

	// Slot offset pointing backwards.
	p2 := New(256)
	p2.Append([]byte("aa"))
	p2.Append([]byte("bb"))
	bad2 := append([]byte(nil), p2.Seal()...)
	bad2[len(bad2)-slotSize] = 0 // first slot offset -> 0 (< headerSize)
	cases["bad slot offset"] = bad2

	for name, block := range cases {
		if name == "zeroed header" {
			// A zeroed header means dataEnd=0 < headerSize: must fail.
			if _, err := Load(block); err == nil {
				t.Errorf("%s: Load accepted corrupt block", name)
			}
			continue
		}
		if _, err := Load(block); err == nil {
			t.Errorf("%s: Load accepted corrupt block", name)
		}
	}
}

func TestResetClearsState(t *testing.T) {
	p := New(512)
	p.Append([]byte("data"))
	p.Part = 3
	p.Reset()
	if p.Tuples() != 0 || p.Part != PartUnpartitioned || p.UsedBytes() != headerSize {
		t.Fatalf("reset left state: tuples=%d part=%d used=%d", p.Tuples(), p.Part, p.UsedBytes())
	}
}

func TestQuickSlottedRoundTrip(t *testing.T) {
	f := func(raw [][]byte) bool {
		p := New(DefaultPageSize)
		var stored [][]byte
		for _, tup := range raw {
			if len(tup) > 1000 {
				tup = tup[:1000]
			}
			if _, ok := p.Append(tup); ok {
				stored = append(stored, tup)
			}
		}
		loaded, err := Load(p.Seal())
		if err != nil {
			return false
		}
		if loaded.Tuples() != len(stored) {
			return false
		}
		for i, w := range stored {
			if !bytes.Equal(loaded.Tuple(i), w) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestBudget(t *testing.T) {
	b := NewBudget(1000)
	if !b.TryReserve(600) {
		t.Fatal("reserve 600 of 1000 failed")
	}
	if b.TryReserve(500) {
		t.Fatal("reserve beyond limit succeeded")
	}
	if !b.TryReserve(400) {
		t.Fatal("reserve exactly to limit failed")
	}
	b.Release(1000)
	if b.Used() != 0 {
		t.Fatalf("used = %d after full release", b.Used())
	}
}

func TestBudgetUnlimited(t *testing.T) {
	b := NewBudget(0)
	if !b.TryReserve(1 << 40) {
		t.Fatal("unlimited budget refused reservation")
	}
	if b.Exhausted(1 << 20) {
		t.Fatal("unlimited budget reports exhausted")
	}
}

func TestBudgetExhausted(t *testing.T) {
	b := NewBudget(100)
	if b.Exhausted(50) {
		t.Fatal("fresh budget exhausted")
	}
	b.Reserve(60)
	if !b.Exhausted(50) {
		t.Fatal("60+50 > 100 should be exhausted")
	}
	if b.Exhausted(40) {
		t.Fatal("60+40 <= 100 should fit")
	}
}

func TestPoolReuse(t *testing.T) {
	bud := NewBudget(0)
	pool := NewPool(512, 0, bud)
	a := pool.Get()
	a.Append([]byte("x"))
	pool.Put(a)
	c := pool.Get()
	if c != a {
		t.Fatal("pool did not reuse freed page")
	}
	if c.Tuples() != 0 {
		t.Fatal("reused page not reset")
	}
	if pool.Created() != 1 {
		t.Fatalf("created = %d, want 1", pool.Created())
	}
}

func TestPoolBudgetAccounting(t *testing.T) {
	bud := NewBudget(0)
	pool := NewPool(1024, 0, bud)
	p1 := pool.Get()
	_ = pool.Get()
	if bud.Used() != 2048 {
		t.Fatalf("budget used = %d, want 2048", bud.Used())
	}
	pool.Discard(p1)
	if bud.Used() != 1024 {
		t.Fatalf("budget used = %d after discard, want 1024", bud.Used())
	}
}

func BenchmarkAppendSlotted(b *testing.B) {
	p := New(DefaultPageSize)
	tup := make([]byte, 64)
	b.SetBytes(64)
	for i := 0; i < b.N; i++ {
		if _, ok := p.Append(tup); !ok {
			p.Reset()
		}
	}
}

func BenchmarkAppendFixed(b *testing.B) {
	p := NewFixed(DefaultPageSize, 64)
	tup := make([]byte, 64)
	b.SetBytes(64)
	for i := 0; i < b.N; i++ {
		if _, ok := p.Append(tup); !ok {
			p.Reset()
		}
	}
}
