package pages

import (
	"sync"
	"sync/atomic"
)

// Buffer recycling for spill-restore I/O. Partition readers allocate one
// block buffer per read and one decompression buffer per compressed slot;
// during a grace join or a spilled aggregation that is thousands of
// short-lived 16–64 KiB allocations per query. GetBuf/PutBuf route them
// through a process-wide sync.Pool instead, so steady-state restore reuses
// the same handful of buffers.
//
// Safety contract: a buffer must only be returned once its contents are
// provably dead — decoded pages alias read and decompression buffers, so
// the owner (e.g. core.PartitionReader) recycles them only when the
// consumer declares the whole partition consumed.

// minRecycleBuf keeps tiny buffers out of the pool: recycling them saves
// nothing and evicts usefully-sized ones.
const minRecycleBuf = 4 << 10

var (
	bufPool     sync.Pool
	bufRecycled atomic.Int64 // Gets served from the pool
	bufMisses   atomic.Int64 // Gets that had to allocate
)

// GetBuf returns a byte slice of length n, reusing a recycled buffer when
// one with sufficient capacity is available. Contents are undefined.
func GetBuf(n int) []byte {
	if v := bufPool.Get(); v != nil {
		b := *(v.(*[]byte))
		if cap(b) >= n {
			bufRecycled.Add(1)
			return b[:n]
		}
		// Too small for this request; drop it rather than hold both.
	}
	bufMisses.Add(1)
	return make([]byte, n)
}

// PutBuf makes a buffer available for reuse. The caller must not touch b
// afterwards.
func PutBuf(b []byte) {
	if cap(b) < minRecycleBuf {
		return
	}
	b = b[:0]
	bufPool.Put(&b)
}

// RecycleStats returns cumulative GetBuf outcomes (pool hits, allocations)
// for tests and diagnostics.
func RecycleStats() (recycled, misses int64) {
	return bufRecycled.Load(), bufMisses.Load()
}
