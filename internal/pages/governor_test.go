package pages

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

func TestGovernorIdleGetsFullBudget(t *testing.T) {
	g := NewGovernor(1<<20, 1<<16)
	grant, wait, err := g.Admit(context.Background(), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if grant.Bytes() != 1<<20 {
		t.Fatalf("idle grant = %d, want full budget %d", grant.Bytes(), 1<<20)
	}
	if wait != 0 {
		t.Fatalf("idle admission waited %v", wait)
	}
	grant.Release()
	if got := g.Outstanding(); got != 0 {
		t.Fatalf("Outstanding = %d after release, want 0", got)
	}
}

func TestGovernorConcurrentSharesAndQueues(t *testing.T) {
	g := NewGovernor(1<<20, 1<<19) // floor = half: at most two admitted
	g1, _, err := g.Admit(context.Background(), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	// Second admission shares: half of nothing is left after the idle
	// grant took everything, so it must queue until g1 releases.
	done := make(chan *Grant, 1)
	go func() {
		g2, _, err := g.Admit(context.Background(), 5*time.Second)
		if err != nil {
			t.Error(err)
		}
		done <- g2
	}()
	// Queued, not admitted.
	time.Sleep(20 * time.Millisecond)
	if s := g.Stats(); s.Queued != 1 || s.Active != 1 {
		t.Fatalf("stats before release: %+v", s)
	}
	g1.Release()
	g2 := <-done
	if g2.Bytes() < g.Floor() {
		t.Fatalf("woken grant %d below floor %d", g2.Bytes(), g.Floor())
	}
	g2.Release()
	if got := g.Outstanding(); got != 0 {
		t.Fatalf("Outstanding = %d, want 0", got)
	}
}

func TestGovernorFIFOOrder(t *testing.T) {
	g := NewGovernor(100, 100) // serial: every grant is the whole budget
	first, _, err := g.Admit(context.Background(), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	order := make(chan int, 3)
	var wg sync.WaitGroup
	for i := 1; i <= 3; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			grant, _, err := g.Admit(context.Background(), 10*time.Second)
			if err != nil {
				t.Error(err)
				return
			}
			order <- i
			grant.Release()
		}(i)
		// Ensure deterministic queue order.
		for {
			if g.Stats().Queued == i {
				break
			}
			time.Sleep(time.Millisecond)
		}
	}
	first.Release()
	wg.Wait()
	close(order)
	want := 1
	for got := range order {
		if got != want {
			t.Fatalf("admission order: got %d, want %d", got, want)
		}
		want++
	}
	if got := g.Outstanding(); got != 0 {
		t.Fatalf("Outstanding = %d, want 0", got)
	}
}

func TestGovernorAdmissionTimeout(t *testing.T) {
	g := NewGovernor(100, 100)
	grant, _, err := g.Admit(context.Background(), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	_, wait, err := g.Admit(context.Background(), 30*time.Millisecond)
	if !errors.Is(err, ErrAdmissionTimeout) {
		t.Fatalf("err = %v, want ErrAdmissionTimeout", err)
	}
	if wait < 30*time.Millisecond {
		t.Fatalf("timeout reported wait %v", wait)
	}
	if s := g.Stats(); s.Queued != 0 || s.Timeouts != 1 {
		t.Fatalf("stats after timeout: %+v", s)
	}
	grant.Release()
	if got := g.Outstanding(); got != 0 {
		t.Fatalf("Outstanding = %d, want 0", got)
	}
}

func TestGovernorCancelWhileQueued(t *testing.T) {
	g := NewGovernor(100, 100)
	grant, _, err := g.Admit(context.Background(), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		_, _, err := g.Admit(ctx, time.Minute)
		errc <- err
	}()
	for g.Stats().Queued != 1 {
		time.Sleep(time.Millisecond)
	}
	cancel()
	if err := <-errc; !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if s := g.Stats(); s.Queued != 0 {
		t.Fatalf("queue slot not released: %+v", s)
	}
	// The canceled waiter must not have consumed budget: a new admission
	// succeeds immediately once the holder releases.
	grant.Release()
	g2, _, err := g.Admit(context.Background(), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	g2.Release()
	if got := g.Outstanding(); got != 0 {
		t.Fatalf("Outstanding = %d, want 0", got)
	}
}

func TestGovernorGrantReleaseIdempotent(t *testing.T) {
	g := NewGovernor(100, 10)
	grant, _, err := g.Admit(context.Background(), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	grant.Release()
	grant.Release()
	if got := g.Outstanding(); got != 0 {
		t.Fatalf("Outstanding = %d after double release, want 0", got)
	}
	if s := g.Stats(); s.Active != 0 {
		t.Fatalf("Active = %d after double release, want 0", s.Active)
	}
}

// TestGovernorCacheReservation covers the cache-as-tenant contract: the
// reservation comes out of admission headroom, is refused when it would
// squeeze admissions below one floor, and releasing it wakes the queue.
func TestGovernorCacheReservation(t *testing.T) {
	g := NewGovernor(100, 10)
	if !g.ReserveCache(40) {
		t.Fatal("idle governor refused a reservation leaving ample headroom")
	}
	if got := g.CacheReserved(); got != 40 {
		t.Fatalf("CacheReserved = %d, want 40", got)
	}
	// 60 free; reserving 55 would leave 5 < floor.
	if g.ReserveCache(55) {
		t.Fatal("reservation below-floor headroom accepted")
	}
	// A lone admission gets everything but the reservation.
	grant, _, err := g.Admit(context.Background(), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if grant.Bytes() != 60 {
		t.Fatalf("grant = %d, want 60 (total - cacheReserved)", grant.Bytes())
	}
	// With everything granted or reserved, a reservation must be refused.
	if g.ReserveCache(1) {
		t.Fatal("reservation accepted with zero headroom")
	}
	// A queued admission is woken by ReleaseCache.
	errc := make(chan error, 1)
	var got *Grant
	go func() {
		gr, _, err := g.Admit(context.Background(), time.Second)
		got = gr
		errc <- err
	}()
	for g.Stats().Queued != 1 {
		time.Sleep(time.Millisecond)
	}
	if g.ReserveCache(1) {
		t.Fatal("reservation accepted while admissions queue")
	}
	g.ReleaseCache(40)
	if err := <-errc; err != nil {
		t.Fatalf("queued admit after ReleaseCache: %v", err)
	}
	got.Release()
	grant.Release()
	if s := g.Stats(); s.Granted != 0 || s.CacheReserved != 0 {
		t.Fatalf("governor did not drain: %+v", s)
	}
}

// TestGovernorPressureCallback: an admission shortfall while the cache
// holds a reservation must invoke the pressure callback and then succeed
// without queueing when the callback frees enough.
func TestGovernorPressureCallback(t *testing.T) {
	g := NewGovernor(100, 10)
	var asked int64
	g.SetPressure(func(need int64) {
		asked = need
		g.ReleaseCache(need)
	})
	if !g.ReserveCache(85) {
		t.Fatal("reservation refused")
	}
	// First admission takes the remaining 15 headroom without pressure.
	first, _, err := g.Admit(context.Background(), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if asked != 0 {
		t.Fatalf("pressure fired with headroom available (asked=%d)", asked)
	}
	// Second admission finds zero headroom: pressure fires, the cache
	// surrenders, and the retry grants inline (wait == 0 means it never
	// queued).
	grant, wait, err := g.Admit(context.Background(), time.Second)
	if err != nil {
		t.Fatalf("admit under cache pressure: %v", err)
	}
	if wait != 0 {
		t.Fatalf("admission queued (wait=%v); pressure retry should have granted inline", wait)
	}
	if asked < 10 {
		t.Fatalf("pressure asked for %d, want >= floor shortfall of 10", asked)
	}
	grant.Release()
	first.Release()
	g.ReleaseCache(g.CacheReserved())
	if got := g.CacheReserved(); got != 0 {
		t.Fatalf("CacheReserved = %d after drain, want 0", got)
	}
}
