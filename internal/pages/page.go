// Package pages provides the fixed-size page abstraction underlying all
// materialization in the engine (paper §5.3 "Data format").
//
// Tuples are stored row-wise: fixed-size tuples consecutively like an array,
// variable-size tuples with a slotted layout. A page seals into a single
// self-describing block so that spilling a page is a single block write and
// reading it back is a single block read plus header parse — no per-tuple
// I/O, which is the whole point of page-granular spilling on NVMe (§3).
package pages

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// DefaultPageSize is the engine's internal page size. The paper uses 64 KiB
// pages because that is the sweet spot for NVMe array throughput (§6.1).
const DefaultPageSize = 64 << 10

// headerSize is the sealed-page header: tupleCount, dataEnd, fixedSize, flags
// (4 × uint32).
const headerSize = 16

const slotSize = 4 // one uint32 offset per variable-size tuple

// Layout flags.
const (
	flagFixed = 1 << iota
)

// ErrPageCorrupt reports a sealed block whose header is inconsistent.
var ErrPageCorrupt = errors.New("pages: corrupt sealed page")

// Page is a fixed-capacity, row-wise tuple container. It is not safe for
// concurrent use; the engine keeps pages thread-local during materialization.
//
// The backing buffer layout (established by Seal) is:
//
//	[0,16)            header
//	[16, dataEnd)     tuple bytes, growing forward
//	[slotStart, cap)  slot offsets (variable-size layout only), growing backward
type Page struct {
	buf       []byte // len == cap == page size
	dataEnd   int    // write cursor into buf
	slotStart int    // start of the slot array region (== cap(buf) when empty)
	tuples    int
	fixed     int // tuple size for fixed layout; 0 means slotted

	// Part is the partition this page belongs to, managed by Umami's
	// adaptive materialization. Pages written before partitioning was
	// enabled carry PartUnpartitioned.
	Part int
}

// PartUnpartitioned marks pages materialized before partitioning started.
const PartUnpartitioned = -1

// New returns an empty page of the given size using the slotted
// (variable-size tuple) layout.
func New(size int) *Page {
	p := &Page{buf: make([]byte, size)}
	p.Reset()
	return p
}

// NewFixed returns an empty page of the given size holding fixed-size tuples
// of tupleSize bytes each.
func NewFixed(size, tupleSize int) *Page {
	if tupleSize <= 0 || tupleSize > size-headerSize {
		panic(fmt.Sprintf("pages: invalid fixed tuple size %d for page size %d", tupleSize, size))
	}
	p := New(size)
	p.fixed = tupleSize
	return p
}

// Reset clears the page for reuse, keeping its layout mode and buffer.
func (p *Page) Reset() {
	p.dataEnd = headerSize
	p.slotStart = len(p.buf)
	p.tuples = 0
	p.Part = PartUnpartitioned
}

// Size returns the page's total capacity in bytes.
func (p *Page) Size() int { return len(p.buf) }

// Tuples returns the number of tuples stored.
func (p *Page) Tuples() int { return p.tuples }

// FixedTupleSize returns the fixed tuple size, or 0 for the slotted layout.
func (p *Page) FixedTupleSize() int { return p.fixed }

// UsedBytes returns the bytes of payload plus slot array currently in use.
func (p *Page) UsedBytes() int {
	return p.dataEnd + (len(p.buf) - p.slotStart)
}

// HasSpace reports whether a tuple of n bytes fits.
func (p *Page) HasSpace(n int) bool {
	if p.fixed != 0 {
		return p.dataEnd+p.fixed <= len(p.buf)
	}
	return p.dataEnd+n+slotSize <= p.slotStart
}

// Append copies tuple into the page and returns the slice holding the copy,
// or false if the page is full. For fixed-layout pages the tuple must be
// exactly FixedTupleSize bytes.
func (p *Page) Append(tuple []byte) ([]byte, bool) {
	n := len(tuple)
	if p.fixed != 0 {
		if n != p.fixed {
			panic(fmt.Sprintf("pages: tuple size %d on fixed-%d page", n, p.fixed))
		}
		if p.dataEnd+n > len(p.buf) {
			return nil, false
		}
		dst := p.buf[p.dataEnd : p.dataEnd+n]
		copy(dst, tuple)
		p.dataEnd += n
		p.tuples++
		return dst, true
	}
	if p.dataEnd+n+slotSize > p.slotStart {
		return nil, false
	}
	dst := p.buf[p.dataEnd : p.dataEnd+n]
	copy(dst, tuple)
	p.slotStart -= slotSize
	binary.LittleEndian.PutUint32(p.buf[p.slotStart:], uint32(p.dataEnd))
	p.dataEnd += n
	p.tuples++
	return dst, true
}

// Alloc reserves n bytes for a tuple and returns the slice to fill in place,
// or false if the page is full. Operators that assemble tuples field-by-field
// (e.g. the aggregation's in-page groups, §4.6) use this to avoid a copy.
func (p *Page) Alloc(n int) ([]byte, bool) {
	if p.fixed != 0 {
		if n != p.fixed {
			panic(fmt.Sprintf("pages: alloc size %d on fixed-%d page", n, p.fixed))
		}
		if p.dataEnd+n > len(p.buf) {
			return nil, false
		}
		dst := p.buf[p.dataEnd : p.dataEnd+n]
		p.dataEnd += n
		p.tuples++
		return dst, true
	}
	if p.dataEnd+n+slotSize > p.slotStart {
		return nil, false
	}
	dst := p.buf[p.dataEnd : p.dataEnd+n]
	p.slotStart -= slotSize
	binary.LittleEndian.PutUint32(p.buf[p.slotStart:], uint32(p.dataEnd))
	p.dataEnd += n
	p.tuples++
	return dst, true
}

// Tuple returns the i-th tuple. It panics if i is out of range.
func (p *Page) Tuple(i int) []byte {
	if i < 0 || i >= p.tuples {
		panic(fmt.Sprintf("pages: tuple index %d out of range [0,%d)", i, p.tuples))
	}
	if p.fixed != 0 {
		off := headerSize + i*p.fixed
		return p.buf[off : off+p.fixed]
	}
	start := p.slotOffset(i)
	end := p.dataEnd
	if i+1 < p.tuples {
		end = p.slotOffset(i + 1)
	}
	return p.buf[start:end]
}

func (p *Page) slotOffset(i int) int {
	// Slot array grows backward: slot i lives at cap - (i+1)*slotSize.
	pos := len(p.buf) - (i+1)*slotSize
	return int(binary.LittleEndian.Uint32(p.buf[pos:]))
}

// Seal writes the header and returns the full backing block, ready to be
// written to storage (optionally compressed first). The page remains usable
// read-only afterwards.
func (p *Page) Seal() []byte {
	flags := uint32(0)
	if p.fixed != 0 {
		flags |= flagFixed
	}
	binary.LittleEndian.PutUint32(p.buf[0:], uint32(p.tuples))
	binary.LittleEndian.PutUint32(p.buf[4:], uint32(p.dataEnd))
	binary.LittleEndian.PutUint32(p.buf[8:], uint32(p.fixed))
	binary.LittleEndian.PutUint32(p.buf[12:], flags)
	return p.buf
}

// Load re-creates a page view over a sealed block (as produced by Seal).
// The block is aliased, not copied.
func Load(block []byte) (*Page, error) {
	if len(block) < headerSize {
		return nil, ErrPageCorrupt
	}
	tuples := int(binary.LittleEndian.Uint32(block[0:]))
	dataEnd := int(binary.LittleEndian.Uint32(block[4:]))
	fixed := int(binary.LittleEndian.Uint32(block[8:]))
	flags := binary.LittleEndian.Uint32(block[12:])
	p := &Page{buf: block, dataEnd: dataEnd, tuples: tuples, fixed: fixed, Part: PartUnpartitioned}
	if flags&flagFixed == 0 {
		p.fixed = 0
		p.slotStart = len(block) - tuples*slotSize
	} else {
		p.slotStart = len(block)
	}
	if err := p.validate(); err != nil {
		return nil, err
	}
	return p, nil
}

func (p *Page) validate() error {
	if p.dataEnd < headerSize || p.dataEnd > len(p.buf) || p.tuples < 0 || p.slotStart < 0 {
		return ErrPageCorrupt
	}
	if p.fixed != 0 {
		if p.fixed < 0 || headerSize+p.tuples*p.fixed != p.dataEnd {
			return ErrPageCorrupt
		}
		return nil
	}
	if p.slotStart < p.dataEnd {
		return ErrPageCorrupt
	}
	// Slot offsets must be monotonically increasing within the data region.
	prev := headerSize
	for i := 0; i < p.tuples; i++ {
		off := p.slotOffset(i)
		if off < prev || off > p.dataEnd {
			return ErrPageCorrupt
		}
		prev = off
	}
	return nil
}
