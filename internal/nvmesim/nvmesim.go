// Package nvmesim simulates an array of NVMe SSDs with a configurable
// bandwidth/latency timing model.
//
// The paper's testbed is 8× Kioxia CM7-R PCIe 5.0 drives (11 GB/s read,
// 6.2 GB/s write each) driven through io_uring. This reproduction has no
// NVMe hardware, and the published results depend on the *ratio* between
// CPU cost and I/O cost per byte (§4.4), not on absolute gigabytes per
// second. The simulator therefore stores page data in memory and makes
// completions visible only after a modeled delay:
//
//	start   = max(now, channelBusy)
//	busy    = start + size/bandwidth
//	readyAt = busy + latency
//
// Reads and writes occupy independent channels per device (NVMe is full
// duplex), and each device serializes its transfers — keeping many requests
// in flight saturates the modeled bandwidth, exactly the property io_uring
// exploits on real hardware. An engine thread that produces pages faster
// than the array drains them genuinely stalls, so CPU-bound versus I/O-bound
// behavior (Figures 8, 11, 12) emerges from execution rather than from a
// closed-form formula.
package nvmesim

import (
	"errors"
	"sync"
	"sync/atomic"
	"time"
)

// BlockSize is the device block granularity. All offsets and sizes are
// multiples of this, mirroring the 512-byte sectors the paper's compact
// [device, offset, size] encoding relies on (§5.3).
const BlockSize = 512

// DeviceSpec describes one simulated SSD.
type DeviceSpec struct {
	// ReadBandwidth and WriteBandwidth are in bytes per second.
	ReadBandwidth  float64
	WriteBandwidth float64
	// Latency is the fixed per-request latency added after the transfer.
	Latency time.Duration
	// Capacity bounds the spill area in bytes; 0 means unbounded.
	Capacity int64
}

// Scaled returns a copy of the spec with bandwidths multiplied by f.
// The harness uses it to derive laptop-scale profiles from the paper's
// hardware numbers while preserving their shape.
func (s DeviceSpec) Scaled(f float64) DeviceSpec {
	s.ReadBandwidth *= f
	s.WriteBandwidth *= f
	return s
}

// KioxiaCM7 is the paper's per-device microbenchmark result: 11 GB/s read
// and 6.2 GB/s write at 64 KiB pages (§6.1).
var KioxiaCM7 = DeviceSpec{
	ReadBandwidth:  11e9,
	WriteBandwidth: 6.2e9,
	Latency:        100 * time.Microsecond,
}

// Errors returned by the array.
var (
	ErrBadRange    = errors.New("nvmesim: read of unwritten or out-of-bounds range")
	ErrDeviceFull  = errors.New("nvmesim: device spill area full")
	ErrBadDevice   = errors.New("nvmesim: device index out of range")
	ErrUnaligned   = errors.New("nvmesim: offset or size not block-aligned")
	ErrShortBuffer = errors.New("nvmesim: destination buffer shorter than stored data")
)

// device is one simulated SSD.
type device struct {
	spec DeviceSpec

	mu        sync.Mutex
	store     map[int64][]byte // offset -> written block (append-only until Reset)
	readBusy  time.Time        // read channel busy-until
	writeBusy time.Time        // write channel busy-until

	writeCursor  atomic.Int64 // spill high-water mark; the paper's per-SSD counter (§5.1)

	// Spill allocation bookkeeping (lease.go): live extents by offset and
	// the sorted, coalesced free list below the write cursor. allocMu is
	// taken before mu when both are needed.
	allocMu   sync.Mutex
	allocs    map[int64]allocRec
	frees     []extent
	freeBytes int64 // total bytes in frees

	bytesRead    atomic.Int64
	bytesWritten atomic.Int64
	reads        atomic.Int64
	writes       atomic.Int64

	// Fault injection state (fault.go).
	failNext   atomic.Int32 // legacy knob: fail the next N requests
	dead       atomic.Bool  // permanent device failure
	faults     atomic.Pointer[faultState]
	readErrs   atomic.Int64
	writeErrs  atomic.Int64
	spikes     atomic.Int64
	corrupts   atomic.Int64 // silent bit flips applied
	tornWrites atomic.Int64 // writes that persisted only a prefix
	staleReads atomic.Int64 // reads served from the wrong block
}

// Array is a set of simulated SSDs sharing a clock.
type Array struct {
	devices    []*device
	clock      Clock
	liveLeases atomic.Int64 // leases created and not yet freed (lease.go)
}

// New returns an array of n identical devices.
func New(n int, spec DeviceSpec, clock Clock) *Array {
	if clock == nil {
		clock = RealClock{}
	}
	a := &Array{clock: clock}
	for i := 0; i < n; i++ {
		a.devices = append(a.devices, &device{
			spec:  spec,
			store: make(map[int64][]byte),
		})
	}
	return a
}

// NewHeterogeneous returns an array with per-device specs (used for cloud
// instance profiles, §6.9).
func NewHeterogeneous(specs []DeviceSpec, clock Clock) *Array {
	if clock == nil {
		clock = RealClock{}
	}
	a := &Array{clock: clock}
	for _, s := range specs {
		a.devices = append(a.devices, &device{spec: s, store: make(map[int64][]byte)})
	}
	return a
}

// Devices returns the number of devices in the array.
func (a *Array) Devices() int { return len(a.devices) }

// Clock returns the array's clock.
func (a *Array) Clock() Clock { return a.clock }

// Spec returns the spec of device dev.
func (a *Array) Spec(dev int) DeviceSpec { return a.devices[dev].spec }

// AllocSpill reserves size bytes in device dev's spill area without a lease
// and returns the starting offset. Size is rounded up to the block size.
// Unleased allocations live until Reset — the column store uses them for
// permanent table chunks; spill writers allocate through AllocSpillLease so
// query teardown can reclaim exactly its own extents.
func (a *Array) AllocSpill(dev int, size int) (int64, error) {
	return a.AllocSpillLease(dev, size, nil)
}

func alignUp(n int) int {
	return (n + BlockSize - 1) &^ (BlockSize - 1)
}

// Write stores data at offset on device dev and returns the simulated
// completion time. The data is copied at submission, so the caller may reuse
// its buffer immediately — but a realistic engine must not, because on real
// hardware the DMA reads the buffer until completion; the uring layer
// enforces the realistic discipline.
func (a *Array) Write(dev int, offset int64, data []byte) (time.Time, error) {
	if dev < 0 || dev >= len(a.devices) {
		return time.Time{}, ErrBadDevice
	}
	if offset%BlockSize != 0 {
		return time.Time{}, ErrUnaligned
	}
	d := a.devices[dev]
	err, spike, effect := d.injectFault(dev, "write")
	if err != nil {
		return a.clock.Now(), err
	}
	cp := make([]byte, len(data))
	copy(cp, data)
	switch effect.kind {
	case FaultCorrupt:
		// Silent bit rot: flip one deterministic bit of the stored copy.
		if len(cp) > 0 {
			bit := effect.r % uint64(len(cp)*8)
			cp[bit/8] ^= 1 << (bit % 8)
			d.corrupts.Add(1)
		}
	case FaultTorn:
		// Torn write: only the head of the block reached the media; the
		// tail reads back as zeroes. The write still reports success.
		if len(cp) > 1 {
			for i := len(cp) / 2; i < len(cp); i++ {
				cp[i] = 0
			}
			d.tornWrites.Add(1)
		}
	}

	now := a.clock.Now()
	d.mu.Lock()
	d.store[offset] = cp
	start := now
	if d.writeBusy.After(start) {
		start = d.writeBusy
	}
	busy := start.Add(transferTime(len(data), d.spec.WriteBandwidth))
	d.writeBusy = busy
	d.mu.Unlock()

	d.bytesWritten.Add(int64(len(data)))
	d.writes.Add(1)
	return busy.Add(d.spec.Latency).Add(spike), nil
}

// Read copies the block previously written at offset on device dev into dst
// and returns the simulated completion time. dst must be at least as long as
// the stored block; extra bytes are left untouched.
func (a *Array) Read(dev int, offset int64, dst []byte) (time.Time, int, error) {
	if dev < 0 || dev >= len(a.devices) {
		return time.Time{}, 0, ErrBadDevice
	}
	d := a.devices[dev]
	err, spike, effect := d.injectFault(dev, "read")
	if err != nil {
		return a.clock.Now(), 0, err
	}
	d.mu.Lock()
	block, ok := d.store[offset]
	if !ok {
		d.mu.Unlock()
		return time.Time{}, 0, ErrBadRange
	}
	if len(dst) < len(block) {
		d.mu.Unlock()
		return time.Time{}, 0, ErrShortBuffer
	}
	copy(dst, block)
	n := len(block)
	switch effect.kind {
	case FaultCorrupt:
		// Silent read corruption: the transfer "succeeds" with one bit
		// flipped in the returned buffer. The stored block is untouched.
		if n > 0 {
			bit := effect.r % uint64(n*8)
			dst[bit/8] ^= 1 << (bit % 8)
			d.corrupts.Add(1)
		}
	case FaultStale:
		// Misdirected read: serve the nearest other stored block instead
		// of the requested one (deterministic — greatest offset below the
		// target, else smallest above). With no other block written the
		// read degenerates to all-zero garbage.
		stale := d.staleBlockLocked(offset)
		for i := 0; i < n; i++ {
			dst[i] = 0
		}
		copy(dst[:n], stale)
		d.staleReads.Add(1)
	}
	now := a.clock.Now()
	start := now
	if d.readBusy.After(start) {
		start = d.readBusy
	}
	busy := start.Add(transferTime(n, d.spec.ReadBandwidth))
	d.readBusy = busy
	d.mu.Unlock()

	d.bytesRead.Add(int64(n))
	d.reads.Add(1)
	return busy.Add(d.spec.Latency).Add(spike), n, nil
}

// staleBlockLocked picks the block a misdirected read of offset would land
// on: the stored block at the greatest offset below the target, else the
// smallest offset above it, else nil. Both the choice and its contents are
// deterministic for a given store state. Caller holds d.mu.
func (d *device) staleBlockLocked(offset int64) []byte {
	bestBelow, bestAbove := int64(-1), int64(-1)
	for off := range d.store {
		if off == offset {
			continue
		}
		if off < offset {
			if off > bestBelow {
				bestBelow = off
			}
		} else if bestAbove < 0 || off < bestAbove {
			bestAbove = off
		}
	}
	if bestBelow >= 0 {
		return d.store[bestBelow]
	}
	if bestAbove >= 0 {
		return d.store[bestAbove]
	}
	return nil
}

func transferTime(n int, bw float64) time.Duration {
	if bw <= 0 {
		return 0
	}
	return time.Duration(float64(n) / bw * float64(time.Second))
}

// Reset clears all spilled data, allocation bookkeeping, and write cursors.
//
// Deprecated: Reset wipes every query's extents at once and is only safe
// when no query is running — single-query benches that want a pristine array
// between runs. Concurrent execution relies on per-query leases (NewLease)
// whose Free reclaims exactly the owner's extents.
func (a *Array) Reset() {
	for _, d := range a.devices {
		d.allocMu.Lock()
		d.mu.Lock()
		d.store = make(map[int64][]byte)
		d.mu.Unlock()
		d.resetAllocLocked()
		d.allocMu.Unlock()
	}
}

// InjectFailures makes the next n requests on device dev fail (tests).
func (a *Array) InjectFailures(dev, n int) {
	a.devices[dev].failNext.Store(int32(n))
}

// Stats is a snapshot of array-wide I/O counters.
type Stats struct {
	BytesRead    int64
	BytesWritten int64
	SpillBytes   int64 // bytes currently allocated in spill areas
}

// Stats returns cumulative counters summed over all devices.
func (a *Array) Stats() Stats {
	var s Stats
	for _, d := range a.devices {
		s.BytesRead += d.bytesRead.Load()
		s.BytesWritten += d.bytesWritten.Load()
		s.SpillBytes += d.liveSpillBytes()
	}
	return s
}

// liveSpillBytes is the device's currently allocated spill footprint: the
// write cursor minus the free ranges below it.
func (d *device) liveSpillBytes() int64 {
	d.allocMu.Lock()
	n := d.writeCursor.Load() - d.freeBytes
	d.allocMu.Unlock()
	return n
}

// DeviceStats is a snapshot of one device's counters — the per-device
// refinement of Stats, exported for live observability endpoints.
type DeviceStats struct {
	// Cumulative transfer volume and request counts.
	BytesRead    int64
	BytesWritten int64
	Reads        int64
	Writes       int64
	// SpillBytes is the currently allocated (live) spill footprint: the
	// write cursor minus freed ranges awaiting reuse.
	SpillBytes int64
	// ReadBacklog/WriteBacklog approximate queue depth: how far the
	// channel's busy-until horizon lies beyond now (0 when idle). This is
	// the simulator's analogue of an NVMe submission queue backlog.
	ReadBacklog  time.Duration
	WriteBacklog time.Duration
	// Fault counters: injected or organic I/O errors and device death.
	ReadErrors  int64
	WriteErrors int64
	Dead        bool
}

// PerDevice returns a per-device counter snapshot, indexed by device id.
func (a *Array) PerDevice() []DeviceStats {
	now := a.clock.Now()
	out := make([]DeviceStats, len(a.devices))
	for i, d := range a.devices {
		s := DeviceStats{
			BytesRead:    d.bytesRead.Load(),
			BytesWritten: d.bytesWritten.Load(),
			Reads:        d.reads.Load(),
			Writes:       d.writes.Load(),
			SpillBytes:   d.liveSpillBytes(),
			ReadErrors:   d.readErrs.Load(),
			WriteErrors:  d.writeErrs.Load(),
			Dead:         d.dead.Load(),
		}
		d.mu.Lock()
		if d.readBusy.After(now) {
			s.ReadBacklog = d.readBusy.Sub(now)
		}
		if d.writeBusy.After(now) {
			s.WriteBacklog = d.writeBusy.Sub(now)
		}
		d.mu.Unlock()
		out[i] = s
	}
	return out
}

// ChannelBacklogs returns one device's modeled channel backlogs — how far
// its read and write busy-until horizons extend past now. Unlike PerDevice
// it allocates nothing, so the shared I/O scheduler and the metrics
// endpoint can sample it per device on hot paths.
func (a *Array) ChannelBacklogs(dev int) (read, write time.Duration) {
	if dev < 0 || dev >= len(a.devices) {
		return 0, 0
	}
	d := a.devices[dev]
	now := a.clock.Now()
	d.mu.Lock()
	if d.readBusy.After(now) {
		read = d.readBusy.Sub(now)
	}
	if d.writeBusy.After(now) {
		write = d.writeBusy.Sub(now)
	}
	d.mu.Unlock()
	return read, write
}

// MaxWriteBandwidth returns the array's aggregate write bandwidth in
// bytes/sec; used by the harness to report utilization.
func (a *Array) MaxWriteBandwidth() float64 {
	var bw float64
	for _, d := range a.devices {
		bw += d.spec.WriteBandwidth
	}
	return bw
}

// MaxReadBandwidth returns the array's aggregate read bandwidth in bytes/sec.
func (a *Array) MaxReadBandwidth() float64 {
	var bw float64
	for _, d := range a.devices {
		bw += d.spec.ReadBandwidth
	}
	return bw
}
