package nvmesim

import (
	"errors"
	"testing"
	"time"
)

func TestFaultPlanDeterministic(t *testing.T) {
	run := func() (errs int64) {
		a, _ := virtualArray(1)
		a.SetFaultPlan(0, FaultPlan{Seed: 42, WriteErrRate: 0.3})
		for i := 0; i < 200; i++ {
			a.Write(0, int64(i)*BlockSize, make([]byte, 64))
		}
		return a.FaultStats(0).WriteErrors
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("same seed produced different fault counts: %d vs %d", a, b)
	}
	if a == 0 || a == 200 {
		t.Fatalf("30%% fault rate produced %d/200 errors", a)
	}
}

func TestFaultPlanTransientErrors(t *testing.T) {
	a, _ := virtualArray(1)
	a.SetFaultPlan(0, FaultPlan{Seed: 7, WriteErrRate: 1.0})
	_, err := a.Write(0, 0, make([]byte, 64))
	if !IsTransient(err) {
		t.Fatalf("want transient error, got %v", err)
	}
	var de *DeviceError
	if !errors.As(err, &de) || de.Device != 0 || de.Op != "write" {
		t.Fatalf("want DeviceError{0, write}, got %v", err)
	}
	if IsDeviceDead(err) {
		t.Fatal("transient error classified as device death")
	}
	// Reads are unaffected by the write rate.
	a.Write(0, 0, make([]byte, 64)) // may fail; store something first
	a.SetFaultPlan(0, FaultPlan{})
	a.Write(0, 0, make([]byte, 64))
	a.SetFaultPlan(0, FaultPlan{Seed: 7, WriteErrRate: 1.0})
	if _, _, err := a.Read(0, 0, make([]byte, 64)); err != nil {
		t.Fatalf("read hit write-only fault plan: %v", err)
	}
}

func TestFaultScript(t *testing.T) {
	a, _ := virtualArray(1)
	a.SetFaultPlan(0, FaultPlan{Script: map[int64]FaultKind{2: FaultTransient}})
	if _, err := a.Write(0, 0, make([]byte, 64)); err != nil {
		t.Fatalf("op 1 should pass: %v", err)
	}
	if _, err := a.Write(0, BlockSize, make([]byte, 64)); !IsTransient(err) {
		t.Fatalf("scripted op 2 fault missing: %v", err)
	}
	if _, err := a.Write(0, 2*BlockSize, make([]byte, 64)); err != nil {
		t.Fatalf("op 3 should pass: %v", err)
	}
}

func TestDeviceDeath(t *testing.T) {
	a, _ := virtualArray(2)
	a.SetFaultPlan(0, FaultPlan{Seed: 1, DieAfterOps: 2})
	a.Write(0, 0, make([]byte, 64))
	a.Write(0, BlockSize, make([]byte, 64))
	if a.LiveDevices() != 2 {
		t.Fatal("device died early")
	}
	_, err := a.Write(0, 2*BlockSize, make([]byte, 64))
	if !IsDeviceDead(err) {
		t.Fatalf("want device death on op 3, got %v", err)
	}
	// Death is permanent and covers reads and allocations.
	if _, _, err := a.Read(0, 0, make([]byte, 64)); !IsDeviceDead(err) {
		t.Fatalf("read on dead device: %v", err)
	}
	if _, err := a.AllocSpill(0, 512); !IsDeviceDead(err) {
		t.Fatalf("alloc on dead device: %v", err)
	}
	if a.DeviceAlive(0) || !a.DeviceAlive(1) || a.LiveDevices() != 1 {
		t.Fatal("liveness bookkeeping wrong")
	}
	if !a.FaultStats(0).Dead {
		t.Fatal("FaultStats does not report death")
	}
}

func TestKillAndRevive(t *testing.T) {
	a, _ := virtualArray(1)
	a.KillDevice(0)
	if _, err := a.Write(0, 0, make([]byte, 64)); !IsDeviceDead(err) {
		t.Fatalf("killed device accepted write: %v", err)
	}
	a.Revive(0)
	if _, err := a.Write(0, 0, make([]byte, 64)); err != nil {
		t.Fatalf("revived device rejected write: %v", err)
	}
}

func TestLatencySpike(t *testing.T) {
	a, clk := virtualArray(1)
	if _, err := a.Write(0, 0, make([]byte, 512)); err != nil {
		t.Fatal(err)
	}
	base, _, err := a.Read(0, 0, make([]byte, 512))
	if err != nil {
		t.Fatal(err)
	}
	baseLat := base.Sub(clk.Now())

	const spike = 50 * time.Millisecond
	a.SetFaultPlan(0, FaultPlan{Seed: 3, SpikeRate: 1.0, SpikeLatency: spike})
	ready, _, err := a.Read(0, 0, make([]byte, 512))
	if err != nil {
		t.Fatal(err)
	}
	// The device read channel was busy until `base`, so compare against the
	// next back-to-back completion plus the spike.
	if got := ready.Sub(clk.Now()); got < baseLat+spike {
		t.Fatalf("spiked latency %v < base %v + spike %v", got, baseLat, spike)
	}
	if a.FaultStats(0).Spikes == 0 {
		t.Fatal("spike not counted")
	}
}
