package nvmesim

import (
	"errors"
	"testing"
	"time"
)

func TestFaultPlanDeterministic(t *testing.T) {
	run := func() (errs int64) {
		a, _ := virtualArray(1)
		a.SetFaultPlan(0, FaultPlan{Seed: 42, WriteErrRate: 0.3})
		for i := 0; i < 200; i++ {
			a.Write(0, int64(i)*BlockSize, make([]byte, 64))
		}
		return a.FaultStats(0).WriteErrors
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("same seed produced different fault counts: %d vs %d", a, b)
	}
	if a == 0 || a == 200 {
		t.Fatalf("30%% fault rate produced %d/200 errors", a)
	}
}

func TestFaultPlanTransientErrors(t *testing.T) {
	a, _ := virtualArray(1)
	a.SetFaultPlan(0, FaultPlan{Seed: 7, WriteErrRate: 1.0})
	_, err := a.Write(0, 0, make([]byte, 64))
	if !IsTransient(err) {
		t.Fatalf("want transient error, got %v", err)
	}
	var de *DeviceError
	if !errors.As(err, &de) || de.Device != 0 || de.Op != "write" {
		t.Fatalf("want DeviceError{0, write}, got %v", err)
	}
	if IsDeviceDead(err) {
		t.Fatal("transient error classified as device death")
	}
	// Reads are unaffected by the write rate.
	a.Write(0, 0, make([]byte, 64)) // may fail; store something first
	a.SetFaultPlan(0, FaultPlan{})
	a.Write(0, 0, make([]byte, 64))
	a.SetFaultPlan(0, FaultPlan{Seed: 7, WriteErrRate: 1.0})
	if _, _, err := a.Read(0, 0, make([]byte, 64)); err != nil {
		t.Fatalf("read hit write-only fault plan: %v", err)
	}
}

func TestFaultScript(t *testing.T) {
	a, _ := virtualArray(1)
	a.SetFaultPlan(0, FaultPlan{Script: map[int64]FaultKind{2: FaultTransient}})
	if _, err := a.Write(0, 0, make([]byte, 64)); err != nil {
		t.Fatalf("op 1 should pass: %v", err)
	}
	if _, err := a.Write(0, BlockSize, make([]byte, 64)); !IsTransient(err) {
		t.Fatalf("scripted op 2 fault missing: %v", err)
	}
	if _, err := a.Write(0, 2*BlockSize, make([]byte, 64)); err != nil {
		t.Fatalf("op 3 should pass: %v", err)
	}
}

func TestDeviceDeath(t *testing.T) {
	a, _ := virtualArray(2)
	a.SetFaultPlan(0, FaultPlan{Seed: 1, DieAfterOps: 2})
	a.Write(0, 0, make([]byte, 64))
	a.Write(0, BlockSize, make([]byte, 64))
	if a.LiveDevices() != 2 {
		t.Fatal("device died early")
	}
	_, err := a.Write(0, 2*BlockSize, make([]byte, 64))
	if !IsDeviceDead(err) {
		t.Fatalf("want device death on op 3, got %v", err)
	}
	// Death is permanent and covers reads and allocations.
	if _, _, err := a.Read(0, 0, make([]byte, 64)); !IsDeviceDead(err) {
		t.Fatalf("read on dead device: %v", err)
	}
	if _, err := a.AllocSpill(0, 512); !IsDeviceDead(err) {
		t.Fatalf("alloc on dead device: %v", err)
	}
	if a.DeviceAlive(0) || !a.DeviceAlive(1) || a.LiveDevices() != 1 {
		t.Fatal("liveness bookkeeping wrong")
	}
	if !a.FaultStats(0).Dead {
		t.Fatal("FaultStats does not report death")
	}
}

func TestKillAndRevive(t *testing.T) {
	a, _ := virtualArray(1)
	a.KillDevice(0)
	if _, err := a.Write(0, 0, make([]byte, 64)); !IsDeviceDead(err) {
		t.Fatalf("killed device accepted write: %v", err)
	}
	a.Revive(0)
	if _, err := a.Write(0, 0, make([]byte, 64)); err != nil {
		t.Fatalf("revived device rejected write: %v", err)
	}
}

func TestLatencySpike(t *testing.T) {
	a, clk := virtualArray(1)
	if _, err := a.Write(0, 0, make([]byte, 512)); err != nil {
		t.Fatal(err)
	}
	base, _, err := a.Read(0, 0, make([]byte, 512))
	if err != nil {
		t.Fatal(err)
	}
	baseLat := base.Sub(clk.Now())

	const spike = 50 * time.Millisecond
	a.SetFaultPlan(0, FaultPlan{Seed: 3, SpikeRate: 1.0, SpikeLatency: spike})
	ready, _, err := a.Read(0, 0, make([]byte, 512))
	if err != nil {
		t.Fatal(err)
	}
	// The device read channel was busy until `base`, so compare against the
	// next back-to-back completion plus the spike.
	if got := ready.Sub(clk.Now()); got < baseLat+spike {
		t.Fatalf("spiked latency %v < base %v + spike %v", got, baseLat, spike)
	}
	if a.FaultStats(0).Spikes == 0 {
		t.Fatal("spike not counted")
	}
}

// countBitFlips returns the number of differing bits between a and b.
func countBitFlips(a, b []byte) int {
	n := 0
	for i := range a {
		d := a[i] ^ b[i]
		for d != 0 {
			n++
			d &= d - 1
		}
	}
	return n
}

func TestCorruptReadFlipsOneBit(t *testing.T) {
	a, _ := virtualArray(1)
	data := make([]byte, 1024)
	for i := range data {
		data[i] = byte(i)
	}
	if _, err := a.Write(0, 0, data); err != nil {
		t.Fatal(err)
	}
	a.SetFaultPlan(0, FaultPlan{Seed: 11, CorruptRate: 1.0})
	dst := make([]byte, 1024)
	if _, _, err := a.Read(0, 0, dst); err != nil {
		t.Fatalf("corrupt read must not error: %v", err)
	}
	if flips := countBitFlips(data, dst); flips != 1 {
		t.Fatalf("want exactly 1 flipped bit, got %d", flips)
	}
	if a.FaultStats(0).Corruptions != 1 {
		t.Fatalf("corruption not counted: %+v", a.FaultStats(0))
	}
	// The stored block itself is untouched: a clean re-read round-trips.
	a.SetFaultPlan(0, FaultPlan{})
	if _, _, err := a.Read(0, 0, dst); err != nil {
		t.Fatal(err)
	}
	if countBitFlips(data, dst) != 0 {
		t.Fatal("read corruption leaked into the store")
	}
}

func TestCorruptionDeterministicUnderSeed(t *testing.T) {
	run := func() (string, int64) {
		a, _ := virtualArray(1)
		data := make([]byte, 4096)
		for i := range data {
			data[i] = byte(i * 7)
		}
		for i := 0; i < 8; i++ {
			if _, err := a.Write(0, int64(i)*4096, data); err != nil {
				t.Fatal(err)
			}
		}
		a.SetFaultPlan(0, FaultPlan{Seed: 99, CorruptRate: 0.4, StaleReadRate: 0.2})
		var sig []byte
		dst := make([]byte, 4096)
		for i := 0; i < 8; i++ {
			if _, _, err := a.Read(0, int64(i)*4096, dst); err != nil {
				t.Fatal(err)
			}
			sig = append(sig, dst...)
		}
		st := a.FaultStats(0)
		return string(sig), st.Corruptions + st.StaleReads
	}
	sig1, n1 := run()
	sig2, n2 := run()
	if n1 != n2 || sig1 != sig2 {
		t.Fatalf("same seed produced different corruption outcomes: %d vs %d faults", n1, n2)
	}
	if n1 == 0 {
		t.Fatal("no silent faults injected at 40%+20% rates over 8 reads")
	}
}

func TestScriptedSingleOpCorruption(t *testing.T) {
	a, _ := virtualArray(1)
	data := make([]byte, 512)
	for i := range data {
		data[i] = 0xAB
	}
	if _, err := a.Write(0, 0, data); err != nil { // op 1: clean write
		t.Fatal(err)
	}
	// Ops count reads and writes together, so op 2 is the first read.
	a.SetFaultPlan(0, FaultPlan{Seed: 5, Script: map[int64]FaultKind{2: FaultCorrupt}})
	if _, err := a.Write(0, BlockSize, data); err != nil { // op 1 under new plan
		t.Fatal(err)
	}
	dst := make([]byte, 512)
	if _, _, err := a.Read(0, 0, dst); err != nil { // op 2: scripted corruption
		t.Fatal(err)
	}
	if countBitFlips(data, dst) != 1 {
		t.Fatal("scripted op did not corrupt")
	}
	if _, _, err := a.Read(0, 0, dst); err != nil { // op 3: clean again
		t.Fatal(err)
	}
	if countBitFlips(data, dst) != 0 {
		t.Fatal("corruption fired outside the scripted op")
	}
}

func TestCorruptThenDie(t *testing.T) {
	a, _ := virtualArray(1)
	data := make([]byte, 512)
	if _, err := a.Write(0, 0, data); err != nil {
		t.Fatal(err)
	}
	// Scripted corruption on op 2 composes with DieAfterOps: op 3 and every
	// later request fail permanently.
	a.SetFaultPlan(0, FaultPlan{
		Seed:        13,
		Script:      map[int64]FaultKind{1: FaultCorrupt},
		DieAfterOps: 2,
	})
	dst := make([]byte, 512)
	if _, _, err := a.Read(0, 0, dst); err != nil { // op 1: corrupt
		t.Fatal(err)
	}
	if countBitFlips(data, dst) != 1 {
		t.Fatal("op 1 corruption missing")
	}
	if _, _, err := a.Read(0, 0, dst); err != nil { // op 2: last clean op
		t.Fatal(err)
	}
	if _, _, err := a.Read(0, 0, dst); !IsDeviceDead(err) { // op 3: death
		t.Fatalf("want device death after corrupt-then-die, got %v", err)
	}
	st := a.FaultStats(0)
	if st.Corruptions != 1 || !st.Dead {
		t.Fatalf("corrupt-then-die counters wrong: %+v", st)
	}
}

func TestTornWriteZeroesTail(t *testing.T) {
	a, _ := virtualArray(1)
	data := make([]byte, 1024)
	for i := range data {
		data[i] = 0xFF
	}
	a.SetFaultPlan(0, FaultPlan{Seed: 21, TornWriteRate: 1.0})
	if _, err := a.Write(0, 0, data); err != nil {
		t.Fatalf("torn write must report success: %v", err)
	}
	a.SetFaultPlan(0, FaultPlan{})
	dst := make([]byte, 1024)
	if _, _, err := a.Read(0, 0, dst); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 512; i++ {
		if dst[i] != 0xFF {
			t.Fatalf("torn write damaged the persisted prefix at %d", i)
		}
	}
	for i := 512; i < 1024; i++ {
		if dst[i] != 0 {
			t.Fatalf("torn write tail byte %d survived", i)
		}
	}
	if a.FaultStats(0).TornWrites != 1 {
		t.Fatal("torn write not counted")
	}
	// TornWriteRate never perturbs reads.
	a.SetFaultPlan(0, FaultPlan{Seed: 21, TornWriteRate: 1.0})
	if _, _, err := a.Read(0, 0, dst); err != nil || a.FaultStats(0).TornWrites != 1 {
		t.Fatal("torn-write plan affected a read")
	}
}

func TestStaleReadServesOtherBlock(t *testing.T) {
	a, _ := virtualArray(1)
	blockA := make([]byte, 512)
	blockB := make([]byte, 512)
	for i := range blockA {
		blockA[i], blockB[i] = 0x11, 0x22
	}
	if _, err := a.Write(0, 0, blockA); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Write(0, BlockSize, blockB); err != nil {
		t.Fatal(err)
	}
	a.SetFaultPlan(0, FaultPlan{Seed: 31, StaleReadRate: 1.0})
	dst := make([]byte, 512)
	if _, _, err := a.Read(0, BlockSize, dst); err != nil {
		t.Fatalf("stale read must not error: %v", err)
	}
	if dst[0] != 0x11 {
		t.Fatalf("stale read of block B should serve block A, got %#x", dst[0])
	}
	if a.FaultStats(0).StaleReads != 1 {
		t.Fatal("stale read not counted")
	}
}
