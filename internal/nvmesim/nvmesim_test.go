package nvmesim

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"
	"time"
)

var testSpec = DeviceSpec{
	ReadBandwidth:  1e6, // 1 MB/s: slow enough for visible timing on a virtual clock
	WriteBandwidth: 5e5,
	Latency:        time.Millisecond,
}

func virtualArray(n int) (*Array, *VirtualClock) {
	clk := NewVirtualClock(time.Unix(0, 0))
	return New(n, testSpec, clk), clk
}

func TestWriteReadRoundTrip(t *testing.T) {
	a, _ := virtualArray(2)
	data := bytes.Repeat([]byte{0xab}, 1024)
	off, err := a.AllocSpill(1, len(data))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.Write(1, off, data); err != nil {
		t.Fatal(err)
	}
	dst := make([]byte, 1024)
	if _, _, err := a.Read(1, off, dst); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(dst, data) {
		t.Fatal("read data differs from written data")
	}
}

func TestAllocSpillNoOverlap(t *testing.T) {
	a, _ := virtualArray(1)
	seen := map[int64]bool{}
	for i := 0; i < 100; i++ {
		off, err := a.AllocSpill(0, 700) // unaligned size, rounds to 1024
		if err != nil {
			t.Fatal(err)
		}
		if off%BlockSize != 0 {
			t.Fatalf("unaligned alloc offset %d", off)
		}
		if seen[off] {
			t.Fatalf("offset %d allocated twice", off)
		}
		seen[off] = true
	}
	if got := a.Stats().SpillBytes; got != 100*1024 {
		t.Fatalf("spill bytes = %d, want %d", got, 100*1024)
	}
}

func TestWriteTimingModel(t *testing.T) {
	a, clk := virtualArray(1)
	start := clk.Now()
	// 500 KB at 500 KB/s = 1 s transfer + 1 ms latency.
	data := make([]byte, 500_000)
	ready, err := a.Write(0, 0, data)
	if err != nil {
		t.Fatal(err)
	}
	want := start.Add(time.Second + time.Millisecond)
	if !ready.Equal(want) {
		t.Fatalf("readyAt = %v, want %v", ready.Sub(start), want.Sub(start))
	}
	// A second write queues behind the first: busy channel serializes.
	ready2, err := a.Write(0, BlockSize*1024, data)
	if err != nil {
		t.Fatal(err)
	}
	want2 := start.Add(2*time.Second + time.Millisecond)
	if !ready2.Equal(want2) {
		t.Fatalf("second readyAt = %v, want %v", ready2.Sub(start), want2.Sub(start))
	}
}

func TestReadWriteChannelsIndependent(t *testing.T) {
	a, clk := virtualArray(1)
	data := make([]byte, 500_000)
	if _, err := a.Write(0, 0, data); err != nil {
		t.Fatal(err)
	}
	start := clk.Now()
	dst := make([]byte, len(data))
	// Read bandwidth is 1 MB/s: 0.5 s + 1 ms, NOT queued behind the write.
	ready, _, err := a.Read(0, 0, dst)
	if err != nil {
		t.Fatal(err)
	}
	want := start.Add(500*time.Millisecond + time.Millisecond)
	if !ready.Equal(want) {
		t.Fatalf("read readyAt = %v, want %v", ready.Sub(start), want.Sub(start))
	}
}

func TestDevicesIndependent(t *testing.T) {
	a, clk := virtualArray(4)
	start := clk.Now()
	data := make([]byte, 500_000)
	for dev := 0; dev < 4; dev++ {
		ready, err := a.Write(dev, 0, data)
		if err != nil {
			t.Fatal(err)
		}
		want := start.Add(time.Second + time.Millisecond)
		if !ready.Equal(want) {
			t.Fatalf("dev %d readyAt = %v, want %v (devices must not serialize each other)", dev, ready.Sub(start), want.Sub(start))
		}
	}
}

func TestReadUnwritten(t *testing.T) {
	a, _ := virtualArray(1)
	if _, _, err := a.Read(0, 4096, make([]byte, 16)); err != ErrBadRange {
		t.Fatalf("err = %v, want ErrBadRange", err)
	}
}

func TestShortBuffer(t *testing.T) {
	a, _ := virtualArray(1)
	a.Write(0, 0, make([]byte, 1024))
	if _, _, err := a.Read(0, 0, make([]byte, 512)); err != ErrShortBuffer {
		t.Fatalf("err = %v, want ErrShortBuffer", err)
	}
}

func TestBadDeviceAndAlignment(t *testing.T) {
	a, _ := virtualArray(1)
	if _, err := a.Write(3, 0, nil); err != ErrBadDevice {
		t.Fatalf("want ErrBadDevice, got %v", err)
	}
	if _, err := a.Write(0, 100, nil); err != ErrUnaligned {
		t.Fatalf("want ErrUnaligned, got %v", err)
	}
	if _, err := a.AllocSpill(-1, 10); err != ErrBadDevice {
		t.Fatalf("want ErrBadDevice, got %v", err)
	}
}

func TestCapacityLimit(t *testing.T) {
	spec := testSpec
	spec.Capacity = 4096
	a := New(1, spec, NewVirtualClock(time.Unix(0, 0)))
	if _, err := a.AllocSpill(0, 4096); err != nil {
		t.Fatal(err)
	}
	if _, err := a.AllocSpill(0, 512); !errors.Is(err, ErrDeviceFull) {
		t.Fatalf("want ErrDeviceFull, got %v", err)
	}
	// Failed alloc must roll back so a Reset restores full capacity.
	a.Reset()
	if _, err := a.AllocSpill(0, 4096); err != nil {
		t.Fatalf("after reset: %v", err)
	}
}

func TestInjectedFailures(t *testing.T) {
	a, _ := virtualArray(1)
	a.InjectFailures(0, 2)
	if _, err := a.Write(0, 0, make([]byte, 64)); err == nil {
		t.Fatal("first injected write failure missing")
	}
	if _, _, err := a.Read(0, 0, make([]byte, 64)); err == nil {
		t.Fatal("second injected failure missing")
	}
	if _, err := a.Write(0, 0, make([]byte, 64)); err != nil {
		t.Fatalf("third write should succeed, got %v", err)
	}
}

func TestStatsAndReset(t *testing.T) {
	a, _ := virtualArray(2)
	a.Write(0, 0, make([]byte, 1000))
	a.Write(1, 0, make([]byte, 2000))
	a.Read(0, 0, make([]byte, 1000))
	s := a.Stats()
	if s.BytesWritten != 3000 || s.BytesRead != 1000 {
		t.Fatalf("stats = %+v", s)
	}
	a.Reset()
	if _, _, err := a.Read(0, 0, make([]byte, 1000)); err != ErrBadRange {
		t.Fatal("reset did not clear stored data")
	}
}

func TestAggregateBandwidth(t *testing.T) {
	a, _ := virtualArray(4)
	if got := a.MaxWriteBandwidth(); got != 4*testSpec.WriteBandwidth {
		t.Fatalf("MaxWriteBandwidth = %v", got)
	}
	if got := a.MaxReadBandwidth(); got != 4*testSpec.ReadBandwidth {
		t.Fatalf("MaxReadBandwidth = %v", got)
	}
}

func TestLocPacking(t *testing.T) {
	l := MakeLoc(7, 1<<20, 64<<10)
	if l.Device() != 7 || l.Offset() != 1<<20 || l.Size() != 64<<10 {
		t.Fatalf("loc round trip: %v", l)
	}
}

func TestLocPackingQuick(t *testing.T) {
	f := func(dev uint8, offBlocks uint32, sizeBlocks uint16) bool {
		off := int64(offBlocks) * BlockSize
		size := int(sizeBlocks) * BlockSize
		l := MakeLoc(int(dev), off, size)
		return l.Device() == int(dev) && l.Offset() == off && l.Size() == size
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestLocPanicsOnUnaligned(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MakeLoc accepted unaligned offset")
		}
	}()
	MakeLoc(0, 7, 512)
}

func TestScaledSpec(t *testing.T) {
	s := KioxiaCM7.Scaled(0.01)
	if s.ReadBandwidth != 11e7 || s.WriteBandwidth != 6.2e7 {
		t.Fatalf("scaled spec = %+v", s)
	}
	if s.Latency != KioxiaCM7.Latency {
		t.Fatal("scaling must not change latency")
	}
}

func TestConcurrentWrites(t *testing.T) {
	a := New(2, testSpec, RealClock{})
	done := make(chan error, 8)
	for g := 0; g < 8; g++ {
		go func(g int) {
			for i := 0; i < 50; i++ {
				off, err := a.AllocSpill(g%2, 1024)
				if err != nil {
					done <- err
					return
				}
				data := bytes.Repeat([]byte{byte(g)}, 1024)
				if _, err := a.Write(g%2, off, data); err != nil {
					done <- err
					return
				}
				dst := make([]byte, 1024)
				if _, _, err := a.Read(g%2, off, dst); err != nil {
					done <- err
					return
				}
				if dst[0] != byte(g) || dst[1023] != byte(g) {
					done <- ErrBadRange
					return
				}
			}
			done <- nil
		}(g)
	}
	for g := 0; g < 8; g++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	if got := a.Stats().BytesWritten; got != 8*50*1024 {
		t.Fatalf("bytes written = %d", got)
	}
}
