package nvmesim

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"
)

// Fault injection for the simulated array.
//
// A production engine that pushes an NVMe array as hard as Spilly does must
// survive the array misbehaving: transient read/write errors, latency
// spikes, a device going dark, or the spill area filling mid-query. Real
// drives expose all of these through completion status codes; the simulator
// exposes them the same way — as errors (or inflated latencies) on the
// completions the uring layer reaps — so that every recovery path in the
// engine is exercised end to end.
//
// Faults are deterministic: each device draws from its own seeded PRNG, and
// scripted faults fire at exact per-device request indices. The chaos test
// harness (internal/chaos) relies on this to replay identical fault
// schedules across runs.

// Fault classification errors. Transient errors are safe to retry; a dead
// device never comes back (within a query) and anything stored on it is
// lost.
var (
	ErrTransient  = errors.New("nvmesim: transient I/O error")
	ErrDeviceDead = errors.New("nvmesim: device failed permanently")
)

// DeviceError wraps a device-level failure with the device it occurred on
// and the request class, so upper layers can re-stripe writes away from bad
// devices and report precise failure contexts.
type DeviceError struct {
	Device int
	Op     string // "read", "write", or "alloc"
	Err    error
}

// Error implements error.
func (e *DeviceError) Error() string {
	return fmt.Sprintf("device %d %s: %v", e.Device, e.Op, e.Err)
}

// Unwrap supports errors.Is/As chains.
func (e *DeviceError) Unwrap() error { return e.Err }

// IsTransient reports whether err is a retryable device error.
func IsTransient(err error) bool { return errors.Is(err, ErrTransient) }

// IsDeviceDead reports whether err indicates a permanent device failure.
func IsDeviceDead(err error) bool { return errors.Is(err, ErrDeviceDead) }

// FaultKind classifies one injected fault.
type FaultKind uint8

// Fault kinds.
const (
	// FaultNone injects nothing (zero value; useful in scripts to
	// override a probabilistic fault at a specific request).
	FaultNone FaultKind = iota
	// FaultTransient fails the request with a retryable error.
	FaultTransient
	// FaultSpike completes the request normally but adds SpikeLatency.
	FaultSpike
	// FaultDeath fails the request and kills the device permanently.
	FaultDeath
	// FaultCorrupt completes the request "successfully" but flips one bit
	// in the data — in the stored block on a write (bit rot at rest), in
	// the returned buffer on a read. The device reports no error; only an
	// integrity layer above can notice.
	FaultCorrupt
	// FaultTorn applies to writes: only a prefix of the data reaches the
	// media (the tail half of the stored block is zeroed), yet the write
	// completes without error — the classic torn-write failure mode.
	FaultTorn
	// FaultStale applies to reads: the device returns the contents of a
	// different (previously written) block on the same device instead of
	// the requested one — a misdirected or stale read. No error is
	// reported.
	FaultStale
)

// FaultPlan configures fault injection for one device. The zero value
// injects nothing. All probabilistic decisions derive from Seed, so a plan
// produces the same fault sequence for the same request sequence.
type FaultPlan struct {
	// Seed seeds the device's fault PRNG.
	Seed int64
	// ReadErrRate and WriteErrRate are per-request probabilities of a
	// transient failure.
	ReadErrRate  float64
	WriteErrRate float64
	// SpikeRate is the per-request probability of a latency spike of
	// SpikeLatency (added on top of the modeled transfer time).
	SpikeRate    float64
	SpikeLatency time.Duration
	// CorruptRate is the per-request probability of a silent single-bit
	// flip (reads corrupt the returned buffer, writes corrupt the stored
	// block). The request still completes without error.
	CorruptRate float64
	// TornWriteRate is the per-write probability that only a prefix of
	// the data reaches the media (tail half zeroed) while the write still
	// reports success.
	TornWriteRate float64
	// StaleReadRate is the per-read probability of a misdirected read:
	// the device silently returns a different previously written block.
	StaleReadRate float64
	// DieAfterOps kills the device permanently on request DieAfterOps+1
	// (counting reads and writes together); 0 means never.
	DieAfterOps int64
	// Script maps 1-based request indices to faults, overriding the
	// probabilistic rates at those requests.
	Script map[int64]FaultKind
}

// faultState is the per-device fault injector.
type faultState struct {
	mu   sync.Mutex
	plan FaultPlan
	rng  *rand.Rand
	ops  int64
}

// roll decides the fault for the next request of class op. It returns the
// fault kind, the extra latency to add (for FaultSpike), and a deterministic
// random value the silent-corruption kinds use to pick the bit or block to
// damage.
func (f *faultState) roll(op string) (FaultKind, time.Duration, uint64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.ops++
	if k, ok := f.plan.Script[f.ops]; ok {
		switch k {
		case FaultSpike:
			return k, f.plan.SpikeLatency, 0
		case FaultCorrupt, FaultTorn, FaultStale:
			return k, 0, f.rng.Uint64()
		}
		return k, 0, 0
	}
	if f.plan.DieAfterOps > 0 && f.ops > f.plan.DieAfterOps {
		return FaultDeath, 0, 0
	}
	rate := f.plan.ReadErrRate
	if op == "write" {
		rate = f.plan.WriteErrRate
	}
	if rate > 0 && f.rng.Float64() < rate {
		return FaultTransient, 0, 0
	}
	if f.plan.CorruptRate > 0 && f.rng.Float64() < f.plan.CorruptRate {
		return FaultCorrupt, 0, f.rng.Uint64()
	}
	if op == "write" {
		if f.plan.TornWriteRate > 0 && f.rng.Float64() < f.plan.TornWriteRate {
			return FaultTorn, 0, f.rng.Uint64()
		}
	} else {
		if f.plan.StaleReadRate > 0 && f.rng.Float64() < f.plan.StaleReadRate {
			return FaultStale, 0, f.rng.Uint64()
		}
	}
	if f.plan.SpikeRate > 0 && f.rng.Float64() < f.plan.SpikeRate {
		return FaultSpike, f.plan.SpikeLatency, 0
	}
	return FaultNone, 0, 0
}

// SetFaultPlan arms fault injection on device dev. Passing a plan that
// injects nothing disarms it. Panics on a bad device index (fault plans are
// test/harness configuration, not a runtime path).
func (a *Array) SetFaultPlan(dev int, plan FaultPlan) {
	d := a.devices[dev]
	if plan.ReadErrRate == 0 && plan.WriteErrRate == 0 && plan.SpikeRate == 0 &&
		plan.CorruptRate == 0 && plan.TornWriteRate == 0 && plan.StaleReadRate == 0 &&
		plan.DieAfterOps == 0 && len(plan.Script) == 0 {
		d.faults.Store(nil)
		return
	}
	d.faults.Store(&faultState{plan: plan, rng: rand.New(rand.NewSource(plan.Seed))})
}

// KillDevice marks device dev permanently failed: every subsequent request
// (and spill allocation) on it errors with ErrDeviceDead.
func (a *Array) KillDevice(dev int) {
	a.devices[dev].dead.Store(true)
}

// Revive brings a killed device back (tests only; real queries treat death
// as permanent).
func (a *Array) Revive(dev int) {
	a.devices[dev].dead.Store(false)
}

// DeviceAlive reports whether device dev accepts requests.
func (a *Array) DeviceAlive(dev int) bool {
	return dev >= 0 && dev < len(a.devices) && !a.devices[dev].dead.Load()
}

// LiveDevices returns the number of devices still accepting requests.
func (a *Array) LiveDevices() int {
	n := 0
	for _, d := range a.devices {
		if !d.dead.Load() {
			n++
		}
	}
	return n
}

// DeviceFaults is a snapshot of one device's fault counters.
type DeviceFaults struct {
	ReadErrors  int64
	WriteErrors int64
	Spikes      int64
	// Silent-fault counters: requests that completed without error but
	// damaged data (bit flips, torn writes, misdirected reads).
	Corruptions int64
	TornWrites  int64
	StaleReads  int64
	Dead        bool
}

// FaultStats returns device dev's cumulative fault counters.
func (a *Array) FaultStats(dev int) DeviceFaults {
	d := a.devices[dev]
	return DeviceFaults{
		ReadErrors:  d.readErrs.Load(),
		WriteErrors: d.writeErrs.Load(),
		Spikes:      d.spikes.Load(),
		Corruptions: d.corrupts.Load(),
		TornWrites:  d.tornWrites.Load(),
		StaleReads:  d.staleReads.Load(),
		Dead:        d.dead.Load(),
	}
}

// faultEffect is a silent-fault directive handed back to the data path:
// the request completes without error, but the stored or returned bytes
// must be perturbed as kind dictates. r supplies deterministic randomness
// for choosing the bit or block to damage.
type faultEffect struct {
	kind FaultKind // FaultNone, FaultCorrupt, FaultTorn, or FaultStale
	r    uint64
}

// injectFault runs the device's fault machinery for one request of class op
// ("read" or "write"). It returns the error to fail the request with (nil =
// proceed), extra latency to add to the completion time, and any silent
// data-damage effect the data path must apply.
func (d *device) injectFault(dev int, op string) (error, time.Duration, faultEffect) {
	if d.dead.Load() {
		d.countErr(op)
		return &DeviceError{Device: dev, Op: op, Err: ErrDeviceDead}, 0, faultEffect{}
	}
	// Legacy knob: fail the next N requests with a transient error.
	if d.failNext.Load() > 0 && d.failNext.Add(-1) >= 0 {
		d.countErr(op)
		return &DeviceError{Device: dev, Op: op, Err: fmt.Errorf("injected %s failure: %w", op, ErrTransient)}, 0, faultEffect{}
	}
	f := d.faults.Load()
	if f == nil {
		return nil, 0, faultEffect{}
	}
	kind, spike, r := f.roll(op)
	switch kind {
	case FaultTransient:
		d.countErr(op)
		return &DeviceError{Device: dev, Op: op, Err: ErrTransient}, 0, faultEffect{}
	case FaultDeath:
		d.dead.Store(true)
		d.countErr(op)
		return &DeviceError{Device: dev, Op: op, Err: ErrDeviceDead}, 0, faultEffect{}
	case FaultSpike:
		d.spikes.Add(1)
		return nil, spike, faultEffect{}
	case FaultCorrupt:
		return nil, 0, faultEffect{kind: FaultCorrupt, r: r}
	case FaultTorn:
		if op == "write" {
			return nil, 0, faultEffect{kind: FaultTorn, r: r}
		}
	case FaultStale:
		if op == "read" {
			return nil, 0, faultEffect{kind: FaultStale, r: r}
		}
	}
	return nil, 0, faultEffect{}
}

func (d *device) countErr(op string) {
	if op == "write" {
		d.writeErrs.Add(1)
	} else {
		d.readErrs.Add(1)
	}
}
