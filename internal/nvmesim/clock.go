package nvmesim

import (
	"runtime"
	"sync"
	"time"
)

// Clock abstracts time so the I/O timing model can run against either the
// wall clock (the engine's normal mode, where I/O stalls are real) or a
// virtual clock (deterministic unit tests of the timing model itself).
type Clock interface {
	// Now returns the current time.
	Now() time.Time
	// Sleep blocks until d has elapsed on this clock.
	Sleep(d time.Duration)
}

// RealClock is the wall clock.
//
// Short waits are served by a yielding poll loop rather than time.Sleep:
// Go's sleep granularity on this platform is above a millisecond, which
// would inflate every simulated sub-millisecond I/O completion by 10-100×.
// Polling for completions is also what a high-performance io_uring engine
// does (the paper's engine polls its rings), so the loop models the real
// behavior more faithfully than an oversleeping timer.
type RealClock struct{}

// pollThreshold is the longest wait served by yielding instead of sleeping.
const pollThreshold = 500 * time.Microsecond

// Now implements Clock.
func (RealClock) Now() time.Time { return time.Now() }

// Sleep implements Clock.
func (RealClock) Sleep(d time.Duration) {
	if d <= 0 {
		return
	}
	if d > pollThreshold {
		time.Sleep(d)
		return
	}
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		runtime.Gosched()
	}
}

// VirtualClock is a manually advanced clock for deterministic tests.
// Sleep advances the clock immediately, so tests never block.
type VirtualClock struct {
	mu  sync.Mutex
	now time.Time
}

// NewVirtualClock returns a virtual clock starting at start.
func NewVirtualClock(start time.Time) *VirtualClock {
	return &VirtualClock{now: start}
}

// Now implements Clock.
func (c *VirtualClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// Sleep implements Clock by advancing the clock.
func (c *VirtualClock) Sleep(d time.Duration) {
	if d <= 0 {
		return
	}
	c.mu.Lock()
	c.now = c.now.Add(d)
	c.mu.Unlock()
}

// Advance moves the clock forward by d.
func (c *VirtualClock) Advance(d time.Duration) {
	c.Sleep(d)
}
