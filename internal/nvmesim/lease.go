// Spill leases: per-query ownership of spill extents.
//
// The paper's engine treats the spill area as per-query scratch space; with
// one query at a time a whole-array Reset between queries is enough. Under
// concurrent queries that reset destroys another query's partitions, so the
// array instead tracks which lease (query) owns every allocated extent and
// frees exactly those extents when the lease is released. Freed space is
// returned to a per-device free list that later allocations reuse (first
// fit, coalescing, cursor shrink), so a long-running server's spill areas
// stay bounded by the peak concurrent footprint rather than growing with
// query count.
package nvmesim

import (
	"sort"
	"sync/atomic"
)

// allocRec is one live spill allocation on a device.
type allocRec struct {
	size  int64  // aligned size in bytes
	lease uint64 // owning lease id; 0 = unleased (permanent until Reset)
}

// extent is one free range in a device's spill area, [off, off+size).
type extent struct {
	off, size int64
}

// Lease identifies one owner of spill extents (typically one query). Extents
// allocated under a lease are freed together by Free; reads need no lease.
// A Lease is safe for concurrent use by the query's workers.
type Lease struct {
	arr *Array
	id  uint64

	liveBytes   atomic.Int64
	liveExtents atomic.Int64
	freed       atomic.Bool
}

// leaseIDs hands out process-wide unique lease ids (0 is reserved for
// unleased allocations).
var leaseIDs atomic.Uint64

// NewLease returns a fresh lease on the array's spill areas.
func (a *Array) NewLease() *Lease {
	a.liveLeases.Add(1)
	return &Lease{arr: a, id: leaseIDs.Add(1)}
}

// ID returns the lease's unique id.
func (l *Lease) ID() uint64 { return l.id }

// LiveBytes returns the bytes currently allocated under the lease.
func (l *Lease) LiveBytes() int64 { return l.liveBytes.Load() }

// LiveExtents returns the number of extents currently allocated under the
// lease.
func (l *Lease) LiveExtents() int64 { return l.liveExtents.Load() }

// Free releases every extent allocated under the lease, dropping the stored
// blocks and returning the space to the device free lists. Data already read
// (or with reads already submitted to the array) is unaffected: the array
// copies block contents at submission time. Free is idempotent.
func (l *Lease) Free() {
	if l == nil || l.freed.Swap(true) {
		return
	}
	for _, d := range l.arr.devices {
		d.freeLease(l.id)
	}
	l.liveBytes.Store(0)
	l.liveExtents.Store(0)
	l.arr.liveLeases.Add(-1)
}

// Leases returns the number of leases created and not yet freed.
func (a *Array) Leases() int64 { return a.liveLeases.Load() }

// LiveExtents returns the number of live spill allocations across all
// devices — leased and unleased. It returns to zero once every lease is
// freed and no unleased spill allocations remain.
func (a *Array) LiveExtents() int64 {
	var n int64
	for _, d := range a.devices {
		d.allocMu.Lock()
		n += int64(len(d.allocs))
		d.allocMu.Unlock()
	}
	return n
}

// LeaseLiveBytes returns the bytes currently allocated on the spill areas
// under each live lease, keyed by lease id (observability).
func (a *Array) LeaseLiveBytes() map[uint64]int64 {
	out := map[uint64]int64{}
	for _, d := range a.devices {
		d.allocMu.Lock()
		for _, rec := range d.allocs {
			if rec.lease != 0 {
				out[rec.lease] += rec.size
			}
		}
		d.allocMu.Unlock()
	}
	return out
}

// AllocSpillLease reserves size bytes in device dev's spill area under the
// given lease (nil = unleased, kept until Reset) and returns the starting
// offset. Size is rounded up to the block size. Freed extents are reused
// first fit; otherwise the allocation extends the device's write cursor —
// still the paper's single per-SSD coordination point (§5.1), now guarded by
// a short mutex so frees can coalesce.
func (a *Array) AllocSpillLease(dev int, size int, l *Lease) (int64, error) {
	if dev < 0 || dev >= len(a.devices) {
		return 0, ErrBadDevice
	}
	d := a.devices[dev]
	if d.dead.Load() {
		return 0, &DeviceError{Device: dev, Op: "alloc", Err: ErrDeviceDead}
	}
	n := int64(alignUp(size))
	var lease uint64
	if l != nil {
		lease = l.id
	}
	d.allocMu.Lock()
	off, err := d.allocLocked(dev, n)
	if err == nil {
		if d.allocs == nil {
			d.allocs = make(map[int64]allocRec)
		}
		d.allocs[off] = allocRec{size: n, lease: lease}
	}
	d.allocMu.Unlock()
	if err != nil {
		return 0, err
	}
	if l != nil {
		l.liveBytes.Add(n)
		l.liveExtents.Add(1)
	}
	return off, nil
}

// allocLocked finds space for an aligned n-byte allocation: first fit from
// the free list, else a cursor bump bounded by capacity. Caller holds
// d.allocMu.
func (d *device) allocLocked(dev int, n int64) (int64, error) {
	for i := range d.frees {
		if d.frees[i].size >= n {
			off := d.frees[i].off
			d.frees[i].off += n
			d.frees[i].size -= n
			if d.frees[i].size == 0 {
				d.frees = append(d.frees[:i], d.frees[i+1:]...)
			}
			d.freeBytes -= n
			return off, nil
		}
	}
	cur := d.writeCursor.Load()
	if d.spec.Capacity > 0 && cur+n > d.spec.Capacity {
		return 0, &DeviceError{Device: dev, Op: "alloc", Err: ErrDeviceFull}
	}
	d.writeCursor.Store(cur + n)
	return cur, nil
}

// freeLease drops every allocation owned by lease id on this device: the
// stored blocks are deleted and the ranges returned to the free list, which
// is kept sorted and coalesced; free space abutting the write cursor shrinks
// the cursor instead. Lock order is allocMu then mu, matching
// AllocSpillLease callers that take no mu at all.
func (d *device) freeLease(id uint64) {
	d.allocMu.Lock()
	var dropped []int64
	for off, rec := range d.allocs {
		if rec.lease == id {
			dropped = append(dropped, off)
		}
	}
	if len(dropped) == 0 {
		d.allocMu.Unlock()
		return
	}
	d.mu.Lock()
	for _, off := range dropped {
		delete(d.store, off)
	}
	d.mu.Unlock()
	for _, off := range dropped {
		d.freeExtentLocked(extent{off: off, size: d.allocs[off].size})
		delete(d.allocs, off)
	}
	d.shrinkCursorLocked()
	d.allocMu.Unlock()
}

// freeExtentLocked inserts ext into the sorted free list, merging with
// adjacent free ranges. Caller holds d.allocMu.
func (d *device) freeExtentLocked(ext extent) {
	i := sort.Search(len(d.frees), func(i int) bool { return d.frees[i].off >= ext.off })
	d.frees = append(d.frees, extent{})
	copy(d.frees[i+1:], d.frees[i:])
	d.frees[i] = ext
	d.freeBytes += ext.size
	// Merge with successor, then predecessor.
	if i+1 < len(d.frees) && d.frees[i].off+d.frees[i].size == d.frees[i+1].off {
		d.frees[i].size += d.frees[i+1].size
		d.frees = append(d.frees[:i+1], d.frees[i+2:]...)
	}
	if i > 0 && d.frees[i-1].off+d.frees[i-1].size == d.frees[i].off {
		d.frees[i-1].size += d.frees[i].size
		d.frees = append(d.frees[:i], d.frees[i+1:]...)
	}
}

// shrinkCursorLocked retracts the write cursor over trailing free space so
// the spill area's high-water mark tracks the live footprint. Caller holds
// d.allocMu.
func (d *device) shrinkCursorLocked() {
	if n := len(d.frees); n > 0 {
		top := d.frees[n-1]
		if top.off+top.size == d.writeCursor.Load() {
			d.writeCursor.Store(top.off)
			d.freeBytes -= top.size
			d.frees = d.frees[:n-1]
		}
	}
}

// resetAllocLocked clears the device's allocation bookkeeping (Reset).
// Caller holds d.allocMu.
func (d *device) resetAllocLocked() {
	d.allocs = nil
	d.frees = nil
	d.freeBytes = 0
	d.writeCursor.Store(0)
}
