package nvmesim

import (
	"bytes"
	"testing"
)

func leaseArray(t *testing.T, devs int, capacity int64) *Array {
	t.Helper()
	spec := DeviceSpec{ReadBandwidth: 1e12, WriteBandwidth: 1e12, Capacity: capacity}
	return New(devs, spec, RealClock{})
}

func TestLeaseFreeReclaimsOnlyOwnExtents(t *testing.T) {
	a := leaseArray(t, 1, 0)
	l1 := a.NewLease()
	l2 := a.NewLease()

	block := func(fill byte) []byte {
		b := make([]byte, BlockSize)
		for i := range b {
			b[i] = fill
		}
		return b
	}
	off1, err := a.AllocSpillLease(0, BlockSize, l1)
	if err != nil {
		t.Fatal(err)
	}
	off2, err := a.AllocSpillLease(0, BlockSize, l2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.Write(0, off1, block(0x11)); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Write(0, off2, block(0x22)); err != nil {
		t.Fatal(err)
	}

	l1.Free()

	// l2's block survives l1's teardown — the bug the global Reset had.
	dst := make([]byte, BlockSize)
	if _, _, err := a.Read(0, off2, dst); err != nil {
		t.Fatalf("read of surviving lease's block: %v", err)
	}
	if !bytes.Equal(dst, block(0x22)) {
		t.Fatal("surviving lease's block corrupted by other lease's Free")
	}
	// l1's block is gone.
	if _, _, err := a.Read(0, off1, dst); err == nil {
		t.Fatal("freed block still readable")
	}
	if got := a.LiveExtents(); got != 1 {
		t.Fatalf("LiveExtents = %d, want 1", got)
	}
	if got := l1.LiveBytes(); got != 0 {
		t.Fatalf("freed lease LiveBytes = %d, want 0", got)
	}
	if got := l2.LiveBytes(); got != BlockSize {
		t.Fatalf("live lease LiveBytes = %d, want %d", got, BlockSize)
	}

	l2.Free()
	if got := a.LiveExtents(); got != 0 {
		t.Fatalf("LiveExtents after all frees = %d, want 0", got)
	}
	if got := a.Leases(); got != 0 {
		t.Fatalf("Leases after all frees = %d, want 0", got)
	}
	if got := a.Stats().SpillBytes; got != 0 {
		t.Fatalf("SpillBytes after all frees = %d, want 0", got)
	}
}

func TestLeaseFreeSpaceIsReused(t *testing.T) {
	// Capacity of exactly 4 blocks: if freed space were not reused, the
	// second wave of allocations would fail with ErrDeviceFull.
	a := leaseArray(t, 1, 4*BlockSize)
	for wave := 0; wave < 8; wave++ {
		l := a.NewLease()
		for i := 0; i < 4; i++ {
			if _, err := a.AllocSpillLease(0, BlockSize, l); err != nil {
				t.Fatalf("wave %d alloc %d: %v", wave, i, err)
			}
		}
		if _, err := a.AllocSpillLease(0, BlockSize, l); err == nil {
			t.Fatalf("wave %d: alloc beyond capacity succeeded", wave)
		}
		l.Free()
	}
	if cur := a.devices[0].writeCursor.Load(); cur != 0 {
		t.Fatalf("write cursor = %d after all frees, want 0 (cursor shrink)", cur)
	}
}

func TestLeaseInterleavedFreeCoalesces(t *testing.T) {
	// Interleave two leases' extents so l1's frees leave holes; after l2
	// frees too, everything coalesces and the cursor returns to zero.
	a := leaseArray(t, 1, 0)
	l1, l2 := a.NewLease(), a.NewLease()
	for i := 0; i < 6; i++ {
		l := l1
		if i%2 == 1 {
			l = l2
		}
		if _, err := a.AllocSpillLease(0, BlockSize, l); err != nil {
			t.Fatal(err)
		}
	}
	l1.Free()
	d := a.devices[0]
	if d.writeCursor.Load() == 0 {
		t.Fatal("cursor fully shrank while l2 still holds extents")
	}
	// A 2-block allocation cannot fit in the 1-block holes l1 left; it must
	// extend the cursor, not overwrite l2's data.
	l3 := a.NewLease()
	off, err := a.AllocSpillLease(0, 2*BlockSize, l3)
	if err != nil {
		t.Fatal(err)
	}
	if off < 6*BlockSize {
		t.Fatalf("2-block alloc placed at %d inside 1-block holes", off)
	}
	l3.Free()
	l2.Free()
	if cur := d.writeCursor.Load(); cur != 0 {
		t.Fatalf("cursor = %d after all frees, want 0", cur)
	}
	if len(d.frees) != 0 || d.freeBytes != 0 {
		t.Fatalf("free list not fully coalesced: %v (%d bytes)", d.frees, d.freeBytes)
	}
}

func TestLeaseFreeIsIdempotent(t *testing.T) {
	a := leaseArray(t, 2, 0)
	l := a.NewLease()
	if _, err := a.AllocSpillLease(1, BlockSize, l); err != nil {
		t.Fatal(err)
	}
	l.Free()
	l.Free()
	if got := a.Leases(); got != 0 {
		t.Fatalf("Leases = %d after double Free, want 0", got)
	}
}

func TestResetClearsLeaseBookkeeping(t *testing.T) {
	a := leaseArray(t, 1, 2*BlockSize)
	l := a.NewLease()
	if _, err := a.AllocSpillLease(0, 2*BlockSize, l); err != nil {
		t.Fatal(err)
	}
	a.Reset()
	if got := a.LiveExtents(); got != 0 {
		t.Fatalf("LiveExtents after Reset = %d, want 0", got)
	}
	// Full capacity is available again.
	if _, err := a.AllocSpill(0, 2*BlockSize); err != nil {
		t.Fatalf("alloc after Reset: %v", err)
	}
}
