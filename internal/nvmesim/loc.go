package nvmesim

import "fmt"

// Loc is the on-disk location of a spilled block, packed into a single
// 64-bit integer exactly as the paper describes (§5.3): device id, offset,
// and size fit because offset and size must be multiples of the device
// block size.
//
// Layout (low to high): 40 bits offset-in-blocks, 16 bits size-in-blocks,
// 8 bits device id. That addresses 512 TiB per device with blocks up to
// 32 MiB, far beyond the engine's 64 KiB pages and staging areas.
type Loc uint64

const (
	locOffsetBits = 40
	locSizeBits   = 16
	locOffsetMask = 1<<locOffsetBits - 1
	locSizeMask   = 1<<locSizeBits - 1
)

// MakeLoc packs a location. Offset and size must be block-aligned and in
// range; it panics otherwise, since locations are engine-internal.
func MakeLoc(dev int, offset int64, size int) Loc {
	if offset%BlockSize != 0 {
		panic(fmt.Sprintf("nvmesim: unaligned offset %d", offset))
	}
	ob := uint64(offset / BlockSize)
	sb := uint64(alignUp(size) / BlockSize)
	if ob > locOffsetMask || sb > locSizeMask || dev < 0 || dev > 255 {
		panic(fmt.Sprintf("nvmesim: location out of range dev=%d off=%d size=%d", dev, offset, size))
	}
	return Loc(ob | sb<<locOffsetBits | uint64(dev)<<(locOffsetBits+locSizeBits))
}

// Device returns the device id.
func (l Loc) Device() int { return int(l >> (locOffsetBits + locSizeBits)) }

// Offset returns the byte offset on the device.
func (l Loc) Offset() int64 { return int64(l&locOffsetMask) * BlockSize }

// Size returns the block-aligned size in bytes.
func (l Loc) Size() int { return int(l>>locOffsetBits&locSizeMask) * BlockSize }

// String implements fmt.Stringer.
func (l Loc) String() string {
	return fmt.Sprintf("dev%d@%d+%d", l.Device(), l.Offset(), l.Size())
}
