// Package obsrv serves live engine observability over HTTP: Prometheus
// text-format counters at /metrics, a JSON snapshot of in-flight queries at
// /queries, and the standard pprof handlers under /debug/pprof/.
//
// The package owns no state — it renders snapshots pulled from the engine's
// existing counters (metrics.FaultTracker, nvmesim per-device stats, and the
// query registry), so serving requests never perturbs the hot path beyond
// the atomic loads the snapshot functions already perform.
package obsrv

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/pprof"
	"sort"
	"strings"

	"github.com/spilly-db/spilly/internal/metrics"
	"github.com/spilly-db/spilly/internal/nvmesim"
	"github.com/spilly-db/spilly/internal/trace"
)

// QueryStatus describes one in-flight or recently observed query for the
// /queries endpoint.
type QueryStatus struct {
	ID             int64   `json:"id"`
	Label          string  `json:"label"`
	ElapsedSeconds float64 `json:"elapsed_seconds"`
	ScannedRows    int64   `json:"scanned_rows"`
	ScannedBytes   int64   `json:"scanned_bytes"`
	SpilledBytes   int64   `json:"spilled_bytes"`
	WrittenBytes   int64   `json:"written_bytes"`
	SpillReadBytes int64   `json:"spill_read_bytes"`
	// Spans is the query's per-operator span forest so far; present only
	// when the query runs with profiling enabled.
	Spans []trace.SpanSnapshot `json:"spans,omitempty"`
}

// GCStats are cumulative GC-pressure totals attributed to query execution.
type GCStats struct {
	AllocObjects int64
	AllocBytes   int64
	GCPauseSecs  float64
	NumGC        int64
}

// SpillStats are cumulative phase-2 overlap and integrity totals: worker
// time stalled on spill readback, partitions whose readback was prefetched,
// and the checksummed-frame/parity-stripe counters.
type SpillStats struct {
	StallSecs            float64
	PrefetchedPartitions int64
	PagesVerified        int64
	ChecksumErrors       int64
	Reconstructions      int64
}

// AdmissionStats is a snapshot of the engine's memory governor and query
// registry: how many queries run and wait, how much of the governed budget
// is granted, and cumulative admission totals.
type AdmissionStats struct {
	ActiveQueries int
	Queued        int
	GrantedBytes  int64
	TotalBytes    int64
	Admitted      int64
	Timeouts      int64
	WaitSecs      float64
}

// LeaseStats is a snapshot of spill-extent ownership: leases still live,
// live extents across the array, and live bytes per lease.
type LeaseStats struct {
	Leases      int64
	LiveExtents int64
	LiveBytes   map[uint64]int64
}

// BufCacheStats is a snapshot of the table buffer cache: block lookup
// counters, current fill, and inserts refused for exceeding the
// per-shard capacity.
type BufCacheStats struct {
	Hits      int64
	Misses    int64
	Used      int64
	Blocks    int64
	Oversized int64
}

// ResultCacheStats is a snapshot of the query-result reuse cache: residency
// per tier, the governor reservation backing the memory tier, and cumulative
// hit/demotion/restore counters.
type ResultCacheStats struct {
	HotEntries    int64
	HotBytes      int64
	DiskEntries   int64
	DiskBytes     int64
	ReservedBytes int64
	Hits          int64
	HitsMemory    int64
	HitsNVMe      int64
	Misses        int64
	Puts          int64
	Rejects       int64
	Demotions     int64
	Restores      int64
	RestoreBytes  int64
	Drops         int64
	Invalidated   int64
	Shrinks       int64
}

// IOSchedClassStats are one priority class's cumulative dispatch counters
// in a shared I/O scheduler.
type IOSchedClassStats struct {
	Class      string
	Dispatched int64
	Deferred   int64
}

// IOSchedDeviceStats are one device's live queue gauges in a shared I/O
// scheduler: requests in flight (depth), requests deferred (queued), and the
// simulated channel backlog, split by channel.
type IOSchedDeviceStats struct {
	ReadDepth        int
	WriteDepth       int
	ReadQueued       int
	WriteQueued      int
	ReadBacklogSecs  float64
	WriteBacklogSecs float64
}

// IOSchedStats is a snapshot of one shared I/O scheduler (one per array):
// per-class dispatch counters, promotion/aging totals, and per-device
// depth/backlog gauges.
type IOSchedStats struct {
	Array    string // which array the scheduler serves, e.g. "spill"
	Classes  []IOSchedClassStats
	Promoted int64
	Aged     int64
	Queued   int64
	Inflight int64
	Devices  []IOSchedDeviceStats
}

// Server renders engine observability snapshots over HTTP. All fields are
// optional; nil sources simply omit their metrics.
type Server struct {
	// Faults supplies cumulative query and fault-path counters.
	Faults *metrics.FaultTracker
	// SpillArray and TableArray supply per-device I/O counters.
	SpillArray *nvmesim.Array
	TableArray *nvmesim.Array
	// Queries returns a snapshot of in-flight queries.
	Queries func() []QueryStatus
	// GC returns cumulative allocation and collector totals across queries.
	GC func() GCStats
	// Spill returns cumulative spill-readback stall totals across queries.
	Spill func() SpillStats
	// Admission returns the memory governor / query registry snapshot.
	Admission func() AdmissionStats
	// Leases returns the spill-extent ownership snapshot.
	Leases func() LeaseStats
	// BufCache returns the table buffer-cache snapshot.
	BufCache func() BufCacheStats
	// ResultCache returns the query-result reuse-cache snapshot.
	ResultCache func() ResultCacheStats
	// IOSched returns the shared I/O scheduler snapshots (one per array).
	IOSched func() []IOSchedStats
}

// Handler returns the observability mux: /metrics, /queries, /debug/pprof/.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", s.serveMetrics)
	mux.HandleFunc("/queries", s.serveQueries)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

func (s *Server) serveQueries(w http.ResponseWriter, _ *http.Request) {
	qs := []QueryStatus{}
	if s.Queries != nil {
		qs = s.Queries()
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(map[string]any{"queries": qs})
}

func (s *Server) serveMetrics(w http.ResponseWriter, _ *http.Request) {
	var b strings.Builder
	if s.Faults != nil {
		writeFaults(&b, s.Faults.Snapshot())
	}
	if s.Queries != nil {
		writeCounter(&b, "spilly_queries_in_flight",
			"gauge", "Queries currently executing.",
			sample{value: float64(len(s.Queries()))})
	}
	if s.GC != nil {
		g := s.GC()
		writeCounter(&b, "spilly_query_alloc_objects_total", "counter",
			"Heap objects allocated during query execution.",
			sample{value: float64(g.AllocObjects)})
		writeCounter(&b, "spilly_query_alloc_bytes_total", "counter",
			"Heap bytes allocated during query execution.",
			sample{value: float64(g.AllocBytes)})
		writeCounter(&b, "spilly_query_gc_pause_seconds_total", "counter",
			"Stop-the-world GC pause time incurred during query execution.",
			sample{value: g.GCPauseSecs})
		writeCounter(&b, "spilly_query_gc_cycles_total", "counter",
			"Garbage collections that ran during query execution.",
			sample{value: float64(g.NumGC)})
	}
	if s.Spill != nil {
		sp := s.Spill()
		writeCounter(&b, "spilly_query_spill_stall_seconds", "counter",
			"Worker time stalled waiting on spill readback during query execution.",
			sample{value: sp.StallSecs})
		writeCounter(&b, "spilly_query_prefetched_partitions_total", "counter",
			"Spilled partitions whose readback was in flight before phase 2 reached them.",
			sample{value: float64(sp.PrefetchedPartitions)})
		writeCounter(&b, "spilly_spill_pages_verified_total", "counter",
			"Spilled page frames whose checksums verified on readback.",
			sample{value: float64(sp.PagesVerified)})
		writeCounter(&b, "spilly_spill_checksum_errors_total", "counter",
			"Spilled blocks that failed checksum verification on readback.",
			sample{value: float64(sp.ChecksumErrors)})
		writeCounter(&b, "spilly_spill_reconstructions_total", "counter",
			"Spilled blocks rebuilt from their XOR parity stripe.",
			sample{value: float64(sp.Reconstructions)})
	}
	if s.Admission != nil {
		a := s.Admission()
		writeCounter(&b, "spilly_engine_active_queries", "gauge",
			"Queries currently holding a memory grant and executing.",
			sample{value: float64(a.ActiveQueries)})
		writeCounter(&b, "spilly_engine_admission_queued", "gauge",
			"Queries waiting in the admission queue for a memory grant.",
			sample{value: float64(a.Queued)})
		writeCounter(&b, "spilly_engine_admission_granted_bytes", "gauge",
			"Memory currently granted to admitted queries.",
			sample{value: float64(a.GrantedBytes)})
		writeCounter(&b, "spilly_engine_admission_total_bytes", "gauge",
			"The governed engine-wide memory budget.",
			sample{value: float64(a.TotalBytes)})
		writeCounter(&b, "spilly_engine_admissions_total", "counter",
			"Memory grants handed out to queries.",
			sample{value: float64(a.Admitted)})
		writeCounter(&b, "spilly_engine_admission_timeouts_total", "counter",
			"Queries that timed out waiting for admission.",
			sample{value: float64(a.Timeouts)})
		writeCounter(&b, "spilly_engine_admission_wait_seconds", "counter",
			"Total time admitted queries spent in the admission queue.",
			sample{value: a.WaitSecs})
	}
	if s.Leases != nil {
		l := s.Leases()
		writeCounter(&b, "spilly_spill_leases", "gauge",
			"Spill leases created and not yet freed.",
			sample{value: float64(l.Leases)})
		writeCounter(&b, "spilly_spill_live_extents", "gauge",
			"Live spill extents across the array (returns to zero when idle).",
			sample{value: float64(l.LiveExtents)})
		if len(l.LiveBytes) > 0 {
			ids := make([]uint64, 0, len(l.LiveBytes))
			for id := range l.LiveBytes {
				ids = append(ids, id)
			}
			sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
			ss := make([]sample, len(ids))
			for i, id := range ids {
				ss[i] = sample{
					labels: fmt.Sprintf("lease=%q", fmt.Sprint(id)),
					value:  float64(l.LiveBytes[id]),
				}
			}
			writeCounter(&b, "spilly_spill_lease_live_bytes", "gauge",
				"Spill bytes currently live under each query lease.", ss...)
		}
	}
	if s.BufCache != nil {
		bc := s.BufCache()
		writeCounter(&b, "spilly_bufcache_hits_total", "counter",
			"Table blocks served from the buffer cache.",
			sample{value: float64(bc.Hits)})
		writeCounter(&b, "spilly_bufcache_misses_total", "counter",
			"Table block lookups that missed the buffer cache.",
			sample{value: float64(bc.Misses)})
		writeCounter(&b, "spilly_bufcache_used_bytes", "gauge",
			"Bytes currently held in the buffer cache.",
			sample{value: float64(bc.Used)})
		writeCounter(&b, "spilly_bufcache_blocks", "gauge",
			"Blocks currently held in the buffer cache.",
			sample{value: float64(bc.Blocks)})
		writeCounter(&b, "spilly_bufcache_oversized_total", "counter",
			"Block inserts refused for exceeding the per-shard capacity (cache capacity / 16).",
			sample{value: float64(bc.Oversized)})
	}
	if s.ResultCache != nil {
		rc := s.ResultCache()
		writeCounter(&b, "spilly_cache_entries", "gauge",
			"Result-cache entries resident per tier.",
			sample{labels: `tier="memory"`, value: float64(rc.HotEntries)},
			sample{labels: `tier="nvme"`, value: float64(rc.DiskEntries)})
		writeCounter(&b, "spilly_cache_bytes", "gauge",
			"Result-cache bytes resident per tier (nvme is the raw, uncompressed footprint).",
			sample{labels: `tier="memory"`, value: float64(rc.HotBytes)},
			sample{labels: `tier="nvme"`, value: float64(rc.DiskBytes)})
		writeCounter(&b, "spilly_cache_reserved_bytes", "gauge",
			"Governor memory reservation currently held by the result cache.",
			sample{value: float64(rc.ReservedBytes)})
		writeCounter(&b, "spilly_cache_hits_total", "counter",
			"Result-cache hits by serving tier.",
			sample{labels: `tier="memory"`, value: float64(rc.HitsMemory)},
			sample{labels: `tier="nvme"`, value: float64(rc.HitsNVMe)})
		writeCounter(&b, "spilly_cache_misses_total", "counter",
			"Cacheable queries that found no usable result-cache entry.",
			sample{value: float64(rc.Misses)})
		writeCounter(&b, "spilly_cache_puts_total", "counter",
			"Results admitted into the cache.",
			sample{value: float64(rc.Puts)})
		writeCounter(&b, "spilly_cache_rejects_total", "counter",
			"Results refused by cost-based admission.",
			sample{value: float64(rc.Rejects)})
		writeCounter(&b, "spilly_cache_demotions_total", "counter",
			"Entries demoted from memory to the NVMe spill array.",
			sample{value: float64(rc.Demotions)})
		writeCounter(&b, "spilly_cache_restores_total", "counter",
			"Demoted entries read back from the spill array.",
			sample{value: float64(rc.Restores)})
		writeCounter(&b, "spilly_cache_restore_bytes_total", "counter",
			"Raw bytes materialized by result-cache restores.",
			sample{value: float64(rc.RestoreBytes)})
		writeCounter(&b, "spilly_cache_drops_total", "counter",
			"Entries dropped outright (eviction without demotion, or unreadable).",
			sample{value: float64(rc.Drops)})
		writeCounter(&b, "spilly_cache_invalidated_total", "counter",
			"Entries invalidated by catalog changes.",
			sample{value: float64(rc.Invalidated)})
		writeCounter(&b, "spilly_cache_shrinks_total", "counter",
			"Governor pressure callbacks that shrank the cache.",
			sample{value: float64(rc.Shrinks)})
	}
	if s.IOSched != nil {
		writeIOSched(&b, s.IOSched())
	}
	writeArray(&b, "spill", s.SpillArray)
	writeArray(&b, "table", s.TableArray)
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	fmt.Fprint(w, b.String())
}

// sample is one exposition line: an optional label set and a value.
type sample struct {
	labels string // rendered label set, e.g. `array="spill",device="0"`
	value  float64
}

// writeCounter emits one metric family in Prometheus text exposition format.
func writeCounter(b *strings.Builder, name, typ, help string, samples ...sample) {
	fmt.Fprintf(b, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
	for _, s := range samples {
		if s.labels != "" {
			fmt.Fprintf(b, "%s{%s} %g\n", name, s.labels, s.value)
		} else {
			fmt.Fprintf(b, "%s %g\n", name, s.value)
		}
	}
}

func writeFaults(b *strings.Builder, c metrics.FaultCounts) {
	writeCounter(b, "spilly_queries_started_total", "counter",
		"Queries that began execution.", sample{value: float64(c.StartedQueries)})
	writeCounter(b, "spilly_queries_completed_total", "counter",
		"Queries that finished successfully.", sample{value: float64(c.CompletedQueries)})
	writeCounter(b, "spilly_queries_failed_total", "counter",
		"Queries that returned a fatal error.", sample{value: float64(c.FailedQueries)})
	writeCounter(b, "spilly_queries_canceled_total", "counter",
		"Queries aborted by context cancellation.", sample{value: float64(c.CanceledQueries)})
	writeCounter(b, "spilly_spill_retries_total", "counter",
		"Transient spill I/O errors recovered by retry.", sample{value: float64(c.Retries)})
	writeCounter(b, "spilly_spill_failovers_total", "counter",
		"Spill writes re-striped away from a dead device.", sample{value: float64(c.Failovers)})
	if len(c.DeviceErrors) > 0 {
		devs := make([]int, 0, len(c.DeviceErrors))
		for dev := range c.DeviceErrors {
			devs = append(devs, dev)
		}
		sort.Ints(devs)
		ss := make([]sample, len(devs))
		for i, dev := range devs {
			ss[i] = sample{
				labels: fmt.Sprintf("device=%q", fmt.Sprint(dev)),
				value:  float64(c.DeviceErrors[dev]),
			}
		}
		writeCounter(b, "spilly_device_errors_total", "counter",
			"Fatal I/O errors attributed to a device.", ss...)
	}
}

// writeIOSched emits the shared I/O scheduler counters: per-class dispatch
// totals plus per-device depth, queue, and backlog gauges, labeled by array.
func writeIOSched(b *strings.Builder, scheds []IOSchedStats) {
	if len(scheds) == 0 {
		return
	}
	var disp, def []sample
	for _, sc := range scheds {
		for _, c := range sc.Classes {
			l := fmt.Sprintf("array=%q,class=%q", sc.Array, c.Class)
			disp = append(disp, sample{labels: l, value: float64(c.Dispatched)})
			def = append(def, sample{labels: l, value: float64(c.Deferred)})
		}
	}
	writeCounter(b, "spilly_iosched_dispatched_total", "counter",
		"I/O requests the shared scheduler issued to the array, by priority class.", disp...)
	writeCounter(b, "spilly_iosched_deferred_total", "counter",
		"Of the dispatched requests, those that waited at least one scheduling pass.", def...)
	perSched := func(f func(IOSchedStats) float64) []sample {
		ss := make([]sample, len(scheds))
		for i, sc := range scheds {
			ss[i] = sample{labels: fmt.Sprintf("array=%q", sc.Array), value: f(sc)}
		}
		return ss
	}
	writeCounter(b, "spilly_iosched_promoted_total", "counter",
		"Deferred reads promoted to demand class by a blocking consumer.",
		perSched(func(sc IOSchedStats) float64 { return float64(sc.Promoted) })...)
	writeCounter(b, "spilly_iosched_aged_total", "counter",
		"Deferred requests dispatched above their class's share by the aging escape hatch.",
		perSched(func(sc IOSchedStats) float64 { return float64(sc.Aged) })...)
	writeCounter(b, "spilly_iosched_queued", "gauge",
		"Requests currently deferred in the scheduler's queues.",
		perSched(func(sc IOSchedStats) float64 { return float64(sc.Queued) })...)
	writeCounter(b, "spilly_iosched_inflight", "gauge",
		"Requests dispatched to the array and not yet complete.",
		perSched(func(sc IOSchedStats) float64 { return float64(sc.Inflight) })...)
	perDev := func(f func(IOSchedDeviceStats) float64, channel string) []sample {
		var ss []sample
		for _, sc := range scheds {
			for i, d := range sc.Devices {
				ss = append(ss, sample{
					labels: fmt.Sprintf("array=%q,device=\"%d\",channel=%q", sc.Array, i, channel),
					value:  f(d),
				})
			}
		}
		return ss
	}
	writeCounter(b, "spilly_iosched_device_depth", "gauge",
		"Requests in flight on the device channel (the scheduler targets its depth target).",
		append(perDev(func(d IOSchedDeviceStats) float64 { return float64(d.ReadDepth) }, "read"),
			perDev(func(d IOSchedDeviceStats) float64 { return float64(d.WriteDepth) }, "write")...)...)
	writeCounter(b, "spilly_iosched_device_queued", "gauge",
		"Requests deferred behind the device channel's depth target.",
		append(perDev(func(d IOSchedDeviceStats) float64 { return float64(d.ReadQueued) }, "read"),
			perDev(func(d IOSchedDeviceStats) float64 { return float64(d.WriteQueued) }, "write")...)...)
	writeCounter(b, "spilly_iosched_device_backlog_seconds", "gauge",
		"Simulated device channel backlog (busy-until minus now) seen by the scheduler.",
		append(perDev(func(d IOSchedDeviceStats) float64 { return d.ReadBacklogSecs }, "read"),
			perDev(func(d IOSchedDeviceStats) float64 { return d.WriteBacklogSecs }, "write")...)...)
}

// writeArray emits per-device counters for one nvmesim array.
func writeArray(b *strings.Builder, arrayName string, a *nvmesim.Array) {
	if a == nil {
		return
	}
	stats := a.PerDevice()
	collect := func(f func(nvmesim.DeviceStats) float64) []sample {
		ss := make([]sample, len(stats))
		for i, d := range stats {
			ss[i] = sample{
				labels: fmt.Sprintf("array=%q,device=\"%d\"", arrayName, i),
				value:  f(d),
			}
		}
		return ss
	}
	writeCounter(b, "spilly_device_read_bytes_total", "counter",
		"Bytes read from the device.",
		collect(func(d nvmesim.DeviceStats) float64 { return float64(d.BytesRead) })...)
	writeCounter(b, "spilly_device_written_bytes_total", "counter",
		"Bytes written to the device.",
		collect(func(d nvmesim.DeviceStats) float64 { return float64(d.BytesWritten) })...)
	writeCounter(b, "spilly_device_reads_total", "counter",
		"Read requests issued to the device.",
		collect(func(d nvmesim.DeviceStats) float64 { return float64(d.Reads) })...)
	writeCounter(b, "spilly_device_writes_total", "counter",
		"Write requests issued to the device.",
		collect(func(d nvmesim.DeviceStats) float64 { return float64(d.Writes) })...)
	writeCounter(b, "spilly_device_spill_bytes", "gauge",
		"Bytes currently allocated in the device spill area.",
		collect(func(d nvmesim.DeviceStats) float64 { return float64(d.SpillBytes) })...)
	writeCounter(b, "spilly_device_read_backlog_seconds", "gauge",
		"Simulated read-channel backlog (busy-until minus now).",
		collect(func(d nvmesim.DeviceStats) float64 { return d.ReadBacklog.Seconds() })...)
	writeCounter(b, "spilly_device_write_backlog_seconds", "gauge",
		"Simulated write-channel backlog (busy-until minus now).",
		collect(func(d nvmesim.DeviceStats) float64 { return d.WriteBacklog.Seconds() })...)
	writeCounter(b, "spilly_device_io_errors_total", "counter",
		"I/O errors returned by the device (injected or organic).",
		collect(func(d nvmesim.DeviceStats) float64 {
			return float64(d.ReadErrors + d.WriteErrors)
		})...)
	writeCounter(b, "spilly_device_dead", "gauge",
		"1 when the device has failed permanently.",
		collect(func(d nvmesim.DeviceStats) float64 {
			if d.Dead {
				return 1
			}
			return 0
		})...)
}
