package obsrv

import (
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"github.com/spilly-db/spilly/internal/metrics"
	"github.com/spilly-db/spilly/internal/nvmesim"
)

func testServer(t *testing.T) *Server {
	t.Helper()
	ft := metrics.NewFaultTracker()
	ft.QueryStarted()
	ft.QueryStarted()
	ft.QueryCompleted()
	ft.QueryFailed()
	ft.AddRetries(3)
	ft.AddFailovers(1)
	ft.DeviceError(2, 4)

	arr := nvmesim.New(2, nvmesim.DeviceSpec{
		ReadBandwidth:  1e9,
		WriteBandwidth: 1e9,
		Latency:        time.Microsecond,
	}, nvmesim.RealClock{})
	off, err := arr.AllocSpill(0, 4096)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := arr.Write(0, off, make([]byte, 4096)); err != nil {
		t.Fatal(err)
	}

	return &Server{
		Faults:     ft,
		SpillArray: arr,
		Queries: func() []QueryStatus {
			return []QueryStatus{{ID: 7, Label: "tpch-q9", ScannedRows: 123}}
		},
		BufCache: func() BufCacheStats {
			return BufCacheStats{Hits: 10, Misses: 4, Used: 8192, Blocks: 2, Oversized: 1}
		},
		ResultCache: func() ResultCacheStats {
			return ResultCacheStats{
				HotEntries: 3, HotBytes: 1024, DiskEntries: 1, DiskBytes: 512,
				ReservedBytes: 1024, HitsMemory: 5, HitsNVMe: 2, Misses: 6,
				Puts: 4, Demotions: 1, Restores: 2,
			}
		},
		IOSched: func() []IOSchedStats {
			return []IOSchedStats{{
				Array: "spill",
				Classes: []IOSchedClassStats{
					{Class: "demand", Dispatched: 100, Deferred: 2},
					{Class: "prefetch", Dispatched: 40, Deferred: 30},
				},
				Promoted: 5, Aged: 3, Queued: 7, Inflight: 8,
				Devices: []IOSchedDeviceStats{
					{ReadDepth: 6, WriteDepth: 2, ReadQueued: 4, WriteQueued: 3,
						ReadBacklogSecs: 0.25, WriteBacklogSecs: 0.5},
				},
			}}
		},
	}
}

func TestMetricsEndpoint(t *testing.T) {
	h := testServer(t).Handler()
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != 200 {
		t.Fatalf("status = %d", rec.Code)
	}
	body := rec.Body.String()
	for _, want := range []string{
		"# TYPE spilly_queries_started_total counter",
		"spilly_queries_started_total 2",
		"spilly_queries_completed_total 1",
		"spilly_queries_failed_total 1",
		"spilly_spill_retries_total 3",
		"spilly_spill_failovers_total 1",
		`spilly_device_errors_total{device="2"} 4`,
		`spilly_device_written_bytes_total{array="spill",device="0"} 4096`,
		`spilly_device_written_bytes_total{array="spill",device="1"} 0`,
		`spilly_device_spill_bytes{array="spill",device="0"} 4096`,
		"spilly_queries_in_flight 1",
		"spilly_bufcache_hits_total 10",
		"spilly_bufcache_misses_total 4",
		"spilly_bufcache_used_bytes 8192",
		"spilly_bufcache_blocks 2",
		"spilly_bufcache_oversized_total 1",
		`spilly_cache_entries{tier="memory"} 3`,
		`spilly_cache_entries{tier="nvme"} 1`,
		`spilly_cache_hits_total{tier="memory"} 5`,
		`spilly_cache_hits_total{tier="nvme"} 2`,
		"spilly_cache_reserved_bytes 1024",
		"spilly_cache_misses_total 6",
		"spilly_cache_demotions_total 1",
		"spilly_cache_restores_total 2",
		`spilly_iosched_dispatched_total{array="spill",class="demand"} 100`,
		`spilly_iosched_dispatched_total{array="spill",class="prefetch"} 40`,
		`spilly_iosched_deferred_total{array="spill",class="prefetch"} 30`,
		`spilly_iosched_promoted_total{array="spill"} 5`,
		`spilly_iosched_aged_total{array="spill"} 3`,
		`spilly_iosched_queued{array="spill"} 7`,
		`spilly_iosched_inflight{array="spill"} 8`,
		`spilly_iosched_device_depth{array="spill",device="0",channel="read"} 6`,
		`spilly_iosched_device_queued{array="spill",device="0",channel="write"} 3`,
		`spilly_iosched_device_backlog_seconds{array="spill",device="0",channel="read"} 0.25`,
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("metrics missing %q:\n%s", want, body)
		}
	}
}

func TestQueriesEndpoint(t *testing.T) {
	h := testServer(t).Handler()
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/queries", nil))
	if rec.Code != 200 {
		t.Fatalf("status = %d", rec.Code)
	}
	var snap struct {
		Queries []QueryStatus `json:"queries"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &snap); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, rec.Body.String())
	}
	if len(snap.Queries) != 1 || snap.Queries[0].Label != "tpch-q9" || snap.Queries[0].ScannedRows != 123 {
		t.Fatalf("snapshot = %+v", snap.Queries)
	}
}

// TestNilSources: a server with no sources must still serve empty documents
// rather than panic.
func TestNilSources(t *testing.T) {
	h := (&Server{}).Handler()
	for _, path := range []string{"/metrics", "/queries"} {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
		if rec.Code != 200 {
			t.Fatalf("GET %s: %d", path, rec.Code)
		}
	}
}
