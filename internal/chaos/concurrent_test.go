package chaos_test

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	spilly "github.com/spilly-db/spilly"
	"github.com/spilly-db/spilly/internal/chaos"
	"github.com/spilly-db/spilly/internal/nvmesim"
	"github.com/spilly-db/spilly/internal/uring"
)

// concurrentCfg pins the Umami tuning so per-grant retuning cannot change
// partitioning between the serial baseline and the concurrent runs, and
// uses the smallest load/budget pair at which Q9 and Q12 both spill.
func concurrentCfg() spilly.Config {
	return spilly.Config{
		Workers:      2,
		MemoryBudget: 128 << 10,
		MemoryFloor:  64 << 10,
		PageSize:     8 << 10,
		Partitions:   16,
		Compression:  true,
	}
}

func newConcurrentEngine(t *testing.T) *spilly.Engine {
	t.Helper()
	eng, err := spilly.Open(concurrentCfg())
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.LoadTPCH(0.01, false); err != nil {
		t.Fatal(err)
	}
	return eng
}

// TestConcurrentQueriesUnderTransientFaults combines the two failure
// domains this package and the admission governor each cover alone:
// several queries share the spill array while every device injects
// transient faults. Retried I/O must land in the right query's extents —
// a retry that reallocated from a global cursor (the pre-lease design)
// could interleave two queries' rewrites — so every result must still be
// bit-identical to its serial fault-free run, and recovery must not leak
// extents or leases.
func TestConcurrentQueriesUnderTransientFaults(t *testing.T) {
	queries := []int{9, 12, 9, 12}

	ref := newConcurrentEngine(t)
	want := map[int]string{}
	for _, q := range []int{9, 12} {
		res, err := ref.RunTPCH(q)
		if err != nil {
			t.Fatalf("baseline Q%d: %v", q, err)
		}
		if res.Stats.SpilledBytes == 0 {
			t.Fatalf("baseline Q%d did not spill; faults would not exercise the shared spill path", q)
		}
		want[q] = chaos.Fingerprint(res.Batch)
	}

	eng := newConcurrentEngine(t)
	chaos.Schedule{
		Seed:         7,
		ReadErrRate:  0.05,
		WriteErrRate: 0.05,
		SpikeRate:    0.02,
		SpikeLatency: 200 * time.Microsecond,
		Script: map[int64]nvmesim.FaultKind{
			1: nvmesim.FaultTransient,
			2: nvmesim.FaultTransient,
		},
		ScriptDevice: 3,
	}.Apply(eng.SpillArray())

	var wg sync.WaitGroup
	var retries int64
	var mu sync.Mutex
	errs := make(chan error, len(queries))
	for _, q := range queries {
		wg.Add(1)
		go func(q int) {
			defer wg.Done()
			res, err := eng.RunTPCH(q)
			if err != nil {
				errs <- fmt.Errorf("Q%d under faults: %w", q, err)
				return
			}
			if got := chaos.Fingerprint(res.Batch); got != want[q] {
				errs <- fmt.Errorf("Q%d result under concurrent faults differs from serial fault-free run", q)
			}
			mu.Lock()
			retries += res.Stats.SpillRetries
			mu.Unlock()
		}(q)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if retries == 0 {
		t.Error("no spill retries recorded across any query; the schedule injected no faults into the shared spill path")
	}
	if n := eng.SpillArray().LiveExtents(); n != 0 {
		t.Errorf("%d extents live after recovery; fault retries leaked spill space", n)
	}
	if n := eng.SpillArray().Leases(); n != 0 {
		t.Errorf("%d leases live after all queries finished", n)
	}
	if g := eng.GovernorStats(); g.Granted != 0 || g.Active != 0 || g.Queued != 0 {
		t.Errorf("governor not drained after faulted concurrent run: %+v", g)
	}
}

// TestMixedClassLoadUnderDeviceChaos drives the shared I/O scheduler with
// its full class mix — table-scan prefetch and promoted demand reads on the
// table array, spill writes and readback demand reads on the spill array —
// from eight concurrent queries while a spill device dies mid-run and both
// arrays inject latency spikes. With parity on, every query must either
// return its exact serial result (healing dead-device readbacks from
// parity) or fail with a structured error naming the device; afterwards
// the scheduler, leases, and governor must all drain to zero.
func TestMixedClassLoadUnderDeviceChaos(t *testing.T) {
	queries := []int{1, 6, 9, 12, 1, 9, 12, 6}

	cfg := concurrentCfg()
	cfg.SpillParity = 2

	newChaosEngine := func() *spilly.Engine {
		eng, err := spilly.Open(cfg)
		if err != nil {
			t.Fatal(err)
		}
		// Tables on the NVMe array: scans become real prefetch-class I/O
		// through the table scheduler, not memory reads.
		if err := eng.LoadTPCH(0.01, true); err != nil {
			t.Fatal(err)
		}
		return eng
	}

	ref := newChaosEngine()
	want := map[int]string{}
	spilled := false
	for _, q := range []int{1, 6, 9, 12} {
		res, err := ref.RunTPCH(q)
		if err != nil {
			t.Fatalf("baseline Q%d: %v", q, err)
		}
		want[q] = chaos.Fingerprint(res.Batch)
		spilled = spilled || res.Stats.SpilledBytes > 0
	}
	if !spilled {
		t.Fatal("no baseline query spilled; the mix would not exercise the spill classes")
	}

	eng := newChaosEngine()
	// Spill device 0 dies mid-run; both arrays suffer latency spikes.
	chaos.Schedule{
		Seed:         29,
		KillDevice:   0,
		KillAfterOps: 30,
		SpikeRate:    0.05,
		SpikeLatency: 300 * time.Microsecond,
	}.Apply(eng.SpillArray())
	chaos.Schedule{
		Seed:         31,
		SpikeRate:    0.05,
		SpikeLatency: 300 * time.Microsecond,
	}.Apply(eng.TableArray())

	var wg sync.WaitGroup
	errs := make(chan error, len(queries))
	for _, q := range queries {
		wg.Add(1)
		go func(q int) {
			defer wg.Done()
			res, err := eng.RunTPCH(q)
			if err != nil {
				var qe *spilly.QueryError
				if !errors.As(err, &qe) {
					errs <- fmt.Errorf("Q%d under device chaos: %w (%T), want exact result or *QueryError", q, err, err)
				} else if qe.Device != 0 {
					errs <- fmt.Errorf("Q%d failed naming device %d, want the dead device 0", q, qe.Device)
				}
				return
			}
			if got := chaos.Fingerprint(res.Batch); got != want[q] {
				errs <- fmt.Errorf("Q%d result under device chaos differs from serial fault-free run", q)
			}
		}(q)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	if n := eng.SpillArray().LiveExtents(); n != 0 {
		t.Errorf("%d spill extents live after the chaos run", n)
	}
	if n := eng.SpillArray().Leases(); n != 0 {
		t.Errorf("%d leases live after all queries finished", n)
	}
	if g := eng.GovernorStats(); g.Granted != 0 || g.Active != 0 || g.Queued != 0 {
		t.Errorf("governor not drained after chaos run: %+v", g)
	}
	snaps := eng.IOSchedSnapshots()
	if len(snaps) != 2 {
		t.Fatalf("expected spill and table schedulers, got %d", len(snaps))
	}
	for _, sn := range snaps {
		if sn.Stats.Queued != 0 || sn.Stats.Inflight != 0 {
			t.Errorf("iosched[%s] not drained: queued=%d inflight=%d",
				sn.Name, sn.Stats.Queued, sn.Stats.Inflight)
		}
	}
	// The mix must actually have exercised the class spectrum: spill writes
	// and readback demand reads on the spill array, scan prefetch on the
	// table array.
	spillC := snaps[0].Stats.Classes
	if spillC[uring.ClassSpillWrite].Dispatched == 0 || spillC[uring.ClassDemand].Dispatched == 0 {
		t.Errorf("spill scheduler missed classes: %+v", spillC)
	}
	tableC := snaps[1].Stats.Classes
	if tableC[uring.ClassPrefetch].Dispatched == 0 {
		t.Errorf("table scheduler saw no prefetch-class scans: %+v", tableC)
	}
}
