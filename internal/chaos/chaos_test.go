package chaos_test

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	spilly "github.com/spilly-db/spilly"
	"github.com/spilly-db/spilly/internal/chaos"
	"github.com/spilly-db/spilly/internal/nvmesim"
)

// newEngine opens a spilling engine over a small TPC-H load. Q9 under a
// 256 KB budget materializes several joins and must spill, exercising the
// whole write/read-back path the faults target.
func newEngine(t *testing.T, cfg spilly.Config) *spilly.Engine {
	t.Helper()
	if cfg.Workers == 0 {
		cfg.Workers = 2
	}
	if cfg.MemoryBudget == 0 {
		cfg.MemoryBudget = 256 << 10
	}
	eng, err := spilly.Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.LoadTPCH(0.005, false); err != nil {
		t.Fatal(err)
	}
	return eng
}

// baseline computes the fault-free reference fingerprint for Q9.
func baseline(t *testing.T) string {
	t.Helper()
	eng := newEngine(t, spilly.Config{})
	res, err := eng.RunTPCH(9)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.SpilledBytes == 0 {
		t.Fatal("reference run did not spill; chaos would not exercise I/O recovery")
	}
	return chaos.Fingerprint(res.Batch)
}

func TestTPCHBitIdenticalUnderTransientFaults(t *testing.T) {
	want := baseline(t)

	eng := newEngine(t, spilly.Config{})
	// Probabilistic faults well above the 1% floor, plus a scripted
	// transient on one device's first two requests: the query issues only
	// a few dozen spill I/Os at this scale, so the script guarantees the
	// retry path actually runs regardless of how the dice land.
	chaos.Schedule{
		Seed:         42,
		ReadErrRate:  0.05,
		WriteErrRate: 0.05,
		SpikeRate:    0.02,
		SpikeLatency: 200 * time.Microsecond,
		Script: map[int64]nvmesim.FaultKind{
			1: nvmesim.FaultTransient,
			2: nvmesim.FaultTransient,
		},
		ScriptDevice: 3,
	}.Apply(eng.SpillArray())

	res, err := eng.RunTPCH(9)
	if err != nil {
		t.Fatalf("query under transient faults failed: %v", err)
	}
	if got := chaos.Fingerprint(res.Batch); got != want {
		t.Fatalf("result under faults differs from fault-free run:\n%s\nvs\n%s", got, want)
	}
	if res.Stats.SpillRetries == 0 {
		t.Fatal("no retries recorded; the schedule injected no faults into the spill path")
	}
	if c := eng.Faults().Snapshot(); c.Retries == 0 {
		t.Fatalf("engine fault tracker saw no retries: %s", c)
	}
}

func TestPermanentDeviceFailure(t *testing.T) {
	want := baseline(t)

	eng := newEngine(t, spilly.Config{})
	chaos.Schedule{Seed: 7, KillDevice: 0, KillAfterOps: 20}.Apply(eng.SpillArray())

	type outcome struct {
		res *spilly.Result
		err error
	}
	done := make(chan outcome, 1)
	go func() {
		res, err := eng.RunTPCH(9)
		done <- outcome{res, err}
	}()

	var o outcome
	select {
	case o = <-done:
	case <-time.After(60 * time.Second):
		t.Fatal("query hung after permanent device failure")
	}
	if o.err == nil {
		// Failover re-striped all writes onto live devices before any
		// data landed on the dead one: the result must still be exact.
		if got := chaos.Fingerprint(o.res.Batch); got != want {
			t.Fatalf("failover run returned wrong rows:\n%s\nvs\n%s", got, want)
		}
	} else {
		// Data already on the device when it died is gone; the query
		// must fail with a structured error naming the device.
		var qe *spilly.QueryError
		if !errors.As(o.err, &qe) {
			t.Fatalf("err = %v (%T), want *QueryError", o.err, o.err)
		}
		if qe.Device != 0 {
			t.Fatalf("QueryError.Device = %d, want 0", qe.Device)
		}
	}

	// A dead device must not poison the engine: heal the array and the
	// same query must succeed exactly.
	chaos.Clear(eng.SpillArray())
	res, err := eng.RunTPCH(9)
	if err != nil {
		t.Fatalf("query after healing failed: %v", err)
	}
	if got := chaos.Fingerprint(res.Batch); got != want {
		t.Fatal("result after healing differs from fault-free run")
	}
}

func TestCancellationAbortsPromptly(t *testing.T) {
	eng := newEngine(t, spilly.Config{})

	// Already-canceled context: the query must not do any work.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := eng.RunTPCHContext(ctx, 9); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	var qe *spilly.QueryError
	if _, err := eng.RunTPCHContext(ctx, 9); !errors.As(err, &qe) {
		t.Fatalf("err = %v, want *QueryError", err)
	}

	// Mid-run deadline: slow the array down with latency spikes so the
	// deadline always lands mid-query, then require a prompt abort.
	chaos.Schedule{
		Seed:         3,
		SpikeRate:    0.5,
		SpikeLatency: time.Millisecond,
	}.Apply(eng.SpillArray())
	dctx, dcancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer dcancel()
	start := time.Now()
	_, err := eng.RunTPCHContext(dctx, 9)
	elapsed := time.Since(start)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	if elapsed > 10*time.Second {
		t.Fatalf("cancellation took %v; blocking I/O is not observing the context", elapsed)
	}
	if c := eng.Faults().Snapshot(); c.CanceledQueries < 3 {
		t.Fatalf("canceled queries = %d, want 3: %s", c.CanceledQueries, c)
	}

	// The aborted query must not leak: the engine stays fully usable.
	chaos.Clear(eng.SpillArray())
	if _, err := eng.RunTPCH(9); err != nil {
		t.Fatalf("query after cancellation failed: %v", err)
	}
}

func TestDeviceFullFailsGracefully(t *testing.T) {
	dev := spilly.DefaultDevice
	dev.Capacity = 8 << 10 // per-device spill area far below Q9's spill volume
	eng := newEngine(t, spilly.Config{Device: dev})

	_, err := eng.RunTPCH(9)
	if err == nil {
		t.Fatal("query succeeded with a spill area it cannot fit in")
	}
	var qe *spilly.QueryError
	if !errors.As(err, &qe) {
		t.Fatalf("err = %v (%T), want *QueryError", err, err)
	}
	if !strings.Contains(qe.Hint, "spill capacity") {
		t.Fatalf("QueryError.Hint = %q, want a capacity remediation hint", qe.Hint)
	}
}

func TestDeviceDeathDuringPrefetch(t *testing.T) {
	want := baseline(t)

	// Calibrate how many write requests device 0 absorbs during Q9's spill
	// phase, so the kill can be scheduled just past them — the device then
	// dies while phase-2 readback (including the partition scheduler's
	// prefetched block reads) is under way, not during the write path the
	// permanent-failure test already covers.
	cal := newEngine(t, spilly.Config{})
	calRes, err := cal.RunTPCH(9)
	if err != nil {
		t.Fatal(err)
	}
	d0 := cal.SpillArray().PerDevice()[0]
	if d0.Writes == 0 || d0.Reads == 0 {
		t.Fatalf("device 0 saw %d writes / %d reads; Q9 at this scale no longer exercises readback on it", d0.Writes, d0.Reads)
	}
	if calRes.Stats.PrefetchedPartitions == 0 {
		t.Fatal("no partitions prefetched; the scheduler is not running ahead of phase 2")
	}

	eng := newEngine(t, spilly.Config{})
	chaos.Schedule{Seed: 11, KillDevice: 0, KillAfterOps: d0.Writes + 1}.Apply(eng.SpillArray())

	res, err := eng.RunTPCH(9)
	if err == nil {
		// The run spread its spill across the survivors (or device 0's
		// blocks were all read before the kill threshold): results must
		// still be exact.
		if got := chaos.Fingerprint(res.Batch); got != want {
			t.Fatalf("run with mid-readback death returned wrong rows:\n%s\nvs\n%s", got, want)
		}
	} else {
		// Spilled blocks died with the device: the failure must be the
		// structured spill-read error naming it — whether the read was a
		// consumer's demand read or a prefetch issued partitions ahead —
		// not a hang, panic, or generic error.
		var qe *spilly.QueryError
		if !errors.As(err, &qe) {
			t.Fatalf("err = %v (%T), want *QueryError", err, err)
		}
		if qe.Device != 0 {
			t.Fatalf("QueryError.Device = %d, want 0", qe.Device)
		}
	}

	// The aborted readback must not leak scheduler-owned buffers or budget:
	// heal the array and the same engine must produce the exact result.
	chaos.Clear(eng.SpillArray())
	res, err = eng.RunTPCH(9)
	if err != nil {
		t.Fatalf("query after healing failed: %v", err)
	}
	if got := chaos.Fingerprint(res.Batch); got != want {
		t.Fatal("result after healing differs from fault-free run")
	}
}

// parityEngine opens a spilling engine with spill integrity on: checksummed
// frames plus XOR parity stripes of width 2 (every third spill block is
// parity).
func parityEngine(t *testing.T, cfg spilly.Config) *spilly.Engine {
	t.Helper()
	if cfg.SpillParity == 0 {
		cfg.SpillParity = 2
	}
	return newEngine(t, cfg)
}

func TestSilentCorruptionHealsToExactResult(t *testing.T) {
	want := baseline(t)

	eng := parityEngine(t, spilly.Config{})
	// Every request on device 0 silently flips one bit — reads and writes
	// both. Parity is computed from the in-memory block before the device
	// mangles it, so even write-corrupted blocks rebuild exactly.
	chaos.Schedule{Seed: 21, CorruptRate: 1.0, CorruptDevice: 0}.Apply(eng.SpillArray())

	res, err := eng.RunTPCH(9)
	if err != nil {
		t.Fatalf("query under silent corruption failed: %v", err)
	}
	if got := chaos.Fingerprint(res.Batch); got != want {
		t.Fatalf("result under corruption differs from fault-free run:\n%s\nvs\n%s", got, want)
	}
	if res.Stats.SpillChecksumErrors == 0 {
		t.Fatal("no checksum errors detected; corruption never reached the spill path")
	}
	if res.Stats.SpillReconstructions == 0 {
		t.Fatal("no blocks reconstructed; corrupted data was served unverified")
	}
	if res.Stats.SpillPagesVerified == 0 {
		t.Fatal("no pages verified; integrity is not armed")
	}
}

func TestTornWritesAndStaleReadsHeal(t *testing.T) {
	want := baseline(t)

	eng := parityEngine(t, spilly.Config{})
	// Torn writes persist only half the block; stale reads serve a
	// neighboring block. Both pass the device's own error reporting and are
	// only caught by frame verification.
	chaos.Schedule{
		Seed:          22,
		TornWriteRate: 0.5,
		StaleReadRate: 0.5,
		CorruptDevice: 0,
	}.Apply(eng.SpillArray())

	res, err := eng.RunTPCH(9)
	if err != nil {
		t.Fatalf("query under torn writes / stale reads failed: %v", err)
	}
	if got := chaos.Fingerprint(res.Batch); got != want {
		t.Fatalf("result under torn/stale faults differs from fault-free run:\n%s\nvs\n%s", got, want)
	}
	if res.Stats.SpillChecksumErrors == 0 || res.Stats.SpillReconstructions == 0 {
		t.Fatalf("torn/stale faults not healed: %d checksum errors, %d reconstructions",
			res.Stats.SpillChecksumErrors, res.Stats.SpillReconstructions)
	}
}

func TestDeviceDeathAfterSpillHealsFromParity(t *testing.T) {
	want := baseline(t)

	// Calibrate device 0's write count during Q9's spill phase, then kill
	// it right after — its spilled blocks are gone, and with parity on the
	// query must reconstruct every one of them and still be exact.
	cal := parityEngine(t, spilly.Config{})
	if _, err := cal.RunTPCH(9); err != nil {
		t.Fatal(err)
	}
	d0 := cal.SpillArray().PerDevice()[0]
	if d0.Writes == 0 {
		t.Fatal("device 0 absorbed no spill writes; calibration broken")
	}

	eng := parityEngine(t, spilly.Config{})
	chaos.Schedule{Seed: 23, KillDevice: 0, KillAfterOps: d0.Writes + 1}.Apply(eng.SpillArray())

	res, err := eng.RunTPCH(9)
	if err != nil {
		t.Fatalf("query with post-spill device death failed despite parity: %v", err)
	}
	if got := chaos.Fingerprint(res.Batch); got != want {
		t.Fatalf("result after device death differs from fault-free run:\n%s\nvs\n%s", got, want)
	}
	if res.Stats.SpillReconstructions == 0 {
		t.Fatal("no blocks reconstructed; the dead device's data came from nowhere")
	}
}

func TestDoubleDeviceDeathFailsStructured(t *testing.T) {
	want := baseline(t)

	// Three spill devices and stripe width 2 mean every group spans all
	// three. Killing two devices after the spill phase exceeds single-parity
	// redundancy for every group — the query must fail with a structured
	// error naming a dead device and the partition, never return wrong rows.
	cal := parityEngine(t, spilly.Config{SpillDevices: 3})
	if _, err := cal.RunTPCH(9); err != nil {
		t.Fatal(err)
	}
	perDev := cal.SpillArray().PerDevice()

	eng := parityEngine(t, spilly.Config{SpillDevices: 3})
	for dev := 0; dev < 2; dev++ {
		eng.SpillArray().SetFaultPlan(dev, nvmesim.FaultPlan{
			Seed:        31 + int64(dev),
			DieAfterOps: perDev[dev].Writes + 1,
		})
	}

	res, err := eng.RunTPCH(9)
	if err == nil {
		t.Fatalf("query succeeded with two of three spill devices dead; fingerprint match: %v",
			chaos.Fingerprint(res.Batch) == want)
	}
	var qe *spilly.QueryError
	if !errors.As(err, &qe) {
		t.Fatalf("err = %v (%T), want *QueryError", err, err)
	}
	if qe.Device != 0 && qe.Device != 1 {
		t.Fatalf("QueryError.Device = %d, want a dead device (0 or 1)", qe.Device)
	}
	if qe.Part < 0 {
		t.Fatalf("QueryError.Part = %d, want the failing partition", qe.Part)
	}

	// The double fault must not poison the engine: heal and run exact.
	chaos.Clear(eng.SpillArray())
	res, err = eng.RunTPCH(9)
	if err != nil {
		t.Fatalf("query after healing failed: %v", err)
	}
	if got := chaos.Fingerprint(res.Batch); got != want {
		t.Fatal("result after healing differs from fault-free run")
	}
}
