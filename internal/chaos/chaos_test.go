package chaos_test

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	spilly "github.com/spilly-db/spilly"
	"github.com/spilly-db/spilly/internal/chaos"
	"github.com/spilly-db/spilly/internal/nvmesim"
)

// newEngine opens a spilling engine over a small TPC-H load. Q9 under a
// 256 KB budget materializes several joins and must spill, exercising the
// whole write/read-back path the faults target.
func newEngine(t *testing.T, cfg spilly.Config) *spilly.Engine {
	t.Helper()
	if cfg.Workers == 0 {
		cfg.Workers = 2
	}
	if cfg.MemoryBudget == 0 {
		cfg.MemoryBudget = 256 << 10
	}
	eng, err := spilly.Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.LoadTPCH(0.005, false); err != nil {
		t.Fatal(err)
	}
	return eng
}

// baseline computes the fault-free reference fingerprint for Q9.
func baseline(t *testing.T) string {
	t.Helper()
	eng := newEngine(t, spilly.Config{})
	res, err := eng.RunTPCH(9)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.SpilledBytes == 0 {
		t.Fatal("reference run did not spill; chaos would not exercise I/O recovery")
	}
	return chaos.Fingerprint(res.Batch)
}

func TestTPCHBitIdenticalUnderTransientFaults(t *testing.T) {
	want := baseline(t)

	eng := newEngine(t, spilly.Config{})
	// Probabilistic faults well above the 1% floor, plus a scripted
	// transient on one device's first two requests: the query issues only
	// a few dozen spill I/Os at this scale, so the script guarantees the
	// retry path actually runs regardless of how the dice land.
	chaos.Schedule{
		Seed:         42,
		ReadErrRate:  0.05,
		WriteErrRate: 0.05,
		SpikeRate:    0.02,
		SpikeLatency: 200 * time.Microsecond,
		Script: map[int64]nvmesim.FaultKind{
			1: nvmesim.FaultTransient,
			2: nvmesim.FaultTransient,
		},
		ScriptDevice: 3,
	}.Apply(eng.SpillArray())

	res, err := eng.RunTPCH(9)
	if err != nil {
		t.Fatalf("query under transient faults failed: %v", err)
	}
	if got := chaos.Fingerprint(res.Batch); got != want {
		t.Fatalf("result under faults differs from fault-free run:\n%s\nvs\n%s", got, want)
	}
	if res.Stats.SpillRetries == 0 {
		t.Fatal("no retries recorded; the schedule injected no faults into the spill path")
	}
	if c := eng.Faults().Snapshot(); c.Retries == 0 {
		t.Fatalf("engine fault tracker saw no retries: %s", c)
	}
}

func TestPermanentDeviceFailure(t *testing.T) {
	want := baseline(t)

	eng := newEngine(t, spilly.Config{})
	chaos.Schedule{Seed: 7, KillDevice: 0, KillAfterOps: 20}.Apply(eng.SpillArray())

	type outcome struct {
		res *spilly.Result
		err error
	}
	done := make(chan outcome, 1)
	go func() {
		res, err := eng.RunTPCH(9)
		done <- outcome{res, err}
	}()

	var o outcome
	select {
	case o = <-done:
	case <-time.After(60 * time.Second):
		t.Fatal("query hung after permanent device failure")
	}
	if o.err == nil {
		// Failover re-striped all writes onto live devices before any
		// data landed on the dead one: the result must still be exact.
		if got := chaos.Fingerprint(o.res.Batch); got != want {
			t.Fatalf("failover run returned wrong rows:\n%s\nvs\n%s", got, want)
		}
	} else {
		// Data already on the device when it died is gone; the query
		// must fail with a structured error naming the device.
		var qe *spilly.QueryError
		if !errors.As(o.err, &qe) {
			t.Fatalf("err = %v (%T), want *QueryError", o.err, o.err)
		}
		if qe.Device != 0 {
			t.Fatalf("QueryError.Device = %d, want 0", qe.Device)
		}
	}

	// A dead device must not poison the engine: heal the array and the
	// same query must succeed exactly.
	chaos.Clear(eng.SpillArray())
	res, err := eng.RunTPCH(9)
	if err != nil {
		t.Fatalf("query after healing failed: %v", err)
	}
	if got := chaos.Fingerprint(res.Batch); got != want {
		t.Fatal("result after healing differs from fault-free run")
	}
}

func TestCancellationAbortsPromptly(t *testing.T) {
	eng := newEngine(t, spilly.Config{})

	// Already-canceled context: the query must not do any work.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := eng.RunTPCHContext(ctx, 9); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	var qe *spilly.QueryError
	if _, err := eng.RunTPCHContext(ctx, 9); !errors.As(err, &qe) {
		t.Fatalf("err = %v, want *QueryError", err)
	}

	// Mid-run deadline: slow the array down with latency spikes so the
	// deadline always lands mid-query, then require a prompt abort.
	chaos.Schedule{
		Seed:         3,
		SpikeRate:    0.5,
		SpikeLatency: time.Millisecond,
	}.Apply(eng.SpillArray())
	dctx, dcancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer dcancel()
	start := time.Now()
	_, err := eng.RunTPCHContext(dctx, 9)
	elapsed := time.Since(start)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	if elapsed > 10*time.Second {
		t.Fatalf("cancellation took %v; blocking I/O is not observing the context", elapsed)
	}
	if c := eng.Faults().Snapshot(); c.CanceledQueries < 3 {
		t.Fatalf("canceled queries = %d, want 3: %s", c.CanceledQueries, c)
	}

	// The aborted query must not leak: the engine stays fully usable.
	chaos.Clear(eng.SpillArray())
	if _, err := eng.RunTPCH(9); err != nil {
		t.Fatalf("query after cancellation failed: %v", err)
	}
}

func TestDeviceFullFailsGracefully(t *testing.T) {
	dev := spilly.DefaultDevice
	dev.Capacity = 8 << 10 // per-device spill area far below Q9's spill volume
	eng := newEngine(t, spilly.Config{Device: dev})

	_, err := eng.RunTPCH(9)
	if err == nil {
		t.Fatal("query succeeded with a spill area it cannot fit in")
	}
	var qe *spilly.QueryError
	if !errors.As(err, &qe) {
		t.Fatalf("err = %v (%T), want *QueryError", err, err)
	}
	if !strings.Contains(qe.Hint, "spill capacity") {
		t.Fatalf("QueryError.Hint = %q, want a capacity remediation hint", qe.Hint)
	}
}

func TestDeviceDeathDuringPrefetch(t *testing.T) {
	want := baseline(t)

	// Calibrate how many write requests device 0 absorbs during Q9's spill
	// phase, so the kill can be scheduled just past them — the device then
	// dies while phase-2 readback (including the partition scheduler's
	// prefetched block reads) is under way, not during the write path the
	// permanent-failure test already covers.
	cal := newEngine(t, spilly.Config{})
	calRes, err := cal.RunTPCH(9)
	if err != nil {
		t.Fatal(err)
	}
	d0 := cal.SpillArray().PerDevice()[0]
	if d0.Writes == 0 || d0.Reads == 0 {
		t.Fatalf("device 0 saw %d writes / %d reads; Q9 at this scale no longer exercises readback on it", d0.Writes, d0.Reads)
	}
	if calRes.Stats.PrefetchedPartitions == 0 {
		t.Fatal("no partitions prefetched; the scheduler is not running ahead of phase 2")
	}

	eng := newEngine(t, spilly.Config{})
	chaos.Schedule{Seed: 11, KillDevice: 0, KillAfterOps: d0.Writes + 1}.Apply(eng.SpillArray())

	res, err := eng.RunTPCH(9)
	if err == nil {
		// The run spread its spill across the survivors (or device 0's
		// blocks were all read before the kill threshold): results must
		// still be exact.
		if got := chaos.Fingerprint(res.Batch); got != want {
			t.Fatalf("run with mid-readback death returned wrong rows:\n%s\nvs\n%s", got, want)
		}
	} else {
		// Spilled blocks died with the device: the failure must be the
		// structured spill-read error naming it — whether the read was a
		// consumer's demand read or a prefetch issued partitions ahead —
		// not a hang, panic, or generic error.
		var qe *spilly.QueryError
		if !errors.As(err, &qe) {
			t.Fatalf("err = %v (%T), want *QueryError", err, err)
		}
		if qe.Device != 0 {
			t.Fatalf("QueryError.Device = %d, want 0", qe.Device)
		}
	}

	// The aborted readback must not leak scheduler-owned buffers or budget:
	// heal the array and the same engine must produce the exact result.
	chaos.Clear(eng.SpillArray())
	res, err = eng.RunTPCH(9)
	if err != nil {
		t.Fatalf("query after healing failed: %v", err)
	}
	if got := chaos.Fingerprint(res.Batch); got != want {
		t.Fatal("result after healing differs from fault-free run")
	}
}
