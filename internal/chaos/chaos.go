// Package chaos is the fault-injection test harness: it applies seeded
// fault schedules to the simulated NVMe arrays and fingerprints query
// results so tests can assert the engine's end-to-end fault contract —
// bit-identical results whenever retries succeed, and clean, prompt,
// leak-free failures otherwise.
//
// Schedules are deterministic: every probabilistic decision derives from
// Schedule.Seed (re-seeded per device), so a failing run replays exactly.
package chaos

import (
	"sort"
	"strconv"
	"strings"
	"time"

	"github.com/spilly-db/spilly/internal/data"
	"github.com/spilly-db/spilly/internal/nvmesim"
)

// Schedule describes one array-wide fault workload. The zero value injects
// nothing.
type Schedule struct {
	// Seed drives all probabilistic faults; each device gets a distinct
	// PRNG derived from it.
	Seed int64
	// ReadErrRate and WriteErrRate are per-request probabilities of a
	// transient (retryable) I/O error.
	ReadErrRate  float64
	WriteErrRate float64
	// SpikeRate is the per-request probability of adding SpikeLatency to
	// a request's completion time.
	SpikeRate    float64
	SpikeLatency time.Duration
	// KillDevice fails that device permanently after KillAfterOps
	// requests on it; ignored while KillAfterOps is 0.
	KillDevice   int
	KillAfterOps int64
	// Script injects faults at exact 1-based request indices on device
	// ScriptDevice, overriding the probabilistic rates there. Use it to
	// guarantee a minimum fault dose on short queries, where a small rate
	// over a handful of requests often rounds to zero faults. Scripting a
	// single device keeps a retried write from marching through several
	// scripted first-ops and exhausting its whole retry budget.
	Script       map[int64]nvmesim.FaultKind
	ScriptDevice int
	// CorruptRate, TornWriteRate, and StaleReadRate inject silent faults —
	// a flipped bit, a write whose tail never persisted, a read served from
	// the wrong block — on CorruptDevice only. Silent-fault injection is
	// single-device by design: one XOR parity stripe recovers any one lost
	// block per group, so array-wide silent corruption is out of contract
	// (it is the double-fault case, which must fail structured instead).
	CorruptRate   float64
	TornWriteRate float64
	StaleReadRate float64
	CorruptDevice int
}

// Apply installs the schedule on every device of the array. Call Clear to
// remove it.
func (s Schedule) Apply(arr *nvmesim.Array) {
	for dev := 0; dev < arr.Devices(); dev++ {
		plan := nvmesim.FaultPlan{
			// Distinct, deterministic seed per device: identical
			// per-device plans would fault in lockstep.
			Seed:         s.Seed + int64(dev)*1_000_003,
			ReadErrRate:  s.ReadErrRate,
			WriteErrRate: s.WriteErrRate,
			SpikeRate:    s.SpikeRate,
			SpikeLatency: s.SpikeLatency,
		}
		if dev == s.ScriptDevice {
			plan.Script = s.Script
		}
		if dev == s.CorruptDevice {
			plan.CorruptRate = s.CorruptRate
			plan.TornWriteRate = s.TornWriteRate
			plan.StaleReadRate = s.StaleReadRate
		}
		if s.KillAfterOps > 0 && dev == s.KillDevice {
			plan.DieAfterOps = s.KillAfterOps
		}
		arr.SetFaultPlan(dev, plan)
	}
}

// Clear removes all fault plans and revives dead devices.
func Clear(arr *nvmesim.Array) {
	for dev := 0; dev < arr.Devices(); dev++ {
		arr.SetFaultPlan(dev, nvmesim.FaultPlan{})
		arr.Revive(dev)
	}
}

// Fingerprint renders a batch as one line per row, rows sorted, so two
// results compare regardless of row order (hash operators are
// order-insensitive). Integer, string, and date columns compare
// bit-identical. Float aggregates are compared at fixed decimal precision:
// parallel summation order depends on morsel scheduling and I/O completion
// order, so even two fault-free runs differ in the last ULPs — a retried
// write must not change the data, but it may legally change the order pages
// come back in.
func Fingerprint(b *data.Batch) string {
	if b == nil {
		return "(nil)"
	}
	rows := make([]string, 0, b.Rows())
	var sb strings.Builder
	for i, n := 0, b.Rows(); i < n; i++ {
		r := b.Row(i)
		sb.Reset()
		for c := range b.Cols {
			if c > 0 {
				sb.WriteByte('\t')
			}
			col := &b.Cols[c]
			switch {
			case col.Null != nil && col.Null[r]:
				sb.WriteString("NULL")
			case col.Type == data.Float64:
				sb.WriteString(strconv.FormatFloat(col.F[r], 'f', 4, 64))
			case col.Type == data.String:
				sb.WriteString(col.S[r])
			default:
				sb.WriteString(strconv.FormatInt(col.I[r], 10))
			}
		}
		rows = append(rows, sb.String())
	}
	sort.Strings(rows)
	return strings.Join(rows, "\n")
}
