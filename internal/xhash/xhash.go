// Package xhash provides the fast, high-quality 64-bit hashing used
// throughout the engine: for hash tables, HyperLogLog sketches, and —
// critically — for Umami's adaptive partitioning, which requires that the
// high bits of the hash be of full quality because partition numbers are a
// *prefix* of the hash value (see internal/core and paper §5.3).
//
// The implementation is a from-scratch wyhash-style mix construction built
// only on 64×64→128-bit multiplication (math/bits.Mul64). It passes basic
// avalanche sanity checks (see tests) and is allocation-free.
package xhash

import (
	"encoding/binary"
	"math"
	"math/bits"
)

// Arbitrary odd 64-bit constants with good bit dispersion (wyhash secrets).
const (
	secret0 = 0xa0761d6478bd642f
	secret1 = 0xe7037ed1a0b428db
	secret2 = 0x8ebc6af09c88c6e3
	secret3 = 0x589965cc75374cc3
)

// mix folds a 128-bit product of a and b back to 64 bits.
func mix(a, b uint64) uint64 {
	hi, lo := bits.Mul64(a, b)
	return hi ^ lo
}

// U64 hashes a single 64-bit value with the given seed. The construction is
// a seeded murmur3-style finalizer followed by a wyhash mix; both the high
// bits (consumed by Umami partitioning) and the low bits (consumed by the
// HyperLogLog sketches) are full quality.
func U64(x, seed uint64) uint64 {
	x ^= seed * secret0
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return mix(x^secret1, seed^secret2)
}

// U32 hashes a single 32-bit value with the given seed.
func U32(x uint32, seed uint64) uint64 {
	return U64(uint64(x), seed)
}

// Combine merges two 64-bit hashes into one, order-dependently. It is used
// to build multi-column keys.
func Combine(h1, h2 uint64) uint64 {
	return mix(h1^secret2, h2^secret3)
}

// CombineU64s folds U64(xs[i], seed) into hs[i] for every i — the batch
// kernel behind column-at-a-time key hashing. Equivalent to calling
// Combine(hs[i], U64(uint64(xs[i]), seed)) per element, but the type
// dispatch and call overhead are hoisted out of the loop.
func CombineU64s(hs []uint64, xs []int64, seed uint64) {
	if len(xs) > len(hs) {
		panic("xhash: CombineU64s length mismatch")
	}
	for i, x := range xs {
		hs[i] = Combine(hs[i], U64(uint64(x), seed))
	}
}

// CombineF64s is CombineU64s over the IEEE-754 bit patterns of floats.
func CombineF64s(hs []uint64, xs []float64, seed uint64) {
	if len(xs) > len(hs) {
		panic("xhash: CombineF64s length mismatch")
	}
	for i, x := range xs {
		hs[i] = Combine(hs[i], U64(math.Float64bits(x), seed))
	}
}

// CombineStrings folds String(xs[i], seed) into hs[i] for every i.
func CombineStrings(hs []uint64, xs []string, seed uint64) {
	if len(xs) > len(hs) {
		panic("xhash: CombineStrings length mismatch")
	}
	for i, x := range xs {
		hs[i] = Combine(hs[i], String(x, seed))
	}
}

// Bytes hashes an arbitrary byte slice with the given seed.
func Bytes(data []byte, seed uint64) uint64 {
	n := len(data)
	seed ^= secret0
	switch {
	case n <= 16:
		var a, b uint64
		switch {
		case n >= 8:
			a = binary.LittleEndian.Uint64(data)
			b = binary.LittleEndian.Uint64(data[n-8:])
		case n >= 4:
			a = uint64(binary.LittleEndian.Uint32(data))
			b = uint64(binary.LittleEndian.Uint32(data[n-4:]))
		case n > 0:
			// First byte, middle byte, last byte.
			a = uint64(data[0])<<16 | uint64(data[n>>1])<<8 | uint64(data[n-1])
		}
		return mix(secret1^uint64(n), mix(a^secret1, b^seed))
	default:
		i := n
		p := data
		if i > 48 {
			s1, s2 := seed, seed
			for i > 48 {
				seed = mix(binary.LittleEndian.Uint64(p)^secret1, binary.LittleEndian.Uint64(p[8:])^seed)
				s1 = mix(binary.LittleEndian.Uint64(p[16:])^secret2, binary.LittleEndian.Uint64(p[24:])^s1)
				s2 = mix(binary.LittleEndian.Uint64(p[32:])^secret3, binary.LittleEndian.Uint64(p[40:])^s2)
				p = p[48:]
				i -= 48
			}
			seed ^= s1 ^ s2
		}
		for i > 16 {
			seed = mix(binary.LittleEndian.Uint64(p)^secret1, binary.LittleEndian.Uint64(p[8:])^seed)
			p = p[16:]
			i -= 16
		}
		a := binary.LittleEndian.Uint64(data[n-16:])
		b := binary.LittleEndian.Uint64(data[n-8:])
		return mix(secret1^uint64(n), mix(a^secret1, b^seed))
	}
}

// String hashes a string without allocating.
func String(s string, seed uint64) uint64 {
	// The compiler optimizes the []byte(s) conversion away for read-only use
	// in recent Go versions; measured zero-alloc in benchmarks.
	return Bytes([]byte(s), seed)
}
