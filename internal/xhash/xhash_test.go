package xhash

import (
	"math/bits"
	"testing"
	"testing/quick"
)

func TestU64Deterministic(t *testing.T) {
	if U64(42, 7) != U64(42, 7) {
		t.Fatal("U64 not deterministic")
	}
	if U64(42, 7) == U64(42, 8) {
		t.Fatal("seed has no effect")
	}
	if U64(42, 7) == U64(43, 7) {
		t.Fatal("value has no effect")
	}
}

func TestBytesMatchesLengths(t *testing.T) {
	// Every length from 0..200 must hash without panicking and produce
	// values that differ when any byte changes.
	for n := 0; n <= 200; n++ {
		buf := make([]byte, n)
		for i := range buf {
			buf[i] = byte(i * 31)
		}
		h := Bytes(buf, 1)
		for i := range buf {
			buf[i] ^= 0xff
			if Bytes(buf, 1) == h {
				t.Fatalf("len=%d: flipping byte %d did not change hash", n, i)
			}
			buf[i] ^= 0xff
		}
		if Bytes(buf, 1) != h {
			t.Fatalf("len=%d: hash not deterministic", n)
		}
	}
}

func TestStringMatchesBytes(t *testing.T) {
	if String("hello world", 3) != Bytes([]byte("hello world"), 3) {
		t.Fatal("String and Bytes disagree")
	}
}

// TestAvalancheU64 checks that flipping any single input bit flips roughly
// half of the output bits on average — the property Umami partitioning
// relies on, since it consumes hash *prefix* bits.
func TestAvalancheU64(t *testing.T) {
	const trials = 512
	var totalFlips, totalBits int
	for i := 0; i < trials; i++ {
		x := uint64(i)*0x9e3779b97f4a7c15 + 1
		h := U64(x, 0)
		for bit := 0; bit < 64; bit++ {
			h2 := U64(x^(1<<bit), 0)
			totalFlips += bits.OnesCount64(h ^ h2)
			totalBits += 64
		}
	}
	ratio := float64(totalFlips) / float64(totalBits)
	if ratio < 0.45 || ratio > 0.55 {
		t.Fatalf("avalanche ratio %.3f outside [0.45, 0.55]", ratio)
	}
}

// TestHighBitsUniform checks that the top 8 bits (used as partition numbers)
// are close to uniformly distributed over sequential keys.
func TestHighBitsUniform(t *testing.T) {
	const n = 1 << 16
	var counts [256]int
	for i := 0; i < n; i++ {
		counts[U64(uint64(i), 0)>>56]++
	}
	want := n / 256
	for p, c := range counts {
		if c < want/2 || c > want*2 {
			t.Fatalf("partition %d has %d keys, want about %d", p, c, want)
		}
	}
}

func TestCombineOrderDependent(t *testing.T) {
	if Combine(1, 2) == Combine(2, 1) {
		t.Fatal("Combine should be order-dependent")
	}
}

func TestBytesQuick(t *testing.T) {
	// Property: equal inputs hash equal; unequal inputs (almost surely)
	// hash unequal.
	f := func(a, b []byte, seed uint64) bool {
		ha, hb := Bytes(a, seed), Bytes(b, seed)
		if string(a) == string(b) {
			return ha == hb
		}
		return ha != hb // collision chance about 2^-64, fine for quick
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkU64(b *testing.B) {
	var acc uint64
	for i := 0; i < b.N; i++ {
		acc += U64(uint64(i), 0)
	}
	sink = acc
}

func BenchmarkBytes64(b *testing.B) {
	buf := make([]byte, 64)
	b.SetBytes(64)
	var acc uint64
	for i := 0; i < b.N; i++ {
		acc += Bytes(buf, uint64(i))
	}
	sink = acc
}

var sink uint64
