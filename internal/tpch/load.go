package tpch

import (
	"bufio"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"github.com/spilly-db/spilly/internal/colstore"
	"github.com/spilly-db/spilly/internal/data"
)

// parseTblDate parses a dbgen date without panicking on malformed input
// (external files are untrusted, unlike plan literals).
func parseTblDate(s string) (int64, error) {
	t, err := time.Parse("2006-01-02", s)
	if err != nil {
		return 0, err
	}
	return int64(t.Unix() / 86400), nil
}

// LoadTbl reads one table from a dbgen-format .tbl file (pipe-separated,
// trailing separator). It accepts files produced by the official dbgen or
// by cmd/tpchgen, so measured results can be validated against real TPC-H
// data as well as the built-in generator.
func LoadTbl(path, table string) (*colstore.MemTable, error) {
	schema, ok := Schemas[table]
	if !ok {
		return nil, fmt.Errorf("tpch: unknown table %q", table)
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()

	t := colstore.NewMemTable(table, schema, 0)
	b := data.NewBatch(schema, 4096)
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	lineNo := 0
	flush := func() {
		if b.Len() > 0 {
			t.Append(b)
			b.Reset()
		}
	}
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if line == "" {
			continue
		}
		line = strings.TrimSuffix(line, "|")
		fields := strings.Split(line, "|")
		if len(fields) != schema.Len() {
			return nil, fmt.Errorf("tpch: %s line %d: %d fields, want %d", path, lineNo, len(fields), schema.Len())
		}
		for i, cd := range schema.Cols {
			c := &b.Cols[i]
			switch cd.Type {
			case data.Float64:
				v, err := strconv.ParseFloat(fields[i], 64)
				if err != nil {
					return nil, fmt.Errorf("tpch: %s line %d col %s: %v", path, lineNo, cd.Name, err)
				}
				c.F = append(c.F, v)
			case data.String:
				c.S = append(c.S, fields[i])
			case data.Date:
				v, err := parseTblDate(fields[i])
				if err != nil {
					return nil, fmt.Errorf("tpch: %s line %d col %s: %v", path, lineNo, cd.Name, err)
				}
				c.I = append(c.I, v)
			default:
				v, err := strconv.ParseInt(fields[i], 10, 64)
				if err != nil {
					return nil, fmt.Errorf("tpch: %s line %d col %s: %v", path, lineNo, cd.Name, err)
				}
				c.I = append(c.I, v)
			}
		}
		b.SetLen(b.Len() + 1)
		if b.Len() == 4096 {
			flush()
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	flush()
	return t, nil
}

// LoadTblDir loads every .tbl file in dir into a DB. Missing tables are
// simply absent from the catalog; sf records the caller's scale factor for
// SF-dependent query parameters (Q11).
func LoadTblDir(dir string, sf float64) (*DB, error) {
	db := &DB{SF: sf, Tables: map[string]colstore.Table{}}
	for _, name := range TableNames {
		path := filepath.Join(dir, name+".tbl")
		if _, err := os.Stat(path); err != nil {
			continue
		}
		t, err := LoadTbl(path, name)
		if err != nil {
			return nil, err
		}
		db.Tables[name] = t
	}
	if len(db.Tables) == 0 {
		return nil, fmt.Errorf("tpch: no .tbl files found in %s", dir)
	}
	return db, nil
}
