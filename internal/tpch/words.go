package tpch

// Word lists from the TPC-H specification (§4.2.2/§4.2.3).

var regionNames = []string{"AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"}

var nations = []struct {
	Name   string
	Region int64
}{
	{"ALGERIA", 0}, {"ARGENTINA", 1}, {"BRAZIL", 1}, {"CANADA", 1},
	{"EGYPT", 4}, {"ETHIOPIA", 0}, {"FRANCE", 3}, {"GERMANY", 3},
	{"INDIA", 2}, {"INDONESIA", 2}, {"IRAN", 4}, {"IRAQ", 4},
	{"JAPAN", 2}, {"JORDAN", 4}, {"KENYA", 0}, {"MOROCCO", 0},
	{"MOZAMBIQUE", 0}, {"PERU", 1}, {"CHINA", 2}, {"ROMANIA", 3},
	{"SAUDI ARABIA", 4}, {"VIETNAM", 2}, {"RUSSIA", 3},
	{"UNITED KINGDOM", 3}, {"UNITED STATES", 1},
}

// colors is the spec's P_NAME word list (92 entries). Queries depend on
// specific members: "green" (Q9), "forest" (Q20).
var colors = []string{
	"almond", "antique", "aquamarine", "azure", "beige", "bisque", "black",
	"blanched", "blue", "blush", "brown", "burlywood", "burnished",
	"chartreuse", "chiffon", "chocolate", "coral", "cornflower", "cornsilk",
	"cream", "cyan", "dark", "deep", "dim", "dodger", "drab", "firebrick",
	"floral", "forest", "frosted", "gainsboro", "ghost", "goldenrod",
	"green", "grey", "honeydew", "hot", "indian", "ivory", "khaki", "lace",
	"lavender", "lawn", "lemon", "light", "lime", "linen", "magenta",
	"maroon", "medium", "metallic", "midnight", "mint", "misty", "moccasin",
	"navajo", "navy", "olive", "orange", "orchid", "pale", "papaya",
	"peach", "peru", "pink", "plum", "powder", "puff", "purple", "red",
	"rose", "rosy", "royal", "saddle", "salmon", "sandy", "seashell",
	"sienna", "sky", "slate", "smoke", "snow", "spring", "steel", "tan",
	"thistle", "tomato", "turquoise", "violet", "wheat", "white", "yellow",
	"peru",
}

var typeSyl1 = []string{"STANDARD", "SMALL", "MEDIUM", "LARGE", "ECONOMY", "PROMO"}
var typeSyl2 = []string{"ANODIZED", "BURNISHED", "PLATED", "POLISHED", "BRUSHED"}
var typeSyl3 = []string{"TIN", "NICKEL", "BRASS", "STEEL", "COPPER"}

var containerSyl1 = []string{"SM", "LG", "MED", "JUMBO", "WRAP"}
var containerSyl2 = []string{"CASE", "BOX", "BAG", "JAR", "PKG", "PACK", "CAN", "DRUM"}

var segments = []string{"AUTOMOBILE", "BUILDING", "FURNITURE", "MACHINERY", "HOUSEHOLD"}

var priorities = []string{"1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED", "5-LOW"}

var instructions = []string{"DELIVER IN PERSON", "COLLECT COD", "NONE", "TAKE BACK RETURN"}

var shipModes = []string{"REG AIR", "AIR", "RAIL", "SHIP", "TRUCK", "MAIL", "FOB"}

// commentWords is a condensed version of the spec's text grammar
// vocabulary; comments are random word sequences from it.
var commentWords = []string{
	"foxes", "deposits", "packages", "theodolites", "instructions",
	"dependencies", "excuses", "platelets", "asymptotes", "courts",
	"accounts", "requests", "sentiments", "ideas", "pinto", "beans",
	"sleep", "wake", "nag", "cajole", "haggle", "detect", "integrate",
	"snooze", "boost", "breach", "doze", "affix", "engage", "print",
	"quickly", "slyly", "carefully", "furiously", "blithely", "daringly",
	"ironic", "regular", "express", "unusual", "bold", "final", "pending",
	"silent", "even", "special", "busy", "close", "dogged", "among",
	"above", "beneath", "about", "along", "according", "to", "the",
	"against", "never", "always",
}
