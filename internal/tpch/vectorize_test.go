package tpch

import (
	"sort"
	"strconv"
	"strings"
	"testing"

	"github.com/spilly-db/spilly/internal/data"
	"github.com/spilly-db/spilly/internal/exec"
)

// exactRowStrings renders a batch with bit-exact floats (hex float
// format), unlike rowStrings which rounds. Rows are sorted so the
// comparison is insensitive to group emission order.
func exactRowStrings(b *data.Batch) []string {
	out := make([]string, b.Len())
	for r := 0; r < b.Len(); r++ {
		var sb strings.Builder
		for c := range b.Cols {
			col := &b.Cols[c]
			if col.Null != nil && col.Null[r] {
				sb.WriteString("|NULL")
				continue
			}
			switch col.Type {
			case data.Float64:
				sb.WriteString("|" + strconv.FormatFloat(col.F[r], 'x', -1, 64))
			case data.String:
				sb.WriteString("|" + col.S[r])
			default:
				sb.WriteString("|" + strconv.FormatInt(col.I[r], 10))
			}
		}
		out[r] = sb.String()
	}
	sort.Strings(out)
	return out
}

// TestVectorizationEquivalence runs queries with the vectorized kernels
// enabled and disabled (pure scalar fallback) and requires bit-identical
// results — the tentpole's end-to-end guarantee that vectorization is a
// pure execution-strategy change. Single worker keeps accumulation order
// deterministic; the sampled queries avoid LIMIT ties (which legitimately
// break ties arbitrarily) while covering filter/project, aggregation,
// joins, semi/anti joins, and LIKE/IN-heavy predicates.
func TestVectorizationEquivalence(t *testing.T) {
	defer exec.SetVectorized(true)
	queries := []int{1, 4, 6, 12, 14, 19, 22}
	for _, q := range queries {
		ctx := func() *exec.Ctx { return &exec.Ctx{Workers: 1, Stats: &exec.Stats{}} }

		exec.SetVectorized(true)
		vec := exactRowStrings(runQuery(t, ctx(), q))

		exec.SetVectorized(false)
		sc := exactRowStrings(runQuery(t, ctx(), q))

		if len(vec) != len(sc) {
			t.Errorf("Q%d: vectorized %d rows, scalar %d rows", q, len(vec), len(sc))
			continue
		}
		for i := range vec {
			if vec[i] != sc[i] {
				t.Errorf("Q%d row %d differs:\n  vectorized %s\n  scalar     %s", q, i, vec[i], sc[i])
				break
			}
		}
	}
}
