package tpch

import (
	"strings"
	"testing"

	"github.com/spilly-db/spilly/internal/data"
)

func TestCardinalities(t *testing.T) {
	g := &Gen{SF: 0.01}
	tables := g.All()
	if got := tables[Region].Rows(); got != 5 {
		t.Fatalf("region rows = %d", got)
	}
	if got := tables[Nation].Rows(); got != 25 {
		t.Fatalf("nation rows = %d", got)
	}
	if got := tables[Supplier].Rows(); got != 100 {
		t.Fatalf("supplier rows = %d", got)
	}
	if got := tables[Customer].Rows(); got != 1500 {
		t.Fatalf("customer rows = %d", got)
	}
	if got := tables[Part].Rows(); got != 2000 {
		t.Fatalf("part rows = %d", got)
	}
	if got := tables[PartSupp].Rows(); got != 8000 {
		t.Fatalf("partsupp rows = %d", got)
	}
	if got := tables[Orders].Rows(); got != 15000 {
		t.Fatalf("orders rows = %d", got)
	}
	li := tables[Lineitem].Rows()
	// 1-7 lines per order, uniform: expect ~4x orders.
	if li < 3*15000 || li > 5*15000 {
		t.Fatalf("lineitem rows = %d, want about 60000", li)
	}
}

func TestDeterministic(t *testing.T) {
	a := (&Gen{SF: 0.005}).Table(Lineitem)
	b := (&Gen{SF: 0.005}).Table(Lineitem)
	if a.Rows() != b.Rows() {
		t.Fatal("row counts differ between runs")
	}
	for c := 0; c < a.Schema().Len(); c++ {
		ca, cb := a.Column(c), b.Column(c)
		for r := 0; r < int(a.Rows()); r += 97 {
			switch ca.Type {
			case data.Float64:
				if ca.F[r] != cb.F[r] {
					t.Fatalf("col %d row %d differs", c, r)
				}
			case data.String:
				if ca.S[r] != cb.S[r] {
					t.Fatalf("col %d row %d differs", c, r)
				}
			default:
				if ca.I[r] != cb.I[r] {
					t.Fatalf("col %d row %d differs", c, r)
				}
			}
		}
	}
}

func TestOrderKeysSparse(t *testing.T) {
	if orderKey(0) != 1 || orderKey(7) != 8 || orderKey(8) != 33 {
		t.Fatalf("sparse keys: %d %d %d", orderKey(0), orderKey(7), orderKey(8))
	}
	seen := map[int64]bool{}
	for i := int64(0); i < 1000; i++ {
		k := orderKey(i)
		if seen[k] {
			t.Fatalf("duplicate order key %d", k)
		}
		seen[k] = true
		if (k-1)%32 >= 8 {
			t.Fatalf("order key %d outside the low-8 block residues", k)
		}
	}
}

func TestCustkeySkipsEveryThird(t *testing.T) {
	g := &Gen{SF: 0.01}
	orders := g.Table(Orders)
	ck := orders.Column(1)
	for r := 0; r < int(orders.Rows()); r++ {
		if ck.I[r]%3 == 0 {
			t.Fatalf("order %d references custkey %d (divisible by 3)", r, ck.I[r])
		}
	}
}

func TestLineitemConsistency(t *testing.T) {
	g := &Gen{SF: 0.01}
	li := g.Table(Lineitem)
	sch := Schemas[Lineitem]
	qty := li.Column(sch.MustIndex("l_quantity"))
	ep := li.Column(sch.MustIndex("l_extendedprice"))
	pk := li.Column(sch.MustIndex("l_partkey"))
	ship := li.Column(sch.MustIndex("l_shipdate"))
	rcpt := li.Column(sch.MustIndex("l_receiptdate"))
	rf := li.Column(sch.MustIndex("l_returnflag"))
	ls := li.Column(sch.MustIndex("l_linestatus"))
	disc := li.Column(sch.MustIndex("l_discount"))
	sk := li.Column(sch.MustIndex("l_suppkey"))
	suppliers := g.suppliers()
	for r := 0; r < int(li.Rows()); r++ {
		if got := qty.F[r] * retailPrice(pk.I[r]); ep.F[r] != got {
			t.Fatalf("row %d: extendedprice %v != qty*retail %v", r, ep.F[r], got)
		}
		if rcpt.I[r] <= ship.I[r] {
			t.Fatalf("row %d: receipt %d <= ship %d", r, rcpt.I[r], ship.I[r])
		}
		if rcpt.I[r] <= CurrentDate && rf.S[r] == "N" {
			t.Fatalf("row %d: received in the past but returnflag N", r)
		}
		if rcpt.I[r] > CurrentDate && rf.S[r] != "N" {
			t.Fatalf("row %d: future receipt with returnflag %s", r, rf.S[r])
		}
		if (ship.I[r] <= CurrentDate) != (ls.S[r] == "F") {
			t.Fatalf("row %d: linestatus inconsistent with shipdate", r)
		}
		if disc.F[r] < 0 || disc.F[r] > 0.10 {
			t.Fatalf("row %d: discount %v out of range", r, disc.F[r])
		}
		if sk.I[r] < 1 || sk.I[r] > suppliers {
			t.Fatalf("row %d: suppkey %d out of range", r, sk.I[r])
		}
	}
}

func TestSuppkeyMatchesPartsupp(t *testing.T) {
	g := &Gen{SF: 0.01}
	ps := g.Table(PartSupp)
	valid := map[[2]int64]bool{}
	for r := 0; r < int(ps.Rows()); r++ {
		valid[[2]int64{ps.Column(0).I[r], ps.Column(1).I[r]}] = true
	}
	li := g.Table(Lineitem)
	sch := Schemas[Lineitem]
	pk := li.Column(sch.MustIndex("l_partkey"))
	sk := li.Column(sch.MustIndex("l_suppkey"))
	for r := 0; r < int(li.Rows()); r++ {
		if !valid[[2]int64{pk.I[r], sk.I[r]}] {
			t.Fatalf("lineitem row %d references (part %d, supp %d) absent from partsupp", r, pk.I[r], sk.I[r])
		}
	}
}

func TestOrderStatusDerived(t *testing.T) {
	g := &Gen{SF: 0.005}
	orders := g.Table(Orders)
	li := g.Table(Lineitem)
	status := map[int64][2]int{} // orderkey -> {F count, O count}
	for r := 0; r < int(li.Rows()); r++ {
		k := li.Column(0).I[r]
		s := status[k]
		if li.Column(9).S[r] == "F" {
			s[0]++
		} else {
			s[1]++
		}
		status[k] = s
	}
	for r := 0; r < int(orders.Rows()); r++ {
		k := orders.Column(0).I[r]
		got := orders.Column(2).S[r]
		s := status[k]
		want := "P"
		if s[1] == 0 {
			want = "F"
		} else if s[0] == 0 {
			want = "O"
		}
		if got != want {
			t.Fatalf("order %d status %s, want %s (%d F / %d O lines)", k, got, want, s[0], s[1])
		}
	}
}

func TestQueryPatternFrequencies(t *testing.T) {
	g := &Gen{SF: 0.02}
	// Supplier complaints: 5 per 10000 (Q16).
	sup := g.Table(Supplier)
	complaints := 0
	for r := 0; r < int(sup.Rows()); r++ {
		c := sup.Column(6).S[r]
		if i := strings.Index(c, "Customer"); i >= 0 && strings.Contains(c[i:], "Complaints") {
			complaints++
		}
	}
	if complaints == 0 {
		t.Fatal("no supplier complaint comments generated")
	}
	// Part names contain the colors Q9/Q20 select on.
	part := g.Table(Part)
	green, forest := 0, 0
	for r := 0; r < int(part.Rows()); r++ {
		name := part.Column(1).S[r]
		if strings.Contains(name, "green") {
			green++
		}
		if strings.HasPrefix(name, "forest") {
			forest++
		}
	}
	if green == 0 || forest == 0 {
		t.Fatalf("color patterns missing: green=%d forest=%d", green, forest)
	}
	// Order comments contain the Q13 pattern in ~1% of rows.
	orders := g.Table(Orders)
	special := 0
	for r := 0; r < int(orders.Rows()); r++ {
		c := orders.Column(8).S[r]
		if i := strings.Index(c, "special"); i >= 0 && strings.Contains(c[i:], "requests") {
			special++
		}
	}
	frac := float64(special) / float64(orders.Rows())
	if frac < 0.003 || frac > 0.05 {
		t.Fatalf("special-requests fraction %.4f outside expected band", frac)
	}
}

func TestPhonesEncodeNation(t *testing.T) {
	g := &Gen{SF: 0.01}
	cust := g.Table(Customer)
	for r := 0; r < int(cust.Rows()); r += 13 {
		nk := cust.Column(3).I[r]
		ph := cust.Column(4).S[r]
		if !strings.HasPrefix(ph, "") || ph[:2] == "" {
			t.Fatal("phone empty")
		}
		var cc int64
		if _, err := fmtSscan(ph, &cc); err != nil {
			t.Fatalf("phone %q unparsable", ph)
		}
		if cc != nk+10 {
			t.Fatalf("phone %q country code %d, want %d", ph, cc, nk+10)
		}
	}
}

// fmtSscan parses the leading integer of a phone string.
func fmtSscan(s string, out *int64) (int, error) {
	var v int64
	i := 0
	for i < len(s) && s[i] >= '0' && s[i] <= '9' {
		v = v*10 + int64(s[i]-'0')
		i++
	}
	*out = v
	return i, nil
}

func TestScaleProportionality(t *testing.T) {
	small := (&Gen{SF: 0.01}).Table(Orders).Rows()
	big := (&Gen{SF: 0.02}).Table(Orders).Rows()
	if big != 2*small {
		t.Fatalf("orders rows not proportional: %d vs %d", small, big)
	}
}

func BenchmarkGenerateLineitemSF001(b *testing.B) {
	for i := 0; i < b.N; i++ {
		g := &Gen{SF: 0.01}
		t := g.Table(Lineitem)
		b.SetBytes(t.Rows() * 100)
	}
}
