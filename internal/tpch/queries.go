package tpch

import (
	"fmt"

	"github.com/spilly-db/spilly/internal/colstore"
	"github.com/spilly-db/spilly/internal/data"
	"github.com/spilly-db/spilly/internal/exec"
)

// DB is a TPC-H database instance: the eight tables plus the scale factor
// (some query predicates, e.g. Q11's threshold, depend on SF).
type DB struct {
	SF     float64
	Tables map[string]colstore.Table
}

// NewMemDB generates an in-memory database at the given scale factor.
func NewMemDB(sf float64) *DB {
	g := &Gen{SF: sf}
	db := &DB{SF: sf, Tables: map[string]colstore.Table{}}
	for name, t := range g.All() {
		db.Tables[name] = t
	}
	return db
}

// T returns a table by name.
func (d *DB) T(name string) colstore.Table {
	t, ok := d.Tables[name]
	if !ok {
		panic(fmt.Sprintf("tpch: table %q not loaded", name))
	}
	return t
}

// NumQueries is the number of TPC-H queries.
const NumQueries = 22

// BuildQuery constructs the physical plan for TPC-H query q (1-22).
// Queries with scalar subqueries (Q11, Q15, Q22) execute those subplans
// immediately using ctx, mirroring how engines evaluate uncorrelated
// subqueries before the main plan.
func BuildQuery(ctx *exec.Ctx, db *DB, q int) (exec.Node, error) {
	switch q {
	case 1:
		return q1(db), nil
	case 2:
		return q2(db), nil
	case 3:
		return q3(db), nil
	case 4:
		return q4(db), nil
	case 5:
		return q5(db), nil
	case 6:
		return q6(db), nil
	case 7:
		return q7(db), nil
	case 8:
		return q8(db), nil
	case 9:
		return q9(db), nil
	case 10:
		return q10(db), nil
	case 11:
		return q11(ctx, db)
	case 12:
		return q12(db), nil
	case 13:
		return q13(db), nil
	case 14:
		return q14(db), nil
	case 15:
		return q15(ctx, db)
	case 16:
		return q16(db), nil
	case 17:
		return q17(db), nil
	case 18:
		return q18(db), nil
	case 19:
		return q19(db), nil
	case 20:
		return q20(db), nil
	case 21:
		return q21(db), nil
	case 22:
		return q22(ctx, db)
	default:
		return nil, fmt.Errorf("tpch: no query %d", q)
	}
}

// --- helpers ---

func scan(db *DB, table string, cols ...string) *exec.Scan {
	return exec.NewScan(db.T(table), cols...)
}

func colOf(n exec.Node, name string) exec.Expr { return exec.Col(n.Schema(), name) }

// revenueExpr is l_extendedprice * (1 - l_discount) over a node exposing
// those columns.
func revenueExpr(n exec.Node) exec.Expr {
	return exec.Mul(colOf(n, "l_extendedprice"), exec.Sub(exec.ConstFloat(1), colOf(n, "l_discount")))
}

// project is a light wrapper pairing names with expressions.
func project(child exec.Node, names []string, exprs []exec.Expr) exec.Node {
	return exec.NewProject(child, names, exprs)
}

// addCol appends one computed column to every row.
func addCol(child exec.Node, name string, e exec.Expr) exec.Node {
	s := child.Schema()
	names := make([]string, 0, s.Len()+1)
	exprs := make([]exec.Expr, 0, s.Len()+1)
	for _, cd := range s.Cols {
		names = append(names, cd.Name)
		exprs = append(exprs, exec.Col(s, cd.Name))
	}
	return exec.NewProject(child, append(names, name), append(exprs, e))
}

// scalarFloat runs a single-row plan and returns column col as float64.
func scalarFloat(ctx *exec.Ctx, n exec.Node, colName string) (float64, error) {
	out, err := exec.Collect(ctx, n)
	if err != nil {
		return 0, err
	}
	if out.Len() != 1 {
		return 0, fmt.Errorf("tpch: scalar subquery returned %d rows", out.Len())
	}
	i := out.Schema.MustIndex(colName)
	if out.Cols[i].Type == data.Float64 {
		return out.Cols[i].F[0], nil
	}
	return float64(out.Cols[i].I[0]), nil
}

// materialize runs a plan into an in-memory table so it can be scanned
// multiple times (view-style reuse, e.g. Q15's revenue view).
func materialize(ctx *exec.Ctx, n exec.Node) (*colstore.MemTable, error) {
	out, err := exec.Collect(ctx, n)
	if err != nil {
		return nil, err
	}
	t := colstore.NewMemTable("tmp", out.Schema, 0)
	t.Append(out)
	return t, nil
}

// --- the queries ---

// q1 is the pricing summary report.
func q1(db *DB) exec.Node {
	l := scan(db, Lineitem, "l_returnflag", "l_linestatus", "l_quantity",
		"l_extendedprice", "l_discount", "l_tax", "l_shipdate")
	l.Filter = exec.Cmp("<=", colOf(l, "l_shipdate"), exec.ConstDate("1998-09-02"))
	disc := exec.Mul(colOf(l, "l_extendedprice"), exec.Sub(exec.ConstFloat(1), colOf(l, "l_discount")))
	charge := exec.Mul(disc, exec.Add(exec.ConstFloat(1), colOf(l, "l_tax")))
	pre := project(l,
		[]string{"l_returnflag", "l_linestatus", "l_quantity", "l_extendedprice", "l_discount", "disc_price", "charge"},
		[]exec.Expr{colOf(l, "l_returnflag"), colOf(l, "l_linestatus"), colOf(l, "l_quantity"),
			colOf(l, "l_extendedprice"), colOf(l, "l_discount"), disc, charge})
	agg := exec.NewAgg(pre, []string{"l_returnflag", "l_linestatus"}, []exec.AggSpec{
		{Func: exec.Sum, Col: "l_quantity", As: "sum_qty"},
		{Func: exec.Sum, Col: "l_extendedprice", As: "sum_base_price"},
		{Func: exec.Sum, Col: "disc_price", As: "sum_disc_price"},
		{Func: exec.Sum, Col: "charge", As: "sum_charge"},
		{Func: exec.Avg, Col: "l_quantity", As: "avg_qty"},
		{Func: exec.Avg, Col: "l_extendedprice", As: "avg_price"},
		{Func: exec.Avg, Col: "l_discount", As: "avg_disc"},
		{Func: exec.CountStar, As: "count_order"},
	})
	return &exec.Sort{Child: agg, Keys: []exec.SortKey{{Col: "l_returnflag"}, {Col: "l_linestatus"}}}
}

// q2 is the minimum cost supplier query.
func q2(db *DB) exec.Node {
	// European suppliers with their nation names.
	r := scan(db, Region, "r_regionkey", "r_name")
	r.Filter = exec.Cmp("=", colOf(r, "r_name"), exec.ConstStr("EUROPE"))
	n := scan(db, Nation, "n_nationkey", "n_name", "n_regionkey")
	nr := exec.NewJoin(exec.Inner, r, []string{"r_regionkey"}, n, []string{"n_regionkey"})
	s := scan(db, Supplier, "s_suppkey", "s_name", "s_address", "s_nationkey", "s_phone", "s_acctbal", "s_comment")
	se := exec.NewJoin(exec.Inner, nr, []string{"n_nationkey"}, s, []string{"s_nationkey"})

	// All European partsupp offers.
	ps := scan(db, PartSupp, "ps_partkey", "ps_suppkey", "ps_supplycost")
	pse := exec.NewJoin(exec.Inner, seSlim(se), []string{"s_suppkey"}, ps, []string{"ps_suppkey"})

	// Minimum cost per part over European offers.
	minCost := exec.NewAgg(pse, []string{"ps_partkey"}, []exec.AggSpec{{Func: exec.Min, Col: "ps_supplycost", As: "min_cost"}})

	// Qualifying parts.
	p := scan(db, Part, "p_partkey", "p_mfgr", "p_size", "p_type")
	p.Filter = exec.And(
		exec.Cmp("=", colOf(p, "p_size"), exec.ConstInt(15)),
		exec.Like(colOf(p, "p_type"), "%BRASS"),
	)

	// Offers joined with full supplier info, restricted to qualifying
	// parts at exactly the minimum cost.
	full := exec.NewJoin(exec.Inner, seFull(se), []string{"s_suppkey"}, ps, []string{"ps_suppkey"})
	withPart := exec.NewJoin(exec.Inner, p, []string{"p_partkey"}, full, []string{"ps_partkey"})
	withMin := exec.NewJoin(exec.Inner, minCost, []string{"ps_partkey"}, withPart, []string{"ps_partkey"})
	filtered := &exec.FilterNode{Child: withMin, Pred: exec.Cmp("=", colOf(withMin, "ps_supplycost"), colOf(withMin, "min_cost"))}

	proj := project(filtered,
		[]string{"s_acctbal", "s_name", "n_name", "p_partkey", "p_mfgr", "s_address", "s_phone", "s_comment"},
		[]exec.Expr{colOf(filtered, "s_acctbal"), colOf(filtered, "s_name"), colOf(filtered, "n_name"),
			colOf(filtered, "p_partkey"), colOf(filtered, "p_mfgr"), colOf(filtered, "s_address"),
			colOf(filtered, "s_phone"), colOf(filtered, "s_comment")})
	return &exec.Sort{Child: proj, Keys: []exec.SortKey{
		{Col: "s_acctbal", Desc: true}, {Col: "n_name"}, {Col: "s_name"}, {Col: "p_partkey"},
	}, Limit: 100}
}

// seSlim projects a supplier-nation join down to the supplier key.
func seSlim(se exec.Node) exec.Node {
	return project(se, []string{"s_suppkey"}, []exec.Expr{colOf(se, "s_suppkey")})
}

// seFull keeps the supplier columns Q2 outputs.
func seFull(se exec.Node) exec.Node {
	return project(se,
		[]string{"s_suppkey", "s_name", "s_address", "s_phone", "s_acctbal", "s_comment", "n_name"},
		[]exec.Expr{colOf(se, "s_suppkey"), colOf(se, "s_name"), colOf(se, "s_address"),
			colOf(se, "s_phone"), colOf(se, "s_acctbal"), colOf(se, "s_comment"), colOf(se, "n_name")})
}

// q3 is the shipping priority query.
func q3(db *DB) exec.Node {
	c := scan(db, Customer, "c_custkey", "c_mktsegment")
	c.Filter = exec.Cmp("=", colOf(c, "c_mktsegment"), exec.ConstStr("BUILDING"))
	cSlim := project(c, []string{"c_custkey"}, []exec.Expr{colOf(c, "c_custkey")})

	o := scan(db, Orders, "o_orderkey", "o_custkey", "o_orderdate", "o_shippriority")
	o.Filter = exec.Cmp("<", colOf(o, "o_orderdate"), exec.ConstDate("1995-03-15"))
	co := exec.NewJoin(exec.Inner, cSlim, []string{"c_custkey"}, o, []string{"o_custkey"})
	coSlim := project(co, []string{"o_orderkey", "o_orderdate", "o_shippriority"},
		[]exec.Expr{colOf(co, "o_orderkey"), colOf(co, "o_orderdate"), colOf(co, "o_shippriority")})

	l := scan(db, Lineitem, "l_orderkey", "l_extendedprice", "l_discount", "l_shipdate")
	l.Filter = exec.Cmp(">", colOf(l, "l_shipdate"), exec.ConstDate("1995-03-15"))
	j := exec.NewJoin(exec.Inner, coSlim, []string{"o_orderkey"}, l, []string{"l_orderkey"})
	withRev := addCol(j, "rev", revenueExpr(j))
	agg := exec.NewAgg(withRev, []string{"l_orderkey", "o_orderdate", "o_shippriority"},
		[]exec.AggSpec{{Func: exec.Sum, Col: "rev", As: "revenue"}})
	return &exec.Sort{Child: agg, Keys: []exec.SortKey{{Col: "revenue", Desc: true}, {Col: "o_orderdate"}}, Limit: 10}
}

// q4 is the order priority checking query.
func q4(db *DB) exec.Node {
	l := scan(db, Lineitem, "l_orderkey", "l_commitdate", "l_receiptdate")
	l.Filter = exec.Cmp("<", colOf(l, "l_commitdate"), colOf(l, "l_receiptdate"))
	lSlim := project(l, []string{"l_orderkey"}, []exec.Expr{colOf(l, "l_orderkey")})

	o := scan(db, Orders, "o_orderkey", "o_orderdate", "o_orderpriority")
	o.Filter = exec.And(
		exec.Cmp(">=", colOf(o, "o_orderdate"), exec.ConstDate("1993-07-01")),
		exec.Cmp("<", colOf(o, "o_orderdate"), exec.ConstDate("1993-10-01")),
	)
	semi := exec.NewJoin(exec.Semi, lSlim, []string{"l_orderkey"}, o, []string{"o_orderkey"})
	agg := exec.NewAgg(semi, []string{"o_orderpriority"}, []exec.AggSpec{{Func: exec.CountStar, As: "order_count"}})
	return &exec.Sort{Child: agg, Keys: []exec.SortKey{{Col: "o_orderpriority"}}}
}

// q5 is the local supplier volume query.
func q5(db *DB) exec.Node {
	r := scan(db, Region, "r_regionkey", "r_name")
	r.Filter = exec.Cmp("=", colOf(r, "r_name"), exec.ConstStr("ASIA"))
	n := scan(db, Nation, "n_nationkey", "n_name", "n_regionkey")
	nr := exec.NewJoin(exec.Inner, r, []string{"r_regionkey"}, n, []string{"n_regionkey"})
	s := scan(db, Supplier, "s_suppkey", "s_nationkey")
	sn := exec.NewJoin(exec.Inner, nr, []string{"n_nationkey"}, s, []string{"s_nationkey"})
	snSlim := project(sn, []string{"s_suppkey", "s_nationkey", "n_name"},
		[]exec.Expr{colOf(sn, "s_suppkey"), colOf(sn, "s_nationkey"), colOf(sn, "n_name")})

	o := scan(db, Orders, "o_orderkey", "o_custkey", "o_orderdate")
	o.Filter = exec.And(
		exec.Cmp(">=", colOf(o, "o_orderdate"), exec.ConstDate("1994-01-01")),
		exec.Cmp("<", colOf(o, "o_orderdate"), exec.ConstDate("1995-01-01")),
	)
	c := scan(db, Customer, "c_custkey", "c_nationkey")
	co := exec.NewJoin(exec.Inner, c, []string{"c_custkey"}, o, []string{"o_custkey"})
	coSlim := project(co, []string{"o_orderkey", "c_nationkey"},
		[]exec.Expr{colOf(co, "o_orderkey"), colOf(co, "c_nationkey")})

	l := scan(db, Lineitem, "l_orderkey", "l_suppkey", "l_extendedprice", "l_discount")
	lo := exec.NewJoin(exec.Inner, coSlim, []string{"o_orderkey"}, l, []string{"l_orderkey"})
	// The local-supplier condition: supplier nation == customer nation.
	j := exec.NewJoin(exec.Inner, snSlim, []string{"s_suppkey", "s_nationkey"}, lo, []string{"l_suppkey", "c_nationkey"})
	withRev := addCol(j, "rev", revenueExpr(j))
	agg := exec.NewAgg(withRev, []string{"n_name"}, []exec.AggSpec{{Func: exec.Sum, Col: "rev", As: "revenue"}})
	return &exec.Sort{Child: agg, Keys: []exec.SortKey{{Col: "revenue", Desc: true}}}
}

// q6 is the forecasting revenue change query.
func q6(db *DB) exec.Node {
	l := scan(db, Lineitem, "l_shipdate", "l_discount", "l_quantity", "l_extendedprice")
	l.Filter = exec.And(
		exec.Cmp(">=", colOf(l, "l_shipdate"), exec.ConstDate("1994-01-01")),
		exec.Cmp("<", colOf(l, "l_shipdate"), exec.ConstDate("1995-01-01")),
		exec.Cmp(">=", colOf(l, "l_discount"), exec.ConstFloat(0.0499)),
		exec.Cmp("<=", colOf(l, "l_discount"), exec.ConstFloat(0.0701)),
		exec.Cmp("<", colOf(l, "l_quantity"), exec.ConstFloat(24)),
	)
	withRev := addCol(l, "rev", exec.Mul(colOf(l, "l_extendedprice"), colOf(l, "l_discount")))
	return exec.NewAgg(withRev, nil, []exec.AggSpec{{Func: exec.Sum, Col: "rev", As: "revenue"}})
}

// q7 is the volume shipping query.
func q7(db *DB) exec.Node {
	n1 := scan(db, Nation, "n_nationkey", "n_name")
	n1.Filter = exec.InStr(colOf(n1, "n_name"), "FRANCE", "GERMANY")
	s := scan(db, Supplier, "s_suppkey", "s_nationkey")
	sn := exec.NewJoin(exec.Inner, n1, []string{"n_nationkey"}, s, []string{"s_nationkey"})
	snSlim := project(sn, []string{"s_suppkey", "supp_nation"},
		[]exec.Expr{colOf(sn, "s_suppkey"), colOf(sn, "n_name")})

	n2 := scan(db, Nation, "n_nationkey", "n_name")
	n2.Filter = exec.InStr(colOf(n2, "n_name"), "FRANCE", "GERMANY")
	c := scan(db, Customer, "c_custkey", "c_nationkey")
	cn := exec.NewJoin(exec.Inner, n2, []string{"n_nationkey"}, c, []string{"c_nationkey"})
	cnSlim := project(cn, []string{"c_custkey", "cust_nation"},
		[]exec.Expr{colOf(cn, "c_custkey"), colOf(cn, "n_name")})

	o := scan(db, Orders, "o_orderkey", "o_custkey")
	co := exec.NewJoin(exec.Inner, cnSlim, []string{"c_custkey"}, o, []string{"o_custkey"})
	coSlim := project(co, []string{"o_orderkey", "cust_nation"},
		[]exec.Expr{colOf(co, "o_orderkey"), colOf(co, "cust_nation")})

	l := scan(db, Lineitem, "l_orderkey", "l_suppkey", "l_shipdate", "l_extendedprice", "l_discount")
	l.Filter = exec.And(
		exec.Cmp(">=", colOf(l, "l_shipdate"), exec.ConstDate("1995-01-01")),
		exec.Cmp("<=", colOf(l, "l_shipdate"), exec.ConstDate("1996-12-31")),
	)
	lo := exec.NewJoin(exec.Inner, coSlim, []string{"o_orderkey"}, l, []string{"l_orderkey"})
	j := exec.NewJoin(exec.Inner, snSlim, []string{"s_suppkey"}, lo, []string{"l_suppkey"})
	pair := &exec.FilterNode{Child: j, Pred: exec.Or(
		exec.And(exec.Cmp("=", colOf(j, "supp_nation"), exec.ConstStr("FRANCE")),
			exec.Cmp("=", colOf(j, "cust_nation"), exec.ConstStr("GERMANY"))),
		exec.And(exec.Cmp("=", colOf(j, "supp_nation"), exec.ConstStr("GERMANY")),
			exec.Cmp("=", colOf(j, "cust_nation"), exec.ConstStr("FRANCE"))),
	)}
	pre := project(pair, []string{"supp_nation", "cust_nation", "l_year", "volume"},
		[]exec.Expr{colOf(pair, "supp_nation"), colOf(pair, "cust_nation"),
			exec.YearOf(colOf(pair, "l_shipdate")), revenueExpr(pair)})
	agg := exec.NewAgg(pre, []string{"supp_nation", "cust_nation", "l_year"},
		[]exec.AggSpec{{Func: exec.Sum, Col: "volume", As: "revenue"}})
	return &exec.Sort{Child: agg, Keys: []exec.SortKey{{Col: "supp_nation"}, {Col: "cust_nation"}, {Col: "l_year"}}}
}

// q8 is the national market share query.
func q8(db *DB) exec.Node {
	p := scan(db, Part, "p_partkey", "p_type")
	p.Filter = exec.Cmp("=", colOf(p, "p_type"), exec.ConstStr("ECONOMY ANODIZED STEEL"))
	pSlim := project(p, []string{"p_partkey"}, []exec.Expr{colOf(p, "p_partkey")})

	l := scan(db, Lineitem, "l_orderkey", "l_partkey", "l_suppkey", "l_extendedprice", "l_discount")
	lp := exec.NewJoin(exec.Inner, pSlim, []string{"p_partkey"}, l, []string{"l_partkey"})

	o := scan(db, Orders, "o_orderkey", "o_custkey", "o_orderdate")
	o.Filter = exec.And(
		exec.Cmp(">=", colOf(o, "o_orderdate"), exec.ConstDate("1995-01-01")),
		exec.Cmp("<=", colOf(o, "o_orderdate"), exec.ConstDate("1996-12-31")),
	)
	oSlim := project(o, []string{"o_orderkey", "o_custkey", "o_orderdate"},
		[]exec.Expr{colOf(o, "o_orderkey"), colOf(o, "o_custkey"), colOf(o, "o_orderdate")})
	lpo := exec.NewJoin(exec.Inner, oSlim, []string{"o_orderkey"}, lp, []string{"l_orderkey"})

	// Customers in AMERICA.
	r := scan(db, Region, "r_regionkey", "r_name")
	r.Filter = exec.Cmp("=", colOf(r, "r_name"), exec.ConstStr("AMERICA"))
	n1 := scan(db, Nation, "n_nationkey", "n_regionkey")
	nr := exec.NewJoin(exec.Inner, r, []string{"r_regionkey"}, n1, []string{"n_regionkey"})
	c := scan(db, Customer, "c_custkey", "c_nationkey")
	cn := exec.NewJoin(exec.Inner, nr, []string{"n_nationkey"}, c, []string{"c_nationkey"})
	cnSlim := project(cn, []string{"c_custkey"}, []exec.Expr{colOf(cn, "c_custkey")})
	lpoc := exec.NewJoin(exec.Inner, cnSlim, []string{"c_custkey"}, lpo, []string{"o_custkey"})

	// Supplier nation names.
	n2 := scan(db, Nation, "n_nationkey", "n_name")
	s := scan(db, Supplier, "s_suppkey", "s_nationkey")
	sn := exec.NewJoin(exec.Inner, n2, []string{"n_nationkey"}, s, []string{"s_nationkey"})
	snSlim := project(sn, []string{"s_suppkey", "nation"},
		[]exec.Expr{colOf(sn, "s_suppkey"), colOf(sn, "n_name")})
	j := exec.NewJoin(exec.Inner, snSlim, []string{"s_suppkey"}, lpoc, []string{"l_suppkey"})

	vol := revenueExpr(j)
	pre := project(j, []string{"o_year", "volume", "brazil_volume"},
		[]exec.Expr{
			exec.YearOf(colOf(j, "o_orderdate")),
			vol,
			exec.Case(exec.Cmp("=", colOf(j, "nation"), exec.ConstStr("BRAZIL")), vol, exec.ConstFloat(0)),
		})
	agg := exec.NewAgg(pre, []string{"o_year"}, []exec.AggSpec{
		{Func: exec.Sum, Col: "brazil_volume", As: "sum_brazil"},
		{Func: exec.Sum, Col: "volume", As: "sum_all"},
	})
	share := project(agg, []string{"o_year", "mkt_share"},
		[]exec.Expr{colOf(agg, "o_year"), exec.Div(colOf(agg, "sum_brazil"), colOf(agg, "sum_all"))})
	return &exec.Sort{Child: share, Keys: []exec.SortKey{{Col: "o_year"}}}
}

// q9 is the product type profit measure query.
func q9(db *DB) exec.Node {
	p := scan(db, Part, "p_partkey", "p_name")
	p.Filter = exec.Like(colOf(p, "p_name"), "%green%")
	pSlim := project(p, []string{"p_partkey"}, []exec.Expr{colOf(p, "p_partkey")})

	l := scan(db, Lineitem, "l_orderkey", "l_partkey", "l_suppkey", "l_quantity", "l_extendedprice", "l_discount")
	lp := exec.NewJoin(exec.Inner, pSlim, []string{"p_partkey"}, l, []string{"l_partkey"})

	ps := scan(db, PartSupp, "ps_partkey", "ps_suppkey", "ps_supplycost")
	lps := exec.NewJoin(exec.Inner, ps, []string{"ps_partkey", "ps_suppkey"}, lp, []string{"l_partkey", "l_suppkey"})

	o := scan(db, Orders, "o_orderkey", "o_orderdate")
	lpso := exec.NewJoin(exec.Inner, o, []string{"o_orderkey"}, lps, []string{"l_orderkey"})

	n := scan(db, Nation, "n_nationkey", "n_name")
	s := scan(db, Supplier, "s_suppkey", "s_nationkey")
	sn := exec.NewJoin(exec.Inner, n, []string{"n_nationkey"}, s, []string{"s_nationkey"})
	snSlim := project(sn, []string{"s_suppkey", "nation"},
		[]exec.Expr{colOf(sn, "s_suppkey"), colOf(sn, "n_name")})
	j := exec.NewJoin(exec.Inner, snSlim, []string{"s_suppkey"}, lpso, []string{"l_suppkey"})

	amount := exec.Sub(revenueExpr(j), exec.Mul(colOf(j, "ps_supplycost"), colOf(j, "l_quantity")))
	pre := project(j, []string{"nation", "o_year", "amount"},
		[]exec.Expr{colOf(j, "nation"), exec.YearOf(colOf(j, "o_orderdate")), amount})
	agg := exec.NewAgg(pre, []string{"nation", "o_year"}, []exec.AggSpec{{Func: exec.Sum, Col: "amount", As: "sum_profit"}})
	return &exec.Sort{Child: agg, Keys: []exec.SortKey{{Col: "nation"}, {Col: "o_year", Desc: true}}}
}

// q10 is the returned item reporting query.
func q10(db *DB) exec.Node {
	o := scan(db, Orders, "o_orderkey", "o_custkey", "o_orderdate")
	o.Filter = exec.And(
		exec.Cmp(">=", colOf(o, "o_orderdate"), exec.ConstDate("1993-10-01")),
		exec.Cmp("<", colOf(o, "o_orderdate"), exec.ConstDate("1994-01-01")),
	)
	l := scan(db, Lineitem, "l_orderkey", "l_returnflag", "l_extendedprice", "l_discount")
	l.Filter = exec.Cmp("=", colOf(l, "l_returnflag"), exec.ConstStr("R"))
	oSlim := project(o, []string{"o_orderkey", "o_custkey"},
		[]exec.Expr{colOf(o, "o_orderkey"), colOf(o, "o_custkey")})
	lo := exec.NewJoin(exec.Inner, oSlim, []string{"o_orderkey"}, l, []string{"l_orderkey"})

	c := scan(db, Customer, "c_custkey", "c_name", "c_acctbal", "c_phone", "c_address", "c_comment", "c_nationkey")
	n := scan(db, Nation, "n_nationkey", "n_name")
	cn := exec.NewJoin(exec.Inner, n, []string{"n_nationkey"}, c, []string{"c_nationkey"})
	j := exec.NewJoin(exec.Inner, cn, []string{"c_custkey"}, lo, []string{"o_custkey"})
	withRev := addCol(j, "rev", revenueExpr(j))
	agg := exec.NewAgg(withRev,
		[]string{"c_custkey", "c_name", "c_acctbal", "c_phone", "n_name", "c_address", "c_comment"},
		[]exec.AggSpec{{Func: exec.Sum, Col: "rev", As: "revenue"}})
	return &exec.Sort{Child: agg, Keys: []exec.SortKey{{Col: "revenue", Desc: true}}, Limit: 20}
}

// q11 is the important stock identification query (scalar subquery).
func q11(ctx *exec.Ctx, db *DB) (exec.Node, error) {
	base := func() exec.Node {
		n := scan(db, Nation, "n_nationkey", "n_name")
		n.Filter = exec.Cmp("=", colOf(n, "n_name"), exec.ConstStr("GERMANY"))
		s := scan(db, Supplier, "s_suppkey", "s_nationkey")
		sn := exec.NewJoin(exec.Inner, n, []string{"n_nationkey"}, s, []string{"s_nationkey"})
		snSlim := project(sn, []string{"s_suppkey"}, []exec.Expr{colOf(sn, "s_suppkey")})
		ps := scan(db, PartSupp, "ps_partkey", "ps_suppkey", "ps_supplycost", "ps_availqty")
		j := exec.NewJoin(exec.Inner, snSlim, []string{"s_suppkey"}, ps, []string{"ps_suppkey"})
		return addCol(j, "value", exec.Mul(colOf(j, "ps_supplycost"), colOf(j, "ps_availqty")))
	}
	total, err := scalarFloat(ctx, exec.NewAgg(base(), nil,
		[]exec.AggSpec{{Func: exec.Sum, Col: "value", As: "total"}}), "total")
	if err != nil {
		return nil, err
	}
	threshold := total * 0.0001 / db.SF
	agg := exec.NewAgg(base(), []string{"ps_partkey"}, []exec.AggSpec{{Func: exec.Sum, Col: "value", As: "value"}})
	filtered := &exec.FilterNode{Child: agg, Pred: exec.Cmp(">", colOf(agg, "value"), exec.ConstFloat(threshold))}
	return &exec.Sort{Child: filtered, Keys: []exec.SortKey{{Col: "value", Desc: true}}}, nil
}

// q12 is the shipping modes and order priority query.
func q12(db *DB) exec.Node {
	l := scan(db, Lineitem, "l_orderkey", "l_shipmode", "l_commitdate", "l_receiptdate", "l_shipdate")
	l.Filter = exec.And(
		exec.InStr(colOf(l, "l_shipmode"), "MAIL", "SHIP"),
		exec.Cmp("<", colOf(l, "l_commitdate"), colOf(l, "l_receiptdate")),
		exec.Cmp("<", colOf(l, "l_shipdate"), colOf(l, "l_commitdate")),
		exec.Cmp(">=", colOf(l, "l_receiptdate"), exec.ConstDate("1994-01-01")),
		exec.Cmp("<", colOf(l, "l_receiptdate"), exec.ConstDate("1995-01-01")),
	)
	o := scan(db, Orders, "o_orderkey", "o_orderpriority")
	j := exec.NewJoin(exec.Inner, o, []string{"o_orderkey"}, l, []string{"l_orderkey"})
	high := exec.InStr(colOf(j, "o_orderpriority"), "1-URGENT", "2-HIGH")
	pre := project(j, []string{"l_shipmode", "high_line", "low_line"},
		[]exec.Expr{colOf(j, "l_shipmode"),
			exec.Case(high, exec.ConstInt(1), exec.ConstInt(0)),
			exec.Case(high, exec.ConstInt(0), exec.ConstInt(1))})
	agg := exec.NewAgg(pre, []string{"l_shipmode"}, []exec.AggSpec{
		{Func: exec.Sum, Col: "high_line", As: "high_line_count"},
		{Func: exec.Sum, Col: "low_line", As: "low_line_count"},
	})
	return &exec.Sort{Child: agg, Keys: []exec.SortKey{{Col: "l_shipmode"}}}
}

// q13 is the customer distribution query (the one outer join in TPC-H).
func q13(db *DB) exec.Node {
	o := scan(db, Orders, "o_orderkey", "o_custkey", "o_comment")
	o.Filter = exec.NotLike(colOf(o, "o_comment"), "%special%requests%")
	oSlim := project(o, []string{"o_orderkey", "o_custkey"},
		[]exec.Expr{colOf(o, "o_orderkey"), colOf(o, "o_custkey")})
	c := scan(db, Customer, "c_custkey")
	j := exec.NewJoin(exec.Outer, oSlim, []string{"o_custkey"}, c, []string{"c_custkey"})
	counts := exec.NewAgg(j, []string{"c_custkey"}, []exec.AggSpec{{Func: exec.Count, Col: "o_orderkey", As: "c_count"}})
	dist := exec.NewAgg(counts, []string{"c_count"}, []exec.AggSpec{{Func: exec.CountStar, As: "custdist"}})
	return &exec.Sort{Child: dist, Keys: []exec.SortKey{{Col: "custdist", Desc: true}, {Col: "c_count", Desc: true}}}
}

// q14 is the promotion effect query.
func q14(db *DB) exec.Node {
	l := scan(db, Lineitem, "l_partkey", "l_shipdate", "l_extendedprice", "l_discount")
	l.Filter = exec.And(
		exec.Cmp(">=", colOf(l, "l_shipdate"), exec.ConstDate("1995-09-01")),
		exec.Cmp("<", colOf(l, "l_shipdate"), exec.ConstDate("1995-10-01")),
	)
	p := scan(db, Part, "p_partkey", "p_type")
	j := exec.NewJoin(exec.Inner, p, []string{"p_partkey"}, l, []string{"l_partkey"})
	rev := revenueExpr(j)
	pre := project(j, []string{"promo_rev", "rev"},
		[]exec.Expr{
			exec.Case(exec.Like(colOf(j, "p_type"), "PROMO%"), rev, exec.ConstFloat(0)),
			rev,
		})
	agg := exec.NewAgg(pre, nil, []exec.AggSpec{
		{Func: exec.Sum, Col: "promo_rev", As: "promo"},
		{Func: exec.Sum, Col: "rev", As: "total"},
	})
	return project(agg, []string{"promo_revenue"},
		[]exec.Expr{exec.Mul(exec.ConstFloat(100), exec.Div(colOf(agg, "promo"), colOf(agg, "total")))})
}

// q15 is the top supplier query (view + scalar max).
func q15(ctx *exec.Ctx, db *DB) (exec.Node, error) {
	l := scan(db, Lineitem, "l_suppkey", "l_shipdate", "l_extendedprice", "l_discount")
	l.Filter = exec.And(
		exec.Cmp(">=", colOf(l, "l_shipdate"), exec.ConstDate("1996-01-01")),
		exec.Cmp("<", colOf(l, "l_shipdate"), exec.ConstDate("1996-04-01")),
	)
	withRev := addCol(l, "rev", revenueExpr(l))
	revenue := exec.NewAgg(withRev, []string{"l_suppkey"}, []exec.AggSpec{{Func: exec.Sum, Col: "rev", As: "total_revenue"}})
	view, err := materialize(ctx, revenue)
	if err != nil {
		return nil, err
	}
	maxRev, err := scalarFloat(ctx, exec.NewAgg(exec.NewScan(view), nil,
		[]exec.AggSpec{{Func: exec.Max, Col: "total_revenue", As: "m"}}), "m")
	if err != nil {
		return nil, err
	}
	v := exec.NewScan(view)
	v.Filter = exec.Cmp(">=", exec.Col(v.Schema(), "total_revenue"), exec.ConstFloat(maxRev))
	s := scan(db, Supplier, "s_suppkey", "s_name", "s_address", "s_phone")
	j := exec.NewJoin(exec.Inner, v, []string{"l_suppkey"}, s, []string{"s_suppkey"})
	proj := project(j, []string{"s_suppkey", "s_name", "s_address", "s_phone", "total_revenue"},
		[]exec.Expr{colOf(j, "s_suppkey"), colOf(j, "s_name"), colOf(j, "s_address"),
			colOf(j, "s_phone"), colOf(j, "total_revenue")})
	return &exec.Sort{Child: proj, Keys: []exec.SortKey{{Col: "s_suppkey"}}}, nil
}

// q16 is the parts/supplier relationship query.
func q16(db *DB) exec.Node {
	p := scan(db, Part, "p_partkey", "p_brand", "p_type", "p_size")
	p.Filter = exec.And(
		exec.Cmp("<>", colOf(p, "p_brand"), exec.ConstStr("Brand#45")),
		exec.NotLike(colOf(p, "p_type"), "MEDIUM POLISHED%"),
		exec.InInt(colOf(p, "p_size"), 49, 14, 23, 45, 19, 3, 36, 9),
	)
	ps := scan(db, PartSupp, "ps_partkey", "ps_suppkey")
	j := exec.NewJoin(exec.Inner, p, []string{"p_partkey"}, ps, []string{"ps_partkey"})

	// Exclude suppliers with complaints (anti join).
	s := scan(db, Supplier, "s_suppkey", "s_comment")
	s.Filter = exec.Like(colOf(s, "s_comment"), "%Customer%Complaints%")
	sSlim := project(s, []string{"s_suppkey"}, []exec.Expr{colOf(s, "s_suppkey")})
	clean := exec.NewJoin(exec.Anti, sSlim, []string{"s_suppkey"}, j, []string{"ps_suppkey"})

	// count(distinct ps_suppkey): dedupe then count.
	dedup := exec.NewAgg(clean, []string{"p_brand", "p_type", "p_size", "ps_suppkey"}, nil)
	agg := exec.NewAgg(dedup, []string{"p_brand", "p_type", "p_size"},
		[]exec.AggSpec{{Func: exec.CountStar, As: "supplier_cnt"}})
	return &exec.Sort{Child: agg, Keys: []exec.SortKey{
		{Col: "supplier_cnt", Desc: true}, {Col: "p_brand"}, {Col: "p_type"}, {Col: "p_size"},
	}}
}

// q17 is the small-quantity-order revenue query (correlated avg,
// decorrelated into a per-part aggregate join).
func q17(db *DB) exec.Node {
	avgQty := exec.NewAgg(
		scan(db, Lineitem, "l_partkey", "l_quantity"),
		[]string{"l_partkey"},
		[]exec.AggSpec{{Func: exec.Avg, Col: "l_quantity", As: "avg_qty"}})

	p := scan(db, Part, "p_partkey", "p_brand", "p_container")
	p.Filter = exec.And(
		exec.Cmp("=", colOf(p, "p_brand"), exec.ConstStr("Brand#23")),
		exec.Cmp("=", colOf(p, "p_container"), exec.ConstStr("MED BOX")),
	)
	pSlim := project(p, []string{"p_partkey"}, []exec.Expr{colOf(p, "p_partkey")})

	l := scan(db, Lineitem, "l_partkey", "l_quantity", "l_extendedprice")
	lp := exec.NewJoin(exec.Inner, pSlim, []string{"p_partkey"}, l, []string{"l_partkey"})
	withAvg := exec.NewJoin(exec.Inner, avgQty, []string{"l_partkey"}, lp, []string{"l_partkey"})
	small := &exec.FilterNode{Child: withAvg, Pred: exec.Cmp("<",
		colOf(withAvg, "l_quantity"), exec.Mul(exec.ConstFloat(0.2), colOf(withAvg, "avg_qty")))}
	agg := exec.NewAgg(small, nil, []exec.AggSpec{{Func: exec.Sum, Col: "l_extendedprice", As: "s"}})
	return project(agg, []string{"avg_yearly"}, []exec.Expr{exec.Div(colOf(agg, "s"), exec.ConstFloat(7))})
}

// q18 is the large volume customer query.
func q18(db *DB) exec.Node {
	sumQty := exec.NewAgg(
		scan(db, Lineitem, "l_orderkey", "l_quantity"),
		[]string{"l_orderkey"},
		[]exec.AggSpec{{Func: exec.Sum, Col: "l_quantity", As: "total_qty"}})
	big := &exec.FilterNode{Child: sumQty, Pred: exec.Cmp(">", colOf(sumQty, "total_qty"), exec.ConstFloat(300))}
	bigSlim := project(big, []string{"bo_orderkey", "total_qty"},
		[]exec.Expr{colOf(big, "l_orderkey"), colOf(big, "total_qty")})

	o := scan(db, Orders, "o_orderkey", "o_custkey", "o_orderdate", "o_totalprice")
	oj := exec.NewJoin(exec.Inner, bigSlim, []string{"bo_orderkey"}, o, []string{"o_orderkey"})
	c := scan(db, Customer, "c_custkey", "c_name")
	j := exec.NewJoin(exec.Inner, c, []string{"c_custkey"}, oj, []string{"o_custkey"})
	proj := project(j,
		[]string{"c_name", "c_custkey", "o_orderkey", "o_orderdate", "o_totalprice", "total_qty"},
		[]exec.Expr{colOf(j, "c_name"), colOf(j, "c_custkey"), colOf(j, "o_orderkey"),
			colOf(j, "o_orderdate"), colOf(j, "o_totalprice"), colOf(j, "total_qty")})
	return &exec.Sort{Child: proj, Keys: []exec.SortKey{{Col: "o_totalprice", Desc: true}, {Col: "o_orderdate"}}, Limit: 100}
}

// q19 is the discounted revenue query (disjunctive join predicate).
func q19(db *DB) exec.Node {
	l := scan(db, Lineitem, "l_partkey", "l_quantity", "l_extendedprice", "l_discount", "l_shipinstruct", "l_shipmode")
	l.Filter = exec.And(
		exec.InStr(colOf(l, "l_shipmode"), "AIR", "REG AIR"),
		exec.Cmp("=", colOf(l, "l_shipinstruct"), exec.ConstStr("DELIVER IN PERSON")),
	)
	p := scan(db, Part, "p_partkey", "p_brand", "p_container", "p_size")
	j := exec.NewJoin(exec.Inner, p, []string{"p_partkey"}, l, []string{"l_partkey"})

	branch := func(brand string, containers []string, qlo, qhi float64, smax int64) exec.Expr {
		return exec.And(
			exec.Cmp("=", colOf(j, "p_brand"), exec.ConstStr(brand)),
			exec.InStr(colOf(j, "p_container"), containers...),
			exec.Cmp(">=", colOf(j, "l_quantity"), exec.ConstFloat(qlo)),
			exec.Cmp("<=", colOf(j, "l_quantity"), exec.ConstFloat(qhi)),
			exec.Cmp(">=", colOf(j, "p_size"), exec.ConstInt(1)),
			exec.Cmp("<=", colOf(j, "p_size"), exec.ConstInt(smax)),
		)
	}
	filtered := &exec.FilterNode{Child: j, Pred: exec.Or(
		branch("Brand#12", []string{"SM CASE", "SM BOX", "SM PACK", "SM PKG"}, 1, 11, 5),
		branch("Brand#23", []string{"MED BAG", "MED BOX", "MED PKG", "MED PACK"}, 10, 20, 10),
		branch("Brand#34", []string{"LG CASE", "LG BOX", "LG PACK", "LG PKG"}, 20, 30, 15),
	)}
	withRev := addCol(filtered, "rev", revenueExpr(filtered))
	return exec.NewAgg(withRev, nil, []exec.AggSpec{{Func: exec.Sum, Col: "rev", As: "revenue"}})
}

// q20 is the potential part promotion query.
func q20(db *DB) exec.Node {
	l := scan(db, Lineitem, "l_partkey", "l_suppkey", "l_quantity", "l_shipdate")
	l.Filter = exec.And(
		exec.Cmp(">=", colOf(l, "l_shipdate"), exec.ConstDate("1994-01-01")),
		exec.Cmp("<", colOf(l, "l_shipdate"), exec.ConstDate("1995-01-01")),
	)
	sumQ := exec.NewAgg(l, []string{"l_partkey", "l_suppkey"},
		[]exec.AggSpec{{Func: exec.Sum, Col: "l_quantity", As: "sum_qty"}})

	p := scan(db, Part, "p_partkey", "p_name")
	p.Filter = exec.Like(colOf(p, "p_name"), "forest%")
	pSlim := project(p, []string{"p_partkey"}, []exec.Expr{colOf(p, "p_partkey")})

	ps := scan(db, PartSupp, "ps_partkey", "ps_suppkey", "ps_availqty")
	psForest := exec.NewJoin(exec.Semi, pSlim, []string{"p_partkey"}, ps, []string{"ps_partkey"})
	withSum := exec.NewJoin(exec.Inner, sumQ, []string{"l_partkey", "l_suppkey"},
		psForest, []string{"ps_partkey", "ps_suppkey"})
	excess := &exec.FilterNode{Child: withSum, Pred: exec.Cmp(">",
		colOf(withSum, "ps_availqty"), exec.Mul(exec.ConstFloat(0.5), colOf(withSum, "sum_qty")))}
	supps := exec.NewAgg(excess, []string{"ps_suppkey"}, nil) // distinct suppliers

	n := scan(db, Nation, "n_nationkey", "n_name")
	n.Filter = exec.Cmp("=", colOf(n, "n_name"), exec.ConstStr("CANADA"))
	s := scan(db, Supplier, "s_suppkey", "s_name", "s_address", "s_nationkey")
	sn := exec.NewJoin(exec.Inner, n, []string{"n_nationkey"}, s, []string{"s_nationkey"})
	j := exec.NewJoin(exec.Semi, supps, []string{"ps_suppkey"}, sn, []string{"s_suppkey"})
	proj := project(j, []string{"s_name", "s_address"},
		[]exec.Expr{colOf(j, "s_name"), colOf(j, "s_address")})
	return &exec.Sort{Child: proj, Keys: []exec.SortKey{{Col: "s_name"}}}
}

// q21 is the suppliers-who-kept-orders-waiting query. The EXISTS/NOT
// EXISTS pair is decorrelated into per-order distinct-supplier counts: an
// order qualifies when it has more than one supplier overall but exactly
// one late supplier (which is then necessarily the qualifying one).
func q21(db *DB) exec.Node {
	distinctSupp := func(late bool) exec.Node {
		l := scan(db, Lineitem, "l_orderkey", "l_suppkey", "l_commitdate", "l_receiptdate")
		if late {
			l.Filter = exec.Cmp(">", colOf(l, "l_receiptdate"), colOf(l, "l_commitdate"))
		}
		d := exec.NewAgg(l, []string{"l_orderkey", "l_suppkey"}, nil)
		return exec.NewAgg(d, []string{"l_orderkey"}, []exec.AggSpec{{Func: exec.CountStar, As: "n"}})
	}
	nAll := distinctSupp(false)
	multi := &exec.FilterNode{Child: nAll, Pred: exec.Cmp(">", colOf(nAll, "n"), exec.ConstInt(1))}
	multiSlim := project(multi, []string{"all_orderkey"}, []exec.Expr{colOf(multi, "l_orderkey")})
	nLate := distinctSupp(true)
	oneLate := &exec.FilterNode{Child: nLate, Pred: exec.Cmp("=", colOf(nLate, "n"), exec.ConstInt(1))}
	oneLateSlim := project(oneLate, []string{"late_orderkey"}, []exec.Expr{colOf(oneLate, "l_orderkey")})

	l1 := scan(db, Lineitem, "l_orderkey", "l_suppkey", "l_commitdate", "l_receiptdate")
	l1.Filter = exec.Cmp(">", colOf(l1, "l_receiptdate"), colOf(l1, "l_commitdate"))
	o := scan(db, Orders, "o_orderkey", "o_orderstatus")
	o.Filter = exec.Cmp("=", colOf(o, "o_orderstatus"), exec.ConstStr("F"))
	oSlim := project(o, []string{"o_orderkey"}, []exec.Expr{colOf(o, "o_orderkey")})
	l1o := exec.NewJoin(exec.Semi, oSlim, []string{"o_orderkey"}, l1, []string{"l_orderkey"})

	n := scan(db, Nation, "n_nationkey", "n_name")
	n.Filter = exec.Cmp("=", colOf(n, "n_name"), exec.ConstStr("SAUDI ARABIA"))
	s := scan(db, Supplier, "s_suppkey", "s_name", "s_nationkey")
	sn := exec.NewJoin(exec.Inner, n, []string{"n_nationkey"}, s, []string{"s_nationkey"})
	snSlim := project(sn, []string{"s_suppkey", "s_name"},
		[]exec.Expr{colOf(sn, "s_suppkey"), colOf(sn, "s_name")})
	l1s := exec.NewJoin(exec.Inner, snSlim, []string{"s_suppkey"}, l1o, []string{"l_suppkey"})

	withMulti := exec.NewJoin(exec.Inner, multiSlim, []string{"all_orderkey"}, l1s, []string{"l_orderkey"})
	withLate := exec.NewJoin(exec.Inner, oneLateSlim, []string{"late_orderkey"}, withMulti, []string{"l_orderkey"})

	agg := exec.NewAgg(withLate, []string{"s_name"}, []exec.AggSpec{{Func: exec.CountStar, As: "numwait"}})
	return &exec.Sort{Child: agg, Keys: []exec.SortKey{{Col: "numwait", Desc: true}, {Col: "s_name"}}, Limit: 100}
}

// q22 is the global sales opportunity query.
func q22(ctx *exec.Ctx, db *DB) (exec.Node, error) {
	codes := []string{"13", "31", "23", "29", "30", "18", "17"}
	base := func() *exec.Scan {
		c := scan(db, Customer, "c_custkey", "c_phone", "c_acctbal")
		c.Filter = exec.InStr(exec.Substr(exec.Col(c.Schema(), "c_phone"), 1, 2), codes...)
		return c
	}
	posC := base()
	posC.Filter = exec.And(posC.Filter, exec.Cmp(">", exec.Col(posC.Schema(), "c_acctbal"), exec.ConstFloat(0)))
	avgBal, err := scalarFloat(ctx, exec.NewAgg(posC, nil,
		[]exec.AggSpec{{Func: exec.Avg, Col: "c_acctbal", As: "a"}}), "a")
	if err != nil {
		return nil, err
	}
	rich := base()
	rich.Filter = exec.And(rich.Filter, exec.Cmp(">", exec.Col(rich.Schema(), "c_acctbal"), exec.ConstFloat(avgBal)))
	o := scan(db, Orders, "o_custkey")
	noOrders := exec.NewJoin(exec.Anti, o, []string{"o_custkey"}, rich, []string{"c_custkey"})
	pre := project(noOrders, []string{"cntrycode", "c_acctbal"},
		[]exec.Expr{exec.Substr(colOf(noOrders, "c_phone"), 1, 2), colOf(noOrders, "c_acctbal")})
	agg := exec.NewAgg(pre, []string{"cntrycode"}, []exec.AggSpec{
		{Func: exec.CountStar, As: "numcust"},
		{Func: exec.Sum, Col: "c_acctbal", As: "totacctbal"},
	})
	return &exec.Sort{Child: agg, Keys: []exec.SortKey{{Col: "cntrycode"}}}, nil
}

// AggMicro is the paper's §6.3 spilling-aggregation microbenchmark:
//
//	select l_orderkey, l_partkey, min(l_shipinstruct), min(l_comment)
//	from lineitem group by l_orderkey, l_partkey
//
// with ~99% unique groups and wide tuples.
func AggMicro(db *DB) exec.Node {
	l := scan(db, Lineitem, "l_orderkey", "l_partkey", "l_shipinstruct", "l_comment")
	return exec.NewAgg(l, []string{"l_orderkey", "l_partkey"}, []exec.AggSpec{
		{Func: exec.Min, Col: "l_shipinstruct", As: "min_instr"},
		{Func: exec.Min, Col: "l_comment", As: "min_comment"},
	})
}

// JoinMicro is the paper's §6.7 spilling-join microbenchmark:
//
//	select l_orderkey, l_shipinstruct, l_comment, ps_comment
//	from lineitem, partsupp
//	where ps_suppkey = l_suppkey and ps_partkey = l_partkey
//
// producing wide (~284 byte) output tuples.
func JoinMicro(db *DB) exec.Node {
	ps := scan(db, PartSupp, "ps_partkey", "ps_suppkey", "ps_comment")
	l := scan(db, Lineitem, "l_orderkey", "l_partkey", "l_suppkey", "l_shipinstruct", "l_comment")
	j := exec.NewJoin(exec.Inner, ps, []string{"ps_suppkey", "ps_partkey"}, l, []string{"l_suppkey", "l_partkey"})
	return project(j, []string{"l_orderkey", "l_shipinstruct", "l_comment", "ps_comment"},
		[]exec.Expr{colOf(j, "l_orderkey"), colOf(j, "l_shipinstruct"), colOf(j, "l_comment"), colOf(j, "ps_comment")})
}
