package tpch

import (
	"fmt"
	"strings"

	"github.com/spilly-db/spilly/internal/colstore"
	"github.com/spilly-db/spilly/internal/data"
	"github.com/spilly-db/spilly/internal/xhash"
)

// CurrentDate is the spec's reference date used to derive return flags and
// line statuses.
var CurrentDate = data.ParseDate("1995-06-17")

var (
	startDate   = data.ParseDate("1992-01-01")
	lastOrder   = data.ParseDate("1998-08-02") // ENDDATE - 151 days
	orderDays   = lastOrder - startDate + 1
)

// stream is a deterministic per-column random stream: values depend only on
// (seed, row), so generation is order-independent and reproducible.
type stream struct{ seed uint64 }

func str(table string, column int) stream {
	return stream{seed: xhash.String(table, 0x7cf) + uint64(column)*0x9e3779b97f4a7c15}
}

func (s stream) u64(row int64) uint64 { return xhash.U64(uint64(row), s.seed) }

// intn returns a uniform value in [lo, hi].
func (s stream) intn(row int64, lo, hi int64) int64 {
	return lo + int64(s.u64(row)%uint64(hi-lo+1))
}

// sub derives an independent sub-stream (for per-row variable-length data).
func (s stream) sub(row int64) stream {
	return stream{seed: s.u64(row) ^ 0xd1b54a32d192ed03}
}

// money returns a uniform cent-precision value in [lo, hi] dollars.
func (s stream) money(row int64, lo, hi int64) float64 {
	cents := s.intn(row, lo*100, hi*100)
	return float64(cents) / 100
}

func (s stream) pick(row int64, words []string) string {
	return words[s.u64(row)%uint64(len(words))]
}

// text produces a comment of n words from the spec vocabulary.
func (s stream) text(row int64, minWords, maxWords int64) string {
	sub := s.sub(row)
	n := s.intn(row, minWords, maxWords)
	var b strings.Builder
	for i := int64(0); i < n; i++ {
		if i > 0 {
			b.WriteByte(' ')
		}
		b.WriteString(sub.pick(i, commentWords))
	}
	return b.String()
}

// vstring produces a pseudo-random alphanumeric string (addresses).
func (s stream) vstring(row int64, minLen, maxLen int64) string {
	const alphabet = "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789 ,"
	sub := s.sub(row)
	n := s.intn(row, minLen, maxLen)
	b := make([]byte, n)
	for i := range b {
		b[i] = alphabet[sub.u64(int64(i))%uint64(len(alphabet))]
	}
	return string(b)
}

// phone renders the spec's phone format with the nation-derived country
// code (Q22 selects on the country-code substring).
func phone(nationkey int64, s stream, row int64) string {
	sub := s.sub(row)
	return fmt.Sprintf("%d-%03d-%03d-%04d", nationkey+10,
		sub.intn(0, 100, 999), sub.intn(1, 100, 999), sub.intn(2, 1000, 9999))
}

// Gen generates TPC-H tables at a given scale factor.
type Gen struct {
	SF float64
	// GroupSize overrides the row-group size (0 = colstore default).
	GroupSize int
}

func (g *Gen) suppliers() int64 { return maxi(int64(g.SF*suppliersPerSF), 10) }
func (g *Gen) customers() int64 { return maxi(int64(g.SF*customersPerSF), 150) }
func (g *Gen) parts() int64     { return maxi(int64(g.SF*partsPerSF), 200) }
func (g *Gen) orders() int64    { return maxi(int64(g.SF*ordersPerSF), 1500) }

func maxi(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// Table generates one table by name.
func (g *Gen) Table(name string) *colstore.MemTable {
	switch name {
	case Region:
		return g.genRegion()
	case Nation:
		return g.genNation()
	case Supplier:
		return g.genSupplier()
	case Customer:
		return g.genCustomer()
	case Part:
		return g.genPart()
	case PartSupp:
		return g.genPartSupp()
	case Orders:
		t, _ := g.genOrdersAndLineitem()
		return t
	case Lineitem:
		_, t := g.genOrdersAndLineitem()
		return t
	default:
		panic(fmt.Sprintf("tpch: unknown table %q", name))
	}
}

// All generates every table. Orders and lineitem are co-generated so the
// derived columns (o_orderstatus, o_totalprice) are consistent.
func (g *Gen) All() map[string]*colstore.MemTable {
	out := map[string]*colstore.MemTable{
		Region:   g.genRegion(),
		Nation:   g.genNation(),
		Supplier: g.genSupplier(),
		Customer: g.genCustomer(),
		Part:     g.genPart(),
		PartSupp: g.genPartSupp(),
	}
	o, l := g.genOrdersAndLineitem()
	out[Orders] = o
	out[Lineitem] = l
	return out
}

func (g *Gen) newTable(name string, rows int64) (*colstore.MemTable, *data.Batch) {
	t := colstore.NewMemTable(name, Schemas[name], g.GroupSize)
	b := data.NewBatch(Schemas[name], int(rows))
	return t, b
}

func (g *Gen) genRegion() *colstore.MemTable {
	t, b := g.newTable(Region, 5)
	s := str(Region, 2)
	for i := int64(0); i < 5; i++ {
		b.Cols[0].I = append(b.Cols[0].I, i)
		b.Cols[1].S = append(b.Cols[1].S, regionNames[i])
		b.Cols[2].S = append(b.Cols[2].S, s.text(i, 5, 15))
	}
	b.SetLen(5)
	t.Append(b)
	return t
}

func (g *Gen) genNation() *colstore.MemTable {
	t, b := g.newTable(Nation, 25)
	s := str(Nation, 3)
	for i, n := range nations {
		b.Cols[0].I = append(b.Cols[0].I, int64(i))
		b.Cols[1].S = append(b.Cols[1].S, n.Name)
		b.Cols[2].I = append(b.Cols[2].I, n.Region)
		b.Cols[3].S = append(b.Cols[3].S, s.text(int64(i), 5, 15))
	}
	b.SetLen(25)
	t.Append(b)
	return t
}

func (g *Gen) genSupplier() *colstore.MemTable {
	n := g.suppliers()
	t, b := g.newTable(Supplier, n)
	var (
		sAddr    = str(Supplier, 2)
		sNation  = str(Supplier, 3)
		sPhone   = str(Supplier, 4)
		sBal     = str(Supplier, 5)
		sComment = str(Supplier, 6)
	)
	for i := int64(0); i < n; i++ {
		key := i + 1
		nationkey := sNation.intn(i, 0, 24)
		comment := sComment.text(i, 8, 18)
		// The spec plants "Customer ... Complaints" in 5 of every 10,000
		// supplier comments (Q16 filters them out).
		if key%2000 == 17 {
			comment = "boldly final Customer deposits sleep Complaints " + comment
		}
		b.Cols[0].I = append(b.Cols[0].I, key)
		b.Cols[1].S = append(b.Cols[1].S, fmt.Sprintf("Supplier#%09d", key))
		b.Cols[2].S = append(b.Cols[2].S, sAddr.vstring(i, 10, 40))
		b.Cols[3].I = append(b.Cols[3].I, nationkey)
		b.Cols[4].S = append(b.Cols[4].S, phone(nationkey, sPhone, i))
		b.Cols[5].F = append(b.Cols[5].F, sBal.money(i, -999, 9999))
		b.Cols[6].S = append(b.Cols[6].S, comment)
	}
	b.SetLen(int(n))
	t.Append(b)
	return t
}

func (g *Gen) genCustomer() *colstore.MemTable {
	n := g.customers()
	t, b := g.newTable(Customer, n)
	var (
		cAddr    = str(Customer, 2)
		cNation  = str(Customer, 3)
		cPhone   = str(Customer, 4)
		cBal     = str(Customer, 5)
		cSeg     = str(Customer, 6)
		cComment = str(Customer, 7)
	)
	for i := int64(0); i < n; i++ {
		key := i + 1
		nationkey := cNation.intn(i, 0, 24)
		b.Cols[0].I = append(b.Cols[0].I, key)
		b.Cols[1].S = append(b.Cols[1].S, fmt.Sprintf("Customer#%09d", key))
		b.Cols[2].S = append(b.Cols[2].S, cAddr.vstring(i, 10, 40))
		b.Cols[3].I = append(b.Cols[3].I, nationkey)
		b.Cols[4].S = append(b.Cols[4].S, phone(nationkey, cPhone, i))
		b.Cols[5].F = append(b.Cols[5].F, cBal.money(i, -999, 9999))
		b.Cols[6].S = append(b.Cols[6].S, cSeg.pick(i, segments))
		b.Cols[7].S = append(b.Cols[7].S, cComment.text(i, 10, 25))
	}
	b.SetLen(int(n))
	t.Append(b)
	return t
}

func (g *Gen) genPart() *colstore.MemTable {
	n := g.parts()
	t, b := g.newTable(Part, n)
	var (
		pName = str(Part, 1)
		pMfgr = str(Part, 2)
		pType = str(Part, 4)
		pSize = str(Part, 5)
		pCont = str(Part, 6)
		pCom  = str(Part, 8)
	)
	for i := int64(0); i < n; i++ {
		key := i + 1
		// P_NAME: 5 distinct color words.
		sub := pName.sub(i)
		var nameParts [5]string
		for j := range nameParts {
			nameParts[j] = colors[sub.intn(int64(j), 0, int64(len(colors)-1))]
		}
		mfgr := pMfgr.intn(i, 1, 5)
		brand := mfgr*10 + pMfgr.intn(i+1<<40, 1, 5)
		tsub := pType.sub(i)
		ptype := tsub.pick(0, typeSyl1) + " " + tsub.pick(1, typeSyl2) + " " + tsub.pick(2, typeSyl3)
		csub := pCont.sub(i)
		container := csub.pick(0, containerSyl1) + " " + csub.pick(1, containerSyl2)
		b.Cols[0].I = append(b.Cols[0].I, key)
		b.Cols[1].S = append(b.Cols[1].S, strings.Join(nameParts[:], " "))
		b.Cols[2].S = append(b.Cols[2].S, fmt.Sprintf("Manufacturer#%d", mfgr))
		b.Cols[3].S = append(b.Cols[3].S, fmt.Sprintf("Brand#%d", brand))
		b.Cols[4].S = append(b.Cols[4].S, ptype)
		b.Cols[5].I = append(b.Cols[5].I, pSize.intn(i, 1, 50))
		b.Cols[6].S = append(b.Cols[6].S, container)
		b.Cols[7].F = append(b.Cols[7].F, retailPrice(key))
		b.Cols[8].S = append(b.Cols[8].S, pCom.text(i, 4, 10))
	}
	b.SetLen(int(n))
	t.Append(b)
	return t
}

// retailPrice is the spec's P_RETAILPRICE formula.
func retailPrice(partkey int64) float64 {
	cents := 90000 + (partkey/10)%20001 + 100*(partkey%1000)
	return float64(cents) / 100
}

// psSuppkey is the spec's part-supplier association: supplier i of part p.
func psSuppkey(partkey, i, suppliers int64) int64 {
	return (partkey+i*(suppliers/suppsPerPart+(partkey-1)/suppliers))%suppliers + 1
}

func (g *Gen) genPartSupp() *colstore.MemTable {
	parts := g.parts()
	suppliers := g.suppliers()
	n := parts * suppsPerPart
	t, b := g.newTable(PartSupp, n)
	var (
		psQty  = str(PartSupp, 2)
		psCost = str(PartSupp, 3)
		psCom  = str(PartSupp, 4)
	)
	for p := int64(1); p <= parts; p++ {
		for i := int64(0); i < suppsPerPart; i++ {
			row := (p-1)*suppsPerPart + i
			b.Cols[0].I = append(b.Cols[0].I, p)
			b.Cols[1].I = append(b.Cols[1].I, psSuppkey(p, i, suppliers))
			b.Cols[2].I = append(b.Cols[2].I, psQty.intn(row, 1, 9999))
			b.Cols[3].F = append(b.Cols[3].F, psCost.money(row, 1, 1000))
			b.Cols[4].S = append(b.Cols[4].S, psCom.text(row, 10, 30))
		}
	}
	b.SetLen(int(n))
	t.Append(b)
	return t
}

// orderKey maps order ordinal (0-based) to the spec's sparse key space:
// 8 keys used per block of 32.
func orderKey(ordinal int64) int64 {
	return ordinal/8*32 + ordinal%8 + 1
}

func (g *Gen) genOrdersAndLineitem() (*colstore.MemTable, *colstore.MemTable) {
	orders := g.orders()
	customers := g.customers()
	parts := g.parts()
	suppliers := g.suppliers()
	clerks := maxi(int64(g.SF*1000), 10)

	ot, ob := g.newTable(Orders, orders)
	lt, lb := g.newTable(Lineitem, orders*4)

	var (
		oCust  = str(Orders, 1)
		oDate  = str(Orders, 4)
		oPrio  = str(Orders, 5)
		oClerk = str(Orders, 6)
		oCom   = str(Orders, 8)

		lCount = str(Lineitem, 100)
		lPart  = str(Lineitem, 1)
		lSupp  = str(Lineitem, 2)
		lQty   = str(Lineitem, 4)
		lDisc  = str(Lineitem, 6)
		lTax   = str(Lineitem, 7)
		lShip  = str(Lineitem, 10)
		lCommit = str(Lineitem, 11)
		lRcpt  = str(Lineitem, 12)
		lInstr = str(Lineitem, 13)
		lMode  = str(Lineitem, 14)
		lCom   = str(Lineitem, 15)
	)

	lineRows := 0
	for o := int64(0); o < orders; o++ {
		okey := orderKey(o)
		// O_CUSTKEY: uniform over customers not divisible by 3 (the spec
		// leaves one third of customers without orders — Q13, Q22).
		ck := oCust.intn(o, 1, customers)
		for ck%3 == 0 {
			ck = (ck % customers) + 1
		}
		odate := startDate + oDate.intn(o, 0, orderDays-1)
		nLines := lCount.intn(o, 1, 7)

		var totalPrice float64
		fCount, oCount := 0, 0
		for ln := int64(0); ln < nLines; ln++ {
			row := o*8 + ln
			pk := lPart.intn(row, 1, parts)
			sk := psSuppkey(pk, lSupp.intn(row, 0, 3), suppliers)
			qty := float64(lQty.intn(row, 1, 50))
			ep := qty * retailPrice(pk)
			disc := float64(lDisc.intn(row, 0, 10)) / 100
			tax := float64(lTax.intn(row, 0, 8)) / 100
			ship := odate + lShip.intn(row, 1, 121)
			commit := odate + lCommit.intn(row, 30, 90)
			rcpt := ship + lRcpt.intn(row, 1, 30)

			retFlag := "N"
			if rcpt <= CurrentDate {
				if lRcpt.u64(row+1<<40)&1 == 0 {
					retFlag = "R"
				} else {
					retFlag = "A"
				}
			}
			status := "O"
			if ship <= CurrentDate {
				status = "F"
				fCount++
			} else {
				oCount++
			}

			lb.Cols[0].I = append(lb.Cols[0].I, okey)
			lb.Cols[1].I = append(lb.Cols[1].I, pk)
			lb.Cols[2].I = append(lb.Cols[2].I, sk)
			lb.Cols[3].I = append(lb.Cols[3].I, ln+1)
			lb.Cols[4].F = append(lb.Cols[4].F, qty)
			lb.Cols[5].F = append(lb.Cols[5].F, ep)
			lb.Cols[6].F = append(lb.Cols[6].F, disc)
			lb.Cols[7].F = append(lb.Cols[7].F, tax)
			lb.Cols[8].S = append(lb.Cols[8].S, retFlag)
			lb.Cols[9].S = append(lb.Cols[9].S, status)
			lb.Cols[10].I = append(lb.Cols[10].I, ship)
			lb.Cols[11].I = append(lb.Cols[11].I, commit)
			lb.Cols[12].I = append(lb.Cols[12].I, rcpt)
			lb.Cols[13].S = append(lb.Cols[13].S, lInstr.pick(row, instructions))
			lb.Cols[14].S = append(lb.Cols[14].S, lMode.pick(row, shipModes))
			lb.Cols[15].S = append(lb.Cols[15].S, lCom.text(row, 4, 9))
			lineRows++

			totalPrice += ep * (1 + tax) * (1 - disc)
		}

		status := "P"
		if oCount == 0 {
			status = "F"
		} else if fCount == 0 {
			status = "O"
		}
		comment := oCom.text(o, 6, 18)
		// Plant the Q13 "special ... requests" pattern in ~1% of orders.
		if oCom.u64(o+1<<41)%100 == 7 {
			comment = comment + " special packages wake requests"
		}

		ob.Cols[0].I = append(ob.Cols[0].I, okey)
		ob.Cols[1].I = append(ob.Cols[1].I, ck)
		ob.Cols[2].S = append(ob.Cols[2].S, status)
		ob.Cols[3].F = append(ob.Cols[3].F, totalPrice)
		ob.Cols[4].I = append(ob.Cols[4].I, odate)
		ob.Cols[5].S = append(ob.Cols[5].S, oPrio.pick(o, priorities))
		ob.Cols[6].S = append(ob.Cols[6].S, fmt.Sprintf("Clerk#%09d", oClerk.intn(o, 1, clerks)))
		ob.Cols[7].I = append(ob.Cols[7].I, 0)
		ob.Cols[8].S = append(ob.Cols[8].S, comment)
	}
	ob.SetLen(int(orders))
	lb.SetLen(lineRows)
	ot.Append(ob)
	lt.Append(lb)
	return ot, lt
}
