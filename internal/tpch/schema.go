// Package tpch implements a deterministic TPC-H data generator (dbgen
// equivalent) and the 22 TPC-H queries as hand-built physical plans against
// the execution engine.
//
// The paper evaluates Spilly end-to-end on TPC-H (§6); this package is the
// substrate those experiments run on. The generator follows the TPC-H
// specification's key distributions, value domains, and derivation rules
// (sparse order keys, the part-supplier association formula, derived order
// status and total price, return flags from the spec's "current date",
// ...). Text columns use the spec's word lists with a simplified grammar;
// the substring patterns the queries select on (%green%, forest%,
// Customer...Complaints, special...requests, %BRASS, ...) are preserved
// with their specified frequencies.
package tpch

import "github.com/spilly-db/spilly/internal/data"

// Table names.
const (
	Region   = "region"
	Nation   = "nation"
	Supplier = "supplier"
	Customer = "customer"
	Part     = "part"
	PartSupp = "partsupp"
	Orders   = "orders"
	Lineitem = "lineitem"
)

// TableNames lists all eight TPC-H tables in generation order.
var TableNames = []string{Region, Nation, Supplier, Customer, Part, PartSupp, Orders, Lineitem}

func col(name string, t data.Type) data.ColumnDef { return data.ColumnDef{Name: name, Type: t} }

// Schemas maps each table to its schema.
var Schemas = map[string]*data.Schema{
	Region: data.NewSchema(
		col("r_regionkey", data.Int64),
		col("r_name", data.String),
		col("r_comment", data.String),
	),
	Nation: data.NewSchema(
		col("n_nationkey", data.Int64),
		col("n_name", data.String),
		col("n_regionkey", data.Int64),
		col("n_comment", data.String),
	),
	Supplier: data.NewSchema(
		col("s_suppkey", data.Int64),
		col("s_name", data.String),
		col("s_address", data.String),
		col("s_nationkey", data.Int64),
		col("s_phone", data.String),
		col("s_acctbal", data.Float64),
		col("s_comment", data.String),
	),
	Customer: data.NewSchema(
		col("c_custkey", data.Int64),
		col("c_name", data.String),
		col("c_address", data.String),
		col("c_nationkey", data.Int64),
		col("c_phone", data.String),
		col("c_acctbal", data.Float64),
		col("c_mktsegment", data.String),
		col("c_comment", data.String),
	),
	Part: data.NewSchema(
		col("p_partkey", data.Int64),
		col("p_name", data.String),
		col("p_mfgr", data.String),
		col("p_brand", data.String),
		col("p_type", data.String),
		col("p_size", data.Int64),
		col("p_container", data.String),
		col("p_retailprice", data.Float64),
		col("p_comment", data.String),
	),
	PartSupp: data.NewSchema(
		col("ps_partkey", data.Int64),
		col("ps_suppkey", data.Int64),
		col("ps_availqty", data.Int64),
		col("ps_supplycost", data.Float64),
		col("ps_comment", data.String),
	),
	Orders: data.NewSchema(
		col("o_orderkey", data.Int64),
		col("o_custkey", data.Int64),
		col("o_orderstatus", data.String),
		col("o_totalprice", data.Float64),
		col("o_orderdate", data.Date),
		col("o_orderpriority", data.String),
		col("o_clerk", data.String),
		col("o_shippriority", data.Int64),
		col("o_comment", data.String),
	),
	Lineitem: data.NewSchema(
		col("l_orderkey", data.Int64),
		col("l_partkey", data.Int64),
		col("l_suppkey", data.Int64),
		col("l_linenumber", data.Int64),
		col("l_quantity", data.Float64),
		col("l_extendedprice", data.Float64),
		col("l_discount", data.Float64),
		col("l_tax", data.Float64),
		col("l_returnflag", data.String),
		col("l_linestatus", data.String),
		col("l_shipdate", data.Date),
		col("l_commitdate", data.Date),
		col("l_receiptdate", data.Date),
		col("l_shipinstruct", data.String),
		col("l_shipmode", data.String),
		col("l_comment", data.String),
	),
}

// Base cardinalities at scale factor 1.
const (
	suppliersPerSF = 10_000
	customersPerSF = 150_000
	partsPerSF     = 200_000
	ordersPerSF    = 1_500_000
	suppsPerPart   = 4
)
