package tpch

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"github.com/spilly-db/spilly/internal/data"
	"github.com/spilly-db/spilly/internal/exec"
)

// writeTblForTest renders a MemTable in dbgen format (mirrors cmd/tpchgen).
func writeTblForTest(t *testing.T, dir, name string) {
	t.Helper()
	g := &Gen{SF: 0.002}
	mt := g.Table(name)
	schema := mt.Schema()
	var out []byte
	for r := 0; r < int(mt.Rows()); r++ {
		for c := 0; c < schema.Len(); c++ {
			col := mt.Column(c)
			switch col.Type {
			case data.Float64:
				out = append(out, fmt.Sprintf("%.2f", col.F[r])...)
			case data.String:
				out = append(out, col.S[r]...)
			case data.Date:
				out = append(out, data.FormatDate(col.I[r])...)
			default:
				out = append(out, fmt.Sprintf("%d", col.I[r])...)
			}
			out = append(out, '|')
		}
		out = append(out, '\n')
	}
	if err := os.WriteFile(filepath.Join(dir, name+".tbl"), out, 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestLoadTblRoundTrip(t *testing.T) {
	dir := t.TempDir()
	for _, name := range []string{Nation, Supplier, Orders} {
		writeTblForTest(t, dir, name)
	}
	db, err := LoadTblDir(dir, 0.002)
	if err != nil {
		t.Fatal(err)
	}
	g := &Gen{SF: 0.002}
	for _, name := range []string{Nation, Supplier, Orders} {
		want := g.Table(name)
		got := db.Tables[name]
		if got.Rows() != want.Rows() {
			t.Fatalf("%s: %d rows, want %d", name, got.Rows(), want.Rows())
		}
	}
	// Spot-check values survive the text round trip.
	orders := db.Tables[Orders].(interface{ Column(int) *data.Column })
	ref := g.Table(Orders)
	for r := 0; r < int(ref.Rows()); r += 37 {
		if orders.Column(0).I[r] != ref.Column(0).I[r] {
			t.Fatalf("row %d orderkey mismatch", r)
		}
		if orders.Column(4).I[r] != ref.Column(4).I[r] {
			t.Fatalf("row %d orderdate mismatch", r)
		}
		d := orders.Column(3).F[r] - ref.Column(3).F[r]
		if d < -0.005 || d > 0.005 {
			t.Fatalf("row %d totalprice %v vs %v", r, orders.Column(3).F[r], ref.Column(3).F[r])
		}
	}
}

func TestLoadTblErrors(t *testing.T) {
	dir := t.TempDir()
	if _, err := LoadTbl(filepath.Join(dir, "nope.tbl"), Nation); err == nil {
		t.Fatal("missing file accepted")
	}
	if _, err := LoadTbl(filepath.Join(dir, "x.tbl"), "sometable"); err == nil {
		t.Fatal("unknown table accepted")
	}
	bad := filepath.Join(dir, "nation.tbl")
	os.WriteFile(bad, []byte("1|ALGERIA|0|\n"), 0o644) // too few fields
	if _, err := LoadTbl(bad, Nation); err == nil {
		t.Fatal("short row accepted")
	}
	os.WriteFile(bad, []byte("x|ALGERIA|0|comment|\n"), 0o644)
	if _, err := LoadTbl(bad, Nation); err == nil {
		t.Fatal("non-integer key accepted")
	}
	orders := filepath.Join(dir, "orders.tbl")
	os.WriteFile(orders, []byte("1|1|O|10.00|not-a-date|1-URGENT|Clerk#1|0|c|\n"), 0o644)
	if _, err := LoadTbl(orders, Orders); err == nil {
		t.Fatal("malformed date accepted")
	}
	if _, err := LoadTblDir(filepath.Join(dir, "empty"), 1); err == nil {
		t.Fatal("empty dir accepted")
	}
}

func TestLoadedTablesRunQueries(t *testing.T) {
	dir := t.TempDir()
	for _, name := range TableNames {
		writeTblForTest(t, dir, name)
	}
	db, err := LoadTblDir(dir, 0.002)
	if err != nil {
		t.Fatal(err)
	}
	ctx := memCtx()
	node, err := BuildQuery(ctx, db, 1)
	if err != nil {
		t.Fatal(err)
	}
	out, err := exec.Collect(ctx, node)
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() == 0 {
		t.Fatal("Q1 over loaded .tbl data returned nothing")
	}
}
