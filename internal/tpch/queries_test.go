package tpch

import (
	"fmt"
	"math"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/spilly-db/spilly/internal/colstore"
	"github.com/spilly-db/spilly/internal/core"
	"github.com/spilly-db/spilly/internal/data"
	"github.com/spilly-db/spilly/internal/exec"
	"github.com/spilly-db/spilly/internal/nvmesim"
	"github.com/spilly-db/spilly/internal/pages"
)

var (
	dbOnce sync.Once
	testDB *DB
)

// sharedDB is a small in-memory database shared across tests.
func sharedDB() *DB {
	dbOnce.Do(func() { testDB = NewMemDB(0.01) })
	return testDB
}

func memCtx() *exec.Ctx { return &exec.Ctx{Workers: 2, Stats: &exec.Stats{}} }

func spillingCtx() *exec.Ctx {
	arr := nvmesim.New(2, nvmesim.DeviceSpec{
		ReadBandwidth:  4e9,
		WriteBandwidth: 2e9,
		Latency:        20 * time.Microsecond,
	}, nvmesim.RealClock{})
	return &exec.Ctx{
		Workers:     2,
		Budget:      pages.NewBudget(512 << 10),
		PageSize:    16 << 10,
		Partitions:  16,
		PartitionAt: 0.4,
		Spill:       &core.SpillConfig{Array: arr, Compress: true},
		Stats:       &exec.Stats{},
	}
}

func runQuery(t *testing.T, ctx *exec.Ctx, q int) *data.Batch {
	t.Helper()
	node, err := BuildQuery(ctx, sharedDB(), q)
	if err != nil {
		t.Fatalf("Q%d build: %v", q, err)
	}
	out, err := exec.Collect(ctx, node)
	if err != nil {
		t.Fatalf("Q%d run: %v", q, err)
	}
	return out
}

// rowStrings renders a batch into canonical row strings (floats rounded to
// tolerate summation-order differences across configurations).
func rowStrings(b *data.Batch) []string {
	out := make([]string, b.Len())
	for r := 0; r < b.Len(); r++ {
		var sb strings.Builder
		for c := range b.Cols {
			col := &b.Cols[c]
			if col.Null != nil && col.Null[r] {
				sb.WriteString("|NULL")
				continue
			}
			switch col.Type {
			case data.Float64:
				fmt.Fprintf(&sb, "|%.4f", col.F[r])
			case data.String:
				sb.WriteString("|" + col.S[r])
			default:
				fmt.Fprintf(&sb, "|%d", col.I[r])
			}
		}
		out[r] = sb.String()
	}
	return out
}

func TestAllQueriesRun(t *testing.T) {
	for q := 1; q <= NumQueries; q++ {
		out := runQuery(t, memCtx(), q)
		// Q18's sum(l_quantity) > 300 predicate legitimately matches no
		// order at tiny scale factors; TestQ18AgainstReference checks it.
		if out.Len() == 0 && q != 18 {
			t.Errorf("Q%d returned no rows at SF 0.01", q)
		}
	}
}

func TestQ18AgainstReference(t *testing.T) {
	db := sharedDB()
	li := db.T(Lineitem).(*colstore.MemTable)
	sums := map[int64]float64{}
	lok, qty := colI(li, "l_orderkey"), colF(li, "l_quantity")
	for r := range lok {
		sums[lok[r]] += qty[r]
	}
	want := 0
	for _, s := range sums {
		if s > 300 {
			want++
		}
	}
	out := runQuery(t, memCtx(), 18)
	if out.Len() != want {
		t.Fatalf("Q18 rows = %d, want %d", out.Len(), want)
	}
}

// TestQueriesSpillEquivalence is the paper's core correctness claim made a
// test: unified operators return identical results whether they stay in
// memory or partition, spill, and read back.
func TestQueriesSpillEquivalence(t *testing.T) {
	for q := 1; q <= NumQueries; q++ {
		ref := rowStrings(runQuery(t, memCtx(), q))
		got := rowStrings(runQuery(t, spillingCtx(), q))
		if len(ref) != len(got) {
			t.Errorf("Q%d: %d rows spilling vs %d in memory", q, len(got), len(ref))
			continue
		}
		for i := range ref {
			if ref[i] != got[i] {
				t.Errorf("Q%d row %d differs:\n  mem:   %s\n  spill: %s", q, i, ref[i], got[i])
				break
			}
		}
	}
}

func TestQueriesGraceEquivalence(t *testing.T) {
	// The grace-join + no-preagg baseline (Figure 2's "partitioning"
	// system) must return identical results on join/agg-heavy queries.
	for _, q := range []int{3, 5, 9, 13, 18, 21} {
		ref := rowStrings(runQuery(t, memCtx(), q))
		ctx := memCtx()
		ctx.ForceGrace = true
		ctx.NoPreAgg = true
		got := rowStrings(runQuery(t, ctx, q))
		if len(ref) != len(got) {
			t.Fatalf("Q%d: row count differs under grace baseline", q)
		}
		for i := range ref {
			if ref[i] != got[i] {
				t.Fatalf("Q%d row %d differs under grace baseline", q, i)
			}
		}
	}
}

func TestQueriesAlwaysPartitionEquivalence(t *testing.T) {
	for _, q := range []int{1, 3, 5, 9, 13, 18} {
		ref := rowStrings(runQuery(t, memCtx(), q))
		ctx := memCtx()
		ctx.Mode = core.ModeAlwaysPartition
		got := rowStrings(runQuery(t, ctx, q))
		if len(ref) != len(got) {
			t.Fatalf("Q%d: row count differs under always-partition", q)
		}
		for i := range ref {
			if ref[i] != got[i] {
				t.Fatalf("Q%d row %d differs under always-partition", q, i)
			}
		}
	}
}

// TestQueriesReadbackEquivalence pins the phase-2 overlap contract: the
// pipelined partition scheduler must return exactly what the blocking
// readback baseline returns on every query, spilling or not — prefetching,
// shrinking lookahead under budget pressure, and streaming pages into
// build/probe may change timing, never rows.
func TestQueriesReadbackEquivalence(t *testing.T) {
	anySpilled := false
	for q := 1; q <= NumQueries; q++ {
		blockCtx := spillingCtx()
		blockCtx.BlockingSpillRead = true
		ref := rowStrings(runQuery(t, blockCtx, q))

		pipeCtx := spillingCtx()
		got := rowStrings(runQuery(t, pipeCtx, q))
		if pipeCtx.Stats.SpillReadBytes.Load() > 0 {
			anySpilled = true
		}

		if len(ref) != len(got) {
			t.Errorf("Q%d: %d rows pipelined vs %d blocking", q, len(got), len(ref))
			continue
		}
		for i := range ref {
			if ref[i] != got[i] {
				t.Errorf("Q%d row %d differs:\n  blocking:  %s\n  pipelined: %s", q, i, ref[i], got[i])
				break
			}
		}
	}
	if !anySpilled {
		t.Error("no query read back spilled pages; the comparison never exercised the scheduler")
	}
}

// --- independent reference implementations (direct loops over columns) ---

func colF(t *colstore.MemTable, name string) []float64 {
	return t.Column(Schemas[t.Name()].MustIndex(name)).F
}
func colI(t *colstore.MemTable, name string) []int64 {
	return t.Column(Schemas[t.Name()].MustIndex(name)).I
}
func colS(t *colstore.MemTable, name string) []string {
	return t.Column(Schemas[t.Name()].MustIndex(name)).S
}

func TestQ1AgainstReference(t *testing.T) {
	db := sharedDB()
	li := db.T(Lineitem).(*colstore.MemTable)
	cutoff := data.ParseDate("1998-09-02")
	type acc struct {
		qty, price, disc, discPrice, charge float64
		n                                   int64
	}
	ref := map[string]*acc{}
	ship := colI(li, "l_shipdate")
	rf, ls := colS(li, "l_returnflag"), colS(li, "l_linestatus")
	qty, ep, dc, tax := colF(li, "l_quantity"), colF(li, "l_extendedprice"), colF(li, "l_discount"), colF(li, "l_tax")
	for r := range ship {
		if ship[r] > cutoff {
			continue
		}
		k := rf[r] + "|" + ls[r]
		a := ref[k]
		if a == nil {
			a = &acc{}
			ref[k] = a
		}
		a.qty += qty[r]
		a.price += ep[r]
		a.disc += dc[r]
		dp := ep[r] * (1 - dc[r])
		a.discPrice += dp
		a.charge += dp * (1 + tax[r])
		a.n++
	}
	out := runQuery(t, memCtx(), 1)
	if out.Len() != len(ref) {
		t.Fatalf("Q1 groups = %d, want %d", out.Len(), len(ref))
	}
	s := out.Schema
	for r := 0; r < out.Len(); r++ {
		k := out.Cols[s.MustIndex("l_returnflag")].S[r] + "|" + out.Cols[s.MustIndex("l_linestatus")].S[r]
		a := ref[k]
		if a == nil {
			t.Fatalf("Q1 unexpected group %s", k)
		}
		checks := []struct {
			col  string
			want float64
		}{
			{"sum_qty", a.qty},
			{"sum_base_price", a.price},
			{"sum_disc_price", a.discPrice},
			{"sum_charge", a.charge},
			{"avg_qty", a.qty / float64(a.n)},
			{"avg_price", a.price / float64(a.n)},
			{"avg_disc", a.disc / float64(a.n)},
		}
		for _, c := range checks {
			got := out.Cols[s.MustIndex(c.col)].F[r]
			if math.Abs(got-c.want) > 1e-6*(math.Abs(c.want)+1) {
				t.Fatalf("Q1 %s group %s = %v, want %v", c.col, k, got, c.want)
			}
		}
		if out.Cols[s.MustIndex("count_order")].I[r] != a.n {
			t.Fatalf("Q1 count group %s wrong", k)
		}
	}
}

func TestQ6AgainstReference(t *testing.T) {
	db := sharedDB()
	li := db.T(Lineitem).(*colstore.MemTable)
	lo, hi := data.ParseDate("1994-01-01"), data.ParseDate("1995-01-01")
	ship := colI(li, "l_shipdate")
	qty, ep, dc := colF(li, "l_quantity"), colF(li, "l_extendedprice"), colF(li, "l_discount")
	var want float64
	for r := range ship {
		if ship[r] >= lo && ship[r] < hi && dc[r] >= 0.0499 && dc[r] <= 0.0701 && qty[r] < 24 {
			want += ep[r] * dc[r]
		}
	}
	out := runQuery(t, memCtx(), 6)
	if out.Len() != 1 {
		t.Fatalf("Q6 rows = %d", out.Len())
	}
	got := out.Cols[0].F[0]
	if math.Abs(got-want) > 1e-6*(want+1) {
		t.Fatalf("Q6 = %v, want %v", got, want)
	}
}

func TestQ4AgainstReference(t *testing.T) {
	db := sharedDB()
	li := db.T(Lineitem).(*colstore.MemTable)
	okTbl := db.T(Orders).(*colstore.MemTable)
	hasLate := map[int64]bool{}
	lok, commit, rcpt := colI(li, "l_orderkey"), colI(li, "l_commitdate"), colI(li, "l_receiptdate")
	for r := range lok {
		if commit[r] < rcpt[r] {
			hasLate[lok[r]] = true
		}
	}
	lo, hi := data.ParseDate("1993-07-01"), data.ParseDate("1993-10-01")
	ook, odate, oprio := colI(okTbl, "o_orderkey"), colI(okTbl, "o_orderdate"), colS(okTbl, "o_orderpriority")
	want := map[string]int64{}
	for r := range ook {
		if odate[r] >= lo && odate[r] < hi && hasLate[ook[r]] {
			want[oprio[r]]++
		}
	}
	out := runQuery(t, memCtx(), 4)
	if out.Len() != len(want) {
		t.Fatalf("Q4 groups = %d, want %d", out.Len(), len(want))
	}
	for r := 0; r < out.Len(); r++ {
		prio := out.Cols[0].S[r]
		if out.Cols[1].I[r] != want[prio] {
			t.Fatalf("Q4 %s = %d, want %d", prio, out.Cols[1].I[r], want[prio])
		}
	}
}

func TestQ13AgainstReference(t *testing.T) {
	db := sharedDB()
	orders := db.T(Orders).(*colstore.MemTable)
	cust := db.T(Customer).(*colstore.MemTable)
	counts := map[int64]int64{}
	ocust, ocom := colI(orders, "o_custkey"), colS(orders, "o_comment")
	for r := range ocust {
		if i := strings.Index(ocom[r], "special"); i >= 0 && strings.Contains(ocom[r][i+7:], "requests") {
			continue
		}
		counts[ocust[r]]++
	}
	dist := map[int64]int64{}
	for _, ck := range colI(cust, "c_custkey") {
		dist[counts[ck]]++
	}
	out := runQuery(t, memCtx(), 13)
	if out.Len() != len(dist) {
		t.Fatalf("Q13 groups = %d, want %d", out.Len(), len(dist))
	}
	for r := 0; r < out.Len(); r++ {
		cc := out.Cols[0].I[r]
		if out.Cols[1].I[r] != dist[cc] {
			t.Fatalf("Q13 c_count %d: custdist %d, want %d", cc, out.Cols[1].I[r], dist[cc])
		}
	}
}

func TestQ14AgainstReference(t *testing.T) {
	db := sharedDB()
	li := db.T(Lineitem).(*colstore.MemTable)
	part := db.T(Part).(*colstore.MemTable)
	ptype := map[int64]string{}
	pk, pt := colI(part, "p_partkey"), colS(part, "p_type")
	for r := range pk {
		ptype[pk[r]] = pt[r]
	}
	lo, hi := data.ParseDate("1995-09-01"), data.ParseDate("1995-10-01")
	lpk, ship := colI(li, "l_partkey"), colI(li, "l_shipdate")
	ep, dc := colF(li, "l_extendedprice"), colF(li, "l_discount")
	var promo, total float64
	for r := range lpk {
		if ship[r] < lo || ship[r] >= hi {
			continue
		}
		rev := ep[r] * (1 - dc[r])
		total += rev
		if strings.HasPrefix(ptype[lpk[r]], "PROMO") {
			promo += rev
		}
	}
	want := 100 * promo / total
	out := runQuery(t, memCtx(), 14)
	got := out.Cols[0].F[0]
	if math.Abs(got-want) > 1e-6*(math.Abs(want)+1) {
		t.Fatalf("Q14 = %v, want %v", got, want)
	}
}

func TestQ22AgainstReference(t *testing.T) {
	db := sharedDB()
	cust := db.T(Customer).(*colstore.MemTable)
	orders := db.T(Orders).(*colstore.MemTable)
	codes := map[string]bool{"13": true, "31": true, "23": true, "29": true, "30": true, "18": true, "17": true}
	phones, bals, keys := colS(cust, "c_phone"), colF(cust, "c_acctbal"), colI(cust, "c_custkey")
	var sum float64
	var n int64
	for r := range phones {
		if codes[phones[r][:2]] && bals[r] > 0 {
			sum += bals[r]
			n++
		}
	}
	avg := sum / float64(n)
	hasOrder := map[int64]bool{}
	for _, ck := range colI(orders, "o_custkey") {
		hasOrder[ck] = true
	}
	type acc struct {
		n   int64
		bal float64
	}
	want := map[string]*acc{}
	for r := range phones {
		cc := phones[r][:2]
		if codes[cc] && bals[r] > avg && !hasOrder[keys[r]] {
			a := want[cc]
			if a == nil {
				a = &acc{}
				want[cc] = a
			}
			a.n++
			a.bal += bals[r]
		}
	}
	out := runQuery(t, memCtx(), 22)
	if out.Len() != len(want) {
		t.Fatalf("Q22 groups = %d, want %d", out.Len(), len(want))
	}
	for r := 0; r < out.Len(); r++ {
		cc := out.Cols[0].S[r]
		a := want[cc]
		if a == nil || out.Cols[1].I[r] != a.n {
			t.Fatalf("Q22 %s: numcust %d, want %+v", cc, out.Cols[1].I[r], a)
		}
		if math.Abs(out.Cols[2].F[r]-a.bal) > 1e-6*(a.bal+1) {
			t.Fatalf("Q22 %s: totacctbal wrong", cc)
		}
	}
}

func TestMicrobenchmarks(t *testing.T) {
	db := sharedDB()
	li := db.T(Lineitem)
	for _, tc := range []struct {
		name string
		node exec.Node
	}{
		{"agg", AggMicro(db)},
		{"join", JoinMicro(db)},
	} {
		out, err := exec.Collect(memCtx(), tc.node)
		if err != nil {
			t.Fatalf("%s micro: %v", tc.name, err)
		}
		if tc.name == "join" && int64(out.Len()) != li.Rows() {
			// Every lineitem row matches exactly one partsupp row.
			t.Fatalf("join micro rows = %d, want %d", out.Len(), li.Rows())
		}
		if tc.name == "agg" && int64(out.Len()) > li.Rows() {
			t.Fatalf("agg micro rows = %d > input", out.Len())
		}
	}
}

func TestMicrobenchmarksSpillEquivalence(t *testing.T) {
	db := sharedDB()
	for _, build := range []func(*DB) exec.Node{AggMicro, JoinMicro} {
		ref, err := exec.Collect(memCtx(), build(db))
		if err != nil {
			t.Fatal(err)
		}
		got, err := exec.Collect(spillingCtx(), build(db))
		if err != nil {
			t.Fatal(err)
		}
		refSet := map[string]int{}
		for _, s := range rowStrings(ref) {
			refSet[s]++
		}
		for _, s := range rowStrings(got) {
			refSet[s]--
		}
		for s, n := range refSet {
			if n != 0 {
				t.Fatalf("micro results differ (%+d of %s)", n, s)
			}
		}
	}
}
