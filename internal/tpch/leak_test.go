package tpch

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"github.com/spilly-db/spilly/internal/core"
	"github.com/spilly-db/spilly/internal/exec"
	"github.com/spilly-db/spilly/internal/nvmesim"
	"github.com/spilly-db/spilly/internal/pages"
)

// budgetedMemCtx is an in-memory context with a budget big enough that
// nothing partitions — every reservation must still be returned.
func budgetedMemCtx() *exec.Ctx {
	return &exec.Ctx{
		Workers: 2,
		Budget:  pages.NewBudget(1 << 30),
		Stats:   &exec.Stats{},
	}
}

// leakSpillCtx mirrors spillingCtx but keeps its own array per query so
// budget accounting is not shared across subtests.
func leakSpillCtx() *exec.Ctx {
	arr := nvmesim.New(2, nvmesim.DeviceSpec{
		ReadBandwidth:  4e9,
		WriteBandwidth: 2e9,
		Latency:        20 * time.Microsecond,
	}, nvmesim.RealClock{})
	return &exec.Ctx{
		Workers:     2,
		Budget:      pages.NewBudget(512 << 10),
		PageSize:    16 << 10,
		Partitions:  16,
		PartitionAt: 0.4,
		Spill:       &core.SpillConfig{Array: arr, Lease: arr.NewLease(), Compress: true},
		Stats:       &exec.Stats{},
	}
}

// TestNoBudgetLeaks runs every TPC-H query in-memory and under forced
// spilling and asserts that, once the query finishes and the context's
// cleanups run, (a) every page-budget reservation has been returned and
// (b) every pooled batch lease was released. A nonzero residue here is
// exactly the class of silent leak the Reserve/Release audit exists to
// catch: a materialized result, extsort run, or free-list page whose
// reservation outlived the query.
func TestNoBudgetLeaks(t *testing.T) {
	if testing.Short() {
		t.Skip("runs all 22 queries twice")
	}
	modes := []struct {
		name string
		ctx  func() *exec.Ctx
	}{
		{"inmem", budgetedMemCtx},
		{"spill", leakSpillCtx},
	}
	for _, m := range modes {
		for q := 1; q <= NumQueries; q++ {
			t.Run(fmt.Sprintf("%s/Q%d", m.name, q), func(t *testing.T) {
				ctx := m.ctx()
				var arr *nvmesim.Array
				if ctx.Spill != nil {
					arr = ctx.Spill.Array
				}
				out := runQuery(t, ctx, q)
				if out == nil {
					t.Fatal("nil result")
				}
				ctx.Close()
				if used := ctx.Budget.Used(); used != 0 {
					t.Errorf("budget leak: %d bytes still reserved after Close", used)
				}
				if gets, puts := ctx.PoolCounters(); gets != puts {
					t.Errorf("batch pool imbalance: %d gets vs %d puts", gets, puts)
				}
				if arr != nil {
					if n := arr.LiveExtents(); n != 0 {
						t.Errorf("spill extent leak: %d extents live after Close", n)
					}
					if n := arr.Leases(); n != 0 {
						t.Errorf("lease leak: %d leases live after Close", n)
					}
				}
			})
		}
	}
}

// TestCorruptionBeyondRepairNoLeak forces an unrecoverable spill-read
// failure — every read of the single spill device flips a bit, so parity
// reconstruction reads corrupt survivors and re-verification fails — and
// asserts the failing query still returns every budget reservation and
// every pooled batch. Error paths through the readback scheduler are where
// spill buffers historically leaked.
func TestCorruptionBeyondRepairNoLeak(t *testing.T) {
	arr := nvmesim.New(1, nvmesim.DeviceSpec{
		ReadBandwidth:  4e9,
		WriteBandwidth: 2e9,
		Latency:        20 * time.Microsecond,
	}, nvmesim.RealClock{})
	ctx := &exec.Ctx{
		Workers:     2,
		Budget:      pages.NewBudget(128 << 10), // tight enough that Q9 must spill
		PageSize:    16 << 10,
		Partitions:  16,
		PartitionAt: 0.4,
		Spill:       &core.SpillConfig{Array: arr, Lease: arr.NewLease(), Compress: true, Parity: 2},
		Stats:       &exec.Stats{},
	}
	node, err := BuildQuery(ctx, sharedDB(), 9)
	if err != nil {
		t.Fatal(err)
	}
	arr.SetFaultPlan(0, nvmesim.FaultPlan{Seed: 5, CorruptRate: 1.0})
	_, err = exec.Collect(ctx, node)
	if err == nil {
		t.Fatal("query succeeded with unhealable corruption on its only spill device")
	}
	var qe *core.QueryError
	if !errors.As(err, &qe) {
		t.Fatalf("err = %v (%T), want *core.QueryError", err, err)
	}
	if qe.Op != "spill-read" || qe.Device != 0 || qe.Part < 0 {
		t.Fatalf("QueryError misses context: %+v", qe)
	}
	ctx.Close()
	if used := ctx.Budget.Used(); used != 0 {
		t.Errorf("budget leak: %d bytes still reserved after failed query", used)
	}
	if gets, puts := ctx.PoolCounters(); gets != puts {
		t.Errorf("batch pool imbalance: %d gets vs %d puts", gets, puts)
	}
	if ctx.Stats.SpillChecksumErrors.Load() == 0 {
		t.Error("no checksum errors recorded; corruption was not the failure cause")
	}
	if n := arr.LiveExtents(); n != 0 {
		t.Errorf("spill extent leak on error path: %d extents live after Close", n)
	}
}
