package core

import (
	"bytes"
	"testing"
	"time"

	"github.com/spilly-db/spilly/internal/codec"
	"github.com/spilly-db/spilly/internal/uring"
)

// regPage is a mildly compressible 8 KiB page (small random alphabet):
// compression shrinks it somewhat at every scale level, but never enough to
// erase a strong I/O bottleneck — so escalation pressure persists.
var regPage = func() []byte {
	p := make([]byte, 8192)
	state := uint64(0x9e3779b97f4a7c15)
	for i := range p {
		state = state*6364136223846793005 + 1442695040888963407
		p[i] = byte(state>>59) & 31
	}
	return p
}()

// feedRun pushes one full measurement run with the given synthetic costs.
func feedRun(r *Regulator, opNsPerByte, ioNsPerByte float64) {
	page := regPage
	for i := 0; i < r.runN; i++ {
		r.ObserveOperator(time.Duration(opNsPerByte*float64(len(page))), len(page))
		out, _ := r.CompressPage(page)
		r.ObserveIO(uring.Completion{
			N:       len(out),
			Latency: time.Duration(ioNsPerByte * float64(len(out))),
		}, 1)
	}
}

func TestRegulatorStartsUncompressed(t *testing.T) {
	r := NewRegulator(nil, 4)
	if r.Scheme() != codec.None {
		t.Fatalf("initial scheme = %v, want None", r.Scheme())
	}
}

func TestRegulatorStepsUpWhenIOBound(t *testing.T) {
	r := NewRegulator(nil, 4)
	// I/O is vastly more expensive than CPU: compression should escalate.
	for i := 0; i < 20; i++ {
		feedRun(r, 0.01, 50.0)
	}
	if r.Level() < 3 {
		t.Fatalf("I/O-bound workload only reached level %d (scheme %d)", r.Level(), r.Scheme())
	}
}

func TestRegulatorStaysOffWhenCPUBound(t *testing.T) {
	r := NewRegulator(nil, 4)
	// CPU dominates: the regulator must stay uncompressed.
	for i := 0; i < 20; i++ {
		feedRun(r, 5.0, 0.01)
	}
	if r.Level() != 0 {
		t.Fatalf("CPU-bound workload escalated to level %d", r.Level())
	}
}

func TestRegulatorComesBackDown(t *testing.T) {
	r := NewRegulator(nil, 4)
	for i := 0; i < 20; i++ {
		feedRun(r, 0.01, 50.0)
	}
	up := r.Level()
	if up == 0 {
		t.Fatal("setup failed: regulator never went up")
	}
	// The I/O bottleneck disappears (e.g. more SSDs): back toward raw.
	for i := 0; i < 40; i++ {
		feedRun(r, 0.05, 0.001)
	}
	if r.Level() != 0 {
		t.Fatalf("regulator stuck at level %d after I/O became cheap", r.Level())
	}
}

func TestRegulatorEquilibriumStable(t *testing.T) {
	// Long runs average out wall-clock measurement noise on the real
	// compression timings.
	r := NewRegulator(nil, 16)
	for i := 0; i < 10; i++ {
		feedRun(r, 0.5, 1.0)
	}
	// Under steady conditions the regulator settles at the equilibrium
	// point. Dithering between adjacent levels IS the equilibrium
	// (effective I/O and CPU bandwidth alternate dominance); what must
	// not happen is wandering across the scale.
	minL, maxL := r.Level(), r.Level()
	for i := 0; i < 30; i++ {
		feedRun(r, 0.5, 1.0)
		if l := r.Level(); l < minL {
			minL = l
		} else if l > maxL {
			maxL = l
		}
	}
	if maxL-minL > 2 {
		t.Fatalf("regulator wandered across levels %d..%d under steady conditions", minL, maxL)
	}
}

func TestRegulatorHoldsWithoutIO(t *testing.T) {
	r := NewRegulator(nil, 4)
	for i := 0; i < 20; i++ {
		feedRun(r, 0.01, 50.0)
	}
	if r.Level() == 0 {
		t.Fatal("setup failed: regulator never went up")
	}
	page := bytes.Repeat([]byte{1, 2, 3, 4}, 2048)
	// Flush the measurement run that still carries I/O observations from
	// the setup phase.
	for i := 0; i < r.runN; i++ {
		r.CompressPage(page)
	}
	level := r.Level()
	// Pages flow but no I/O completions are observed (bursty spilling with
	// writes still in flight): the regulator must hold its setting rather
	// than drift — moving blind would fight the burst pattern.
	for i := 0; i < 20*r.runN; i++ {
		r.CompressPage(page)
	}
	if r.Level() != level {
		t.Fatalf("level moved from %d to %d without any observed I/O", level, r.Level())
	}
}

func TestRegulatorRoundTripsAllSchemes(t *testing.T) {
	r := NewRegulator(nil, 1)
	page := bytes.Repeat([]byte("spill data spill data "), 100)
	for li := range r.scale {
		r.level = li
		out, id := r.CompressPage(page)
		if id != r.scale[li] {
			t.Fatalf("scheme mismatch at level %d", li)
		}
		if id == codec.None {
			if !bytes.Equal(out, page) {
				t.Fatal("None scheme modified data")
			}
			continue
		}
		dec, err := codec.ByID(id).Decompress(nil, out)
		if err != nil || !bytes.Equal(dec, page) {
			t.Fatalf("scheme %v round trip failed: %v", id, err)
		}
	}
}

func TestRegulatorHistogram(t *testing.T) {
	r := NewRegulator(nil, 4)
	page := bytes.Repeat([]byte("x y z "), 100)
	for i := 0; i < 8; i++ {
		r.CompressPage(page)
	}
	h := r.SchemeHistogram()
	var total int64
	for _, n := range h {
		total += n
	}
	if total != 8 {
		t.Fatalf("histogram total %d, want 8", total)
	}
}

func TestRegulatorIgnoresFailedIO(t *testing.T) {
	r := NewRegulator(nil, 2)
	r.ObserveIO(uring.Completion{Err: codec.ErrCorrupt, N: 100, Latency: time.Hour}, 1)
	if r.ioBytes != 0 {
		t.Fatal("failed completion counted toward I/O cost")
	}
}

func TestMergeHistograms(t *testing.T) {
	a := map[codec.ID]int64{codec.None: 2, codec.LZ4Default: 1}
	b := map[codec.ID]int64{codec.None: 3}
	m := MergeHistograms(a, b)
	if m[codec.None] != 5 || m[codec.LZ4Default] != 1 {
		t.Fatalf("merge wrong: %v", m)
	}
}

func TestDefaultScaleRatioTrend(t *testing.T) {
	// "More compression" along the scale must be broadly true for the
	// equilibrium search to be meaningful. Exact monotonicity is data
	// dependent (e.g. LZ4's match encoding can beat deflate-1 on highly
	// repetitive pages), so allow small per-step regressions but require
	// the overall trend: each step shrinks or regresses < 15%, and the
	// deepest setting clearly beats the shallowest.
	page := regPage
	sizes := make([]int, len(DefaultScale))
	for i, id := range DefaultScale {
		sizes[i] = len(page)
		if id != codec.None {
			sizes[i] = len(codec.ByID(id).Compress(nil, page))
		}
	}
	for i := 1; i < len(sizes); i++ {
		if float64(sizes[i]) > 1.15*float64(sizes[i-1]) {
			t.Fatalf("scale step %d (%v): %d is >15%% worse than %d", i, DefaultScale[i], sizes[i], sizes[i-1])
		}
	}
	if float64(sizes[len(sizes)-1]) > 0.8*float64(sizes[1]) {
		t.Fatalf("deepest setting (%d bytes) not clearly better than shallowest (%d bytes)", sizes[len(sizes)-1], sizes[1])
	}
}
