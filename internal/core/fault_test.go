package core

import (
	"context"
	"errors"
	"testing"

	"github.com/spilly-db/spilly/internal/nvmesim"
	"github.com/spilly-db/spilly/internal/pages"
)

// spillConfig is the common spilling setup for fault tests: a tight budget
// so every test actually pushes pages through the writer.
func spillConfig(arr *nvmesim.Array, ctx context.Context) Config {
	return Config{
		Ctx: ctx, PageSize: 4096, Partitions: 8,
		Budget: pages.NewBudget(32 << 10), PartitionAt: 0.3,
		Spill: &SpillConfig{Array: arr},
	}
}

// assertWriterClean checks the buffer-reclamation invariant: after Finish —
// on any path — the writer tracks no in-flight buffers and holds no staging
// areas.
func assertWriterClean(t *testing.T, b *Buffer) {
	t.Helper()
	if b.writer == nil {
		t.Fatal("test did not spill")
	}
	if n := len(b.writer.inflight); n != 0 {
		t.Fatalf("%d in-flight writes still tracked after Finish", n)
	}
	for part, st := range b.writer.staging {
		if st != nil {
			t.Fatalf("staging area for partition %d leaked", part)
		}
	}
}

func TestSpillTransientWriteRetrySucceeds(t *testing.T) {
	arr := fastArray(2)
	// Every device: fail the first two writes transiently. The retry path
	// must recover and the spilled data must read back exactly.
	for dev := 0; dev < 2; dev++ {
		arr.SetFaultPlan(dev, nvmesim.FaultPlan{
			Script: map[int64]nvmesim.FaultKind{1: nvmesim.FaultTransient},
		})
	}
	s := NewShared(spillConfig(arr, nil))
	b := s.NewBuffer()
	const n = 20000
	storeN(b, n, 32, 0)
	if err := b.Finish(); err != nil {
		t.Fatalf("transient write errors were not recovered: %v", err)
	}
	res, err := s.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	if !res.HasSpilled() {
		t.Fatal("did not spill")
	}
	if res.SpillRetries == 0 {
		t.Fatal("no retries counted despite scripted transient faults")
	}
	assertWriterClean(t, b)
	checkAllKeys(t, collectKeys(t, arr, 4096, res), n, 0)
}

func TestSpillFailoverFromDyingDevice(t *testing.T) {
	arr := fastArray(2)
	// Device 0 dies on its very first request: the failed write must be
	// re-striped onto device 1 and nothing is lost (no data ever landed
	// on device 0).
	arr.SetFaultPlan(0, nvmesim.FaultPlan{
		Script: map[int64]nvmesim.FaultKind{1: nvmesim.FaultDeath},
	})
	s := NewShared(spillConfig(arr, nil))
	b := s.NewBuffer()
	const n = 20000
	storeN(b, n, 32, 0)
	if err := b.Finish(); err != nil {
		t.Fatalf("device death was not failed over: %v", err)
	}
	res, err := s.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	if res.SpillFailovers == 0 {
		t.Fatal("no failovers counted despite a dead device")
	}
	if arr.DeviceAlive(0) {
		t.Fatal("scripted FaultDeath did not kill the device")
	}
	assertWriterClean(t, b)
	checkAllKeys(t, collectKeys(t, arr, 4096, res), n, 0)
}

func TestSpillAllDevicesDeadIsFatal(t *testing.T) {
	arr := fastArray(2)
	for dev := 0; dev < 2; dev++ {
		arr.SetFaultPlan(dev, nvmesim.FaultPlan{
			Script: map[int64]nvmesim.FaultKind{1: nvmesim.FaultDeath},
		})
	}
	s := NewShared(spillConfig(arr, nil))
	b := s.NewBuffer()
	storeN(b, 20000, 32, 0)
	err := b.Finish()
	if err == nil {
		t.Fatal("spilling with every device dead did not fail")
	}
	var qe *QueryError
	if !errors.As(err, &qe) {
		t.Fatalf("err = %v (%T), want *QueryError", err, err)
	}
	if !nvmesim.IsDeviceDead(err) {
		t.Fatalf("err = %v, want a device-death cause", err)
	}
	assertWriterClean(t, b)
}

func TestSpillRetryBudgetExhausts(t *testing.T) {
	arr := fastArray(1)
	// Unconditional transient failures: retries must give up after the
	// capped attempt budget instead of spinning forever.
	arr.SetFaultPlan(0, nvmesim.FaultPlan{WriteErrRate: 1})
	s := NewShared(spillConfig(arr, nil))
	b := s.NewBuffer()
	storeN(b, 20000, 32, 0)
	err := b.Finish()
	var qe *QueryError
	if !errors.As(err, &qe) {
		t.Fatalf("err = %v (%T), want *QueryError", err, err)
	}
	if qe.Device != 0 {
		t.Fatalf("QueryError.Device = %d, want 0", qe.Device)
	}
	if !nvmesim.IsTransient(err) {
		t.Fatalf("err = %v, want the transient cause preserved", err)
	}
	assertWriterClean(t, b)
}

func TestSpillCancellationReclaimsBuffers(t *testing.T) {
	arr := fastArray(2)
	ctx, cancel := context.WithCancel(context.Background())
	s := NewShared(spillConfig(arr, ctx))
	b := s.NewBuffer()
	storeN(b, 10000, 32, 0)
	cancel() // mid-stream: writes are still in flight
	storeN(b, 10000, 32, 10000)
	err := b.Finish()
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled in the chain", err)
	}
	assertWriterClean(t, b)
	// Every page the writer owned must be back in the pool: with nothing
	// in flight, free pages plus pages still live in the buffer account
	// for every page ever created.
	live := 0
	for _, p := range b.output {
		if p != nil {
			live++
		}
	}
	for _, pp := range b.perPart {
		live += len(pp)
	}
	live += len(b.unpart)
	// Finish retires clean free-list pages via Pool.Close (crediting the
	// budget), so conservation is free + live + closed == created.
	if got := b.pool.FreePages() + live + b.pool.Closed(); got != b.pool.Created() {
		t.Fatalf("pages leaked on cancel: %d free + %d live + %d closed of %d created",
			b.pool.FreePages(), live, b.pool.Closed(), b.pool.Created())
	}
}

func TestReadTransientRetrySucceeds(t *testing.T) {
	arr := fastArray(2)
	s := NewShared(spillConfig(arr, nil))
	b := s.NewBuffer()
	const n = 20000
	storeN(b, n, 32, 0)
	if err := b.Finish(); err != nil {
		t.Fatal(err)
	}
	res, err := s.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	// Arm read faults only after the data is safely written.
	for dev := 0; dev < 2; dev++ {
		arr.SetFaultPlan(dev, nvmesim.FaultPlan{
			Script: map[int64]nvmesim.FaultKind{1: nvmesim.FaultTransient},
		})
	}
	got := map[uint64]int{}
	var retries int64
	scan := func(p *pages.Page) {
		for i := 0; i < p.Tuples(); i++ {
			got[keyOf(p.Tuple(i))]++
		}
	}
	for _, p := range res.Unpartitioned {
		scan(p)
	}
	for _, p := range res.InMemory {
		scan(p)
	}
	for part := 0; part < res.Partitions; part++ {
		if len(res.Spilled[part]) == 0 {
			continue
		}
		r := NewPartitionReader(nil, arr, 4096, res.Spilled[part], 4)
		pgs, err := r.ReadAll()
		if err != nil {
			t.Fatalf("reading partition %d under transient faults: %v", part, err)
		}
		retries += r.Retries()
		for _, p := range pgs {
			scan(p)
		}
	}
	if retries == 0 {
		t.Fatal("no read retries counted despite scripted transient faults")
	}
	checkAllKeys(t, got, n, 0)
}

func TestReadDeadDeviceIsFatal(t *testing.T) {
	arr := fastArray(2)
	s := NewShared(spillConfig(arr, nil))
	b := s.NewBuffer()
	storeN(b, 20000, 32, 0)
	if err := b.Finish(); err != nil {
		t.Fatal(err)
	}
	res, err := s.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	// Reads cannot fail over — the spilled data has exactly one copy.
	arr.KillDevice(0)
	var fatal error
	for part := 0; part < res.Partitions; part++ {
		if len(res.Spilled[part]) == 0 {
			continue
		}
		r := NewPartitionReader(nil, arr, 4096, res.Spilled[part], 4)
		if _, err := r.ReadAll(); err != nil {
			fatal = err
			break
		}
	}
	var qe *QueryError
	if !errors.As(fatal, &qe) {
		t.Fatalf("err = %v (%T), want *QueryError", fatal, fatal)
	}
	if qe.Device != 0 {
		t.Fatalf("QueryError.Device = %d, want 0", qe.Device)
	}
	if !nvmesim.IsDeviceDead(fatal) {
		t.Fatalf("err = %v, want a device-death cause", fatal)
	}
}

func TestReadCancellation(t *testing.T) {
	arr := fastArray(1)
	s := NewShared(spillConfig(arr, nil))
	b := s.NewBuffer()
	storeN(b, 20000, 32, 0)
	if err := b.Finish(); err != nil {
		t.Fatal(err)
	}
	res, err := s.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for part := 0; part < res.Partitions; part++ {
		if len(res.Spilled[part]) == 0 {
			continue
		}
		r := NewPartitionReader(ctx, arr, 4096, res.Spilled[part], 4)
		if _, err := r.ReadAll(); !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled in the chain", err)
		}
		return
	}
	t.Fatal("nothing spilled; reader cancellation not exercised")
}
