package core

import (
	"errors"
	"fmt"
	"runtime/debug"

	"github.com/spilly-db/spilly/internal/nvmesim"
)

// QueryError is the structured failure a query surfaces to the caller: the
// operator that failed, the partition and NVMe device involved (when
// known), a remediation hint for configuration-class failures, and the
// underlying cause. The engine guarantees that a fatal I/O error or an
// escaped panic becomes a QueryError returned from Engine.Run rather than a
// hang, a crash, or an opaque internal error.
type QueryError struct {
	// Op names the failing operator or engine stage ("join-build", "agg",
	// "spill", "spill-read", ...).
	Op string
	// Part is the partition involved, -1 when unknown.
	Part int
	// Device is the NVMe device involved, -1 when unknown.
	Device int
	// Hint suggests a remediation when the failure is configuration-bound
	// (e.g. spill capacity exhausted).
	Hint string
	// Err is the underlying cause; errors.Is/As see through it.
	Err error
}

// Error implements error.
func (e *QueryError) Error() string {
	msg := "query failed"
	if e.Op != "" {
		msg += " in " + e.Op
	}
	if e.Part >= 0 {
		msg += fmt.Sprintf(" (partition %d)", e.Part)
	}
	if e.Device >= 0 {
		msg += fmt.Sprintf(" (device %d)", e.Device)
	}
	msg += ": " + e.Err.Error()
	if e.Hint != "" {
		msg += " (hint: " + e.Hint + ")"
	}
	return msg
}

// Unwrap supports errors.Is/As chains.
func (e *QueryError) Unwrap() error { return e.Err }

// HintDeviceFull is the remediation hint attached when the spill area fills
// up mid-query.
const HintDeviceFull = "raise the spill capacity or the memory budget"

// WrapQueryError wraps err into a *QueryError attributed to op, filling the
// device from any nvmesim.DeviceError in the chain and attaching hints for
// configuration-class failures. An error that already is a QueryError is
// returned as-is (with Op filled in if it was empty); nil stays nil.
// ErrOutOfMemory is also passed through unchanged — callers compare it by
// identity and it already names its own remediation.
func WrapQueryError(op string, err error) error {
	if err == nil || err == ErrOutOfMemory {
		return err
	}
	var qe *QueryError
	if errors.As(err, &qe) {
		if qe.Op == "" {
			qe.Op = op
		}
		return err
	}
	qe = &QueryError{Op: op, Part: -1, Device: -1, Err: err}
	var de *nvmesim.DeviceError
	if errors.As(err, &de) {
		qe.Device = de.Device
	}
	if errors.Is(err, nvmesim.ErrDeviceFull) {
		qe.Hint = HintDeviceFull
	}
	return qe
}

// RecoverQueryPanic is the worker-boundary recovery: deferred around every
// worker goroutine, it converts Umami's out-of-memory panic into
// ErrOutOfMemory (by identity, as callers expect) and any other panic into
// a *QueryError carrying the panic value and stack — an engine bug or a
// fatal I/O condition must fail the query, never crash the process.
func RecoverQueryPanic(op string, errp *error) {
	switch r := recover().(type) {
	case nil:
	case oomPanic:
		if *errp == nil {
			*errp = ErrOutOfMemory
		}
	default:
		if *errp == nil {
			*errp = &QueryError{
				Op: op, Part: -1, Device: -1,
				Err: fmt.Errorf("panic: %v\n%s", r, debug.Stack()),
			}
		}
	}
}
