package core

import (
	"context"
	"sync"
	"time"

	"github.com/spilly-db/spilly/internal/nvmesim"
	"github.com/spilly-db/spilly/internal/pages"
	"github.com/spilly-db/spilly/internal/uring"
)

// PartitionWork is one spilled partition queued for readback: the partition
// index and its spilled page slots (as recorded in a Result).
type PartitionWork struct {
	Part  int
	Slots []SpilledSlot
}

// PartitionCursor streams one spilled partition's pages back to a phase-2
// consumer. It is the PartitionReader-shaped interface both the blocking
// baseline and the scheduler's prefetching cursors implement: Next yields
// pages until (nil, nil), Release recycles the partition's buffers once
// nothing references its tuples anymore, and the counters feed the
// consumer's stats and trace span after the partition is consumed.
type PartitionCursor interface {
	Next() (*pages.Page, error)
	Release()
	// BytesRead returns the bytes read from the array for this partition.
	BytesRead() int64
	// Retries returns transient read errors recovered by retrying.
	Retries() int64
	// StallNanos returns the wall time the consumer spent inside Next —
	// the spill-read stall this partition inflicted on phase-2 compute.
	StallNanos() int64
	// DemandReads returns how many demand-class block reads completed for
	// this partition and the sum of their per-request completion
	// latencies in nanoseconds. Where StallNanos measures worker-side
	// blocked time, this measures the latency of the latency-critical
	// reads themselves — how long each spent queued behind other I/O.
	// The blocking baseline reports zero (it never classifies reads).
	DemandReads() (int64, int64)
	// Prefetched reports whether readback was already under way (at least
	// one block read issued) before the consumer opened the cursor.
	Prefetched() bool
	// Verified returns framed pages whose checksums verified for this
	// partition; ChecksumErrors the blocks that failed verification; and
	// Reconstructions the blocks rebuilt from parity. All zero when spill
	// integrity is off.
	Verified() int64
	ChecksumErrors() int64
	Reconstructions() int64
}

// PartitionScheduler keeps the block reads of upcoming spilled partitions in
// flight while the current partition is being processed (paper §5.1: "aiming
// to maintain a full I/O queue" — phase 2's half of the overlap story; the
// write path already overlaps). It owns one I/O ring, takes an ordered list
// of partition work items, and hands each consumer a streaming cursor.
//
// Prefetch is budget-aware: block and decode buffers for partitions no
// consumer has opened yet are reserved against the query budget first, and
// the scheduler simply stops looking ahead when the reservation fails —
// lookahead shrinks under memory pressure instead of OOMing. Demand reads
// (for partitions a consumer has opened) bypass the gate, exactly like the
// blocking PartitionReader they replace, so budget pressure can never
// deadlock a consumer.
//
// Concurrency: the ring is single-threaded by design, so consumers use a
// leader/follower protocol — whichever cursor needs pages and finds no
// leader pumping becomes the leader, submits and polls the ring outside the
// scheduler lock, and hands completions back under the lock; followers wait
// on a condition variable. All methods and cursors are safe for concurrent
// use by one consumer per partition.
type PartitionScheduler struct {
	ctx      context.Context
	arr      *nvmesim.Array
	clock    nvmesim.Clock
	budget   *pages.Budget
	pageSize int
	depth    int
	blocking bool
	work     []PartitionWork

	// disp/query, when bound (BindIO), route the readback ring through the
	// engine's shared I/O scheduler: prefetch reads carry ClassPrefetch,
	// reads for opened items ClassDemand, and Open promotes an item's
	// still-deferred reads the moment a consumer blocks on it.
	disp  uring.Dispatcher
	query uint64

	mu      sync.Mutex
	cond    *sync.Cond
	ring    *uring.Ring
	pumping bool
	closed  bool

	items    []*schedItem
	inflight int // block reads in flight or queued, all items
	pending  map[uint64]pendingRead
	nextUD   uint64
	scratch  []uring.Completion

	// Integrity state (SetIntegrity): the parity stripe directory covering
	// every work item's blocks and the lazily built repairer.
	stripes []*StripeGroup
	rp      *repairer

	prefetched int64
}

type pendingRead struct {
	item  *schedItem
	group int
	// demand records the read's class at queue time; demand-class
	// completions feed the per-request latency counters, and retries
	// re-queue under the same class.
	demand bool
}

// schedItem is the scheduler-side state of one partition work item.
type schedItem struct {
	part      int
	groups    []blockGroup
	nextGroup int // next group to issue a read for
	inflightN int // this item's reads in flight
	decoded   int // groups fully decoded into ready pages
	issued    bool

	ready []*pages.Page
	owned [][]byte // recycler-backed buffers the decoded pages alias

	opened   bool
	released bool
	reserved int64 // prefetch budget reservation, released at Open/Release
	err      error // sticky per-partition failure

	// pendingUDs tracks this item's in-flight read userDatas for
	// class promotion at Open. Mutated only under the scheduler lock;
	// retried reads get fresh userDatas that are not tracked (stale
	// entries make Promote a no-op, which is safe).
	pendingUDs map[uint64]struct{}

	bytesRead int64
	retries   int64

	// Demand-read latency: completed reads that were queued demand-class
	// (a consumer had already opened the partition) and the sum of their
	// completion latencies. Unlike the cursor's StallNanos — worker-side
	// blocked wall time — this is the per-request latency of the
	// latency-critical reads themselves, the quantity the I/O scheduler's
	// demand-first dispatch exists to bound.
	demandReads int64
	demandNs    int64

	// Integrity counters (spill integrity on).
	verified        int64
	checksumErrs    int64
	reconstructions int64
}

// NewPartitionScheduler returns a scheduler over the given work items. ctx
// cancels blocking waits (nil = background); depth bounds in-flight block
// reads across the whole scheduler (<= 0 selects DefaultReadDepth); budget,
// when non-nil, gates prefetch lookahead (demand reads are never gated).
// With blocking set, the scheduler degrades to the pre-scheduler baseline:
// Open returns a plain synchronous PartitionReader and nothing is
// prefetched — the configuration the overlap benchmark measures against.
func NewPartitionScheduler(ctx context.Context, arr *nvmesim.Array, pageSize int, work []PartitionWork, depth int, budget *pages.Budget, blocking bool) *PartitionScheduler {
	if depth <= 0 {
		depth = DefaultReadDepth
	}
	s := &PartitionScheduler{
		ctx:      ctx,
		arr:      arr,
		clock:    arr.Clock(),
		budget:   budget,
		pageSize: pageSize,
		depth:    depth,
		blocking: blocking,
		work:     work,
	}
	s.cond = sync.NewCond(&s.mu)
	if blocking {
		return s
	}
	s.ring = uring.New(arr)
	if ctx != nil {
		s.ring.SetCancel(func() bool { return ctx.Err() != nil })
	}
	s.pending = make(map[uint64]pendingRead)
	s.items = make([]*schedItem, len(work))
	for i, w := range work {
		it := &schedItem{part: w.Part}
		byLoc := make(map[nvmesim.Loc]int, len(w.Slots))
		for _, sl := range w.Slots {
			gi, ok := byLoc[sl.Loc]
			if !ok {
				gi = len(it.groups)
				byLoc[sl.Loc] = gi
				it.groups = append(it.groups, blockGroup{loc: sl.Loc})
			}
			it.groups[gi].slots = append(it.groups[gi].slots, sl)
		}
		s.items[i] = it
	}
	return s
}

// BindIO routes the scheduler's readback I/O through the engine's shared
// dispatcher under the given query fairness key (nil = keep the private
// ring). Call before the first Open. In blocking mode the synchronous
// readers Open creates bind instead, as demand-class consumers.
func (s *PartitionScheduler) BindIO(d uring.Dispatcher, query uint64) {
	s.disp, s.query = d, query
	if s.ring != nil {
		s.ring.Bind(d, uring.ClassPrefetch, query)
	}
}

// SetIntegrity arms frame verification and parity reconstruction for every
// work item: stripes is the result's parity stripe directory (nil = frames
// still verify, but nothing can be rebuilt). Call before the first Open.
func (s *PartitionScheduler) SetIntegrity(stripes []*StripeGroup) {
	s.mu.Lock()
	s.stripes = stripes
	s.rp = nil // rebuilt lazily against the new directory
	s.mu.Unlock()
}

// repairerLocked returns the scheduler's repairer, building it on first use.
func (s *PartitionScheduler) repairerLocked() *repairer {
	if s.rp == nil {
		s.rp = newRepairer(s.ctx, s.arr, s.stripes)
	}
	return s.rp
}

// Open hands out the streaming cursor for work item i. Each item must be
// opened by exactly one consumer; opening releases the item's prefetch
// reservation (its pages now stand in for the partition the consumer would
// otherwise have materialized) and promotes its remaining reads to demand.
func (s *PartitionScheduler) Open(i int) PartitionCursor {
	if s.blocking {
		r := NewPartitionReader(s.ctx, s.arr, s.pageSize, s.work[i].Slots, s.depth)
		r.BindIO(s.disp, s.query)
		r.SetIntegrity(s.work[i].Part, s.stripes)
		return &blockingCursor{r: r}
	}
	s.mu.Lock()
	it := s.items[i]
	it.opened = true
	if it.reserved > 0 {
		s.budget.Release(it.reserved)
		it.reserved = 0
	}
	pre := it.issued
	if pre {
		s.prefetched++
	}
	// A consumer now blocks on this item: re-tag its still-deferred reads
	// as demand so the shared dispatcher stops holding them behind other
	// queries' traffic. Promote only touches the dispatcher (no-op on a
	// private ring), so it is safe alongside a pumping leader.
	for ud := range it.pendingUDs {
		s.ring.Promote(ud)
	}
	s.mu.Unlock()
	return &schedCursor{s: s, it: it, pre: pre}
}

// PrefetchedPartitions returns how many partitions had readback under way
// before their consumer opened them.
func (s *PartitionScheduler) PrefetchedPartitions() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.prefetched
}

// issueLocked tops up the ring: demand reads for opened partitions first
// (unconditionally, up to the per-consumer depth the blocking reader would
// use — an opened cursor must always be able to make progress), then
// prefetch for upcoming partitions in work order while the depth and the
// budget allow.
func (s *PartitionScheduler) issueLocked() {
	for _, it := range s.items {
		if !it.opened || it.released || it.err != nil {
			continue
		}
		for it.nextGroup < len(it.groups) && it.inflightN < s.depth {
			s.queueGroupLocked(it)
		}
	}
	// preInflight counts prefetch reads in flight across all unopened items;
	// prefetch as a whole gets one consumer's worth of queue depth.
	preInflight := 0
	for _, it := range s.items {
		if !it.opened && !it.released {
			preInflight += it.inflightN
		}
	}
	for _, it := range s.items {
		if it.opened || it.released || it.err != nil {
			continue
		}
		for it.nextGroup < len(it.groups) && preInflight < s.depth {
			g := &it.groups[it.nextGroup]
			// A prefetched group costs its block read buffer plus one
			// decode buffer per staged page.
			cost := int64(g.loc.Size()) + int64(len(g.slots))*int64(s.pageSize)
			if !s.budget.TryReserve(cost) {
				// Budget headroom gone: shrink the lookahead window rather
				// than abandoning overlap entirely. One unreserved group may
				// stay in flight — the same transient buffer footprint the
				// blocking reader imposes the moment the next partition
				// opens — so readback keeps running ahead of compute even
				// when the operator has eaten the whole budget.
				if preInflight > 0 {
					return
				}
				cost = 0
			}
			it.reserved += cost
			s.queueGroupLocked(it)
			preInflight++
		}
	}
}

// queueGroupLocked queues the item's next block read on the ring: demand
// class when a consumer already opened the item, prefetch otherwise.
func (s *PartitionScheduler) queueGroupLocked(it *schedItem) {
	g := &it.groups[it.nextGroup]
	g.buf = pages.GetBuf(int(g.loc.Size()))
	it.owned = append(it.owned, g.buf)
	s.nextUD++
	class := uring.ClassPrefetch
	if it.opened {
		class = uring.ClassDemand
	}
	s.ring.QueueReadClass(g.loc, g.buf, s.nextUD, class)
	s.pending[s.nextUD] = pendingRead{item: it, group: it.nextGroup, demand: class == uring.ClassDemand}
	if it.pendingUDs == nil {
		it.pendingUDs = make(map[uint64]struct{})
	}
	it.pendingUDs[s.nextUD] = struct{}{}
	it.nextGroup++
	it.inflightN++
	s.inflight++
	it.issued = true
}

// retryUnlocked runs on the leader outside the scheduler lock: transient
// failures with retry budget left are re-queued (same device — spilled data
// has one copy, so reads cannot fail over) after a capped backoff, and the
// remaining completions are returned for processing under the lock. Leader
// state (ring, pending, nextUD, group attempts) is only ever touched by the
// current leader; leadership transfer happens under the lock.
func (s *PartitionScheduler) retryUnlocked(comps []uring.Completion) ([]uring.Completion, []*schedItem) {
	out := comps[:0]
	var retried []*schedItem
	requeued := false
	for _, c := range comps {
		pr, ok := s.pending[c.UserData]
		if ok && c.Err != nil && nvmesim.IsTransient(c.Err) && pr.item.groups[pr.group].attempts+1 < maxReadAttempts {
			g := &pr.item.groups[pr.group]
			g.attempts++
			delete(s.pending, c.UserData)
			s.clock.Sleep(retryBackoff(g.attempts))
			s.nextUD++
			// Retries keep their class: a demand read a consumer is
			// still blocked on must not re-queue behind prefetch.
			class := uring.ClassPrefetch
			if pr.demand {
				class = uring.ClassDemand
			}
			s.ring.QueueReadClass(g.loc, g.buf, s.nextUD, class)
			s.pending[s.nextUD] = pr
			retried = append(retried, pr.item)
			requeued = true
			continue
		}
		out = append(out, c)
	}
	if requeued {
		s.ring.Submit()
	}
	return out, retried
}

// processLocked folds reaped completions into item state: successful block
// reads decode into ready pages, failures become sticky structured errors.
func (s *PartitionScheduler) processLocked(comps []uring.Completion, retried []*schedItem) {
	for _, it := range retried {
		it.retries++
	}
	for _, c := range comps {
		pr, ok := s.pending[c.UserData]
		if !ok {
			continue
		}
		delete(s.pending, c.UserData)
		it := pr.item
		delete(it.pendingUDs, c.UserData)
		it.inflightN--
		s.inflight--
		it.decoded++
		if c.Err == nil {
			it.bytesRead += int64(c.N)
			if pr.demand {
				it.demandReads++
				it.demandNs += int64(c.Latency)
			}
		}
		if it.released || it.err != nil {
			// Pages are dead on arrival; buffers recycle at Close. A read
			// failure still has to stick so a not-yet-failed consumer sees it.
			if c.Err != nil && it.err == nil {
				it.err = &QueryError{Op: "spill-read", Part: it.part, Device: c.Loc.Device(), Err: c.Err}
			}
			continue
		}
		g := &it.groups[pr.group]
		if c.Err != nil || countFramed(g.slots) > 0 {
			// Verify before decode; a permanently failed read or a checksum
			// mismatch triggers parity reconstruction in place. The repair
			// I/O runs under the scheduler lock — it is the cold path, and
			// followers simply wait out the rare rebuild.
			st, err := s.repairerLocked().validBlock(g.loc, g.buf, g.slots, it.part, c.Err)
			it.verified += st.verified
			it.checksumErrs += st.checksumErrors
			it.reconstructions += st.reconstructions
			if err != nil {
				it.err = err
				continue
			}
		}
		ready, owned, err := decodeBlockSlots(g.buf, g.slots, s.pageSize, it.ready, it.owned)
		it.ready, it.owned = ready, owned
		g.buf = nil
		if err != nil && it.err == nil {
			it.err = WrapQueryError("spill-read", err)
		}
	}
}

// Close drains outstanding reads and recycles every remaining buffer and
// budget reservation. Consumers register it as a query-end cleanup so error
// paths and never-opened prefetch items cannot leak; it is idempotent and a
// normal run that released every cursor has nothing left to do here.
func (s *PartitionScheduler) Close() {
	if s.blocking {
		return
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	for s.pumping {
		s.cond.Wait()
	}
	s.pumping = true // exclusive ring access for the final drain
	s.mu.Unlock()
	s.scratch = s.ring.WaitAll(s.scratch[:0])
	// If cancellation cut the drain short, reads may still be writing into
	// owned buffers — leak those to the GC instead of recycling them; the
	// query is being torn down anyway.
	aborted := s.ring.Outstanding() > 0
	if aborted {
		// Reads the dispatcher never issued will not complete now that the
		// query is cancelled; drop them so the shared scheduler's queues
		// (and its per-query fairness state) do not hold them forever.
		s.ring.CancelDeferred()
	}
	s.mu.Lock()
	s.pumping = false
	s.pending = nil
	for _, it := range s.items {
		if it.reserved > 0 {
			s.budget.Release(it.reserved)
			it.reserved = 0
		}
		if !it.released {
			it.released = true
		}
		it.ready = nil
		if !aborted {
			for _, b := range it.owned {
				pages.PutBuf(b)
			}
		}
		it.owned = nil
	}
	s.cond.Broadcast()
	s.mu.Unlock()
}

// schedCursor is the consumer-side view of one scheduled partition.
type schedCursor struct {
	s       *PartitionScheduler
	it      *schedItem
	pre     bool
	stallNs int64
}

// Next returns the partition's next page, or (nil, nil) once every block
// has been decoded and handed out. When no page is ready it joins the
// leader/follower pump: the leader submits and polls the shared ring with
// the scheduler lock dropped; followers wait for its broadcast.
func (c *schedCursor) Next() (*pages.Page, error) {
	start := time.Now()
	s, it := c.s, c.it
	s.mu.Lock()
	for {
		if it.err != nil {
			err := it.err
			s.mu.Unlock()
			c.stallNs += int64(time.Since(start))
			return nil, err
		}
		if s.ctx != nil && s.ctx.Err() != nil {
			it.err = WrapQueryError("spill-read", s.ctx.Err())
			continue
		}
		if s.closed {
			it.err = &QueryError{Op: "spill-read", Part: it.part, Device: -1, Err: context.Canceled}
			continue
		}
		if n := len(it.ready); n > 0 {
			p := it.ready[n-1]
			it.ready = it.ready[:n-1]
			s.mu.Unlock()
			c.stallNs += int64(time.Since(start))
			return p, nil
		}
		if it.decoded >= len(it.groups) {
			s.mu.Unlock()
			c.stallNs += int64(time.Since(start))
			return nil, nil
		}
		if s.pumping {
			s.cond.Wait()
			continue
		}
		s.pumping = true
		s.issueLocked()
		s.mu.Unlock()
		s.ring.Submit()
		comps := s.ring.Poll(s.scratch[:0], true)
		comps, retried := s.retryUnlocked(comps)
		s.mu.Lock()
		s.scratch = comps[:0]
		s.pumping = false
		s.processLocked(comps, retried)
		s.cond.Broadcast()
	}
}

// Release recycles the partition's buffers and releases any leftover
// prefetch reservation. Call it only once nothing references the
// partition's tuples anymore. Buffers still owned by in-flight reads stay
// out of the recycler until the scheduler's Close drains them.
func (c *schedCursor) Release() {
	s, it := c.s, c.it
	s.mu.Lock()
	if !it.released {
		it.released = true
		if it.reserved > 0 {
			s.budget.Release(it.reserved)
			it.reserved = 0
		}
		if it.inflightN == 0 {
			it.ready = nil
			for _, b := range it.owned {
				pages.PutBuf(b)
			}
			it.owned = nil
		}
	}
	s.mu.Unlock()
}

// BytesRead returns bytes read from the array for this partition.
func (c *schedCursor) BytesRead() int64 {
	c.s.mu.Lock()
	defer c.s.mu.Unlock()
	return c.it.bytesRead
}

// Retries returns transient read errors recovered for this partition.
func (c *schedCursor) Retries() int64 {
	c.s.mu.Lock()
	defer c.s.mu.Unlock()
	return c.it.retries
}

// StallNanos returns the wall time this cursor's consumer spent inside Next.
func (c *schedCursor) StallNanos() int64 { return c.stallNs }

// DemandReads returns this partition's completed demand-class reads and the
// sum of their completion latencies in nanoseconds.
func (c *schedCursor) DemandReads() (int64, int64) {
	c.s.mu.Lock()
	defer c.s.mu.Unlock()
	return c.it.demandReads, c.it.demandNs
}

// Prefetched reports whether readback had started before Open.
func (c *schedCursor) Prefetched() bool { return c.pre }

// Verified returns framed pages whose checksums verified for this partition.
func (c *schedCursor) Verified() int64 {
	c.s.mu.Lock()
	defer c.s.mu.Unlock()
	return c.it.verified
}

// ChecksumErrors returns blocks of this partition that failed verification.
func (c *schedCursor) ChecksumErrors() int64 {
	c.s.mu.Lock()
	defer c.s.mu.Unlock()
	return c.it.checksumErrs
}

// Reconstructions returns blocks of this partition rebuilt from parity.
func (c *schedCursor) Reconstructions() int64 {
	c.s.mu.Lock()
	defer c.s.mu.Unlock()
	return c.it.reconstructions
}

// blockingCursor adapts the synchronous PartitionReader to the cursor
// interface — the scheduler's blocking baseline mode.
type blockingCursor struct {
	r       *PartitionReader
	stallNs int64
}

func (c *blockingCursor) Next() (*pages.Page, error) {
	start := time.Now()
	p, err := c.r.Next()
	c.stallNs += int64(time.Since(start))
	return p, err
}

func (c *blockingCursor) Release()                    { c.r.Release() }
func (c *blockingCursor) BytesRead() int64            { return c.r.BytesRead() }
func (c *blockingCursor) Retries() int64              { return c.r.Retries() }
func (c *blockingCursor) StallNanos() int64           { return c.stallNs }
func (c *blockingCursor) DemandReads() (int64, int64) { return 0, 0 }
func (c *blockingCursor) Prefetched() bool            { return false }
func (c *blockingCursor) Verified() int64             { return c.r.Verified() }
func (c *blockingCursor) ChecksumErrors() int64       { return c.r.ChecksumErrors() }
func (c *blockingCursor) Reconstructions() int64      { return c.r.Reconstructions() }
