package core

import (
	"time"

	"github.com/spilly-db/spilly/internal/codec"
	"github.com/spilly-db/spilly/internal/uring"
)

// DefaultScale is the unified compression scale (paper §4.4 "A unified
// scale"). The paper's Figure 3 experiment rules out Snappy (off the pareto
// frontier) and BZ2 (too expensive) and merges the surviving LZ4 and ZSTD
// settings into one ordered scale: Uncompressed < LZ4 < ZSTD. Our measured
// trade-off curve (see internal/codec benchmarks and the fig3 experiment)
// yields the analogous ordering below: cost increases and compressed size
// decreases monotonically along the scale.
var DefaultScale = []codec.ID{
	codec.None,
	codec.LZ4Fastest,
	codec.LZ4Fast,
	codec.LZ4Default,
	codec.Deflate1,
	codec.Deflate3,
	codec.Deflate6,
	codec.Deflate9,
}

// regulator hysteresis: the cost ratio must leave this band around 1.0
// before the scheme changes, preventing oscillation at equilibrium.
const (
	regUpThreshold   = 1.15 // I/O cost > 1.15 × CPU cost: compress harder
	regDownThreshold = 0.85 // I/O cost < 0.85 × CPU cost: compress less
)

// Regulator implements self-regulating compression (paper §4.4, Listing 3).
//
// It tracks three costs in a common currency, nanoseconds per byte (the
// paper uses cycles per byte; ns at nominal frequency is the same metric up
// to a constant):
//
//   - operator cost: time the operator spends producing each page
//     (A in Figure 4), reported by the Umami buffer between allocations;
//   - compression cost: measured around each CompressPage call;
//   - I/O cost: completion latency divided by the number of simultaneous
//     requests (B in Figure 4 — the paper encodes request start times in
//     io_uring user-data fields; our uring layer timestamps completions).
//
// After a run of N pages it compares CPU cost (operator + compression, per
// source byte) with effective I/O cost (per source byte, i.e. scaled by the
// achieved compression ratio). If I/O cost dominates, it steps up the
// unified scale; if CPU cost dominates, it steps down. One Regulator per
// worker thread; not safe for concurrent use.
type Regulator struct {
	scale []codec.ID
	level int
	runN  int

	// Accumulators for the current run.
	pagesInRun int
	opNs       float64
	opBytes    float64
	compNs     float64
	rawBytes   float64
	outBytes   float64
	ioNs       float64
	ioBytes    float64

	// Lifetime statistics for the harness (Figure 11 right panel).
	pagesPerScheme [64]int64
	levelChanges   int
	maxLevel       int
	scratch        []byte
}

// NewRegulator returns a regulator over the given scale starting at level 0
// (uncompressed). runN is the number of pages per measurement run; the
// paper defaults to 2× the I/O queue depth.
func NewRegulator(scale []codec.ID, runN int) *Regulator {
	if len(scale) == 0 {
		scale = DefaultScale
	}
	if runN <= 0 {
		runN = 16
	}
	return &Regulator{scale: scale, runN: runN}
}

// Scheme returns the currently selected codec ID.
func (r *Regulator) Scheme() codec.ID { return r.scale[r.level] }

// Level returns the current position on the unified scale.
func (r *Regulator) Level() int { return r.level }

// ObserveOperator records that the operator spent d producing n bytes of
// tuple data (one page's worth). Called by the Umami buffer at page
// allocation, where the adaptivity cost amortizes over the page (§4.2).
func (r *Regulator) ObserveOperator(d time.Duration, n int) {
	r.opNs += float64(d)
	r.opBytes += float64(n)
}

// ObserveIO records a completed spill write. inflight is the number of
// simultaneous requests around completion time; dividing the measured
// latency by it approximates each request's share of device occupancy.
func (r *Regulator) ObserveIO(c uring.Completion, inflight int) {
	if c.Err != nil || c.N == 0 {
		return
	}
	if inflight < 1 {
		inflight = 1
	}
	r.ioNs += float64(c.Latency) / float64(inflight)
	r.ioBytes += float64(c.N)
}

// CompressPage compresses src with the current scheme, measuring cost, and
// returns the encoded bytes plus the scheme used. For the Uncompressed
// scheme it returns src unchanged. The returned slice is only valid until
// the next CompressPage call.
func (r *Regulator) CompressPage(src []byte) ([]byte, codec.ID) {
	id := r.scale[r.level]
	r.pagesInRun++
	r.pagesPerScheme[id]++
	r.rawBytes += float64(len(src))
	var out []byte
	if id == codec.None {
		r.outBytes += float64(len(src))
		out = src
	} else {
		c := codec.ByID(id)
		start := time.Now()
		r.scratch = c.Compress(r.scratch[:0], src)
		r.compNs += float64(time.Since(start))
		r.outBytes += float64(len(r.scratch))
		out = r.scratch
	}
	if r.pagesInRun >= r.runN {
		r.adjust()
	}
	return out, id
}

// adjust is the regulation step from Listing 3: compare average CPU cost
// with average effective I/O cost over the finished run and move along the
// unified scale.
func (r *Regulator) adjust() {
	defer r.resetRun()
	if r.rawBytes == 0 {
		return
	}
	// CPU cost per byte: operator time per materialized byte plus
	// compression time per spilled byte.
	cpuCost := r.compNs / r.rawBytes
	if r.opBytes > 0 {
		cpuCost += r.opNs / r.opBytes
	}
	if r.ioBytes == 0 {
		// No completed I/O observed this run: spills are bursty and the
		// writes are still in flight. Hold the current setting; the next
		// run's completions will tell us which way to move.
		return
	}
	ratio := r.outBytes / r.rawBytes            // compressed fraction
	ioCostPerRaw := r.ioNs / r.ioBytes * ratio  // ns per *source* byte at current ratio
	switch {
	case ioCostPerRaw > cpuCost*regUpThreshold && r.level < len(r.scale)-1:
		r.level++
		r.levelChanges++
		if r.level > r.maxLevel {
			r.maxLevel = r.level
		}
	case ioCostPerRaw < cpuCost*regDownThreshold && r.level > 0:
		r.level--
		r.levelChanges++
	}
}

func (r *Regulator) resetRun() {
	r.pagesInRun = 0
	r.opNs, r.opBytes, r.compNs = 0, 0, 0
	r.rawBytes, r.outBytes = 0, 0
	r.ioNs, r.ioBytes = 0, 0
}

// SchemeHistogram returns, per codec ID, how many pages were compressed
// with it (Figure 11 right panel).
func (r *Regulator) SchemeHistogram() map[codec.ID]int64 {
	out := make(map[codec.ID]int64)
	for id, n := range r.pagesPerScheme {
		if n > 0 {
			out[codec.ID(id)] = n
		}
	}
	return out
}

// LevelChanges returns how often the regulator switched schemes.
func (r *Regulator) LevelChanges() int { return r.levelChanges }

// MaxLevel returns the highest position on the unified scale the regulator
// reached over its lifetime.
func (r *Regulator) MaxLevel() int { return r.maxLevel }

// MergeHistograms sums per-thread scheme histograms.
func MergeHistograms(hs ...map[codec.ID]int64) map[codec.ID]int64 {
	out := make(map[codec.ID]int64)
	for _, h := range hs {
		for id, n := range h {
			out[id] += n
		}
	}
	return out
}
