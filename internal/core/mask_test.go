package core

import (
	"sync"
	"testing"
)

func TestMaskChoosePrefersLargest(t *testing.T) {
	var m SpillMask
	part, ok := m.Choose([]int64{10, 500, 30, 0})
	if !ok || part != 1 {
		t.Fatalf("Choose = %d, %v; want largest partition 1", part, ok)
	}
	if !m.IsSpilled(1) || m.Count() != 1 {
		t.Fatal("chosen partition not marked")
	}
}

func TestMaskChoosePrefersAlreadySpilled(t *testing.T) {
	var m SpillMask
	m.MarkSpilled(2)
	// Partition 3 is larger locally, but 2 is already spilled and this
	// thread holds data there: prefer 2 to keep the spill set small.
	part, ok := m.Choose([]int64{0, 0, 100, 900})
	if !ok || part != 2 {
		t.Fatalf("Choose = %d, want already-spilled 2", part)
	}
	if m.Count() != 1 {
		t.Fatalf("mask grew to %d partitions", m.Count())
	}
}

func TestMaskChooseFallsBackToMarked(t *testing.T) {
	var m SpillMask
	m.MarkSpilled(5)
	part, ok := m.Choose(make([]int64, 8)) // no local data at all
	if !ok || part != 5 {
		t.Fatalf("Choose = %d, %v; want fallback to marked 5", part, ok)
	}
}

func TestMaskChooseNothing(t *testing.T) {
	var m SpillMask
	if _, ok := m.Choose(make([]int64, 4)); ok {
		t.Fatal("Choose succeeded with no data and empty mask")
	}
}

func TestMaskConcurrentChoose(t *testing.T) {
	var m SpillMask
	sizes := []int64{1, 2, 3, 4, 5, 6, 7, 8}
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				if part, ok := m.Choose(sizes); !ok || !m.IsSpilled(part) {
					panic("chosen partition not marked")
				}
			}
		}()
	}
	wg.Wait()
	// All threads share the same local sizes, so they should converge on
	// very few spilled partitions (the largest, then already-spilled).
	if m.Count() != 1 {
		t.Fatalf("concurrent choose spilled %d partitions, want 1", m.Count())
	}
}
